// Quickstart: fuzz a network server with Nyx-Net in ~40 lines.
//
//   $ ./examples/quickstart
//
// Steps (mirroring the five-step workflow of paper section 5.4):
//   1. pick a target from the registry (the lightftp FTP server),
//   2. use the generic network spec (raw packets on one connection),
//   3. build seed inputs with the Builder (or import a PCAP, see
//      examples/pcap_seeds),
//   4. configure the fuzzer with a snapshot placement policy,
//   5. run and inspect the results.

#include <cstdio>

#include "src/fuzz/fuzzer.h"
#include "src/targets/registry.h"

int main() {
  using namespace nyx;

  // 1-2. Target + spec.
  auto target = FindTarget("lightftp");
  Spec spec = target->make_spec();

  // 3. Seeds: the registry ships Builder-made seeds for every target.
  //    (They look like Listing 2 of the paper: b.Connection(), b.Packet(...).)
  std::vector<Program> seeds = target->make_seeds(spec);

  // 4. Fuzzer: a 4 MiB VM, the balanced snapshot placement policy.
  EngineConfig engine_cfg;
  engine_cfg.vm.mem_pages = 1024;
  FuzzerConfig fuzz_cfg;
  fuzz_cfg.policy = PolicyMode::kBalanced;
  fuzz_cfg.seed = 42;
  NyxFuzzer fuzzer(engine_cfg, target->factory, spec, fuzz_cfg);
  for (Program& s : seeds) {
    fuzzer.AddSeed(std::move(s));
  }

  // 5. Run for 60 virtual seconds (a few wall seconds).
  CampaignLimits limits;
  limits.vtime_seconds = 60.0;
  limits.wall_seconds = 30.0;
  CampaignResult result = fuzzer.Run(limits);

  printf("=== quickstart: fuzzing lightftp ===\n");
  printf("executions:        %lu (%.0f per virtual second)\n",
         static_cast<unsigned long>(result.execs), result.execs_per_vsecond);
  printf("branch coverage:   %zu sites\n", result.branch_coverage);
  printf("corpus size:       %zu inputs\n", result.corpus_size);
  printf("VM resets:         %lu root, %lu incremental (from %lu snapshots)\n",
         static_cast<unsigned long>(result.root_restores),
         static_cast<unsigned long>(result.incremental_restores),
         static_cast<unsigned long>(result.incremental_creates));
  printf("crashes:           %zu (lightftp has no seeded bug)\n", result.crashes.size());
  return result.branch_coverage > 0 ? 0 : 1;
}
