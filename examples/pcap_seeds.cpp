// Importing PCAP captures as seed inputs (paper section 4.4).
//
// "Dumping network traffic is easy. As such, loading seed inputs adds
// tremendous value to fuzzing campaigns."
//
// This example synthesizes a capture of an FTP session (as Wireshark would
// have recorded it), converts it into bytecode seeds with the CRLF packet
// dissector, and fuzzes the proftpd target with them — eventually finding
// the dangling-cwd crash that only snapshot-grade throughput reaches.

#include <cstdio>

#include "src/fuzz/fuzzer.h"
#include "src/spec/pcap.h"
#include "src/targets/registry.h"

int main() {
  using namespace nyx;

  // A capture: client 10.0.0.1 talks to the FTP server 10.0.0.2:2122.
  // Note the deliberately messy segmentation — one command split across two
  // TCP segments, a retransmission — which reassembly must fix.
  const uint32_t client = 0x0a000001;
  const uint32_t server = 0x0a000002;
  std::vector<PcapPacket> packets;
  auto add = [&](uint32_t seq, const char* payload) {
    PcapPacket pkt;
    pkt.ts_sec = static_cast<uint32_t>(1000 + packets.size());
    pkt.frame = BuildTcpFrame(client, server, 40000, 2122, seq, ToBytes(payload));
    packets.push_back(std::move(pkt));
  };
  add(1, "USER anonymous\r\n");
  add(17, "PASS guest\r\nMKD ");  // command split mid-line...
  add(33, "files\r\n");           // ...finished in the next segment
  add(17, "PASS guest\r\nMKD ");  // retransmission (duplicate)
  add(40, "CWD files\r\nRMD files\r\nLIST\r\nQUIT\r\n");
  const Bytes capture = PcapFile::Write(packets);
  printf("synthesized capture: %zu bytes, %zu frames\n", capture.size(), packets.size());

  // Convert: client->server payloads, reassembled and split at CRLF.
  auto reg = FindTarget("proftpd");
  Spec spec = reg->make_spec();
  auto seed = ProgramFromPcap(spec, capture, 2122, SplitStrategy::kCrlf);
  if (!seed.has_value()) {
    printf("conversion failed\n");
    return 1;
  }
  const auto pkt_idx = seed->PacketOpIndices(spec);
  printf("converted to a %zu-op bytecode seed (%zu logical packets):\n", seed->ops.size(),
         pkt_idx.size());
  for (size_t i : pkt_idx) {
    std::string line = ToString(seed->ops[i].data);
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    printf("  pkt: %s\n", line.c_str());
  }

  // Fuzz with the imported seed.
  EngineConfig engine_cfg;
  engine_cfg.vm.mem_pages = 1024;
  FuzzerConfig fuzz_cfg;
  fuzz_cfg.policy = PolicyMode::kBalanced;
  fuzz_cfg.seed = 7;
  NyxFuzzer fuzzer(engine_cfg, reg->factory, spec, fuzz_cfg);
  fuzzer.AddSeed(std::move(*seed));

  CampaignLimits limits;
  limits.vtime_seconds = 7200.0;
  limits.wall_seconds = 60.0;
  limits.stop_on_crash = true;
  limits.stop_on_crash_id = kCrashProftpdMkdNull;
  printf("\nfuzzing proftpd with the PCAP seed (up to 2 virtual hours)...\n");
  CampaignResult result = fuzzer.Run(limits);
  printf("executions: %lu, coverage: %zu\n", static_cast<unsigned long>(result.execs),
         result.branch_coverage);
  if (result.FoundCrash(kCrashProftpdMkdNull)) {
    const auto& rec = result.crashes.at(kCrashProftpdMkdNull);
    printf("CRASH reproduced: %s (first seen after %.0f virtual seconds)\n",
           rec.kind.c_str(), rec.first_seen_vsec);
  } else {
    printf("no crash within this budget — re-run with a different seed or more time\n");
  }
  return 0;
}
