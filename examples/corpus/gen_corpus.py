#!/usr/bin/env python3
"""Regenerates the committed example corpus (*.nyx) in this directory.

The files target the GenericNetwork spec (lightftp/kamailio): node 0 is
`connection` (no args, outputs one conn), node 1 is `pkt` (borrows conn,
bytes payload), node 2 is `fault` (borrows conn, 4-byte fault plan).

Each file is a hand-picked analyzer fixture:
  basic_session.nyx      plain FTP session, nothing for the analyzer to do
  mid_fault.nyx          short-read fault with live packets after it (NOT dead)
  dead_trailing_fault.nyx trailing fault no later op can observe (provably dead)
  eintr_arg_a.nyx        kIntr fault, arg=0      \  identical NormalHash: the
  eintr_arg_b.nyx        kIntr fault, arg=0x1234 /  arg is ignored for kIntr

CI runs `nyx-net verify examples/corpus --target lightftp` over these, which
asserts they stay wire-clean and that the a/b pair reports as a semantic
duplicate group.
"""

import struct
from pathlib import Path

MAGIC = 0x4E595842
VERSION = 1

# FaultKind enumerators (src/spec/fault_plan.h).
SHORT_READ, SHORT_WRITE, EAGAIN, EINTR, CONN_RESET, PEER_CLOSE, TIMEOUT = range(7)


def op(node_type, args=(), data=b""):
    out = struct.pack("<BB", node_type, len(args))
    for a in args:
        out += struct.pack("<H", a)
    out += struct.pack("<I", len(data)) + data
    return out


def plan(kind, count=1, arg=0):
    return struct.pack("<BBH", kind, count, arg)


def program(*ops):
    return struct.pack("<IBH", MAGIC, VERSION, len(ops)) + b"".join(ops)


CONN = lambda: op(0)
PKT = lambda conn, payload: op(1, [conn], payload)
FAULT = lambda conn, p: op(2, [conn], p)

FILES = {
    "basic_session.nyx": program(
        CONN(),
        PKT(0, b"USER anonymous\r\n"),
        PKT(0, b"PASS fuzz\r\n"),
        PKT(0, b"QUIT\r\n"),
    ),
    "mid_fault.nyx": program(
        CONN(),
        PKT(0, b"USER anonymous\r\n"),
        FAULT(0, plan(SHORT_READ, count=2, arg=8)),
        PKT(0, b"PASS fuzz\r\n"),
        PKT(0, b"LIST\r\n"),
    ),
    "dead_trailing_fault.nyx": program(
        CONN(),
        PKT(0, b"USER anonymous\r\n"),
        PKT(0, b"QUIT\r\n"),
        FAULT(0, plan(CONN_RESET)),
    ),
    "eintr_arg_a.nyx": program(
        CONN(),
        FAULT(0, plan(EINTR, count=1, arg=0)),
        PKT(0, b"USER anonymous\r\n"),
    ),
    "eintr_arg_b.nyx": program(
        CONN(),
        FAULT(0, plan(EINTR, count=1, arg=0x1234)),
        PKT(0, b"USER anonymous\r\n"),
    ),
}

if __name__ == "__main__":
    here = Path(__file__).resolve().parent
    for name, wire in FILES.items():
        (here / name).write_bytes(wire)
        print(f"{name}: {len(wire)} bytes")
