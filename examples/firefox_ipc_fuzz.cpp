// Fuzzing a multi-connection IPC interface (paper section 5.6).
//
// Firefox's parent process talks to sandboxed content processes over many
// sockets at once; messages construct and destroy "actors" and route typed
// payloads to them. This example uses the multi-connection spec (Listing 1
// of the paper) whose close op *consumes* the connection — the affine-typed
// bytecode at work — and finds the message-to-destroyed-actor NULL
// dereference that the paper's Firefox campaign surfaced.

#include <cstdio>

#include "src/fuzz/fuzzer.h"
#include "src/spec/builder.h"
#include "src/targets/registry.h"

int main() {
  using namespace nyx;
  auto reg = FindTarget("firefox-ipc");
  Spec spec = reg->make_spec();  // Spec::MultiConnection()

  // A hand-written seed exercising two content-process channels, the way the
  // converted IPC traces look (actor construction, routed messages, close).
  auto msg = [](uint32_t actor, uint32_t type, Bytes payload) {
    Bytes m;
    PutLe32(m, actor);
    PutLe32(m, type);
    PutLe32(m, static_cast<uint32_t>(payload.size()));
    Append(m, payload);
    return m;
  };
  Builder b(spec);
  ValueRef content1 = b.Connection();
  ValueRef content2 = b.Connection();
  b.Packet(content1, msg(0, 1, {4}));                   // construct PWindow
  b.Packet(content1, msg(1, 4, ToBytes("nav:home")));   // route to it
  b.Packet(content2, msg(0, 1, {5}));                   // construct PNecko
  b.Packet(content2, msg(2, 5, ToBytes("http GET /")));  // route to it
  b.Packet(content1, msg(0, 6, {}));                    // sync ping to root
  b.Close(content2);                                    // affine: conn 2 is dead now
  auto seed = b.Build();

  EngineConfig engine_cfg;
  engine_cfg.vm.mem_pages = 1024;
  FuzzerConfig fuzz_cfg;
  fuzz_cfg.policy = PolicyMode::kBalanced;
  fuzz_cfg.seed = 5;
  NyxFuzzer fuzzer(engine_cfg, reg->factory, spec, fuzz_cfg);
  fuzzer.AddSeed(std::move(*seed));

  CampaignLimits limits;
  limits.vtime_seconds = 4.0 * 3600;
  limits.wall_seconds = 60.0;
  limits.stop_on_crash = true;
  limits.stop_on_crash_id = kCrashFirefoxIpcNullDeref;
  printf("fuzzing the IPC router (multi-connection spec, up to 4 virtual hours)...\n");
  CampaignResult result = fuzzer.Run(limits);

  printf("executions: %lu, coverage: %zu sites, corpus: %zu\n",
         static_cast<unsigned long>(result.execs), result.branch_coverage,
         result.corpus_size);
  if (result.FoundCrash(kCrashFirefoxIpcNullDeref)) {
    const auto& rec = result.crashes.at(kCrashFirefoxIpcNullDeref);
    printf("CRASH: %s after %.0f virtual seconds\n", rec.kind.c_str(), rec.first_seen_vsec);
    printf("reproducer: %zu ops\n", rec.reproducer.ops.size());
  } else {
    printf("no crash within this budget\n");
  }
  return 0;
}
