// Super Mario with incremental snapshots (paper section 5.3, Figure 2).
//
// Solves level 1-1 with the aggressive snapshot placement policy and
// compares the virtual solve time against the wall-clock duration of a
// perfect speedrun at the native 60 FPS — the paper's "faster than light"
// observation: spread across the testbed's 52 cores, the fuzzer solves the
// level before a flawless player could finish it once.

#include <cstdio>

#include "src/fuzz/fuzzer.h"
#include "src/mario/mario_target.h"

int main() {
  using namespace nyx;
  const std::string level_name = "1-1";
  const LevelDef* level = FindLevel(level_name);
  Spec spec = Spec::GenericNetwork();

  // The perfect run, for reference.
  uint32_t speedrun_frames = 0;
  MarioSpeedrun(spec, *level, 64, &speedrun_frames);
  const double speedrun_seconds = speedrun_frames / 60.0;
  printf("level %s: length %u tiles; perfect speedrun = %u frames = %.1f s at 60 FPS\n",
         level_name.c_str(), level->length, speedrun_frames, speedrun_seconds);

  // Fuzz: packets of 64 button-frames; IJON-style max-x feedback; aggressive
  // incremental snapshots park the VM right before the hard jumps.
  EngineConfig engine_cfg;
  engine_cfg.vm.mem_pages = 512;
  FuzzerConfig fuzz_cfg;
  fuzz_cfg.policy = PolicyMode::kAggressive;
  fuzz_cfg.seed = 3;
  NyxFuzzer fuzzer(
      engine_cfg, [&] { return MakeMarioTarget(level_name); }, spec, fuzz_cfg);
  fuzzer.AddSeed(MarioSeed(spec, *level, 64));

  CampaignLimits limits;
  limits.vtime_seconds = 24.0 * 3600;
  limits.wall_seconds = 90.0;
  limits.ijon_goal = static_cast<uint64_t>(MarioEngine(*level).goal_x());
  printf("fuzzing until solved...\n");
  CampaignResult result = fuzzer.Run(limits);

  if (result.ijon_goal_vsec < 0) {
    printf("not solved within the wall cap; progress: %lu of %lu subpixels\n",
           static_cast<unsigned long>(result.ijon_best),
           static_cast<unsigned long>(limits.ijon_goal));
    return 1;
  }
  printf("SOLVED after %.1f virtual seconds (%lu executions)\n", result.ijon_goal_vsec,
         static_cast<unsigned long>(result.execs));
  printf("incremental snapshots: %lu created, %lu reused\n",
         static_cast<unsigned long>(result.incremental_creates),
         static_cast<unsigned long>(result.incremental_restores));
  const double on_52_cores = result.ijon_goal_vsec / 52.0;
  printf("on the paper's 52 cores: ~%.1f s — %s the %.1f s speedrun ('faster than light')\n",
         on_52_cores, on_52_cores < speedrun_seconds ? "BEATS" : "does not beat",
         speedrun_seconds);
  return 0;
}
