#include "src/fuzz/fuzzer.h"

#include <chrono>

#include "src/common/check.h"
#include "src/common/telemetry.h"
#include "src/fuzz/frontier.h"
#include "src/spec/analyze.h"

namespace nyx {

NyxFuzzer::NyxFuzzer(const EngineConfig& engine_config, TargetFactory factory, const Spec& spec,
                     const FuzzerConfig& config)
    : spec_(spec),
      config_(config),
      engine_(engine_config, factory, spec),
      corpus_(&spec_),
      mutator_(spec, config.seed ^ 0x6d757461746f72ull, /*dictionary=*/true,
               config.fault_injection),
      policy_(config.policy, config.seed ^ 0x706f6c696379ull),
      rng_(config.seed) {}

void NyxFuzzer::AddSeed(Program seed) {
  seed.StripSnapshotMarkers();
  seed.Repair(spec_);
  if (seed.ops.empty()) {
    return;
  }
  const size_t packets = seed.PacketOpIndices(spec_).size();
  corpus_.Add(std::move(seed), 0, packets, 0.0);
}

bool NyxFuzzer::RunOne(const Program& input, CampaignResult& result) {
  trace_.Reset();
  const ExecResult exec = engine_.Run(input, trace_);
  result.execs++;
  last_exec_vtime_ = exec.vtime_ns;
  last_packets_ = exec.packets_delivered;
  const bool ijon_new = exec.ijon_max > result.ijon_best;
  if (ijon_new) {
    result.ijon_best = exec.ijon_max;
  }

  if (exec.crash.crashed) {
    CrashRecord& rec = result.crashes[exec.crash.crash_id];
    rec.count++;
    if (rec.count == 1) {
      rec.kind = exec.crash.kind;
      rec.first_seen_vsec = engine_.clock().now_seconds();
      rec.reproducer = input;
      rec.reproducer.StripSnapshotMarkers();
      if (result.first_crash_vsec < 0) {
        result.first_crash_vsec = rec.first_seen_vsec;
      }
    }
  }

  bool merged_new;
  {
    telemetry::ScopedPhase phase(telemetry::Phase::kCoverageMerge);
    merged_new = global_cov_.MergeAndCheckNew(trace_);
  }
  const bool new_bits = merged_new || ijon_new;
  return new_bits && !exec.crash.crashed;
}

void NyxFuzzer::MaybeAnalyzeCheck(const Program& input, CampaignResult& result) {
  if (!config_.analyze_check) {
    return;
  }
  const Program canon = spec::Canonicalize(input, spec_);
  if (canon.OpsHash(canon.ops.size()) == input.OpsHash(input.ops.size())) {
    return;  // identity rewrite: nothing to verify
  }
  std::string why;
  const bool equivalent = engine_.CheckRewriteEquivalence(input, canon, &why);
  NYX_CHECK(equivalent) << "NYX_ANALYZE_CHECK: canonical rewrite diverged: " << why;
  result.analyze_checks++;
}

CampaignResult NyxFuzzer::Run(const CampaignLimits& limits) {
  CampaignResult result;
  // Per-thread delta, not the process-global counter: concurrent campaigns
  // (harness/parallel.h) must each report only their own NYX_EXPECT misses.
  const uint64_t soft_at_start = GetThreadContractCounters().soft_failures;
  engine_.Boot();
  const uint64_t vtime_start = engine_.clock().now_ns();
  const auto wall_start = std::chrono::steady_clock::now();
  uint64_t prev_ijon_best = 0;

  auto vnow = [&] {
    return static_cast<double>(engine_.clock().now_ns() - vtime_start) * 1e-9;
  };
  auto out_of_budget = [&] {
    if (vnow() >= limits.vtime_seconds || result.execs >= limits.max_execs) {
      return true;
    }
    if (limits.stop_on_crash && !result.crashes.empty() &&
        (limits.stop_on_crash_id == 0 || result.FoundCrash(limits.stop_on_crash_id))) {
      return true;
    }
    if (limits.ijon_goal != 0 && result.ijon_best >= limits.ijon_goal) {
      return true;
    }
    const auto wall = std::chrono::steady_clock::now() - wall_start;
    return std::chrono::duration<double>(wall).count() >= limits.wall_seconds;
  };
  auto record_coverage = [&] {
    const double t = vnow();
    result.coverage_over_time.Record(t, static_cast<double>(global_cov_.SiteCount()));
    result.execs_over_time.Record(t, static_cast<double>(result.execs));
  };
  // Sharded mode: package the entries found since the last sync for the
  // frontier (corpus indices stay valid — entries live in a deque).
  auto drain_pending = [&] {
    std::vector<CorpusFrontier::Entry> batch;
    batch.reserve(pending_publish_.size());
    for (size_t idx : pending_publish_) {
      const CorpusEntry& e = corpus_.entry(idx);
      CorpusFrontier::Entry fe;
      fe.program = e.program;
      fe.vtime_ns = e.vtime_ns;
      fe.packet_count = e.packet_count;
      batch.push_back(std::move(fe));
    }
    pending_publish_.clear();
    return batch;
  };

  // Dry-run the seeds.
  for (size_t i = 0; i < corpus_.size() && !out_of_budget(); i++) {
    if (RunOne(corpus_.entry(i).program, result)) {
      record_coverage();
    }
    corpus_.SetVtime(i, last_exec_vtime_);
    MaybeAnalyzeCheck(corpus_.entry(i).program, result);
  }
  record_coverage();

  bool found_since_last_schedule = true;
  while (!out_of_budget()) {
    if (corpus_.empty()) {
      // No seeds at all: synthesize a minimal one-connection input.
      Program p;
      Op con;
      con.node_type = static_cast<uint8_t>(
          spec_.NodesWithSemantic(NodeSemantic::kConnection).front());
      p.ops.push_back(con);
      Op pkt;
      pkt.node_type =
          static_cast<uint8_t>(spec_.NodesWithSemantic(NodeSemantic::kPacket).front());
      pkt.args.push_back(0);
      pkt.data = ToBytes("\r\n");
      p.ops.push_back(pkt);
      corpus_.Add(std::move(p), 0, 1, vnow());
    }

    // Schedule an input and decide snapshot placement for this batch.
    CorpusEntry& entry = corpus_.Pick(rng_);
    const PlacementDecision decision =
        policy_.Decide(entry.packet_count, entry.cursor, found_since_last_schedule);
    found_since_last_schedule = false;
    engine_.DropIncremental();

    const auto base_packets = entry.program.PacketOpIndices(spec_);
    size_t first_mutable_op = 0;
    if (decision.use_incremental && decision.packet_index < base_packets.size()) {
      first_mutable_op = base_packets[decision.packet_index] + 1;
    }
    // Pin the donor list for this batch (Add() may reallocate).
    const std::vector<const Program*> donors = corpus_.Donors();
    const Program base = entry.program;

    for (uint64_t iter = 0; iter < config_.iterations_per_schedule && !out_of_budget(); iter++) {
      // Mostly mutate the suffix so the incremental snapshot stays reusable;
      // occasionally mutate the whole input (which then runs from the root
      // snapshot — a prefix change would invalidate the snapshot anyway).
      const bool full_range =
          decision.use_incremental && rng_.Chance(1, 4) && first_mutable_op > 0;
      Program mutated = base;
      {
        telemetry::ScopedPhase phase(telemetry::Phase::kMutate);
        mutator_.Mutate(mutated, donors, full_range ? 0 : first_mutable_op);
        if (decision.use_incremental && !full_range) {
          mutated.InsertSnapshotAfterPacket(spec_, decision.packet_index);
        }
      }
      const bool interesting = RunOne(mutated, result);
      if (interesting) {
        found_since_last_schedule = true;
        mutated.StripSnapshotMarkers();
        MaybeAnalyzeCheck(mutated, result);
        const size_t packets = mutated.PacketOpIndices(spec_).size();
        if (corpus_.Add(std::move(mutated), last_exec_vtime_, packets, vnow()) &&
            config_.frontier != nullptr) {
          pending_publish_.push_back(corpus_.size() - 1);
        }
        record_coverage();
      }
      if (result.ijon_best > prev_ijon_best) {
        prev_ijon_best = result.ijon_best;
        if (result.ijon_best >= limits.ijon_goal && limits.ijon_goal != 0 &&
            result.ijon_goal_vsec < 0) {
          result.ijon_goal_vsec = vnow();
        }
        found_since_last_schedule = true;
      }
    }

    if (config_.frontier != nullptr &&
        ++schedules_since_sync_ >= config_.sync_every_schedules) {
      schedules_since_sync_ = 0;
      std::vector<CorpusFrontier::Entry> imports =
          config_.frontier->ExchangeSync(config_.shard, drain_pending());
      // Adopt imports that are novel against *this* worker's coverage
      // (AFL -S semantics); they are not re-published — the frontier's
      // hash dedup would drop them anyway.
      for (CorpusFrontier::Entry& imp : imports) {
        if (out_of_budget()) {
          break;
        }
        if (RunOne(imp.program, result)) {
          found_since_last_schedule = true;
          MaybeAnalyzeCheck(imp.program, result);
          const size_t packets = imp.program.PacketOpIndices(spec_).size();
          corpus_.Add(std::move(imp.program), last_exec_vtime_, packets, vnow());
          record_coverage();
        }
      }
    }
  }

  if (config_.frontier != nullptr) {
    config_.frontier->Leave(config_.shard, drain_pending(), global_cov_);
  }

  record_coverage();
  result.vtime_seconds = vnow();
  result.execs_per_vsecond =
      result.vtime_seconds > 0 ? static_cast<double>(result.execs) / result.vtime_seconds : 0;
  result.branch_coverage = global_cov_.SiteCount();
  result.edge_coverage = global_cov_.EdgeCount();
  result.corpus_size = corpus_.size();
  result.incremental_creates = engine_.vm_stats().incremental_creates;
  result.incremental_restores = engine_.vm_stats().incremental_restores;
  result.root_restores = engine_.vm_stats().root_restores;
  result.contract_soft_failures = GetThreadContractCounters().soft_failures - soft_at_start;
  result.faults_injected = engine_.net().faults_injected();
  result.faulted_bytes = engine_.net().faulted_bytes();
  result.semantic_dupes = corpus_.semantic_dupes();
  if (engine_.auditor() != nullptr) {
    result.pages_audited = engine_.auditor()->stats().pages_audited;
    result.audit_divergences = engine_.auditor()->stats().divergences;
  }
  if (result.ijon_goal_vsec < 0 && limits.ijon_goal != 0 &&
      result.ijon_best >= limits.ijon_goal) {
    result.ijon_goal_vsec = result.vtime_seconds;
  }
  return result;
}

}  // namespace nyx
