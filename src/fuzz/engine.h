// The Nyx-Net execution engine (paper Figure 3, sections 3.2-3.4, 4.3).
//
// One engine owns one VM running one target. Boot() starts the target,
// runs it until it first blocks waiting for attack-surface input, and takes
// the root snapshot there — the automatic snapshot placement that selective
// emulation enables. Run() executes one bytecode input:
//
//   * ops are interpreted in order: connection ops queue connections,
//     packet ops deliver one packet and let the target run until it blocks,
//     close ops signal peer EOF;
//   * the snapshot marker op triggers creation of the depth-1 incremental
//     snapshot (with the interpreter + netemu state riding along in the
//     snapshot's aux blob); when VmConfig::snapshot_depth allows, further
//     snapshots are pushed automatically at later packet boundaries,
//     growing a linear chain of resume points;
//   * each chain link records the ops-hash of the input prefix it resumed
//     past. If the next input shares a prefix with the chain, the engine
//     restores to the *deepest* matching link and resumes at the op after
//     it — long shared message sequences pay only for their unshared tail.
//
// After the run the VM is left dirty; the next Run() restores as needed.

#ifndef SRC_FUZZ_ENGINE_H_
#define SRC_FUZZ_ENGINE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "src/common/env.h"
#include "src/common/rng.h"
#include "src/common/vclock.h"
#include "src/fuzz/audit.h"
#include "src/fuzz/coverage.h"
#include "src/fuzz/guest.h"
#include "src/netemu/netemu.h"
#include "src/spec/program.h"
#include "src/spec/spec.h"
#include "src/vm/state_registry.h"
#include "src/vm/vm.h"

namespace nyx {

struct EngineConfig {
  VmConfig vm;
  CostModel cost;
  bool asan = false;
  // Deterministic layout/noise seed mixed with the input hash each run.
  uint64_t seed = 1;
  // Snapshot divergence auditing (NYX_AUDIT=1, src/fuzz/audit.h): every
  // execution runs twice (three times when it creates an incremental
  // snapshot) and end states are compared. Debug oracle — triples per-exec
  // virtual cost.
  bool audit = env::Audit();
};

struct ExecResult {
  CrashInfo crash;
  uint64_t vtime_ns = 0;  // virtual time consumed by this execution
  size_t packets_delivered = 0;
  bool used_incremental = false;
  bool created_incremental = false;
  uint64_t ijon_max = 0;  // slot-0 maximization feedback
};

class NyxEngine {
 public:
  NyxEngine(const EngineConfig& config, TargetFactory factory, const Spec& spec);

  // Boots the VM + target and takes the root snapshot at the first
  // blocked-on-input point. Must be called once before Run().
  void Boot();

  // Executes one input, filling `cov` with the trace.
  ExecResult Run(const Program& input, CoverageMap& cov);

  // Executes one input with the per-exec RNG seed pinned to `rng_hash`
  // instead of being derived from the input's own ops hash. Differential
  // probes (analyzer soundness checks, corpus trimming) rewrite programs,
  // and a rewritten program hashes differently — without the pin the runs
  // would differ in deterministic noise, not semantics. Use InputRngHash()
  // of the *original* program as the pin.
  ExecResult RunPinned(const Program& input, uint64_t rng_hash, CoverageMap& cov);

  // NYX_ANALYZE_CHECK differential oracle (DESIGN.md §14): executes
  // `original` and `rewritten` back-to-back from the root snapshot with the
  // RNG pinned to the original's hash, and compares guest-observable end
  // states: guest memory pages, device registers, disk, per-exec RNG end
  // state, coverage edges + sites, crash outcome, packets delivered, and
  // IJON feedback. Host-side aux state (registry entry hashes) is
  // deliberately excluded: eliding a trailing fault op leaves an
  // armed-but-never-consulted netemu queue entry behind, which no guest
  // read can observe — that is the analyzer's defined residue. Returns
  // false and fills `why` on any mismatch. Leaves no incremental snapshot
  // behind.
  bool CheckRewriteEquivalence(const Program& original, const Program& rewritten,
                               std::string* why = nullptr);

  // Discards the incremental snapshot (called when scheduling a new input).
  void DropIncremental();

  const TargetInfo& target_info() const { return target_info_; }
  VirtualClock& clock() { return clock_; }
  Vm& vm() { return *vm_; }
  NetEmu& net() { return net_; }
  const VmStats& vm_stats() const { return vm_->stats(); }
  uint64_t execs() const { return execs_; }
  // Responses the target sent during the last Run (for AFLNet-style state
  // machines and for tests).
  std::vector<Bytes> LastResponses() const;

  // Snapshot-state inventory: every piece of host-side state that must
  // survive a restore is registered here; the snapshot aux blob is built
  // from it (DESIGN.md §10).
  SnapshotStateRegistry& state_registry() { return state_registry_; }
  // Null unless EngineConfig.audit (NYX_AUDIT=1).
  DivergenceAuditor* auditor() { return auditor_.get(); }

 private:
  ExecResult RunInternal(const Program& input, CoverageMap& cov);
  StateFingerprint CaptureFingerprint(const CoverageMap& cov, const ExecResult& result);
  Bytes SerializeInterpState(uint32_t resume_op);
  void RestoreInterpState(const Bytes& aux);
  int ResolveConn(const Op& op) const;

  EngineConfig config_;
  const Spec& spec_;
  VirtualClock clock_;
  std::unique_ptr<Vm> vm_;
  NetEmu net_;
  std::unique_ptr<Target> target_;
  TargetInfo target_info_;
  bool booted_ = false;
  SnapshotStateRegistry state_registry_;
  std::unique_ptr<DivergenceAuditor> auditor_;
  uint64_t last_exec_rng_hash_ = 0;
  // When set, RunInternal seeds the per-exec RNG from this instead of the
  // input's ops hash (see RunPinned).
  std::optional<uint64_t> exec_rng_hash_override_;

  // Interpreter state (snapshot-managed via aux blobs).
  std::vector<int> value_conns_;  // value id -> connection handle
  uint32_t resume_op_ = 0;
  size_t connection_ops_seen_ = 0;

  // One entry per tree snapshot depth: link d (index d-1) was captured
  // after executing ops [0, ops_hashed) whose hash was `hash`. The chain
  // mirrors the VM's valid-slot prefix; restores match the deepest link
  // whose prefix the new input shares.
  struct ChainLink {
    uint64_t hash;
    uint32_t ops_hashed;
  };
  std::vector<ChainLink> chain_;
  uint64_t execs_ = 0;
};

// The RNG-seeding hash RunInternal derives from an input (snapshot-prefix
// hash xor full ops hash). Pass this for the original program to RunPinned
// when probing a rewritten variant.
uint64_t InputRngHash(const Program& input);

}  // namespace nyx

#endif  // SRC_FUZZ_ENGINE_H_
