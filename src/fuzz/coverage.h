// Coverage feedback (paper section 4.5).
//
// Nyx-Net supports AFL-style compile-time instrumentation: the target updates
// a shared-memory bitmap; the fuzzer classifies hit counts into buckets and
// keeps a "virgin" map of bits never seen before. We reproduce that signal
// exactly. Separately we track which instrumentation *sites* were ever hit,
// which is what ProFuzzBench's "branch coverage" numbers (Tables 2/5,
// Figures 5/7) count.

#ifndef SRC_FUZZ_COVERAGE_H_
#define SRC_FUZZ_COVERAGE_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <vector>

namespace nyx {

inline constexpr size_t kCovMapSize = 1 << 16;
inline constexpr size_t kMaxSites = 1 << 16;

// Per-execution trace bitmap, written by the instrumented target.
class CoverageMap {
 public:
  CoverageMap() { Reset(); }

  void Reset() {
    map_.fill(0);
    sites_hit_.assign(kMaxSites / 8, 0);
    prev_loc_ = 0;
  }

  // Called at every instrumented site (AFL's __afl_maybe_log analogue).
  void OnSite(uint32_t site) {
    const uint32_t loc = site & (kCovMapSize - 1);
    map_[(loc ^ prev_loc_) & (kCovMapSize - 1)]++;
    prev_loc_ = loc >> 1;
    sites_hit_[(site & (kMaxSites - 1)) >> 3] |= static_cast<uint8_t>(1u << (site & 7));
  }

  // Background-thread noise: perturbs the fuzzer-visible edge map (queue
  // pollution) without counting toward the externally measured branch
  // coverage — gcov over the target's own code never sees these.
  void OnNoiseEdge(uint32_t edge) { map_[edge & (kCovMapSize - 1)]++; }

  const std::array<uint8_t, kCovMapSize>& map() const { return map_; }
  const std::vector<uint8_t>& sites_hit() const { return sites_hit_; }

 private:
  std::array<uint8_t, kCovMapSize> map_;
  std::vector<uint8_t> sites_hit_;
  uint32_t prev_loc_ = 0;
};

// Campaign-global accumulation: virgin bits for edge+hitcount novelty, site
// union for branch-coverage reporting.
class GlobalCoverage {
 public:
  GlobalCoverage() {
    virgin_.fill(0xff);
    sites_.assign(kMaxSites / 8, 0);
  }

  // Classifies hit counts into AFL's 8 buckets and folds the trace into the
  // virgin map. Returns true if any new (edge, bucket) bit appeared.
  bool MergeAndCheckNew(const CoverageMap& trace);

  // Distinct instrumentation sites ever hit ("branch coverage").
  size_t SiteCount() const { return site_count_; }

  // Edge-granularity count over the virgin map (AFL's "map density").
  size_t EdgeCount() const { return edge_count_; }

 private:
  static uint8_t Classify(uint8_t hits);

  std::array<uint8_t, kCovMapSize> virgin_;
  std::vector<uint8_t> sites_;
  size_t site_count_ = 0;
  size_t edge_count_ = 0;
};

}  // namespace nyx

#endif  // SRC_FUZZ_COVERAGE_H_
