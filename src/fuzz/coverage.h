// Coverage feedback (paper section 4.5).
//
// Nyx-Net supports AFL-style compile-time instrumentation: the target updates
// a shared-memory bitmap; the fuzzer classifies hit counts into buckets and
// keeps a "virgin" map of bits never seen before. We reproduce that signal
// exactly. Separately we track which instrumentation *sites* were ever hit,
// which is what ProFuzzBench's "branch coverage" numbers (Tables 2/5,
// Figures 5/7) count.
//
// Both the per-exec reset and the per-exec merge are hot: a typical exec
// touches a few hundred edges but the maps total 72 KiB. The trace map
// therefore tracks which fixed-size groups were dirtied, so Reset() clears
// and MergeAndCheckNew() scans only those, and the merge skims the map in
// 64-bit words, skipping zero words (AFL's classify_counts trick).

#ifndef SRC_FUZZ_COVERAGE_H_
#define SRC_FUZZ_COVERAGE_H_

#include <array>
#include <cstdint>
#include <cstring>

#include "src/common/check.h"
#include "src/common/sync.h"

namespace nyx {

inline constexpr size_t kCovMapSize = 1 << 16;
inline constexpr size_t kMaxSites = 1 << 16;
inline constexpr size_t kSiteBytes = kMaxSites / 8;

// Per-execution trace bitmap, written by the instrumented target.
class CoverageMap {
 public:
  // Dirty-group granularity: 128 groups over each map, so the group flags
  // stay in two cache lines while one flag still covers a usefully small
  // slice (512 B of edge counters / 64 B of site bits).
  static constexpr size_t kMapGroupBytes = kCovMapSize / 128;
  static constexpr size_t kMapGroups = kCovMapSize / kMapGroupBytes;
  static constexpr size_t kSiteGroupBytes = kSiteBytes / 128;
  static constexpr size_t kSiteGroups = kSiteBytes / kSiteGroupBytes;

  CoverageMap() {
    map_.fill(0);
    sites_hit_.fill(0);
    map_dirty_.fill(0);
    sites_dirty_.fill(0);
  }

  // Clears only the groups dirtied since the last Reset — a full 72 KiB
  // clear per exec was a measured hot spot.
  void Reset() {
    // One affinity check per exec (not per site): the map is worker-owned
    // and unlocked, which is only sound while exactly one thread writes it.
    NYX_DCHECK(thread_checker_.CalledOnValidThread());
    for (size_t g = 0; g < kMapGroups; g++) {
      if (map_dirty_[g] != 0) {
        memset(map_.data() + g * kMapGroupBytes, 0, kMapGroupBytes);
        map_dirty_[g] = 0;
      }
    }
    for (size_t g = 0; g < kSiteGroups; g++) {
      if (sites_dirty_[g] != 0) {
        memset(sites_hit_.data() + g * kSiteGroupBytes, 0, kSiteGroupBytes);
        sites_dirty_[g] = 0;
      }
    }
    prev_loc_ = 0;
  }

  // Called at every instrumented site (AFL's __afl_maybe_log analogue).
  void OnSite(uint32_t site) {
    const uint32_t loc = site & (kCovMapSize - 1);
    const uint32_t idx = (loc ^ prev_loc_) & (kCovMapSize - 1);
    map_[idx]++;
    map_dirty_[idx / kMapGroupBytes] = 1;
    prev_loc_ = loc >> 1;
    const uint32_t byte = (site & (kMaxSites - 1)) >> 3;
    sites_hit_[byte] |= static_cast<uint8_t>(1u << (site & 7));
    sites_dirty_[byte / kSiteGroupBytes] = 1;
  }

  // Background-thread noise: perturbs the fuzzer-visible edge map (queue
  // pollution) without counting toward the externally measured branch
  // coverage — gcov over the target's own code never sees these.
  void OnNoiseEdge(uint32_t edge) {
    const uint32_t idx = edge & (kCovMapSize - 1);
    map_[idx]++;
    map_dirty_[idx / kMapGroupBytes] = 1;
  }

  const std::array<uint8_t, kCovMapSize>& map() const { return map_; }
  const std::array<uint8_t, kSiteBytes>& sites_hit() const { return sites_hit_; }
  const std::array<uint8_t, kMapGroups>& map_dirty() const { return map_dirty_; }
  const std::array<uint8_t, kSiteGroups>& sites_dirty() const { return sites_dirty_; }

 private:
  // Cache-line-aligned so the per-site increments of two workers' maps can
  // never straddle a shared line even when the owning objects are adjacent.
  alignas(kCacheLineSize) std::array<uint8_t, kCovMapSize> map_;
  alignas(kCacheLineSize) std::array<uint8_t, kSiteBytes> sites_hit_;
  std::array<uint8_t, kMapGroups> map_dirty_;
  std::array<uint8_t, kSiteGroups> sites_dirty_;
  uint32_t prev_loc_ = 0;
  ThreadChecker thread_checker_;
};

// Campaign-global accumulation: virgin bits for edge+hitcount novelty, site
// union for branch-coverage reporting.
//
// Ownership is context-dependent, so no ThreadChecker here: each fuzzer's
// instance is worker-owned, while CorpusFrontier::merged_cov_ is written by
// every departing shard — under the frontier mutex (NYX_GUARDED_BY(mu_)).
class GlobalCoverage {
 public:
  GlobalCoverage() {
    virgin_.fill(0xff);
    sites_.fill(0);
  }

  // Classifies hit counts into AFL's 8 buckets and folds the trace into the
  // virgin map. Returns true if any new (edge, bucket) bit appeared.
  bool MergeAndCheckNew(const CoverageMap& trace);

  // Folds another campaign-global map into this one (sharded-fuzzing corpus
  // sync, see fuzz/frontier.h). Returns true if `other` had any (edge,
  // bucket) bit or site this map had not seen.
  bool MergeFrom(const GlobalCoverage& other);

  // Distinct instrumentation sites ever hit ("branch coverage").
  size_t SiteCount() const { return site_count_; }

  // Edge-granularity count over the virgin map (AFL's "map density").
  size_t EdgeCount() const { return edge_count_; }

 private:
  static uint8_t Classify(uint8_t hits);

  std::array<uint8_t, kCovMapSize> virgin_;
  std::array<uint8_t, kSiteBytes> sites_;
  size_t site_count_ = 0;
  size_t edge_count_ = 0;
};

}  // namespace nyx

#endif  // SRC_FUZZ_COVERAGE_H_
