#include "src/fuzz/trim.h"

#include <algorithm>
#include <vector>

#include "src/common/hash.h"
#include "src/spec/analyze.h"

namespace nyx {
namespace {

// The trim oracle's notion of "same behaviour": coverage and observable
// outcome, nothing else. Deliberately narrower than the full audit
// fingerprint — trimming is allowed to drop packets and connections as long
// as the trace and outcome are identical under pinned RNG.
struct CovFingerprint {
  uint64_t edge_hash = 0;
  uint64_t site_hash = 0;
  bool crashed = false;
  uint32_t crash_id = 0;
  uint64_t ijon_max = 0;

  bool operator==(const CovFingerprint& o) const {
    return edge_hash == o.edge_hash && site_hash == o.site_hash && crashed == o.crashed &&
           crash_id == o.crash_id && ijon_max == o.ijon_max;
  }
};

CovFingerprint Probe(NyxEngine& engine, const Program& p, uint64_t pin, CoverageMap& cov,
                     TrimStats& stats) {
  cov.Reset();
  const ExecResult r = engine.RunPinned(p, pin, cov);
  stats.probe_execs++;
  CovFingerprint fp;
  fp.edge_hash = Fnv1a64(cov.map().data(), cov.map().size());
  fp.site_hash = Fnv1a64(cov.sites_hit().data(), cov.sites_hit().size());
  fp.crashed = r.crash.crashed;
  fp.crash_id = r.crash.crash_id;
  fp.ijon_max = r.ijon_max;
  return fp;
}

// Candidate probe order for one pass. Analysis order: (provably) dead fault
// ops first, then the speculative candidates the lattice flagged, then
// payload ops from the tail inward, closes, and connections last (removing
// a connection usually drags its whole cone along — most likely to fail,
// so probed last). Naive order: reverse op index, the afl-tmin baseline.
std::vector<size_t> OrderedCandidates(const Program& p, const spec::Analysis& a,
                                      const Spec& spec, bool analysis_order) {
  std::vector<size_t> order;
  if (!analysis_order) {
    for (size_t i = p.ops.size(); i-- > 0;) {
      if (!a.ops[i].is_marker) order.push_back(i);
    }
    return order;
  }
  std::vector<size_t> dead;
  std::vector<size_t> speculative;
  std::vector<size_t> payload;
  std::vector<size_t> closes;
  std::vector<size_t> conns;
  for (size_t i = 0; i < p.ops.size(); i++) {
    if (a.ops[i].is_marker) continue;
    if (a.ops[i].provably_dead) {
      dead.push_back(i);
      continue;
    }
    if (a.ops[i].trim_candidate) {
      speculative.push_back(i);
      continue;
    }
    const Op& op = p.ops[i];
    if (op.node_type >= spec.node_type_count()) {
      payload.push_back(i);
      continue;
    }
    switch (spec.node_type(op.node_type).semantic) {
      case NodeSemantic::kClose:
        closes.push_back(i);
        break;
      case NodeSemantic::kConnection:
        conns.push_back(i);
        break;
      case NodeSemantic::kPacket:
      case NodeSemantic::kCustom:
      case NodeSemantic::kFault:
        payload.push_back(i);
        break;
    }
  }
  std::reverse(payload.begin(), payload.end());
  order.insert(order.end(), dead.begin(), dead.end());
  order.insert(order.end(), speculative.begin(), speculative.end());
  order.insert(order.end(), payload.begin(), payload.end());
  order.insert(order.end(), closes.begin(), closes.end());
  order.insert(order.end(), conns.begin(), conns.end());
  return order;
}

}  // namespace

Program TrimProgram(NyxEngine& engine, const Spec& spec, const Program& input,
                    const TrimOptions& options, TrimStats* stats) {
  TrimStats st;
  Program p = input;
  p.StripSnapshotMarkers();
  st.ops_before = p.ops.size();
  st.bytes_before = p.Serialize().size();

  const uint64_t pin = InputRngHash(p);
  const uint64_t divergences_before =
      engine.auditor() != nullptr ? engine.auditor()->stats().divergences : 0;

  CoverageMap cov;
  const CovFingerprint reference = Probe(engine, p, pin, cov, st);

  // Batch pre-probe (analysis order only): the analyzer's whole dead +
  // speculative set in one shot. When it lands — the common case, since
  // provably-dead ops always survive removal — every flagged op costs one
  // probe total instead of one each.
  if (options.analysis_order) {
    const spec::Analysis a = spec::Analyze(p, spec);
    std::vector<size_t> batch;
    for (size_t i = 0; i < p.ops.size(); i++) {
      if (!a.ops[i].provably_dead && !a.ops[i].trim_candidate) continue;
      const std::vector<size_t> cone = spec::RemovalCone(a, p, spec, i);
      batch.insert(batch.end(), cone.begin(), cone.end());
    }
    if (!batch.empty()) {
      std::optional<Program> candidate = spec::RemoveOps(p, spec, batch);
      if (candidate.has_value() && Probe(engine, *candidate, pin, cov, st) == reference) {
        p = std::move(*candidate);
      }
    }
  }

  for (size_t pass = 0; pass < options.max_passes; pass++) {
    const spec::Analysis a = spec::Analyze(p, spec);
    const std::vector<size_t> order = OrderedCandidates(p, a, spec, options.analysis_order);
    // Accepted removals this pass, as indices into the pass-start program:
    // analysis and cones stay valid for the survivors, so one analysis
    // serves the whole sweep and removals are applied in one rewrite.
    std::vector<bool> accepted(p.ops.size(), false);
    std::vector<size_t> accepted_list;
    bool changed = false;
    for (size_t i : order) {
      if (accepted[i]) continue;
      std::vector<size_t> trial = accepted_list;
      bool grew = false;
      for (size_t c : spec::RemovalCone(a, p, spec, i)) {
        if (!accepted[c]) {
          trial.push_back(c);
          grew = true;
        }
      }
      if (!grew) continue;
      std::optional<Program> candidate = spec::RemoveOps(p, spec, trial);
      if (!candidate.has_value()) continue;
      if (!(Probe(engine, *candidate, pin, cov, st) == reference)) continue;
      accepted_list = std::move(trial);
      for (size_t c : accepted_list) accepted[c] = true;
      changed = true;
    }
    if (!accepted_list.empty()) {
      std::optional<Program> next = spec::RemoveOps(p, spec, accepted_list);
      if (next.has_value()) p = std::move(*next);
    }
    if (!changed) break;
  }

  st.ops_after = p.ops.size();
  st.bytes_after = p.Serialize().size();
  st.audit_divergences =
      (engine.auditor() != nullptr ? engine.auditor()->stats().divergences : 0) -
      divergences_before;
  if (stats != nullptr) {
    *stats = st;
  }
  return p;
}

}  // namespace nyx
