// On-disk campaign state, AFL-style:
//
//   <workdir>/queue/id_000042.nyx     bytecode corpus entries
//   <workdir>/crashes/<id>_<kind>.nyx crash reproducers
//   <workdir>/stats.txt               final campaign statistics (text)
//   <workdir>/metrics.json            same statistics, machine-readable,
//                                     plus the process-wide metric registry
//                                     (phase histograms when telemetry is on)
//   <workdir>/plot_data               per-campaign time series CSV
//                                     (vtime, execs, branch coverage)
//
// The stats files are written via tmp+fsync+rename, so readers never observe
// a truncated file even if the run is killed mid-write.
//
// The wire format is the Program serialization (src/spec/program.h), so
// corpus entries can be copied between campaigns, hand-edited via the
// Builder, or replayed with the nyx-net-repro tool.

#ifndef SRC_FUZZ_WORKDIR_H_
#define SRC_FUZZ_WORKDIR_H_

#include <optional>
#include <string>
#include <vector>

#include "src/fuzz/fuzzer.h"
#include "src/spec/program.h"
#include "src/spec/spec.h"

namespace nyx {

class Workdir {
 public:
  // Creates <path>, <path>/queue and <path>/crashes if missing.
  static std::optional<Workdir> Open(const std::string& path);

  const std::string& path() const { return path_; }

  // Queue persistence.
  bool SaveQueueEntry(const Program& program, size_t index) const;
  std::vector<Program> LoadQueue(const Spec& spec) const;

  // Crash persistence.
  bool SaveCrash(uint32_t crash_id, const std::string& kind, const Program& reproducer) const;
  std::vector<std::pair<std::string, Program>> LoadCrashes(const Spec& spec) const;

  // Writes the whole campaign result: queue, crashes and stats.txt.
  bool SaveCampaign(const CampaignResult& result, const Corpus& corpus) const;

  // Single-file helpers.
  static bool WriteProgram(const std::string& file, const Program& program);
  static std::optional<Program> ReadProgram(const std::string& file, const Spec& spec);

 private:
  explicit Workdir(std::string path) : path_(std::move(path)) {}

  std::string path_;
};

}  // namespace nyx

#endif  // SRC_FUZZ_WORKDIR_H_
