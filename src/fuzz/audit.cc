#include "src/fuzz/audit.h"

#include "src/common/log.h"
#include "src/vm/page.h"

namespace nyx {

DivergenceAuditor::DivergenceAuditor()
    : pages_counter_(telemetry::MetricRegistry::Global().RegisterCounter("audit.pages_compared")),
      divergences_counter_(telemetry::MetricRegistry::Global().RegisterCounter("audit.divergences")),
      programs_counter_(
          telemetry::MetricRegistry::Global().RegisterCounter("audit.programs_audited")) {}

void DivergenceAuditor::Note(std::vector<Divergence>& out, std::string source,
                             std::string owner, uint64_t page) {
  stats_.divergences++;
  divergences_counter_->Add(1);
  Divergence d{std::move(source), std::move(owner), page};
  // Cap the per-comparison report; the counters and log_ keep the tally.
  if (out.size() < 16) {
    NYX_LOG_WARN << "snapshot divergence (" << comparing_ << "): " << d.source
                 << " owned by " << d.owner
                 << (d.source == "guest-page" ? " page " + std::to_string(page) : "");
    out.push_back(d);
  }
  log_.push_back(std::move(d));
}

void DivergenceAuditor::CompareState(const StateFingerprint& a, const StateFingerprint& b,
                                     const SnapshotStateRegistry& registry,
                                     std::vector<Divergence>& out) {
  // Guest memory: the page-granular walk IS the bisection — every diverging
  // page is attributed to the guest region that owns it.
  const size_t pages = a.page_hashes.size() < b.page_hashes.size() ? a.page_hashes.size()
                                                                   : b.page_hashes.size();
  stats_.pages_audited += pages;
  pages_counter_->Add(pages);
  for (size_t p = 0; p < pages; p++) {
    if (a.page_hashes[p] != b.page_hashes[p]) {
      Note(out, "guest-page", registry.GuestOwner(p * kPageSize), p);
    }
  }

  for (size_t i = 0; i < a.device_hashes.size() && i < b.device_hashes.size(); i++) {
    if (a.device_hashes[i] != b.device_hashes[i]) {
      Note(out, "device", a.device_hashes[i].first);
    }
  }

  if (a.disk_hash != b.disk_hash) {
    Note(out, "disk", "vm.block_device");
  }

  // Registered host state, by entry name. An entry present on one side only
  // means the registration set itself changed mid-run — report it as the
  // entry's own divergence.
  size_t i = 0, j = 0;
  while (i < a.host_hashes.size() || j < b.host_hashes.size()) {
    if (i < a.host_hashes.size() && j < b.host_hashes.size() &&
        a.host_hashes[i].first == b.host_hashes[j].first) {
      if (a.host_hashes[i].second != b.host_hashes[j].second) {
        Note(out, "host-state", a.host_hashes[i].first);
      }
      i++;
      j++;
    } else {
      Note(out, "host-state",
           i < a.host_hashes.size() ? a.host_hashes[i].first : b.host_hashes[j].first);
      break;
    }
  }
}

std::vector<DivergenceAuditor::Divergence> DivergenceAuditor::CompareReplay(
    const StateFingerprint& a, const StateFingerprint& b,
    const SnapshotStateRegistry& registry) {
  stats_.programs_audited++;
  programs_counter_->Add(1);
  comparing_ = "replay";
  std::vector<Divergence> out;
  CompareState(a, b, registry, out);

  // Replays reseed from the same input hash, so even the per-exec RNG end
  // state must match. Cross-restore runs draw a different number of values
  // (the resumed run skips the prefix), so only the replay path checks this.
  if (a.rng_hash != b.rng_hash) {
    Note(out, "rng", "engine.exec_rng");
  }

  // Identical path + identical start state: coverage and observable results
  // must match exactly. A mismatch here with all registered state equal is
  // the signature of host state the registry never heard of.
  const bool state_clean = out.empty();
  if (a.edge_hash != b.edge_hash || a.sites != b.sites) {
    Note(out, "coverage", state_clean ? SnapshotStateRegistry::kUnregistered : "see-state");
  }
  if (a.crashed != b.crashed || a.crash_id != b.crash_id ||
      a.packets_delivered != b.packets_delivered || a.ijon_max != b.ijon_max) {
    Note(out, "result", state_clean ? SnapshotStateRegistry::kUnregistered : "see-state");
  }
  return out;
}

void DivergenceAuditor::ReportEphemeralFailures(const std::vector<std::string>& failed) {
  comparing_ = "ephemeral";
  std::vector<Divergence> scratch;
  for (const std::string& name : failed) {
    Note(scratch, "ephemeral", name);
  }
}

std::vector<DivergenceAuditor::Divergence> DivergenceAuditor::CompareCrossRestore(
    const StateFingerprint& full, const StateFingerprint& resumed,
    const SnapshotStateRegistry& registry) {
  stats_.cross_audits++;
  comparing_ = "cross-restore";
  std::vector<Divergence> out;
  CompareState(full, resumed, registry, out);

  // The resumed run skipped the prefix, so totals differ; but it must not
  // reach a site the full run never reached, and must end the same way.
  if (full.sites.size() == resumed.sites.size()) {
    for (size_t b = 0; b < resumed.sites.size(); b++) {
      if ((resumed.sites[b] & ~full.sites[b]) != 0) {
        Note(out, "coverage", SnapshotStateRegistry::kUnregistered);
        break;
      }
    }
  }
  if (full.crashed != resumed.crashed || full.crash_id != resumed.crash_id) {
    Note(out, "result", out.empty() ? SnapshotStateRegistry::kUnregistered : "see-state");
  }
  return out;
}

}  // namespace nyx
