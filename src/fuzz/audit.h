// Cross-restore determinism auditor: the dynamic half of the
// snapshot-completeness analysis (DESIGN.md §10).
//
// With NYX_AUDIT=1 the engine executes every program twice from the same
// snapshot (root or incremental — whichever the first execution used) and
// compares end-state fingerprints: a page-granular hash of guest memory,
// every emulated device's register file, the disk, every registered
// host-state entry (src/vm/state_registry.h), the per-exec RNG, the
// coverage maps and the observable execution result. Any state a restore
// misses keeps evolving across executions, so the replay diverges — the
// classic run-twice oracle, but with attribution: the auditor bisects to
// the diverging page or entry and names the owning registration, or reports
// UNREGISTERED when the divergence is visible only through behaviour
// (coverage/result) while all registered state matches — the signature of
// mutable host state that escaped the registry.
//
// When the first execution ran from the root snapshot and created an
// incremental snapshot, a third execution resumes from that incremental
// snapshot and its end state is compared too ("cross-restore"): restoring
// the snapshot and executing the suffix must land exactly where executing
// the whole program did. This directly validates that CreateIncremental +
// RestoreIncremental is equivalent to re-execution — the oracle future
// dirty-tracker backends and snapshot trees will be validated against.
//
// The auditor is a debug oracle: it triples per-exec cost and is compiled
// in always but constructed only when EngineConfig.audit is set.

#ifndef SRC_FUZZ_AUDIT_H_
#define SRC_FUZZ_AUDIT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/telemetry.h"
#include "src/vm/state_registry.h"

namespace nyx {

// End-of-execution state summary, captured by NyxEngine after each audited
// run. Hashes only (plus the site bitmap for the subset check) — the
// auditor never needs the full state, just enough to attribute a mismatch.
struct StateFingerprint {
  std::vector<uint64_t> page_hashes;  // one FNV per guest page
  std::vector<std::pair<std::string, uint64_t>> device_hashes;
  uint64_t disk_hash = 0;
  std::vector<std::pair<std::string, uint64_t>> host_hashes;  // registry entries
  uint64_t rng_hash = 0;   // per-exec RNG end state
  uint64_t edge_hash = 0;  // coverage edge/hitcount map
  Bytes sites;             // site bitmap (for equality and subset checks)
  // Observable result of the execution.
  bool crashed = false;
  uint32_t crash_id = 0;
  uint64_t packets_delivered = 0;
  uint64_t ijon_max = 0;
};

class DivergenceAuditor {
 public:
  DivergenceAuditor();

  struct Divergence {
    // What diverged: "guest-page", "device", "disk", "host-state", "rng",
    // "coverage", "result", "ephemeral".
    std::string source;
    // Owning registration or guest-region name, or
    // SnapshotStateRegistry::kUnregistered.
    std::string owner;
    uint64_t page = 0;  // guest page index for guest-page divergences
  };

  struct Stats {
    uint64_t programs_audited = 0;   // programs double-executed
    uint64_t cross_audits = 0;       // incremental-vs-full comparisons
    uint64_t pages_audited = 0;      // page hash comparisons performed
    uint64_t divergences = 0;        // total divergence records
  };

  // Replay comparison: both executions took the identical path, so every
  // component must match bit-for-bit.
  std::vector<Divergence> CompareReplay(const StateFingerprint& a, const StateFingerprint& b,
                                        const SnapshotStateRegistry& registry);

  // Cross-restore comparison: `full` executed the whole program from the
  // root snapshot, `resumed` restored the incremental snapshot and executed
  // only the suffix. End state must match; coverage of the resumed run must
  // be a subset of the full run's; packet/vtime totals legitimately differ.
  std::vector<Divergence> CompareCrossRestore(const StateFingerprint& full,
                                              const StateFingerprint& resumed,
                                              const SnapshotStateRegistry& registry);

  // Records ephemeral-invariant failures (SnapshotStateRegistry::
  // CheckEphemeral output: state declared per-exec that did not return to
  // its idle state between executions).
  void ReportEphemeralFailures(const std::vector<std::string>& failed);

  const Stats& stats() const { return stats_; }
  const std::vector<Divergence>& divergences() const { return log_; }

 private:
  void CompareState(const StateFingerprint& a, const StateFingerprint& b,
                    const SnapshotStateRegistry& registry, std::vector<Divergence>& out);
  void Note(std::vector<Divergence>& out, std::string source, std::string owner,
            uint64_t page = 0);

  Stats stats_;
  std::vector<Divergence> log_;  // every divergence ever recorded (tests)
  const char* comparing_ = "";   // which comparison is running (log detail)
  // Global-registry mirrors of the Stats counters (resolved once in the
  // constructor), so audited runs show up in metrics.json process dumps.
  telemetry::Counter* pages_counter_;
  telemetry::Counter* divergences_counter_;
  telemetry::Counter* programs_counter_;
};

}  // namespace nyx

#endif  // SRC_FUZZ_AUDIT_H_
