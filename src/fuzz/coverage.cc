#include "src/fuzz/coverage.h"

namespace nyx {

namespace {

inline uint64_t LoadWord(const uint8_t* p) {
  uint64_t w;
  memcpy(&w, p, sizeof(w));
  return w;
}

inline void StoreWord(uint8_t* p, uint64_t w) { memcpy(p, &w, sizeof(w)); }

}  // namespace

uint8_t GlobalCoverage::Classify(uint8_t hits) {
  if (hits == 0) {
    return 0;
  }
  if (hits == 1) {
    return 1 << 0;
  }
  if (hits == 2) {
    return 1 << 1;
  }
  if (hits == 3) {
    return 1 << 2;
  }
  if (hits <= 7) {
    return 1 << 3;
  }
  if (hits <= 15) {
    return 1 << 4;
  }
  if (hits <= 31) {
    return 1 << 5;
  }
  if (hits <= 127) {
    return 1 << 6;
  }
  return 1 << 7;
}

bool GlobalCoverage::MergeAndCheckNew(const CoverageMap& trace) {
  bool new_bits = false;
  const auto& map = trace.map();
  const auto& map_dirty = trace.map_dirty();
  for (size_t g = 0; g < CoverageMap::kMapGroups; g++) {
    if (map_dirty[g] == 0) {
      continue;  // group untouched since Reset: guaranteed all-zero
    }
    const size_t base = g * CoverageMap::kMapGroupBytes;
    for (size_t off = 0; off < CoverageMap::kMapGroupBytes; off += 8) {
      if (LoadWord(map.data() + base + off) == 0) {
        continue;  // zero-word skim: most of even a dirty group is untouched
      }
      const size_t end = base + off + 8;
      for (size_t i = base + off; i < end; i++) {
        if (map[i] == 0) {
          continue;
        }
        const uint8_t cls = Classify(map[i]);
        if ((virgin_[i] & cls) != 0) {
          if (virgin_[i] == 0xff) {
            edge_count_++;
          }
          virgin_[i] &= static_cast<uint8_t>(~cls);
          new_bits = true;
        }
      }
    }
  }
  const auto& sites = trace.sites_hit();
  const auto& sites_dirty = trace.sites_dirty();
  for (size_t g = 0; g < CoverageMap::kSiteGroups; g++) {
    if (sites_dirty[g] == 0) {
      continue;
    }
    const size_t base = g * CoverageMap::kSiteGroupBytes;
    for (size_t off = 0; off < CoverageMap::kSiteGroupBytes; off += 8) {
      const uint64_t trace_w = LoadWord(sites.data() + base + off);
      const uint64_t mine_w = LoadWord(sites_.data() + base + off);
      const uint64_t fresh = trace_w & ~mine_w;
      if (fresh != 0) {
        StoreWord(sites_.data() + base + off, mine_w | fresh);
        site_count_ += static_cast<size_t>(__builtin_popcountll(fresh));
      }
    }
  }
  return new_bits;
}

bool GlobalCoverage::MergeFrom(const GlobalCoverage& other) {
  bool new_bits = false;
  for (size_t off = 0; off < kCovMapSize; off += 8) {
    // Bits *cleared* in the other virgin map that are still set here.
    const uint64_t fresh_w = ~LoadWord(other.virgin_.data() + off) & LoadWord(virgin_.data() + off);
    if (fresh_w == 0) {
      continue;
    }
    for (size_t i = off; i < off + 8; i++) {
      const uint8_t fresh = static_cast<uint8_t>(~other.virgin_[i] & virgin_[i]);
      if (fresh != 0) {
        if (virgin_[i] == 0xff) {
          edge_count_++;
        }
        virgin_[i] &= static_cast<uint8_t>(~fresh);
        new_bits = true;
      }
    }
  }
  for (size_t off = 0; off < kSiteBytes; off += 8) {
    const uint64_t theirs = LoadWord(other.sites_.data() + off);
    const uint64_t mine = LoadWord(sites_.data() + off);
    const uint64_t fresh = theirs & ~mine;
    if (fresh != 0) {
      StoreWord(sites_.data() + off, mine | fresh);
      site_count_ += static_cast<size_t>(__builtin_popcountll(fresh));
      new_bits = true;
    }
  }
  return new_bits;
}

}  // namespace nyx
