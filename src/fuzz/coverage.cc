#include "src/fuzz/coverage.h"

namespace nyx {

uint8_t GlobalCoverage::Classify(uint8_t hits) {
  if (hits == 0) {
    return 0;
  }
  if (hits == 1) {
    return 1 << 0;
  }
  if (hits == 2) {
    return 1 << 1;
  }
  if (hits == 3) {
    return 1 << 2;
  }
  if (hits <= 7) {
    return 1 << 3;
  }
  if (hits <= 15) {
    return 1 << 4;
  }
  if (hits <= 31) {
    return 1 << 5;
  }
  if (hits <= 127) {
    return 1 << 6;
  }
  return 1 << 7;
}

bool GlobalCoverage::MergeAndCheckNew(const CoverageMap& trace) {
  bool new_bits = false;
  const auto& map = trace.map();
  for (size_t i = 0; i < kCovMapSize; i++) {
    if (map[i] == 0) {
      continue;
    }
    const uint8_t cls = Classify(map[i]);
    if ((virgin_[i] & cls) != 0) {
      if (virgin_[i] == 0xff) {
        edge_count_++;
      }
      virgin_[i] &= static_cast<uint8_t>(~cls);
      new_bits = true;
    }
  }
  const auto& sites = trace.sites_hit();
  for (size_t i = 0; i < sites.size(); i++) {
    const uint8_t fresh = static_cast<uint8_t>(sites[i] & ~sites_[i]);
    if (fresh != 0) {
      sites_[i] |= fresh;
      site_count_ += static_cast<size_t>(__builtin_popcount(fresh));
    }
  }
  return new_bits;
}

}  // namespace nyx
