#include "src/fuzz/engine.h"

#include <cstdio>
#include <cstdlib>

#include "src/common/check.h"
#include "src/common/hash.h"
#include "src/common/telemetry.h"

namespace nyx {

NyxEngine::NyxEngine(const EngineConfig& config, TargetFactory factory, const Spec& spec)
    : config_(config), spec_(spec) {
  vm_ = std::make_unique<Vm>(config_.vm);
  vm_->AttachClock(&clock_, &config_.cost);
  net_.AttachClock(&clock_, &config_.cost);
  target_ = factory();
  target_info_ = target_->info();
  if (config_.audit) {
    auditor_ = std::make_unique<DivergenceAuditor>();
  }

  // Snapshot-state inventory (DESIGN.md §10): every piece of host-side state
  // that a restore must bring back is registered here, and the snapshot aux
  // blob is assembled from these hooks — state outside the registry cannot
  // ride along even by accident.
  SnapshotStateRegistry::HostState netemu_state;
  netemu_state.name = "netemu.socket_table";
  netemu_state.owner = "src/netemu/netemu.cc";
  netemu_state.capture = [this] { return net_.Serialize(); };
  netemu_state.restore = [this](const Bytes& blob) { return net_.Deserialize(blob); };
  state_registry_.RegisterHostState(std::move(netemu_state));

  SnapshotStateRegistry::HostState interp_state;
  interp_state.name = "engine.interp";
  interp_state.owner = "src/fuzz/engine.cc";
  interp_state.capture = [this] {
    Bytes out;
    PutLe32(out, static_cast<uint32_t>(value_conns_.size()));
    for (int c : value_conns_) {
      PutLe32(out, static_cast<uint32_t>(c));
    }
    PutLe32(out, resume_op_);
    PutLe32(out, static_cast<uint32_t>(connection_ops_seen_));
    return out;
  };
  interp_state.restore = [this](const Bytes& blob) {
    size_t off = 0;
    const uint32_t nvals = ReadLe32(blob, off);
    off += 4;
    if (blob.size() != 4 + 4ull * nvals + 8) {
      return false;
    }
    value_conns_.clear();
    for (uint32_t i = 0; i < nvals; i++) {
      value_conns_.push_back(static_cast<int>(ReadLe32(blob, off)));
      off += 4;
    }
    resume_op_ = ReadLe32(blob, off);
    off += 4;
    connection_ops_seen_ = ReadLe32(blob, off);
    return true;
  };
  state_registry_.RegisterHostState(std::move(interp_state));

  // Per-exec ephemerals: never snapshotted, asserted back to their idle
  // state between executions where an invariant exists.
  state_registry_.DeclareEphemeral("engine.exec_rng", "src/fuzz/engine.cc");
  state_registry_.DeclareEphemeral("guest.fault_jmp", "src/fuzz/guest.cc",
                                   [] { return FaultGuardIdle(); });
  state_registry_.DeclareEphemeral("coverage.trace_map", "src/fuzz/coverage.h");
  // Telemetry is observational host state: phase timers and the trace ring
  // never feed back into execution, so they are per-exec ephemeral, not
  // snapshot state. The verify hook pins the invariant that makes this
  // sound — no phase scope may straddle an execution boundary (a frame left
  // open would attribute one exec's time to another).
  state_registry_.DeclareEphemeral("telemetry.phase_timers", "src/common/telemetry.cc",
                                   [] { return telemetry::PhaseDepth() == 0; });
  state_registry_.DeclareEphemeral("telemetry.trace_ring", "src/common/trace.cc");
}

Bytes NyxEngine::SerializeInterpState(uint32_t resume_op) {
  resume_op_ = resume_op;
  return state_registry_.CaptureAll();
}

void NyxEngine::RestoreInterpState(const Bytes& aux) {
  // Aux blobs are engine-produced; a mismatch means corruption. Fail hard
  // rather than restoring partial state.
  NYX_CHECK(state_registry_.RestoreAll(aux)) << "corrupt snapshot aux blob";
}

void NyxEngine::Boot() {
  CoverageMap boot_cov;
  GuestContext ctx(*vm_, net_, boot_cov, clock_, config_.cost);
  ctx.set_asan(config_.asan);
  ctx.ReseedRng(config_.seed);
  target_->Init(ctx);
  GuardedStep(*target_, ctx);

  // Name the guest-physical layout so the divergence auditor can attribute
  // a diverging page to its owner (guest.h layout + the target's declared
  // state-struct size).
  const uint64_t mem_bytes = vm_->mem().size_bytes();
  state_registry_.RegisterGuestRegion("guest.reserved", 0, kStateBase);
  const uint64_t state_window = kHeapBase - kStateBase;
  const uint64_t state_bytes =
      target_info_.state_bytes > 0 && target_info_.state_bytes < state_window
          ? target_info_.state_bytes
          : state_window;
  state_registry_.RegisterGuestRegion("target." + target_info_.name + ".state", kStateBase,
                                      state_bytes);
  if (state_bytes < state_window) {
    state_registry_.RegisterGuestRegion("guest.state_slack", kStateBase + state_bytes,
                                        state_window - state_bytes);
  }
  if (mem_bytes > kHeapBase) {
    const uint64_t heap_end = mem_bytes < kScratchBase ? mem_bytes : kScratchBase;
    state_registry_.RegisterGuestRegion("guest.heap", kHeapBase, heap_end - kHeapBase);
  }
  if (mem_bytes > kScratchBase) {
    state_registry_.RegisterGuestRegion("guest.scratch", kScratchBase,
                                        mem_bytes - kScratchBase);
  }

  // The target is now parked on Accept/Recv/Poll over the attack surface:
  // the automatic root snapshot point, "after starting the process and
  // directly before the first byte of input data is passed to the target".
  value_conns_.clear();
  connection_ops_seen_ = 0;
  vm_->TakeRootSnapshot(SerializeInterpState(0));
  booted_ = true;
}

int NyxEngine::ResolveConn(const Op& op) const {
  if (op.args.empty()) {
    return -1;
  }
  const uint16_t value_id = op.args[0];
  if (value_id < value_conns_.size()) {
    return value_conns_[value_id];
  }
  // Dangling reference (the mutator repairs most, but stay defensive): fall
  // back to the most recent connection.
  return value_conns_.empty() ? -1 : value_conns_.back();
}

ExecResult NyxEngine::Run(const Program& input, CoverageMap& cov) {
  execs_++;
  if (auditor_ == nullptr) {
    return RunInternal(input, cov);
  }

  // Audit mode (NYX_AUDIT=1): run the program, replay it down the identical
  // path, and compare end states. See src/fuzz/audit.h for the oracle.
  const std::vector<ChainLink> pre_chain = chain_;
  ExecResult result_a = RunInternal(input, cov);
  {
    // Everything past the primary execution is audit overhead:
    // fingerprinting, the replay (whose inner phases nest here and keep
    // their own self-time), and the cross-restore check. The scope closes
    // before CheckEphemeral below — that check runs the telemetry
    // phase-depth verify hook, which must observe depth zero.
    telemetry::ScopedPhase phase(telemetry::Phase::kAudit);
    const StateFingerprint fp_a = CaptureFingerprint(cov, result_a);

    // Force the replay down run A's exact path: A may have pushed new
    // snapshots mid-run (the marker, or packet-boundary auto-pushes that
    // extend the chain past A's own match), and the replay must compute
    // the same chain match A did rather than shortcut through links A
    // just recorded. Restoring the pre-A chain is sufficient: A only
    // pushed *deeper* than its match, so every slot the restored chain
    // can match is still valid, the first hash mismatch falls at the same
    // depth, and B re-pushes the same snapshots from identical state.
    chain_ = pre_chain;
    CoverageMap audit_cov;
    ExecResult result_b = RunInternal(input, audit_cov);
    const StateFingerprint fp_b = CaptureFingerprint(audit_cov, result_b);
    auditor_->CompareReplay(fp_a, fp_b, state_registry_);

    // Cross-restore check: if the replay recreated the incremental
    // snapshot, a third execution takes the restore-and-resume shortcut
    // through it and must land exactly where the full replay did. Comparing
    // against run B's own just-created snapshot keeps the per-exec RNG
    // seeding consistent.
    if (!result_a.used_incremental && result_b.created_incremental && vm_->has_incremental()) {
      audit_cov.Reset();
      ExecResult result_c = RunInternal(input, audit_cov);
      if (result_c.used_incremental) {
        const StateFingerprint fp_c = CaptureFingerprint(audit_cov, result_c);
        auditor_->CompareCrossRestore(fp_b, fp_c, state_registry_);
      }
    }
  }
  auditor_->ReportEphemeralFailures(state_registry_.CheckEphemeral());
  return result_a;
}

ExecResult NyxEngine::RunInternal(const Program& input, CoverageMap& cov) {
  ExecResult result;
  const uint64_t t0 = clock_.now_ns();

  const auto marker = input.SnapshotMarkerPos();
  const uint64_t prefix_hash = marker.has_value() ? input.OpsHash(*marker) : 0;

  size_t start_op = 0;
  {
    telemetry::ScopedPhase phase(telemetry::Phase::kSnapshotRestore);
    // Deepest chain link whose recorded prefix the new input shares. Links
    // match in order; the first mismatch caps the depth (anything deeper
    // was captured past a diverging op). The VM bounds the search to its
    // valid-slot prefix.
    size_t match = 0;
    if (marker.has_value()) {
      size_t limit = chain_.size() < vm_->max_valid_depth() ? chain_.size()
                                                            : vm_->max_valid_depth();
      for (size_t d = 1; d <= limit; d++) {
        const ChainLink& link = chain_[d - 1];
        if (link.ops_hashed > input.ops.size() ||
            input.OpsHash(link.ops_hashed) != link.hash) {
          break;
        }
        match = d;
      }
    }
    if (match > 0) {
      vm_->RestoreTo(match);
      RestoreInterpState(vm_->current_aux());
      start_op = resume_op_;
      result.used_incremental = true;
    } else {
      vm_->RestoreRoot();
      RestoreInterpState(vm_->current_aux());
      start_op = 0;
      chain_.clear();
    }
  }

  GuestContext ctx(*vm_, net_, cov, clock_, config_.cost);
  ctx.set_asan(config_.asan);
  // Deterministic per-input noise: the same input always sees the same
  // layout, different inputs differ. OpsHash is allocation-free — a full
  // Serialize() here cost a heap round trip on every exec. Differential
  // probes pin the hash (RunPinned) so a rewritten program sees the
  // original's noise.
  const uint64_t rng_hash = exec_rng_hash_override_.has_value()
                                ? *exec_rng_hash_override_
                                : prefix_hash ^ input.OpsHash(input.ops.size());
  ctx.ReseedRng(Mix64(config_.seed ^ rng_hash));

  for (size_t i = start_op; i < input.ops.size() && !ctx.crash().crashed; i++) {
    const Op& op = input.ops[i];
    if (op.is_snapshot()) {
      if (vm_->cur_depth() != 0) {
        // Malformed input with a second marker (Validate rejects these, but
        // the engine must not abort on one): ignore it.
        continue;
      }
      telemetry::ScopedPhase phase(telemetry::Phase::kSnapshotRestore);
      vm_->CreateIncremental(SerializeInterpState(static_cast<uint32_t>(i + 1)));
      // The link hash covers the marker op itself, so a later match implies
      // the candidate input also carries the marker at this position and
      // resuming at i+1 skips exactly the executed prefix.
      chain_.clear();
      chain_.push_back({input.OpsHash(i + 1), static_cast<uint32_t>(i + 1)});
      result.created_incremental = true;
      continue;
    }
    if (op.node_type >= spec_.node_type_count()) {
      continue;
    }
    switch (spec_.node_type(op.node_type).semantic) {
      case NodeSemantic::kConnection: {
        int conn = -1;
        if (target_info_.is_client) {
          const auto& clients = net_.ClientConnections();
          if (connection_ops_seen_ < clients.size()) {
            conn = clients[connection_ops_seen_];
          }
        } else if (target_info_.transport == SockKind::kDgram) {
          conn = net_.FindDgramSocket(target_info_.port);
        } else {
          conn = net_.QueueConnection(target_info_.port);
        }
        connection_ops_seen_++;
        value_conns_.push_back(conn);
        GuardedStep(*target_, ctx);
        break;
      }
      case NodeSemantic::kPacket: {
        const int conn = ResolveConn(op);
        if (net_.ValidConn(conn)) {
          net_.DeliverPacket(conn, op.data);
          result.packets_delivered++;
          clock_.Advance(config_.cost.per_byte_ns * op.data.size());
          GuardedStep(*target_, ctx);
          // Deepen the snapshot chain at packet boundaries once the marker
          // established depth 1 — the next related input resumes past this
          // packet instead of replaying it. Crashed states are never worth
          // resuming from.
          if (vm_->cur_depth() >= 1 && vm_->cur_depth() < config_.vm.snapshot_depth &&
              !ctx.crash().crashed) {
            const size_t d =
                vm_->PushSnapshot(SerializeInterpState(static_cast<uint32_t>(i + 1)));
            chain_.resize(d - 1);
            chain_.push_back({input.OpsHash(i + 1), static_cast<uint32_t>(i + 1)});
            result.created_incremental = true;
          }
        }
        break;
      }
      case NodeSemantic::kClose: {
        const int conn = ResolveConn(op);
        if (net_.ValidConn(conn)) {
          net_.PeerClose(conn);
          GuardedStep(*target_, ctx);
        }
        break;
      }
      case NodeSemantic::kCustom:
        GuardedStep(*target_, ctx);
        break;
      case NodeSemantic::kFault: {
        // Queue the plan; the fault fires inside the target's own
        // Recv/Send/... calls on a later step. No GuardedStep here — the
        // op only arms state, it delivers nothing to react to.
        const int conn = ResolveConn(op);
        if (net_.ValidConn(conn)) {
          if (auto plan = FaultPlan::Decode(op.data)) {
            net_.QueueFault(conn, *plan);
          }
        }
        break;
      }
    }
  }

  result.crash = ctx.crash();
  result.ijon_max = ctx.IjonValue(0);
  result.vtime_ns = clock_.now_ns() - t0;
  last_exec_rng_hash_ = ctx.rng().StateHash();
  return result;
}

StateFingerprint NyxEngine::CaptureFingerprint(const CoverageMap& cov,
                                               const ExecResult& result) {
  StateFingerprint fp;
  GuestMemory& mem = vm_->mem();
  const size_t pages = mem.size_bytes() / kPageSize;
  fp.page_hashes.reserve(pages);
  for (size_t p = 0; p < pages; p++) {
    fp.page_hashes.push_back(Fnv1a64(mem.base() + p * kPageSize, kPageSize));
  }
  const DeviceState& dev = vm_->devices();
  for (size_t d = 0; d < dev.device_count(); d++) {
    fp.device_hashes.emplace_back(dev.name(d),
                                  Fnv1a64(dev.regs(d).data(), dev.regs(d).size()));
  }
  fp.disk_hash = Fnv1a64(vm_->disk().SectorPtr(0), vm_->disk().size_bytes());
  fp.host_hashes = SnapshotStateRegistry::EntryHashes(state_registry_.CaptureAll());
  fp.rng_hash = last_exec_rng_hash_;
  fp.edge_hash = Fnv1a64(cov.map().data(), cov.map().size());
  fp.sites.assign(cov.sites_hit().begin(), cov.sites_hit().end());
  fp.crashed = result.crash.crashed;
  fp.crash_id = result.crash.crash_id;
  fp.packets_delivered = result.packets_delivered;
  fp.ijon_max = result.ijon_max;
  return fp;
}

ExecResult NyxEngine::RunPinned(const Program& input, uint64_t rng_hash, CoverageMap& cov) {
  exec_rng_hash_override_ = rng_hash;
  ExecResult result = Run(input, cov);
  exec_rng_hash_override_.reset();
  return result;
}

bool NyxEngine::CheckRewriteEquivalence(const Program& original, const Program& rewritten,
                                        std::string* why) {
  const uint64_t pin = InputRngHash(original);
  auto probe = [&](const Program& p, CoverageMap& cov, ExecResult& result) {
    DropIncremental();
    result = RunPinned(p, pin, cov);
    return CaptureFingerprint(cov, result);
  };
  CoverageMap cov_a;
  CoverageMap cov_b;
  ExecResult ra;
  ExecResult rb;
  const StateFingerprint fp_a = probe(original, cov_a, ra);
  const StateFingerprint fp_b = probe(rewritten, cov_b, rb);
  DropIncremental();

  auto fail = [why](const std::string& msg) {
    if (why != nullptr) {
      *why = msg;
    }
    return false;
  };
  // host_hashes deliberately NOT compared — see the header-comment contract.
  if (fp_a.page_hashes != fp_b.page_hashes) {
    for (size_t p = 0; p < fp_a.page_hashes.size() && p < fp_b.page_hashes.size(); p++) {
      if (fp_a.page_hashes[p] != fp_b.page_hashes[p]) {
        return fail("guest page " + std::to_string(p) + " diverged");
      }
    }
    return fail("guest page count diverged");
  }
  if (fp_a.device_hashes != fp_b.device_hashes) {
    return fail("device registers diverged");
  }
  if (fp_a.disk_hash != fp_b.disk_hash) {
    return fail("disk diverged");
  }
  if (fp_a.rng_hash != fp_b.rng_hash) {
    return fail("per-exec RNG end state diverged");
  }
  if (fp_a.edge_hash != fp_b.edge_hash) {
    return fail("coverage edge map diverged");
  }
  if (fp_a.sites != fp_b.sites) {
    return fail("coverage site bitmap diverged");
  }
  if (fp_a.crashed != fp_b.crashed || fp_a.crash_id != fp_b.crash_id) {
    return fail("crash outcome diverged");
  }
  if (fp_a.packets_delivered != fp_b.packets_delivered) {
    return fail("packets_delivered diverged (" + std::to_string(fp_a.packets_delivered) +
                " vs " + std::to_string(fp_b.packets_delivered) + ")");
  }
  if (fp_a.ijon_max != fp_b.ijon_max) {
    return fail("ijon feedback diverged");
  }
  return true;
}

uint64_t InputRngHash(const Program& input) {
  const auto marker = input.SnapshotMarkerPos();
  const uint64_t prefix_hash = marker.has_value() ? input.OpsHash(*marker) : 0;
  return prefix_hash ^ input.OpsHash(input.ops.size());
}

void NyxEngine::DropIncremental() {
  vm_->DropIncremental();
  chain_.clear();
}

std::vector<Bytes> NyxEngine::LastResponses() const {
  std::vector<Bytes> out;
  for (int conn : value_conns_) {
    if (net_.ValidConn(conn)) {
      for (const Bytes& b : net_.Sent(conn)) {
        out.push_back(b);
      }
    }
  }
  return out;
}

}  // namespace nyx
