#include "src/fuzz/engine.h"

#include <cstdio>
#include <cstdlib>

#include "src/common/check.h"
#include "src/common/hash.h"

namespace nyx {

NyxEngine::NyxEngine(const EngineConfig& config, TargetFactory factory, const Spec& spec)
    : config_(config), spec_(spec) {
  vm_ = std::make_unique<Vm>(config_.vm);
  vm_->AttachClock(&clock_, &config_.cost);
  net_.AttachClock(&clock_, &config_.cost);
  target_ = factory();
  target_info_ = target_->info();
}

Bytes NyxEngine::SerializeInterpState(uint32_t resume_op) const {
  Bytes out;
  const Bytes net_blob = net_.Serialize();
  PutLe32(out, static_cast<uint32_t>(net_blob.size()));
  Append(out, net_blob);
  PutLe32(out, static_cast<uint32_t>(value_conns_.size()));
  for (int c : value_conns_) {
    PutLe32(out, static_cast<uint32_t>(c));
  }
  PutLe32(out, resume_op);
  PutLe32(out, static_cast<uint32_t>(connection_ops_seen_));
  return out;
}

void NyxEngine::RestoreInterpState(const Bytes& aux) {
  size_t off = 0;
  const uint32_t net_len = ReadLe32(aux, off);
  off += 4;
  // Aux blobs are engine-produced; a mismatch means corruption. Fail hard
  // rather than reading out of bounds.
  NYX_CHECK_LE(off + net_len, aux.size()) << "corrupt snapshot aux blob";
  Bytes net_blob(aux.begin() + static_cast<long>(off),
                 aux.begin() + static_cast<long>(off + net_len));
  net_.Deserialize(net_blob);
  off += net_len;
  const uint32_t nvals = ReadLe32(aux, off);
  off += 4;
  value_conns_.clear();
  for (uint32_t i = 0; i < nvals; i++) {
    value_conns_.push_back(static_cast<int>(ReadLe32(aux, off)));
    off += 4;
  }
  resume_op_ = ReadLe32(aux, off);
  off += 4;
  connection_ops_seen_ = ReadLe32(aux, off);
}

void NyxEngine::Boot() {
  CoverageMap boot_cov;
  GuestContext ctx(*vm_, net_, boot_cov, clock_, config_.cost);
  ctx.set_asan(config_.asan);
  ctx.ReseedRng(config_.seed);
  target_->Init(ctx);
  GuardedStep(*target_, ctx);
  // The target is now parked on Accept/Recv/Poll over the attack surface:
  // the automatic root snapshot point, "after starting the process and
  // directly before the first byte of input data is passed to the target".
  value_conns_.clear();
  connection_ops_seen_ = 0;
  vm_->TakeRootSnapshot(SerializeInterpState(0));
  booted_ = true;
}

int NyxEngine::ResolveConn(const Op& op) const {
  if (op.args.empty()) {
    return -1;
  }
  const uint16_t value_id = op.args[0];
  if (value_id < value_conns_.size()) {
    return value_conns_[value_id];
  }
  // Dangling reference (the mutator repairs most, but stay defensive): fall
  // back to the most recent connection.
  return value_conns_.empty() ? -1 : value_conns_.back();
}

ExecResult NyxEngine::Run(const Program& input, CoverageMap& cov) {
  ExecResult result;
  const uint64_t t0 = clock_.now_ns();
  execs_++;

  const auto marker = input.SnapshotMarkerPos();
  const uint64_t prefix_hash = marker.has_value() ? input.OpsHash(*marker) : 0;

  size_t start_op = 0;
  if (marker.has_value() && vm_->has_incremental() && inc_hash_valid_ &&
      inc_prefix_hash_ == prefix_hash) {
    vm_->RestoreIncremental();
    RestoreInterpState(vm_->current_aux());
    start_op = resume_op_;
    result.used_incremental = true;
  } else {
    vm_->RestoreRoot();
    RestoreInterpState(vm_->current_aux());
    start_op = 0;
    inc_hash_valid_ = false;
  }

  GuestContext ctx(*vm_, net_, cov, clock_, config_.cost);
  ctx.set_asan(config_.asan);
  // Deterministic per-input noise: the same input always sees the same
  // layout, different inputs differ. OpsHash is allocation-free — a full
  // Serialize() here cost a heap round trip on every exec.
  ctx.ReseedRng(Mix64(config_.seed ^ prefix_hash ^ input.OpsHash(input.ops.size())));

  for (size_t i = start_op; i < input.ops.size() && !ctx.crash().crashed; i++) {
    const Op& op = input.ops[i];
    if (op.is_snapshot()) {
      inc_prefix_hash_ = prefix_hash;
      inc_hash_valid_ = true;
      vm_->CreateIncremental(SerializeInterpState(static_cast<uint32_t>(i + 1)));
      result.created_incremental = true;
      continue;
    }
    if (op.node_type >= spec_.node_type_count()) {
      continue;
    }
    switch (spec_.node_type(op.node_type).semantic) {
      case NodeSemantic::kConnection: {
        int conn = -1;
        if (target_info_.is_client) {
          const auto& clients = net_.ClientConnections();
          if (connection_ops_seen_ < clients.size()) {
            conn = clients[connection_ops_seen_];
          }
        } else if (target_info_.transport == SockKind::kDgram) {
          conn = net_.FindDgramSocket(target_info_.port);
        } else {
          conn = net_.QueueConnection(target_info_.port);
        }
        connection_ops_seen_++;
        value_conns_.push_back(conn);
        GuardedStep(*target_, ctx);
        break;
      }
      case NodeSemantic::kPacket: {
        const int conn = ResolveConn(op);
        if (net_.ValidConn(conn)) {
          net_.DeliverPacket(conn, op.data);
          result.packets_delivered++;
          clock_.Advance(config_.cost.per_byte_ns * op.data.size());
          GuardedStep(*target_, ctx);
        }
        break;
      }
      case NodeSemantic::kClose: {
        const int conn = ResolveConn(op);
        if (net_.ValidConn(conn)) {
          net_.PeerClose(conn);
          GuardedStep(*target_, ctx);
        }
        break;
      }
      case NodeSemantic::kCustom:
        GuardedStep(*target_, ctx);
        break;
    }
  }

  result.crash = ctx.crash();
  result.ijon_max = ctx.IjonValue(0);
  result.vtime_ns = clock_.now_ns() - t0;
  return result;
}

void NyxEngine::DropIncremental() {
  vm_->DropIncremental();
  inc_hash_valid_ = false;
}

std::vector<Bytes> NyxEngine::LastResponses() const {
  std::vector<Bytes> out;
  for (int conn : value_conns_) {
    if (net_.ValidConn(conn)) {
      for (const Bytes& b : net_.Sent(conn)) {
        out.push_back(b);
      }
    }
  }
  return out;
}

}  // namespace nyx
