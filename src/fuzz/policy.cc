#include "src/fuzz/policy.h"

namespace nyx {

const char* PolicyName(PolicyMode mode) {
  switch (mode) {
    case PolicyMode::kNone:
      return "none";
    case PolicyMode::kBalanced:
      return "balanced";
    case PolicyMode::kAggressive:
      return "aggressive";
  }
  return "?";
}

PlacementDecision SnapshotPolicy::Decide(size_t packet_count, AggressiveCursor& cursor,
                                         bool found_new_inputs_since_last) {
  PlacementDecision decision;
  if (mode_ == PolicyMode::kNone || packet_count < kMinPacketsForSnapshot) {
    return decision;  // root snapshot
  }

  if (mode_ == PolicyMode::kBalanced) {
    if (rng_.Chance(4, 100)) {
      return decision;  // 4%: root
    }
    decision.use_incremental = true;
    if (rng_.Chance(1, 2)) {
      decision.packet_index = rng_.Below(packet_count);
    } else {
      decision.packet_index = packet_count / 2 + rng_.Below(packet_count - packet_count / 2);
    }
    // A snapshot after the *last* packet would leave nothing to fuzz.
    if (decision.packet_index + 1 >= packet_count) {
      decision.packet_index = packet_count - 2;
    }
    return decision;
  }

  // Aggressive: cycle indices from the end toward the start.
  if (!cursor.initialized) {
    cursor.initialized = true;
    cursor.index = packet_count - 2;  // after the second-to-last packet
    cursor.fruitless = 0;
    cursor.schedules_at_index = 0;
  } else {
    cursor.schedules_at_index++;
    if (!found_new_inputs_since_last) {
      cursor.fruitless++;
    } else {
      cursor.fruitless = 0;
    }
    if (cursor.fruitless >= kFruitlessThreshold ||
        cursor.schedules_at_index >= kMaxSchedulesPerIndex) {
      cursor.fruitless = 0;
      cursor.schedules_at_index = 0;
      if (cursor.index == 0) {
        cursor.index = packet_count - 2;  // wrap back to the end
      } else {
        cursor.index--;
      }
    }
  }
  if (cursor.index + 2 > packet_count) {
    cursor.index = packet_count - 2;
  }
  decision.use_incremental = true;
  decision.packet_index = cursor.index;
  return decision;
}

}  // namespace nyx
