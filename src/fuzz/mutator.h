// Mutation engine auto-derived from the spec (paper section 2.2: "The
// fuzzer auto-generates a bytecode format and a custom VM [...] as well as
// custom mutators").
//
// Two layers of mutation:
//   * packet-level structure: duplicate / drop / swap / truncate / splice
//     packets, append packets drawn from other corpus entries;
//   * byte-level havoc inside packet payloads: bit flips, arithmetic,
//     interesting values, block insert/delete/overwrite, cross-packet
//     copies.
//
// When the fuzzer reuses an incremental snapshot, only ops strictly after
// the snapshot point may change — the prefix must stay byte-identical so the
// engine can skip it. `first_mutable_op` enforces that.

#ifndef SRC_FUZZ_MUTATOR_H_
#define SRC_FUZZ_MUTATOR_H_

#include <vector>

#include "src/common/rng.h"
#include "src/spec/program.h"
#include "src/spec/spec.h"

namespace nyx {

class Mutator {
 public:
  // `dictionary` enables the protocol-token alphabet (Nyx-Net's spec-aware
  // mutators know about separators; plain AFLNet-style havoc does not).
  // `faults` lets the structural mutator insert/mutate/delete fault-plan ops
  // (FuzzerConfig::fault_injection); off, existing fault ops are left alone
  // but no new ones appear.
  Mutator(const Spec& spec, uint64_t seed, bool dictionary = true, bool faults = false)
      : spec_(spec), rng_(seed), dictionary_(dictionary), faults_(faults) {}

  // Applies 1..n stacked mutations to `program`, never touching ops before
  // `first_mutable_op`. `corpus_donors` provides splice material (may be
  // empty). The result is always Repair()ed to validity.
  void Mutate(Program& program, const std::vector<const Program*>& corpus_donors,
              size_t first_mutable_op);

  Rng& rng() { return rng_; }

 private:
  void HavocBytes(Bytes& data);
  bool StructureMutation(Program& program, const std::vector<const Program*>& donors,
                         size_t first_mutable_op);
  bool FaultMutation(Program& program, size_t first_mutable_op);
  // Binds each operand of `op` (about to be inserted at position `at`) to a
  // uniformly-random value of the required edge type that is *live* at that
  // point (spec::LiveValuesAt). Operands with no live candidate are left for
  // Repair. Landing on live connections by construction beats the old
  // zero-arg-then-Repair path, which always rebound to the latest value.
  void BindArgsLive(Op& op, const Program& program, size_t at);

  const Spec& spec_;
  Rng rng_;
  bool dictionary_;
  bool faults_;
};

}  // namespace nyx

#endif  // SRC_FUZZ_MUTATOR_H_
