// Guest execution context and the target-program contract.
//
// Targets in this reproduction play the role of the real servers running
// inside Nyx-Net's VM. The contract that makes whole-VM snapshots work:
//
//   * ALL mutable target state lives in guest memory (ctx.State<T>() /
//     ctx.Malloc()), never in the C++ object. A snapshot restore therefore
//     restores the target exactly, including half-parsed requests, session
//     state, forked-child bookkeeping and heap contents.
//   * All I/O goes through the emulated network (ctx.net()) and the emulated
//     block device (ctx.disk()).
//   * Control flow is an explicit state machine: Step() drains whatever
//     input is available and returns when it would block.
//   * Branch decisions call ctx.Cov(site) — the compile-time
//     instrumentation analogue.
//
// The context also provides a tiny guest-heap allocator with ASan-style
// redzone checking, so memory-corruption bugs behave like the real thing:
// with "ASan" enabled an out-of-bounds heap write aborts immediately; without
// it the write silently corrupts the neighbouring allocation header and the
// crash happens later, if ever (exactly the dcmtk footnote of Table 1).

#ifndef SRC_FUZZ_GUEST_H_
#define SRC_FUZZ_GUEST_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "src/common/rng.h"
#include "src/common/vclock.h"
#include "src/fuzz/coverage.h"
#include "src/netemu/netemu.h"
#include "src/spec/pcap.h"
#include "src/vm/vm.h"

namespace nyx {

// Guest-physical layout.
inline constexpr uint64_t kStateBase = 1 * kPageSize;    // fixed target state
inline constexpr uint64_t kHeapBase = 16 * kPageSize;    // guest heap
inline constexpr uint64_t kScratchBase = 96 * kPageSize; // config/cache area

struct CrashInfo {
  bool crashed = false;
  uint32_t crash_id = 0;
  std::string kind;
};

class GuestContext {
 public:
  GuestContext(Vm& vm, NetEmu& net, CoverageMap& cov, VirtualClock& clock, const CostModel& cost);

  // --- memory ---
  template <typename T>
  T* State() {
    static_assert(std::is_trivially_copyable_v<T>, "guest state must be snapshot-safe");
    return vm_.mem().At<T>(kStateBase);
  }
  GuestMemory& mem() { return vm_.mem(); }
  BlockDevice& disk() { return vm_.disk(); }
  NetEmu& net() { return net_; }

  // Dirties `pages` pages in the scratch area (config caches, session
  // buffers) so snapshot-reset costs scale realistically.
  void TouchScratch(uint32_t pages, uint8_t value) {
    for (uint32_t p = 0; p < pages; p++) {
      const uint64_t off = kScratchBase + static_cast<uint64_t>(p) * kPageSize;
      if (off < vm_.mem().size_bytes()) {
        vm_.mem().base()[off] = value;
      }
    }
  }

  // --- guest heap with redzones ---
  // Returns a guest offset, or 0 on exhaustion.
  uint64_t Malloc(uint32_t size);
  void Free(uint64_t addr);
  // Bounds-checked heap write: with ASan an overflow crashes immediately;
  // without, it writes through (possibly smashing the next header).
  void HeapWrite(uint64_t addr, uint32_t offset, const void* src, uint32_t len);
  // Bounds-checked heap read; an overflowing read crashes only under ASan.
  void HeapRead(uint64_t addr, uint32_t offset, void* dst, uint32_t len);
  uint32_t HeapSizeOf(uint64_t addr);
  bool asan() const { return asan_; }
  void set_asan(bool on) { asan_ = on; }

  // --- coverage / feedback ---
  void Cov(uint32_t site) { cov_.OnSite(site); }
  // Covers `site + (taken ? 1 : 0)` and returns the condition, so targets can
  // instrument branches inline: if (ctx.CovBranch(n > 5, kSiteFoo)) {...}
  bool CovBranch(bool taken, uint32_t site) {
    Cov(site + (taken ? 1u : 0u));
    return taken;
  }
  // IJON-style maximization feedback (used by the Mario experiment).
  void IjonMax(uint32_t slot, uint64_t value);
  uint64_t IjonValue(uint32_t slot) const;
  void ResetIjon() {
    for (auto& v : ijon_) {
      v = 0;
    }
  }

  // --- crash reporting ---
  void Crash(uint32_t crash_id, std::string kind);
  const CrashInfo& crash() const { return crash_; }
  void ClearCrash() { crash_ = CrashInfo{}; }

  // --- time ---
  void Charge(uint64_t ns) { clock_.Advance(ns); }
  const CostModel& cost() const { return cost_; }
  VirtualClock& clock() { return clock_; }

  // Deterministic per-execution randomness for targets that need it (e.g.
  // initial heap layout noise). Reseeded by the engine each execution.
  Rng& rng() { return rng_; }
  void ReseedRng(uint64_t seed) { rng_.Seed(seed); }

 private:
  struct AllocHeader;  // lives in guest memory

  Vm& vm_;
  NetEmu& net_;
  CoverageMap& cov_;
  VirtualClock& clock_;
  const CostModel& cost_;
  CrashInfo crash_;
  bool asan_ = false;
  Rng rng_{1};
  static constexpr size_t kIjonSlots = 8;
  uint64_t ijon_[kIjonSlots] = {};
};

// Static description of a fuzz target.
struct TargetInfo {
  std::string name;
  uint16_t port = 0;
  SockKind transport = SockKind::kStream;
  SplitStrategy split = SplitStrategy::kCrlf;
  // The desock baseline can only handle targets that read a single stream
  // from one implicit connection; targets needing accept loops over multiple
  // connections or UDP datagram semantics make it fail ("n/a" in Tables 1-3).
  bool desock_compatible = true;
  // Virtual-time cost of process startup (config parsing, cache warmup,
  // listener setup). Nyx-style fuzzers pay it once before the root snapshot;
  // restart-per-exec baselines pay it on every execution. Calibrated per
  // target so Table 3's throughput shape reproduces.
  uint64_t startup_ns = 10'000'000;
  // Virtual-time cost of handling one protocol message (parsing, session
  // logic, syscalls the compact reimplementation doesn't perform).
  uint64_t request_ns = 100'000;
  // Extra per-execution cost only AFLNet-style fuzzing incurs: fixed
  // readiness sleeps and the user-written cleanup script.
  uint64_t aflnet_extra_ns = 100'000'000;
  // Pages of config/cache state Init dirties beyond the fixed state struct.
  uint32_t startup_dirty_pages = 4;
  // Client targets Connect() out instead of accepting.
  bool is_client = false;
  // Size of the target's fixed state struct at kStateBase (sizeof(State)).
  // The engine registers it as a named guest region in the
  // SnapshotStateRegistry so the divergence auditor can attribute a
  // diverging page to this target's state rather than "somewhere in RAM".
  // 0 = undeclared; the whole state window is attributed to the target.
  size_t state_bytes = 0;
};

class Target {
 public:
  virtual ~Target() = default;

  virtual TargetInfo info() const = 0;

  // One-time startup inside the VM, before the root snapshot: allocate state,
  // parse config, open listeners, print banners. Must leave the target
  // blocked waiting for input.
  virtual void Init(GuestContext& ctx) = 0;

  // Drains all currently-available input, then returns. Called by the engine
  // after each delivered packet/connection.
  virtual void Step(GuestContext& ctx) = 0;
};

using TargetFactory = std::function<std::unique_ptr<Target>()>;

// Crash id reported when a target faults outside guest memory (a wild
// read/write the emulation cannot resolve) — the analogue of the guest
// kernel delivering SIGSEGV to the server process.
inline constexpr uint32_t kCrashWildSegv = 0x5e97f417;

// Runs target.Step(ctx) with a fault guard: an unresolvable SIGSEGV raised
// by the target is converted into a kCrashWildSegv crash on `ctx` instead of
// killing the fuzzer. Returns false if a fault was caught.
bool GuardedStep(Target& target, GuestContext& ctx);

// True when the calling thread's fault guard is disarmed — the invariant
// the SnapshotStateRegistry's "guest.fault_jmp" ephemeral declaration
// asserts between executions (the guard must never leak an armed jump
// buffer across an exec boundary).
bool FaultGuardIdle();

}  // namespace nyx

#endif  // SRC_FUZZ_GUEST_H_
