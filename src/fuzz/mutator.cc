#include "src/fuzz/mutator.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/spec/analyze.h"
#include "src/spec/fault_plan.h"
#include "src/spec/verify.h"

namespace nyx {

namespace {
constexpr uint32_t kInteresting32[] = {0,          1,          16,         32,
                                       64,         100,        127,        128,
                                       255,        256,        512,        1000,
                                       1024,       4096,       32767,      32768,
                                       65535,      65536,      0x7fffffff, 0x80000000,
                                       0xffffffff};
constexpr size_t kMaxPacketBytes = 4096;
// Token alphabet for text protocols (the built-in dictionary AFL-style
// fuzzers ship): separators and structural characters that gate parser
// branches far more often than random bytes do.
constexpr uint8_t kTokenBytes[] = {'.', '/', ' ', ':', '-', '<', '>', '@', '*',
                                   ',', ';', '=', '(', ')', '\r', '\n', '0', '1'};
}  // namespace

void Mutator::HavocBytes(Bytes& data) {
  const uint64_t rounds = 1 + rng_.Below(8);
  for (uint64_t r = 0; r < rounds; r++) {
    if (data.empty()) {
      // Only insertion makes sense on an empty payload.
      const uint64_t n = 1 + rng_.Below(8);
      for (uint64_t i = 0; i < n; i++) {
        data.push_back(rng_.NextByte());
      }
      continue;
    }
    switch (rng_.Below(9)) {
      case 0: {  // bit flip
        data[rng_.Below(data.size())] ^= static_cast<uint8_t>(1u << rng_.Below(8));
        break;
      }
      case 1: {  // byte set
        data[rng_.Below(data.size())] = rng_.NextByte();
        break;
      }
      case 2: {  // arithmetic +-35
        uint8_t& b = data[rng_.Below(data.size())];
        b = static_cast<uint8_t>(b + rng_.Range(1, 35) * (rng_.Chance(1, 2) ? 1 : -1));
        break;
      }
      case 3: {  // interesting 32-bit value (LE), truncated to what fits
        const uint32_t v = kInteresting32[rng_.Below(std::size(kInteresting32))];
        const size_t pos = rng_.Below(data.size());
        for (size_t i = 0; i < 4 && pos + i < data.size(); i++) {
          data[pos + i] = static_cast<uint8_t>(v >> (8 * i));
        }
        break;
      }
      case 4: {  // block insert
        if (data.size() < kMaxPacketBytes) {
          const uint64_t n = 1 + rng_.Below(16);
          const size_t pos = rng_.Below(data.size() + 1);
          Bytes block;
          // Repeated fills draw from the token alphabet half the time (when
          // available): "///" or "..." blocks open structural paths that a
          // single random byte never would.
          const uint8_t fill = dictionary_ && rng_.Chance(1, 2)
                                   ? kTokenBytes[rng_.Below(std::size(kTokenBytes))]
                                   : rng_.NextByte();
          const bool repeat = rng_.Chance(1, 2);
          for (uint64_t i = 0; i < n; i++) {
            block.push_back(repeat ? fill : rng_.NextByte());
          }
          data.insert(data.begin() + static_cast<long>(pos), block.begin(), block.end());
        }
        break;
      }
      case 5: {  // block delete
        const size_t pos = rng_.Below(data.size());
        const size_t n = 1 + rng_.Below(data.size() - pos);
        data.erase(data.begin() + static_cast<long>(pos),
                   data.begin() + static_cast<long>(pos + n));
        break;
      }
      case 6: {  // block overwrite with copy from elsewhere in the packet
        const size_t src = rng_.Below(data.size());
        const size_t dst = rng_.Below(data.size());
        const size_t n = 1 + rng_.Below(std::min<size_t>(16, data.size() - std::max(src, dst)));
        std::copy(data.begin() + static_cast<long>(src),
                  data.begin() + static_cast<long>(src + n),
                  data.begin() + static_cast<long>(dst));
        break;
      }
      case 7: {  // dictionary/ASCII-aware twiddles for text protocols
        const size_t pos = rng_.Below(data.size());
        if (dictionary_ && rng_.Chance(1, 2)) {
          data[pos] = kTokenBytes[rng_.Below(std::size(kTokenBytes))];
        } else if (data[pos] >= '0' && data[pos] <= '9') {
          data[pos] = static_cast<uint8_t>('0' + rng_.Below(10));
        } else {
          data[pos] ^= 0x20;  // case flip
        }
        break;
      }
      case 8: {  // truncate
        data.resize(rng_.Below(data.size()) + 1);
        break;
      }
    }
  }
  if (data.size() > kMaxPacketBytes) {
    data.resize(kMaxPacketBytes);
  }
}

bool Mutator::StructureMutation(Program& program, const std::vector<const Program*>& donors,
                                size_t first_mutable_op) {
  // Mutable packet ops only.
  std::vector<size_t> packets;
  for (size_t i : program.PacketOpIndices(spec_)) {
    if (i >= first_mutable_op) {
      packets.push_back(i);
    }
  }

  switch (rng_.Below(6)) {
    case 0: {  // duplicate a packet in place
      if (packets.empty()) {
        return false;
      }
      const size_t at = packets[rng_.Below(packets.size())];
      Op copy = program.ops[at];
      program.ops.insert(program.ops.begin() + static_cast<long>(at), std::move(copy));
      return true;
    }
    case 1: {  // drop a packet
      if (packets.size() < 2) {
        return false;  // keep at least one mutable packet
      }
      program.ops.erase(program.ops.begin() +
                        static_cast<long>(packets[rng_.Below(packets.size())]));
      return true;
    }
    case 2: {  // swap two packets
      if (packets.size() < 2) {
        return false;
      }
      const size_t a = packets[rng_.Below(packets.size())];
      const size_t b = packets[rng_.Below(packets.size())];
      std::swap(program.ops[a], program.ops[b]);
      return true;
    }
    case 3: {  // truncate the tail
      if (packets.size() < 2) {
        return false;
      }
      const size_t cut = packets[1 + rng_.Below(packets.size() - 1)];
      program.ops.resize(cut);
      return true;
    }
    case 4: {  // splice: replace the tail with a donor's tail
      if (donors.empty() || packets.empty()) {
        return false;
      }
      const Program* donor = donors[rng_.Below(donors.size())];
      const auto donor_packets = donor->PacketOpIndices(spec_);
      if (donor_packets.empty()) {
        return false;
      }
      const size_t cut = packets[rng_.Below(packets.size())];
      const size_t donor_from = donor_packets[rng_.Below(donor_packets.size())];
      program.ops.resize(cut);
      for (size_t i = donor_from; i < donor->ops.size(); i++) {
        if (!donor->ops[i].is_snapshot()) {
          program.ops.push_back(donor->ops[i]);
        }
      }
      return true;
    }
    case 5: {  // insert a packet copied from a donor (or duplicated locally)
      Op source;
      bool have = false;
      if (!donors.empty()) {
        const Program* donor = donors[rng_.Below(donors.size())];
        const auto donor_packets = donor->PacketOpIndices(spec_);
        if (!donor_packets.empty()) {
          source = donor->ops[donor_packets[rng_.Below(donor_packets.size())]];
          have = true;
        }
      }
      if (!have && !packets.empty()) {
        source = program.ops[packets[rng_.Below(packets.size())]];
        have = true;
      }
      if (!have) {
        return false;
      }
      const size_t lo = std::max(first_mutable_op, static_cast<size_t>(1));
      if (program.ops.size() + 1 < lo) {
        return false;
      }
      const size_t at = lo + rng_.Below(program.ops.size() + 1 - lo);
      BindArgsLive(source, program, at);
      program.ops.insert(program.ops.begin() + static_cast<long>(at), std::move(source));
      return true;
    }
  }
  return false;
}

void Mutator::BindArgsLive(Op& op, const Program& program, size_t at) {
  if (op.is_snapshot() || op.node_type >= spec_.node_type_count()) {
    return;
  }
  const NodeTypeDef& node = spec_.node_type(op.node_type);
  if (op.args.size() != node.borrows.size() + node.consumes.size()) {
    return;  // malformed donor op: let Repair deal with it
  }
  for (size_t p = 0; p < op.args.size(); p++) {
    const int edge = p < node.borrows.size() ? node.borrows[p]
                                             : node.consumes[p - node.borrows.size()];
    const std::vector<uint16_t> live = spec::LiveValuesAt(program, spec_, at, edge);
    if (!live.empty()) {
      op.args[p] = live[rng_.Below(live.size())];
    }
  }
}

bool Mutator::FaultMutation(Program& program, size_t first_mutable_op) {
  const std::vector<int> fault_nodes = spec_.NodesWithSemantic(NodeSemantic::kFault);
  if (fault_nodes.empty()) {
    return false;
  }
  std::vector<size_t> fault_ops;
  for (size_t i = first_mutable_op; i < program.ops.size(); i++) {
    const Op& op = program.ops[i];
    if (!op.is_snapshot() && op.node_type < spec_.node_type_count() &&
        spec_.node_type(op.node_type).semantic == NodeSemantic::kFault) {
      fault_ops.push_back(i);
    }
  }
  // Kind-aware random plan: args that make sense for the kind (a byte cap
  // for short reads/writes, milliseconds for timeouts) reach interesting
  // target branches far faster than uniform 16-bit noise.
  auto random_plan = [&]() {
    FaultPlan plan;
    plan.kind = static_cast<FaultKind>(rng_.Below(kFaultKindCount));
    plan.count = static_cast<uint8_t>(1 + rng_.Below(kMaxFaultBurst));
    switch (plan.kind) {
      case FaultKind::kShortRead:
      case FaultKind::kShortWrite:
        plan.arg = static_cast<uint16_t>(1 + rng_.Below(64));
        break;
      case FaultKind::kTimeout:
        // Short waits: what matters is *that* the timeout path runs, not how
        // long it waits — large arguments just burn the campaign's virtual
        // time budget (a 999ms plan costs 1/60th of a default campaign).
        plan.arg = static_cast<uint16_t>(1 + rng_.Below(10));
        break;
      case FaultKind::kEagain:
      case FaultKind::kIntr:
      case FaultKind::kConnReset:
      case FaultKind::kPeerClose:
        plan.arg = 0;  // netemu ignores the arg for these kinds
        break;
    }
    return plan;
  };
  switch (rng_.Below(3)) {
    case 0: {  // insert a fault op, bound to a live connection
      Op op;
      op.node_type = static_cast<uint8_t>(fault_nodes[rng_.Below(fault_nodes.size())]);
      const NodeTypeDef& node = spec_.node_type(op.node_type);
      op.args.assign(node.borrows.size() + node.consumes.size(), 0);
      op.data = random_plan().Encode();
      const size_t lo = std::max(first_mutable_op, static_cast<size_t>(1));
      if (program.ops.size() + 1 < lo) {
        return false;
      }
      const size_t at = lo + rng_.Below(program.ops.size() + 1 - lo);
      BindArgsLive(op, program, at);
      program.ops.insert(program.ops.begin() + static_cast<long>(at), std::move(op));
      return true;
    }
    case 1: {  // re-plan an existing fault op
      if (fault_ops.empty()) {
        return false;
      }
      program.ops[fault_ops[rng_.Below(fault_ops.size())]].data = random_plan().Encode();
      return true;
    }
    default: {  // delete a fault op
      if (fault_ops.empty()) {
        return false;
      }
      program.ops.erase(program.ops.begin() +
                        static_cast<long>(fault_ops[rng_.Below(fault_ops.size())]));
      return true;
    }
  }
}

void Mutator::Mutate(Program& program, const std::vector<const Program*>& corpus_donors,
                     size_t first_mutable_op) {
  program.StripSnapshotMarkers();
  const uint64_t stacked = 1 + rng_.Below(4);
  for (uint64_t s = 0; s < stacked; s++) {
    // Byte-level havoc is the workhorse; structural changes are rarer, like
    // AFL's havoc-vs-splice balance.
    if (rng_.Chance(3, 4)) {
      std::vector<size_t> packets;
      for (size_t i : program.PacketOpIndices(spec_)) {
        if (i >= first_mutable_op) {
          packets.push_back(i);
        }
      }
      if (!packets.empty()) {
        HavocBytes(program.ops[packets[rng_.Below(packets.size())]].data);
        continue;
      }
    }
    // With the fault-injection knob on, a slice of the structural budget
    // goes to fault-plan edits; the packet-structure distribution is
    // untouched otherwise.
    if (faults_ && rng_.Chance(1, 4) && FaultMutation(program, first_mutable_op)) {
      continue;
    }
    StructureMutation(program, corpus_donors, first_mutable_op);
  }
  program.Repair(spec_);
#ifndef NDEBUG
  // Debug-build post-condition: whatever the mutation stack did, Repair must
  // have restored affinity and well-formedness. A failure here is a mutator
  // or repair bug, not a property of the input.
  const spec::Result verdict = spec::Verify(program, spec_);
  NYX_CHECK(verdict.ok()) << "mutator emitted ill-formed program: " << verdict.Summary();
#endif
}

}  // namespace nyx
