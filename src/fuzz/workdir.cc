#include "src/fuzz/workdir.h"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cstdio>

#include "src/common/check.h"
#include "src/common/log.h"
#include "src/common/sync.h"
#include "src/spec/verify.h"

namespace nyx {

namespace {

bool EnsureDir(const std::string& path) {
  struct stat st = {};
  if (stat(path.c_str(), &st) == 0) {
    return S_ISDIR(st.st_mode);
  }
  return mkdir(path.c_str(), 0755) == 0;
}

std::vector<std::string> ListFiles(const std::string& dir, const std::string& suffix) {
  std::vector<std::string> out;
  // Portable-enough directory listing via popen would be ugly; use readdir.
  if (DIR* d = opendir(dir.c_str())) {
    while (struct dirent* e = readdir(d)) {
      const std::string name = e->d_name;
      if (name.size() > suffix.size() &&
          name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0) {
        out.push_back(dir + "/" + name);
      }
    }
    closedir(d);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::optional<Workdir> Workdir::Open(const std::string& path) {
  if (!EnsureDir(path) || !EnsureDir(path + "/queue") || !EnsureDir(path + "/crashes")) {
    return std::nullopt;
  }
  return Workdir(path);
}

bool Workdir::WriteProgram(const std::string& file, const Program& program) {
  const Bytes wire = program.Serialize();
  FILE* f = fopen(file.c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  const bool ok = fwrite(wire.data(), 1, wire.size(), f) == wire.size();
  fclose(f);
  return ok;
}

std::optional<Program> Workdir::ReadProgram(const std::string& file, const Spec& spec) {
  FILE* f = fopen(file.c_str(), "rb");
  if (f == nullptr) {
    return std::nullopt;
  }
  Bytes wire;
  uint8_t buf[4096];
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), f)) > 0) {
    wire.insert(wire.end(), buf, buf + n);
  }
  fclose(f);
  // Corpus files are a trust boundary (hand-edited, synced from other
  // fuzzers): statically verify before parsing so rejects carry a rule id
  // and byte offset instead of a bare parse failure.
  const spec::Result verdict = spec::VerifyWire(wire, spec);
  if (!verdict.ok()) {
    NYX_LOG_WARN << "corpus file " << file << " rejected: " << verdict.Summary();
    return std::nullopt;
  }
  return Program::Parse(wire, spec);
}

bool Workdir::SaveQueueEntry(const Program& program, size_t index) const {
  char name[64];
  snprintf(name, sizeof(name), "/queue/id_%06zu.nyx", index);
  return WriteProgram(path_ + name, program);
}

std::vector<Program> Workdir::LoadQueue(const Spec& spec) const {
  std::vector<Program> out;
  for (const std::string& file : ListFiles(path_ + "/queue", ".nyx")) {
    auto prog = ReadProgram(file, spec);
    if (prog.has_value()) {
      out.push_back(std::move(*prog));
    } else {
      NYX_LOG_WARN << "skipping malformed corpus file: " << file;
    }
  }
  return out;
}

bool Workdir::SaveCrash(uint32_t crash_id, const std::string& kind,
                        const Program& reproducer) const {
  char name[160];
  snprintf(name, sizeof(name), "/crashes/%08x_%.*s.nyx", crash_id, 96, kind.c_str());
  return WriteProgram(path_ + name, reproducer);
}

std::vector<std::pair<std::string, Program>> Workdir::LoadCrashes(const Spec& spec) const {
  std::vector<std::pair<std::string, Program>> out;
  for (const std::string& file : ListFiles(path_ + "/crashes", ".nyx")) {
    auto prog = ReadProgram(file, spec);
    if (prog.has_value()) {
      out.emplace_back(file, std::move(*prog));
    }
  }
  return out;
}

bool Workdir::SaveCampaign(const CampaignResult& result, const Corpus& corpus) const {
  bool ok = true;
  for (size_t i = 0; i < corpus.size(); i++) {
    ok &= SaveQueueEntry(corpus.entry(i).program, i);
  }
  for (const auto& [id, rec] : result.crashes) {
    ok &= SaveCrash(id, rec.kind, rec.reproducer);
  }
  FILE* f = fopen((path_ + "/stats.txt").c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  fprintf(f, "execs            %llu\n", static_cast<unsigned long long>(result.execs));
  fprintf(f, "vtime_seconds    %.3f\n", result.vtime_seconds);
  fprintf(f, "execs_per_vsec   %.1f\n", result.execs_per_vsecond);
  fprintf(f, "branch_coverage  %zu\n", result.branch_coverage);
  fprintf(f, "edge_coverage    %zu\n", result.edge_coverage);
  fprintf(f, "corpus_size      %zu\n", result.corpus_size);
  fprintf(f, "crashes          %zu\n", result.crashes.size());
  fprintf(f, "root_restores    %llu\n", static_cast<unsigned long long>(result.root_restores));
  fprintf(f, "inc_creates      %llu\n",
          static_cast<unsigned long long>(result.incremental_creates));
  fprintf(f, "inc_restores     %llu\n",
          static_cast<unsigned long long>(result.incremental_restores));
  const ContractCounters contracts = GetContractCounters();
  fprintf(f, "contract_soft    %llu\n",
          static_cast<unsigned long long>(contracts.soft_failures));
  fprintf(f, "contract_hard    %llu\n",
          static_cast<unsigned long long>(contracts.hard_failures));
  // Process-wide lock traffic (common/sync.h): how often any annotated
  // mutex was taken and how often the taker had to block. A contended
  // count creeping toward the acquisition count means the frontier sync
  // cadence is too aggressive for the shard count.
  // Snapshot divergence audit (zeros unless the campaign ran with
  // NYX_AUDIT=1): pages compared and mismatches found by the run-twice
  // oracle. Any nonzero divergence count is a determinism bug.
  fprintf(f, "pages_audited    %llu\n",
          static_cast<unsigned long long>(result.pages_audited));
  fprintf(f, "divergences      %llu\n",
          static_cast<unsigned long long>(result.audit_divergences));
  const SyncStats locks = GetSyncStats();
  fprintf(f, "lock_acquired    %llu\n",
          static_cast<unsigned long long>(locks.acquisitions));
  fprintf(f, "lock_contended   %llu\n",
          static_cast<unsigned long long>(locks.contended));
  fclose(f);
  return ok;
}

}  // namespace nyx
