#include "src/fuzz/workdir.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "src/common/check.h"
#include "src/common/log.h"
#include "src/common/sync.h"
#include "src/common/telemetry.h"
#include "src/spec/verify.h"

namespace nyx {

namespace {

bool EnsureDir(const std::string& path) {
  struct stat st = {};
  if (stat(path.c_str(), &st) == 0) {
    return S_ISDIR(st.st_mode);
  }
  return mkdir(path.c_str(), 0755) == 0;
}

std::vector<std::string> ListFiles(const std::string& dir, const std::string& suffix) {
  std::vector<std::string> out;
  // Portable-enough directory listing via popen would be ugly; use readdir.
  if (DIR* d = opendir(dir.c_str())) {
    while (struct dirent* e = readdir(d)) {
      const std::string name = e->d_name;
      if (name.size() > suffix.size() &&
          name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0) {
        out.push_back(dir + "/" + name);
      }
    }
    closedir(d);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::optional<Workdir> Workdir::Open(const std::string& path) {
  if (!EnsureDir(path) || !EnsureDir(path + "/queue") || !EnsureDir(path + "/crashes")) {
    return std::nullopt;
  }
  return Workdir(path);
}

bool Workdir::WriteProgram(const std::string& file, const Program& program) {
  const Bytes wire = program.Serialize();
  FILE* f = fopen(file.c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  const bool ok = fwrite(wire.data(), 1, wire.size(), f) == wire.size();
  fclose(f);
  return ok;
}

std::optional<Program> Workdir::ReadProgram(const std::string& file, const Spec& spec) {
  FILE* f = fopen(file.c_str(), "rb");
  if (f == nullptr) {
    return std::nullopt;
  }
  Bytes wire;
  uint8_t buf[4096];
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), f)) > 0) {
    wire.insert(wire.end(), buf, buf + n);
  }
  fclose(f);
  // Corpus files are a trust boundary (hand-edited, synced from other
  // fuzzers): statically verify before parsing so rejects carry a rule id
  // and byte offset instead of a bare parse failure.
  const spec::Result verdict = spec::VerifyWire(wire, spec);
  if (!verdict.ok()) {
    NYX_LOG_WARN << "corpus file " << file << " rejected: " << verdict.Summary();
    return std::nullopt;
  }
  return Program::Parse(wire, spec);
}

bool Workdir::SaveQueueEntry(const Program& program, size_t index) const {
  char name[64];
  snprintf(name, sizeof(name), "/queue/id_%06zu.nyx", index);
  return WriteProgram(path_ + name, program);
}

std::vector<Program> Workdir::LoadQueue(const Spec& spec) const {
  std::vector<Program> out;
  for (const std::string& file : ListFiles(path_ + "/queue", ".nyx")) {
    auto prog = ReadProgram(file, spec);
    if (prog.has_value()) {
      out.push_back(std::move(*prog));
    } else {
      NYX_LOG_WARN << "skipping malformed corpus file: " << file;
    }
  }
  return out;
}

bool Workdir::SaveCrash(uint32_t crash_id, const std::string& kind,
                        const Program& reproducer) const {
  char name[160];
  snprintf(name, sizeof(name), "/crashes/%08x_%.*s.nyx", crash_id, 96, kind.c_str());
  return WriteProgram(path_ + name, reproducer);
}

std::vector<std::pair<std::string, Program>> Workdir::LoadCrashes(const Spec& spec) const {
  std::vector<std::pair<std::string, Program>> out;
  for (const std::string& file : ListFiles(path_ + "/crashes", ".nyx")) {
    auto prog = ReadProgram(file, spec);
    if (prog.has_value()) {
      out.emplace_back(file, std::move(*prog));
    }
  }
  return out;
}

namespace {

// Atomic replacement: write <path>.tmp, flush it all the way to disk, then
// rename over the target, so a crashed run never leaves a truncated
// stats.txt/metrics.json. Any failure is loud — silently dropped stats made
// campaigns look healthy while reporting nothing.
void WriteFileAtomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  FILE* f = fopen(tmp.c_str(), "w");
  NYX_CHECK(f != nullptr) << "cannot open " << tmp << ": " << strerror(errno);
  NYX_CHECK(fwrite(content.data(), 1, content.size(), f) == content.size())
      << "short write to " << tmp << ": " << strerror(errno);
  NYX_CHECK(fflush(f) == 0) << "flush of " << tmp << " failed: " << strerror(errno);
  NYX_CHECK(fsync(fileno(f)) == 0) << "fsync of " << tmp << " failed: " << strerror(errno);
  fclose(f);
  NYX_CHECK(rename(tmp.c_str(), path.c_str()) == 0)
      << "rename " << tmp << " -> " << path << " failed: " << strerror(errno);
}

// Builds the campaign-local metric registry: one named metric per summary
// statistic. The same registry feeds both the human-readable stats.txt and
// the machine-readable metrics.json, so the two can never drift apart.
void PopulateCampaignRegistry(telemetry::MetricRegistry& reg, const CampaignResult& result) {
  reg.RegisterCounter("execs")->Add(result.execs);
  reg.RegisterGauge("vtime_seconds")->SetDouble(result.vtime_seconds);
  reg.RegisterGauge("execs_per_vsec")->SetDouble(result.execs_per_vsecond);
  reg.RegisterGauge("branch_coverage")->Set(result.branch_coverage);
  reg.RegisterGauge("edge_coverage")->Set(result.edge_coverage);
  reg.RegisterGauge("corpus_size")->Set(result.corpus_size);
  reg.RegisterGauge("crashes")->Set(result.crashes.size());
  reg.RegisterCounter("root_restores")->Add(result.root_restores);
  reg.RegisterCounter("inc_creates")->Add(result.incremental_creates);
  reg.RegisterCounter("inc_restores")->Add(result.incremental_restores);
  const ContractCounters contracts = GetContractCounters();
  reg.RegisterCounter("contract_soft")->Add(contracts.soft_failures);
  reg.RegisterCounter("contract_hard")->Add(contracts.hard_failures);
  // Snapshot divergence audit (zeros unless the campaign ran with
  // NYX_AUDIT=1): pages compared and mismatches found by the run-twice
  // oracle. Any nonzero divergence count is a determinism bug.
  reg.RegisterCounter("pages_audited")->Add(result.pages_audited);
  reg.RegisterCounter("divergences")->Add(result.audit_divergences);
  // Deterministic fault injection (zeros unless the campaign ran with the
  // fault_injection knob): applications fired and input bytes they dropped.
  // faulted_bytes is split out so throughput numbers stay honest about
  // bytes the target never saw.
  reg.RegisterCounter("faults_injected")->Add(result.faults_injected);
  reg.RegisterCounter("faulted_bytes")->Add(result.faulted_bytes);
  // Bytecode analyzer (src/spec/analyze.h): semantic duplicates the corpus
  // rejected, and differential rewrite checks performed (nonzero only with
  // NYX_ANALYZE_CHECK=1; every one that completed proved an equivalence).
  reg.RegisterCounter("semantic_dupes")->Add(result.semantic_dupes);
  reg.RegisterCounter("analyze_checks")->Add(result.analyze_checks);
  // Process-wide lock traffic (common/sync.h): how often any annotated
  // mutex was taken and how often the taker had to block. A contended
  // count creeping toward the acquisition count means the frontier sync
  // cadence is too aggressive for the shard count.
  const SyncStats locks = GetSyncStats();
  reg.RegisterCounter("lock_acquired")->Add(locks.acquisitions);
  reg.RegisterCounter("lock_contended")->Add(locks.contended);
}

// Renders stats.txt from the registry in a fixed display order. The literal
// key names and 17-column value alignment are load-bearing: workdir_test and
// external scripts grep for them.
std::string RenderStatsText(const telemetry::MetricRegistry& reg) {
  static const char* kOrder[] = {
      "execs",         "vtime_seconds", "execs_per_vsec", "branch_coverage",
      "edge_coverage", "corpus_size",   "crashes",        "root_restores",
      "inc_creates",   "inc_restores",  "contract_soft",  "contract_hard",
      "pages_audited", "divergences",   "faults_injected", "faulted_bytes",
      "semantic_dupes", "analyze_checks", "lock_acquired", "lock_contended",
  };
  const std::vector<telemetry::MetricRegistry::Entry> entries = reg.Entries();
  std::ostringstream os;
  for (const char* key : kOrder) {
    for (const telemetry::MetricRegistry::Entry& e : entries) {
      if (e.name != key) {
        continue;
      }
      char line[128];
      if (e.counter != nullptr) {
        snprintf(line, sizeof(line), "%-17s%llu\n", key,
                 static_cast<unsigned long long>(e.counter->Value()));
      } else if (e.gauge != nullptr && e.gauge->is_double()) {
        snprintf(line, sizeof(line), "%-17s%.3f\n", key, e.gauge->DoubleValue());
      } else {
        snprintf(line, sizeof(line), "%-17s%llu\n", key,
                 static_cast<unsigned long long>(e.gauge->Value()));
      }
      os << line;
      break;
    }
  }
  return os.str();
}

// AFL plot_data-style per-campaign time series: one row per recorded sample.
// Virtual time, not wall time, so reruns of the same seed produce identical
// files.
std::string RenderPlotData(const CampaignResult& result) {
  std::ostringstream os;
  os << "# vtime_seconds, execs, branch_coverage\n";
  const auto& cov = result.coverage_over_time.points();
  const auto& exe = result.execs_over_time.points();
  const size_t n = std::min(cov.size(), exe.size());
  for (size_t i = 0; i < n; i++) {
    char line[96];
    snprintf(line, sizeof(line), "%.6f, %.0f, %.0f\n", cov[i].first, exe[i].second,
             cov[i].second);
    os << line;
  }
  return os.str();
}

}  // namespace

bool Workdir::SaveCampaign(const CampaignResult& result, const Corpus& corpus) const {
  bool ok = true;
  for (size_t i = 0; i < corpus.size(); i++) {
    ok &= SaveQueueEntry(corpus.entry(i).program, i);
  }
  for (const auto& [id, rec] : result.crashes) {
    ok &= SaveCrash(id, rec.kind, rec.reproducer);
  }

  // Campaign-local registry: concurrent campaigns (harness/parallel.h) each
  // dump their own workdir, so campaign statistics never route through the
  // process-global registry. The global registry is embedded separately in
  // metrics.json — its phase histograms and hot-layer counters are
  // process-wide by nature (and zero unless telemetry is enabled).
  telemetry::MetricRegistry reg;
  PopulateCampaignRegistry(reg, result);
  WriteFileAtomic(path_ + "/stats.txt", RenderStatsText(reg));

  std::string campaign_json = telemetry::DumpJson(reg);
  std::string process_json = telemetry::DumpJson(telemetry::MetricRegistry::Global());
  // DumpJson returns a complete object with a trailing newline; embed both.
  if (!campaign_json.empty() && campaign_json.back() == '\n') {
    campaign_json.pop_back();
  }
  if (!process_json.empty() && process_json.back() == '\n') {
    process_json.pop_back();
  }
  WriteFileAtomic(path_ + "/metrics.json", "{\n\"campaign\": " + campaign_json +
                                               ",\n\"process\": " + process_json + "\n}\n");
  WriteFileAtomic(path_ + "/plot_data", RenderPlotData(result));
  return ok;
}

}  // namespace nyx
