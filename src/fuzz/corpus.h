// Input corpus / queue management.
//
// Follows AFL's shape: entries that produced new coverage join the queue;
// scheduling favors fast, small, rarely-picked entries. Each entry carries
// the aggressive-policy cursor (paper: the cursor cycles per input).

#ifndef SRC_FUZZ_CORPUS_H_
#define SRC_FUZZ_CORPUS_H_

#include <cstdint>
#include <deque>
#include <unordered_set>
#include <vector>

#include "src/common/rng.h"
#include "src/common/sync.h"
#include "src/fuzz/policy.h"
#include "src/spec/program.h"

namespace nyx {

struct CorpusEntry {
  Program program;  // snapshot markers stripped
  uint64_t vtime_ns = 0;
  size_t packet_count = 0;
  uint64_t picks = 0;
  double found_at_vsec = 0.0;
  AggressiveCursor cursor;
  // Cached schedule weight (lower is better): picks + vtime_ns * 1e-7.
  // Maintained incrementally by Corpus (Add/Pick/SetVtime) so scheduling
  // never recomputes weights over entries. Mutate vtime_ns/picks only
  // through Corpus so the cache and the corpus-wide sum stay consistent.
  double weight = 0.0;
};

class Corpus {
 public:
  // When a spec is attached, Add() statically verifies every incoming
  // program (spec/verify.h) and rejects ill-formed ones, so a buggy mutator
  // or corrupt seed cannot poison the queue. The spec must outlive the
  // corpus. The default-constructed corpus skips verification (tests that
  // hand-craft programs).
  Corpus() = default;
  explicit Corpus(const Spec* spec) : spec_(spec) {}

  // Returns false (and drops the program) if verification rejects it, or if
  // an entry with the same semantic identity (spec::NormalHash — dead ops
  // elided, ignored fault args zeroed) is already queued. Coverage has
  // already been merged globally by the time Add runs, so dropping a
  // semantic duplicate loses nothing; it only stops dead-op-padded variants
  // from bloating the schedule (StateAFL's observation — semantic identity,
  // not wire identity, is what matters for stateful corpora).
  bool Add(Program program, uint64_t vtime_ns, size_t packet_count, double found_at_vsec);

  // Semantic duplicates rejected so far (campaign stats).
  uint64_t semantic_dupes() const { return semantic_dupes_; }

  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }

  // Weighted pick: newer, faster and less-picked entries are preferred.
  CorpusEntry& Pick(Rng& rng);

  // Records the measured execution time of entry `i`, updating its cached
  // schedule weight (call this instead of writing entry(i).vtime_ns).
  void SetVtime(size_t i, uint64_t vtime_ns);

  // Sum of all cached entry weights, maintained incrementally.
  double WeightSum() const { return weight_sum_; }

  CorpusEntry& entry(size_t i) { return entries_[i]; }
  const CorpusEntry& entry(size_t i) const { return entries_[i]; }

  // Donor views for splicing. Entries live in a deque, so these pointers
  // (and references returned by Pick/entry) stay valid across Add().
  std::vector<const Program*> Donors() const;

 private:
  static double EntryWeight(const CorpusEntry& e);

  const Spec* spec_ = nullptr;
  std::deque<CorpusEntry> entries_;
  double weight_sum_ = 0.0;
  // Normal-form hashes of every queued entry (spec attached only).
  std::unordered_set<uint64_t> normal_seen_;
  uint64_t semantic_dupes_ = 0;
  // The queue is worker-owned, never locked: one NyxFuzzer mutates it on
  // one thread start-to-finish (DESIGN.md §8.1). Frontier imports happen on
  // that same thread after ExchangeSync returns. Debug builds verify the
  // single-thread claim on every mutating entry point.
  ThreadChecker thread_checker_;
};

}  // namespace nyx

#endif  // SRC_FUZZ_CORPUS_H_
