// Input corpus / queue management.
//
// Follows AFL's shape: entries that produced new coverage join the queue;
// scheduling favors fast, small, rarely-picked entries. Each entry carries
// the aggressive-policy cursor (paper: the cursor cycles per input).

#ifndef SRC_FUZZ_CORPUS_H_
#define SRC_FUZZ_CORPUS_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "src/common/rng.h"
#include "src/fuzz/policy.h"
#include "src/spec/program.h"

namespace nyx {

struct CorpusEntry {
  Program program;  // snapshot markers stripped
  uint64_t vtime_ns = 0;
  size_t packet_count = 0;
  uint64_t picks = 0;
  double found_at_vsec = 0.0;
  AggressiveCursor cursor;
};

class Corpus {
 public:
  // When a spec is attached, Add() statically verifies every incoming
  // program (spec/verify.h) and rejects ill-formed ones, so a buggy mutator
  // or corrupt seed cannot poison the queue. The spec must outlive the
  // corpus. The default-constructed corpus skips verification (tests that
  // hand-craft programs).
  Corpus() = default;
  explicit Corpus(const Spec* spec) : spec_(spec) {}

  // Returns false (and drops the program) if verification rejects it.
  bool Add(Program program, uint64_t vtime_ns, size_t packet_count, double found_at_vsec);

  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }

  // Weighted pick: newer, faster and less-picked entries are preferred.
  CorpusEntry& Pick(Rng& rng);

  CorpusEntry& entry(size_t i) { return entries_[i]; }
  const CorpusEntry& entry(size_t i) const { return entries_[i]; }

  // Donor views for splicing. Entries live in a deque, so these pointers
  // (and references returned by Pick/entry) stay valid across Add().
  std::vector<const Program*> Donors() const;

 private:
  const Spec* spec_ = nullptr;
  std::deque<CorpusEntry> entries_;
};

}  // namespace nyx

#endif  // SRC_FUZZ_CORPUS_H_
