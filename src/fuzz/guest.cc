#include "src/fuzz/guest.h"

#include <csignal>
#include <setjmp.h>

#include <cstring>

#include "src/common/telemetry.h"
#include "src/vm/state_registry.h"

namespace nyx {

namespace {
constexpr uint32_t kAllocMagic = 0x51eafc0d;
}  // namespace

// Heap layout, all inside guest memory so snapshots capture it:
//   kHeapBase: HeapMeta { brk }
//   then per allocation: AllocHeader | payload | 8-byte redzone
struct GuestContext::AllocHeader {
  uint32_t magic;
  uint32_t size;
};

namespace {
struct HeapMeta {
  uint64_t brk;  // next free guest offset; 0 = uninitialized
};
constexpr uint64_t kHeapMetaSize = sizeof(HeapMeta);
constexpr uint32_t kRedzoneSize = 8;
}  // namespace

GuestContext::GuestContext(Vm& vm, NetEmu& net, CoverageMap& cov, VirtualClock& clock,
                           const CostModel& cost)
    : vm_(vm), net_(net), cov_(cov), clock_(clock), cost_(cost) {}

uint64_t GuestContext::Malloc(uint32_t size) {
  auto* meta = vm_.mem().At<HeapMeta>(kHeapBase);
  if (meta->brk == 0) {
    meta->brk = kHeapBase + kHeapMetaSize;
  }
  const uint64_t header_at = (meta->brk + 7) & ~7ull;
  const uint64_t payload_at = header_at + sizeof(AllocHeader);
  const uint64_t end = payload_at + size + kRedzoneSize;
  if (end > vm_.mem().size_bytes()) {
    return 0;
  }
  auto* hdr = vm_.mem().At<AllocHeader>(header_at);
  hdr->magic = kAllocMagic;
  hdr->size = size;
  uint8_t* redzone = vm_.mem().base() + payload_at + size;
  memset(redzone, 0xa5, kRedzoneSize);
  meta->brk = end;
  Charge(cost_.per_byte_ns * 8);
  return payload_at;
}

void GuestContext::Free(uint64_t addr) {
  if (addr < kHeapBase + kHeapMetaSize + sizeof(AllocHeader) ||
      addr >= vm_.mem().size_bytes()) {
    Crash(0xfee11bad, "invalid-free");
    return;
  }
  auto* hdr = vm_.mem().At<AllocHeader>(addr - sizeof(AllocHeader));
  if (hdr->magic != kAllocMagic) {
    // The header was smashed by an earlier out-of-bounds write; glibc would
    // abort here with heap corruption.
    Crash(0xc0de0001, "heap-corruption-on-free");
    return;
  }
  hdr->magic = 0;
}

uint32_t GuestContext::HeapSizeOf(uint64_t addr) {
  auto* hdr = vm_.mem().At<AllocHeader>(addr - sizeof(AllocHeader));
  return hdr->magic == kAllocMagic ? hdr->size : 0;
}

void GuestContext::HeapWrite(uint64_t addr, uint32_t offset, const void* src, uint32_t len) {
  auto* hdr = vm_.mem().At<AllocHeader>(addr - sizeof(AllocHeader));
  const bool oob =
      hdr->magic != kAllocMagic || static_cast<uint64_t>(offset) + len > hdr->size;
  if (oob && asan_) {
    Crash(0xa5a50001, "asan-heap-buffer-overflow-write");
    return;
  }
  if (addr + offset + len > vm_.mem().size_bytes()) {
    Crash(0x5e9f0001, "wild-write-segv");
    return;
  }
  // Without ASan the write goes through — possibly into the redzone and the
  // next allocation's header. The corruption is latent until Free() trips it.
  memcpy(vm_.mem().base() + addr + offset, src, len);
  Charge(cost_.per_byte_ns * len);
}

void GuestContext::HeapRead(uint64_t addr, uint32_t offset, void* dst, uint32_t len) {
  auto* hdr = vm_.mem().At<AllocHeader>(addr - sizeof(AllocHeader));
  const bool oob =
      hdr->magic != kAllocMagic || static_cast<uint64_t>(offset) + len > hdr->size;
  if (oob && asan_) {
    Crash(0xa5a50002, "asan-heap-buffer-overflow-read");
    return;
  }
  if (addr + offset + len > vm_.mem().size_bytes()) {
    Crash(0x5e9f0002, "wild-read-segv");
    return;
  }
  memcpy(dst, vm_.mem().base() + addr + offset, len);
  Charge(cost_.per_byte_ns * len);
}

void GuestContext::IjonMax(uint32_t slot, uint64_t value) {
  if (slot < kIjonSlots && value > ijon_[slot]) {
    ijon_[slot] = value;
  }
}

uint64_t GuestContext::IjonValue(uint32_t slot) const {
  return slot < kIjonSlots ? ijon_[slot] : 0;
}

namespace {

// Fault-guard state, per worker thread: each parallel campaign guards its
// own Step() calls, and SIGSEGV is delivered on the faulting thread, so
// thread_local state routes every fault back to the guard that armed it.
// The flag is sig_atomic_t because it is read from the SIGSEGV handler.
// Re-armed around every Step, never captured by a snapshot; FaultGuardIdle
// is the registry's verify hook for the invariant.
NYX_EXEC_EPHEMERAL("guest.fault_jmp");
thread_local sigjmp_buf t_step_jmp;
NYX_EXEC_EPHEMERAL("guest.fault_armed");
thread_local volatile std::sig_atomic_t t_step_armed = 0;

bool OnUnresolvedFault() {
  if (t_step_armed == 0) {
    return false;  // fault outside a guarded Step: genuinely fatal
  }
  t_step_armed = 0;
  siglongjmp(t_step_jmp, 1);
}

struct HookInstaller {
  HookInstaller() { SetUnresolvedFaultHook(&OnUnresolvedFault); }
};

}  // namespace

bool FaultGuardIdle() { return t_step_armed == 0; }

bool GuardedStep(Target& target, GuestContext& ctx) {
  // Monotonic init-once state: set on first use, immutable afterwards, so it
  // can never diverge across executions.
  NYX_EXEC_EPHEMERAL("guest.fault_hook_installer");
  static HookInstaller installer;
  // Constructed before sigsetjmp on purpose: the crash path siglongjmps back
  // into this frame, and a scope opened after the setjmp would be jumped
  // over without its destructor, leaking a phase-stack frame.
  telemetry::ScopedPhase phase(telemetry::Phase::kGuestRun);
  if (sigsetjmp(t_step_jmp, 1) != 0) {
    // Landed here from the SIGSEGV handler: the target walked off the map.
    ctx.Crash(kCrashWildSegv, "segv-wild-access");
    return false;
  }
  t_step_armed = 1;
  target.Step(ctx);
  t_step_armed = 0;
  return true;
}

void GuestContext::Crash(uint32_t crash_id, std::string kind) {
  if (crash_.crashed) {
    return;  // first crash wins
  }
  crash_.crashed = true;
  crash_.crash_id = crash_id;
  crash_.kind = std::move(kind);
}

}  // namespace nyx
