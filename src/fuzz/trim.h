// Analysis-guided corpus trimming (DESIGN.md §14).
//
// afl-tmin-shaped minimizer for bytecode programs: repeatedly remove ops,
// keep a removal iff a pinned-RNG re-execution reproduces the original's
// coverage fingerprint (edges, sites, crash outcome, IJON feedback). What
// the static analyzer contributes is the *order*: removal candidates are
// probed dead-first (provably-dead fault ops, then speculative candidates —
// remaining faults, unused-connection cones — then packet payload in
// reverse, closes, connections), and whole dependency cones are removed per
// probe so every probe is a Validate-clean program without Repair's
// semantics-changing rebinding. A naive mode (reverse program order, one op
// at a time) exists purely as the baseline the bench compares probe-exec
// counts against.
//
// All probes pin the per-exec RNG to the original input's hash
// (NyxEngine::RunPinned), otherwise every rewrite would "differ" in
// deterministic layout noise. When the engine runs with NYX_AUDIT=1 the
// probes are audited executions, and TrimStats reports the divergence
// delta — a trimmed corpus is only accepted by `nyx-net trim` when that
// delta is zero (audit-clean oracle).

#ifndef SRC_FUZZ_TRIM_H_
#define SRC_FUZZ_TRIM_H_

#include <cstddef>
#include <cstdint>

#include "src/fuzz/engine.h"
#include "src/spec/program.h"
#include "src/spec/spec.h"

namespace nyx {

struct TrimOptions {
  // Probe candidates in analysis order (dead-first, cones); false = naive
  // afl-tmin baseline (reverse op order).
  bool analysis_order = true;
  // A pass sweeps every candidate once; passes repeat until a fixpoint or
  // this cap (removals can unlock further removals, e.g. a connection whose
  // last packet was just removed).
  size_t max_passes = 8;
};

struct TrimStats {
  size_t probe_execs = 0;  // engine executions spent (the bench headline)
  size_t ops_before = 0;
  size_t ops_after = 0;
  size_t bytes_before = 0;  // serialized wire sizes
  size_t bytes_after = 0;
  // Auditor divergences recorded during trimming (0 unless the engine's
  // NYX_AUDIT replay oracle fired; always 0 when auditing is off).
  uint64_t audit_divergences = 0;
};

// Minimizes `input` against the coverage-fingerprint oracle. The returned
// program is Validate-clean whenever the input was, and always reproduces
// the input's pinned-RNG coverage fingerprint exactly.
Program TrimProgram(NyxEngine& engine, const Spec& spec, const Program& input,
                    const TrimOptions& options, TrimStats* stats);

}  // namespace nyx

#endif  // SRC_FUZZ_TRIM_H_
