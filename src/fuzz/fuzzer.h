// The Nyx-Net fuzzer: ties together the execution engine, corpus, mutators
// and snapshot placement policy.
//
// Scheduling shape (paper section 3.4): each time an input is scheduled, the
// policy decides whether and where to place the incremental snapshot; the
// fuzzer then runs a batch of mutations of the suffix against that snapshot
// ("reusing the snapshot as little as 50 times yields significant
// performance increases") before scheduling the next input and discarding
// the snapshot.

#ifndef SRC_FUZZ_FUZZER_H_
#define SRC_FUZZ_FUZZER_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/common/stats.h"
#include "src/fuzz/corpus.h"
#include "src/fuzz/engine.h"
#include "src/fuzz/mutator.h"
#include "src/fuzz/policy.h"

namespace nyx {

struct CrashRecord {
  std::string kind;
  uint64_t count = 0;
  double first_seen_vsec = 0.0;
  Program reproducer;
};

struct CampaignLimits {
  double vtime_seconds = 10.0;       // virtual-time budget
  uint64_t max_execs = UINT64_MAX;   // optional execution cap
  double wall_seconds = 120.0;       // hard real-time safety net
  bool stop_on_crash = false;
  uint64_t stop_on_crash_id = 0;     // with stop_on_crash: 0 = any crash
  uint64_t ijon_goal = 0;            // stop when slot-0 feedback reaches this
};

struct CampaignResult {
  uint64_t execs = 0;
  double vtime_seconds = 0.0;
  double execs_per_vsecond = 0.0;
  size_t branch_coverage = 0;
  size_t edge_coverage = 0;
  size_t corpus_size = 0;
  uint64_t incremental_creates = 0;
  uint64_t incremental_restores = 0;
  uint64_t root_restores = 0;
  uint64_t contract_soft_failures = 0;  // NYX_EXPECT misses (common/check.h)
  // Snapshot divergence audit (NYX_AUDIT=1, src/fuzz/audit.h); zero unless
  // the auditor is enabled.
  uint64_t pages_audited = 0;
  uint64_t audit_divergences = 0;
  // Deterministic fault injection (FuzzerConfig::fault_injection): total
  // fault applications and input bytes they dropped (src/netemu/netemu.h).
  uint64_t faults_injected = 0;
  uint64_t faulted_bytes = 0;
  // Semantic-dedup rejections (Corpus::semantic_dupes) and differential
  // analyzer checks performed (FuzzerConfig::analyze_check).
  uint64_t semantic_dupes = 0;
  uint64_t analyze_checks = 0;
  TimeSeries coverage_over_time;  // (vtime seconds, branch coverage)
  TimeSeries execs_over_time;     // (vtime seconds, cumulative execs)
  std::map<uint32_t, CrashRecord> crashes;
  double first_crash_vsec = -1.0;
  uint64_t ijon_best = 0;
  double ijon_goal_vsec = -1.0;  // virtual time the ijon goal was reached

  bool FoundCrash(uint32_t crash_id) const { return crashes.count(crash_id) != 0; }
};

class CorpusFrontier;

struct FuzzerConfig {
  PolicyMode policy = PolicyMode::kNone;
  uint64_t iterations_per_schedule = kIterationsPerSchedule;
  uint64_t seed = 1;
  // Sharded mode (harness/parallel.h): when set, the fuzzer joins the
  // frontier's lock-step corpus exchange every `sync_every_schedules`
  // schedule batches and folds its final coverage in on exit. The cadence
  // is counted in schedules, not wall time, to keep runs reproducible.
  CorpusFrontier* frontier = nullptr;
  size_t shard = 0;
  uint64_t sync_every_schedules = 4;
  // Let the mutator insert/mutate/delete NodeSemantic::kFault ops so
  // campaigns explore target error-handling paths ("No Peer, no Cry").
  bool fault_injection = false;
  // Differential soundness oracle (NYX_ANALYZE_CHECK): for every input that
  // enters the corpus, re-execute its canonical form against the original
  // with pinned RNG and abort on any guest-observable divergence. Debug
  // oracle — each check costs two extra executions.
  bool analyze_check = env::AnalyzeCheck();
};

class NyxFuzzer {
 public:
  NyxFuzzer(const EngineConfig& engine_config, TargetFactory factory, const Spec& spec,
            const FuzzerConfig& config);

  // Seeds must be added before Run(). Invalid seeds are repaired.
  void AddSeed(Program seed);

  CampaignResult Run(const CampaignLimits& limits);

  NyxEngine& engine() { return engine_; }
  Corpus& corpus() { return corpus_; }

 private:
  // Executes one input, folds in coverage/crash bookkeeping. Returns whether
  // it produced new coverage.
  bool RunOne(const Program& input, CampaignResult& result);

  // FuzzerConfig::analyze_check hook: differentially verifies the analyzer's
  // canonical rewrite of `input` (no-op when the rewrite is the identity).
  void MaybeAnalyzeCheck(const Program& input, CampaignResult& result);

  const Spec& spec_;
  FuzzerConfig config_;
  NyxEngine engine_;
  Corpus corpus_;
  Mutator mutator_;
  SnapshotPolicy policy_;
  GlobalCoverage global_cov_;
  CoverageMap trace_;
  Rng rng_;
  uint64_t last_exec_vtime_ = 0;
  size_t last_packets_ = 0;
  // Sharded mode: entries found since the last frontier sync.
  std::vector<size_t> pending_publish_;  // corpus indices
  uint64_t schedules_since_sync_ = 0;
};

}  // namespace nyx

#endif  // SRC_FUZZ_FUZZER_H_
