#include "src/fuzz/frontier.h"

#include "src/common/check.h"
#include "src/common/telemetry.h"
#include "src/spec/analyze.h"

namespace nyx {

CorpusFrontier::CorpusFrontier(size_t shards, const Spec* spec)
    : shards_(shards), active_(shards), staged_(shards), next_(shards, 0), spec_(spec) {
  NYX_CHECK(shards > 0);
}

void CorpusFrontier::FlipLocked() {
  for (size_t s = 0; s < shards_; s++) {
    for (Entry& e : staged_[s]) {
      // Dedup across the whole campaign; iterating in shard order makes the
      // surviving copy (and its origin) independent of arrival order. The
      // semantic key catches programs that differ only in dead ops or
      // normalized fault args (spec/analyze.h) — both checks must pass for
      // the entry to publish.
      const uint64_t h = e.program.OpsHash(e.program.ops.size());
      if (!seen_.insert(h).second) {
        continue;
      }
      if (spec_ != nullptr &&
          !seen_normal_.insert(spec::NormalHash(e.program, *spec_)).second) {
        continue;
      }
      log_.push_back(std::move(e));
    }
    staged_[s].clear();
  }
  arrived_ = 0;
  generation_++;
}

std::vector<CorpusFrontier::Entry> CorpusFrontier::ExchangeSync(size_t shard,
                                                                std::vector<Entry> fresh) {
  // Covers both lock acquisition and barrier-wait time, so the phase
  // histogram exposes sync stalls, not just critical-section work.
  telemetry::ScopedPhase phase(telemetry::Phase::kFrontierSync);
  MutexLock lock(mu_);
  NYX_CHECK_LT(shard, shards_);
  for (Entry& e : fresh) {
    e.origin = shard;
    staged_[shard].push_back(std::move(e));
  }
  arrived_++;
  const uint64_t gen = generation_;
  if (arrived_ == active_) {
    FlipLocked();
    cv_.NotifyAll();
  } else {
    while (generation_ == gen) {
      cv_.Wait(mu_);
    }
  }
  std::vector<Entry> imports;
  for (size_t i = next_[shard]; i < log_.size(); i++) {
    if (log_[i].origin != shard) {
      imports.push_back(log_[i]);
    }
  }
  next_[shard] = log_.size();
  return imports;
}

void CorpusFrontier::Leave(size_t shard, std::vector<Entry> fresh, const GlobalCoverage& cov) {
  telemetry::ScopedPhase phase(telemetry::Phase::kFrontierSync);
  MutexLock lock(mu_);
  NYX_CHECK_LT(shard, shards_);
  for (Entry& e : fresh) {
    e.origin = shard;
    staged_[shard].push_back(std::move(e));
  }
  merged_cov_.MergeFrom(cov);
  NYX_CHECK(active_ > 0);
  active_--;
  // The departure may complete the barrier for everyone still waiting. The
  // leaver's final batch rides along in this flip (a generation can never
  // flip between a shard's last sync and its Leave: the barrier needs every
  // active shard, and a leaving shard never arrives again).
  if (active_ > 0 && arrived_ == active_) {
    FlipLocked();
    cv_.NotifyAll();
  }
}

uint64_t CorpusFrontier::generations() const {
  MutexLock lock(mu_);
  return generation_;
}

size_t CorpusFrontier::published() const {
  MutexLock lock(mu_);
  return log_.size();
}

}  // namespace nyx
