#include "src/fuzz/corpus.h"

#include "src/common/check.h"
#include "src/common/log.h"
#include "src/common/telemetry.h"
#include "src/spec/analyze.h"
#include "src/spec/verify.h"

namespace nyx {

bool Corpus::Add(Program program, uint64_t vtime_ns, size_t packet_count, double found_at_vsec) {
  NYX_DCHECK(thread_checker_.CalledOnValidThread());
  program.StripSnapshotMarkers();
  if (spec_ != nullptr) {
    telemetry::ScopedPhase phase(telemetry::Phase::kVerify);
    const spec::Result verdict = spec::Verify(program, *spec_);
    if (!NYX_EXPECT(verdict.ok())) {
      NYX_LOG_WARN << "corpus rejected ill-formed program: " << verdict.Summary();
      return false;
    }
    // Second dedup key: semantic identity. The fuzzer only calls Add for
    // inputs with new *merged* coverage, but dead-op padding or ignored
    // fault-arg twiddles can still ride in on a genuinely-new trace's
    // coattails via frontier import or racing shards.
    if (!normal_seen_.insert(spec::NormalHash(program, *spec_)).second) {
      semantic_dupes_++;
      return false;
    }
  }
  CorpusEntry entry;
  entry.program = std::move(program);
  entry.vtime_ns = vtime_ns;
  entry.packet_count = packet_count;
  entry.found_at_vsec = found_at_vsec;
  entry.weight = EntryWeight(entry);
  weight_sum_ += entry.weight;
  entries_.push_back(std::move(entry));
  return true;
}

double Corpus::EntryWeight(const CorpusEntry& e) {
  // Lower is better: heavily picked or slow entries lose. The time term is
  // scaled so a ~10 ms execution weighs like one extra pick — favoring
  // fast, small entries keeps throughput high (AFL's favored-entry logic).
  return static_cast<double>(e.picks) + static_cast<double>(e.vtime_ns) * 1e-7;
}

CorpusEntry& Corpus::Pick(Rng& rng) {
  NYX_DCHECK(thread_checker_.CalledOnValidThread());
  // Tournament selection over the cached weights: sample a few candidates,
  // keep the best-scoring.
  size_t best = rng.Below(entries_.size());
  for (int i = 0; i < 2; i++) {
    const size_t cand = rng.Below(entries_.size());
    if (entries_[cand].weight < entries_[best].weight) {
      best = cand;
    }
  }
  entries_[best].picks++;
  entries_[best].weight += 1.0;  // one pick costs exactly one weight unit
  weight_sum_ += 1.0;
  return entries_[best];
}

void Corpus::SetVtime(size_t i, uint64_t vtime_ns) {
  NYX_DCHECK(thread_checker_.CalledOnValidThread());
  CorpusEntry& e = entries_[i];
  e.vtime_ns = vtime_ns;
  const double fresh = EntryWeight(e);
  weight_sum_ += fresh - e.weight;
  e.weight = fresh;
}

std::vector<const Program*> Corpus::Donors() const {
  std::vector<const Program*> out;
  out.reserve(entries_.size());
  for (const CorpusEntry& e : entries_) {
    out.push_back(&e.program);
  }
  return out;
}

}  // namespace nyx
