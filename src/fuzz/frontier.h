// Cross-worker corpus exchange for in-process sharded fuzzing (AFL's -M/-S
// mode, paper section 6.2: Nyx-Net campaigns ran "10 processes in parallel
// on the same corpus").
//
// N NyxFuzzer workers attack the same target, one Vm each. Every few
// schedule batches each worker rendezvouses at the frontier, publishes the
// corpus entries it found since the last sync, and imports everyone else's.
// The exchange is a lock-step generation barrier: the last worker to arrive
// appends all staged batches to a shared log *in shard order*, so the import
// order — and therefore every worker's downstream RNG/corpus trajectory —
// is independent of thread scheduling. Repeated sharded runs with the same
// seeds are bit-identical as long as the campaign is bounded by virtual
// time or exec count (wall-clock limits are inherently nondeterministic).
//
// A worker whose budget runs out calls Leave(): it publishes its final
// batch, folds its coverage into the merged map, and drops out of the
// barrier so the remaining workers stop waiting for it.

#ifndef SRC_FUZZ_FRONTIER_H_
#define SRC_FUZZ_FRONTIER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "src/fuzz/coverage.h"
#include "src/spec/program.h"

namespace nyx {

class CorpusFrontier {
 public:
  struct Entry {
    Program program;  // snapshot markers stripped
    uint64_t vtime_ns = 0;
    size_t packet_count = 0;
    size_t origin = 0;  // shard that found it (importers skip their own)
  };

  explicit CorpusFrontier(size_t shards);

  // Rendezvous: stages `fresh`, blocks until every active shard has arrived
  // (the last arriver flips the generation), then returns all log entries
  // this shard has not imported yet, excluding its own. Must not be called
  // after Leave().
  std::vector<Entry> ExchangeSync(size_t shard, std::vector<Entry> fresh);

  // Final exit: publishes the remaining batch, folds `cov` into the merged
  // coverage, and removes the shard from the barrier. Never blocks.
  void Leave(size_t shard, std::vector<Entry> fresh, const GlobalCoverage& cov);

  // Union of all workers' coverage. Valid once every shard has left
  // (i.e. after joining the worker threads).
  const GlobalCoverage& merged_coverage() const { return merged_cov_; }

  size_t shards() const { return shards_; }
  uint64_t generations() const;
  size_t published() const;

 private:
  // Appends staged batches to the log in shard order, dropping programs
  // already published (hash dedup — deterministic winner: lowest shard).
  // Caller holds mu_.
  void FlipLocked();

  const size_t shards_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  size_t active_;        // shards that have not Left yet
  size_t arrived_ = 0;   // shards waiting at the current generation
  uint64_t generation_ = 0;
  std::vector<std::vector<Entry>> staged_;  // per shard, pending flip
  std::vector<Entry> log_;                  // published entries, stable order
  std::vector<size_t> next_;                // per shard: first unseen log index
  std::unordered_set<uint64_t> seen_;       // published program hashes
  GlobalCoverage merged_cov_;
};

}  // namespace nyx

#endif  // SRC_FUZZ_FRONTIER_H_
