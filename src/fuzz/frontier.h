// Cross-worker corpus exchange for in-process sharded fuzzing (AFL's -M/-S
// mode, paper section 6.2: Nyx-Net campaigns ran "10 processes in parallel
// on the same corpus").
//
// N NyxFuzzer workers attack the same target, one Vm each. Every few
// schedule batches each worker rendezvouses at the frontier, publishes the
// corpus entries it found since the last sync, and imports everyone else's.
// The exchange is a lock-step generation barrier: the last worker to arrive
// appends all staged batches to a shared log *in shard order*, so the import
// order — and therefore every worker's downstream RNG/corpus trajectory —
// is independent of thread scheduling. Repeated sharded runs with the same
// seeds are bit-identical as long as the campaign is bounded by virtual
// time or exec count (wall-clock limits are inherently nondeterministic).
//
// A worker whose budget runs out calls Leave(): it publishes its final
// batch, folds its coverage into the merged map, and drops out of the
// barrier so the remaining workers stop waiting for it.

#ifndef SRC_FUZZ_FRONTIER_H_
#define SRC_FUZZ_FRONTIER_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "src/common/sync.h"
#include "src/fuzz/coverage.h"
#include "src/spec/program.h"

namespace nyx {

class CorpusFrontier {
 public:
  struct Entry {
    Program program;  // snapshot markers stripped
    uint64_t vtime_ns = 0;
    size_t packet_count = 0;
    size_t origin = 0;  // shard that found it (importers skip their own)
  };

  // With a spec attached, published entries are deduplicated on semantic
  // identity (spec::NormalHash) in addition to the syntactic ops hash, so a
  // dead-op-padded variant of an already-published program never crosses
  // shards. The spec must outlive the frontier; pass nullptr to keep the
  // syntactic-only behaviour (tests).
  explicit CorpusFrontier(size_t shards, const Spec* spec = nullptr);

  // Rendezvous: stages `fresh`, blocks until every active shard has arrived
  // (the last arriver flips the generation), then returns all log entries
  // this shard has not imported yet, excluding its own. Must not be called
  // after Leave().
  std::vector<Entry> ExchangeSync(size_t shard, std::vector<Entry> fresh)
      NYX_EXCLUDES(mu_);

  // Final exit: publishes the remaining batch, folds `cov` into the merged
  // coverage, and removes the shard from the barrier. Never blocks.
  void Leave(size_t shard, std::vector<Entry> fresh, const GlobalCoverage& cov)
      NYX_EXCLUDES(mu_);

  // Union of all workers' coverage. Only valid once every shard has left
  // (i.e. after joining the worker threads) — at that point no writer
  // exists, which is an invariant the static analysis cannot see.
  const GlobalCoverage& merged_coverage() const NYX_NO_THREAD_SAFETY_ANALYSIS {
    return merged_cov_;
  }

  size_t shards() const { return shards_; }
  uint64_t generations() const NYX_EXCLUDES(mu_);
  size_t published() const NYX_EXCLUDES(mu_);

 private:
  // Appends staged batches to the log in shard order, dropping programs
  // already published (hash dedup — deterministic winner: lowest shard).
  void FlipLocked() NYX_REQUIRES(mu_);

  const size_t shards_;
  // Own cache line: workers hammer this line at every rendezvous while the
  // entries they stage live right next to it.
  alignas(kCacheLineSize) mutable Mutex mu_{"frontier.mu", LockRank::kFrontier};
  CondVar cv_;
  size_t active_ NYX_GUARDED_BY(mu_);       // shards that have not Left yet
  size_t arrived_ NYX_GUARDED_BY(mu_) = 0;  // shards waiting at this generation
  uint64_t generation_ NYX_GUARDED_BY(mu_) = 0;
  // Per shard, pending flip.
  std::vector<std::vector<Entry>> staged_ NYX_GUARDED_BY(mu_);
  // Published entries, stable order.
  std::vector<Entry> log_ NYX_GUARDED_BY(mu_);
  // Per shard: first unseen log index.
  std::vector<size_t> next_ NYX_GUARDED_BY(mu_);
  // Published program hashes.
  std::unordered_set<uint64_t> seen_ NYX_GUARDED_BY(mu_);
  // Published normal-form hashes (spec attached only).
  std::unordered_set<uint64_t> seen_normal_ NYX_GUARDED_BY(mu_);
  const Spec* const spec_;
  GlobalCoverage merged_cov_ NYX_GUARDED_BY(mu_);
};

}  // namespace nyx

#endif  // SRC_FUZZ_FRONTIER_H_
