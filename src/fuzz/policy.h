// Snapshot placement policies (paper section 3.4, "Snapshot Scheduling").
//
//   Nyx-Net-none:       always the root snapshot.
//   Nyx-Net-balanced:   inputs with more than four packets choose the root
//                       snapshot in 4% of cases; otherwise a random index in
//                       the whole input (50%) or only in the second half
//                       (50%).
//   Nyx-Net-aggressive: cycles all available indices. The first schedule
//                       places the snapshot at the end of the input; each
//                       time 50 iterations pass without new inputs the
//                       snapshot moves one packet earlier, wrapping to the
//                       end at the smallest index.
//
// For sequences smaller than four packets both policies select the root
// snapshot.

#ifndef SRC_FUZZ_POLICY_H_
#define SRC_FUZZ_POLICY_H_

#include <cstddef>
#include <cstdint>

#include "src/common/rng.h"

namespace nyx {

enum class PolicyMode {
  kNone,
  kBalanced,
  kAggressive,
};

const char* PolicyName(PolicyMode mode);

// Per-corpus-entry cursor for the aggressive policy.
struct AggressiveCursor {
  bool initialized = false;
  size_t index = 0;
  uint64_t fruitless = 0;
  uint64_t schedules_at_index = 0;
};

// Even while new inputs keep trickling in, the aggressive policy must still
// cycle "all available indices" (paper wording); cap the dwell time per
// index so a steady coverage trickle cannot pin the snapshot at the end.
inline constexpr uint64_t kMaxSchedulesPerIndex = 8;

// The paper moves the snapshot one packet earlier after 50 executions
// without new inputs. The fuzzer runs one scheduling batch of
// kIterationsPerSchedule (= 50) executions per Decide() call, so one
// fruitless *schedule* is exactly the paper's 50 fruitless iterations.
inline constexpr uint64_t kFruitlessThreshold = 1;
inline constexpr uint64_t kIterationsPerSchedule = 50;
inline constexpr size_t kMinPacketsForSnapshot = 4;

struct PlacementDecision {
  bool use_incremental = false;
  size_t packet_index = 0;  // snapshot goes after this packet (0-based)
};

class SnapshotPolicy {
 public:
  SnapshotPolicy(PolicyMode mode, uint64_t seed) : mode_(mode), rng_(seed) {}

  PolicyMode mode() const { return mode_; }

  // Decides placement for an input with `packet_count` packets. `cursor` is
  // the entry's aggressive-policy state; `found_new_inputs_since_last` feeds
  // the fruitless counter.
  PlacementDecision Decide(size_t packet_count, AggressiveCursor& cursor,
                           bool found_new_inputs_since_last);

 private:
  PolicyMode mode_;
  Rng rng_;
};

}  // namespace nyx

#endif  // SRC_FUZZ_POLICY_H_
