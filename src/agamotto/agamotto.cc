#include "src/agamotto/agamotto.h"

#include <string.h>

#include <algorithm>
#include <vector>

namespace nyx {

AgamottoCheckpointManager::AgamottoCheckpointManager(GuestMemory& mem, const Config& config)
    : mem_(mem), config_(config), base_image_(mem.size_bytes()) {
  memcpy(base_image_.data(), mem.base(), mem.size_bytes());
  mem_.ArmTracking();
}

const uint8_t* AgamottoCheckpointManager::Node::FindPage(uint32_t page) const {
  auto it = std::lower_bound(pages.begin(), pages.end(), page,
                             [](const auto& entry, uint32_t p) { return entry.first < p; });
  if (it != pages.end() && it->first == page) {
    return it->second.get();
  }
  return nullptr;
}

const uint8_t* AgamottoCheckpointManager::ResolvePage(int id, uint32_t page) const {
  for (int cur = id; cur != -1;) {
    auto it = nodes_.find(cur);
    if (it == nodes_.end()) {
      break;
    }
    if (const uint8_t* p = it->second.FindPage(page)) {
      return p;
    }
    cur = it->second.parent;
  }
  return base_image_.data() + static_cast<size_t>(page) * kPageSize;
}

void AgamottoCheckpointManager::Touch(int id) {
  auto pos = lru_pos_.find(id);
  if (pos != lru_pos_.end()) {
    lru_.erase(pos->second);
  }
  lru_.push_front(id);
  lru_pos_[id] = lru_.begin();
}

void AgamottoCheckpointManager::DeleteNode(int id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) {
    return;
  }
  Node& node = it->second;
  // Re-parent children: their deltas stay correct only if the evicted node's
  // deltas are merged down into them first.
  for (int child : node.children) {
    Node& c = nodes_.at(child);
    c.parent = node.parent;
    for (auto& [page, data] : node.pages) {
      if (c.FindPage(page) == nullptr) {
        auto copy = std::make_unique<uint8_t[]>(kPageSize);
        memcpy(copy.get(), data.get(), kPageSize);
        auto ins = std::lower_bound(
            c.pages.begin(), c.pages.end(), page,
            [](const auto& entry, uint32_t p) { return entry.first < p; });
        c.pages.insert(ins, {page, std::move(copy)});
        stored_bytes_ += kPageSize;
      }
    }
    if (node.parent != -1) {
      nodes_.at(node.parent).children.push_back(child);
    }
  }
  if (node.parent != -1) {
    auto& siblings = nodes_.at(node.parent).children;
    siblings.erase(std::remove(siblings.begin(), siblings.end(), id), siblings.end());
  }
  stored_bytes_ -= node.pages.size() * kPageSize;
  auto pos = lru_pos_.find(id);
  if (pos != lru_pos_.end()) {
    lru_.erase(pos->second);
    lru_pos_.erase(pos);
  }
  nodes_.erase(it);
  evictions_++;
}

void AgamottoCheckpointManager::EvictIfNeeded(int protect_id) {
  while (stored_bytes_ > config_.memory_budget_bytes && nodes_.size() > 1) {
    // Evict the least recently used checkpoint that is not the protected one.
    int victim = -1;
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      if (*it != protect_id && *it != current_node_) {
        victim = *it;
        break;
      }
    }
    if (victim == -1) {
      return;
    }
    DeleteNode(victim);
  }
}

int AgamottoCheckpointManager::CreateCheckpoint() {
  const int parent_id = current_node_;
  Node node;
  node.id = next_id_++;
  node.parent = parent_id;
  // Passive backends publish dirty info only on sync; fault-driven ones
  // treat this as a no-op.
  mem_.SyncDirty();
  // The defining cost: scan the whole bitmap to discover dirty pages.
  mem_.tracker().ForEachDirtyByBitmapWalk([&](uint32_t page) {
    auto copy = std::make_unique<uint8_t[]>(kPageSize);
    memcpy(copy.get(), mem_.base() + static_cast<size_t>(page) * kPageSize, kPageSize);
    node.pages.emplace_back(page, std::move(copy));
    stored_bytes_ += kPageSize;
  });
  // Stack iteration yields pages in dirtying order; FindPage needs them
  // sorted. (The bitmap walk already produces sorted output, but keep the
  // invariant explicit.)
  std::sort(node.pages.begin(), node.pages.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  const int id = node.id;
  if (parent_id != -1) {
    nodes_.at(parent_id).children.push_back(id);
  }
  nodes_.emplace(id, std::move(node));
  Touch(id);
  mem_.ReArmDirtyPages();
  current_node_ = id;
  EvictIfNeeded(id);
  return id;
}

bool AgamottoCheckpointManager::RestoreCheckpoint(int id) {
  if (id != -1 && nodes_.count(id) == 0) {
    return false;
  }
  mem_.SyncDirty();
  auto restore_page = [&](uint32_t page) {
    memcpy(mem_.base() + static_cast<size_t>(page) * kPageSize, ResolvePage(id, page),
           kPageSize);
  };

  // Pages in the old and new lineages' deltas may differ between the two
  // states even though they are not in the dirty log.
  std::unordered_map<uint32_t, bool> lineage_pages;
  for (int cur : {current_node_, id}) {
    while (cur != -1) {
      auto it = nodes_.find(cur);
      if (it == nodes_.end()) {
        break;
      }
      for (const auto& [page, data] : it->second.pages) {
        lineage_pages.emplace(page, true);
      }
      cur = it->second.parent;
    }
  }
  // Open the still-protected lineage pages in one coalesced pass (dirty ones
  // are already writable), copy everything, then seal opened+dirty together
  // — replacing the old protection-toggle pair around each single copy.
  std::vector<uint32_t> to_open;
  to_open.reserve(lineage_pages.size());
  for (const auto& [page, unused] : lineage_pages) {
    if (!mem_.tracker().IsDirty(page)) {
      to_open.push_back(page);
    }
  }
  std::sort(to_open.begin(), to_open.end());
  mem_.OpenForRestore(to_open.data(), to_open.size());
  for (const uint32_t page : to_open) {
    restore_page(page);
  }

  // Another full bitmap walk to find freshly dirtied pages to revert.
  mem_.tracker().ForEachDirtyByBitmapWalk(restore_page);
  mem_.SealAfterRestore();
  current_node_ = id;
  if (id != -1) {
    Touch(id);
  }
  return true;
}

}  // namespace nyx
