// AGAMOTTO-style lightweight checkpointing, reimplemented as the comparison
// baseline for Figure 6 and the related discussion in section 5.3:
//
//  - Checkpoints form a *tree*: each node stores page deltas relative to its
//    parent; restoring walks the chain from the node back to the root image.
//  - Dirty pages are found by walking KVM's whole one-byte-per-page bitmap
//    ("AGAMOTTO has to walk the whole bitmap of all pages present in the
//    physical memory of the VM"), so creation cost scales with VM size, not
//    with the number of dirtied pages.
//  - Page copies live in heap-allocated buffers; once the total exceeds a
//    memory budget (1 GiB in the paper), least-recently-used checkpoints are
//    evicted, "causing it to slow down".

#ifndef SRC_AGAMOTTO_AGAMOTTO_H_
#define SRC_AGAMOTTO_AGAMOTTO_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/bytes.h"
#include "src/vm/guest_memory.h"

namespace nyx {

class AgamottoCheckpointManager {
 public:
  struct Config {
    size_t memory_budget_bytes = 1ull << 30;
  };

  // Captures the base image of `mem`; all checkpoints are relative to it.
  AgamottoCheckpointManager(GuestMemory& mem, const Config& config);

  // Creates a checkpoint of the current state as a child of the checkpoint
  // the VM last diverged from (deltas are only meaningful relative to that
  // lineage). Walks the full dirty bitmap. Returns the new checkpoint id.
  int CreateCheckpoint();

  // Restores the VM to `id` (-1 = base image). Reverts (a) pages dirtied
  // since the last create/restore, (b) pages in the old lineage's deltas and
  // (c) pages in the target lineage's deltas, each resolved by searching the
  // target's checkpoint chain and falling back to the base image.
  bool RestoreCheckpoint(int id);

  bool IsLive(int id) const { return nodes_.count(id) != 0; }
  size_t live_checkpoints() const { return nodes_.size(); }
  size_t stored_bytes() const { return stored_bytes_; }
  uint64_t evictions() const { return evictions_; }

 private:
  struct Node {
    int id = 0;
    int parent = -1;
    std::vector<int> children;
    // Sorted page deltas relative to the parent.
    std::vector<std::pair<uint32_t, std::unique_ptr<uint8_t[]>>> pages;
    const uint8_t* FindPage(uint32_t page) const;
  };

  const uint8_t* ResolvePage(int id, uint32_t page) const;
  void Touch(int id);
  void EvictIfNeeded(int protect_id);
  void DeleteNode(int id);

  GuestMemory& mem_;
  Config config_;
  Bytes base_image_;
  std::unordered_map<int, Node> nodes_;
  std::list<int> lru_;  // front = most recently used
  std::unordered_map<int, std::list<int>::iterator> lru_pos_;
  int next_id_ = 0;
  int current_node_ = -1;  // lineage the VM last diverged from
  size_t stored_bytes_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace nyx

#endif  // SRC_AGAMOTTO_AGAMOTTO_H_
