// Baseline fuzzers the paper compares against (sections 2.1, 5.1-5.3):
//
//   AFLNet          — sends packets over real sockets to a freshly restarted
//                     server each execution; fixed readiness sleeps, a
//                     user-written cleanup script, and response-code state
//                     machine feedback.
//   AFLNet-no-state — AFLNet without the state machine; in our model it also
//                     keeps the server process alive across executions (only
//                     the cleanup script runs), which is what let it trip
//                     pure-ftpd's internal allocation limit (Table 1 `*`).
//   AFLNwe          — AFLNet's network-replacement mode: same transport
//                     costs, no state machine.
//   AFL++ + desock  — LIBPREENY-style socket-to-stdin redirection: the whole
//                     input is one coalesced stream, packet boundaries are
//                     lost, and anything needing real socket semantics
//                     (multiple connections, UDP, fork servers) fails (the
//                     "n/a" rows of Tables 1-3).
//   IJON            — AFL with IJON's maximization feedback, fork-server
//                     restarts and pipe-fed input (the Super Mario baseline).
//
// All baselines run the *same* targets on the same substrate; only their
// transport/restart mechanics and cost models differ. The underlying VM
// snapshot is used as the mechanical implementation of "restart the
// process" — the virtual clock charges what the real restart would cost.

#ifndef SRC_BASELINES_BASELINE_H_
#define SRC_BASELINES_BASELINE_H_

#include <memory>
#include <set>
#include <string>

#include "src/fuzz/fuzzer.h"

namespace nyx {

enum class BaselineKind {
  kAflnet,
  kAflnetNoState,
  kAflnwe,
  kAflppDesock,
  kIjon,
};

const char* BaselineName(BaselineKind kind);

struct BaselineConfig {
  BaselineKind kind = BaselineKind::kAflnet;
  uint64_t seed = 1;
  // Extra virtual cost per delivered payload byte (IJON's pipe-fed frames).
  uint64_t per_byte_extra_ns = 0;
  // How often the no-state variant's server process is restarted anyway
  // (crash recovery); state accumulates in between.
  uint64_t no_state_restart_period = 4096;
};

class BaselineFuzzer {
 public:
  BaselineFuzzer(const EngineConfig& engine_config, TargetFactory factory, const Spec& spec,
                 const BaselineConfig& config);

  void AddSeed(Program seed);

  // Returns a result with supported() == false if this baseline cannot run
  // the target at all (desock vs. incompatible transports).
  CampaignResult Run(const CampaignLimits& limits);

  bool supported() const { return supported_; }

 private:
  ExecResult RunOneExec(const Program& input, CoverageMap& cov);
  bool AflnetStateFeedback();

  EngineConfig engine_config_;
  const Spec& spec_;
  BaselineConfig config_;
  VirtualClock clock_;
  std::unique_ptr<Vm> vm_;
  NetEmu net_;
  std::unique_ptr<Target> target_;
  TargetInfo target_info_;
  Bytes boot_net_state_;
  bool supported_ = true;

  Corpus corpus_;
  Mutator mutator_;
  Rng noise_rng_{0x6e6f697365};
  GlobalCoverage global_cov_;
  CoverageMap trace_;
  Rng rng_;
  uint64_t execs_since_restart_ = 0;
  std::set<uint64_t> seen_state_sequences_;
  std::vector<int> exec_conns_;
  uint64_t last_exec_vtime_ = 0;
};

}  // namespace nyx

#endif  // SRC_BASELINES_BASELINE_H_
