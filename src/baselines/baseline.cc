#include "src/baselines/baseline.h"

#include <chrono>

#include "src/common/check.h"
#include "src/common/hash.h"

namespace nyx {

const char* BaselineName(BaselineKind kind) {
  switch (kind) {
    case BaselineKind::kAflnet:
      return "aflnet";
    case BaselineKind::kAflnetNoState:
      return "aflnet-no-state";
    case BaselineKind::kAflnwe:
      return "aflnwe";
    case BaselineKind::kAflppDesock:
      return "afl++-desock";
    case BaselineKind::kIjon:
      return "ijon";
  }
  return "?";
}

BaselineFuzzer::BaselineFuzzer(const EngineConfig& engine_config, TargetFactory factory,
                               const Spec& spec, const BaselineConfig& config)
    : engine_config_(engine_config),
      spec_(spec),
      config_(config),
      corpus_(&spec_),
      mutator_(spec, config.seed ^ 0xbabe, /*dictionary=*/false),
      rng_(config.seed) {
  vm_ = std::make_unique<Vm>(engine_config_.vm);
  vm_->AttachClock(&clock_, &engine_config_.cost);
  if (config_.kind == BaselineKind::kAflppDesock) {
    // desock coalesces the byte stream: boundaries are not preserved.
    NetEmu::Config net_cfg;
    net_cfg.preserve_packet_boundaries = false;
    net_ = NetEmu(net_cfg);
  }
  net_.AttachClock(&clock_, &engine_config_.cost);
  target_ = factory();
  target_info_ = target_->info();
  if (config_.kind == BaselineKind::kAflppDesock && !target_info_.desock_compatible) {
    supported_ = false;
  }
}

void BaselineFuzzer::AddSeed(Program seed) {
  seed.StripSnapshotMarkers();
  seed.Repair(spec_);
  if (seed.ops.empty()) {
    return;
  }
  const size_t packets = seed.PacketOpIndices(spec_).size();
  corpus_.Add(std::move(seed), 0, packets, 0.0);
}

// Extracts the AFLNet-style state sequence from the target's responses:
// for text protocols the leading status digits, for binary protocols the
// first byte of each response.
bool BaselineFuzzer::AflnetStateFeedback() {
  uint64_t h = 0xcbf29ce484222325ull;
  for (int conn : exec_conns_) {
    if (!net_.ValidConn(conn)) {
      continue;
    }
    for (const Bytes& resp : net_.Sent(conn)) {
      uint32_t code = 0;
      if (resp.size() >= 3 && resp[0] >= '0' && resp[0] <= '9') {
        code = static_cast<uint32_t>((resp[0] - '0') * 100 + (resp[1] - '0') * 10 +
                                     (resp[2] - '0'));
      } else if (!resp.empty()) {
        code = 1000u + resp[0];
      }
      h = Fnv1a64(&code, sizeof(code), h);
    }
  }
  return seen_state_sequences_.insert(h).second;
}

ExecResult BaselineFuzzer::RunOneExec(const Program& input, CoverageMap& cov) {
  ExecResult result;
  const uint64_t t0 = clock_.now_ns();
  const CostModel& cost = engine_config_.cost;
  const bool no_state = config_.kind == BaselineKind::kAflnetNoState;

  // Persistent-server noise (paper section 1): "background threads in the
  // service can randomly get scheduled independently of the test cases [...]
  // These seemingly random code paths still affect the fuzzer's coverage and
  // introduce pointless inputs into the queue." The AFLNet family fuzzes a
  // live server over real sockets and inherits this noise; snapshot fuzzing
  // does not.
  if (config_.kind == BaselineKind::kAflnet || config_.kind == BaselineKind::kAflnetNoState ||
      config_.kind == BaselineKind::kAflnwe) {
    if (noise_rng_.Chance(1, 8)) {
      cov.OnNoiseEdge(60000 + static_cast<uint32_t>(noise_rng_.Below(512)));
    }
  }

  // Process restart (or not, for the no-state variant).
  execs_since_restart_++;
  const bool restart = !no_state || execs_since_restart_ >= config_.no_state_restart_period;
  if (restart) {
    execs_since_restart_ = 0;
    vm_->RestoreRoot();
    net_.Deserialize(boot_net_state_);
    clock_.Advance(cost.process_spawn_ns + target_info_.startup_ns);
    if (config_.kind == BaselineKind::kAflnet || config_.kind == BaselineKind::kAflnetNoState ||
        config_.kind == BaselineKind::kAflnwe) {
      clock_.Advance(cost.server_ready_poll_ns);
    }
    if (config_.kind == BaselineKind::kAflppDesock || config_.kind == BaselineKind::kIjon) {
      clock_.Advance(cost.forkserver_reset_ns);
    }
  } else {
    // Only the user-written cleanup script runs: the disk is rolled back,
    // the process (and its leaks) survive.
    vm_->disk().RestoreFromRoot(vm_->root().disk());
  }
  if (config_.kind == BaselineKind::kAflnet || config_.kind == BaselineKind::kAflnetNoState) {
    clock_.Advance(target_info_.aflnet_extra_ns);  // cleanup script + waits
  }
  if (config_.kind == BaselineKind::kAflnwe) {
    clock_.Advance(target_info_.aflnet_extra_ns / 2);
  }

  GuestContext ctx(*vm_, net_, cov, clock_, cost);
  ctx.set_asan(engine_config_.asan);
  ctx.ReseedRng(Mix64(engine_config_.seed ^ input.OpsHash(input.ops.size())));

  exec_conns_.clear();
  const bool desock = config_.kind == BaselineKind::kAflppDesock;

  if (desock) {
    // One implicit connection; the entire input is a single stdin stream.
    int conn = -1;
    if (target_info_.is_client) {
      GuardedStep(*target_, ctx);
      if (!net_.ClientConnections().empty()) {
        conn = net_.ClientConnections()[0];
      }
    } else {
      conn = net_.QueueConnection(target_info_.port);
    }
    if (conn >= 0) {
      Bytes stream;
      for (const Op& op : input.ops) {
        if (!op.is_snapshot() && op.node_type < spec_.node_type_count() &&
            spec_.node_type(op.node_type).semantic == NodeSemantic::kPacket) {
          Append(stream, op.data);
        }
      }
      clock_.Advance(cost.real_syscall_ns + cost.per_byte_ns * stream.size());
      net_.DeliverPacket(conn, std::move(stream));
      net_.PeerClose(conn);  // stdin EOF
      exec_conns_.push_back(conn);
      result.packets_delivered = 1;
      GuardedStep(*target_, ctx);
    }
  } else {
    // Real sockets: each op pays syscall/connect costs.
    std::vector<int> value_conns;
    size_t client_conns_used = 0;
    for (const Op& op : input.ops) {
      if (ctx.crash().crashed) {
        break;
      }
      if (op.is_snapshot() || op.node_type >= spec_.node_type_count()) {
        continue;
      }
      switch (spec_.node_type(op.node_type).semantic) {
        case NodeSemantic::kConnection: {
          int conn = -1;
          if (target_info_.is_client) {
            GuardedStep(*target_, ctx);
            const auto& clients = net_.ClientConnections();
            if (client_conns_used < clients.size()) {
              conn = clients[client_conns_used++];
            }
          } else if (target_info_.transport == SockKind::kDgram) {
            conn = net_.FindDgramSocket(target_info_.port);
          } else {
            conn = net_.QueueConnection(target_info_.port);
            clock_.Advance(cost.tcp_connect_ns);
          }
          value_conns.push_back(conn);
          if (conn >= 0) {
            exec_conns_.push_back(conn);
          }
          GuardedStep(*target_, ctx);
          break;
        }
        case NodeSemantic::kPacket: {
          const int conn = op.args.empty() || op.args[0] >= value_conns.size()
                               ? (value_conns.empty() ? -1 : value_conns.back())
                               : value_conns[op.args[0]];
          if (net_.ValidConn(conn)) {
            clock_.Advance(2 * cost.real_syscall_ns + cost.per_byte_ns * op.data.size() +
                           config_.per_byte_extra_ns * op.data.size());
            if (config_.kind == BaselineKind::kAflnet ||
                config_.kind == BaselineKind::kAflnetNoState) {
              // AFLNet waits a fixed receive timeout after each region.
              clock_.Advance(cost.aflnet_inter_packet_gap_ns);
            }
            net_.DeliverPacket(conn, op.data);
            result.packets_delivered++;
            GuardedStep(*target_, ctx);
          }
          break;
        }
        case NodeSemantic::kClose: {
          const int conn = op.args.empty() || op.args[0] >= value_conns.size()
                               ? -1
                               : value_conns[op.args[0]];
          if (net_.ValidConn(conn)) {
            net_.PeerClose(conn);
            GuardedStep(*target_, ctx);
          }
          break;
        }
        case NodeSemantic::kCustom:
          GuardedStep(*target_, ctx);
          break;
        case NodeSemantic::kFault:
          // Baselines model stock AFLNet/desock setups, which have no fault
          // injection; their mutators never emit fault ops, and any riding
          // along in a shared corpus are inert here.
          break;
      }
    }
    // Tear down this test case's connections so a persistent server does not
    // leak sockets across executions.
    for (int conn : exec_conns_) {
      if (net_.ValidConn(conn)) {
        net_.PeerClose(conn);
      }
    }
    GuardedStep(*target_, ctx);
  }

  result.crash = ctx.crash();
  result.ijon_max = ctx.IjonValue(0);
  result.vtime_ns = clock_.now_ns() - t0;
  return result;
}

CampaignResult BaselineFuzzer::Run(const CampaignLimits& limits) {
  CampaignResult result;
  if (!supported_) {
    return result;
  }
  // Per-thread delta so concurrent campaigns report only their own misses.
  const uint64_t soft_at_start = GetThreadContractCounters().soft_failures;
  // Boot once to capture the pristine post-startup state used as the
  // "freshly restarted process" image.
  {
    CoverageMap boot_cov;
    GuestContext ctx(*vm_, net_, boot_cov, clock_, engine_config_.cost);
    ctx.set_asan(engine_config_.asan);
    ctx.ReseedRng(engine_config_.seed);
    target_->Init(ctx);
    GuardedStep(*target_, ctx);
    boot_net_state_ = net_.Serialize();
    vm_->TakeRootSnapshot();
  }

  const uint64_t vtime_start = clock_.now_ns();
  const auto wall_start = std::chrono::steady_clock::now();
  auto vnow = [&] { return static_cast<double>(clock_.now_ns() - vtime_start) * 1e-9; };
  auto out_of_budget = [&] {
    if (vnow() >= limits.vtime_seconds || result.execs >= limits.max_execs) {
      return true;
    }
    if (limits.stop_on_crash && !result.crashes.empty() &&
        (limits.stop_on_crash_id == 0 || result.FoundCrash(limits.stop_on_crash_id))) {
      return true;
    }
    if (limits.ijon_goal != 0 && result.ijon_best >= limits.ijon_goal) {
      return true;
    }
    const auto wall = std::chrono::steady_clock::now() - wall_start;
    return std::chrono::duration<double>(wall).count() >= limits.wall_seconds;
  };

  auto run_one = [&](const Program& input) {
    trace_.Reset();
    const ExecResult exec = RunOneExec(input, trace_);
    result.execs++;
    last_exec_vtime_ = exec.vtime_ns;
    const bool ijon_new =
        config_.kind == BaselineKind::kIjon && exec.ijon_max > result.ijon_best;
    if (exec.ijon_max > result.ijon_best) {
      result.ijon_best = exec.ijon_max;
      if (limits.ijon_goal != 0 && result.ijon_best >= limits.ijon_goal &&
          result.ijon_goal_vsec < 0) {
        result.ijon_goal_vsec = vnow();
      }
    }
    if (exec.crash.crashed) {
      CrashRecord& rec = result.crashes[exec.crash.crash_id];
      rec.count++;
      if (rec.count == 1) {
        rec.kind = exec.crash.kind;
        rec.first_seen_vsec = vnow();
        rec.reproducer = input;
        if (result.first_crash_vsec < 0) {
          result.first_crash_vsec = vnow();
        }
      }
    }
    bool interesting = global_cov_.MergeAndCheckNew(trace_) || ijon_new;
    if ((config_.kind == BaselineKind::kAflnet) && AflnetStateFeedback()) {
      interesting = true;  // new state sequence joins the queue
    }
    return interesting && !exec.crash.crashed;
  };
  auto record_coverage = [&] {
    result.coverage_over_time.Record(vnow(), static_cast<double>(global_cov_.SiteCount()));
  };

  for (size_t i = 0; i < corpus_.size() && !out_of_budget(); i++) {
    run_one(corpus_.entry(i).program);
    corpus_.SetVtime(i, last_exec_vtime_);
  }
  record_coverage();

  while (!out_of_budget() && !corpus_.empty()) {
    CorpusEntry& entry = corpus_.Pick(rng_);
    const Program base = entry.program;
    const std::vector<const Program*> donors = corpus_.Donors();
    for (uint64_t iter = 0; iter < 32 && !out_of_budget(); iter++) {
      Program mutated = base;
      mutator_.Mutate(mutated, donors, 0);
      if (run_one(mutated)) {
        const size_t packets = mutated.PacketOpIndices(spec_).size();
        corpus_.Add(std::move(mutated), last_exec_vtime_, packets, vnow());
        record_coverage();
      }
    }
  }

  record_coverage();
  result.vtime_seconds = vnow();
  result.execs_per_vsecond =
      result.vtime_seconds > 0 ? static_cast<double>(result.execs) / result.vtime_seconds : 0;
  result.branch_coverage = global_cov_.SiteCount();
  result.edge_coverage = global_cov_.EdgeCount();
  result.corpus_size = corpus_.size();
  result.contract_soft_failures = GetThreadContractCounters().soft_failures - soft_at_start;
  return result;
}

}  // namespace nyx
