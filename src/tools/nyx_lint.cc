// Repo-specific lint checks that clang-tidy cannot express. Run as a ctest
// (`nyx_lint <repo root>`); exits nonzero and prints file:line for every
// violation.
//
// Rules:
//   raw-rand        libc rand()/srand() outside src/common/rng.h. All
//                   randomness must flow through the seeded xoshiro Rng so
//                   campaigns replay deterministically.
//   raw-sync        std::mutex / std::condition_variable / std::lock_guard /
//                   std::unique_lock / std::scoped_lock / std::shared_mutex
//                   outside src/common/sync.{h,cc}. All locking goes through
//                   the capability-annotated layer so -Wthread-safety and
//                   the lock-hierarchy analyzer see every acquisition.
//   include-path    quoted project includes must use the full path from the
//                   repository root ("src/...").
//   local-warnings  -Wall/-Wextra/-Wno-* belong in the top-level
//                   CMakeLists.txt only; per-target re-additions drift.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Violation {
  std::string file;
  size_t line;
  std::string rule;
  std::string message;
};

std::vector<Violation> g_violations;

void Report(const fs::path& file, size_t line, const char* rule, std::string message) {
  g_violations.push_back({file.string(), line, rule, std::move(message)});
}

bool IsIdentChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '_';
}

// True if `token` occurs in `line` as a standalone identifier (not a suffix
// of a longer name like my_rand( or a member like rng.rand().
bool HasBareCall(const std::string& line, const std::string& token) {
  size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string::npos) {
    const bool start_ok = pos == 0 || (!IsIdentChar(line[pos - 1]) && line[pos - 1] != '.' &&
                                       line[pos - 1] != ':' && line[pos - 1] != '>' &&
                                       line[pos - 1] != '"');  // string literal, not a call
    if (start_ok) {
      return true;
    }
    pos += token.size();
  }
  return false;
}

// Strips a trailing // comment (good enough for this codebase; string
// literals containing "//" would be false negatives, not false positives).
std::string StripLineComment(const std::string& line) {
  const size_t pos = line.find("//");
  return pos == std::string::npos ? line : line.substr(0, pos);
}

void LintSourceFile(const fs::path& root, const fs::path& file) {
  const fs::path rel = fs::relative(file, root);
  const bool rng_impl = rel == fs::path("src/common/rng.h");
  // The linter itself must spell the banned tokens to ban them.
  const bool sync_impl = rel == fs::path("src/common/sync.h") ||
                         rel == fs::path("src/common/sync.cc") ||
                         rel == fs::path("src/tools/nyx_lint.cc");

  std::ifstream in(file);
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    lineno++;
    const std::string code = StripLineComment(line);

    if (!rng_impl &&
        (HasBareCall(code, "rand(") || HasBareCall(code, "srand(") ||
         HasBareCall(code, "random(") || HasBareCall(code, "rand_r("))) {
      Report(rel, lineno, "raw-rand",
             "use nyx::Rng (src/common/rng.h); libc rand breaks replay determinism");
    }

    if (!sync_impl) {
      // std::condition_variable also catches std::condition_variable_any;
      // std::shared_mutex / std::recursive_mutex have no annotated wrapper
      // on purpose (the lock hierarchy bans reader/writer and re-entrant
      // locking until a use case earns them).
      for (const char* primitive :
           {"std::mutex", "std::condition_variable", "std::lock_guard",
            "std::unique_lock", "std::scoped_lock", "std::shared_mutex",
            "std::shared_lock", "std::recursive_mutex"}) {
        if (code.find(primitive) != std::string::npos) {
          Report(rel, lineno, "raw-sync",
                 std::string(primitive) +
                     " is banned outside src/common/sync.h; use the annotated "
                     "nyx::Mutex/MutexLock/CondVar layer");
          break;
        }
      }
    }

    const size_t inc = code.find("#include \"");
    if (inc != std::string::npos) {
      const size_t start = inc + 10;
      const size_t end = code.find('"', start);
      if (end != std::string::npos) {
        const std::string path = code.substr(start, end - start);
        if (path.rfind("src/", 0) != 0) {
          Report(rel, lineno, "include-path",
                 "project includes use the full path from the repo root, got \"" + path + "\"");
        }
      }
    }
  }
}

void LintCMakeFile(const fs::path& root, const fs::path& file) {
  const fs::path rel = fs::relative(file, root);
  std::ifstream in(file);
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    lineno++;
    const size_t hash = line.find('#');
    const std::string code = hash == std::string::npos ? line : line.substr(0, hash);
    for (const char* flag : {"-Wall", "-Wextra", "-Wno-"}) {
      if (code.find(flag) != std::string::npos) {
        Report(rel, lineno, "local-warnings",
               std::string(flag) + " is configured centrally in the top-level CMakeLists.txt");
        break;
      }
    }
  }
}

void LintTree(const fs::path& root, const char* subdir) {
  const fs::path dir = root / subdir;
  if (!fs::is_directory(dir)) {
    return;
  }
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    const fs::path& p = entry.path();
    const std::string ext = p.extension().string();
    if (ext == ".cc" || ext == ".h" || ext == ".cpp") {
      LintSourceFile(root, p);
    } else if (p.filename() == "CMakeLists.txt") {
      LintCMakeFile(root, p);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const fs::path root = argc > 1 ? fs::path(argv[1]) : fs::current_path();
  if (!fs::is_directory(root / "src")) {
    fprintf(stderr, "nyx_lint: %s does not look like the repo root (no src/)\n",
            root.string().c_str());
    return 2;
  }

  for (const char* subdir : {"src", "tests", "bench", "examples"}) {
    LintTree(root, subdir);
  }

  for (const Violation& v : g_violations) {
    fprintf(stderr, "%s:%zu: [%s] %s\n", v.file.c_str(), v.line, v.rule.c_str(),
            v.message.c_str());
  }
  if (!g_violations.empty()) {
    fprintf(stderr, "nyx_lint: %zu violation(s)\n", g_violations.size());
    return 1;
  }
  return 0;
}
