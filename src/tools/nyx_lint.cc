// Repo-specific lint checks that clang-tidy cannot express. Run as a ctest
// (`nyx_lint <repo root>`); exits nonzero and prints file:line for every
// violation. `nyx_lint --self-test` runs the rules over embedded fixtures
// (the negative tests: each rule must fire on its bad example and stay
// silent on the annotated/allowlisted one).
//
// Rules:
//   raw-rand        libc rand()/srand() outside src/common/rng.h. All
//                   randomness must flow through the seeded xoshiro Rng so
//                   campaigns replay deterministically.
//   raw-sync        std::mutex / std::condition_variable / std::lock_guard /
//                   std::unique_lock / std::scoped_lock / std::shared_mutex
//                   outside src/common/sync.{h,cc}. All locking goes through
//                   the capability-annotated layer so -Wthread-safety and
//                   the lock-hierarchy analyzer see every acquisition.
//   raw-time        std::chrono / time() / clock_gettime / gettimeofday in
//                   src/ outside the harness and the two wall-clock budget
//                   sites. Fuzzing logic runs on the virtual clock
//                   (src/common/vclock.h); wall-clock reads anywhere else
//                   make executions unreproducible.
//   raw-env         getenv outside src/common/env.cc. Configuration comes
//                   in through the typed accessors in src/common/env.h so
//                   every knob is documented and greppable in one place.
//   raw-errno       bare negative errno literals (-11, -104, ...) in src/
//                   outside src/netemu/. The emulator's errno surface is
//                   centralized in src/netemu/errno_table.h; callers compare
//                   against kErrAgain/kErrConnReset/... and log through
//                   ErrName() so a renumbering can never silently skew a
//                   target's error handling.
//   raw-metrics     static-duration std::atomic<integer> declarations
//                   outside the telemetry layer itself. Loose atomic
//                   counters never reach stats.txt / metrics.json; register
//                   a Counter in the MetricRegistry (src/common/telemetry.h)
//                   instead, or annotate NYX_RAW_METRIC_OK with a reason
//                   (bootstrap ordering, config flags).
//   snapshot-state  mutable file-scope / function-local statics,
//                   thread_locals and g_ globals in the snapshot-relevant
//                   directories (src/vm, src/netemu, src/targets, src/mario,
//                   src/fuzz) must carry NYX_SNAPSHOT_STATE (registered in
//                   the SnapshotStateRegistry with capture/restore hooks) or
//                   NYX_EXEC_EPHEMERAL (re-initialized every exec). State
//                   with neither annotation survives a snapshot restore
//                   unrestored — the classic irreproducible-execution bug.
//   raw-mprotect    mprotect / uffd write-protect ioctls outside the
//                   dirty-backend layer (src/vm/dirty_backend.{h,cc}). All
//                   page-protection changes flow through the DirtyBackend
//                   interface so every backend sees a consistent view of
//                   which pages are armed; one-off protection changes that
//                   are not dirty tracking use nyx::RawProtect.
//   include-path    quoted project includes must use the full path from the
//                   repository root ("src/...").
//   local-warnings  -Wall/-Wextra/-Wno-* belong in the top-level
//                   CMakeLists.txt only; per-target re-additions drift.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Violation {
  std::string file;
  size_t line;
  std::string rule;
  std::string message;
};

std::vector<Violation> g_violations;

void Report(const std::string& file, size_t line, const char* rule, std::string message) {
  g_violations.push_back({file, line, rule, std::move(message)});
}

bool IsIdentChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '_';
}

// True if `token` occurs in `line` as a standalone identifier (not a suffix
// of a longer name like my_rand( or a member like rng.rand().
bool HasBareCall(const std::string& line, const std::string& token) {
  size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string::npos) {
    const bool start_ok = pos == 0 || (!IsIdentChar(line[pos - 1]) && line[pos - 1] != '.' &&
                                       line[pos - 1] != ':' && line[pos - 1] != '>' &&
                                       line[pos - 1] != '"');  // string literal, not a call
    if (start_ok) {
      return true;
    }
    pos += token.size();
  }
  return false;
}

// Strips a trailing // comment (good enough for this codebase; string
// literals containing "//" would be false negatives, not false positives).
std::string StripLineComment(const std::string& line) {
  const size_t pos = line.find("//");
  return pos == std::string::npos ? line : line.substr(0, pos);
}

bool StartsWith(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

std::string TrimLeft(const std::string& s) {
  size_t i = 0;
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) {
    i++;
  }
  return s.substr(i);
}

// ---- snapshot-state rule -------------------------------------------------

// Directories whose mutable statics must be snapshot-annotated: everything a
// snapshot restore is supposed to cover. src/fuzz is included (stricter than
// the bare minimum) because the engine and guest runtime hold the
// interpreter state the aux blob must capture.
bool InSnapshotDirs(const std::string& rel) {
  return StartsWith(rel, "src/vm/") || StartsWith(rel, "src/netemu/") ||
         StartsWith(rel, "src/targets/") || StartsWith(rel, "src/mario/") ||
         StartsWith(rel, "src/fuzz/");
}

// Heuristic for "this line declares mutable static-duration state":
// `static`/`thread_local` declarations and namespace-scope `g_` globals,
// minus const/constexpr data, static_assert/static_cast and function
// declarations (a '(' with no preceding '=' is a parameter list, not an
// initializer).
bool DeclaresMutableStatic(const std::string& code) {
  const std::string t = TrimLeft(code);
  const bool static_decl = StartsWith(t, "static ") || StartsWith(t, "thread_local ") ||
                           t.find(" thread_local ") != std::string::npos;
  if (static_decl) {
    if (t.find("constexpr") != std::string::npos || t.find("static const ") != std::string::npos ||
        StartsWith(t, "static_assert") || t.find("static_cast") != std::string::npos) {
      return false;
    }
    const size_t paren = t.find('(');
    const size_t eq = t.find('=');
    if (paren != std::string::npos && (eq == std::string::npos || paren < eq)) {
      return false;  // function declaration/definition
    }
    return true;
  }
  // Namespace-scope globals by naming convention: a `g_foo` token preceded
  // by a type (not at line start — that would be an assignment, not a
  // declaration) and followed by an initializer or array/semicolon.
  size_t pos = 0;
  while ((pos = t.find("g_", pos)) != std::string::npos) {
    const bool start_ok = pos > 0 && !IsIdentChar(t[pos - 1]) && t[pos - 1] != '.' &&
                          t[pos - 1] != ':' && t[pos - 1] != '>';
    if (!start_ok || t.find('=') < pos) {
      pos += 2;
      continue;
    }
    size_t end = pos;
    while (end < t.size() && IsIdentChar(t[end])) {
      end++;
    }
    while (end < t.size() && (t[end] == ' ' || t[end] == '\t')) {
      end++;
    }
    if (end < t.size() && (t[end] == '=' || t[end] == '{' || t[end] == '[' || t[end] == ';')) {
      return true;
    }
    pos += 2;
  }
  return false;
}

// ---- raw-errno rule ------------------------------------------------------

// Every errno value the emulator can return (src/netemu/errno_table.h),
// longest literal first so "-11" never fires inside "-110".
constexpr const char* kErrnoLiterals[] = {"-110", "-107", "-104", "-32", "-24",
                                          "-22",  "-11",  "-9",   "-4"};

// True when `code` uses one of the errno values as a bare literal: the minus
// sign in unary position (after =, (, comma, comparison, return/case, ...)
// directly followed by the digits. Binary arithmetic like `len - 4` and
// longer numbers like -115 stay out of scope.
bool HasBareErrnoLiteral(const std::string& code) {
  for (const char* lit : kErrnoLiterals) {
    const size_t n = std::string(lit).size();
    size_t pos = 0;
    while ((pos = code.find(lit, pos)) != std::string::npos) {
      const size_t after = pos + n;
      if (after < code.size() && (IsIdentChar(code[after]) || code[after] == '.')) {
        pos = after;  // part of a longer number or a float
        continue;
      }
      size_t i = pos;
      while (i > 0 && (code[i - 1] == ' ' || code[i - 1] == '\t')) {
        i--;
      }
      if (i == 0) {
        return true;  // the literal opens the line
      }
      const char prev = code[i - 1];
      if (prev == '=' || prev == '(' || prev == ',' || prev == '<' || prev == '>' ||
          prev == '!' || prev == '{' || prev == ';' || prev == '?' || prev == ':' ||
          prev == '&' || prev == '|') {
        return true;
      }
      if (IsIdentChar(prev)) {
        size_t start = i;
        while (start > 0 && IsIdentChar(code[start - 1])) {
          start--;
        }
        const std::string token = code.substr(start, i - start);
        if (token == "return" || token == "case") {
          return true;
        }
      }
      pos = after;
    }
  }
  return false;
}

// ---- raw-metrics rule ----------------------------------------------------

// True if the line declares a std::atomic over an integer type — the shape
// of an ad-hoc counter. Pointer/enum/struct atomics (hooks, cached levels)
// are not counters and stay out of scope.
bool DeclaresAtomicInteger(const std::string& code) {
  const size_t pos = code.find("std::atomic<");
  if (pos == std::string::npos) {
    return false;
  }
  const std::string inner = code.substr(pos + 12);
  for (const char* ty : {"int", "unsigned", "long", "short", "size_t", "uint8_t", "uint16_t",
                         "uint32_t", "uint64_t", "int8_t", "int16_t", "int32_t", "int64_t",
                         "std::size_t", "std::uint32_t", "std::uint64_t"}) {
    if (StartsWith(inner, ty)) {
      return true;
    }
  }
  return false;
}

// ---- per-file driver -----------------------------------------------------

void LintSourceLines(const std::string& rel, const std::vector<std::string>& lines) {
  const bool rng_impl = rel == "src/common/rng.h";
  // The linter itself must spell the banned tokens to ban them; env.cc is
  // the one sanctioned getenv call site.
  const bool self = rel == "src/tools/nyx_lint.cc";
  const bool sync_impl = rel == "src/common/sync.h" || rel == "src/common/sync.cc" || self;
  const bool env_impl = rel == "src/common/env.cc" || self;
  // raw-time applies to fuzzing logic only: src/ minus the harness (which
  // owns wall-clock budgets and progress reporting) and the two documented
  // wall-clock stop conditions. Benches and tests measure real time by
  // design.
  // telemetry.cc owns the one sanctioned clock_gettime site (phase timers
  // measure host cost, which is what a profiler is for; the results never
  // feed back into fuzzing decisions).
  const bool time_exempt = !StartsWith(rel, "src/") || StartsWith(rel, "src/harness/") ||
                           rel == "src/fuzz/fuzzer.cc" || rel == "src/baselines/baseline.cc" ||
                           rel == "src/common/telemetry.cc" || self;
  // The metric/trace layer is built out of the raw atomics it exists to
  // replace everywhere else.
  const bool metrics_impl = StartsWith(rel, "src/common/telemetry.") ||
                            StartsWith(rel, "src/common/trace.") || self;
  const bool snapshot_dirs = InSnapshotDirs(rel);
  // The backend layer is built out of the raw protection syscalls it wraps.
  const bool backend_impl = StartsWith(rel, "src/vm/dirty_backend") || self;
  // The errno table itself (and the rest of src/netemu/, which implements
  // the libc surface) defines the literals; everything else in src/ names
  // them. Tests and benches compare via the constants too, but are not
  // linted for it — assertions on raw values there are deliberate.
  const bool errno_impl = StartsWith(rel, "src/netemu/") || !StartsWith(rel, "src/") || self;

  // Countdown of lines during which a NYX_SNAPSHOT_STATE/NYX_EXEC_EPHEMERAL
  // annotation still covers a following declaration (annotation line itself
  // plus the next three lines, enough for a multi-line declaration).
  int annotated = 0;
  // Same countdown scheme for NYX_RAW_METRIC_OK (raw-metrics rule).
  int metric_ok = 0;

  for (size_t i = 0; i < lines.size(); i++) {
    const size_t lineno = i + 1;
    const std::string code = StripLineComment(lines[i]);

    if (!rng_impl && !self &&
        (HasBareCall(code, "rand(") || HasBareCall(code, "srand(") ||
         HasBareCall(code, "random(") || HasBareCall(code, "rand_r("))) {
      Report(rel, lineno, "raw-rand",
             "use nyx::Rng (src/common/rng.h); libc rand breaks replay determinism");
    }

    if (!sync_impl) {
      // std::condition_variable also catches std::condition_variable_any;
      // std::shared_mutex / std::recursive_mutex have no annotated wrapper
      // on purpose (the lock hierarchy bans reader/writer and re-entrant
      // locking until a use case earns them).
      for (const char* primitive :
           {"std::mutex", "std::condition_variable", "std::lock_guard",
            "std::unique_lock", "std::scoped_lock", "std::shared_mutex",
            "std::shared_lock", "std::recursive_mutex"}) {
        if (code.find(primitive) != std::string::npos) {
          Report(rel, lineno, "raw-sync",
                 std::string(primitive) +
                     " is banned outside src/common/sync.h; use the annotated "
                     "nyx::Mutex/MutexLock/CondVar layer");
          break;
        }
      }
    }

    if (!time_exempt &&
        (code.find("std::chrono") != std::string::npos || HasBareCall(code, "time(") ||
         HasBareCall(code, "clock_gettime(") || HasBareCall(code, "gettimeofday("))) {
      Report(rel, lineno, "raw-time",
             "wall-clock reads are banned in fuzzing logic; use the virtual clock "
             "(src/common/vclock.h) so executions replay deterministically");
    }

    if (!backend_impl &&
        (HasBareCall(code, "mprotect(") || code.find("userfaultfd") != std::string::npos ||
         code.find("UFFDIO_") != std::string::npos)) {
      Report(rel, lineno, "raw-mprotect",
             "page-protection changes are banned outside src/vm/dirty_backend.*; "
             "go through the DirtyBackend interface (or nyx::RawProtect for "
             "one-off non-tracking protection changes)");
    }

    if (!env_impl && code.find("getenv") != std::string::npos) {
      Report(rel, lineno, "raw-env",
             "getenv is banned outside src/common/env.cc; add a typed accessor "
             "to src/common/env.h");
    }

    if (!errno_impl && HasBareErrnoLiteral(code)) {
      Report(rel, lineno, "raw-errno",
             "bare negative errno literals are banned outside src/netemu/; "
             "compare against the named constants in src/netemu/errno_table.h "
             "(kErrAgain, kErrConnReset, ...) and log through ErrName()");
    }

    if (!metrics_impl) {
      if (code.find("NYX_RAW_METRIC_OK") != std::string::npos) {
        metric_ok = 4;
      }
      if (metric_ok == 0 && DeclaresMutableStatic(code) && DeclaresAtomicInteger(code)) {
        Report(rel, lineno, "raw-metrics",
               "loose static atomic counters never reach stats.txt/metrics.json; "
               "register a Counter in the MetricRegistry (src/common/telemetry.h) "
               "or annotate NYX_RAW_METRIC_OK with a reason");
      }
      if (metric_ok > 0) {
        metric_ok--;
      }
    }

    if (snapshot_dirs) {
      if (code.find("NYX_SNAPSHOT_STATE") != std::string::npos ||
          code.find("NYX_EXEC_EPHEMERAL") != std::string::npos) {
        annotated = 4;
      }
      if (annotated == 0 && DeclaresMutableStatic(code)) {
        Report(rel, lineno, "snapshot-state",
               "mutable static-duration state in a snapshot-covered directory "
               "must be annotated NYX_SNAPSHOT_STATE (registered with "
               "capture/restore hooks) or NYX_EXEC_EPHEMERAL (re-initialized "
               "every exec); see src/vm/state_registry.h");
      }
      if (annotated > 0) {
        annotated--;
      }
    }

    const size_t inc = code.find("#include \"");
    if (inc != std::string::npos) {
      const size_t start = inc + 10;
      const size_t end = code.find('"', start);
      if (end != std::string::npos) {
        const std::string path = code.substr(start, end - start);
        if (path.rfind("src/", 0) != 0) {
          Report(rel, lineno, "include-path",
                 "project includes use the full path from the repo root, got \"" + path + "\"");
        }
      }
    }
  }
}

void LintSourceFile(const fs::path& root, const fs::path& file) {
  std::ifstream in(file);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) {
    lines.push_back(line);
  }
  LintSourceLines(fs::relative(file, root).string(), lines);
}

void LintCMakeFile(const fs::path& root, const fs::path& file) {
  const fs::path rel = fs::relative(file, root);
  std::ifstream in(file);
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    lineno++;
    const size_t hash = line.find('#');
    const std::string code = hash == std::string::npos ? line : line.substr(0, hash);
    for (const char* flag : {"-Wall", "-Wextra", "-Wno-"}) {
      if (code.find(flag) != std::string::npos) {
        Report(rel.string(), lineno, "local-warnings",
               std::string(flag) + " is configured centrally in the top-level CMakeLists.txt");
        break;
      }
    }
  }
}

void LintTree(const fs::path& root, const char* subdir) {
  const fs::path dir = root / subdir;
  if (!fs::is_directory(dir)) {
    return;
  }
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    const fs::path& p = entry.path();
    const std::string ext = p.extension().string();
    if (ext == ".cc" || ext == ".h" || ext == ".cpp") {
      LintSourceFile(root, p);
    } else if (p.filename() == "CMakeLists.txt") {
      LintCMakeFile(root, p);
    }
  }
}

// ---- self-test -----------------------------------------------------------

// Each fixture is linted as if it were the named file; `want` is the rule
// expected to fire exactly `count` times (0 = rule must stay silent).
struct Fixture {
  const char* name;
  const char* path;
  std::vector<const char*> lines;
  const char* want;
  size_t count;
};

int SelfTest() {
  const std::vector<Fixture> fixtures = {
      {"unannotated file-scope static", "src/netemu/fixture.cc",
       {"static int g_counter = 0;"}, "snapshot-state", 1},
      {"unannotated function-local static", "src/targets/fixture.cc",
       {"void F() {", "  static uint64_t calls = 0;", "}"}, "snapshot-state", 1},
      {"unannotated thread_local", "src/fuzz/fixture.cc",
       {"thread_local int t_depth = 0;"}, "snapshot-state", 1},
      {"unannotated g_ global", "src/vm/fixture.cc",
       {"std::atomic<int> g_hook{nullptr};"}, "snapshot-state", 1},
      {"annotated static", "src/netemu/fixture.cc",
       {"NYX_SNAPSHOT_STATE(\"netemu.fixture\");", "static int g_counter = 0;"},
       "snapshot-state", 0},
      {"annotated thread_local", "src/fuzz/fixture.cc",
       {"NYX_EXEC_EPHEMERAL(\"fuzz.fixture\");", "thread_local int t_depth = 0;"},
       "snapshot-state", 0},
      {"const static is immutable", "src/vm/fixture.cc",
       {"static const std::string kName = \"x\";", "static constexpr int kN = 3;"},
       "snapshot-state", 0},
      {"static member function", "src/vm/fixture.h",
       {"  static uint8_t Classify(uint8_t hits);"}, "snapshot-state", 0},
      {"static outside snapshot dirs", "src/harness/fixture.cc",
       {"static int g_counter = 0;"}, "snapshot-state", 0},
      {"raw time call", "src/fuzz/fixture.cc",
       {"uint64_t now = time(nullptr);"}, "raw-time", 1},
      {"raw chrono", "src/vm/fixture.cc",
       {"auto t = std::chrono::steady_clock::now();"}, "raw-time", 1},
      {"chrono in harness is allowed", "src/harness/fixture.cc",
       {"auto t = std::chrono::steady_clock::now();"}, "raw-time", 0},
      {"chrono in bench is allowed", "bench/fixture.cc",
       {"auto t = std::chrono::steady_clock::now();"}, "raw-time", 0},
      {"mytime() is not time()", "src/fuzz/fixture.cc",
       {"uint64_t now = mytime();"}, "raw-time", 0},
      {"raw getenv", "src/harness/fixture.cc",
       {"const char* v = std::getenv(\"NYX_X\");"}, "raw-env", 1},
      {"getenv in bench", "bench/fixture.cc",
       {"const char* v = getenv(\"NYX_X\");"}, "raw-env", 1},
      {"raw rand", "src/fuzz/fixture.cc", {"int r = rand();"}, "raw-rand", 1},
      {"loose atomic counter", "src/fuzz/fixture.cc",
       {"std::atomic<uint64_t> g_execs{0};"}, "raw-metrics", 1},
      {"loose static atomic counter", "src/harness/fixture.cc",
       {"static std::atomic<int> hits = 0;"}, "raw-metrics", 1},
      {"annotated raw metric", "src/fuzz/fixture.cc",
       {"NYX_RAW_METRIC_OK(\"bootstrap ordering\");", "std::atomic<uint64_t> g_execs{0};"},
       "raw-metrics", 0},
      {"atomic hook is not a counter", "src/vm/fixture.cc",
       {"std::atomic<FaultHook> g_hook{nullptr};"}, "raw-metrics", 0},
      {"atomic member is not static", "src/common/fixture.h",
       {"  std::atomic<uint64_t> value_{0};"}, "raw-metrics", 0},
      {"telemetry impl may use raw atomics", "src/common/telemetry.cc",
       {"std::atomic<int> g_enabled{-1};"}, "raw-metrics", 0},
      {"clock_gettime in telemetry impl", "src/common/telemetry.cc",
       {"clock_gettime(CLOCK_MONOTONIC, &ts);"}, "raw-time", 0},
      {"raw mprotect in vm code", "src/vm/fixture.cc",
       {"mprotect(base, kPageSize, PROT_READ);"}, "raw-mprotect", 1},
      {"uffd ioctl outside backend", "src/fuzz/fixture.cc",
       {"ioctl(fd, UFFDIO_WRITEPROTECT, &wp);"}, "raw-mprotect", 1},
      {"mprotect in backend impl", "src/vm/dirty_backend.cc",
       {"mprotect(base, kPageSize, PROT_READ);"}, "raw-mprotect", 0},
      {"RawProtect is not mprotect", "src/vm/fixture.cc",
       {"RawProtect(base, kPageSize, PROT_READ);"}, "raw-mprotect", 0},
      {"bare errno comparison", "src/targets/fixture.cc",
       {"if (n == -104) {"}, "raw-errno", 1},
      {"bare errno return", "src/fuzz/fixture.cc",
       {"return -110;"}, "raw-errno", 1},
      {"errno literal in netemu is the table", "src/netemu/fixture.h",
       {"inline constexpr int kErrConnReset = -104;"}, "raw-errno", 0},
      {"binary minus is not errno", "src/fuzz/fixture.cc",
       {"const size_t rest = len - 4;"}, "raw-errno", 0},
      {"longer negative number is not errno", "src/fuzz/fixture.cc",
       {"int x = -115;"}, "raw-errno", 0},
      {"named errno constant is fine", "src/targets/fixture.cc",
       {"if (n == kErrConnReset) {"}, "raw-errno", 0},
      {"errno literal in tests is deliberate", "tests/fixture.cc",
       {"EXPECT_EQ(n, -104);"}, "raw-errno", 0},
  };

  int failures = 0;
  for (const Fixture& f : fixtures) {
    g_violations.clear();
    std::vector<std::string> lines;
    for (const char* l : f.lines) {
      lines.push_back(l);
    }
    LintSourceLines(f.path, lines);
    size_t hits = 0;
    for (const Violation& v : g_violations) {
      if (v.rule == f.want) {
        hits++;
      }
    }
    if (hits != f.count) {
      fprintf(stderr, "self-test FAIL: %s: expected %zu x %s, got %zu\n", f.name, f.count,
              f.want, hits);
      failures++;
    }
  }
  g_violations.clear();
  if (failures == 0) {
    fprintf(stderr, "nyx_lint self-test: all fixtures passed\n");
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--self-test") {
    return SelfTest();
  }

  const fs::path root = argc > 1 ? fs::path(argv[1]) : fs::current_path();
  if (!fs::is_directory(root / "src")) {
    fprintf(stderr, "nyx_lint: %s does not look like the repo root (no src/)\n",
            root.string().c_str());
    return 2;
  }

  for (const char* subdir : {"src", "tests", "bench", "examples"}) {
    LintTree(root, subdir);
  }

  for (const Violation& v : g_violations) {
    fprintf(stderr, "%s:%zu: [%s] %s\n", v.file.c_str(), v.line, v.rule.c_str(),
            v.message.c_str());
  }
  if (!g_violations.empty()) {
    fprintf(stderr, "nyx_lint: %zu violation(s)\n", g_violations.size());
    return 1;
  }
  return 0;
}
