// nyx-net: command-line front end, mirroring the five-step workflow of
// paper section 5.4 (pick target -> pick spec -> gather seeds -> bundle ->
// run the fuzzer).
//
//   nyx-net targets
//       List the available fuzz targets and their seeded bugs.
//   nyx-net fuzz --target NAME [--policy none|balanced|aggressive|aflnet|
//       aflnet-no-state|aflnwe|desock|ijon] [--vtime SECONDS] [--wall SECONDS]
//       [--seed N] [--asan] [--workdir DIR] [--resume] [--faults]
//       Run a campaign; persists queue/crashes/stats into the workdir.
//       --faults enables deterministic fault injection (Nyx policies only).
//   nyx-net pcap --target NAME --pcap FILE [--port P]
//       [--split crlf|len16|len32|segment] [--workdir DIR]
//       Convert a capture into bytecode seeds (section 4.4).
//   nyx-net repro --target NAME --input FILE [--asan] [--seed N]
//       Replay one input against the target and report the outcome.
//   nyx-net trim --target NAME --input FILE [--out FILE] [--naive] [--seed N]
//       Minimize one input while preserving its coverage fingerprint
//       (analysis-guided by default; --naive for the afl-tmin-style order).
//   nyx-net verify DIR --target NAME
//       Batch-check every .nyx file in DIR: wire verification, analyzer
//       facts, canonicalization idempotence, semantic duplicate groups.
//       Exits nonzero if any file fails verification or idempotence.
//   nyx-net mario --level 1-1 [--policy ...] [--wall SECONDS]
//       Solve a Super Mario level (section 5.3).

#include <dirent.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/fuzz/trim.h"
#include "src/fuzz/workdir.h"
#include "src/harness/campaign.h"
#include "src/harness/table.h"
#include "src/mario/mario_target.h"
#include "src/spec/analyze.h"
#include "src/spec/pcap.h"
#include "src/spec/verify.h"
#include "src/targets/registry.h"

namespace nyx {
namespace {

struct Args {
  std::map<std::string, std::string> values;
  bool Has(const std::string& key) const { return values.count(key) != 0; }
  std::string Get(const std::string& key, const std::string& def = "") const {
    auto it = values.find(key);
    return it == values.end() ? def : it->second;
  }
  double GetDouble(const std::string& key, double def) const {
    return Has(key) ? atof(Get(key).c_str()) : def;
  }
  uint64_t GetU64(const std::string& key, uint64_t def) const {
    return Has(key) ? strtoull(Get(key).c_str(), nullptr, 10) : def;
  }
};

Args ParseArgs(int argc, char** argv, int from) {
  Args args;
  for (int i = from; i < argc; i++) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      continue;
    }
    key = key.substr(2);
    if (i + 1 < argc && strncmp(argv[i + 1], "--", 2) != 0) {
      args.values[key] = argv[++i];
    } else {
      args.values[key] = "1";  // boolean flag
    }
  }
  return args;
}

int Usage() {
  fprintf(stderr,
          "usage: nyx-net <targets|fuzz|pcap|repro|trim|verify|mario> [--help]\n"
          "run with a command and no arguments for that command's options\n");
  return 2;
}

FuzzerKind ParseFuzzer(const std::string& name) {
  if (name == "none") return FuzzerKind::kNyxNone;
  if (name == "balanced") return FuzzerKind::kNyxBalanced;
  if (name == "aggressive") return FuzzerKind::kNyxAggressive;
  if (name == "aflnet") return FuzzerKind::kAflnet;
  if (name == "aflnet-no-state") return FuzzerKind::kAflnetNoState;
  if (name == "aflnwe") return FuzzerKind::kAflnwe;
  if (name == "desock") return FuzzerKind::kAflppDesock;
  if (name == "ijon") return FuzzerKind::kIjon;
  fprintf(stderr, "unknown policy/fuzzer '%s', using balanced\n", name.c_str());
  return FuzzerKind::kNyxBalanced;
}

int CmdTargets() {
  TextTable table({"target", "spec", "seeds", "profuzzbench", "seeded crashes"});
  for (const auto& reg : AllTargets()) {
    const Spec spec = reg.make_spec();
    std::string crashes;
    for (uint32_t id : reg.known_crashes) {
      char buf[16];
      snprintf(buf, sizeof(buf), "%08x ", id);
      crashes += buf;
    }
    table.AddRow({reg.name, spec.FindNodeType("close").has_value() ? "multi-connection" : "generic",
                  std::to_string(reg.make_seeds(spec).size()),
                  reg.in_profuzzbench ? "yes" : "no", crashes.empty() ? "-" : crashes});
  }
  table.Print();
  printf("\nmario levels: 1-1 .. 8-4 (see 'nyx-net mario')\n");
  return 0;
}

int CmdFuzz(const Args& args) {
  const std::string target = args.Get("target");
  if (FindTarget(target) == std::nullopt) {
    fprintf(stderr, "unknown target '%s' (see 'nyx-net targets')\n", target.c_str());
    return 2;
  }
  auto reg = FindTarget(target);
  const Spec spec = reg->make_spec();

  EngineConfig engine_cfg;
  engine_cfg.vm.mem_pages = args.GetU64("vm-pages", 1024);
  engine_cfg.asan = args.Has("asan");
  engine_cfg.seed = args.GetU64("seed", 1);

  CampaignLimits limits;
  limits.vtime_seconds = args.GetDouble("vtime", 120.0);
  limits.wall_seconds = args.GetDouble("wall", 600.0);
  limits.stop_on_crash = args.Has("stop-on-crash");

  const FuzzerKind kind = ParseFuzzer(args.Get("policy", "balanced"));
  std::optional<Workdir> workdir;
  if (args.Has("workdir")) {
    workdir = Workdir::Open(args.Get("workdir"));
    if (!workdir.has_value()) {
      fprintf(stderr, "cannot open workdir %s\n", args.Get("workdir").c_str());
      return 2;
    }
  }

  CampaignResult result;
  if (IsNyxKind(kind)) {
    FuzzerConfig fcfg;
    fcfg.policy = kind == FuzzerKind::kNyxNone        ? PolicyMode::kNone
                  : kind == FuzzerKind::kNyxBalanced ? PolicyMode::kBalanced
                                                     : PolicyMode::kAggressive;
    fcfg.seed = engine_cfg.seed;
    fcfg.fault_injection = args.Has("faults");
    NyxFuzzer fuzzer(engine_cfg, reg->factory, spec, fcfg);
    size_t seeds = 0;
    if (workdir.has_value() && args.Has("resume")) {
      for (Program& p : workdir->LoadQueue(spec)) {
        fuzzer.AddSeed(std::move(p));
        seeds++;
      }
      printf("resumed %zu corpus entries from %s\n", seeds, workdir->path().c_str());
    }
    if (seeds == 0) {
      for (Program& p : reg->make_seeds(spec)) {
        fuzzer.AddSeed(std::move(p));
      }
    }
    printf("fuzzing %s with Nyx-Net (%s policy), %.0f virtual seconds...\n", target.c_str(),
           args.Get("policy", "balanced").c_str(), limits.vtime_seconds);
    result = fuzzer.Run(limits);
    if (workdir.has_value()) {
      workdir->SaveCampaign(result, fuzzer.corpus());
    }
  } else {
    CampaignSpec cs;
    cs.target = target;
    cs.fuzzer = kind;
    cs.limits = limits;
    cs.seed = engine_cfg.seed;
    cs.asan = engine_cfg.asan;
    cs.vm_pages = engine_cfg.vm.mem_pages;
    printf("fuzzing %s with baseline %s, %.0f virtual seconds...\n", target.c_str(),
           FuzzerKindName(kind), limits.vtime_seconds);
    CampaignOutcome out = RunCampaign(cs);
    if (!out.supported) {
      fprintf(stderr, "this baseline cannot run %s (n/a)\n", target.c_str());
      return 1;
    }
    result = std::move(out.result);
  }

  printf("\nexecs:      %llu (%.1f per virtual second)\n",
         static_cast<unsigned long long>(result.execs), result.execs_per_vsecond);
  printf("coverage:   %zu branch sites, %zu edges\n", result.branch_coverage,
         result.edge_coverage);
  printf("corpus:     %zu entries\n", result.corpus_size);
  printf("snapshots:  %llu incremental created, %llu reused\n",
         static_cast<unsigned long long>(result.incremental_creates),
         static_cast<unsigned long long>(result.incremental_restores));
  if (result.contract_soft_failures != 0) {
    printf("contracts:  %llu soft failure(s) — see workdir stats.txt\n",
           static_cast<unsigned long long>(result.contract_soft_failures));
  }
  if (result.faults_injected != 0) {
    printf("faults:     %llu injected, %llu input bytes dropped\n",
           static_cast<unsigned long long>(result.faults_injected),
           static_cast<unsigned long long>(result.faulted_bytes));
  }
  printf("crashes:    %zu\n", result.crashes.size());
  for (const auto& [id, rec] : result.crashes) {
    printf("  %08x %-40s x%llu first at %.1f vsec\n", id, rec.kind.c_str(),
           static_cast<unsigned long long>(rec.count), rec.first_seen_vsec);
  }
  return 0;
}

int CmdPcap(const Args& args) {
  auto reg = FindTarget(args.Get("target"));
  if (!reg.has_value()) {
    fprintf(stderr, "unknown target '%s'\n", args.Get("target").c_str());
    return 2;
  }
  const Spec spec = reg->make_spec();
  FILE* f = fopen(args.Get("pcap").c_str(), "rb");
  if (f == nullptr) {
    fprintf(stderr, "cannot read %s\n", args.Get("pcap").c_str());
    return 2;
  }
  Bytes raw;
  uint8_t buf[4096];
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), f)) > 0) {
    raw.insert(raw.end(), buf, buf + n);
  }
  fclose(f);

  const std::string split = args.Get("split", "crlf");
  SplitStrategy strategy = SplitStrategy::kCrlf;
  if (split == "len16") strategy = SplitStrategy::kLengthPrefixBe16;
  if (split == "len32") strategy = SplitStrategy::kLengthPrefixBe32;
  if (split == "segment") strategy = SplitStrategy::kSegment;

  const uint16_t port =
      static_cast<uint16_t>(args.GetU64("port", reg->factory()->info().port));
  auto program = ProgramFromPcap(spec, raw, port, strategy);
  if (!program.has_value()) {
    fprintf(stderr, "no usable client->server traffic for port %u found\n", port);
    return 1;
  }
  printf("converted: %zu ops, %zu packets, %zu payload bytes\n", program->ops.size(),
         program->PacketOpIndices(spec).size(), program->TotalDataBytes());
  const std::string out = args.Get("workdir", "nyx-out");
  auto workdir = Workdir::Open(out);
  if (!workdir.has_value() || !workdir->SaveQueueEntry(*program, 0)) {
    fprintf(stderr, "cannot write seed into %s/queue\n", out.c_str());
    return 1;
  }
  printf("seed written to %s/queue/id_000000.nyx (fuzz with --workdir %s --resume)\n",
         out.c_str(), out.c_str());
  return 0;
}

int CmdRepro(const Args& args) {
  auto reg = FindTarget(args.Get("target"));
  if (!reg.has_value()) {
    fprintf(stderr, "unknown target '%s'\n", args.Get("target").c_str());
    return 2;
  }
  const Spec spec = reg->make_spec();
  auto program = Workdir::ReadProgram(args.Get("input"), spec);
  if (!program.has_value()) {
    fprintf(stderr, "cannot parse %s as a bytecode program\n", args.Get("input").c_str());
    return 2;
  }
  EngineConfig engine_cfg;
  engine_cfg.vm.mem_pages = 1024;
  engine_cfg.asan = args.Has("asan");
  engine_cfg.seed = args.GetU64("seed", 1);
  NyxEngine engine(engine_cfg, reg->factory, spec);
  engine.Boot();
  CoverageMap cov;
  const ExecResult r = engine.Run(*program, cov);
  printf("packets delivered: %zu\n", r.packets_delivered);
  printf("virtual time:      %.3f ms\n", static_cast<double>(r.vtime_ns) * 1e-6);
  const auto responses = engine.LastResponses();
  printf("responses:         %zu\n", responses.size());
  for (size_t i = 0; i < responses.size() && i < 16; i++) {
    std::string line = ToString(responses[i]).substr(0, 70);
    for (char& c : line) {
      if (c == '\r' || c == '\n') {
        c = ' ';
      }
    }
    printf("  <- %s\n", line.c_str());
  }
  if (r.crash.crashed) {
    printf("CRASH: id=%08x kind=%s\n", r.crash.crash_id, r.crash.kind.c_str());
    return 1;
  }
  printf("no crash\n");
  return 0;
}

int CmdTrim(const Args& args) {
  auto reg = FindTarget(args.Get("target"));
  if (!reg.has_value()) {
    fprintf(stderr, "unknown target '%s' (see 'nyx-net targets')\n", args.Get("target").c_str());
    return 2;
  }
  const Spec spec = reg->make_spec();
  auto program = Workdir::ReadProgram(args.Get("input"), spec);
  if (!program.has_value()) {
    fprintf(stderr, "cannot parse %s as a bytecode program\n", args.Get("input").c_str());
    return 2;
  }
  EngineConfig engine_cfg;
  engine_cfg.vm.mem_pages = 1024;
  engine_cfg.seed = args.GetU64("seed", 1);
  NyxEngine engine(engine_cfg, reg->factory, spec);
  engine.Boot();

  TrimOptions opts;
  opts.analysis_order = !args.Has("naive");
  TrimStats stats;
  const Program trimmed = TrimProgram(engine, spec, *program, opts, &stats);

  printf("trim (%s order):\n", opts.analysis_order ? "analysis" : "naive");
  printf("  ops:         %zu -> %zu\n", stats.ops_before, stats.ops_after);
  printf("  bytes:       %zu -> %zu\n", stats.bytes_before, stats.bytes_after);
  printf("  probe execs: %zu\n", stats.probe_execs);
  if (stats.audit_divergences != 0) {
    printf("  AUDIT: %llu divergence(s) during probing\n",
           static_cast<unsigned long long>(stats.audit_divergences));
  }
  const std::string out = args.Get("out");
  if (!out.empty()) {
    if (!Workdir::WriteProgram(out, trimmed)) {
      fprintf(stderr, "cannot write %s\n", out.c_str());
      return 1;
    }
    printf("  written to   %s\n", out.c_str());
  }
  return stats.audit_divergences == 0 ? 0 : 1;
}

// Batch static verification + analyzer report over a corpus directory.
// Unlike ReadProgram (which verifies and logs) this surfaces the full
// per-file verdict, the analyzer's dead-op facts, and semantic duplicate
// groups across the whole directory, so it doubles as a corpus linter.
int CmdVerify(const std::string& dir, const Args& args) {
  auto reg = FindTarget(args.Get("target"));
  if (!reg.has_value()) {
    fprintf(stderr, "unknown target '%s' (see 'nyx-net targets')\n", args.Get("target").c_str());
    return 2;
  }
  const Spec spec = reg->make_spec();

  std::vector<std::string> files;
  if (DIR* d = opendir(dir.c_str())) {
    while (struct dirent* e = readdir(d)) {
      const std::string name = e->d_name;
      if (name.size() > 4 && name.compare(name.size() - 4, 4, ".nyx") == 0) {
        files.push_back(dir + "/" + name);
      }
    }
    closedir(d);
  } else {
    fprintf(stderr, "cannot open directory %s\n", dir.c_str());
    return 2;
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    fprintf(stderr, "no .nyx files in %s\n", dir.c_str());
    return 2;
  }

  size_t failures = 0;
  std::map<uint64_t, std::vector<std::string>> by_normal_hash;
  for (const std::string& file : files) {
    FILE* f = fopen(file.c_str(), "rb");
    if (f == nullptr) {
      printf("%-40s FAIL (unreadable)\n", file.c_str());
      failures++;
      continue;
    }
    Bytes wire;
    uint8_t buf[4096];
    size_t n;
    while ((n = fread(buf, 1, sizeof(buf), f)) > 0) {
      wire.insert(wire.end(), buf, buf + n);
    }
    fclose(f);

    const spec::Result verdict = spec::VerifyWire(wire, spec);
    if (!verdict.ok()) {
      printf("%-40s FAIL %s\n", file.c_str(), verdict.Summary().c_str());
      failures++;
      continue;
    }
    auto program = Program::Parse(wire, spec);
    if (!program.has_value()) {
      // VerifyWire passed but Parse refused: that is a checker/parser
      // disagreement worth failing loudly on.
      printf("%-40s FAIL verified wire did not parse\n", file.c_str());
      failures++;
      continue;
    }

    const spec::Analysis a = spec::Analyze(*program, spec);
    const Program canon = spec::Canonicalize(*program, spec);
    const Program canon2 = spec::Canonicalize(canon, spec);
    const bool idempotent = canon.OpsHash(canon.ops.size()) == canon2.OpsHash(canon2.ops.size());
    const uint64_t normal = spec::NormalHash(*program, spec);
    printf("%-40s ok   ops=%-3zu dead=%-2zu canon=%-3zu normal=%016llx%s\n", file.c_str(),
           program->ops.size(), a.provably_dead, canon.ops.size(),
           static_cast<unsigned long long>(normal),
           idempotent ? "" : "  FAIL canonicalize not idempotent");
    if (!idempotent) {
      failures++;
    }
    by_normal_hash[normal].push_back(file);
  }

  for (const auto& [hash, group] : by_normal_hash) {
    if (group.size() < 2) {
      continue;
    }
    printf("semantic duplicates (normal=%016llx):\n", static_cast<unsigned long long>(hash));
    for (const std::string& file : group) {
      printf("  %s\n", file.c_str());
    }
  }
  printf("%zu file(s), %zu failure(s)\n", files.size(), failures);
  return failures == 0 ? 0 : 1;
}

int CmdMario(const Args& args) {
  const std::string level = args.Get("level", "1-1");
  if (FindLevel(level) == nullptr) {
    fprintf(stderr, "unknown level '%s' (1-1 .. 8-4)\n", level.c_str());
    return 2;
  }
  const FuzzerKind kind = ParseFuzzer(args.Get("policy", "aggressive"));
  printf("solving %s with %s...\n", level.c_str(), FuzzerKindName(kind));
  CampaignOutcome out = RunMarioCampaign(level, kind, args.GetDouble("wall", 60.0),
                                         args.GetU64("seed", 1));
  const LevelDef* lv = FindLevel(level);
  if (out.result.ijon_goal_vsec >= 0) {
    printf("SOLVED in %.1f virtual seconds (%llu executions)\n", out.result.ijon_goal_vsec,
           static_cast<unsigned long long>(out.result.execs));
    return 0;
  }
  printf("unsolved; best progress %.1f of %u tiles\n",
         static_cast<double>(out.result.ijon_best) / kSub, lv->length);
  return 1;
}

}  // namespace
}  // namespace nyx

int main(int argc, char** argv) {
  using namespace nyx;
  if (argc < 2) {
    return Usage();
  }
  const std::string cmd = argv[1];
  const Args args = ParseArgs(argc, argv, 2);
  if (cmd == "targets") {
    return CmdTargets();
  }
  if (cmd == "fuzz") {
    return CmdFuzz(args);
  }
  if (cmd == "pcap") {
    return CmdPcap(args);
  }
  if (cmd == "repro") {
    return CmdRepro(args);
  }
  if (cmd == "trim") {
    return CmdTrim(args);
  }
  if (cmd == "verify") {
    // The directory is positional: nyx-net verify DIR --target NAME.
    if (argc < 3 || strncmp(argv[2], "--", 2) == 0) {
      fprintf(stderr, "usage: nyx-net verify DIR --target NAME\n");
      return 2;
    }
    return CmdVerify(argv[2], args);
  }
  if (cmd == "mario") {
    return CmdMario(args);
  }
  return Usage();
}
