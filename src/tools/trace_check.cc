// Validates a Chrome trace-event JSON file produced by the telemetry layer
// (src/common/trace.cc). Run as `trace_check <file> [--min-tracks N]
// [--require-phases]`; exits nonzero with a diagnostic on the first schema
// violation. CI runs it against a traced table3 smoke so a malformed export
// (one Perfetto would refuse to load) fails the build instead of being
// discovered the first time someone actually opens a timeline.
//
// Checks:
//   * the file parses as JSON (hand-rolled parser, no dependencies);
//   * the top level is an object with a "traceEvents" array;
//   * every event has "name"/"ph"/"pid"/"tid"; "X" events additionally carry
//     numeric ts/dur, and ts+dur is non-decreasing within each track (rings
//     record at scope *end*, so a nested scope precedes its parent and only
//     end times are monotone);
//   * every "X" event name is a known phase (telemetry::PhaseName);
//   * each track with events has a thread_name metadata record;
//   * --min-tracks N: at least N tracks contain "X" events (one per
//     shard/worker in sharded smokes);
//   * --require-phases: every phase of the taxonomy appears at least once;
//     --require-phases=a,b,c checks only the listed phases (a smoke that
//     cannot reach a phase — frontier-sync needs a sharded campaign, audit
//     needs NYX_AUDIT=1 — lists what it can).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/telemetry.h"

namespace {

// ---- minimal JSON --------------------------------------------------------

struct Value {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<Value> arr;
  std::vector<std::pair<std::string, Value>> obj;

  const Value* Get(const std::string& key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) {
        return &v;
      }
    }
    return nullptr;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  bool Parse(Value& out) { return ParseValue(out) && (SkipWs(), pos_ == s_.size()); }
  std::string Error() const {
    return err_.empty() ? "" : err_ + " at byte " + std::to_string(pos_);
  }

 private:
  bool Fail(const char* what) {
    if (err_.empty()) {
      err_ = what;
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' || s_[pos_] == '\r')) {
      pos_++;
    }
  }

  bool Literal(const char* lit) {
    const size_t n = strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) {
      return Fail("bad literal");
    }
    pos_ += n;
    return true;
  }

  bool ParseString(std::string& out) {
    if (pos_ >= s_.size() || s_[pos_] != '"') {
      return Fail("expected string");
    }
    pos_++;
    out.clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) {
          return Fail("truncated escape");
        }
        const char e = s_[pos_++];
        switch (e) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'u':  // keep the raw sequence; names here are ASCII anyway
            out += "\\u";
            continue;
          default:
            return Fail("unknown escape");
        }
      }
      out += c;
    }
    if (pos_ >= s_.size()) {
      return Fail("unterminated string");
    }
    pos_++;  // closing quote
    return true;
  }

  bool ParseValue(Value& out) {
    SkipWs();
    if (pos_ >= s_.size()) {
      return Fail("unexpected end of input");
    }
    const char c = s_[pos_];
    if (c == '{') {
      pos_++;
      out.kind = Value::kObject;
      SkipWs();
      if (pos_ < s_.size() && s_[pos_] == '}') {
        pos_++;
        return true;
      }
      while (true) {
        SkipWs();
        std::string key;
        if (!ParseString(key)) {
          return false;
        }
        SkipWs();
        if (pos_ >= s_.size() || s_[pos_] != ':') {
          return Fail("expected ':'");
        }
        pos_++;
        Value v;
        if (!ParseValue(v)) {
          return false;
        }
        out.obj.emplace_back(std::move(key), std::move(v));
        SkipWs();
        if (pos_ < s_.size() && s_[pos_] == ',') {
          pos_++;
          continue;
        }
        if (pos_ < s_.size() && s_[pos_] == '}') {
          pos_++;
          return true;
        }
        return Fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      pos_++;
      out.kind = Value::kArray;
      SkipWs();
      if (pos_ < s_.size() && s_[pos_] == ']') {
        pos_++;
        return true;
      }
      while (true) {
        Value v;
        if (!ParseValue(v)) {
          return false;
        }
        out.arr.push_back(std::move(v));
        SkipWs();
        if (pos_ < s_.size() && s_[pos_] == ',') {
          pos_++;
          continue;
        }
        if (pos_ < s_.size() && s_[pos_] == ']') {
          pos_++;
          return true;
        }
        return Fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      out.kind = Value::kString;
      return ParseString(out.str);
    }
    if (c == 't') {
      out.kind = Value::kBool;
      out.b = true;
      return Literal("true");
    }
    if (c == 'f') {
      out.kind = Value::kBool;
      out.b = false;
      return Literal("false");
    }
    if (c == 'n') {
      out.kind = Value::kNull;
      return Literal("null");
    }
    // number
    const size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) {
      pos_++;
    }
    while (pos_ < s_.size() &&
           ((s_[pos_] >= '0' && s_[pos_] <= '9') || s_[pos_] == '.' || s_[pos_] == 'e' ||
            s_[pos_] == 'E' || s_[pos_] == '-' || s_[pos_] == '+')) {
      pos_++;
    }
    if (pos_ == start) {
      return Fail("expected value");
    }
    out.kind = Value::kNumber;
    out.num = atof(s_.substr(start, pos_ - start).c_str());
    return true;
  }

  const std::string& s_;
  size_t pos_ = 0;
  std::string err_;
};

// ---- schema checks -------------------------------------------------------

int Die(const std::string& msg) {
  fprintf(stderr, "trace_check: %s\n", msg.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string file;
  size_t min_tracks = 1;
  bool require_phases = false;
  std::set<std::string> required;  // empty with require_phases = all phases
  for (int i = 1; i < argc; i++) {
    const std::string arg = argv[i];
    if (arg == "--min-tracks" && i + 1 < argc) {
      min_tracks = static_cast<size_t>(atol(argv[++i]));
    } else if (arg == "--require-phases") {
      require_phases = true;
    } else if (arg.rfind("--require-phases=", 0) == 0) {
      require_phases = true;
      std::string list = arg.substr(strlen("--require-phases="));
      for (size_t pos = 0; pos <= list.size();) {
        const size_t comma = std::min(list.find(',', pos), list.size());
        if (comma > pos) {
          required.insert(list.substr(pos, comma - pos));
        }
        pos = comma + 1;
      }
    } else if (!arg.empty() && arg[0] != '-') {
      file = arg;
    } else {
      return Die("usage: trace_check <file> [--min-tracks N] [--require-phases[=a,b,...]]");
    }
  }
  if (file.empty()) {
    return Die("usage: trace_check <file> [--min-tracks N] [--require-phases[=a,b,...]]");
  }

  std::ifstream in(file);
  if (!in) {
    return Die("cannot open " + file);
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  Value root;
  Parser parser(text);
  if (!parser.Parse(root)) {
    return Die(file + ": JSON parse error: " + parser.Error());
  }
  if (root.kind != Value::kObject) {
    return Die(file + ": top level is not an object");
  }
  const Value* events = root.Get("traceEvents");
  if (events == nullptr || events->kind != Value::kArray) {
    return Die(file + ": missing \"traceEvents\" array");
  }

  std::set<std::string> known_phases;
  for (size_t i = 0; i < nyx::telemetry::kPhaseCount; i++) {
    known_phases.insert(
        nyx::telemetry::PhaseName(static_cast<nyx::telemetry::Phase>(i)));
  }

  std::set<double> named_tracks;        // tids with a thread_name record
  std::set<double> event_tracks;        // tids with at least one X event
  std::set<std::string> phases_seen;
  std::map<double, double> last_end;    // per-track end-time monotonicity
  size_t n_events = 0;

  for (size_t i = 0; i < events->arr.size(); i++) {
    const Value& e = events->arr[i];
    const std::string at = "event " + std::to_string(i);
    if (e.kind != Value::kObject) {
      return Die(at + ": not an object");
    }
    const Value* name = e.Get("name");
    const Value* ph = e.Get("ph");
    const Value* pid = e.Get("pid");
    const Value* tid = e.Get("tid");
    if (name == nullptr || name->kind != Value::kString) {
      return Die(at + ": missing string \"name\"");
    }
    if (ph == nullptr || ph->kind != Value::kString) {
      return Die(at + ": missing string \"ph\"");
    }
    if (pid == nullptr || pid->kind != Value::kNumber || tid == nullptr ||
        tid->kind != Value::kNumber) {
      return Die(at + ": missing numeric pid/tid");
    }
    if (ph->str == "M") {
      if (name->str != "thread_name") {
        continue;  // other metadata is fine, just not checked
      }
      const Value* args = e.Get("args");
      if (args == nullptr || args->kind != Value::kObject ||
          args->Get("name") == nullptr) {
        return Die(at + ": thread_name metadata without args.name");
      }
      named_tracks.insert(tid->num);
      continue;
    }
    if (ph->str != "X") {
      return Die(at + ": unexpected ph \"" + ph->str + "\" (only M and X are emitted)");
    }
    const Value* ts = e.Get("ts");
    const Value* dur = e.Get("dur");
    if (ts == nullptr || ts->kind != Value::kNumber || dur == nullptr ||
        dur->kind != Value::kNumber) {
      return Die(at + ": X event without numeric ts/dur");
    }
    if (ts->num < 0 || dur->num < 0) {
      return Die(at + ": negative ts/dur");
    }
    if (known_phases.count(name->str) == 0) {
      return Die(at + ": unknown phase \"" + name->str + "\"");
    }
    // Events are ring-ordered by when the scope *ended*; allow 0.002us of
    // slack for the independent rounding of ts and dur in the writer.
    const double end = ts->num + dur->num;
    auto [it, fresh] = last_end.emplace(tid->num, end);
    if (!fresh) {
      if (end < it->second - 0.002) {
        return Die(at + ": scope end time went backwards within track");
      }
      it->second = std::max(it->second, end);
    }
    event_tracks.insert(tid->num);
    phases_seen.insert(name->str);
    n_events++;
  }

  for (double t : event_tracks) {
    if (named_tracks.count(t) == 0) {
      return Die("track " + std::to_string(t) + " has events but no thread_name record");
    }
  }
  if (event_tracks.size() < min_tracks) {
    return Die("expected at least " + std::to_string(min_tracks) + " track(s) with events, got " +
               std::to_string(event_tracks.size()));
  }
  if (require_phases) {
    for (const std::string& p : required.empty() ? known_phases : required) {
      if (known_phases.count(p) == 0) {
        return Die("--require-phases names unknown phase \"" + p + "\"");
      }
      if (phases_seen.count(p) == 0) {
        return Die("phase \"" + p + "\" never appears in the trace");
      }
    }
  }

  printf("trace_check: OK: %zu events, %zu track(s), %zu/%zu phases\n", n_events,
         event_tracks.size(), phases_seen.size(), known_phases.size());
  return 0;
}
