#include "src/vm/block_device.h"

#include <cstring>

namespace nyx {

BlockDevice::BlockDevice(size_t num_sectors)
    : num_sectors_(num_sectors),
      data_(num_sectors * kSectorSize, 0),
      dirty_bitmap_(num_sectors, 0) {
  dirty_stack_.reserve(num_sectors);
}

void BlockDevice::MarkSectorDirty(uint32_t sector) {
  if (dirty_bitmap_[sector] == 0) {
    dirty_bitmap_[sector] = 1;
    dirty_stack_.push_back(sector);
  }
}

void BlockDevice::WriteBytes(uint64_t offset, const void* src, size_t len) {
  if (len == 0 || offset + len > data_.size()) {
    return;
  }
  const uint32_t first = static_cast<uint32_t>(offset / kSectorSize);
  const uint32_t last = static_cast<uint32_t>((offset + len - 1) / kSectorSize);
  for (uint32_t s = first; s <= last; s++) {
    MarkSectorDirty(s);
  }
  memcpy(data_.data() + offset, src, len);
}

void BlockDevice::ReadBytes(uint64_t offset, void* dst, size_t len) const {
  if (len == 0 || offset + len > data_.size()) {
    memset(dst, 0, len);
    return;
  }
  memcpy(dst, data_.data() + offset, len);
}

void BlockDevice::ClearDirty() {
  for (uint32_t s : dirty_stack_) {
    dirty_bitmap_[s] = 0;
  }
  dirty_stack_.clear();
}

BlockDevice::RootLayer BlockDevice::CaptureRoot() const { return RootLayer{data_}; }

void BlockDevice::RestoreFromRoot(const RootLayer& root) {
  for (uint32_t s : dirty_stack_) {
    memcpy(data_.data() + static_cast<size_t>(s) * kSectorSize,
           root.data.data() + static_cast<size_t>(s) * kSectorSize, kSectorSize);
  }
  ClearDirty();
}

BlockDevice::IncrementalLayer BlockDevice::CaptureIncremental() const {
  IncrementalLayer layer;
  layer.base_dirty = dirty_stack_;
  for (uint32_t s : dirty_stack_) {
    Bytes copy(kSectorSize);
    memcpy(copy.data(), SectorPtr(s), kSectorSize);
    layer.sectors.emplace(s, std::move(copy));
  }
  return layer;
}

void BlockDevice::RestoreFromIncremental(const IncrementalLayer& inc, const RootLayer& root) {
  // Restoring *forward* (to a still-valid deeper tree snapshot) can target
  // sectors the layer captured that are not currently dirty — e.g. a sector
  // written between two snapshots, untouched since restoring to the
  // shallower one. Union them in so the copy loop covers them; for backward
  // restores the stack already contains every layer sector and this adds
  // nothing.
  for (uint32_t s : inc.base_dirty) {
    MarkSectorDirty(s);
  }
  for (uint32_t s : dirty_stack_) {
    auto it = inc.sectors.find(s);
    const uint8_t* src = it != inc.sectors.end()
                             ? it->second.data()
                             : root.data.data() + static_cast<size_t>(s) * kSectorSize;
    memcpy(data_.data() + static_cast<size_t>(s) * kSectorSize, src, kSectorSize);
  }
  // Dirtiness relative to the *incremental* snapshot is now zero, but the
  // sectors named in the layer are still dirty relative to root; the caller
  // (Vm) re-marks them so a later root restore reverts them too.
  ClearDirty();
  for (uint32_t s : inc.base_dirty) {
    MarkSectorDirty(s);
  }
}

}  // namespace nyx
