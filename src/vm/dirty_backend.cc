#include "src/vm/dirty_backend.h"

#include <fcntl.h>
#include <poll.h>
#include <string.h>
#include <sys/ioctl.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#if defined(__linux__) && __has_include(<linux/userfaultfd.h>)
#include <linux/userfaultfd.h>
#if defined(UFFDIO_WRITEPROTECT) && defined(__NR_userfaultfd)
#define NYX_HAS_UFFD_WP 1
#endif
#endif

#include "src/common/check.h"
#include "src/common/env.h"
#include "src/common/log.h"
#include "src/vm/state_registry.h"

namespace nyx {
namespace {

// Fallback warnings fire once per requested mode per process, not once per
// VM: campaign workers construct thousands of VMs and the message would
// drown the log. Infrastructure flags, never guest state.
NYX_EXEC_EPHEMERAL("dirty_backend.warn_flags");
std::atomic<bool> g_warned_uffd{false};
std::atomic<bool> g_warned_softdirty{false};
NYX_EXEC_EPHEMERAL("dirty_backend.warn_unknown_name");
std::atomic<bool> g_warned_unknown{false};

// /proc/self/clear_refs resets soft-dirty bits for the *whole process*, so
// exactly one live region may own the mechanism at a time; later regions
// fall back to mprotect. Released when the owning backend is destroyed.
NYX_EXEC_EPHEMERAL("dirty_backend.softdirty_claim");
std::atomic<bool> g_softdirty_claimed{false};

// ---------------------------------------------------------------------------
// mprotect/SIGSEGV backend: the write-protection fault path GuestMemory has
// always had, moved behind the interface. Costs 2 syscalls + 1 signal per
// first write; re-arms coalesce runs of consecutive pages into one syscall.

class MprotectBackend : public DirtyBackend {
 public:
  using DirtyBackend::DirtyBackend;

  bool Attach() override { return true; }

  void Arm() override { Protect(0, num_pages_, PROT_READ); }

  void Disarm() override { Protect(0, num_pages_, PROT_READ | PROT_WRITE); }

  void OpenPages(const uint32_t* pages, size_t n) override {
    ProtectList(pages, n, PROT_READ | PROT_WRITE);
  }

  void ReArmPages(const uint32_t* pages, size_t n) override {
    ProtectList(pages, n, PROT_READ);
  }

  bool HandleFault(uintptr_t addr) override {
    const uint32_t page = PageOf(addr - reinterpret_cast<uintptr_t>(base_));
    if (tracker_->IsDirty(page)) {
      // The page is already writable; this fault is a genuine bug (e.g. a
      // wild write the handler cannot resolve).
      return false;
    }
    tracker_->MarkDirty(page);
    // Re-enable writes for this single page. mprotect is async-signal-safe
    // in practice on Linux (it is a plain syscall).
    if (mprotect(base_ + static_cast<size_t>(page) * kPageSize, kPageSize,
                 PROT_READ | PROT_WRITE) != 0) {
      return false;
    }
    protect_calls_->fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  bool wants_segv_handler() const override { return true; }
  TrackingMode mode() const override { return TrackingMode::kMprotect; }

 private:
  void Protect(uint32_t first_page, size_t count, int prot) {
    if (count == 0) {
      return;
    }
    if (mprotect(base_ + static_cast<size_t>(first_page) * kPageSize, count * kPageSize,
                 prot) != 0) {
      perror("mprotect");
      abort();
    }
    protect_calls_->fetch_add(1, std::memory_order_relaxed);
  }

  // Coalesces runs of consecutive pages into single mprotect calls.
  void ProtectList(const uint32_t* pages, size_t n, int prot) {
    size_t i = 0;
    while (i < n) {
      const uint32_t start = pages[i];
      size_t run = 1;
      while (i + run < n && pages[i + run] == start + run) {
        run++;
      }
      Protect(start, run, prot);
      i += run;
    }
  }
};

// ---------------------------------------------------------------------------
// Software backend: no protection changes at all; dirty marks come only from
// the explicit GuestMemory accessors. For tracker-logic unit tests.

class SoftwareBackend : public DirtyBackend {
 public:
  using DirtyBackend::DirtyBackend;
  bool Attach() override { return true; }
  void Arm() override {}
  void Disarm() override {}
  void ReArmPages(const uint32_t*, size_t) override {}
  TrackingMode mode() const override { return TrackingMode::kSoftware; }
};

// ---------------------------------------------------------------------------
// userfaultfd write-protect backend. Faults are delivered as messages on a
// file descriptor instead of SIGSEGV; a monitor thread reads each fault,
// appends the page to a preallocated pending buffer and removes write
// protection for that page (which wakes the blocked guest thread). The VM
// thread drains the buffer into the DirtyTracker in Sync().
//
// Synchronization: the monitor is the only writer of pending entries, the VM
// thread the only reader. An entry store followed by a release store of the
// count, paired with an acquire load in Sync(), publishes each entry. The
// two threads are additionally never *concurrently active* on the same page:
// while the monitor handles a fault, the VM thread is blocked in the kernel
// on that very write. The monitor never touches the DirtyTracker.
//
// Pages must have populated PTEs before registering: write-protect
// registration on never-written anonymous memory is silently skipped by
// kernels without UFFD_FEATURE_WP_UNPOPULATED, and the first write would
// then not fault at all. Attach() populates the whole region up front.

class UffdBackend : public DirtyBackend {
 public:
  UffdBackend(uint8_t* base, size_t num_pages, DirtyTracker* tracker,
              std::atomic<uint64_t>* protect_calls)
      : DirtyBackend(base, num_pages, tracker, protect_calls), pending_(num_pages, 0) {}

  ~UffdBackend() override {
    if (monitor_.joinable()) {
      const char stop = 1;
      (void)!write(stop_pipe_[1], &stop, 1);
      monitor_.join();
    }
    for (int fd : {stop_pipe_[0], stop_pipe_[1], uffd_}) {
      if (fd >= 0) {
        close(fd);
      }
    }
  }

#ifndef NYX_HAS_UFFD_WP
  bool Attach() override { return false; }
  void Arm() override {}
  void Disarm() override {}
  void ReArmPages(const uint32_t*, size_t) override {}
#else
  bool Attach() override {
    long fd = -1;
#ifdef UFFD_USER_MODE_ONLY
    fd = syscall(__NR_userfaultfd, O_CLOEXEC | O_NONBLOCK | UFFD_USER_MODE_ONLY);
#endif
    if (fd < 0) {
      fd = syscall(__NR_userfaultfd, O_CLOEXEC | O_NONBLOCK);
    }
    if (fd < 0) {
      return false;
    }
    uffd_ = static_cast<int>(fd);

    struct uffdio_api api = {};
    api.api = UFFD_API;
#ifdef UFFD_FEATURE_PAGEFAULT_FLAG_WP
    api.features = UFFD_FEATURE_PAGEFAULT_FLAG_WP;
#endif
    if (ioctl(uffd_, UFFDIO_API, &api) != 0) {
      return false;
    }

    // Populate every PTE before registering (see class comment). Content is
    // preserved: pages are still all-writable at attach time.
    Populate();

    struct uffdio_register reg = {};
    reg.range.start = reinterpret_cast<unsigned long long>(base_);
    reg.range.len = num_pages_ * kPageSize;
    reg.mode = UFFDIO_REGISTER_MODE_WP;
    if (ioctl(uffd_, UFFDIO_REGISTER, &reg) != 0) {
      return false;
    }
    if ((reg.ioctls & (1ULL << _UFFDIO_WRITEPROTECT)) == 0) {
      return false;  // kernel registered the range but cannot WP it
    }

    if (pipe(stop_pipe_) != 0) {
      return false;
    }
    monitor_ = std::thread([this] { MonitorLoop(); });
    return true;
  }

  void Arm() override {
    ResetPending();
    WriteProtect(0, num_pages_, true);
  }

  void Disarm() override {
    WriteProtect(0, num_pages_, false);
    ResetPending();
  }

  void OpenPages(const uint32_t* pages, size_t n) override {
    ProtectList(pages, n, false);
  }

  void ReArmPages(const uint32_t* pages, size_t n) override {
    ProtectList(pages, n, true);
    // Pages the monitor un-protected but the VM thread never drained (none,
    // when the Sync() contract is followed) must not stay writable.
    const size_t count = pending_count_.load(std::memory_order_acquire);
    for (size_t i = drained_; i < count; i++) {
      WriteProtect(pending_[i], 1, true);
    }
    ResetPending();
  }
#endif  // NYX_HAS_UFFD_WP

  void Sync() override {
    const size_t count = pending_count_.load(std::memory_order_acquire);
    for (size_t i = drained_; i < count; i++) {
      tracker_->MarkDirty(pending_[i]);
    }
    drained_ = count;
  }

  bool needs_sync() const override { return true; }
  TrackingMode mode() const override { return TrackingMode::kUffd; }

 private:
#ifdef NYX_HAS_UFFD_WP
  void WriteProtect(uint32_t first_page, size_t count, bool protect) {
    if (count == 0) {
      return;
    }
    struct uffdio_writeprotect wp = {};
    wp.range.start =
        reinterpret_cast<unsigned long long>(base_ + static_cast<size_t>(first_page) * kPageSize);
    wp.range.len = count * kPageSize;
    wp.mode = protect ? UFFDIO_WRITEPROTECT_MODE_WP : 0;
    if (ioctl(uffd_, UFFDIO_WRITEPROTECT, &wp) != 0) {
      perror("uffd writeprotect");
      abort();
    }
    protect_calls_->fetch_add(1, std::memory_order_relaxed);
  }

  void ProtectList(const uint32_t* pages, size_t n, bool protect) {
    size_t i = 0;
    while (i < n) {
      const uint32_t start = pages[i];
      size_t run = 1;
      while (i + run < n && pages[i + run] == start + run) {
        run++;
      }
      WriteProtect(start, run, protect);
      i += run;
    }
  }

  void Populate() {
#ifdef MADV_POPULATE_WRITE
    if (madvise(base_, num_pages_ * kPageSize, MADV_POPULATE_WRITE) == 0) {
      return;
    }
#endif
    // Fallback: touch every page with a value-preserving store.
    volatile uint8_t* p = base_;
    for (size_t i = 0; i < num_pages_; i++) {
      p[i * kPageSize] = p[i * kPageSize];
    }
  }

  void MonitorLoop() {
    struct pollfd fds[2] = {{uffd_, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
    for (;;) {
      if (poll(fds, 2, -1) < 0) {
        if (errno == EINTR) {
          continue;
        }
        return;
      }
      if (fds[1].revents != 0) {
        return;
      }
      if ((fds[0].revents & POLLIN) == 0) {
        continue;
      }
      struct uffd_msg msg;
      const ssize_t r = read(uffd_, &msg, sizeof(msg));
      if (r != static_cast<ssize_t>(sizeof(msg)) || msg.event != UFFD_EVENT_PAGEFAULT) {
        continue;
      }
      const uintptr_t addr = static_cast<uintptr_t>(msg.arg.pagefault.address);
      const uint32_t page = PageOf(addr - reinterpret_cast<uintptr_t>(base_));
      // Publish the page before waking the faulting thread: entry store,
      // then release bump of the count Sync() acquires.
      const size_t n = pending_count_.load(std::memory_order_relaxed);
      if (n < pending_.size()) {
        pending_[n] = page;
        pending_count_.store(n + 1, std::memory_order_release);
      }
      // Remove write protection for the one page; this unblocks the writer.
      struct uffdio_writeprotect wp = {};
      wp.range.start = addr & ~static_cast<uintptr_t>(kPageSize - 1);
      wp.range.len = kPageSize;
      wp.mode = 0;
      ioctl(uffd_, UFFDIO_WRITEPROTECT, &wp);
    }
  }
#endif  // NYX_HAS_UFFD_WP

  void ResetPending() {
    drained_ = 0;
    pending_count_.store(0, std::memory_order_release);
  }

  int uffd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  std::thread monitor_;
  // Faulted pages this arming period, monitor-written, VM-thread-drained.
  std::vector<uint32_t> pending_;
  std::atomic<size_t> pending_count_{0};
  size_t drained_ = 0;  // VM thread only
};

// ---------------------------------------------------------------------------
// Soft-dirty backend: zero per-write cost. The kernel sets a "soft dirty"
// bit in each PTE on first write after a clear; Sync() reads the bits back
// from /proc/self/pagemap (bit 55 of each 8-byte entry) and ReArm resets
// them by writing "4" to /proc/self/clear_refs. Writes never fault and
// pages stay read-write the whole time — the trade is an O(#pages) pagemap
// scan per sync against the per-page fault machinery of the other backends.

class SoftDirtyBackend : public DirtyBackend {
 public:
  SoftDirtyBackend(uint8_t* base, size_t num_pages, DirtyTracker* tracker,
                   std::atomic<uint64_t>* protect_calls)
      : DirtyBackend(base, num_pages, tracker, protect_calls),
        buf_(num_pages < kChunkEntries ? num_pages : kChunkEntries) {}

  ~SoftDirtyBackend() override {
    for (int fd : {pagemap_fd_, clear_fd_}) {
      if (fd >= 0) {
        close(fd);
      }
    }
    if (claimed_) {
      g_softdirty_claimed.store(false, std::memory_order_release);
    }
  }

  bool Attach() override {
    bool expected = false;
    if (!g_softdirty_claimed.compare_exchange_strong(expected, true,
                                                     std::memory_order_acq_rel)) {
      return false;  // another live region owns the process-wide mechanism
    }
    claimed_ = true;
    clear_fd_ = open("/proc/self/clear_refs", O_WRONLY | O_CLOEXEC);
    pagemap_fd_ = open("/proc/self/pagemap", O_RDONLY | O_CLOEXEC);
    if (clear_fd_ < 0 || pagemap_fd_ < 0) {
      return false;
    }
    // Functional probe: with CONFIG_MEM_SOFT_DIRTY compiled out the files
    // exist and the writes succeed, but bit 55 never sets. Clear, perform a
    // value-preserving store, and require the bit to appear.
    ClearRefs();
    volatile uint8_t* p = base_;
    p[0] = p[0];
    return PageSoftDirty(0);
  }

  void Arm() override {
    ClearRefs();
    armed_ = true;
  }

  void Disarm() override { armed_ = false; }

  // Pages are always writable; restores need no opening. Re-arming resets
  // the process-wide bits wholesale — per-page selectivity is impossible,
  // which is exactly why callers must Sync() before any reset.
  void ReArmPages(const uint32_t*, size_t) override { ClearRefs(); }

  void Sync() override {
    if (!armed_) {
      return;
    }
    const uint64_t first_entry = reinterpret_cast<uintptr_t>(base_) / kPageSize;
    for (size_t start = 0; start < num_pages_; start += buf_.size()) {
      const size_t count = num_pages_ - start < buf_.size() ? num_pages_ - start : buf_.size();
      const ssize_t want = static_cast<ssize_t>(count * sizeof(uint64_t));
      const ssize_t got = pread(pagemap_fd_, buf_.data(), static_cast<size_t>(want),
                                static_cast<off_t>((first_entry + start) * sizeof(uint64_t)));
      NYX_CHECK(got == want) << "pagemap read failed";
      for (size_t i = 0; i < count; i++) {
        if ((buf_[i] >> kSoftDirtyBit) & 1) {
          tracker_->MarkDirty(static_cast<uint32_t>(start + i));
        }
      }
    }
  }

  bool needs_sync() const override { return true; }
  TrackingMode mode() const override { return TrackingMode::kSoftDirty; }

 private:
  static constexpr size_t kChunkEntries = 1024;
  static constexpr unsigned kSoftDirtyBit = 55;

  void ClearRefs() {
    NYX_CHECK(pwrite(clear_fd_, "4", 1, 0) == 1) << "clear_refs write failed";
    protect_calls_->fetch_add(1, std::memory_order_relaxed);
  }

  bool PageSoftDirty(uint32_t page) {
    const uint64_t entry_off =
        (reinterpret_cast<uintptr_t>(base_) / kPageSize + page) * sizeof(uint64_t);
    uint64_t entry = 0;
    if (pread(pagemap_fd_, &entry, sizeof(entry), static_cast<off_t>(entry_off)) !=
        static_cast<ssize_t>(sizeof(entry))) {
      return false;
    }
    return ((entry >> kSoftDirtyBit) & 1) != 0;
  }

  int pagemap_fd_ = -1;
  int clear_fd_ = -1;
  bool claimed_ = false;
  bool armed_ = false;
  std::vector<uint64_t> buf_;
};

std::unique_ptr<DirtyBackend> MakeBackend(TrackingMode mode, uint8_t* base, size_t num_pages,
                                          DirtyTracker* tracker,
                                          std::atomic<uint64_t>* protect_calls) {
  switch (mode) {
    case TrackingMode::kSoftware:
      return std::make_unique<SoftwareBackend>(base, num_pages, tracker, protect_calls);
    case TrackingMode::kUffd:
      return std::make_unique<UffdBackend>(base, num_pages, tracker, protect_calls);
    case TrackingMode::kSoftDirty:
      return std::make_unique<SoftDirtyBackend>(base, num_pages, tracker, protect_calls);
    case TrackingMode::kMprotect:
      break;
  }
  return std::make_unique<MprotectBackend>(base, num_pages, tracker, protect_calls);
}

void WarnFallbackOnce(TrackingMode requested) {
  std::atomic<bool>& flag =
      requested == TrackingMode::kUffd ? g_warned_uffd : g_warned_softdirty;
  if (!flag.exchange(true, std::memory_order_acq_rel)) {
    NYX_LOG_WARN << "dirty-tracking backend '" << TrackingModeName(requested)
                 << "' unavailable on this kernel; falling back to mprotect "
                    "(DESIGN.md §12)";
  }
}

}  // namespace

const char* TrackingModeName(TrackingMode mode) {
  switch (mode) {
    case TrackingMode::kMprotect:
      return "mprotect";
    case TrackingMode::kSoftware:
      return "software";
    case TrackingMode::kUffd:
      return "uffd";
    case TrackingMode::kSoftDirty:
      return "softdirty";
  }
  return "unknown";
}

TrackingMode TrackingModeFromName(const std::string& name, TrackingMode def) {
  if (name.empty()) {
    return def;
  }
  for (TrackingMode mode : {TrackingMode::kMprotect, TrackingMode::kSoftware, TrackingMode::kUffd,
                            TrackingMode::kSoftDirty}) {
    if (name == TrackingModeName(mode)) {
      return mode;
    }
  }
  if (!g_warned_unknown.exchange(true, std::memory_order_acq_rel)) {
    NYX_LOG_WARN << "unknown NYX_TRACKER value '" << name << "'; using "
                 << TrackingModeName(def);
  }
  return def;
}

TrackingMode TrackingModeFromEnv(TrackingMode def) {
  return TrackingModeFromName(env::Tracker(), def);
}

void RawProtect(void* addr, size_t len, int prot) {
  if (mprotect(addr, len, prot) != 0) {
    perror("mprotect");
    abort();
  }
}

std::unique_ptr<DirtyBackend> CreateDirtyBackend(TrackingMode requested, uint8_t* base,
                                                 size_t num_pages, DirtyTracker* tracker,
                                                 std::atomic<uint64_t>* protect_calls,
                                                 TrackingMode* effective) {
  std::unique_ptr<DirtyBackend> backend =
      MakeBackend(requested, base, num_pages, tracker, protect_calls);
  if (backend->Attach()) {
    *effective = requested;
    return backend;
  }
  WarnFallbackOnce(requested);
  backend = MakeBackend(TrackingMode::kMprotect, base, num_pages, tracker, protect_calls);
  NYX_CHECK(backend->Attach());
  *effective = TrackingMode::kMprotect;
  return backend;
}

bool TrackingModeAvailable(TrackingMode mode) {
  if (mode == TrackingMode::kMprotect || mode == TrackingMode::kSoftware) {
    return true;
  }
  // Probe with a scratch region; the backend is destroyed (and any
  // exclusivity claim released) before returning.
  constexpr size_t kProbePages = 4;
  void* p = mmap(nullptr, kProbePages * kPageSize, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) {
    return false;
  }
  DirtyTracker tracker(kProbePages);
  std::atomic<uint64_t> protect_calls{0};
  const bool ok =
      MakeBackend(mode, static_cast<uint8_t*>(p), kProbePages, &tracker, &protect_calls)
          ->Attach();
  munmap(p, kProbePages * kPageSize);
  return ok;
}

}  // namespace nyx
