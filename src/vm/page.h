// Page-level constants for the userspace VM.

#ifndef SRC_VM_PAGE_H_
#define SRC_VM_PAGE_H_

#include <cstddef>
#include <cstdint>

namespace nyx {

inline constexpr size_t kPageSize = 4096;
inline constexpr size_t kPageShift = 12;

// Capacity of the hardware dirty ring we model: "Once a certain amount of
// pages have been dirtied (typically up to 512 pages), the CPU exits the VM
// context and informs the hypervisor" (paper, section 2.3).
inline constexpr size_t kDirtyRingCapacity = 512;

inline constexpr uint32_t PageOf(uint64_t offset) {
  return static_cast<uint32_t>(offset >> kPageShift);
}

}  // namespace nyx

#endif  // SRC_VM_PAGE_H_
