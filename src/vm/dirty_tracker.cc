#include "src/vm/dirty_tracker.h"

#include "src/common/check.h"

namespace nyx {

DirtyTracker::DirtyTracker(size_t num_pages, size_t ring_capacity)
    : bitmap_(num_pages, 0),
      stack_(num_pages, 0),
      ring_capacity_(ring_capacity > 0 ? ring_capacity : kDirtyRingCapacity),
      marks_counter_(telemetry::MetricRegistry::Global().RegisterCounter("vm.dirty_marks")),
      ring_exit_counter_(
          telemetry::MetricRegistry::Global().RegisterCounter("vm.dirty_ring_exits")) {
  // Last-write-wins across trackers, which is fine: every tracker in a
  // process shares one config in practice, and the gauge exists so
  // metrics.json records which ring size produced the exit counts.
  telemetry::MetricRegistry::Global().RegisterGauge("vm.dirty_ring_capacity")
      ->Set(ring_capacity_);
}

void DirtyTracker::MarkDirty(uint32_t page) {
  // An out-of-range page means the fault handler or a guest write computed a
  // bogus page number — distinct from the common already-dirty fast path.
  if (!NYX_EXPECT(page < bitmap_.size())) {
    return;
  }
  if (bitmap_[page] != 0) {
    return;
  }
  bitmap_[page] = 1;
  NYX_DCHECK_LT(stack_size_, stack_.size());
  stack_[stack_size_++] = page;
  total_marks_++;
  marks_counter_->Add(1);
  if (++ring_fill_ >= ring_capacity_) {
    ring_fill_ = 0;
    ring_exits_++;
    ring_exit_counter_->Add(1);
  }
}

void DirtyTracker::Clear() {
  for (size_t i = 0; i < stack_size_; i++) {
    bitmap_[stack_[i]] = 0;
  }
  stack_size_ = 0;
  ring_fill_ = 0;
}

}  // namespace nyx
