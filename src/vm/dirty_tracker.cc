#include "src/vm/dirty_tracker.h"

#include "src/common/check.h"

namespace nyx {

DirtyTracker::DirtyTracker(size_t num_pages)
    : bitmap_(num_pages, 0),
      stack_(num_pages, 0),
      marks_counter_(telemetry::MetricRegistry::Global().RegisterCounter("vm.dirty_marks")),
      ring_exit_counter_(
          telemetry::MetricRegistry::Global().RegisterCounter("vm.dirty_ring_exits")) {}

void DirtyTracker::MarkDirty(uint32_t page) {
  // An out-of-range page means the fault handler or a guest write computed a
  // bogus page number — distinct from the common already-dirty fast path.
  if (!NYX_EXPECT(page < bitmap_.size())) {
    return;
  }
  if (bitmap_[page] != 0) {
    return;
  }
  bitmap_[page] = 1;
  NYX_DCHECK_LT(stack_size_, stack_.size());
  stack_[stack_size_++] = page;
  total_marks_++;
  marks_counter_->Add(1);
  if (++ring_fill_ >= kDirtyRingCapacity) {
    ring_fill_ = 0;
    ring_exits_++;
    ring_exit_counter_->Add(1);
  }
}

std::vector<uint32_t> DirtyTracker::DirtyPages() const {
  return std::vector<uint32_t>(stack_.begin(), stack_.begin() + static_cast<long>(stack_size_));
}

void DirtyTracker::Clear() {
  for (size_t i = 0; i < stack_size_; i++) {
    bitmap_[stack_[i]] = 0;
  }
  stack_size_ = 0;
  ring_fill_ = 0;
}

}  // namespace nyx
