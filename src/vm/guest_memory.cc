#include "src/vm/guest_memory.h"

#include <pthread.h>
#include <signal.h>
#include <string.h>
#include <sys/mman.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "src/common/check.h"
#include "src/common/telemetry.h"
#include "src/vm/state_registry.h"

namespace nyx {
namespace {

// Registry of live regions consulted by the (process-wide) SIGSEGV handler.
// Fixed-size, with atomic slots: worker threads (harness/parallel.h) create
// and destroy their own VMs concurrently. Each slot is tagged with the
// registering thread: a tracking fault can only be raised by the thread
// mutating that region's memory, so the handler dereferences only regions
// owned by the faulting thread. That confines every dereference to the one
// thread that also destroys the region — the handler can never touch an
// object another thread is concurrently deleting.
constexpr size_t kMaxRegions = 64;
// One cache line per slot: register/unregister CAS over the whole array
// from many worker threads, and unpadded slots (16 bytes) would put four
// unrelated workers' claims on one line (false sharing on every campaign
// setup/teardown).
struct alignas(kCacheLineSize) RegionSlot {
  std::atomic<GuestMemory*> region{nullptr};
  // pthread_t of the owner, written by the owner right after claiming the
  // slot. Other threads may briefly observe a stale owner and skip the slot
  // — which is exactly what they must do anyway.
  std::atomic<unsigned long> owner{0};
};
// Campaign infrastructure, not guest state: executions never observe these,
// so no snapshot captures them (NYX_EXEC_EPHEMERAL, DESIGN.md §10).
NYX_EXEC_EPHEMERAL("guest_memory.region_slots");
RegionSlot g_regions[kMaxRegions];
NYX_EXEC_EPHEMERAL("guest_memory.unresolved_hook");
std::atomic<UnresolvedFaultHook> g_unresolved_hook{nullptr};

unsigned long SelfId() {
  // pthread_self is a TLS read on Linux — safe inside a signal handler.
  return reinterpret_cast<unsigned long>(pthread_self());
}

void SegvHandler(int sig, siginfo_t* info, void* ucontext) {
  const uintptr_t addr = reinterpret_cast<uintptr_t>(info->si_addr);
  const unsigned long self = SelfId();
  for (auto& slot : g_regions) {
    GuestMemory* region = slot.region.load(std::memory_order_acquire);
    if (region == nullptr || slot.owner.load(std::memory_order_relaxed) != self) {
      continue;
    }
    if (region->Contains(addr) && region->HandleFault(addr)) {
      return;
    }
  }
  // Not a tracking fault. Give the execution engine a chance to turn it
  // into a detected target crash (it siglongjmps and never returns here).
  UnresolvedFaultHook hook = g_unresolved_hook.load(std::memory_order_acquire);
  if (hook != nullptr && hook()) {
    return;
  }
  // Restore the default disposition; the faulting instruction re-executes
  // and the process dies with a genuine SIGSEGV.
  signal(SIGSEGV, SIG_DFL);
}

void InstallHandlerOnce() {
  // Monotonic init-once: set on first VM construction, immutable afterwards.
  NYX_EXEC_EPHEMERAL("guest_memory.sighandler_once");
  static std::once_flag installed;
  std::call_once(installed, [] {
    struct sigaction sa = {};
    sa.sa_sigaction = SegvHandler;
    sa.sa_flags = SA_SIGINFO;
    sigemptyset(&sa.sa_mask);
    if (sigaction(SIGSEGV, &sa, nullptr) != 0) {
      perror("sigaction");
      abort();
    }
  });
}

void RegisterRegion(GuestMemory* gm) {
  for (auto& slot : g_regions) {
    GuestMemory* expected = nullptr;
    if (slot.region.compare_exchange_strong(expected, gm, std::memory_order_release)) {
      // The owner's own faults are ordered after this store on the same
      // thread, which is the only reader the value must be exact for.
      slot.owner.store(SelfId(), std::memory_order_release);
      return;
    }
  }
  ::nyx::internal::ContractFailure(__FILE__, __LINE__, "NYX_CHECK", "free region slot")
      << "too many live GuestMemory regions (max " << kMaxRegions << ")";
}

void UnregisterRegion(GuestMemory* gm) {
  for (auto& slot : g_regions) {
    GuestMemory* expected = gm;
    if (slot.region.compare_exchange_strong(expected, nullptr, std::memory_order_release)) {
      return;
    }
  }
}

}  // namespace

void SetUnresolvedFaultHook(UnresolvedFaultHook hook) {
  g_unresolved_hook.store(hook, std::memory_order_release);
}

GuestMemory::GuestMemory(size_t num_pages, TrackingMode mode, size_t dirty_ring_capacity)
    : num_pages_(num_pages),
      requested_mode_(mode),
      mode_(mode),
      tracker_(num_pages, dirty_ring_capacity),
      opened_(num_pages, 0) {
  // One extra PROT_NONE guard page so a target running off the end of guest
  // memory faults immediately and deterministically instead of silently
  // reading whatever mapping happens to be adjacent. The guard page is never
  // part of dirty tracking, so it is protected via the raw call, and the
  // backend is attached to the tracked range only.
  void* p = mmap(nullptr, size_bytes() + kPageSize, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) {
    perror("mmap guest memory");
    abort();
  }
  base_ = static_cast<uint8_t*>(p);
  RawProtect(base_ + size_bytes(), kPageSize, PROT_NONE);
  backend_ = CreateDirtyBackend(mode, base_, num_pages_, &tracker_, &protect_calls_, &mode_);
  if (backend_->wants_segv_handler()) {
    InstallHandlerOnce();
    RegisterRegion(this);
    registered_ = true;
    // Bind the region to this thread (see thread_checker_ in the header).
    NYX_DCHECK(thread_checker_.CalledOnValidThread());
  }
}

GuestMemory::~GuestMemory() {
  if (registered_) {
    UnregisterRegion(this);
  }
  // The backend (and any monitor thread watching the mapping) must be gone
  // before the mapping itself.
  backend_.reset();
  munmap(base_, size_bytes() + kPageSize);
}

void GuestMemory::ArmTracking() {
  NYX_DCHECK(!backend_->wants_segv_handler() || thread_checker_.CalledOnValidThread());
  tracker_.Clear();
  armed_ = true;
  opened_count_ = 0;
  backend_->Arm();
}

void GuestMemory::DisarmTracking() {
  armed_ = false;
  backend_->Disarm();
}

void GuestMemory::SyncDirty() {
  if (!backend_->needs_sync()) {
    return;
  }
  telemetry::ScopedPhase phase(telemetry::Phase::kDirtySync);
  backend_->Sync();
}

void GuestMemory::OpenForRestore(const uint32_t* pages, size_t n) {
  const size_t start = opened_count_;
  for (size_t i = 0; i < n; i++) {
    if (!tracker_.IsDirty(pages[i])) {
      NYX_DCHECK_LT(opened_count_, opened_.size());
      opened_[opened_count_++] = pages[i];
    }
  }
  backend_->OpenPages(opened_.data() + start, opened_count_ - start);
}

void GuestMemory::SealAfterRestore() {
  NYX_DCHECK(!backend_->wants_segv_handler() || thread_checker_.CalledOnValidThread());
  backend_->ReArmPages(tracker_.stack_data(), tracker_.stack_size());
  if (opened_count_ > 0) {
    backend_->ReArmPages(opened_.data(), opened_count_);
    opened_count_ = 0;
  }
  tracker_.Clear();
  armed_ = true;
}

void GuestMemory::ReArmDirtyPages() {
  NYX_DCHECK(!backend_->wants_segv_handler() || thread_checker_.CalledOnValidThread());
  backend_->ReArmPages(tracker_.stack_data(), tracker_.stack_size());
  tracker_.Clear();
  armed_ = true;
}

void GuestMemory::Write(uint64_t guest_offset, const void* src, size_t len) {
  NYX_DCHECK_LE(guest_offset + len, size_bytes());
  if (armed_ && mode_ == TrackingMode::kSoftware) {
    for (uint32_t p = PageOf(guest_offset); p <= PageOf(guest_offset + len - 1); p++) {
      tracker_.MarkDirty(p);
    }
  }
  memcpy(base_ + guest_offset, src, len);
}

void GuestMemory::Read(uint64_t guest_offset, void* dst, size_t len) const {
  NYX_DCHECK_LE(guest_offset + len, size_bytes());
  memcpy(dst, base_ + guest_offset, len);
}

void GuestMemory::Memset(uint64_t guest_offset, uint8_t value, size_t len) {
  NYX_DCHECK_LE(guest_offset + len, size_bytes());
  if (armed_ && mode_ == TrackingMode::kSoftware && len > 0) {
    for (uint32_t p = PageOf(guest_offset); p <= PageOf(guest_offset + len - 1); p++) {
      tracker_.MarkDirty(p);
    }
  }
  memset(base_ + guest_offset, value, len);
}

bool GuestMemory::HandleFault(uintptr_t addr) {
  if (!armed_) {
    return false;
  }
  // Contains() excludes the guard page, so a resolvable fault is in range.
  NYX_DCHECK_LT(PageOf(addr - reinterpret_cast<uintptr_t>(base_)), num_pages_);
  return backend_->HandleFault(addr);
}

}  // namespace nyx
