// Emulated block device with two snapshot caching layers.
//
// "To handle write accesses to emulated disks, Nyx-Net introduces a second
// caching layer to store dirtied sectors representing incremental snapshots.
// Like Nyx, we use a hashmap lookup to find sectors in the snapshot,
// otherwise we fall back to Nyx's root snapshot." (paper, section 4.2)
//
// Targets use this device for filesystem effects (FTP uploads, mail spools,
// databases) so that snapshot restores genuinely roll back disk state — the
// very thing AFLNet needs user-written cleanup scripts for.

#ifndef SRC_VM_BLOCK_DEVICE_H_
#define SRC_VM_BLOCK_DEVICE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/bytes.h"

namespace nyx {

class BlockDevice {
 public:
  static constexpr size_t kSectorSize = 512;

  explicit BlockDevice(size_t num_sectors);

  size_t num_sectors() const { return num_sectors_; }
  size_t size_bytes() const { return data_.size(); }

  // Byte-granularity I/O (sector dirtiness is tracked internally).
  void WriteBytes(uint64_t offset, const void* src, size_t len);
  void ReadBytes(uint64_t offset, void* dst, size_t len) const;

  const std::vector<uint32_t>& dirty_sectors() const { return dirty_stack_; }
  void ClearDirty();

  const uint8_t* SectorPtr(uint32_t sector) const {
    return data_.data() + static_cast<size_t>(sector) * kSectorSize;
  }

  // Snapshot support -------------------------------------------------------

  // Root layer: full copy of the device contents.
  struct RootLayer {
    Bytes data;
  };
  RootLayer CaptureRoot() const;
  void RestoreFromRoot(const RootLayer& root);

  // Incremental layer: hashmap of sectors dirtied since the root snapshot.
  struct IncrementalLayer {
    std::unordered_map<uint32_t, Bytes> sectors;
    // Sectors dirtied between root and the incremental snapshot: going back
    // to root later must also revert these.
    std::vector<uint32_t> base_dirty;
  };
  IncrementalLayer CaptureIncremental() const;
  // Restores every currently-dirty sector from the incremental layer if
  // present there, otherwise falls back to the root layer.
  void RestoreFromIncremental(const IncrementalLayer& inc, const RootLayer& root);

 private:
  void MarkSectorDirty(uint32_t sector);

  size_t num_sectors_;
  Bytes data_;
  std::vector<uint8_t> dirty_bitmap_;
  std::vector<uint32_t> dirty_stack_;
};

}  // namespace nyx

#endif  // SRC_VM_BLOCK_DEVICE_H_
