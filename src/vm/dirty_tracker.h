// Dirty-page accounting, modeled on the paper's description of KVM + Nyx:
//
//  - KVM maintains a bitmap with *one byte per page* ("For some reason, KVM
//    uses 1 byte in the bitmap for each page in the physical memory").
//    AGAMOTTO walks this whole bitmap to find dirty pages.
//  - Nyx's KVM extension additionally maintains a *stack* of dirty page
//    indices, so resets never scan memory-proportional state. "For a 4GB VM,
//    Nyx's stack of dirty pages saves approximately 1MB of memory bandwidth
//    per test case."
//
// Both structures are kept here so the two restore strategies can be compared
// head-to-head (Figure 6). All storage is preallocated because MarkDirty is
// called from a SIGSEGV handler and must not allocate.

#ifndef SRC_VM_DIRTY_TRACKER_H_
#define SRC_VM_DIRTY_TRACKER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/telemetry.h"
#include "src/vm/page.h"

namespace nyx {

class DirtyTracker {
 public:
  // `ring_capacity` is the simulated hardware dirty-ring size: one ring-full
  // VM exit is counted per that many newly dirtied pages (VmConfig /
  // NYX_DIRTY_RING; kDirtyRingCapacity is the compile-time default).
  explicit DirtyTracker(size_t num_pages, size_t ring_capacity = kDirtyRingCapacity);

  DirtyTracker(const DirtyTracker&) = delete;
  DirtyTracker& operator=(const DirtyTracker&) = delete;

  // Records a first write to `page`. Async-signal-safe: touches only
  // preallocated storage. Idempotent per arming period.
  void MarkDirty(uint32_t page);

  bool IsDirty(uint32_t page) const { return bitmap_[page] != 0; }

  // Nyx-style access: the exact set of dirty pages, O(#dirty).
  const uint32_t* stack_data() const { return stack_.data(); }
  size_t stack_size() const { return stack_size_; }

  // Zero-copy view of the dirty stack, in dirtying order. Valid until the
  // next MarkDirty/Clear; snapshot capture and restores iterate this
  // directly instead of copying the set.
  std::span<const uint32_t> dirty() const { return {stack_.data(), stack_size_}; }

  // AGAMOTTO-style access: scan the whole one-byte-per-page bitmap. O(#pages).
  template <typename Fn>
  void ForEachDirtyByBitmapWalk(Fn&& fn) const {
    for (size_t i = 0; i < bitmap_.size(); i++) {
      if (bitmap_[i] != 0) {
        fn(static_cast<uint32_t>(i));
      }
    }
  }

  // Clears only the entries named by the stack — the trick that makes Nyx
  // resets independent of VM size.
  void Clear();

  size_t num_pages() const { return bitmap_.size(); }

  // Number of simulated ring-full VM exits (one per ring_capacity newly
  // dirtied pages), for the throughput statistics.
  uint64_t ring_exits() const { return ring_exits_; }
  uint64_t total_marks() const { return total_marks_; }
  size_t ring_capacity() const { return ring_capacity_; }

 private:
  std::vector<uint8_t> bitmap_;  // 1 byte per page, like KVM's log.
  std::vector<uint32_t> stack_;  // preallocated to num_pages.
  size_t stack_size_ = 0;
  size_t ring_capacity_;
  size_t ring_fill_ = 0;
  uint64_t ring_exits_ = 0;
  uint64_t total_marks_ = 0;
  // Registry counters, resolved once in the constructor so MarkDirty stays
  // async-signal-safe (Counter::Add is a relaxed fetch_add, no allocation).
  telemetry::Counter* marks_counter_;
  telemetry::Counter* ring_exit_counter_;
};

}  // namespace nyx

#endif  // SRC_VM_DIRTY_TRACKER_H_
