// The userspace virtual machine: guest memory + emulated devices + block
// device, with Nyx-style root snapshot and a depth-k incremental snapshot
// tree.
//
// The classic Nyx-Net contract (Figure 3) is exactly one root snapshot and
// at most one incremental snapshot: "Creating incremental snapshots is so
// cheap that storing them would waste space and time" — the incremental is
// recreated on demand and dropped whenever a different input is scheduled.
// That remains the default (snapshot_depth = 1). Following Agamotto's
// observation that checkpoint *trees* amortize restore cost across related
// states, the pair generalizes to a linear path of up to `snapshot_depth`
// incremental snapshots: slot d stores the pages dirtied since slot d-1
// (slot 0 being the root). Restoring to an ancestor — or a still-valid
// descendant — reverts only the unshared suffix of deltas plus current
// dirt, so long message sequences stop paying full restore cost per packet.
//
// Tree invariants (DESIGN.md §12):
//  * memory = root + deltas of slots 1..cur_depth + tracker dirt
//  * valid slots form a contiguous prefix 1..max_valid_depth
//  * invalidation never cleans guest memory: deltas of invalidated slots
//    are retained and still reverted by later restores (the generalization
//    of the old inc_base_live_ fix)
//  * page content at depth d = deepest slot e <= d with has_page(p),
//    falling back to the root
//
// An opaque auxiliary blob rides along with each snapshot. The execution
// engine uses it to store host-side state that is logically part of the
// guest (the emulated kernel's fd table and the input-stream position), so a
// restore brings back *all* state, exactly like a whole-VM snapshot would.

#ifndef SRC_VM_VM_H_
#define SRC_VM_VM_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/env.h"
#include "src/common/vclock.h"
#include "src/vm/block_device.h"
#include "src/vm/device_state.h"
#include "src/vm/guest_memory.h"
#include "src/vm/snapshot.h"

namespace nyx {

struct VmConfig {
  size_t mem_pages = 1024;     // 4 MiB default guest RAM
  size_t disk_sectors = 2048;  // 1 MiB default disk
  // Requested dirty-tracking backend; NYX_TRACKER overrides the default,
  // unavailable backends fall back to mprotect at attach time.
  TrackingMode tracking = TrackingModeFromEnv(TrackingMode::kMprotect);
  bool fast_device_reset = true;  // false = QEMU-style serialize/deserialize
  // Simulated hardware dirty-ring size (pages per ring-full VM exit).
  size_t dirty_ring_capacity = env::DirtyRing(kDirtyRingCapacity);
  // Maximum depth of the incremental snapshot tree (1 = the classic
  // root+incremental pair). The engine pushes deeper snapshots at packet
  // boundaries when this allows it.
  size_t snapshot_depth = env::SnapshotDepth(1);
};

struct VmStats {
  uint64_t root_restores = 0;
  uint64_t incremental_restores = 0;  // restores to any depth >= 1
  uint64_t incremental_creates = 0;   // pushes at any depth
  uint64_t deep_restores = 0;         // restores to depth >= 2
  uint64_t pages_restored = 0;
  uint64_t pages_captured = 0;
};

class Vm {
 public:
  explicit Vm(const VmConfig& config);

  Vm(const Vm&) = delete;
  Vm& operator=(const Vm&) = delete;

  GuestMemory& mem() { return mem_; }
  DeviceState& devices() { return devices_; }
  BlockDevice& disk() { return disk_; }
  const VmConfig& config() const { return config_; }

  // Attaches a virtual clock; all snapshot operations then charge their cost.
  void AttachClock(VirtualClock* clock, const CostModel* cost) {
    clock_ = clock;
    cost_ = cost;
  }

  // Root snapshot ----------------------------------------------------------

  // Captures the root snapshot of the current state and arms dirty tracking.
  // `aux` is returned verbatim by current_aux() after every root restore.
  void TakeRootSnapshot(Bytes aux = {});
  bool has_root() const { return root_ != nullptr; }
  const RootSnapshot& root() const { return *root_; }

  // Resets memory, devices and disk to the root snapshot and invalidates
  // every tree slot (the scheduled input changed; the whole lineage is
  // stale). Cost is proportional to the number of pages that differ.
  void RestoreRoot();

  // Snapshot tree ----------------------------------------------------------

  // Captures a snapshot at depth cur_depth()+1 (which must not exceed
  // config().snapshot_depth), invalidating any deeper stale slots. Returns
  // the new depth.
  size_t PushSnapshot(Bytes aux = {});

  // Restores to `depth` (0 = root content without invalidating the tree;
  // forward restores to still-valid deeper slots are allowed). Reverts only
  // current dirt plus the deltas between cur_depth() and `depth`.
  void RestoreTo(size_t depth);

  size_t cur_depth() const { return cur_depth_; }
  // Deepest d such that slots 1..d are all valid (0 when none).
  size_t max_valid_depth() const;
  bool has_snapshot_at(size_t depth) const {
    return depth >= 1 && depth <= max_valid_depth();
  }
  // Aux blob captured with slot `depth` (1-based).
  const Bytes& aux_at(size_t depth) const { return slots_[depth - 1].aux; }

  // Classic single-incremental API (depth-1 wrappers) -----------------------

  // Captures the single second-level snapshot. Must be at the root state
  // (cur_depth() == 0); deeper captures go through PushSnapshot.
  void CreateIncremental(Bytes aux = {});
  bool has_incremental() const { return has_snapshot_at(1); }
  const IncrementalSnapshot& incremental() const { return *slots_[0].snap; }
  void RestoreIncremental() { RestoreTo(1); }
  // Invalidates every slot (memory is untouched; retained deltas are still
  // reverted by later restores).
  void DropIncremental();

  // The aux blob of whichever snapshot was restored last.
  const Bytes& current_aux() const { return current_aux_; }

  const VmStats& stats() const { return stats_; }

 private:
  struct TreeSlot {
    std::unique_ptr<IncrementalSnapshot> snap;
    Bytes aux;
  };

  void RestoreDevices(const DeviceState& saved);
  // Content of `page` at tree depth `depth` (lineage resolution).
  const uint8_t* ResolvePage(size_t depth, uint32_t page) const;
  void Charge(uint64_t ns) {
    if (clock_ != nullptr) {
      clock_->Advance(ns);
    }
  }

  VmConfig config_;
  GuestMemory mem_;
  DeviceState devices_;
  BlockDevice disk_;

  std::unique_ptr<RootSnapshot> root_;
  // slots_[d-1] holds the depth-d snapshot. Slots are created on first use
  // and retained (invalidated, not destroyed) so their mirrors and deltas
  // stay reusable and restorable-past.
  std::vector<TreeSlot> slots_;
  size_t cur_depth_ = 0;
  // Preallocated scratch for RestoreTo: dedup bitmap + revert page list.
  std::vector<uint8_t> visited_;
  std::vector<uint32_t> revert_;
  Bytes root_aux_;
  Bytes current_aux_;

  VmStats stats_;
  VirtualClock* clock_ = nullptr;
  const CostModel* cost_ = nullptr;
};

}  // namespace nyx

#endif  // SRC_VM_VM_H_
