// The userspace virtual machine: guest memory + emulated devices + block
// device, with Nyx-style root and incremental snapshots.
//
// The fuzzer-facing contract mirrors Nyx-Net's (Figure 3): there is exactly
// one root snapshot and at most one incremental snapshot at any time.
// "Creating incremental snapshots is so cheap that storing them would waste
// space and time" — so the incremental snapshot is recreated on demand and
// dropped whenever a different input is scheduled.
//
// An opaque auxiliary blob rides along with each snapshot. The execution
// engine uses it to store host-side state that is logically part of the
// guest (the emulated kernel's fd table and the input-stream position), so a
// restore brings back *all* state, exactly like a whole-VM snapshot would.

#ifndef SRC_VM_VM_H_
#define SRC_VM_VM_H_

#include <cstdint>
#include <memory>

#include "src/common/bytes.h"
#include "src/common/vclock.h"
#include "src/vm/block_device.h"
#include "src/vm/device_state.h"
#include "src/vm/guest_memory.h"
#include "src/vm/snapshot.h"

namespace nyx {

struct VmConfig {
  size_t mem_pages = 1024;     // 4 MiB default guest RAM
  size_t disk_sectors = 2048;  // 1 MiB default disk
  TrackingMode tracking = TrackingMode::kMprotect;
  bool fast_device_reset = true;  // false = QEMU-style serialize/deserialize
};

struct VmStats {
  uint64_t root_restores = 0;
  uint64_t incremental_restores = 0;
  uint64_t incremental_creates = 0;
  uint64_t pages_restored = 0;
  uint64_t pages_captured = 0;
};

class Vm {
 public:
  explicit Vm(const VmConfig& config);

  Vm(const Vm&) = delete;
  Vm& operator=(const Vm&) = delete;

  GuestMemory& mem() { return mem_; }
  DeviceState& devices() { return devices_; }
  BlockDevice& disk() { return disk_; }
  const VmConfig& config() const { return config_; }

  // Attaches a virtual clock; all snapshot operations then charge their cost.
  void AttachClock(VirtualClock* clock, const CostModel* cost) {
    clock_ = clock;
    cost_ = cost;
  }

  // Root snapshot ----------------------------------------------------------

  // Captures the root snapshot of the current state and arms dirty tracking.
  // `aux` is returned verbatim by current_aux() after every root restore.
  void TakeRootSnapshot(Bytes aux = {});
  bool has_root() const { return root_ != nullptr; }
  const RootSnapshot& root() const { return *root_; }

  // Resets memory, devices and disk to the root snapshot; cost is
  // proportional to the number of dirtied pages only.
  void RestoreRoot();

  // Incremental snapshot ---------------------------------------------------

  // Captures the single second-level snapshot at the current state.
  void CreateIncremental(Bytes aux = {});
  bool has_incremental() const { return inc_ != nullptr && inc_->valid(); }
  const IncrementalSnapshot& incremental() const { return *inc_; }
  void RestoreIncremental();
  void DropIncremental();

  // The aux blob of whichever snapshot was restored last.
  const Bytes& current_aux() const { return current_aux_; }

  const VmStats& stats() const { return stats_; }

 private:
  void RestoreDevices(const DeviceState& saved);
  void Charge(uint64_t ns) {
    if (clock_ != nullptr) {
      clock_->Advance(ns);
    }
  }

  VmConfig config_;
  GuestMemory mem_;
  DeviceState devices_;
  BlockDevice disk_;

  std::unique_ptr<RootSnapshot> root_;
  std::unique_ptr<IncrementalSnapshot> inc_;
  // True from CreateIncremental until RestoreRoot has reverted the pages the
  // incremental captured. Those pages hold non-root content but left the
  // dirty tracker when the capture re-armed it, so a root restore must
  // revert them even if the incremental was invalidated in between
  // (DropIncremental) — dropping the snapshot does not clean the memory.
  bool inc_base_live_ = false;
  Bytes root_aux_;
  Bytes inc_aux_;
  Bytes current_aux_;

  VmStats stats_;
  VirtualClock* clock_ = nullptr;
  const CostModel* cost_ = nullptr;
};

}  // namespace nyx

#endif  // SRC_VM_VM_H_
