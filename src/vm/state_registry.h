// Snapshot-state inventory: the static half of the snapshot-completeness
// analysis (DESIGN.md §10).
//
// Nyx-Net's correctness rests on one property: a snapshot restore brings
// back *all* mutated state. Guest RAM, device registers and disk sectors are
// restored by the Vm itself; everything else — host-side state that is
// logically part of the guest, like the emulated kernel's socket table or
// the bytecode interpreter's resume position — used to ride along in an
// opaque aux blob maintained by hand. State that never made it into the
// blob was not an error anywhere; it was a heisenbug that surfaced as
// irreproducible executions.
//
// The SnapshotStateRegistry turns that convention into an enforced
// inventory. Every piece of mutable host-side state that must survive a
// restore is registered by name with capture/restore hooks; state that is
// legitimately re-initialized on every execution is declared ephemeral
// (optionally with a verify hook asserting the re-initialization actually
// happens). The engine builds its snapshot aux blob *through* the registry,
// so unregistered state cannot be restored even by accident — and the
// DivergenceAuditor (src/fuzz/audit.h) names the owning registration when a
// double-execution comparison finds a mismatch.
//
// Guest memory is covered by named regions (target state struct, heap,
// scratch, ...) so a diverging page is attributed to its owner too; a page
// outside every registered region is reported as UNREGISTERED.
//
// The companion lint rule (`snapshot-state` in src/tools/nyx_lint.cc) flags
// mutable statics in the snapshot-relevant directories that carry neither
// annotation, making an unregistered global a CI failure instead of a
// debugging session.

#ifndef SRC_VM_STATE_REGISTRY_H_
#define SRC_VM_STATE_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/bytes.h"

namespace nyx {

// Source annotations for mutable statics in snapshot-relevant directories.
// They expand to nothing at runtime — their job is to force the author to
// answer "who restores this?" at the declaration site, where nyx_lint's
// `snapshot-state` rule checks for one of the two:
//
//   NYX_SNAPSHOT_STATE("netemu.socket_table");   // registered with hooks
//   static std::vector<Sock> g_sockets;
//
//   NYX_EXEC_EPHEMERAL("guest.fault_jmp");       // re-armed every exec
//   thread_local sigjmp_buf t_step_jmp;
//
// A NYX_SNAPSHOT_STATE annotation must be backed by a matching
// RegisterHostState() call; NYX_EXEC_EPHEMERAL optionally by
// DeclareEphemeral() with a verify hook the auditor runs.
#define NYX_SNAPSHOT_STATE(name) \
  static_assert(sizeof(name) > 1, "snapshot state must be named")
#define NYX_EXEC_EPHEMERAL(name) \
  static_assert(sizeof(name) > 1, "ephemeral state must be named")

class SnapshotStateRegistry {
 public:
  enum class Kind : uint8_t {
    kSnapshot,   // captured into / restored from every snapshot
    kEphemeral,  // re-initialized each exec; never part of a snapshot
  };

  struct HostState {
    std::string name;   // stable identifier, e.g. "netemu.socket_table"
    std::string owner;  // owning component/file, for reports
    Kind kind = Kind::kSnapshot;
    // kSnapshot: both hooks required. Restore returns false on a blob it
    // cannot parse (treated as snapshot corruption by the caller).
    std::function<Bytes()> capture;
    std::function<bool(const Bytes&)> restore;
    // kEphemeral: optional invariant checked by the auditor between
    // executions ("is this really back to its initial state?").
    std::function<bool()> verify;
  };

  struct GuestRegion {
    std::string name;
    uint64_t base = 0;
    uint64_t size = 0;
  };

  // Registers host-side snapshot state. Names must be unique; kSnapshot
  // entries must carry capture and restore hooks. Aborts on violation —
  // a bad registration is a build bug, not an input problem.
  void RegisterHostState(HostState state);

  // Declares per-exec ephemeral host state (no hooks needed beyond the
  // optional verify invariant).
  void DeclareEphemeral(std::string name, std::string owner,
                        std::function<bool()> verify = nullptr);

  // Names a guest-physical range so diverging pages can be attributed.
  // Regions may not overlap.
  void RegisterGuestRegion(std::string name, uint64_t base, uint64_t size);

  // Name of the registered region containing guest byte `offset`, or
  // kUnregistered if no region covers it.
  static constexpr const char* kUnregistered = "UNREGISTERED";
  const std::string& GuestOwner(uint64_t offset) const;

  // ---- Snapshot aux-blob support ----

  // Captures every kSnapshot entry into one framed blob (registration
  // order). The engine stores this as the snapshot's aux blob.
  Bytes CaptureAll();

  // Restores every entry found in `blob` by name. False on framing errors,
  // unknown names, missing entries or a restore hook rejecting its blob.
  bool RestoreAll(const Bytes& blob);

  // Per-entry FNV hashes of a captured blob, for divergence attribution
  // without retaining full copies.
  static std::vector<std::pair<std::string, uint64_t>> EntryHashes(const Bytes& blob);

  // Runs every ephemeral verify hook; returns the names that failed.
  std::vector<std::string> CheckEphemeral() const;

  const std::vector<HostState>& host_states() const { return host_states_; }
  const std::vector<GuestRegion>& guest_regions() const { return guest_regions_; }
  size_t snapshot_state_count() const;

 private:
  std::vector<HostState> host_states_;
  std::vector<GuestRegion> guest_regions_;
};

}  // namespace nyx

#endif  // SRC_VM_STATE_REGISTRY_H_
