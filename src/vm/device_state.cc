#include "src/vm/device_state.h"

#include <cstring>

namespace nyx {

namespace {
constexpr uint32_t kSectionMagic = 0x51454d55;  // "QEMU"
}

size_t DeviceState::AddDevice(std::string name, size_t reg_bytes) {
  devices_.push_back(Device{std::move(name), Bytes(reg_bytes, 0)});
  return devices_.size() - 1;
}

size_t DeviceState::total_bytes() const {
  size_t n = 0;
  for (const auto& d : devices_) {
    n += d.regs.size();
  }
  return n;
}

void DeviceState::CopyFrom(const DeviceState& other) {
  for (size_t i = 0; i < devices_.size(); i++) {
    memcpy(devices_[i].regs.data(), other.devices_[i].regs.data(), devices_[i].regs.size());
  }
}

Bytes DeviceState::Serialize() const {
  Bytes out;
  PutLe32(out, kSectionMagic);
  PutLe32(out, static_cast<uint32_t>(devices_.size()));
  for (const auto& d : devices_) {
    PutLe32(out, static_cast<uint32_t>(d.name.size()));
    Append(out, d.name);
    PutLe32(out, static_cast<uint32_t>(d.regs.size()));
    // Field-at-a-time emission with per-field tags, mimicking vmstate's
    // walk over field descriptors.
    for (size_t i = 0; i < d.regs.size(); i++) {
      out.push_back(static_cast<uint8_t>(i & 0x7f));
      out.push_back(d.regs[i]);
    }
  }
  return out;
}

bool DeviceState::Deserialize(const Bytes& blob) {
  size_t off = 0;
  if (ReadLe32(blob, off) != kSectionMagic) {
    return false;
  }
  off += 4;
  const uint32_t count = ReadLe32(blob, off);
  off += 4;
  if (count != devices_.size()) {
    return false;
  }
  for (auto& d : devices_) {
    const uint32_t name_len = ReadLe32(blob, off);
    off += 4;
    if (off + name_len > blob.size() ||
        std::string(blob.begin() + static_cast<long>(off),
                    blob.begin() + static_cast<long>(off + name_len)) != d.name) {
      return false;
    }
    off += name_len;
    const uint32_t reg_len = ReadLe32(blob, off);
    off += 4;
    if (reg_len != d.regs.size() || off + 2ul * reg_len > blob.size()) {
      return false;
    }
    for (size_t i = 0; i < reg_len; i++) {
      if (blob[off] != static_cast<uint8_t>(i & 0x7f)) {
        return false;
      }
      d.regs[i] = blob[off + 1];
      off += 2;
    }
  }
  return off == blob.size();
}

bool DeviceState::operator==(const DeviceState& other) const {
  if (devices_.size() != other.devices_.size()) {
    return false;
  }
  for (size_t i = 0; i < devices_.size(); i++) {
    if (devices_[i].name != other.devices_[i].name ||
        devices_[i].regs != other.devices_[i].regs) {
      return false;
    }
  }
  return true;
}

}  // namespace nyx
