// Pluggable dirty-page tracking backends (DESIGN.md §12).
//
// The paper's dirty logging rides on KVM's hardware-assisted write
// protection; in userspace there is more than one way to get the same
// signal, with very different cost profiles:
//
//   kMprotect   write-protect the region and catch the first write per page
//               as a SIGSEGV (2 syscalls + 1 signal per first write). The
//               default: works everywhere, cost is O(#dirty).
//   kUffd       userfaultfd write-protect mode: faults are delivered as
//               messages on a file descriptor and resolved by a monitor
//               thread (1 range ioctl per re-arm instead of per-page
//               mprotect; no SIGSEGV plumbing on the hot path).
//   kSoftDirty  passive harvesting of the kernel's soft-dirty PTE bits via
//               /proc/self/pagemap: writes run at full speed with *zero*
//               per-write cost; the dirty set is read back with one pagemap
//               scan per sync (O(#pages) read, no faults at all).
//   kSoftware   no hardware tracking: dirty marks come only from the
//               explicit GuestMemory::Write()/Memset() accessors (unit
//               tests of tracker logic).
//
// Every backend feeds the same preallocated DirtyTracker stack, so snapshot
// capture/restore code is backend-agnostic and Clear() stays O(#dirty).
// Backends that need kernel features probe for them in Attach(); when the
// kernel says no, CreateDirtyBackend falls back to mprotect and warns once
// per mode per process.

#ifndef SRC_VM_DIRTY_BACKEND_H_
#define SRC_VM_DIRTY_BACKEND_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "src/vm/dirty_tracker.h"

namespace nyx {

enum class TrackingMode {
  kMprotect,   // write-protection faults via SIGSEGV (default)
  kSoftware,   // dirty marks only via the explicit accessors
  kUffd,       // userfaultfd write-protect faults, monitor-thread resolved
  kSoftDirty,  // passive /proc/self/pagemap soft-dirty harvesting
};

// Stable lowercase name ("mprotect", "software", "uffd", "softdirty").
const char* TrackingModeName(TrackingMode mode);
// Parses a mode name (as accepted by NYX_TRACKER); `def` on empty/unknown.
TrackingMode TrackingModeFromName(const std::string& name, TrackingMode def);
// Reads NYX_TRACKER; `def` when unset. This is the only place the knob is
// resolved — bare GuestMemory construction keeps its compile-time default so
// unit tests of one specific backend are immune to the environment.
TrackingMode TrackingModeFromEnv(TrackingMode def);

// The sanctioned raw mprotect wrapper for *non-tracking* protection changes
// (guard pages, sealing read-only snapshot views). The nyx_lint
// `raw-mprotect` rule bans direct mprotect calls outside this file so no
// page-protection change can bypass the backend layer. Aborts on failure.
void RawProtect(void* addr, size_t len, int prot);

// One backend instance tracks one GuestMemory region. All methods except the
// internals of fault delivery run on the region's owning thread.
//
// Contract with GuestMemory (the only caller):
//  * Attach() is called once, before any other method. It probes for kernel
//    support and returns false when this backend cannot run here; the
//    factory then falls back. After a false return the object is destroyed
//    without further calls.
//  * Arm() write-protects (or begins logging for) the whole region. The
//    caller clears the tracker; the backend resets any internal log.
//  * Disarm() makes the whole region writable and stops logging.
//  * Sync() drains backend-internal dirty state into the tracker. Callers
//    must Sync() before reading the tracker and before ReArmPages() whenever
//    needs_sync() is true (passive backends have no other way to publish).
//  * OpenPages(pages, n) makes still-protected pages writable *without*
//    marking them dirty — the restore path writes root/ancestor content
//    through this window. No-op for backends whose pages are always
//    writable.
//  * ReArmPages(pages, n) re-protects exactly `pages` (the union of dirty
//    and opened pages; everything else is still protected). The caller
//    clears the tracker afterwards. Passive backends reset their whole log
//    here instead.
//  * HandleFault(addr) resolves a SIGSEGV at addr if it was a tracking
//    fault (mprotect backend only; async-signal-safe).
class DirtyBackend {
 public:
  DirtyBackend(uint8_t* base, size_t num_pages, DirtyTracker* tracker,
               std::atomic<uint64_t>* protect_calls)
      : base_(base), num_pages_(num_pages), tracker_(tracker), protect_calls_(protect_calls) {}
  virtual ~DirtyBackend() = default;

  DirtyBackend(const DirtyBackend&) = delete;
  DirtyBackend& operator=(const DirtyBackend&) = delete;

  virtual bool Attach() = 0;
  virtual void Arm() = 0;
  virtual void Disarm() = 0;
  virtual void Sync() {}
  virtual bool needs_sync() const { return false; }
  virtual void OpenPages(const uint32_t* pages, size_t n) {
    (void)pages;
    (void)n;
  }
  virtual void ReArmPages(const uint32_t* pages, size_t n) = 0;
  virtual bool HandleFault(uintptr_t addr) {
    (void)addr;
    return false;
  }
  // True when faults are delivered via SIGSEGV and the region must be in the
  // process-wide handler registry (guest_memory.cc).
  virtual bool wants_segv_handler() const { return false; }
  virtual TrackingMode mode() const = 0;
  const char* name() const { return TrackingModeName(mode()); }

 protected:
  uint8_t* base_;
  size_t num_pages_;
  DirtyTracker* tracker_;
  std::atomic<uint64_t>* protect_calls_;
};

// Builds the backend for `requested` over an existing mapping. When the
// requested backend's Attach() probe fails (kernel too old, feature
// disabled, exclusivity lost), returns the mprotect backend instead and
// warns once per requested mode per process. `*effective` receives the mode
// actually running.
std::unique_ptr<DirtyBackend> CreateDirtyBackend(TrackingMode requested, uint8_t* base,
                                                 size_t num_pages, DirtyTracker* tracker,
                                                 std::atomic<uint64_t>* protect_calls,
                                                 TrackingMode* effective);

// True when `mode` can actually run on this kernel (probes with a scratch
// region; mprotect/software are always available). Used by tests and CI to
// decide skip-vs-run without constructing a full VM.
bool TrackingModeAvailable(TrackingMode mode);

}  // namespace nyx

#endif  // SRC_VM_DIRTY_BACKEND_H_
