#include "src/vm/state_registry.h"

#include "src/common/check.h"
#include "src/common/hash.h"

namespace nyx {

namespace {

constexpr uint32_t kBlobMagic = 0x53535231;  // "SSR1"

// Shared framing walk for RestoreAll / EntryHashes: calls `fn(name, blob)`
// for every entry; returns false on framing errors.
template <typename Fn>
bool WalkBlob(const Bytes& blob, Fn fn) {
  size_t off = 0;
  if (ReadLe32(blob, off) != kBlobMagic) {
    return false;
  }
  off += 4;
  const uint32_t count = ReadLe32(blob, off);
  off += 4;
  for (uint32_t i = 0; i < count; i++) {
    const uint32_t name_len = ReadLe32(blob, off);
    off += 4;
    if (off + name_len > blob.size()) {
      return false;
    }
    std::string name(blob.begin() + static_cast<long>(off),
                     blob.begin() + static_cast<long>(off + name_len));
    off += name_len;
    const uint32_t data_len = ReadLe32(blob, off);
    off += 4;
    if (off + data_len > blob.size()) {
      return false;
    }
    Bytes data(blob.begin() + static_cast<long>(off),
               blob.begin() + static_cast<long>(off + data_len));
    off += data_len;
    if (!fn(name, data)) {
      return false;
    }
  }
  return off == blob.size();
}

}  // namespace

void SnapshotStateRegistry::RegisterHostState(HostState state) {
  NYX_CHECK(!state.name.empty()) << "snapshot state must be named";
  if (state.kind == Kind::kSnapshot) {
    NYX_CHECK(state.capture != nullptr && state.restore != nullptr)
        << "snapshot state '" << state.name << "' needs capture and restore hooks";
  }
  for (const HostState& existing : host_states_) {
    NYX_CHECK(existing.name != state.name)
        << "duplicate snapshot state registration '" << state.name << "'";
  }
  host_states_.push_back(std::move(state));
}

void SnapshotStateRegistry::DeclareEphemeral(std::string name, std::string owner,
                                             std::function<bool()> verify) {
  HostState st;
  st.name = std::move(name);
  st.owner = std::move(owner);
  st.kind = Kind::kEphemeral;
  st.verify = std::move(verify);
  RegisterHostState(std::move(st));
}

void SnapshotStateRegistry::RegisterGuestRegion(std::string name, uint64_t base, uint64_t size) {
  NYX_CHECK(!name.empty() && size > 0) << "guest region must be named and non-empty";
  for (const GuestRegion& r : guest_regions_) {
    const bool disjoint = base + size <= r.base || r.base + r.size <= base;
    NYX_CHECK(disjoint) << "guest region '" << name << "' overlaps '" << r.name << "'";
  }
  guest_regions_.push_back(GuestRegion{std::move(name), base, size});
}

const std::string& SnapshotStateRegistry::GuestOwner(uint64_t offset) const {
  for (const GuestRegion& r : guest_regions_) {
    if (offset >= r.base && offset < r.base + r.size) {
      return r.name;
    }
  }
  static const std::string kNone = kUnregistered;
  return kNone;
}

size_t SnapshotStateRegistry::snapshot_state_count() const {
  size_t n = 0;
  for (const HostState& st : host_states_) {
    n += st.kind == Kind::kSnapshot ? 1 : 0;
  }
  return n;
}

Bytes SnapshotStateRegistry::CaptureAll() {
  Bytes out;
  PutLe32(out, kBlobMagic);
  PutLe32(out, static_cast<uint32_t>(snapshot_state_count()));
  for (const HostState& st : host_states_) {
    if (st.kind != Kind::kSnapshot) {
      continue;
    }
    PutLe32(out, static_cast<uint32_t>(st.name.size()));
    Append(out, st.name);
    const Bytes data = st.capture();
    PutLe32(out, static_cast<uint32_t>(data.size()));
    Append(out, data);
  }
  return out;
}

bool SnapshotStateRegistry::RestoreAll(const Bytes& blob) {
  size_t restored = 0;
  const bool ok = WalkBlob(blob, [&](const std::string& name, const Bytes& data) {
    for (const HostState& st : host_states_) {
      if (st.name == name) {
        if (st.kind != Kind::kSnapshot || !st.restore(data)) {
          return false;
        }
        restored++;
        return true;
      }
    }
    return false;  // unknown name: blob from a different registration set
  });
  // Every registered entry must be present — a missing entry means the blob
  // predates a registration and restoring it would leave that state stale.
  return ok && restored == snapshot_state_count();
}

std::vector<std::pair<std::string, uint64_t>> SnapshotStateRegistry::EntryHashes(
    const Bytes& blob) {
  std::vector<std::pair<std::string, uint64_t>> out;
  WalkBlob(blob, [&](const std::string& name, const Bytes& data) {
    out.emplace_back(name, Fnv1a64(data));
    return true;
  });
  return out;
}

std::vector<std::string> SnapshotStateRegistry::CheckEphemeral() const {
  std::vector<std::string> failed;
  for (const HostState& st : host_states_) {
    if (st.kind == Kind::kEphemeral && st.verify != nullptr && !st.verify()) {
      failed.push_back(st.name);
    }
  }
  return failed;
}

}  // namespace nyx
