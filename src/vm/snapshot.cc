#include "src/vm/snapshot.h"

#include <string.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>

#ifndef MFD_CLOEXEC
#include <sys/syscall.h>
#endif

#include "src/common/check.h"

namespace nyx {

RootSnapshot::RootSnapshot(const GuestMemory& mem, const DeviceState& devices,
                           const BlockDevice& disk)
    : size_bytes_(mem.size_bytes()), devices_(devices), disk_(disk.CaptureRoot()) {
  memfd_ = memfd_create("nyx-root-snapshot", MFD_CLOEXEC);
  if (memfd_ < 0) {
    perror("memfd_create");
    abort();
  }
  if (ftruncate(memfd_, static_cast<off_t>(size_bytes_)) != 0) {
    perror("ftruncate");
    abort();
  }
  void* w = mmap(nullptr, size_bytes_, PROT_READ | PROT_WRITE, MAP_SHARED, memfd_, 0);
  if (w == MAP_FAILED) {
    perror("mmap root snapshot");
    abort();
  }
  memcpy(w, mem.base(), size_bytes_);
  // Keep a read-only view for restores; drop the writable one. Sealing the
  // view is not dirty tracking, so it goes through the sanctioned raw call.
  RawProtect(w, size_bytes_, PROT_READ);
  view_ = static_cast<const uint8_t*>(w);
}

RootSnapshot::~RootSnapshot() {
  if (view_ != nullptr) {
    munmap(const_cast<uint8_t*>(view_), size_bytes_);
  }
  if (memfd_ >= 0) {
    close(memfd_);
  }
}

IncrementalSnapshot::IncrementalSnapshot(const RootSnapshot& root)
    : root_(root),
      size_bytes_(root.size_bytes()),
      in_delta_(root.size_bytes() / kPageSize, 0),
      in_mirror_(root.size_bytes() / kPageSize, 0),
      devices_(root.devices()) {
  void* m = mmap(nullptr, size_bytes_, PROT_READ | PROT_WRITE, MAP_PRIVATE, root.memfd(), 0);
  if (m == MAP_FAILED) {
    perror("mmap incremental mirror");
    abort();
  }
  mirror_ = static_cast<uint8_t*>(m);
}

IncrementalSnapshot::~IncrementalSnapshot() {
  if (mirror_ != nullptr) {
    munmap(mirror_, size_bytes_);
  }
}

void IncrementalSnapshot::ReMirror() {
  munmap(mirror_, size_bytes_);
  void* m = mmap(nullptr, size_bytes_, PROT_READ | PROT_WRITE, MAP_PRIVATE, root_.memfd(), 0);
  if (m == MAP_FAILED) {
    perror("mmap re-mirror");
    abort();
  }
  mirror_ = static_cast<uint8_t*>(m);
  // base_pages_ is rebuilt by the caller right after a re-mirror; any other
  // private copies are gone with the old mapping, so the whole flag vector
  // resets.
  for (auto& flag : in_mirror_) {
    flag = 0;
  }
  private_page_count_ = 0;
  remirrors_++;
}

void IncrementalSnapshot::Capture(const GuestMemory& mem, const DeviceState& devices,
                                  const BlockDevice& disk) {
  captures_++;
  // The previous capture's delta membership is void either way below.
  for (uint32_t p : base_pages_) {
    in_delta_[p] = 0;
  }
  if (captures_ % kReMirrorInterval == 0) {
    ReMirror();
    base_pages_.clear();
  }

  const std::span<const uint32_t> dirty = mem.tracker().dirty();

  // Revert pages captured previously but not dirtied this time: overwrite the
  // (already private) mirror page with root content. Reusing the existing
  // private copy avoids a page-table change.
  if (!base_pages_.empty()) {
    // Membership mask for the new dirty set.
    for (uint32_t p : dirty) {
      in_mirror_[p] |= 2;
    }
    for (uint32_t p : base_pages_) {
      if ((in_mirror_[p] & 2) == 0 && (in_mirror_[p] & 1) != 0) {
        memcpy(mirror_ + static_cast<size_t>(p) * kPageSize, root_.PagePtr(p), kPageSize);
      }
    }
    for (uint32_t p : dirty) {
      in_mirror_[p] &= 1;
    }
  }

  base_pages_.assign(dirty.begin(), dirty.end());
  for (const uint32_t p : dirty) {
    NYX_DCHECK_LT(static_cast<size_t>(p), in_mirror_.size());
    in_delta_[p] = 1;
    if ((in_mirror_[p] & 1) == 0) {
      in_mirror_[p] |= 1;
      private_page_count_++;
    }
    memcpy(mirror_ + static_cast<size_t>(p) * kPageSize,
           mem.base() + static_cast<size_t>(p) * kPageSize, kPageSize);
  }

  devices_.CopyFrom(devices);
  disk_ = disk.CaptureIncremental();
  valid_ = true;
}

}  // namespace nyx
