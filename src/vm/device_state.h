// Emulated device state.
//
// QEMU keeps per-device register/queue state outside guest RAM; a snapshot
// must capture and restore it alongside memory. The paper notes that Nyx
// "implements a custom reset mechanism for the state of emulated devices that
// is much faster than QEMU's native device serialization/deserialization
// routine". We model both paths: a fast flat-copy reset, and a deliberately
// faithful serialize/parse round trip (per-field framing, validation) whose
// cost difference is measured by bench/ablation_snapshots.

#ifndef SRC_VM_DEVICE_STATE_H_
#define SRC_VM_DEVICE_STATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/bytes.h"

namespace nyx {

class DeviceState {
 public:
  // Registers a device with `reg_bytes` of register file. Returns its index.
  size_t AddDevice(std::string name, size_t reg_bytes);

  size_t device_count() const { return devices_.size(); }
  Bytes& regs(size_t device_index) { return devices_[device_index].regs; }
  const Bytes& regs(size_t device_index) const { return devices_[device_index].regs; }
  const std::string& name(size_t device_index) const { return devices_[device_index].name; }

  size_t total_bytes() const;

  // Fast path: raw copy of all register files (layouts must match).
  void CopyFrom(const DeviceState& other);

  // Slow path: QEMU-style serialization with section headers, field tags and
  // length checks.
  Bytes Serialize() const;
  bool Deserialize(const Bytes& blob);

  bool operator==(const DeviceState& other) const;

 private:
  struct Device {
    std::string name;
    Bytes regs;
  };
  std::vector<Device> devices_;
};

}  // namespace nyx

#endif  // SRC_VM_DEVICE_STATE_H_
