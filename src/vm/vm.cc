#include "src/vm/vm.h"

#include <string.h>
#include <sys/mman.h>

#include "src/common/check.h"
#include "src/common/telemetry.h"

namespace nyx {

Vm::Vm(const VmConfig& config)
    : config_(config), mem_(config.mem_pages, config.tracking), disk_(config.disk_sectors) {
  // A small standard device complement; targets may add more before the root
  // snapshot is taken.
  devices_.AddDevice("serial", 64);
  devices_.AddDevice("rtc", 32);
  devices_.AddDevice("virtio-net", 512);
  devices_.AddDevice("virtio-blk", 256);
}

void Vm::TakeRootSnapshot(Bytes aux) {
  root_ = std::make_unique<RootSnapshot>(mem_, devices_, disk_);
  root_aux_ = std::move(aux);
  current_aux_ = root_aux_;
  inc_.reset();
  inc_base_live_ = false;
  disk_.ClearDirty();
  mem_.ArmTracking();
}

void Vm::RestoreDevices(const DeviceState& saved) {
  if (config_.fast_device_reset) {
    devices_.CopyFrom(saved);
    Charge(cost_ != nullptr ? cost_->device_reset_fast_ns : 0);
  } else {
    // QEMU-style: serialize the saved state and parse it back field by field.
    Bytes blob = saved.Serialize();
    NYX_CHECK(devices_.Deserialize(blob)) << "device state failed to round-trip";
    Charge(cost_ != nullptr ? cost_->device_reset_slow_ns : 0);
  }
}

void Vm::RestoreRoot() {
  NYX_CHECK(root_ != nullptr) << "RestoreRoot before TakeRootSnapshot";
  // Page copies and re-arming are the dirty-reset cost the paper's stack
  // optimization targets; the scope nests inside the engine's
  // snapshot-restore phase, so self-time splits them cleanly.
  telemetry::ScopedPhase phase(telemetry::Phase::kDirtyReset);
  const uint32_t* stack = mem_.tracker().stack_data();
  const size_t n = mem_.tracker().stack_size();
  uint64_t restored = 0;

  // Pages captured by the incremental snapshot are dirty relative to root but
  // are no longer in the tracker (it was cleared when the incremental
  // snapshot was created); revert them first. Keyed on inc_base_live_, NOT
  // has_incremental(): DropIncremental invalidates the snapshot without
  // cleaning guest memory, and the stale pages still need reverting here.
  // (Found by the divergence auditor: replays of post-drop executions
  // started from different guest state than the original run.)
  if (inc_ != nullptr && inc_base_live_) {
    for (uint32_t p : inc_->base_pages()) {
      if (!mem_.tracker().IsDirty(p)) {
        // These pages were re-protected when the incremental snapshot was
        // taken; toggle protection around the copy without polluting the
        // dirty log.
        uint8_t* dst = mem_.base() + static_cast<size_t>(p) * kPageSize;
        if (mem_.mode() == TrackingMode::kMprotect) {
          mprotect(dst, kPageSize, PROT_READ | PROT_WRITE);
        }
        memcpy(dst, root_->PagePtr(p), kPageSize);
        if (mem_.mode() == TrackingMode::kMprotect) {
          mprotect(dst, kPageSize, PROT_READ);
        }
        restored++;
      }
    }
  }

  for (size_t i = 0; i < n; i++) {
    const uint32_t p = stack[i];
    memcpy(mem_.base() + static_cast<size_t>(p) * kPageSize, root_->PagePtr(p), kPageSize);
    restored++;
  }
  mem_.ReArmDirtyPages();
  inc_base_live_ = false;  // memory is exactly root again

  // The incremental snapshot describes a state we just discarded.
  if (inc_ != nullptr) {
    inc_->Invalidate();
  }

  disk_.RestoreFromRoot(root_->disk());
  RestoreDevices(root_->devices());
  current_aux_ = root_aux_;

  stats_.root_restores++;
  stats_.pages_restored += restored;
  if (cost_ != nullptr) {
    Charge(cost_->snapshot_restore_fixed_ns + restored * cost_->snapshot_page_copy_ns);
  }
}

void Vm::CreateIncremental(Bytes aux) {
  telemetry::ScopedPhase phase(telemetry::Phase::kDirtyReset);
  if (inc_ == nullptr) {
    inc_ = std::make_unique<IncrementalSnapshot>(*root_);
  }
  const size_t dirty = mem_.tracker().stack_size();
  inc_->Capture(mem_, devices_, disk_);
  mem_.ReArmDirtyPages();
  inc_base_live_ = true;
  inc_aux_ = std::move(aux);
  current_aux_ = inc_aux_;

  stats_.incremental_creates++;
  stats_.pages_captured += dirty;
  if (cost_ != nullptr) {
    Charge(dirty * cost_->incremental_create_page_ns + cost_->device_reset_fast_ns);
  }
}

void Vm::RestoreIncremental() {
  NYX_CHECK(has_incremental()) << "RestoreIncremental without a valid incremental snapshot";
  telemetry::ScopedPhase phase(telemetry::Phase::kDirtyReset);
  const uint32_t* stack = mem_.tracker().stack_data();
  const size_t n = mem_.tracker().stack_size();
  // The mirror is a complete image of the VM at capture time (CoW of the
  // root plus the overwritten dirty pages), so there is no per-page decision
  // about which snapshot to read from.
  for (size_t i = 0; i < n; i++) {
    const uint32_t p = stack[i];
    memcpy(mem_.base() + static_cast<size_t>(p) * kPageSize, inc_->PagePtr(p), kPageSize);
  }
  mem_.ReArmDirtyPages();

  disk_.RestoreFromIncremental(inc_->disk(), root_->disk());
  RestoreDevices(inc_->devices());
  current_aux_ = inc_aux_;

  stats_.incremental_restores++;
  stats_.pages_restored += n;
  if (cost_ != nullptr) {
    Charge(cost_->snapshot_restore_fixed_ns + n * cost_->snapshot_page_copy_ns);
  }
}

void Vm::DropIncremental() {
  if (inc_ != nullptr) {
    inc_->Invalidate();
  }
}

}  // namespace nyx
