#include "src/vm/vm.h"

#include <string.h>

#include "src/common/check.h"
#include "src/common/telemetry.h"

namespace nyx {

Vm::Vm(const VmConfig& config)
    : config_(config),
      mem_(config.mem_pages, config.tracking, config.dirty_ring_capacity),
      disk_(config.disk_sectors),
      visited_(config.mem_pages, 0),
      revert_(config.mem_pages, 0) {
  // A small standard device complement; targets may add more before the root
  // snapshot is taken.
  devices_.AddDevice("serial", 64);
  devices_.AddDevice("rtc", 32);
  devices_.AddDevice("virtio-net", 512);
  devices_.AddDevice("virtio-blk", 256);
}

void Vm::TakeRootSnapshot(Bytes aux) {
  root_ = std::make_unique<RootSnapshot>(mem_, devices_, disk_);
  root_aux_ = std::move(aux);
  current_aux_ = root_aux_;
  // Old mirrors map the previous root's memfd; the whole tree goes away.
  slots_.clear();
  cur_depth_ = 0;
  disk_.ClearDirty();
  mem_.ArmTracking();
}

void Vm::RestoreDevices(const DeviceState& saved) {
  if (config_.fast_device_reset) {
    devices_.CopyFrom(saved);
    Charge(cost_ != nullptr ? cost_->device_reset_fast_ns : 0);
  } else {
    // QEMU-style: serialize the saved state and parse it back field by field.
    Bytes blob = saved.Serialize();
    NYX_CHECK(devices_.Deserialize(blob)) << "device state failed to round-trip";
    Charge(cost_ != nullptr ? cost_->device_reset_slow_ns : 0);
  }
}

size_t Vm::max_valid_depth() const {
  // Validity is a contiguous prefix by construction: pushes invalidate
  // everything deeper, drops and root restores invalidate everything.
  size_t d = 0;
  while (d < slots_.size() && slots_[d].snap != nullptr && slots_[d].snap->valid()) {
    d++;
  }
  return d;
}

const uint8_t* Vm::ResolvePage(size_t depth, uint32_t page) const {
  // Deepest slot at or above `depth` whose delta captured the page wins;
  // pages no slot captured still hold root content at that depth.
  for (size_t e = depth; e >= 1; e--) {
    const auto& snap = slots_[e - 1].snap;
    if (snap != nullptr && snap->has_page(page)) {
      return snap->PagePtr(page);
    }
  }
  return root_->PagePtr(page);
}

void Vm::RestoreTo(size_t depth) {
  NYX_CHECK(root_ != nullptr) << "RestoreTo before TakeRootSnapshot";
  NYX_CHECK(depth == 0 || has_snapshot_at(depth))
      << "RestoreTo(" << depth << ") without a valid snapshot at that depth";
  // Page copies and re-arming are the dirty-reset cost the paper's stack
  // optimization targets; the scope nests inside the engine's
  // snapshot-restore phase, so self-time splits them cleanly.
  telemetry::ScopedPhase phase(telemetry::Phase::kDirtyReset);
  mem_.SyncDirty();

  const size_t lo = depth < cur_depth_ ? depth : cur_depth_;
  const size_t hi = depth < cur_depth_ ? cur_depth_ : depth;

  // Revert set: current dirt plus the deltas of slots (lo, hi] — the
  // unshared suffix between the current state and the target. Deltas of
  // slots <= lo are common ancestry and stay untouched; that is the entire
  // point of the tree. Invalidated slots' deltas still count (memory may
  // hold their content), which is why slots are retained after
  // invalidation. Deduplicated via the preallocated visited bitmap.
  size_t n = 0;
  for (const uint32_t p : mem_.tracker().dirty()) {
    if (visited_[p] == 0) {
      visited_[p] = 1;
      revert_[n++] = p;
    }
  }
  for (size_t e = lo + 1; e <= hi; e++) {
    const auto& snap = slots_[e - 1].snap;
    if (snap == nullptr) {
      continue;
    }
    for (const uint32_t p : snap->base_pages()) {
      if (visited_[p] == 0) {
        visited_[p] = 1;
        revert_[n++] = p;
      }
    }
  }

  // Open still-protected pages once (coalesced), copy, seal once — instead
  // of a protection-toggle pair around every single page copy.
  mem_.OpenForRestore(revert_.data(), n);
  for (size_t i = 0; i < n; i++) {
    const uint32_t p = revert_[i];
    visited_[p] = 0;
    memcpy(mem_.base() + static_cast<size_t>(p) * kPageSize, ResolvePage(depth, p), kPageSize);
  }
  mem_.SealAfterRestore();
  cur_depth_ = depth;

  if (depth == 0) {
    disk_.RestoreFromRoot(root_->disk());
    RestoreDevices(root_->devices());
    current_aux_ = root_aux_;
    stats_.root_restores++;
  } else {
    const TreeSlot& slot = slots_[depth - 1];
    disk_.RestoreFromIncremental(slot.snap->disk(), root_->disk());
    RestoreDevices(slot.snap->devices());
    current_aux_ = slot.aux;
    stats_.incremental_restores++;
    if (depth >= 2) {
      stats_.deep_restores++;
    }
  }

  stats_.pages_restored += n;
  if (cost_ != nullptr) {
    Charge(cost_->snapshot_restore_fixed_ns + n * cost_->snapshot_page_copy_ns);
  }
}

void Vm::RestoreRoot() {
  RestoreTo(0);
  // The scheduled input changed: every slot describes descendants of states
  // just discarded. Invalidation does not clean guest memory — it is root
  // again already — but retained deltas keep later restores correct if a
  // slot is recaptured.
  for (TreeSlot& slot : slots_) {
    if (slot.snap != nullptr) {
      slot.snap->Invalidate();
    }
  }
}

size_t Vm::PushSnapshot(Bytes aux) {
  NYX_CHECK(root_ != nullptr) << "PushSnapshot before TakeRootSnapshot";
  const size_t depth = cur_depth_ + 1;
  NYX_CHECK(depth <= config_.snapshot_depth)
      << "PushSnapshot beyond snapshot_depth " << config_.snapshot_depth;
  telemetry::ScopedPhase phase(telemetry::Phase::kDirtyReset);
  mem_.SyncDirty();

  if (slots_.size() < depth) {
    slots_.resize(depth);
  }
  TreeSlot& slot = slots_[depth - 1];
  if (slot.snap == nullptr) {
    slot.snap = std::make_unique<IncrementalSnapshot>(*root_);
  }
  const size_t dirty = mem_.tracker().stack_size();
  slot.snap->Capture(mem_, devices_, disk_);
  // Deeper slots described descendants of the state this capture replaced.
  for (size_t e = depth; e < slots_.size(); e++) {
    if (slots_[e].snap != nullptr) {
      slots_[e].snap->Invalidate();
    }
  }
  mem_.ReArmDirtyPages();
  cur_depth_ = depth;
  slot.aux = std::move(aux);
  current_aux_ = slot.aux;

  stats_.incremental_creates++;
  stats_.pages_captured += dirty;
  if (cost_ != nullptr) {
    Charge(dirty * cost_->incremental_create_page_ns + cost_->device_reset_fast_ns);
  }
  return depth;
}

void Vm::CreateIncremental(Bytes aux) {
  NYX_CHECK(cur_depth_ == 0)
      << "CreateIncremental away from the root state; use PushSnapshot for deeper captures";
  PushSnapshot(std::move(aux));
}

void Vm::DropIncremental() {
  for (TreeSlot& slot : slots_) {
    if (slot.snap != nullptr) {
      slot.snap->Invalidate();
    }
  }
}

}  // namespace nyx
