// Root and incremental VM snapshots (paper sections 2.3 and 4.2).
//
// Root snapshot: a full copy of guest physical memory into a memfd, plus
// device and disk state. Restoring copies back only the pages named by the
// dirty stack.
//
// Incremental snapshot: "we simply remap the existing root snapshot to a
// second location as Copy-On-Write pages. This way, the incremental snapshot
// itself looks like a complete root snapshot without incurring anywhere near
// the full memory cost. To create the incremental snapshot, the pages that
// were dirtied by the execution since the root snapshot are overwritten with
// the content of the VM's physical memory."
//
// We implement this literally: the mirror is an mmap(MAP_PRIVATE) of the
// root memfd; writing a dirtied page into the mirror triggers a kernel CoW
// fault that creates a private copy of just that page. Pages captured by a
// previous incremental snapshot but absent from the next one are reverted by
// copying the root content over the (already private) mirror page — reusing
// the existing copy "avoids more expensive changes to the page tables". To
// bound the accumulation of private pages (worst case: a full second copy of
// the VM), the mirror is re-mapped fresh every kReMirrorInterval creations.

#ifndef SRC_VM_SNAPSHOT_H_
#define SRC_VM_SNAPSHOT_H_

#include <cstdint>
#include <vector>

#include "src/vm/block_device.h"
#include "src/vm/device_state.h"
#include "src/vm/guest_memory.h"

namespace nyx {

inline constexpr uint64_t kReMirrorInterval = 2000;

class RootSnapshot {
 public:
  RootSnapshot(const GuestMemory& mem, const DeviceState& devices, const BlockDevice& disk);
  ~RootSnapshot();

  RootSnapshot(const RootSnapshot&) = delete;
  RootSnapshot& operator=(const RootSnapshot&) = delete;

  const uint8_t* PagePtr(uint32_t page) const {
    return view_ + static_cast<size_t>(page) * kPageSize;
  }
  int memfd() const { return memfd_; }
  size_t size_bytes() const { return size_bytes_; }

  const DeviceState& devices() const { return devices_; }
  const BlockDevice::RootLayer& disk() const { return disk_; }

 private:
  int memfd_ = -1;
  size_t size_bytes_ = 0;
  const uint8_t* view_ = nullptr;  // read-only shared mapping of the memfd
  DeviceState devices_;
  BlockDevice::RootLayer disk_;
};

class IncrementalSnapshot {
 public:
  explicit IncrementalSnapshot(const RootSnapshot& root);
  ~IncrementalSnapshot();

  IncrementalSnapshot(const IncrementalSnapshot&) = delete;
  IncrementalSnapshot& operator=(const IncrementalSnapshot&) = delete;

  // Captures the current VM state: pages in `mem`'s dirty stack are written
  // into the CoW mirror; device and disk state are copied. May be called
  // repeatedly — prior captures are reverted as needed.
  void Capture(const GuestMemory& mem, const DeviceState& devices, const BlockDevice& disk);

  bool valid() const { return valid_; }
  void Invalidate() { valid_ = false; }

  // Pages dirtied between the parent snapshot and this capture (the delta
  // this capture stores). A later restore past this snapshot must revert
  // these in addition to the current dirty stack.
  const std::vector<uint32_t>& base_pages() const { return base_pages_; }

  // True when `page` is in this capture's delta, i.e. PagePtr(page) holds
  // content captured here rather than inherited root content. The snapshot
  // tree's lineage resolution (Vm::RestoreTo) walks ancestors with this.
  bool has_page(uint32_t page) const { return in_delta_[page] != 0; }

  const uint8_t* PagePtr(uint32_t page) const {
    return mirror_ + static_cast<size_t>(page) * kPageSize;
  }

  const DeviceState& devices() const { return devices_; }
  const BlockDevice::IncrementalLayer& disk() const { return disk_; }

  // Accounting for the re-mirror ablation.
  uint64_t captures() const { return captures_; }
  uint64_t remirrors() const { return remirrors_; }
  size_t private_pages() const { return private_page_count_; }

 private:
  void ReMirror();

  const RootSnapshot& root_;
  uint8_t* mirror_ = nullptr;
  size_t size_bytes_ = 0;
  bool valid_ = false;
  std::vector<uint32_t> base_pages_;
  std::vector<uint8_t> in_delta_;   // page -> in base_pages_ of the last capture
  std::vector<uint8_t> in_mirror_;  // page -> has a private copy in the mirror
  size_t private_page_count_ = 0;
  uint64_t captures_ = 0;
  uint64_t remirrors_ = 0;
  DeviceState devices_;
  BlockDevice::IncrementalLayer disk_;
};

}  // namespace nyx

#endif  // SRC_VM_SNAPSHOT_H_
