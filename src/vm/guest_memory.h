// Guest physical memory with hardware-style dirty-page logging.
//
// The paper relies on KVM's hardware-assisted dirty logging: the CPU traps
// the first write to each page and reports it to the hypervisor. We reproduce
// the same mechanism in userspace: guest RAM is an anonymous mmap region that
// is write-protected (PROT_READ) whenever tracking is armed. The first write
// to a page raises SIGSEGV; our handler records the page in the DirtyTracker
// and re-enables writes for that page. Subsequent writes to the page are
// full speed — exactly the cost profile of the hardware mechanism.
//
// A software-tracking mode (explicit Write()/Memset() calls) exists for unit
// tests that want to exercise tracker logic without signals.

#ifndef SRC_VM_GUEST_MEMORY_H_
#define SRC_VM_GUEST_MEMORY_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "src/common/sync.h"
#include "src/vm/dirty_tracker.h"
#include "src/vm/page.h"

namespace nyx {

enum class TrackingMode {
  kMprotect,  // real write-protection faults (default)
  kSoftware,  // dirty marks only via the explicit accessors
};

// Last-resort hook consulted when a SIGSEGV cannot be resolved as a
// dirty-tracking fault (e.g. a target bug walked off guest memory). If the
// hook returns, it must not return control to the faulting instruction —
// implementations siglongjmp back into the execution engine. Returning
// false reinstates the default fatal behaviour.
using UnresolvedFaultHook = bool (*)();
void SetUnresolvedFaultHook(UnresolvedFaultHook hook);

class GuestMemory {
 public:
  GuestMemory(size_t num_pages, TrackingMode mode = TrackingMode::kMprotect);
  ~GuestMemory();

  GuestMemory(const GuestMemory&) = delete;
  GuestMemory& operator=(const GuestMemory&) = delete;

  uint8_t* base() { return base_; }
  const uint8_t* base() const { return base_; }
  size_t size_bytes() const { return num_pages_ * kPageSize; }
  size_t num_pages() const { return num_pages_; }
  TrackingMode mode() const { return mode_; }

  // Write-protects the whole region and clears the dirty set. From this point
  // every first write per page is recorded.
  void ArmTracking();

  // Makes everything writable and stops recording (used during setup).
  void DisarmTracking();

  bool armed() const { return armed_; }

  // Re-protects exactly the currently dirty pages (cheap re-arm used after a
  // snapshot restore: only pages that were made writable need mprotect).
  void ReArmDirtyPages();

  DirtyTracker& tracker() { return tracker_; }
  const DirtyTracker& tracker() const { return tracker_; }

  // Typed view into guest memory. The object must fit inside the region.
  template <typename T>
  T* At(uint64_t guest_offset) {
    return reinterpret_cast<T*>(base_ + guest_offset);
  }

  // Explicit accessors (required in software mode; allowed in both).
  void Write(uint64_t guest_offset, const void* src, size_t len);
  void Read(uint64_t guest_offset, void* dst, size_t len) const;
  void Memset(uint64_t guest_offset, uint8_t value, size_t len);

  // Called by the SIGSEGV handler. Returns true if `addr` was a tracking
  // fault inside this region and has been resolved.
  bool HandleFault(uintptr_t addr);

  bool Contains(uintptr_t addr) const {
    return addr >= reinterpret_cast<uintptr_t>(base_) &&
           addr < reinterpret_cast<uintptr_t>(base_) + size_bytes();
  }

  // mprotect syscalls issued, for the overhead statistics.
  uint64_t protect_calls() const { return protect_calls_.load(std::memory_order_relaxed); }

 private:
  void Protect(uint32_t first_page, size_t count, int prot);

  uint8_t* base_ = nullptr;
  size_t num_pages_;
  TrackingMode mode_;
  bool armed_ = false;
  DirtyTracker tracker_;
  // Atomic because HandleFault bumps it from inside the SIGSEGV handler;
  // a plain field lets the compiler cache reads across the faulting writes.
  std::atomic<uint64_t> protect_calls_{0};
  // A region with mprotect tracking must live its whole life on the thread
  // that constructed it (the SIGSEGV handler only resolves faults for
  // regions owned by the faulting thread — DESIGN.md §8.1). Debug builds
  // check that at every arm/disarm boundary instead of trusting the comment.
  ThreadChecker thread_checker_;
};

}  // namespace nyx

#endif  // SRC_VM_GUEST_MEMORY_H_
