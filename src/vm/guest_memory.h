// Guest physical memory with hardware-style dirty-page logging.
//
// The paper relies on KVM's hardware-assisted dirty logging: the CPU traps
// the first write to each page and reports it to the hypervisor. We
// reproduce the signal in userspace behind a pluggable DirtyBackend
// (src/vm/dirty_backend.h, DESIGN.md §12): write-protection faults
// (mprotect/SIGSEGV or userfaultfd-WP) or passive soft-dirty harvesting.
// Whatever the backend, every first write per page lands in the same
// preallocated DirtyTracker stack, so restore cost stays O(#dirty).
//
// A software-tracking mode (explicit Write()/Memset() calls) exists for unit
// tests that want to exercise tracker logic without kernel machinery.
//
// Restore protocol (used by Vm and the Agamotto manager):
//   SyncDirty();                    // publish passive backends' dirty info
//   <read tracker, decide pages>
//   OpenForRestore(pages, n);       // make protected pages writable,
//   <memcpy snapshot content in>    //   without polluting the dirty log
//   SealAfterRestore();             // re-protect opened+dirty, clear, re-arm
// The old per-page mprotect toggle pair around each copy is gone: opening
// and sealing coalesce runs of pages into single syscalls.

#ifndef SRC_VM_GUEST_MEMORY_H_
#define SRC_VM_GUEST_MEMORY_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "src/common/sync.h"
#include "src/vm/dirty_backend.h"
#include "src/vm/dirty_tracker.h"
#include "src/vm/page.h"

namespace nyx {

// Last-resort hook consulted when a SIGSEGV cannot be resolved as a
// dirty-tracking fault (e.g. a target bug walked off guest memory). If the
// hook returns, it must not return control to the faulting instruction —
// implementations siglongjmp back into the execution engine. Returning
// false reinstates the default fatal behaviour.
using UnresolvedFaultHook = bool (*)();
void SetUnresolvedFaultHook(UnresolvedFaultHook hook);

class GuestMemory {
 public:
  // `mode` is the *requested* backend; when its kernel feature is missing
  // the region falls back to mprotect (one warning per mode per process)
  // and mode() reports what actually runs. The default stays compile-time
  // kMprotect — NYX_TRACKER is resolved only by VmConfig, so unit tests of
  // one specific backend are immune to the environment.
  GuestMemory(size_t num_pages, TrackingMode mode = TrackingMode::kMprotect,
              size_t dirty_ring_capacity = kDirtyRingCapacity);
  ~GuestMemory();

  GuestMemory(const GuestMemory&) = delete;
  GuestMemory& operator=(const GuestMemory&) = delete;

  uint8_t* base() { return base_; }
  const uint8_t* base() const { return base_; }
  size_t size_bytes() const { return num_pages_ * kPageSize; }
  size_t num_pages() const { return num_pages_; }
  // The backend actually running (after any fallback).
  TrackingMode mode() const { return mode_; }
  TrackingMode requested_mode() const { return requested_mode_; }

  // Write-protects the whole region and clears the dirty set. From this point
  // every first write per page is recorded.
  void ArmTracking();

  // Makes everything writable and stops recording (used during setup).
  void DisarmTracking();

  bool armed() const { return armed_; }

  // Drains backend-internal dirty state into the tracker. Required before
  // reading the tracker (and implicitly before Open/Seal/ReArm) for passive
  // backends; a cheap no-op for fault-driven ones.
  void SyncDirty();

  // Makes still-protected pages writable without marking them dirty; the
  // restore path writes snapshot content through this window. Pages already
  // dirty (hence writable) are skipped. May be called repeatedly before the
  // closing SealAfterRestore().
  void OpenForRestore(const uint32_t* pages, size_t n);

  // Re-protects everything OpenForRestore opened plus the currently dirty
  // pages, clears the tracker and re-arms. Completes the restore protocol.
  void SealAfterRestore();

  // Re-protects exactly the currently dirty pages and clears the tracker
  // (cheap re-arm after a capture, when nothing was opened). Callers that
  // read the tracker first must SyncDirty() before this on passive backends.
  void ReArmDirtyPages();

  DirtyTracker& tracker() { return tracker_; }
  const DirtyTracker& tracker() const { return tracker_; }

  // Typed view into guest memory. The object must fit inside the region.
  template <typename T>
  T* At(uint64_t guest_offset) {
    return reinterpret_cast<T*>(base_ + guest_offset);
  }

  // Explicit accessors (required in software mode; allowed in both).
  void Write(uint64_t guest_offset, const void* src, size_t len);
  void Read(uint64_t guest_offset, void* dst, size_t len) const;
  void Memset(uint64_t guest_offset, uint8_t value, size_t len);

  // Called by the SIGSEGV handler. Returns true if `addr` was a tracking
  // fault inside this region and has been resolved.
  bool HandleFault(uintptr_t addr);

  bool Contains(uintptr_t addr) const {
    return addr >= reinterpret_cast<uintptr_t>(base_) &&
           addr < reinterpret_cast<uintptr_t>(base_) + size_bytes();
  }

  // Protection-change syscalls issued (mprotect calls, uffd range ioctls or
  // clear_refs resets depending on the backend), for overhead statistics.
  uint64_t protect_calls() const { return protect_calls_.load(std::memory_order_relaxed); }

 private:
  uint8_t* base_ = nullptr;
  size_t num_pages_;
  TrackingMode requested_mode_;
  TrackingMode mode_;  // effective, after fallback
  bool armed_ = false;
  bool registered_ = false;  // in the SIGSEGV region registry
  DirtyTracker tracker_;
  // Atomic because HandleFault bumps it from inside the SIGSEGV handler;
  // a plain field lets the compiler cache reads across the faulting writes.
  std::atomic<uint64_t> protect_calls_{0};
  std::unique_ptr<DirtyBackend> backend_;
  // Pages opened (made writable while clean) since the last seal,
  // preallocated so restores never allocate.
  std::vector<uint32_t> opened_;
  size_t opened_count_ = 0;
  // A region with fault-driven tracking must live its whole life on the
  // thread that constructed it (the SIGSEGV handler only resolves faults for
  // regions owned by the faulting thread — DESIGN.md §8.1). Debug builds
  // check that at every arm/disarm boundary instead of trusting the comment.
  ThreadChecker thread_checker_;
};

}  // namespace nyx

#endif  // SRC_VM_GUEST_MEMORY_H_
