// Selective network emulation (paper sections 3.3 and 4.1).
//
// Nyx-Net injects an LD_PRELOAD library into the target that hooks ~30 libc
// networking functions. The hooks track which file descriptors belong to the
// external attack surface and serve fuzzer-generated packets directly from
// the input bytecode — no kernel network stack is involved, packet
// boundaries are preserved ("a frightening amount of servers assume that a
// single call to recv() will never return data from more than one packet"),
// and the right place for the root snapshot is found automatically (the
// first time the target would consume attacker data).
//
// This class is the emulated-kernel side of those hooks. Targets call the
// libc-shaped methods below; the fuzzer-facing methods queue connections and
// packets. All state is serializable so it snapshots together with the VM:
// a restore brings back fd tables, queues and stream positions exactly.

#ifndef SRC_NETEMU_NETEMU_H_
#define SRC_NETEMU_NETEMU_H_

#include <cstdint>
#include <deque>
#include <initializer_list>
#include <optional>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/telemetry.h"
#include "src/common/vclock.h"
#include "src/netemu/errno_table.h"
#include "src/spec/fault_plan.h"

namespace nyx {

enum class SockKind : uint8_t {
  kListener,
  kStream,  // TCP / Unix stream: packet-chunked byte stream
  kDgram,   // UDP: datagram boundaries are semantic
};

struct PollRequest {
  int fd = -1;
  bool want_read = false;
  bool want_write = false;
  bool readable = false;
  bool writable = false;
};

class NetEmu {
 public:
  struct Config {
    size_t max_fds = 128;
    size_t max_sockets = 128;
    // Whether a Recv on a stream socket may return at most one queued packet
    // (Nyx-Net behaviour) or coalesces everything available (what a
    // stdin-redirection layer like desock effectively does).
    bool preserve_packet_boundaries = true;
  };

  NetEmu();
  explicit NetEmu(Config config);

  void AttachClock(VirtualClock* clock, const CostModel* cost) {
    clock_ = clock;
    cost_ = cost;
  }

  // ---- Target-facing API (the hooked libc surface) ----

  int Socket(SockKind kind);
  int Bind(int fd, uint16_t port);
  int Listen(int fd, int backlog);
  // Accepts a queued connection; kErrAgain if none pending.
  int Accept(int fd);
  // Outbound connection (client targets): the resulting socket is part of
  // the attack surface — the fuzzer plays the remote server.
  int Connect(int fd, uint16_t port);
  // Packet-boundary-preserving receive; kErrAgain when no data is queued,
  // 0 on orderly peer close.
  int Recv(int fd, void* buf, size_t len);
  int Send(int fd, const void* data, size_t len);
  int Close(int fd);
  int Shutdown(int fd);
  int Dup(int fd);
  int Dup2(int oldfd, int newfd);
  // Simplified poll(): fills readable/writable; returns number of ready fds
  // (0 = would block).
  int Poll(std::vector<PollRequest>& reqs);
  // Minimal epoll emulation.
  int EpollCreate();
  int EpollCtlAdd(int epfd, int fd, bool want_read);
  int EpollCtlDel(int epfd, int fd);
  // Returns ready fds; 0 = would block.
  int EpollWait(int epfd, std::vector<int>& ready_fds);
  // fork() support: duplicates the fd table for a child process id. Sockets
  // are shared (refcounted), so packet consumption stays synchronized across
  // processes — "forking network servers will usually inherit a recently
  // opened socket from the main process".
  int ForkFdTable();
  // Closes every fd owned by `process`.
  void ExitProcess(int process);
  // Switches which process's fd table the libc-shaped calls use.
  void SetCurrentProcess(int process) { current_process_ = process; }
  int current_process() const { return current_process_; }

  // ---- Fuzzer-facing API (driven by the bytecode interpreter) ----

  // Queues a new inbound connection on the listener bound to `port` (or the
  // only listener if port is 0). Returns a connection handle, or -1.
  int QueueConnection(uint16_t port);
  // Finds the bound datagram socket for `port` (0 = any); UDP "connections"
  // deliver straight to it. Returns a connection handle, or -1.
  int FindDgramSocket(uint16_t port) const;
  // Appends one packet to a connection's receive queue. The handle comes
  // from QueueConnection() or from ClientConnections(). Returns true when
  // the bytes entered the emulator (a reset connection accepts-and-drops
  // them into faulted_bytes(), like a kernel dropping onto a dead socket).
  bool DeliverPacket(int conn, Bytes data);
  void PeerClose(int conn);
  // Queues one deterministic fault plan on a connection. Plans are strictly
  // FIFO per socket: the front plan is consulted by the libc-shaped call it
  // applies to and passes through calls it does not (a short-write queued
  // before a short-read simply waits for the next Send). Driven by the
  // NodeSemantic::kFault opcode; see src/spec/fault_plan.h.
  bool QueueFault(int conn, const FaultPlan& plan);
  // Everything the target sent on this connection, packet boundaries as sent.
  const std::vector<Bytes>& Sent(int conn) const;
  // Connection handles created by the target via Connect().
  const std::vector<int>& ClientConnections() const { return client_conns_; }

  // True when the last blocking call (Accept/Recv/Poll/EpollWait) blocked
  // waiting for attack-surface input — the auto-placement point for the root
  // snapshot ("directly before the first byte of input data is passed").
  bool blocked_on_input() const { return blocked_on_input_; }
  // True once the target has consumed at least one attacker-controlled byte.
  bool consumed_input() const { return consumed_input_; }

  // Bytes of fuzz input still queued but never read by the target.
  size_t UndeliveredBytes() const;
  // Bytes dropped by injected faults (connection resets discarding queued
  // packets, deliveries onto reset sockets). Conservation invariant:
  //   consumed + UndeliveredBytes() + faulted_bytes() == delivered.
  uint64_t faulted_bytes() const { return faulted_bytes_; }
  // Total fault applications (per-kind breakdown is in the metric registry
  // under netemu.faults_injected.<kind>).
  uint64_t faults_injected() const { return faults_injected_; }

  // ---- Snapshot support ----
  Bytes Serialize() const;
  bool Deserialize(const Bytes& blob);

  // ---- Introspection ----
  uint64_t calls() const { return calls_; }
  bool ValidConn(int conn) const {
    return conn >= 0 && conn < static_cast<int>(sockets_.size()) && sockets_[conn].live;
  }

 private:
  // One queued fault application: the plan plus how many calls it still
  // fires on (burst countdown). Snapshot-relevant, so it serializes.
  struct FaultEntry {
    FaultPlan plan;
    uint8_t remaining = 0;
  };

  struct Sock {
    bool live = false;
    SockKind kind = SockKind::kStream;
    uint16_t port = 0;
    bool listening = false;
    bool attack_surface = false;
    bool peer_closed = false;
    bool shut_down = false;
    bool reset = false;             // killed by a kConnReset fault
    int refcount = 0;
    std::deque<Bytes> rx;           // queued packets, boundaries preserved
    size_t rx_front_consumed = 0;   // partial read offset into rx.front()
    std::deque<int> pending_accept; // queued connection socket indices
    std::vector<Bytes> tx;
    bool epoll_instance = false;
    std::vector<std::pair<int, bool>> epoll_watch;  // (fd, want_read)
    std::deque<FaultEntry> faults;  // FIFO fault queue (see QueueFault)
  };

  struct FdEntry {
    int sock = -1;       // index into sockets_
    int process = -1;    // owning process id
    bool open = false;
  };

  int AllocSocket();
  int AllocFd(int sock);
  Sock* SockForFd(int fd);
  bool Readable(const Sock& s) const;
  void DropSocketRef(int sock);
  // If the front of the socket's fault queue matches one of `kinds`,
  // consumes one application (pops one-shot kinds whole) and returns the
  // plan; otherwise leaves the queue untouched and returns nullopt.
  std::optional<FaultPlan> TakeFault(Sock& s, std::initializer_list<FaultKind> kinds);
  // kConnReset application: queued-but-unread rx bytes move to
  // faulted_bytes_ and the socket goes dead-to-the-peer.
  void ResetSock(Sock& s);
  void Charge() {
    calls_++;
    if (clock_ != nullptr) {
      clock_->Advance(cost_->emulated_call_ns);
    }
  }

  Config config_;
  std::vector<Sock> sockets_;
  std::vector<FdEntry> fds_;
  std::vector<int> client_conns_;
  int current_process_ = 0;
  int next_process_ = 1;
  bool blocked_on_input_ = false;
  bool consumed_input_ = false;
  uint64_t calls_ = 0;
  // Observational (like calls_): deliberately NOT serialized, so audit
  // fingerprints stay identical across replays that re-apply the faults.
  uint64_t faults_injected_ = 0;
  uint64_t faulted_bytes_ = 0;
  VirtualClock* clock_ = nullptr;
  const CostModel* cost_ = nullptr;
  // Registry counters, resolved once at construction; the per-call overhead
  // is one relaxed fetch_add each.
  telemetry::Counter* conns_queued_counter_;
  telemetry::Counter* packets_counter_;
  telemetry::Counter* bytes_counter_;
  telemetry::Counter* fault_counters_[kFaultKindCount];
};

}  // namespace nyx

#endif  // SRC_NETEMU_NETEMU_H_
