// Selective network emulation (paper sections 3.3 and 4.1).
//
// Nyx-Net injects an LD_PRELOAD library into the target that hooks ~30 libc
// networking functions. The hooks track which file descriptors belong to the
// external attack surface and serve fuzzer-generated packets directly from
// the input bytecode — no kernel network stack is involved, packet
// boundaries are preserved ("a frightening amount of servers assume that a
// single call to recv() will never return data from more than one packet"),
// and the right place for the root snapshot is found automatically (the
// first time the target would consume attacker data).
//
// This class is the emulated-kernel side of those hooks. Targets call the
// libc-shaped methods below; the fuzzer-facing methods queue connections and
// packets. All state is serializable so it snapshots together with the VM:
// a restore brings back fd tables, queues and stream positions exactly.

#ifndef SRC_NETEMU_NETEMU_H_
#define SRC_NETEMU_NETEMU_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/telemetry.h"
#include "src/common/vclock.h"

namespace nyx {

// Errno-style results (negative values, like raw syscalls return).
inline constexpr int kErrAgain = -11;   // EAGAIN: would block
inline constexpr int kErrBadf = -9;     // EBADF: bad file descriptor
inline constexpr int kErrInval = -22;   // EINVAL
inline constexpr int kErrMfile = -24;   // EMFILE: fd table full
inline constexpr int kErrNotConn = -107;

enum class SockKind : uint8_t {
  kListener,
  kStream,  // TCP / Unix stream: packet-chunked byte stream
  kDgram,   // UDP: datagram boundaries are semantic
};

struct PollRequest {
  int fd = -1;
  bool want_read = false;
  bool want_write = false;
  bool readable = false;
  bool writable = false;
};

class NetEmu {
 public:
  struct Config {
    size_t max_fds = 128;
    size_t max_sockets = 128;
    // Whether a Recv on a stream socket may return at most one queued packet
    // (Nyx-Net behaviour) or coalesces everything available (what a
    // stdin-redirection layer like desock effectively does).
    bool preserve_packet_boundaries = true;
  };

  NetEmu();
  explicit NetEmu(Config config);

  void AttachClock(VirtualClock* clock, const CostModel* cost) {
    clock_ = clock;
    cost_ = cost;
  }

  // ---- Target-facing API (the hooked libc surface) ----

  int Socket(SockKind kind);
  int Bind(int fd, uint16_t port);
  int Listen(int fd, int backlog);
  // Accepts a queued connection; kErrAgain if none pending.
  int Accept(int fd);
  // Outbound connection (client targets): the resulting socket is part of
  // the attack surface — the fuzzer plays the remote server.
  int Connect(int fd, uint16_t port);
  // Packet-boundary-preserving receive; kErrAgain when no data is queued,
  // 0 on orderly peer close.
  int Recv(int fd, void* buf, size_t len);
  int Send(int fd, const void* data, size_t len);
  int Close(int fd);
  int Shutdown(int fd);
  int Dup(int fd);
  int Dup2(int oldfd, int newfd);
  // Simplified poll(): fills readable/writable; returns number of ready fds
  // (0 = would block).
  int Poll(std::vector<PollRequest>& reqs);
  // Minimal epoll emulation.
  int EpollCreate();
  int EpollCtlAdd(int epfd, int fd, bool want_read);
  int EpollCtlDel(int epfd, int fd);
  // Returns ready fds; 0 = would block.
  int EpollWait(int epfd, std::vector<int>& ready_fds);
  // fork() support: duplicates the fd table for a child process id. Sockets
  // are shared (refcounted), so packet consumption stays synchronized across
  // processes — "forking network servers will usually inherit a recently
  // opened socket from the main process".
  int ForkFdTable();
  // Closes every fd owned by `process`.
  void ExitProcess(int process);
  // Switches which process's fd table the libc-shaped calls use.
  void SetCurrentProcess(int process) { current_process_ = process; }
  int current_process() const { return current_process_; }

  // ---- Fuzzer-facing API (driven by the bytecode interpreter) ----

  // Queues a new inbound connection on the listener bound to `port` (or the
  // only listener if port is 0). Returns a connection handle, or -1.
  int QueueConnection(uint16_t port);
  // Finds the bound datagram socket for `port` (0 = any); UDP "connections"
  // deliver straight to it. Returns a connection handle, or -1.
  int FindDgramSocket(uint16_t port) const;
  // Appends one packet to a connection's receive queue. The handle comes
  // from QueueConnection() or from ClientConnections().
  bool DeliverPacket(int conn, Bytes data);
  void PeerClose(int conn);
  // Everything the target sent on this connection, packet boundaries as sent.
  const std::vector<Bytes>& Sent(int conn) const;
  // Connection handles created by the target via Connect().
  const std::vector<int>& ClientConnections() const { return client_conns_; }

  // True when the last blocking call (Accept/Recv/Poll/EpollWait) blocked
  // waiting for attack-surface input — the auto-placement point for the root
  // snapshot ("directly before the first byte of input data is passed").
  bool blocked_on_input() const { return blocked_on_input_; }
  // True once the target has consumed at least one attacker-controlled byte.
  bool consumed_input() const { return consumed_input_; }

  // Bytes of fuzz input still queued but never read by the target.
  size_t UndeliveredBytes() const;

  // ---- Snapshot support ----
  Bytes Serialize() const;
  bool Deserialize(const Bytes& blob);

  // ---- Introspection ----
  uint64_t calls() const { return calls_; }
  bool ValidConn(int conn) const {
    return conn >= 0 && conn < static_cast<int>(sockets_.size()) && sockets_[conn].live;
  }

 private:
  struct Sock {
    bool live = false;
    SockKind kind = SockKind::kStream;
    uint16_t port = 0;
    bool listening = false;
    bool attack_surface = false;
    bool peer_closed = false;
    bool shut_down = false;
    int refcount = 0;
    std::deque<Bytes> rx;           // queued packets, boundaries preserved
    size_t rx_front_consumed = 0;   // partial read offset into rx.front()
    std::deque<int> pending_accept; // queued connection socket indices
    std::vector<Bytes> tx;
    bool epoll_instance = false;
    std::vector<std::pair<int, bool>> epoll_watch;  // (fd, want_read)
  };

  struct FdEntry {
    int sock = -1;       // index into sockets_
    int process = -1;    // owning process id
    bool open = false;
  };

  int AllocSocket();
  int AllocFd(int sock);
  Sock* SockForFd(int fd);
  bool Readable(const Sock& s) const;
  void DropSocketRef(int sock);
  void Charge() {
    calls_++;
    if (clock_ != nullptr) {
      clock_->Advance(cost_->emulated_call_ns);
    }
  }

  Config config_;
  std::vector<Sock> sockets_;
  std::vector<FdEntry> fds_;
  std::vector<int> client_conns_;
  int current_process_ = 0;
  int next_process_ = 1;
  bool blocked_on_input_ = false;
  bool consumed_input_ = false;
  uint64_t calls_ = 0;
  VirtualClock* clock_ = nullptr;
  const CostModel* cost_ = nullptr;
  // Registry counters, resolved once at construction; the per-call overhead
  // is one relaxed fetch_add each.
  telemetry::Counter* conns_queued_counter_;
  telemetry::Counter* packets_counter_;
  telemetry::Counter* bytes_counter_;
};

}  // namespace nyx

#endif  // SRC_NETEMU_NETEMU_H_
