#include "src/netemu/netemu.h"

#include <algorithm>
#include <cstring>
#include <string>

#include "src/common/check.h"

namespace nyx {

NetEmu::NetEmu() : NetEmu(Config()) {}

NetEmu::NetEmu(Config config)
    : config_(config),
      conns_queued_counter_(
          telemetry::MetricRegistry::Global().RegisterCounter("netemu.connections_queued")),
      packets_counter_(
          telemetry::MetricRegistry::Global().RegisterCounter("netemu.packets_delivered")),
      bytes_counter_(telemetry::MetricRegistry::Global().RegisterCounter("netemu.bytes_delivered")) {
  for (size_t k = 0; k < kFaultKindCount; k++) {
    fault_counters_[k] = telemetry::MetricRegistry::Global().RegisterCounter(
        std::string("netemu.faults_injected.") + FaultKindName(static_cast<FaultKind>(k)));
  }
  sockets_.reserve(config_.max_sockets);
  fds_.reserve(config_.max_fds);
}

std::optional<FaultPlan> NetEmu::TakeFault(Sock& s, std::initializer_list<FaultKind> kinds) {
  if (s.faults.empty()) {
    return std::nullopt;
  }
  FaultEntry& front = s.faults.front();
  bool applies = false;
  for (FaultKind k : kinds) {
    if (front.plan.kind == k) {
      applies = true;
      break;
    }
  }
  if (!applies) {
    return std::nullopt;
  }
  const FaultPlan plan = front.plan;
  // One-shot kinds retire the whole entry (a connection dies once); burst
  // kinds count down one application per matching call.
  const bool one_shot =
      plan.kind == FaultKind::kConnReset || plan.kind == FaultKind::kPeerClose;
  if (one_shot || --front.remaining == 0) {
    s.faults.pop_front();
  }
  faults_injected_++;
  fault_counters_[static_cast<size_t>(plan.kind)]->Add(1);
  return plan;
}

void NetEmu::ResetSock(Sock& s) {
  // Queued-but-unread fuzz input dies with the connection; account for it
  // separately so throughput numbers stay honest (ISSUE satellite).
  size_t dropped = 0;
  for (const Bytes& pkt : s.rx) {
    dropped += pkt.size();
  }
  if (!s.rx.empty() && s.rx_front_consumed < s.rx.front().size()) {
    dropped -= s.rx_front_consumed;
  }
  faulted_bytes_ += dropped;
  s.rx.clear();
  s.rx_front_consumed = 0;
  s.reset = true;
  s.peer_closed = true;
}

int NetEmu::AllocSocket() {
  for (size_t i = 0; i < sockets_.size(); i++) {
    if (!sockets_[i].live) {
      sockets_[i] = Sock{};
      sockets_[i].live = true;
      return static_cast<int>(i);
    }
  }
  if (sockets_.size() >= config_.max_sockets) {
    return -1;
  }
  sockets_.push_back(Sock{});
  sockets_.back().live = true;
  return static_cast<int>(sockets_.size() - 1);
}

int NetEmu::AllocFd(int sock) {
  NYX_DCHECK_GE(sock, 0);
  NYX_DCHECK_LT(static_cast<size_t>(sock), sockets_.size());
  for (size_t i = 0; i < fds_.size(); i++) {
    if (!fds_[i].open) {
      fds_[i] = FdEntry{sock, current_process_, true};
      sockets_[sock].refcount++;
      return static_cast<int>(i);
    }
  }
  if (fds_.size() >= config_.max_fds) {
    return kErrMfile;
  }
  fds_.push_back(FdEntry{sock, current_process_, true});
  sockets_[sock].refcount++;
  return static_cast<int>(fds_.size() - 1);
}

NetEmu::Sock* NetEmu::SockForFd(int fd) {
  if (fd < 0 || fd >= static_cast<int>(fds_.size()) || !fds_[fd].open) {
    return nullptr;
  }
  return &sockets_[fds_[fd].sock];
}

void NetEmu::DropSocketRef(int sock) {
  NYX_DCHECK_GE(sock, 0);
  NYX_DCHECK_LT(static_cast<size_t>(sock), sockets_.size());
  Sock& s = sockets_[sock];
  NYX_DCHECK_GT(s.refcount, 0);
  if (--s.refcount <= 0) {
    s.live = false;
    s.rx.clear();
    s.tx.clear();
    s.pending_accept.clear();
    s.epoll_watch.clear();
    s.faults.clear();
  }
}

int NetEmu::Socket(SockKind kind) {
  Charge();
  const int sock = AllocSocket();
  if (sock < 0) {
    return kErrMfile;
  }
  sockets_[sock].kind = kind;
  const int fd = AllocFd(sock);
  if (fd < 0) {
    sockets_[sock].live = false;
  }
  return fd;
}

int NetEmu::Bind(int fd, uint16_t port) {
  Charge();
  Sock* s = SockForFd(fd);
  if (s == nullptr) {
    return kErrBadf;
  }
  s->port = port;
  // A bound UDP socket is directly part of the attack surface.
  if (s->kind == SockKind::kDgram) {
    s->attack_surface = true;
  }
  return 0;
}

int NetEmu::Listen(int fd, int backlog) {
  Charge();
  Sock* s = SockForFd(fd);
  if (s == nullptr) {
    return kErrBadf;
  }
  if (s->kind != SockKind::kListener && s->kind != SockKind::kStream) {
    return kErrInval;
  }
  s->kind = SockKind::kListener;
  s->listening = true;
  return 0;
}

int NetEmu::Accept(int fd) {
  Charge();
  Sock* s = SockForFd(fd);
  if (s == nullptr) {
    return kErrBadf;
  }
  if (!s->listening) {
    return kErrInval;
  }
  if (s->pending_accept.empty()) {
    blocked_on_input_ = true;
    return kErrAgain;
  }
  // The connection at the head of the backlog may carry a fault: the peer
  // can abort (RST while queued) or the accept itself can be interrupted.
  if (auto f = TakeFault(sockets_[s->pending_accept.front()],
                         {FaultKind::kConnReset, FaultKind::kIntr, FaultKind::kEagain})) {
    switch (f->kind) {
      case FaultKind::kConnReset: {
        const int aborted = s->pending_accept.front();
        s->pending_accept.pop_front();
        ResetSock(sockets_[aborted]);
        DropSocketRef(aborted);
        return kErrConnReset;
      }
      case FaultKind::kIntr:
        return kErrIntr;
      case FaultKind::kEagain:
        return kErrAgain;
      case FaultKind::kShortRead:
      case FaultKind::kShortWrite:
      case FaultKind::kPeerClose:
      case FaultKind::kTimeout:
        NYX_UNREACHABLE() << "kind outside TakeFault filter";
    }
  }
  blocked_on_input_ = false;
  const int conn = s->pending_accept.front();
  s->pending_accept.pop_front();
  const int conn_fd = AllocFd(conn);
  if (conn_fd >= 0) {
    // The backlog's reference is transferred to the new fd.
    sockets_[conn].refcount--;
  } else {
    DropSocketRef(conn);
  }
  return conn_fd;
}

int NetEmu::Connect(int fd, uint16_t port) {
  Charge();
  Sock* s = SockForFd(fd);
  if (s == nullptr) {
    return kErrBadf;
  }
  if (auto f = TakeFault(*s, {FaultKind::kTimeout, FaultKind::kConnReset, FaultKind::kIntr})) {
    switch (f->kind) {
      case FaultKind::kTimeout:
        if (clock_ != nullptr) {
          clock_->Advance(static_cast<uint64_t>(f->arg) * 1000000ull);
        }
        return kErrTimedOut;
      case FaultKind::kConnReset:
        return kErrConnReset;
      case FaultKind::kIntr:
        return kErrIntr;
      case FaultKind::kShortRead:
      case FaultKind::kShortWrite:
      case FaultKind::kEagain:
      case FaultKind::kPeerClose:
        NYX_UNREACHABLE() << "kind outside TakeFault filter";
    }
  }
  s->port = port;
  s->attack_surface = true;
  client_conns_.push_back(fds_[fd].sock);
  return 0;
}

int NetEmu::Recv(int fd, void* buf, size_t len) {
  Charge();
  Sock* s = SockForFd(fd);
  if (s == nullptr) {
    return kErrBadf;
  }
  if (s->kind == SockKind::kListener) {
    return kErrInval;
  }
  if (auto f = TakeFault(*s, {FaultKind::kShortRead, FaultKind::kEagain, FaultKind::kIntr,
                              FaultKind::kConnReset, FaultKind::kPeerClose,
                              FaultKind::kTimeout})) {
    switch (f->kind) {
      case FaultKind::kShortRead:
        // Cap this read; the normal path below serves at most `arg` bytes.
        len = std::min(len, static_cast<size_t>(f->arg > 0 ? f->arg : 1));
        break;
      case FaultKind::kEagain:
        // Spurious would-block despite queued data. Not a real blocking
        // point, so blocked_on_input_ stays untouched.
        return kErrAgain;
      case FaultKind::kIntr:
        return kErrIntr;
      case FaultKind::kConnReset:
        ResetSock(*s);
        return kErrConnReset;
      case FaultKind::kPeerClose:
        // FIN mid-message: queued data stays readable, EOF once drained —
        // exactly the half-closed stream a real kernel presents.
        s->peer_closed = true;
        break;
      case FaultKind::kTimeout:
        if (clock_ != nullptr) {
          clock_->Advance(static_cast<uint64_t>(f->arg) * 1000000ull);
        }
        return kErrTimedOut;
      case FaultKind::kShortWrite:
        NYX_UNREACHABLE() << "kind outside TakeFault filter";
    }
  }
  if (s->rx.empty()) {
    if (s->peer_closed || s->shut_down) {
      return 0;  // orderly EOF
    }
    if (s->attack_surface) {
      blocked_on_input_ = true;
    }
    return kErrAgain;
  }
  blocked_on_input_ = false;
  if (s->attack_surface) {
    consumed_input_ = true;
  }

  size_t out = 0;
  if (s->kind == SockKind::kDgram) {
    // One datagram per call; excess bytes are discarded (truncation), like
    // recvfrom on a SOCK_DGRAM socket.
    const Bytes& pkt = s->rx.front();
    out = pkt.size() < len ? pkt.size() : len;
    if (out > 0) {  // empty datagram: data() may be null
      memcpy(buf, pkt.data(), out);
    }
    s->rx.pop_front();
    s->rx_front_consumed = 0;
    return static_cast<int>(out);
  }

  if (config_.preserve_packet_boundaries) {
    // At most one packet per call — the emulation the paper argues for.
    const Bytes& pkt = s->rx.front();
    const size_t avail = pkt.size() - s->rx_front_consumed;
    out = avail < len ? avail : len;
    if (out > 0) {  // empty packet: data() may be null
      memcpy(buf, pkt.data() + s->rx_front_consumed, out);
    }
    s->rx_front_consumed += out;
    if (s->rx_front_consumed >= pkt.size()) {
      s->rx.pop_front();
      s->rx_front_consumed = 0;
    }
    return static_cast<int>(out);
  }

  // Coalescing mode (desock-style): drain as much as fits.
  uint8_t* dst = static_cast<uint8_t*>(buf);
  while (out < len && !s->rx.empty()) {
    const Bytes& pkt = s->rx.front();
    const size_t avail = pkt.size() - s->rx_front_consumed;
    const size_t take = avail < len - out ? avail : len - out;
    if (take > 0) {  // empty packet: data() may be null
      memcpy(dst + out, pkt.data() + s->rx_front_consumed, take);
    }
    out += take;
    s->rx_front_consumed += take;
    if (s->rx_front_consumed >= pkt.size()) {
      s->rx.pop_front();
      s->rx_front_consumed = 0;
    }
  }
  return static_cast<int>(out);
}

int NetEmu::Send(int fd, const void* data, size_t len) {
  Charge();
  Sock* s = SockForFd(fd);
  if (s == nullptr) {
    return kErrBadf;
  }
  if (s->kind == SockKind::kListener) {
    return kErrInval;
  }
  // Error-path consistency (matching a real kernel): writing after our own
  // shutdown or after the connection was reset is EPIPE — the reset itself
  // was reported exactly once as ECONNRESET. Writing after a plain peer FIN
  // (peer_closed) still succeeds: TCP lets the first post-FIN send through.
  if (s->shut_down || s->reset) {
    return kErrPipe;
  }
  if (auto f = TakeFault(*s, {FaultKind::kShortWrite, FaultKind::kEagain, FaultKind::kIntr,
                              FaultKind::kConnReset})) {
    switch (f->kind) {
      case FaultKind::kShortWrite:
        len = std::min(len, static_cast<size_t>(f->arg > 0 ? f->arg : 1));
        break;
      case FaultKind::kEagain:
        return kErrAgain;
      case FaultKind::kIntr:
        return kErrIntr;
      case FaultKind::kConnReset:
        ResetSock(*s);
        return kErrConnReset;
      case FaultKind::kShortRead:
      case FaultKind::kPeerClose:
      case FaultKind::kTimeout:
        NYX_UNREACHABLE() << "kind outside TakeFault filter";
    }
  }
  const uint8_t* p = static_cast<const uint8_t*>(data);
  s->tx.emplace_back(p, p + len);
  return static_cast<int>(len);
}

int NetEmu::Close(int fd) {
  Charge();
  if (fd < 0 || fd >= static_cast<int>(fds_.size()) || !fds_[fd].open) {
    return kErrBadf;
  }
  const int sock = fds_[fd].sock;
  fds_[fd].open = false;
  DropSocketRef(sock);
  return 0;
}

int NetEmu::Shutdown(int fd) {
  Charge();
  Sock* s = SockForFd(fd);
  if (s == nullptr) {
    return kErrBadf;
  }
  s->shut_down = true;
  return 0;
}

int NetEmu::Dup(int fd) {
  Charge();
  Sock* s = SockForFd(fd);
  if (s == nullptr) {
    return kErrBadf;
  }
  return AllocFd(fds_[fd].sock);
}

int NetEmu::Dup2(int oldfd, int newfd) {
  Charge();
  Sock* s = SockForFd(oldfd);
  if (s == nullptr || newfd < 0 || newfd >= static_cast<int>(config_.max_fds)) {
    return kErrBadf;
  }
  if (newfd == oldfd) {
    return newfd;
  }
  if (newfd >= static_cast<int>(fds_.size())) {
    fds_.resize(newfd + 1);
  }
  if (fds_[newfd].open) {
    DropSocketRef(fds_[newfd].sock);
  }
  fds_[newfd] = FdEntry{fds_[oldfd].sock, current_process_, true};
  sockets_[fds_[oldfd].sock].refcount++;
  return newfd;
}

bool NetEmu::Readable(const Sock& s) const {
  if (s.listening) {
    return !s.pending_accept.empty();
  }
  return !s.rx.empty() || s.peer_closed || s.shut_down;
}

int NetEmu::Poll(std::vector<PollRequest>& reqs) {
  Charge();
  int ready = 0;
  bool any_attack_surface = false;
  for (PollRequest& r : reqs) {
    r.readable = false;
    r.writable = false;
  }
  // A queued timeout fault expires the whole poll: nothing reports ready
  // even if data is queued, and the virtual clock jumps by the plan's arg
  // milliseconds. Not a real blocking point, so blocked_on_input_ is not
  // set. First matching fd in request order wins, deterministically.
  for (PollRequest& r : reqs) {
    Sock* s = SockForFd(r.fd);
    if (s == nullptr) {
      continue;
    }
    if (auto f = TakeFault(*s, {FaultKind::kTimeout})) {
      if (clock_ != nullptr) {
        clock_->Advance(static_cast<uint64_t>(f->arg) * 1000000ull);
      }
      return 0;
    }
  }
  for (PollRequest& r : reqs) {
    Sock* s = SockForFd(r.fd);
    if (s == nullptr) {
      continue;
    }
    if (s->attack_surface || s->listening) {
      any_attack_surface = true;
    }
    if (r.want_read && Readable(*s)) {
      r.readable = true;
    }
    if (r.want_write && !s->listening) {
      r.writable = true;
    }
    if (r.readable || r.writable) {
      ready++;
    }
  }
  if (ready == 0 && any_attack_surface) {
    blocked_on_input_ = true;
  }
  return ready;
}

int NetEmu::EpollCreate() {
  Charge();
  const int sock = AllocSocket();
  if (sock < 0) {
    return kErrMfile;
  }
  sockets_[sock].epoll_instance = true;
  const int fd = AllocFd(sock);
  if (fd < 0) {
    sockets_[sock].live = false;
  }
  return fd;
}

int NetEmu::EpollCtlAdd(int epfd, int fd, bool want_read) {
  Charge();
  Sock* ep = SockForFd(epfd);
  if (ep == nullptr || !ep->epoll_instance || SockForFd(fd) == nullptr) {
    return kErrBadf;
  }
  for (auto& [watched, unused] : ep->epoll_watch) {
    if (watched == fd) {
      return kErrInval;  // EEXIST, close enough
    }
  }
  ep->epoll_watch.emplace_back(fd, want_read);
  return 0;
}

int NetEmu::EpollCtlDel(int epfd, int fd) {
  Charge();
  Sock* ep = SockForFd(epfd);
  if (ep == nullptr || !ep->epoll_instance) {
    return kErrBadf;
  }
  for (auto it = ep->epoll_watch.begin(); it != ep->epoll_watch.end(); ++it) {
    if (it->first == fd) {
      ep->epoll_watch.erase(it);
      return 0;
    }
  }
  return kErrBadf;
}

int NetEmu::EpollWait(int epfd, std::vector<int>& ready_fds) {
  Charge();
  ready_fds.clear();
  Sock* ep = SockForFd(epfd);
  if (ep == nullptr || !ep->epoll_instance) {
    return kErrBadf;
  }
  // Same timeout-fault semantics as Poll().
  for (const auto& [fd, want_read] : ep->epoll_watch) {
    Sock* s = SockForFd(fd);
    if (s == nullptr) {
      continue;
    }
    if (auto f = TakeFault(*s, {FaultKind::kTimeout})) {
      if (clock_ != nullptr) {
        clock_->Advance(static_cast<uint64_t>(f->arg) * 1000000ull);
      }
      return 0;
    }
  }
  bool any_attack_surface = false;
  for (const auto& [fd, want_read] : ep->epoll_watch) {
    Sock* s = SockForFd(fd);
    if (s == nullptr) {
      continue;
    }
    if (s->attack_surface || s->listening) {
      any_attack_surface = true;
    }
    if (want_read && Readable(*s)) {
      ready_fds.push_back(fd);
    }
  }
  if (ready_fds.empty() && any_attack_surface) {
    blocked_on_input_ = true;
  }
  return static_cast<int>(ready_fds.size());
}

int NetEmu::ForkFdTable() {
  Charge();
  const int child = next_process_++;
  const size_t n = fds_.size();
  for (size_t i = 0; i < n; i++) {
    if (fds_[i].open && fds_[i].process == current_process_) {
      fds_.push_back(FdEntry{fds_[i].sock, child, true});
      sockets_[fds_[i].sock].refcount++;
    }
  }
  return child;
}

void NetEmu::ExitProcess(int process) {
  for (auto& fd : fds_) {
    if (fd.open && fd.process == process) {
      fd.open = false;
      DropSocketRef(fd.sock);
    }
  }
}

int NetEmu::QueueConnection(uint16_t port) {
  telemetry::ScopedPhase phase(telemetry::Phase::kNetemu);
  // Find the listener (first listening socket, matching port if given).
  int listener = -1;
  for (size_t i = 0; i < sockets_.size(); i++) {
    if (sockets_[i].live && sockets_[i].listening &&
        (port == 0 || sockets_[i].port == port)) {
      listener = static_cast<int>(i);
      break;
    }
  }
  if (listener == -1) {
    return -1;
  }
  const int conn = AllocSocket();
  if (conn < 0) {
    return -1;
  }
  sockets_[conn].kind = SockKind::kStream;
  sockets_[conn].attack_surface = true;
  sockets_[conn].port = sockets_[listener].port;
  // The connection is owned by its fd once accepted; keep it alive while it
  // sits in the backlog.
  sockets_[conn].refcount = 1;
  sockets_[listener].pending_accept.push_back(conn);
  conns_queued_counter_->Add(1);
  return conn;
}

int NetEmu::FindDgramSocket(uint16_t port) const {
  for (size_t i = 0; i < sockets_.size(); i++) {
    if (sockets_[i].live && sockets_[i].kind == SockKind::kDgram &&
        (port == 0 || sockets_[i].port == port)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

bool NetEmu::DeliverPacket(int conn, Bytes data) {
  telemetry::ScopedPhase phase(telemetry::Phase::kNetemu);
  // A dead connection id here means the interpreter's view of the socket
  // table diverged from ours — count it instead of dropping silently.
  if (!NYX_EXPECT(ValidConn(conn))) {
    return false;
  }
  packets_counter_->Add(1);
  bytes_counter_->Add(data.size());
  if (sockets_[conn].reset) {
    // A reset connection drops deliveries on the floor, like a kernel
    // discarding segments for a dead socket. The bytes count as delivered
    // (the fuzzer spent them) and as faulted (the target never saw them).
    faulted_bytes_ += data.size();
    return true;
  }
  sockets_[conn].rx.push_back(std::move(data));
  return true;
}

bool NetEmu::QueueFault(int conn, const FaultPlan& plan) {
  telemetry::ScopedPhase phase(telemetry::Phase::kNetemu);
  if (!NYX_EXPECT(ValidConn(conn)) || !plan.Valid()) {
    return false;
  }
  sockets_[conn].faults.push_back(FaultEntry{plan, plan.count});
  return true;
}

void NetEmu::PeerClose(int conn) {
  telemetry::ScopedPhase phase(telemetry::Phase::kNetemu);
  if (NYX_EXPECT(ValidConn(conn))) {
    sockets_[conn].peer_closed = true;
  }
}

const std::vector<Bytes>& NetEmu::Sent(int conn) const {
  static const std::vector<Bytes> kEmpty;
  if (!ValidConn(conn)) {
    return kEmpty;
  }
  return sockets_[conn].tx;
}

size_t NetEmu::UndeliveredBytes() const {
  size_t n = 0;
  for (const Sock& s : sockets_) {
    if (!s.live || !s.attack_surface) {
      continue;
    }
    for (const Bytes& pkt : s.rx) {
      n += pkt.size();
    }
    // A partially read front packet: the consumed prefix is no longer
    // "undelivered" (the pop-when-drained invariant keeps the offset
    // strictly inside the front packet).
    if (!s.rx.empty() && s.rx_front_consumed < s.rx.front().size()) {
      n -= s.rx_front_consumed;
    }
  }
  return n;
}

Bytes NetEmu::Serialize() const {
  Bytes out;
  PutLe32(out, 0x4e455432);  // "NET2": v1 plus per-sock reset flag + fault queue
  PutLe32(out, static_cast<uint32_t>(sockets_.size()));
  for (const Sock& s : sockets_) {
    out.push_back(s.live ? 1 : 0);
    out.push_back(static_cast<uint8_t>(s.kind));
    PutLe16(out, s.port);
    out.push_back(s.listening ? 1 : 0);
    out.push_back(s.attack_surface ? 1 : 0);
    out.push_back(s.peer_closed ? 1 : 0);
    out.push_back(s.shut_down ? 1 : 0);
    out.push_back(s.epoll_instance ? 1 : 0);
    PutLe32(out, static_cast<uint32_t>(s.refcount));
    PutLe64(out, s.rx_front_consumed);
    PutLe32(out, static_cast<uint32_t>(s.rx.size()));
    for (const Bytes& pkt : s.rx) {
      PutLe32(out, static_cast<uint32_t>(pkt.size()));
      Append(out, pkt);
    }
    PutLe32(out, static_cast<uint32_t>(s.pending_accept.size()));
    for (int c : s.pending_accept) {
      PutLe32(out, static_cast<uint32_t>(c));
    }
    PutLe32(out, static_cast<uint32_t>(s.tx.size()));
    for (const Bytes& pkt : s.tx) {
      PutLe32(out, static_cast<uint32_t>(pkt.size()));
      Append(out, pkt);
    }
    PutLe32(out, static_cast<uint32_t>(s.epoll_watch.size()));
    for (const auto& [fd, want_read] : s.epoll_watch) {
      PutLe32(out, static_cast<uint32_t>(fd));
      out.push_back(want_read ? 1 : 0);
    }
    out.push_back(s.reset ? 1 : 0);
    // Fault queues are snapshot-relevant: a restore mid-burst must replay
    // the remaining applications bit-identically (NYX_AUDIT relies on it).
    PutLe32(out, static_cast<uint32_t>(s.faults.size()));
    for (const FaultEntry& e : s.faults) {
      out.push_back(static_cast<uint8_t>(e.plan.kind));
      out.push_back(e.remaining);
      PutLe16(out, e.plan.arg);
    }
  }
  PutLe32(out, static_cast<uint32_t>(fds_.size()));
  for (const FdEntry& fd : fds_) {
    PutLe32(out, static_cast<uint32_t>(fd.sock));
    PutLe32(out, static_cast<uint32_t>(fd.process));
    out.push_back(fd.open ? 1 : 0);
  }
  PutLe32(out, static_cast<uint32_t>(client_conns_.size()));
  for (int c : client_conns_) {
    PutLe32(out, static_cast<uint32_t>(c));
  }
  PutLe32(out, static_cast<uint32_t>(current_process_));
  PutLe32(out, static_cast<uint32_t>(next_process_));
  out.push_back(consumed_input_ ? 1 : 0);
  return out;
}

bool NetEmu::Deserialize(const Bytes& blob) {
  size_t off = 0;
  auto u8 = [&]() -> uint8_t { return off < blob.size() ? blob[off++] : 0; };
  auto u16 = [&]() {
    uint16_t v = ReadLe16(blob, off);
    off += 2;
    return v;
  };
  auto u32 = [&]() {
    uint32_t v = ReadLe32(blob, off);
    off += 4;
    return v;
  };
  auto u64 = [&]() -> uint64_t {
    uint64_t lo = u32();
    uint64_t hi = u32();
    return lo | (hi << 32);
  };
  auto bytes = [&](size_t n) {
    Bytes b;
    if (off + n <= blob.size()) {
      b.assign(blob.begin() + static_cast<long>(off), blob.begin() + static_cast<long>(off + n));
    }
    off += n;
    return b;
  };

  if (u32() != 0x4e455432) {
    return false;
  }
  const uint32_t nsock = u32();
  if (nsock > config_.max_sockets) {
    return false;
  }
  sockets_.assign(nsock, Sock{});
  for (Sock& s : sockets_) {
    s.live = u8() != 0;
    s.kind = static_cast<SockKind>(u8());
    s.port = u16();
    s.listening = u8() != 0;
    s.attack_surface = u8() != 0;
    s.peer_closed = u8() != 0;
    s.shut_down = u8() != 0;
    s.epoll_instance = u8() != 0;
    s.refcount = static_cast<int>(u32());
    s.rx_front_consumed = u64();
    const uint32_t nrx = u32();
    for (uint32_t i = 0; i < nrx && off <= blob.size(); i++) {
      const uint32_t len = u32();
      s.rx.push_back(bytes(len));
    }
    const uint32_t nacc = u32();
    for (uint32_t i = 0; i < nacc; i++) {
      s.pending_accept.push_back(static_cast<int>(u32()));
    }
    const uint32_t ntx = u32();
    for (uint32_t i = 0; i < ntx && off <= blob.size(); i++) {
      const uint32_t len = u32();
      s.tx.push_back(bytes(len));
    }
    const uint32_t nwatch = u32();
    for (uint32_t i = 0; i < nwatch; i++) {
      const int fd = static_cast<int>(u32());
      const bool want_read = u8() != 0;
      s.epoll_watch.emplace_back(fd, want_read);
    }
    s.reset = u8() != 0;
    const uint32_t nfault = u32();
    for (uint32_t i = 0; i < nfault && off <= blob.size(); i++) {
      // Clamp against fuzzed blobs: an out-of-range kind or burst must not
      // become an out-of-range switch or an unbounded countdown.
      FaultEntry e;
      e.plan.kind = static_cast<FaultKind>(u8() % kFaultKindCount);
      e.remaining = u8();
      e.plan.arg = u16();
      if (e.remaining == 0 || e.remaining > kMaxFaultBurst) {
        continue;
      }
      e.plan.count = e.remaining;
      s.faults.push_back(e);
    }
  }
  const uint32_t nfds = u32();
  if (nfds > config_.max_fds) {
    return false;
  }
  fds_.assign(nfds, FdEntry{});
  for (FdEntry& fd : fds_) {
    fd.sock = static_cast<int>(u32());
    fd.process = static_cast<int>(u32());
    fd.open = u8() != 0;
  }
  client_conns_.clear();
  const uint32_t nclient = u32();
  for (uint32_t i = 0; i < nclient; i++) {
    client_conns_.push_back(static_cast<int>(u32()));
  }
  current_process_ = static_cast<int>(u32());
  next_process_ = static_cast<int>(u32());
  consumed_input_ = u8() != 0;
  blocked_on_input_ = false;
  return off <= blob.size();
}

}  // namespace nyx
