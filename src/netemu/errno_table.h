// The one errno table. NetEmu speaks raw-syscall style: negative errno
// values, matching what the LD_PRELOAD hooks would forward from the guest's
// libc. Every errno-style constant the emulator can return lives here —
// nyx_lint bans bare negative-errno literals outside src/netemu/, so callers
// compare against these names and logs go through ErrName().

#ifndef SRC_NETEMU_ERRNO_TABLE_H_
#define SRC_NETEMU_ERRNO_TABLE_H_

namespace nyx {

inline constexpr int kErrIntr = -4;        // EINTR: interrupted by signal
inline constexpr int kErrBadf = -9;        // EBADF: bad file descriptor
inline constexpr int kErrAgain = -11;      // EAGAIN: would block
inline constexpr int kErrInval = -22;      // EINVAL
inline constexpr int kErrMfile = -24;      // EMFILE: fd table full
inline constexpr int kErrPipe = -32;       // EPIPE: write after shutdown
inline constexpr int kErrConnReset = -104; // ECONNRESET: peer reset
inline constexpr int kErrNotConn = -107;   // ENOTCONN
inline constexpr int kErrTimedOut = -110;  // ETIMEDOUT

inline const char* ErrName(int err) {
  switch (err) {
    case kErrIntr:      return "EINTR";
    case kErrBadf:      return "EBADF";
    case kErrAgain:     return "EAGAIN";
    case kErrInval:     return "EINVAL";
    case kErrMfile:     return "EMFILE";
    case kErrPipe:      return "EPIPE";
    case kErrConnReset: return "ECONNRESET";
    case kErrNotConn:   return "ENOTCONN";
    case kErrTimedOut:  return "ETIMEDOUT";
    default:            return err < 0 ? "E?" : "OK";
  }
}

}  // namespace nyx

#endif  // SRC_NETEMU_ERRNO_TABLE_H_
