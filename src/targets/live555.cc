// live555 analogue: an RTSP media server.
//
// Seeded bug (found by every fuzzer in Table 1): a NULL dereference when a
// PLAY request carries an open-ended Range header ("npt=-") before any
// SETUP created a session — the Range normalization dereferences the
// (absent) session's duration.

#include <cstdio>
#include <cstring>

#include "src/targets/registry.h"
#include "src/targets/textproto.h"

namespace nyx {
namespace {

constexpr uint32_t kSite = 7000;
constexpr uint16_t kPort = 8554;
constexpr uint64_t kStartupNs = 40'000'000;
constexpr uint64_t kRequestNs = 3'800'000;
constexpr uint64_t kAflnetExtraNs = 74'000'000;

struct State {
  int listener;
  int conn;
  uint32_t cseq;
  uint8_t have_session;
  uint32_t session_id;
  uint8_t playing;
  char track[48];
  LineBuffer rx;
  // RTSP requests are multi-line; we accumulate until the blank line.
  char request[768];
  uint32_t request_len;
};

class Live555 final : public Target {
 public:
  TargetInfo info() const override {
    TargetInfo ti;
    ti.name = "live555";
    ti.port = kPort;
    ti.split = SplitStrategy::kCrlf;
    ti.desock_compatible = false;  // n/a for AFL++ in Tables 1-3
    ti.startup_ns = kStartupNs;
    ti.request_ns = kRequestNs;
    ti.aflnet_extra_ns = kAflnetExtraNs;
    ti.startup_dirty_pages = 14;
    ti.state_bytes = sizeof(State);
    return ti;
  }

  void Init(GuestContext& ctx) override {
    auto* st = ctx.State<State>();
    memset(st, 0, sizeof(*st));
    st->conn = -1;
    st->listener = ctx.net().Socket(SockKind::kStream);
    ctx.net().Bind(st->listener, kPort);
    ctx.net().Listen(st->listener, 4);
    ctx.TouchScratch(14, 0x99);
    ctx.Charge(kStartupNs);
  }

  void Step(GuestContext& ctx) override {
    auto* st = ctx.State<State>();
    for (;;) {
      if (ctx.crash().crashed) {
        return;
      }
      if (st->conn < 0) {
        const int fd = ctx.net().Accept(st->listener);
        if (fd < 0) {
          return;
        }
        ctx.Cov(kSite + 0);
        st->conn = fd;
        st->rx.len = 0;
        st->request_len = 0;
      }
      uint8_t buf[300];
      const int n = ctx.net().Recv(st->conn, buf, sizeof(buf));
      if (n == kErrAgain) {
        return;
      }
      if (n <= 0) {
        ctx.Cov(kSite + 1);
        ctx.net().Close(st->conn);
        st->conn = -1;
        continue;
      }
      st->rx.Push(buf, static_cast<uint32_t>(n));
      char line[300];
      while (st->rx.PopLine(line, sizeof(line))) {
        if (line[0] == '\0') {
          // Blank line terminates the request.
          if (ctx.CovBranch(st->request_len > 0, kSite + 2)) {
            HandleRequest(ctx, st);
            st->request_len = 0;
          }
        } else {
          const uint32_t len = static_cast<uint32_t>(strlen(line));
          if (st->request_len + len + 1 < sizeof(st->request)) {
            memcpy(st->request + st->request_len, line, len);
            st->request_len += len;
            st->request[st->request_len++] = '\n';
          } else {
            ctx.Cov(kSite + 3);  // oversized request dropped
            st->request_len = 0;
          }
        }
        if (st->conn < 0 || ctx.crash().crashed) {
          break;
        }
      }
    }
  }

 private:
  // Finds "Header:" inside the accumulated request; returns value pointer or
  // nullptr (value terminated by '\n').
  const char* FindHeader(State* st, const char* name) {
    st->request[st->request_len] = '\0';
    const size_t nlen = strlen(name);
    const char* p = st->request;
    while ((p = strstr(p, name)) != nullptr) {
      if ((p == st->request || p[-1] == '\n') && p[nlen] == ':') {
        const char* v = p + nlen + 1;
        while (*v == ' ') {
          v++;
        }
        return v;
      }
      p += nlen;
    }
    return nullptr;
  }

  void HandleRequest(GuestContext& ctx, State* st) {
    ctx.Charge(kRequestNs + ctx.cost().per_byte_ns * st->request_len);
    const int fd = st->conn;
    st->request[st->request_len] = '\0';

    char verb[12];
    const char* rest = nullptr;
    SplitVerb(st->request, verb, sizeof(verb), &rest);

    // CSeq is mandatory.
    const char* cseq_v = FindHeader(st, "CSeq");
    if (ctx.CovBranch(cseq_v == nullptr, kSite + 10)) {
      Reply(ctx, fd, "RTSP/1.0 400 Bad Request\r\n\r\n");
      return;
    }
    st->cseq = 0;
    for (const char* p = cseq_v; *p >= '0' && *p <= '9'; p++) {
      st->cseq = st->cseq * 10 + static_cast<uint32_t>(*p - '0');
    }

    char resp[256];
    if (ctx.CovBranch(strcmp(verb, "OPTIONS") == 0, kSite + 12)) {
      snprintf(resp, sizeof(resp),
               "RTSP/1.0 200 OK\r\nCSeq: %u\r\nPublic: OPTIONS, DESCRIBE, SETUP, PLAY, "
               "PAUSE, TEARDOWN\r\n\r\n",
               st->cseq);
      Reply(ctx, fd, resp);
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "DESCRIBE") == 0, kSite + 14)) {
      const char* accept = FindHeader(st, "Accept");
      if (ctx.CovBranch(accept != nullptr && strncmp(accept, "application/sdp", 15) != 0,
                        kSite + 16)) {
        snprintf(resp, sizeof(resp), "RTSP/1.0 406 Not Acceptable\r\nCSeq: %u\r\n\r\n",
                 st->cseq);
        Reply(ctx, fd, resp);
        return;
      }
      snprintf(resp, sizeof(resp),
               "RTSP/1.0 200 OK\r\nCSeq: %u\r\nContent-Type: application/sdp\r\n\r\n"
               "v=0\r\nm=video 0 RTP/AVP 96\r\n",
               st->cseq);
      Reply(ctx, fd, resp);
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "SETUP") == 0, kSite + 18)) {
      const char* transport = FindHeader(st, "Transport");
      if (ctx.CovBranch(transport == nullptr, kSite + 20)) {
        snprintf(resp, sizeof(resp),
                 "RTSP/1.0 461 Unsupported Transport\r\nCSeq: %u\r\n\r\n", st->cseq);
        Reply(ctx, fd, resp);
        return;
      }
      if (ctx.CovBranch(strncmp(transport, "RTP/AVP/TCP", 11) == 0, kSite + 22)) {
        ctx.Cov(kSite + 24);  // interleaved mode
      } else if (ctx.CovBranch(strncmp(transport, "RTP/AVP", 7) != 0, kSite + 26)) {
        snprintf(resp, sizeof(resp),
                 "RTSP/1.0 461 Unsupported Transport\r\nCSeq: %u\r\n\r\n", st->cseq);
        Reply(ctx, fd, resp);
        return;
      }
      st->have_session = 1;
      st->session_id = 0x1e55 + st->cseq;
      // Track name from the request line.
      sscanf(rest, "%47s", st->track);
      snprintf(resp, sizeof(resp), "RTSP/1.0 200 OK\r\nCSeq: %u\r\nSession: %08X\r\n\r\n",
               st->cseq, st->session_id);
      Reply(ctx, fd, resp);
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "PLAY") == 0, kSite + 28)) {
      const char* range = FindHeader(st, "Range");
      if (ctx.CovBranch(range != nullptr, kSite + 30)) {
        if (ctx.CovBranch(strncmp(range, "npt=", 4) == 0, kSite + 32)) {
          const char* npt = range + 4;
          if (ctx.CovBranch(npt[0] == '-', kSite + 34)) {
            // Open-ended range: normalization reads the session's duration.
            if (ctx.CovBranch(!st->have_session, kSite + 36)) {
              // session == NULL: the dereference live555's handler performs
              // here is the crash every fuzzer finds (Table 1).
              ctx.Crash(kCrashLive555RangeNull, "null-deref-range-without-session");
              return;
            }
            ctx.Cov(kSite + 38);
          } else {
            // "npt=<start>-<end>" parse.
            double start = 0;
            for (const char* p = npt; *p >= '0' && *p <= '9'; p++) {
              start = start * 10 + (*p - '0');
            }
            (void)start;
            ctx.Cov(kSite + 40);
          }
        } else if (ctx.CovBranch(strncmp(range, "clock=", 6) == 0, kSite + 42)) {
          ctx.Cov(kSite + 44);
        } else {
          snprintf(resp, sizeof(resp),
                   "RTSP/1.0 457 Invalid Range\r\nCSeq: %u\r\n\r\n", st->cseq);
          Reply(ctx, fd, resp);
          return;
        }
      }
      if (ctx.CovBranch(!st->have_session, kSite + 46)) {
        snprintf(resp, sizeof(resp),
                 "RTSP/1.0 454 Session Not Found\r\nCSeq: %u\r\n\r\n", st->cseq);
        Reply(ctx, fd, resp);
        return;
      }
      st->playing = 1;
      snprintf(resp, sizeof(resp), "RTSP/1.0 200 OK\r\nCSeq: %u\r\nSession: %08X\r\n\r\n",
               st->cseq, st->session_id);
      Reply(ctx, fd, resp);
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "PAUSE") == 0, kSite + 48)) {
      if (ctx.CovBranch(!st->playing, kSite + 50)) {
        snprintf(resp, sizeof(resp),
                 "RTSP/1.0 455 Method Not Valid in This State\r\nCSeq: %u\r\n\r\n", st->cseq);
      } else {
        st->playing = 0;
        snprintf(resp, sizeof(resp), "RTSP/1.0 200 OK\r\nCSeq: %u\r\n\r\n", st->cseq);
      }
      Reply(ctx, fd, resp);
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "TEARDOWN") == 0, kSite + 52)) {
      st->have_session = 0;
      st->playing = 0;
      snprintf(resp, sizeof(resp), "RTSP/1.0 200 OK\r\nCSeq: %u\r\n\r\n", st->cseq);
      Reply(ctx, fd, resp);
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "GET_PARAMETER") == 0, kSite + 54)) {
      snprintf(resp, sizeof(resp), "RTSP/1.0 200 OK\r\nCSeq: %u\r\n\r\n", st->cseq);
      Reply(ctx, fd, resp);
      return;
    }
    ctx.Cov(kSite + 56);
    snprintf(resp, sizeof(resp), "RTSP/1.0 501 Not Implemented\r\nCSeq: %u\r\n\r\n", st->cseq);
    Reply(ctx, fd, resp);
  }
};

}  // namespace

std::unique_ptr<Target> MakeLive555() { return std::make_unique<Live555>(); }

}  // namespace nyx
