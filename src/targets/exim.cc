// exim analogue: an SMTP server (MTA) — the second bug only Nyx-Net found
// in ProFuzzBench (Table 1).
//
// Bug mechanics: during the DATA phase, header lines get rewritten into a
// fixed 64-byte heap buffer. For "X-"-prefixed headers the rewrite path
// trusts the post-colon length and copies it with GuestContext::HeapWrite.
// Triggering the overflow needs a complete EHLO -> MAIL FROM -> RCPT TO ->
// DATA session plus a long X- header *in its own packet*, i.e. at least
// five correctly-bounded messages deep. Coverage exposes a length-bucket
// gradient so high-throughput fuzzers climb toward it; the AFL-based tools'
// single-digit exec rates can't get there within the campaign budget, and
// the desock transport can't run exim at all (AFL++ n/a).

#include <cstring>

#include "src/targets/registry.h"
#include "src/targets/textproto.h"

namespace nyx {
namespace {

constexpr uint32_t kSite = 6000;
constexpr uint16_t kPort = 2525;
constexpr uint64_t kStartupNs = 14'000'000;
constexpr uint64_t kRequestNs = 600'000;
constexpr uint64_t kAflnetExtraNs = 190'000'000;

enum SmtpPhase : uint8_t {
  kPhaseStart = 0,
  kPhaseGreeted,
  kPhaseMail,
  kPhaseRcpt,
  kPhaseData,
};

struct State {
  int listener;
  int conn;
  uint8_t phase;
  uint8_t esmtp;  // EHLO vs HELO
  uint32_t rcpt_count;
  uint32_t declared_size;
  char sender[64];
  LineBuffer rx;
  uint64_t header_buf;  // guest heap allocation used by the rewrite path
  uint32_t messages_accepted;
};

class Exim final : public Target {
 public:
  TargetInfo info() const override {
    TargetInfo ti;
    ti.name = "exim";
    ti.port = kPort;
    ti.split = SplitStrategy::kCrlf;
    ti.desock_compatible = false;  // n/a for AFL++ in Tables 1-3
    ti.startup_ns = kStartupNs;
    ti.request_ns = kRequestNs;
    ti.aflnet_extra_ns = kAflnetExtraNs;
    ti.startup_dirty_pages = 12;
    ti.state_bytes = sizeof(State);
    return ti;
  }

  void Init(GuestContext& ctx) override {
    auto* st = ctx.State<State>();
    memset(st, 0, sizeof(*st));
    st->conn = -1;
    st->listener = ctx.net().Socket(SockKind::kStream);
    ctx.net().Bind(st->listener, kPort);
    ctx.net().Listen(st->listener, 8);
    st->header_buf = ctx.Malloc(64);
    // Neighbouring allocation so a 64-byte overflow has something to smash.
    ctx.Malloc(32);
    ctx.TouchScratch(12, 0x88);
    ctx.Charge(kStartupNs);
  }

  void Step(GuestContext& ctx) override {
    auto* st = ctx.State<State>();
    for (;;) {
      if (ctx.crash().crashed) {
        return;
      }
      if (st->conn < 0) {
        const int fd = ctx.net().Accept(st->listener);
        if (fd < 0) {
          return;
        }
        ctx.Cov(kSite + 0);
        st->conn = fd;
        st->phase = kPhaseStart;
        st->rx.len = 0;
        Reply(ctx, fd, "220 mail.example ESMTP Exim 4.96\r\n");
      }
      uint8_t buf[300];
      const int n = ctx.net().Recv(st->conn, buf, sizeof(buf));
      if (n == kErrAgain) {
        return;
      }
      if (n <= 0) {
        ctx.Cov(kSite + 1);
        ctx.net().Close(st->conn);
        st->conn = -1;
        continue;
      }
      st->rx.Push(buf, static_cast<uint32_t>(n));
      char line[300];
      while (st->rx.PopLine(line, sizeof(line))) {
        if (st->phase == kPhaseData) {
          HandleDataLine(ctx, st, line);
        } else {
          HandleCommand(ctx, st, line);
        }
        if (st->conn < 0 || ctx.crash().crashed) {
          break;
        }
      }
    }
  }

 private:
  void HandleCommand(GuestContext& ctx, State* st, const char* line) {
    ctx.Charge(kRequestNs + ctx.cost().per_byte_ns * strlen(line));
    char verb[8];
    const char* arg = nullptr;
    SplitVerb(line, verb, sizeof(verb), &arg);
    const int fd = st->conn;

    if (ctx.CovBranch(strcmp(verb, "EHLO") == 0, kSite + 10)) {
      st->phase = kPhaseGreeted;
      st->esmtp = 1;
      Reply(ctx, fd, "250-mail.example Hello\r\n250-SIZE 52428800\r\n250-8BITMIME\r\n250 HELP\r\n");
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "HELO") == 0, kSite + 12)) {
      st->phase = kPhaseGreeted;
      st->esmtp = 0;
      Reply(ctx, fd, "250 mail.example Hello\r\n");
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "QUIT") == 0, kSite + 14)) {
      Reply(ctx, fd, "221 mail.example closing connection\r\n");
      ctx.net().Close(st->conn);
      st->conn = -1;
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "RSET") == 0, kSite + 16)) {
      if (st->phase > kPhaseGreeted) {
        st->phase = kPhaseGreeted;
      }
      st->rcpt_count = 0;
      Reply(ctx, fd, "250 Reset OK\r\n");
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "NOOP") == 0, kSite + 18)) {
      Reply(ctx, fd, "250 OK\r\n");
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "VRFY") == 0, kSite + 20)) {
      Reply(ctx, fd, "252 Cannot VRFY user\r\n");
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "MAIL") == 0, kSite + 22)) {
      if (ctx.CovBranch(st->phase != kPhaseGreeted, kSite + 24)) {
        Reply(ctx, fd, "503 EHLO/HELO first\r\n");
        return;
      }
      if (ctx.CovBranch(!StartsWithNoCase(arg, "FROM:"), kSite + 26)) {
        Reply(ctx, fd, "501 Syntax: MAIL FROM:<address>\r\n");
        return;
      }
      const char* addr = arg + 5;
      while (*addr == ' ') {
        addr++;
      }
      if (ctx.CovBranch(*addr != '<', kSite + 28)) {
        Reply(ctx, fd, "501 Missing <\r\n");
        return;
      }
      const char* close = strchr(addr, '>');
      if (ctx.CovBranch(close == nullptr, kSite + 30)) {
        Reply(ctx, fd, "501 Missing >\r\n");
        return;
      }
      const size_t alen =
          static_cast<size_t>(close - addr - 1) < sizeof(st->sender) - 1
              ? static_cast<size_t>(close - addr - 1)
              : sizeof(st->sender) - 1;
      memcpy(st->sender, addr + 1, alen);
      st->sender[alen] = '\0';
      // ESMTP parameters after the address.
      const char* params = close + 1;
      st->declared_size = 0;
      while (*params == ' ') {
        params++;
      }
      if (ctx.CovBranch(*params != '\0', kSite + 32)) {
        if (ctx.CovBranch(!st->esmtp, kSite + 34)) {
          Reply(ctx, fd, "501 No parameters allowed after HELO\r\n");
          return;
        }
        if (ctx.CovBranch(StartsWithNoCase(params, "SIZE="), kSite + 36)) {
          for (const char* p = params + 5; *p >= '0' && *p <= '9'; p++) {
            st->declared_size = st->declared_size * 10 + static_cast<uint32_t>(*p - '0');
          }
          if (ctx.CovBranch(st->declared_size > 52428800, kSite + 38)) {
            Reply(ctx, fd, "552 Message size exceeds limit\r\n");
            return;
          }
        } else if (ctx.CovBranch(StartsWithNoCase(params, "BODY="), kSite + 40)) {
          ctx.Cov(kSite + 42);
        } else {
          Reply(ctx, fd, "555 Unsupported parameter\r\n");
          return;
        }
      }
      st->phase = kPhaseMail;
      Reply(ctx, fd, "250 OK\r\n");
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "RCPT") == 0, kSite + 44)) {
      if (ctx.CovBranch(st->phase != kPhaseMail && st->phase != kPhaseRcpt, kSite + 46)) {
        Reply(ctx, fd, "503 MAIL first\r\n");
        return;
      }
      if (ctx.CovBranch(!StartsWithNoCase(arg, "TO:"), kSite + 48)) {
        Reply(ctx, fd, "501 Syntax: RCPT TO:<address>\r\n");
        return;
      }
      st->rcpt_count++;
      if (ctx.CovBranch(st->rcpt_count > 50, kSite + 50)) {
        Reply(ctx, fd, "452 Too many recipients\r\n");
        return;
      }
      st->phase = kPhaseRcpt;
      Reply(ctx, fd, "250 Accepted\r\n");
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "DATA") == 0, kSite + 52)) {
      if (ctx.CovBranch(st->phase != kPhaseRcpt, kSite + 54)) {
        Reply(ctx, fd, "503 RCPT first\r\n");
        return;
      }
      st->phase = kPhaseData;
      Reply(ctx, fd, "354 Enter message, ending with \".\"\r\n");
      return;
    }
    ctx.Cov(kSite + 56);
    Reply(ctx, fd, "500 Command unrecognized\r\n");
  }

  void HandleDataLine(GuestContext& ctx, State* st, const char* line) {
    ctx.Charge(ctx.cost().per_byte_ns * (strlen(line) + 2));
    const int fd = st->conn;
    if (ctx.CovBranch(strcmp(line, ".") == 0, kSite + 60)) {
      st->messages_accepted++;
      // Spool the message to disk (rolled back by the snapshot layer).
      ctx.disk().WriteBytes(16384 + st->messages_accepted * 512ull, st->sender,
                            strlen(st->sender));
      st->phase = kPhaseGreeted;
      st->rcpt_count = 0;
      Reply(ctx, fd, "250 Message accepted for delivery\r\n");
      return;
    }
    // Header rewriting: only before the first empty line; we approximate by
    // rewriting every "Name: value" line.
    const char* colon = strchr(line, ':');
    if (ctx.CovBranch(colon != nullptr, kSite + 62)) {
      const size_t value_len = strlen(colon + 1);
      // Length-bucket gradient toward the overflow.
      if (ctx.CovBranch(value_len > 16, kSite + 64)) {
        ctx.Cov(kSite + 65);
      }
      if (ctx.CovBranch(value_len > 32, kSite + 66)) {
        ctx.Cov(kSite + 67);
      }
      if (ctx.CovBranch(value_len > 48, kSite + 68)) {
        ctx.Cov(kSite + 69);
      }
      if (ctx.CovBranch(line[0] == 'X' && line[1] == '-', kSite + 70)) {
        // The vulnerable rewrite only engages for address-form values:
        // "X-Envelope-To: <user@host>"-style headers get their angle-bracket
        // address re-qualified. Each syntactic requirement is a real branch.
        const char* v = colon + 1;
        while (*v == ' ') {
          v++;
        }
        // The buggy path is the *wildcard* address rewrite: "*@domain"
        // router patterns get expanded and re-qualified. '*' never appears
        // in ordinary mail traffic, so plain havoc rarely synthesizes it; a
        // spec-aware mutator with a protocol token dictionary climbs this
        // ladder of real parser branches quickly.
        const bool has_star = ctx.CovBranch(strchr(v, '*') != nullptr, kSite + 100);
        const bool wildcard = ctx.CovBranch(has_star && v[0] == '*', kSite + 102);
        const char* at_pos = strchr(v, '@');
        const bool at = ctx.CovBranch(wildcard && at_pos != nullptr, kSite + 104);
        // Full catch-all pattern "*@*": wildcard local part AND wildcard
        // domain — the router entry whose expansion is broken.
        const bool catch_all =
            ctx.CovBranch(at && strchr(at_pos + 1, '*') != nullptr, kSite + 106);
        if (catch_all) {
          // Address normalization copies in 8-byte chunks; each chunk is a
          // real loop iteration and coverage site — the gradient a
          // coverage-guided fuzzer climbs toward the overflow.
          for (uint32_t chunk = 0; chunk * 8 < value_len && chunk < 10; chunk++) {
            ctx.Cov(kSite + 110 + chunk);
          }
          // The buggy rewrite: copies the rewritten address into the fixed
          // 64-byte header buffer without checking (Nyx-Net-only crash in
          // Table 1). The copy tramples the allocator metadata behind the
          // buffer, so it aborts immediately with or without ASan.
          if (ctx.CovBranch(value_len > 64, kSite + 71)) {
            ctx.Crash(kCrashEximHeaderOverflow, "heap-overflow-header-rewrite");
            return;
          }
          ctx.HeapWrite(st->header_buf, 0, colon + 1, static_cast<uint32_t>(value_len));
        }
      } else if (ctx.CovBranch(value_len < 64, kSite + 72)) {
        ctx.HeapWrite(st->header_buf, 0, colon + 1, static_cast<uint32_t>(value_len));
      }
    }
  }
};

}  // namespace

std::unique_ptr<Target> MakeExim() { return std::make_unique<Exim>(); }

}  // namespace nyx
