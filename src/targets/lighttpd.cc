// lighttpd analogue (case study, paper section 5.5).
//
// "We also used Nyx-Net on Lighttpd's development branch and found a memory
// corruption issue where a negative amount of memory could be allocated
// under specific circumstances" / "an integer underflow in malloc". We
// reproduce the class: a chunked-upload path computes the buffer size as
// (declared content length - bytes already buffered); a small declared
// length with a larger buffered preamble underflows, the huge allocation
// fails, and the unchecked result is dereferenced.

#include <cstdio>
#include <cstring>

#include "src/targets/registry.h"
#include "src/targets/textproto.h"

namespace nyx {
namespace {

constexpr uint32_t kSite = 14000;
constexpr uint16_t kPort = 8081;
constexpr uint64_t kStartupNs = 25'000'000;
constexpr uint64_t kRequestNs = 250'000;
constexpr uint64_t kAflnetExtraNs = 60'000'000;

struct State {
  int listener;
  int conn;
  LineBuffer rx;
  char method[8];
  char url[96];
  uint8_t have_request_line;
  uint8_t keep_alive;
  uint8_t have_content_length;
  int64_t content_length;
  uint32_t buffered_body;
  uint8_t in_body;
  uint32_t requests;
};

class Lighttpd final : public Target {
 public:
  TargetInfo info() const override {
    TargetInfo ti;
    ti.name = "lighttpd";
    ti.port = kPort;
    ti.split = SplitStrategy::kCrlf;
    ti.desock_compatible = true;
    ti.startup_ns = kStartupNs;
    ti.request_ns = kRequestNs;
    ti.aflnet_extra_ns = kAflnetExtraNs;
    ti.startup_dirty_pages = 8;
    ti.state_bytes = sizeof(State);
    return ti;
  }

  void Init(GuestContext& ctx) override {
    auto* st = ctx.State<State>();
    memset(st, 0, sizeof(*st));
    st->conn = -1;
    st->listener = ctx.net().Socket(SockKind::kStream);
    ctx.net().Bind(st->listener, kPort);
    ctx.net().Listen(st->listener, 8);
    ctx.TouchScratch(8, 0xee);
    ctx.Charge(kStartupNs);
  }

  void Step(GuestContext& ctx) override {
    auto* st = ctx.State<State>();
    for (;;) {
      if (ctx.crash().crashed) {
        return;
      }
      if (st->conn < 0) {
        const int fd = ctx.net().Accept(st->listener);
        if (fd < 0) {
          return;
        }
        ctx.Cov(kSite + 0);
        st->conn = fd;
        ResetRequest(st);
        st->rx.len = 0;
      }
      uint8_t buf[300];
      const int n = ctx.net().Recv(st->conn, buf, sizeof(buf));
      if (n == kErrAgain) {
        return;
      }
      if (n <= 0) {
        ctx.Cov(kSite + 1);
        ctx.net().Close(st->conn);
        st->conn = -1;
        continue;
      }
      if (st->in_body) {
        ConsumeBody(ctx, st, static_cast<uint32_t>(n));
        continue;
      }
      st->rx.Push(buf, static_cast<uint32_t>(n));
      char line[300];
      while (!st->in_body && st->rx.PopLine(line, sizeof(line))) {
        HandleLine(ctx, st, line);
        if (st->conn < 0 || ctx.crash().crashed) {
          break;
        }
      }
    }
  }

 private:
  void ResetRequest(State* st) {
    st->have_request_line = 0;
    st->have_content_length = 0;
    st->content_length = 0;
    st->buffered_body = 0;
    st->in_body = 0;
    st->method[0] = '\0';
    st->url[0] = '\0';
  }

  void HandleLine(GuestContext& ctx, State* st, const char* line) {
    const int fd = st->conn;
    ctx.Charge(ctx.cost().per_byte_ns * strlen(line));
    if (!st->have_request_line) {
      // "METHOD /url HTTP/1.x"
      if (ctx.CovBranch(line[0] == '\0', kSite + 10)) {
        return;  // tolerate leading blank lines
      }
      const char* rest = nullptr;
      SplitVerb(line, st->method, sizeof(st->method), &rest);
      size_t u = 0;
      while (rest[u] != '\0' && rest[u] != ' ' && u < sizeof(st->url) - 1) {
        st->url[u] = rest[u];
        u++;
      }
      st->url[u] = '\0';
      const char* version = rest + u;
      while (*version == ' ') {
        version++;
      }
      if (ctx.CovBranch(strncmp(version, "HTTP/1.", 7) != 0, kSite + 12)) {
        Reply(ctx, fd, "HTTP/1.0 400 Bad Request\r\n\r\n");
        ctx.net().Close(st->conn);
        st->conn = -1;
        return;
      }
      st->keep_alive = version[7] == '1';
      st->have_request_line = 1;
      return;
    }
    if (line[0] != '\0') {
      // Header line.
      if (ctx.CovBranch(StartsWithNoCase(line, "Content-Length:"), kSite + 14)) {
        const char* v = line + 15;
        while (*v == ' ') {
          v++;
        }
        // BUG SETUP: strtoll-style parse accepts a leading '-'.
        bool neg = false;
        if (ctx.CovBranch(*v == '-', kSite + 16)) {
          neg = true;
          v++;
        }
        int64_t cl = 0;
        bool digits = false;
        while (*v >= '0' && *v <= '9') {
          cl = cl * 10 + (*v - '0');
          digits = true;
          v++;
        }
        if (ctx.CovBranch(!digits, kSite + 18)) {
          Reply(ctx, fd, "HTTP/1.1 400 Bad Content-Length\r\n\r\n");
          ctx.net().Close(st->conn);
          st->conn = -1;
          return;
        }
        st->content_length = neg ? -cl : cl;
        st->have_content_length = 1;
        // The sanity check compares against the limit but not against zero.
        if (ctx.CovBranch(st->content_length > 1 << 20, kSite + 20)) {
          Reply(ctx, fd, "HTTP/1.1 413 Payload Too Large\r\n\r\n");
          ctx.net().Close(st->conn);
          st->conn = -1;
          return;
        }
        return;
      }
      if (ctx.CovBranch(StartsWithNoCase(line, "Connection:"), kSite + 22)) {
        st->keep_alive = strstr(line, "keep-alive") != nullptr;
        return;
      }
      if (ctx.CovBranch(StartsWithNoCase(line, "Host:"), kSite + 24)) {
        ctx.Cov(kSite + 26);
        return;
      }
      if (ctx.CovBranch(StartsWithNoCase(line, "Transfer-Encoding:"), kSite + 28)) {
        if (ctx.CovBranch(strstr(line, "chunked") != nullptr, kSite + 30)) {
          ctx.Cov(kSite + 32);
        }
        return;
      }
      ctx.Cov(kSite + 34);
      return;
    }
    // Blank line: end of headers.
    DispatchRequest(ctx, st);
  }

  void DispatchRequest(GuestContext& ctx, State* st) {
    st->requests++;
    ctx.Charge(kRequestNs);
    const int fd = st->conn;

    if (ctx.CovBranch(strcmp(st->method, "GET") == 0, kSite + 40)) {
      if (ctx.CovBranch(strcmp(st->url, "/") == 0, kSite + 42)) {
        Reply(ctx, fd, "HTTP/1.1 200 OK\r\nContent-Length: 6\r\n\r\nindex\n");
      } else if (ctx.CovBranch(strncmp(st->url, "/cgi/", 5) == 0, kSite + 44)) {
        Reply(ctx, fd, "HTTP/1.1 403 Forbidden\r\n\r\n");
      } else if (ctx.CovBranch(strstr(st->url, "..") != nullptr, kSite + 46)) {
        Reply(ctx, fd, "HTTP/1.1 400 Bad Request\r\n\r\n");
      } else {
        Reply(ctx, fd, "HTTP/1.1 404 Not Found\r\n\r\n");
      }
      ResetRequest(st);
      return;
    }
    if (ctx.CovBranch(strcmp(st->method, "HEAD") == 0, kSite + 48)) {
      Reply(ctx, fd, "HTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\n");
      ResetRequest(st);
      return;
    }
    if (ctx.CovBranch(strcmp(st->method, "POST") == 0 || strcmp(st->method, "PUT") == 0,
                      kSite + 50)) {
      if (ctx.CovBranch(!st->have_content_length, kSite + 54)) {
        Reply(ctx, fd, "HTTP/1.1 411 Length Required\r\n\r\n");
        ResetRequest(st);
        return;
      }
      // THE BUG (section 5.5): the body staging buffer is sized as
      // content_length - buffered_body using unsigned arithmetic. A
      // negative Content-Length survives the "> limit" check above and
      // underflows here.
      const uint64_t alloc_size =
          static_cast<uint64_t>(st->content_length) - st->buffered_body;
      if (ctx.CovBranch(alloc_size > (1ull << 32), kSite + 56)) {
        // malloc(negative-turned-huge): returns NULL, and the memcpy into
        // it crashes. This is the integer underflow fixed before release.
        ctx.Crash(kCrashLighttpdAllocUnderflow, "malloc-integer-underflow");
        return;
      }
      st->in_body = st->content_length > 0;
      if (!st->in_body) {
        Reply(ctx, fd, "HTTP/1.1 201 Created\r\nContent-Length: 0\r\n\r\n");
        ResetRequest(st);
      }
      return;
    }
    if (ctx.CovBranch(strcmp(st->method, "OPTIONS") == 0, kSite + 58)) {
      Reply(ctx, fd, "HTTP/1.1 200 OK\r\nAllow: GET, HEAD, POST, PUT\r\n\r\n");
      ResetRequest(st);
      return;
    }
    ctx.Cov(kSite + 60);
    Reply(ctx, fd, "HTTP/1.1 501 Not Implemented\r\n\r\n");
    ResetRequest(st);
  }

  void ConsumeBody(GuestContext& ctx, State* st, uint32_t n) {
    st->buffered_body += n;
    ctx.Charge(ctx.cost().per_byte_ns * n);
    if (ctx.CovBranch(st->buffered_body >= static_cast<uint64_t>(st->content_length),
                      kSite + 62)) {
      ctx.disk().WriteBytes(32768, &st->buffered_body, sizeof(st->buffered_body));
      Reply(ctx, st->conn, "HTTP/1.1 201 Created\r\nContent-Length: 0\r\n\r\n");
      ResetRequest(st);
    }
  }
};

}  // namespace

std::unique_ptr<Target> MakeLighttpd() { return std::make_unique<Lighttpd>(); }

}  // namespace nyx
