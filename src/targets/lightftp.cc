// lightftp analogue: a small single-connection FTP server.
//
// ProFuzzBench's LightFTP is the smallest FTP target (352 branches found by
// AFLNet in Table 2). This re-implementation covers the usual command set
// with an anonymous-login state machine, a tiny in-memory VFS backed by the
// emulated block device, and no seeded bugs (no fuzzer crashes lightftp in
// the paper).

#include <cstring>

#include "src/targets/registry.h"
#include "src/targets/textproto.h"

namespace nyx {
namespace {

constexpr uint32_t kSite = 1000;
constexpr uint16_t kPort = 2121;
constexpr uint64_t kStartupNs = 65'000'000;
constexpr uint64_t kRequestNs = 100'000;

struct VfsFile {
  char name[32];
  uint32_t size;      // bytes stored on the block device
  uint32_t disk_off;  // offset on the emulated disk
  uint8_t used;
};

struct State {
  int listener;
  int conn;
  uint8_t logged_in;
  uint8_t got_user;
  uint8_t passive_mode;
  uint8_t type_binary;
  char username[32];
  char cwd[64];
  char rename_from[32];
  LineBuffer rx;
  VfsFile files[8];
  uint32_t disk_brk;
  uint32_t commands_handled;
};

class LightFtp final : public Target {
 public:
  TargetInfo info() const override {
    TargetInfo ti;
    ti.name = "lightftp";
    ti.port = kPort;
    ti.transport = SockKind::kStream;
    ti.split = SplitStrategy::kCrlf;
    ti.desock_compatible = true;
    // Calibration (Table 3): AFL++ reaches ~14 execs/s on lightftp, so a
    // cold start costs ~65ms; Nyx-Net-none reaches ~1500/s with ~5-packet
    // seeds, so a request costs ~100us.
    ti.startup_ns = kStartupNs;
    ti.request_ns = kRequestNs;
    ti.aflnet_extra_ns = 95'000'000;
    ti.startup_dirty_pages = 6;
    ti.state_bytes = sizeof(State);
    return ti;
  }

  void Init(GuestContext& ctx) override {
    auto* st = ctx.State<State>();
    memset(st, 0, sizeof(*st));
    st->conn = -1;
    strcpy(st->cwd, "/");
    st->disk_brk = 4096;
    st->listener = ctx.net().Socket(SockKind::kStream);
    ctx.net().Bind(st->listener, kPort);
    ctx.net().Listen(st->listener, 4);
    ctx.TouchScratch(6, 0x11);
    ctx.Charge(kStartupNs);
  }

  void Step(GuestContext& ctx) override {
    auto* st = ctx.State<State>();
    for (;;) {
      if (ctx.crash().crashed) {
        return;
      }
      if (st->conn < 0) {
        const int fd = ctx.net().Accept(st->listener);
        if (fd < 0) {
          return;
        }
        ctx.Cov(kSite + 0);
        st->conn = fd;
        st->logged_in = 0;
        st->got_user = 0;
        st->rx.len = 0;
        Reply(ctx, fd, "220 LightFTP server ready\r\n");
      }
      uint8_t buf[256];
      const int n = ctx.net().Recv(st->conn, buf, sizeof(buf));
      if (n == kErrAgain) {
        return;
      }
      if (n == kErrIntr) {
        // Interrupted read: retry the recv, as the classic EINTR loop would.
        ctx.Cov(kSite + 90);
        continue;
      }
      if (n == kErrConnReset) {
        // Client aborted: tear the session down and go back to accepting.
        ctx.Cov(kSite + 92);
        ctx.net().Close(st->conn);
        st->conn = -1;
        continue;
      }
      if (n == kErrTimedOut) {
        // Idle timeout expired with no bytes: give the scheduler the turn.
        ctx.Cov(kSite + 94);
        return;
      }
      if (n <= 0) {
        ctx.Cov(kSite + 1);
        ctx.net().Close(st->conn);
        st->conn = -1;
        continue;
      }
      st->rx.Push(buf, static_cast<uint32_t>(n));
      char line[256];
      while (st->rx.PopLine(line, sizeof(line))) {
        HandleCommand(ctx, st, line);
        if (st->conn < 0 || ctx.crash().crashed) {
          break;
        }
      }
    }
  }

 private:
  VfsFile* FindFile(State* st, const char* name) {
    for (auto& f : st->files) {
      if (f.used && strncmp(f.name, name, sizeof(f.name)) == 0) {
        return &f;
      }
    }
    return nullptr;
  }

  void HandleCommand(GuestContext& ctx, State* st, const char* line) {
    st->commands_handled++;
    ctx.Charge(kRequestNs + ctx.cost().per_byte_ns * strlen(line));
    char verb[8];
    const char* arg = nullptr;
    SplitVerb(line, verb, sizeof(verb), &arg);
    const int fd = st->conn;

    if (ctx.CovBranch(strcmp(verb, "USER") == 0, kSite + 10)) {
      if (ctx.CovBranch(arg[0] == '\0', kSite + 12)) {
        Reply(ctx, fd, "501 Syntax error\r\n");
        return;
      }
      CopyCString(st->username, arg);
      st->got_user = 1;
      if (ctx.CovBranch(strcmp(arg, "anonymous") == 0, kSite + 14)) {
        Reply(ctx, fd, "331 Anonymous ok, send email as password\r\n");
      } else {
        Reply(ctx, fd, "331 Password required\r\n");
      }
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "PASS") == 0, kSite + 16)) {
      if (ctx.CovBranch(!st->got_user, kSite + 18)) {
        Reply(ctx, fd, "503 Login with USER first\r\n");
        return;
      }
      st->logged_in = 1;
      ctx.Cov(kSite + 20);
      Reply(ctx, fd, "230 Logged in\r\n");
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "QUIT") == 0, kSite + 22)) {
      Reply(ctx, fd, "221 Goodbye\r\n");
      ctx.net().Close(st->conn);
      st->conn = -1;
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "SYST") == 0, kSite + 24)) {
      Reply(ctx, fd, "215 UNIX Type: L8\r\n");
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "FEAT") == 0, kSite + 26)) {
      Reply(ctx, fd, "211-Features:\r\n SIZE\r\n PASV\r\n211 End\r\n");
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "NOOP") == 0, kSite + 28)) {
      Reply(ctx, fd, "200 OK\r\n");
      return;
    }
    if (ctx.CovBranch(!st->logged_in, kSite + 30)) {
      Reply(ctx, fd, "530 Not logged in\r\n");
      return;
    }

    if (ctx.CovBranch(strcmp(verb, "PWD") == 0, kSite + 32)) {
      char msg[96];
      snprintf(msg, sizeof(msg), "257 \"%s\"\r\n", st->cwd);
      Reply(ctx, fd, msg);
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "CWD") == 0, kSite + 34)) {
      if (ctx.CovBranch(arg[0] == '/', kSite + 36)) {
        CopyCString(st->cwd, arg);
        st->cwd[sizeof(st->cwd) - 1] = '\0';
        Reply(ctx, fd, "250 OK\r\n");
      } else if (ctx.CovBranch(strcmp(arg, "..") == 0, kSite + 38)) {
        char* slash = strrchr(st->cwd, '/');
        if (slash != nullptr && slash != st->cwd) {
          *slash = '\0';
        } else {
          strcpy(st->cwd, "/");
        }
        Reply(ctx, fd, "250 OK\r\n");
      } else if (ctx.CovBranch(strlen(st->cwd) + strlen(arg) + 2 < sizeof(st->cwd),
                               kSite + 40)) {
        if (st->cwd[strlen(st->cwd) - 1] != '/') {
          strcat(st->cwd, "/");
        }
        strcat(st->cwd, arg);
        Reply(ctx, fd, "250 OK\r\n");
      } else {
        Reply(ctx, fd, "550 Path too long\r\n");
      }
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "TYPE") == 0, kSite + 42)) {
      if (ctx.CovBranch(arg[0] == 'I', kSite + 44)) {
        st->type_binary = 1;
        Reply(ctx, fd, "200 Binary\r\n");
      } else if (ctx.CovBranch(arg[0] == 'A', kSite + 46)) {
        st->type_binary = 0;
        Reply(ctx, fd, "200 ASCII\r\n");
      } else {
        Reply(ctx, fd, "504 Unknown type\r\n");
      }
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "PASV") == 0, kSite + 48)) {
      st->passive_mode = 1;
      Reply(ctx, fd, "227 Entering Passive Mode (127,0,0,1,8,0)\r\n");
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "PORT") == 0, kSite + 50)) {
      // Parse h1,h2,h3,h4,p1,p2.
      int commas = 0;
      for (const char* p = arg; *p != '\0'; p++) {
        commas += *p == ',' ? 1 : 0;
      }
      if (ctx.CovBranch(commas == 5, kSite + 52)) {
        st->passive_mode = 0;
        Reply(ctx, fd, "200 PORT OK\r\n");
      } else {
        Reply(ctx, fd, "501 Bad PORT\r\n");
      }
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "STOR") == 0, kSite + 54)) {
      if (ctx.CovBranch(arg[0] == '\0', kSite + 56)) {
        Reply(ctx, fd, "501 Need filename\r\n");
        return;
      }
      VfsFile* slot = FindFile(st, arg);
      if (slot == nullptr) {
        for (auto& f : st->files) {
          if (!f.used) {
            slot = &f;
            break;
          }
        }
      }
      if (ctx.CovBranch(slot == nullptr, kSite + 58)) {
        Reply(ctx, fd, "452 Disk full\r\n");
        return;
      }
      slot->used = 1;
      CopyCString(slot->name, arg);
      slot->disk_off = st->disk_brk;
      const char content[] = "uploaded";
      slot->size = sizeof(content) - 1;
      // A real write to the emulated disk: the snapshot layer must roll this
      // back (what AFLNet needs cleanup scripts for).
      ctx.disk().WriteBytes(slot->disk_off, content, slot->size);
      st->disk_brk += 512;
      Reply(ctx, fd, "226 Stored\r\n");
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "RETR") == 0, kSite + 60)) {
      VfsFile* f = FindFile(st, arg);
      if (ctx.CovBranch(f == nullptr, kSite + 62)) {
        Reply(ctx, fd, "550 No such file\r\n");
        return;
      }
      char content[64];
      const uint32_t n = f->size < sizeof(content) ? f->size : sizeof(content);
      ctx.disk().ReadBytes(f->disk_off, content, n);
      if (ctx.CovBranch(ctx.net().Send(fd, content, n) < static_cast<int>(n),
                        kSite + 96)) {
        // Transfer write failed or was cut short (EPIPE / short write).
        Reply(ctx, fd, "426 Transfer aborted\r\n");
        return;
      }
      Reply(ctx, fd, "226 Transfer complete\r\n");
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "SIZE") == 0, kSite + 64)) {
      VfsFile* f = FindFile(st, arg);
      if (ctx.CovBranch(f == nullptr, kSite + 66)) {
        Reply(ctx, fd, "550 No such file\r\n");
      } else {
        char msg[32];
        snprintf(msg, sizeof(msg), "213 %u\r\n", f->size);
        Reply(ctx, fd, msg);
      }
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "DELE") == 0, kSite + 68)) {
      VfsFile* f = FindFile(st, arg);
      if (ctx.CovBranch(f != nullptr, kSite + 70)) {
        f->used = 0;
        Reply(ctx, fd, "250 Deleted\r\n");
      } else {
        Reply(ctx, fd, "550 No such file\r\n");
      }
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "MKD") == 0, kSite + 72)) {
      Reply(ctx, fd, arg[0] != '\0' ? "257 Created\r\n" : "501 Need dirname\r\n");
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "RMD") == 0, kSite + 74)) {
      Reply(ctx, fd, "250 Removed\r\n");
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "RNFR") == 0, kSite + 76)) {
      CopyCString(st->rename_from, arg);
      Reply(ctx, fd, "350 Ready for RNTO\r\n");
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "RNTO") == 0, kSite + 78)) {
      if (ctx.CovBranch(st->rename_from[0] == '\0', kSite + 80)) {
        Reply(ctx, fd, "503 RNFR first\r\n");
        return;
      }
      VfsFile* f = FindFile(st, st->rename_from);
      if (ctx.CovBranch(f != nullptr, kSite + 82)) {
        CopyCString(f->name, arg);
        Reply(ctx, fd, "250 Renamed\r\n");
      } else {
        Reply(ctx, fd, "550 No such file\r\n");
      }
      st->rename_from[0] = '\0';
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "LIST") == 0, kSite + 84)) {
      char msg[256] = "150 Listing\r\n";
      for (const auto& f : st->files) {
        if (f.used) {
          ctx.Cov(kSite + 86);
          char row[48];
          snprintf(row, sizeof(row), "-rw-r--r-- %u %s\r\n", f.size, f.name);
          strncat(msg, row, sizeof(msg) - strlen(msg) - 1);
        }
      }
      strncat(msg, "226 Done\r\n", sizeof(msg) - strlen(msg) - 1);
      Reply(ctx, fd, msg);
      return;
    }
    ctx.Cov(kSite + 88);
    Reply(ctx, fd, "500 Unknown command\r\n");
  }
};

}  // namespace

std::unique_ptr<Target> MakeLightFtp() { return std::make_unique<LightFtp>(); }

}  // namespace nyx
