// proftpd analogue, carrying one of the two bugs only Nyx-Net found in
// ProFuzzBench (Table 1): a dangling current-directory pointer.
//
// Bug mechanics: CWD auto-creates directory-cache entries (mod-style
// auto-vivification) and points the session cwd at them; "RMD ." removes
// the current directory, but the removal fast path for deeply nested
// directories (three or more '/' separators) forgets to clear the session's
// cwd pointer; a subsequent LIST dereferences the freed entry. Coverage
// exposes the nesting-depth gradient on CWD and the distinct "RMD ."
// handling, so a coverage-guided fuzzer can assemble the trigger step by
// step — but it still needs on the order of 10^5 executions from the
// standard seeds, which only a snapshot fuzzer's throughput delivers within
// the campaign budget. That reproduces *why* only Nyx-Net found this crash.

#include <cstring>

#include "src/targets/registry.h"
#include "src/targets/textproto.h"

namespace nyx {
namespace {

constexpr uint32_t kSite = 3000;
constexpr uint16_t kPort = 2122;
constexpr uint64_t kStartupNs = 150'000'000;
constexpr uint64_t kRequestNs = 580'000;
constexpr uint64_t kAflnetExtraNs = 230'000'000;

struct DirEntry {
  char path[48];
  uint8_t used;
  uint8_t depth;  // number of '/' separators
};

struct State {
  int listener;
  int conn;
  uint8_t logged_in;
  uint8_t got_user;
  int8_t cwd_entry;  // index into dirs, -1 = root
  char username[32];
  LineBuffer rx;
  DirEntry dirs[8];
  uint32_t commands;
};

class ProFtpd final : public Target {
 public:
  TargetInfo info() const override {
    TargetInfo ti;
    ti.name = "proftpd";
    ti.port = kPort;
    ti.split = SplitStrategy::kCrlf;
    ti.desock_compatible = false;  // needs real accept semantics (mod_auth)
    ti.startup_ns = kStartupNs;
    ti.request_ns = kRequestNs;
    ti.aflnet_extra_ns = kAflnetExtraNs;
    ti.startup_dirty_pages = 16;
    ti.state_bytes = sizeof(State);
    return ti;
  }

  void Init(GuestContext& ctx) override {
    auto* st = ctx.State<State>();
    memset(st, 0, sizeof(*st));
    st->conn = -1;
    st->cwd_entry = -1;
    st->listener = ctx.net().Socket(SockKind::kStream);
    ctx.net().Bind(st->listener, kPort);
    ctx.net().Listen(st->listener, 8);
    ctx.TouchScratch(16, 0x33);
    ctx.Charge(kStartupNs);
  }

  void Step(GuestContext& ctx) override {
    auto* st = ctx.State<State>();
    for (;;) {
      if (ctx.crash().crashed) {
        return;
      }
      if (st->conn < 0) {
        const int fd = ctx.net().Accept(st->listener);
        if (fd < 0) {
          return;
        }
        ctx.Cov(kSite + 0);
        st->conn = fd;
        st->logged_in = 0;
        st->got_user = 0;
        st->cwd_entry = -1;
        st->rx.len = 0;
        Reply(ctx, fd, "220 ProFTPD 1.3.8 Server ready\r\n");
      }
      uint8_t buf[200];
      const int n = ctx.net().Recv(st->conn, buf, sizeof(buf));
      if (n == kErrAgain) {
        return;
      }
      if (n <= 0) {
        ctx.Cov(kSite + 1);
        ctx.net().Close(st->conn);
        st->conn = -1;
        continue;
      }
      st->rx.Push(buf, static_cast<uint32_t>(n));
      char line[200];
      while (st->rx.PopLine(line, sizeof(line))) {
        Handle(ctx, st, line);
        if (st->conn < 0 || ctx.crash().crashed) {
          break;
        }
      }
    }
  }

 private:
  static uint8_t PathDepth(const char* path) {
    uint8_t depth = 0;
    for (const char* p = path; *p != '\0'; p++) {
      depth += *p == '/' ? 1 : 0;
    }
    return depth;
  }

  DirEntry* FindDir(State* st, const char* path) {
    for (auto& d : st->dirs) {
      if (d.used && strncmp(d.path, path, sizeof(d.path)) == 0) {
        return &d;
      }
    }
    return nullptr;
  }

  void Handle(GuestContext& ctx, State* st, const char* line) {
    st->commands++;
    ctx.Charge(kRequestNs + ctx.cost().per_byte_ns * strlen(line));
    char verb[8];
    const char* arg = nullptr;
    SplitVerb(line, verb, sizeof(verb), &arg);
    const int fd = st->conn;

    if (ctx.CovBranch(strcmp(verb, "USER") == 0, kSite + 10)) {
      CopyCString(st->username, arg);
      st->got_user = 1;
      Reply(ctx, fd, "331 Password required\r\n");
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "PASS") == 0, kSite + 12)) {
      if (ctx.CovBranch(!st->got_user, kSite + 14)) {
        Reply(ctx, fd, "503 Login with USER first\r\n");
      } else {
        st->logged_in = 1;
        Reply(ctx, fd, "230 User logged in\r\n");
      }
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "QUIT") == 0, kSite + 16)) {
      Reply(ctx, fd, "221 Goodbye\r\n");
      ctx.net().Close(st->conn);
      st->conn = -1;
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "SYST") == 0, kSite + 18)) {
      Reply(ctx, fd, "215 UNIX Type: L8\r\n");
      return;
    }
    if (ctx.CovBranch(!st->logged_in, kSite + 20)) {
      Reply(ctx, fd, "530 Please login with USER and PASS\r\n");
      return;
    }

    if (ctx.CovBranch(strcmp(verb, "MKD") == 0, kSite + 22)) {
      if (ctx.CovBranch(arg[0] == '\0' || strlen(arg) >= sizeof(DirEntry{}.path), kSite + 24)) {
        Reply(ctx, fd, "501 Bad directory name\r\n");
        return;
      }
      // Coverage gradient over nesting depth: the fuzzer can climb toward
      // the deep-path handling one '/' at a time.
      const uint8_t depth = PathDepth(arg);
      if (ctx.CovBranch(depth >= 1, kSite + 26)) {
        ctx.Cov(kSite + 27);
      }
      if (ctx.CovBranch(depth >= 2, kSite + 28)) {
        ctx.Cov(kSite + 29);
      }
      if (ctx.CovBranch(depth >= 3, kSite + 30)) {
        ctx.Cov(kSite + 31);
      }
      DirEntry* slot = nullptr;
      for (auto& d : st->dirs) {
        if (!d.used) {
          slot = &d;
          break;
        }
      }
      if (ctx.CovBranch(slot == nullptr, kSite + 32)) {
        Reply(ctx, fd, "550 Too many directories\r\n");
        return;
      }
      slot->used = 1;
      slot->depth = depth;
      CopyCString(slot->path, arg);
      Reply(ctx, fd, "257 Directory created\r\n");
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "CWD") == 0, kSite + 34)) {
      if (ctx.CovBranch(arg[0] == '\0' || strlen(arg) >= sizeof(DirEntry{}.path), kSite + 72)) {
        Reply(ctx, fd, "550 Bad directory\r\n");
        return;
      }
      DirEntry* d = FindDir(st, arg);
      if (ctx.CovBranch(d == nullptr, kSite + 36)) {
        // Directory-cache auto-vivification: CWD into an unknown path
        // creates the cache entry (as MKD would).
        for (auto& slot : st->dirs) {
          if (!slot.used) {
            d = &slot;
            break;
          }
        }
        if (ctx.CovBranch(d == nullptr, kSite + 74)) {
          Reply(ctx, fd, "550 Directory cache full\r\n");
          return;
        }
        d->used = 1;
        d->depth = PathDepth(arg);
        CopyCString(d->path, arg);
      }
      // Depth gradient on the session cwd: the fuzzer can climb one '/' at
      // a time.
      if (ctx.CovBranch(d->depth >= 1, kSite + 62)) {
        ctx.Cov(kSite + 63);
      }
      if (ctx.CovBranch(d->depth >= 2, kSite + 64)) {
        ctx.Cov(kSite + 65);
      }
      if (ctx.CovBranch(d->depth >= 3, kSite + 66)) {
        ctx.Cov(kSite + 67);
      }
      st->cwd_entry = static_cast<int8_t>(d - st->dirs);
      Reply(ctx, fd, "250 CWD successful\r\n");
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "RMD") == 0, kSite + 38)) {
      DirEntry* d = nullptr;
      if (ctx.CovBranch(strcmp(arg, ".") == 0, kSite + 76)) {
        // "RMD .": remove the current directory. The dispatch switches over
        // the cwd's nesting depth (separate cache shards per depth in the
        // original) — real branches, and the gradient that lets coverage
        // assemble the full trigger.
        if (st->cwd_entry >= 0 && st->dirs[st->cwd_entry].used) {
          d = &st->dirs[st->cwd_entry];
          const uint8_t depth = d->depth < 3 ? d->depth : 3;
          ctx.Cov(kSite + 80 + depth);
        }
      } else {
        d = FindDir(st, arg);
      }
      if (ctx.CovBranch(d == nullptr, kSite + 40)) {
        Reply(ctx, fd, "550 No such directory\r\n");
        return;
      }
      // The removal fast path for deeply nested directories skips the
      // session-cwd fixup that the shallow path performs.
      if (ctx.CovBranch(d->depth >= 3, kSite + 42)) {
        d->used = 0;  // freed, but st->cwd_entry may still point here
      } else {
        d->used = 0;
        if (st->cwd_entry == d - st->dirs) {
          st->cwd_entry = -1;
        }
      }
      Reply(ctx, fd, "250 Directory removed\r\n");
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "LIST") == 0 || strcmp(verb, "NLST") == 0, kSite + 44)) {
      if (ctx.CovBranch(st->cwd_entry >= 0, kSite + 46)) {
        const DirEntry& d = st->dirs[st->cwd_entry];
        if (ctx.CovBranch(!d.used, kSite + 48)) {
          // Dangling cwd: dereference of freed directory state. Only Nyx-Net
          // reaches this within budget (Table 1).
          ctx.Crash(kCrashProftpdMkdNull, "null-deref-dangling-cwd");
          return;
        }
        char msg[96];
        snprintf(msg, sizeof(msg), "150 Listing %s\r\ndrwxr-xr-x .\r\n226 Done\r\n", d.path);
        Reply(ctx, fd, msg);
      } else {
        Reply(ctx, fd, "150 Listing /\r\n226 Done\r\n");
      }
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "PWD") == 0, kSite + 50)) {
      char msg[96];
      if (st->cwd_entry >= 0 && st->dirs[st->cwd_entry].used) {
        snprintf(msg, sizeof(msg), "257 \"/%s\"\r\n", st->dirs[st->cwd_entry].path);
      } else {
        snprintf(msg, sizeof(msg), "257 \"/\"\r\n");
      }
      Reply(ctx, fd, msg);
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "TYPE") == 0, kSite + 52)) {
      Reply(ctx, fd, arg[0] == 'I' || arg[0] == 'A' ? "200 Type set\r\n" : "504 Bad type\r\n");
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "PASV") == 0, kSite + 54)) {
      Reply(ctx, fd, "227 Entering Passive Mode (127,0,0,1,10,0)\r\n");
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "FEAT") == 0, kSite + 56)) {
      Reply(ctx, fd, "211-Features\r\n MDTM\r\n SIZE\r\n211 End\r\n");
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "NOOP") == 0, kSite + 58)) {
      Reply(ctx, fd, "200 NOOP ok\r\n");
      return;
    }
    ctx.Cov(kSite + 60);
    Reply(ctx, fd, "500 Command not understood\r\n");
  }
};

}  // namespace

std::unique_ptr<Target> MakeProFtpd() { return std::make_unique<ProFtpd>(); }

}  // namespace nyx
