// openssl (s_server) analogue: TLS 1.2 record and handshake layer.
//
// The deepest binary parser in the suite (9744 branches for AFLNet in
// Table 2): record framing, ClientHello with cipher-suite and extension
// parsing (SNI, ALPN, supported groups, session tickets), alert handling
// and renegotiation limits. No seeded bug.

#include <cstring>

#include "src/common/bytes.h"
#include "src/targets/registry.h"
#include "src/targets/textproto.h"

namespace nyx {
namespace {

constexpr uint32_t kSite = 11000;
constexpr uint16_t kPort = 4433;
constexpr uint64_t kStartupNs = 60'000'000;
constexpr uint64_t kRequestNs = 500'000;
constexpr uint64_t kAflnetExtraNs = 3'200'000'000;

constexpr uint8_t kRecCcs = 20;
constexpr uint8_t kRecAlert = 21;
constexpr uint8_t kRecHandshake = 22;
constexpr uint8_t kRecAppData = 23;

struct State {
  int listener;
  int conn;
  uint8_t hs_state;  // 0 start, 1 hello-done, 2 keyed, 3 finished
  uint8_t renegs;
  uint8_t sni_seen;
  uint8_t alpn_h2;
  uint8_t buf[4096];
  uint32_t buf_len;
  uint32_t records;
};

class OpenSsl final : public Target {
 public:
  TargetInfo info() const override {
    TargetInfo ti;
    ti.name = "openssl";
    ti.port = kPort;
    ti.split = SplitStrategy::kSegment;
    ti.desock_compatible = true;
    ti.startup_ns = kStartupNs;
    ti.request_ns = kRequestNs;
    ti.aflnet_extra_ns = kAflnetExtraNs;
    ti.startup_dirty_pages = 20;
    ti.state_bytes = sizeof(State);
    return ti;
  }

  void Init(GuestContext& ctx) override {
    auto* st = ctx.State<State>();
    memset(st, 0, sizeof(*st));
    st->conn = -1;
    st->listener = ctx.net().Socket(SockKind::kStream);
    ctx.net().Bind(st->listener, kPort);
    ctx.net().Listen(st->listener, 4);
    ctx.TouchScratch(20, 0xcc);
    ctx.Charge(kStartupNs);
  }

  void Step(GuestContext& ctx) override {
    auto* st = ctx.State<State>();
    for (;;) {
      if (ctx.crash().crashed) {
        return;
      }
      if (st->conn < 0) {
        const int fd = ctx.net().Accept(st->listener);
        if (fd < 0) {
          return;
        }
        ctx.Cov(kSite + 0);
        st->conn = fd;
        st->hs_state = 0;
        st->renegs = 0;
        st->buf_len = 0;
      }
      uint8_t chunk[512];
      const int n = ctx.net().Recv(st->conn, chunk, sizeof(chunk));
      if (n == kErrAgain) {
        return;
      }
      if (n <= 0) {
        ctx.Cov(kSite + 1);
        ctx.net().Close(st->conn);
        st->conn = -1;
        continue;
      }
      const uint32_t space = sizeof(st->buf) - st->buf_len;
      const uint32_t take = static_cast<uint32_t>(n) < space ? static_cast<uint32_t>(n) : space;
      memcpy(st->buf + st->buf_len, chunk, take);
      st->buf_len += take;
      Drain(ctx, st);
    }
  }

 private:
  void Drain(GuestContext& ctx, State* st) {
    while (st->conn >= 0 && !ctx.crash().crashed) {
      if (st->buf_len < 5) {
        return;
      }
      const uint8_t rec_type = st->buf[0];
      const uint16_t version = static_cast<uint16_t>(st->buf[1] << 8 | st->buf[2]);
      const uint16_t rec_len = static_cast<uint16_t>(st->buf[3] << 8 | st->buf[4]);
      if (ctx.CovBranch(rec_len > 16384 + 2048, kSite + 10)) {
        Alert(ctx, st, 22);  // record_overflow
        return;
      }
      if (ctx.CovBranch((version >> 8) != 3, kSite + 12)) {
        Alert(ctx, st, 70);  // protocol_version
        return;
      }
      if (5u + rec_len > st->buf_len) {
        return;  // incomplete record
      }
      st->records++;
      ctx.Charge(kRequestNs + ctx.cost().per_byte_ns * rec_len);
      HandleRecord(ctx, st, rec_type, st->buf + 5, rec_len);
      if (st->conn < 0) {
        return;
      }
      memmove(st->buf, st->buf + 5 + rec_len, st->buf_len - 5 - rec_len);
      st->buf_len -= 5 + rec_len;
    }
  }

  void HandleRecord(GuestContext& ctx, State* st, uint8_t type, const uint8_t* body,
                    uint32_t len) {
    switch (type) {
      case kRecHandshake:
        ctx.Cov(kSite + 14);
        HandleHandshake(ctx, st, body, len);
        return;
      case kRecCcs:
        ctx.Cov(kSite + 16);
        if (ctx.CovBranch(len != 1 || body[0] != 1, kSite + 18)) {
          Alert(ctx, st, 50);
          return;
        }
        if (ctx.CovBranch(st->hs_state == 2, kSite + 20)) {
          ctx.Cov(kSite + 22);
        } else {
          Alert(ctx, st, 10);  // unexpected_message
        }
        return;
      case kRecAlert:
        ctx.Cov(kSite + 24);
        if (ctx.CovBranch(len >= 2, kSite + 26)) {
          if (ctx.CovBranch(body[0] == 2, kSite + 28)) {
            ctx.net().Close(st->conn);  // fatal: tear down
            st->conn = -1;
          } else if (ctx.CovBranch(body[1] == 0, kSite + 30)) {
            ctx.Cov(kSite + 32);  // close_notify
            ctx.net().Close(st->conn);
            st->conn = -1;
          }
        }
        return;
      case kRecAppData:
        ctx.Cov(kSite + 34);
        if (ctx.CovBranch(st->hs_state != 3, kSite + 36)) {
          Alert(ctx, st, 10);
          return;
        }
        // Echo decrypted plaintext (s_server -www style).
        ctx.net().Send(st->conn, body, len);
        return;
      default:
        ctx.Cov(kSite + 38);
        Alert(ctx, st, 10);
        return;
    }
  }

  void HandleHandshake(GuestContext& ctx, State* st, const uint8_t* msg, uint32_t len) {
    if (ctx.CovBranch(len < 4, kSite + 40)) {
      Alert(ctx, st, 50);
      return;
    }
    const uint8_t hs_type = msg[0];
    const uint32_t hs_len =
        static_cast<uint32_t>(msg[1]) << 16 | static_cast<uint32_t>(msg[2]) << 8 | msg[3];
    if (ctx.CovBranch(4 + hs_len > len, kSite + 42)) {
      Alert(ctx, st, 50);
      return;
    }
    const uint8_t* body = msg + 4;

    switch (hs_type) {
      case 1: {  // ClientHello
        ctx.Cov(kSite + 44);
        if (ctx.CovBranch(st->hs_state == 3, kSite + 46)) {
          // Renegotiation.
          st->renegs++;
          if (ctx.CovBranch(st->renegs > 3, kSite + 48)) {
            Alert(ctx, st, 100);  // no_renegotiation
            return;
          }
        }
        if (ctx.CovBranch(hs_len < 35, kSite + 50)) {
          Alert(ctx, st, 50);
          return;
        }
        const uint16_t client_version = static_cast<uint16_t>(body[0] << 8 | body[1]);
        if (ctx.CovBranch(client_version < 0x0301, kSite + 52)) {
          Alert(ctx, st, 70);
          return;
        }
        if (ctx.CovBranch(client_version >= 0x0304, kSite + 54)) {
          ctx.Cov(kSite + 56);  // TLS1.3-capable hello
        }
        uint32_t p = 34;  // skip version + random
        const uint8_t sid_len = body[p];
        p += 1 + sid_len;
        if (ctx.CovBranch(sid_len > 32 || p + 2 > hs_len, kSite + 58)) {
          Alert(ctx, st, 47);
          return;
        }
        if (ctx.CovBranch(sid_len > 0, kSite + 60)) {
          ctx.Cov(kSite + 62);  // resumption attempt
        }
        // Cipher suites.
        const uint16_t cs_len = static_cast<uint16_t>(body[p] << 8 | body[p + 1]);
        p += 2;
        if (ctx.CovBranch(cs_len == 0 || cs_len % 2 != 0 || p + cs_len > hs_len, kSite + 64)) {
          Alert(ctx, st, 47);
          return;
        }
        bool has_supported = false;
        for (uint32_t i = 0; i + 1 < cs_len; i += 2) {
          const uint16_t suite = static_cast<uint16_t>(body[p + i] << 8 | body[p + i + 1]);
          if (suite == 0xc02f || suite == 0xc030 || suite == 0x009e) {
            has_supported = true;
          }
          if (suite == 0x00ff) {
            ctx.Cov(kSite + 66);  // EMPTY_RENEGOTIATION_INFO_SCSV
          }
        }
        p += cs_len;
        if (ctx.CovBranch(!has_supported, kSite + 68)) {
          Alert(ctx, st, 40);  // handshake_failure
          return;
        }
        // Compression methods.
        if (ctx.CovBranch(p >= hs_len, kSite + 70)) {
          Alert(ctx, st, 50);
          return;
        }
        const uint8_t comp_len = body[p];
        p += 1 + comp_len;
        // Extensions (optional).
        if (ctx.CovBranch(p + 2 <= hs_len, kSite + 72)) {
          const uint16_t ext_total = static_cast<uint16_t>(body[p] << 8 | body[p + 1]);
          p += 2;
          uint32_t ext_end = p + ext_total;
          if (ctx.CovBranch(ext_end > hs_len, kSite + 74)) {
            Alert(ctx, st, 50);
            return;
          }
          while (p + 4 <= ext_end) {
            const uint16_t ext_type = static_cast<uint16_t>(body[p] << 8 | body[p + 1]);
            const uint16_t ext_len = static_cast<uint16_t>(body[p + 2] << 8 | body[p + 3]);
            p += 4;
            if (ctx.CovBranch(p + ext_len > ext_end, kSite + 76)) {
              Alert(ctx, st, 50);
              return;
            }
            switch (ext_type) {
              case 0:  // SNI
                ctx.Cov(kSite + 78);
                if (ctx.CovBranch(ext_len >= 5 && body[p + 2] == 0, kSite + 80)) {
                  st->sni_seen = 1;
                }
                break;
              case 16: {  // ALPN
                ctx.Cov(kSite + 82);
                for (uint32_t i = 0; i + 2 < ext_len; i++) {
                  if (body[p + i] == 2 && body[p + i + 1] == 'h' && body[p + i + 2] == '2') {
                    ctx.Cov(kSite + 84);
                    st->alpn_h2 = 1;
                  }
                }
                break;
              }
              case 10:  // supported_groups
                ctx.Cov(kSite + 86);
                break;
              case 13:  // signature_algorithms
                ctx.Cov(kSite + 88);
                break;
              case 35:  // session_ticket
                ctx.Cov(kSite + 90);
                break;
              case 43:  // supported_versions
                ctx.Cov(kSite + 92);
                break;
              default:
                ctx.Cov(kSite + 94);
                break;
            }
            p += ext_len;
          }
        }
        st->hs_state = 1;
        SendHandshake(ctx, st, 2, 70);   // ServerHello
        SendHandshake(ctx, st, 11, 96);  // Certificate
        SendHandshake(ctx, st, 14, 0);   // ServerHelloDone
        return;
      }
      case 16:  // ClientKeyExchange
        ctx.Cov(kSite + 96);
        if (ctx.CovBranch(st->hs_state != 1, kSite + 98)) {
          Alert(ctx, st, 10);
          return;
        }
        st->hs_state = 2;
        return;
      case 20:  // Finished
        ctx.Cov(kSite + 100);
        if (ctx.CovBranch(st->hs_state != 2, kSite + 102)) {
          Alert(ctx, st, 10);
          return;
        }
        st->hs_state = 3;
        {
          uint8_t ccs[6] = {kRecCcs, 3, 3, 0, 1, 1};
          ctx.net().Send(st->conn, ccs, sizeof(ccs));
        }
        SendHandshake(ctx, st, 20, 12);  // server Finished
        return;
      case 0:  // HelloRequest from a client is bogus
        ctx.Cov(kSite + 104);
        Alert(ctx, st, 10);
        return;
      default:
        ctx.Cov(kSite + 106);
        Alert(ctx, st, 10);
        return;
    }
  }

  void SendHandshake(GuestContext& ctx, State* st, uint8_t type, uint32_t body_len) {
    Bytes rec;
    rec.push_back(kRecHandshake);
    rec.push_back(3);
    rec.push_back(3);
    PutBe16(rec, static_cast<uint16_t>(4 + body_len));
    rec.push_back(type);
    rec.push_back(0);
    PutBe16(rec, static_cast<uint16_t>(body_len));
    rec.resize(rec.size() + body_len, 0);
    ctx.net().Send(st->conn, rec.data(), rec.size());
  }

  void Alert(GuestContext& ctx, State* st, uint8_t desc) {
    uint8_t alert[7] = {kRecAlert, 3, 3, 0, 2, 2, desc};
    ctx.net().Send(st->conn, alert, sizeof(alert));
    ctx.net().Close(st->conn);
    st->conn = -1;
  }
};

}  // namespace

std::unique_ptr<Target> MakeOpenSsl() { return std::make_unique<OpenSsl>(); }

}  // namespace nyx
