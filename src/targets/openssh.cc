// openssh analogue: SSH-2.0 transport layer.
//
// Version-string exchange followed by binary packets
// [len u32][padlen u8][type u8][payload][padding]; KEXINIT name-list
// parsing, service requests and a userauth state machine. No seeded bug.

#include <cstring>

#include "src/common/bytes.h"
#include "src/targets/registry.h"
#include "src/targets/textproto.h"

namespace nyx {
namespace {

constexpr uint32_t kSite = 10000;
constexpr uint16_t kPort = 2222;
constexpr uint64_t kStartupNs = 8'000'000;
constexpr uint64_t kRequestNs = 1'800'000;
constexpr uint64_t kAflnetExtraNs = 27'000'000;

constexpr uint8_t kMsgKexInit = 20;
constexpr uint8_t kMsgNewKeys = 21;
constexpr uint8_t kMsgKexDhInit = 30;
constexpr uint8_t kMsgServiceRequest = 5;
constexpr uint8_t kMsgUserauthRequest = 50;
constexpr uint8_t kMsgDisconnect = 1;
constexpr uint8_t kMsgIgnore = 2;
constexpr uint8_t kMsgDebug = 4;

struct State {
  int listener;
  int conn;
  uint8_t got_version;
  uint8_t kex_done;
  uint8_t keys_live;
  uint8_t service_ok;
  uint8_t auth_failures;
  uint8_t buf[2048];
  uint32_t buf_len;
};

class OpenSsh final : public Target {
 public:
  TargetInfo info() const override {
    TargetInfo ti;
    ti.name = "openssh";
    ti.port = kPort;
    ti.split = SplitStrategy::kLengthPrefixBe32;
    ti.desock_compatible = true;
    ti.startup_ns = kStartupNs;
    ti.request_ns = kRequestNs;
    ti.aflnet_extra_ns = kAflnetExtraNs;
    ti.startup_dirty_pages = 8;
    ti.state_bytes = sizeof(State);
    return ti;
  }

  void Init(GuestContext& ctx) override {
    auto* st = ctx.State<State>();
    memset(st, 0, sizeof(*st));
    st->conn = -1;
    st->listener = ctx.net().Socket(SockKind::kStream);
    ctx.net().Bind(st->listener, kPort);
    ctx.net().Listen(st->listener, 4);
    ctx.TouchScratch(8, 0xbb);
    ctx.Charge(kStartupNs);
  }

  void Step(GuestContext& ctx) override {
    auto* st = ctx.State<State>();
    for (;;) {
      if (ctx.crash().crashed) {
        return;
      }
      if (st->conn < 0) {
        const int fd = ctx.net().Accept(st->listener);
        if (fd < 0) {
          return;
        }
        ctx.Cov(kSite + 0);
        st->conn = fd;
        st->got_version = 0;
        st->kex_done = 0;
        st->keys_live = 0;
        st->service_ok = 0;
        st->auth_failures = 0;
        st->buf_len = 0;
        Reply(ctx, fd, "SSH-2.0-OpenSSH_9.0\r\n");
      }
      uint8_t chunk[512];
      const int n = ctx.net().Recv(st->conn, chunk, sizeof(chunk));
      if (n == kErrAgain) {
        return;
      }
      if (n <= 0) {
        ctx.Cov(kSite + 1);
        ctx.net().Close(st->conn);
        st->conn = -1;
        continue;
      }
      const uint32_t space = sizeof(st->buf) - st->buf_len;
      const uint32_t take = static_cast<uint32_t>(n) < space ? static_cast<uint32_t>(n) : space;
      memcpy(st->buf + st->buf_len, chunk, take);
      st->buf_len += take;
      Drain(ctx, st);
    }
  }

 private:
  void Consume(State* st, uint32_t n) {
    memmove(st->buf, st->buf + n, st->buf_len - n);
    st->buf_len -= n;
  }

  void Drain(GuestContext& ctx, State* st) {
    // Version exchange first.
    if (!st->got_version) {
      for (uint32_t i = 0; i < st->buf_len; i++) {
        if (st->buf[i] == '\n') {
          if (ctx.CovBranch(i >= 7 && memcmp(st->buf, "SSH-2.0", 7) == 0, kSite + 10)) {
            st->got_version = 1;
            ctx.Cov(kSite + 12);
          } else if (ctx.CovBranch(i >= 7 && memcmp(st->buf, "SSH-1.", 6) == 0, kSite + 14)) {
            Reply(ctx, st->conn, "Protocol major versions differ.\r\n");
            Disconnect(ctx, st);
            return;
          } else {
            Disconnect(ctx, st);
            return;
          }
          Consume(st, i + 1);
          break;
        }
      }
      if (!st->got_version) {
        if (ctx.CovBranch(st->buf_len >= 255, kSite + 16)) {
          Disconnect(ctx, st);  // banner too long
        }
        return;
      }
    }

    while (st->conn >= 0 && !ctx.crash().crashed) {
      if (st->buf_len < 6) {
        return;
      }
      uint32_t pkt_len = static_cast<uint32_t>(st->buf[0]) << 24 |
                         static_cast<uint32_t>(st->buf[1]) << 16 |
                         static_cast<uint32_t>(st->buf[2]) << 8 | st->buf[3];
      if (ctx.CovBranch(pkt_len < 2 || pkt_len > 35000, kSite + 18)) {
        Disconnect(ctx, st);  // bad packet length
        return;
      }
      if (4 + pkt_len > st->buf_len) {
        return;  // incomplete packet
      }
      const uint8_t padlen = st->buf[4];
      // padlen + type byte + padding must fit: payload_len below must not
      // underflow (a classic SSH framing bug class).
      if (ctx.CovBranch(padlen + 2u > pkt_len, kSite + 20)) {
        Disconnect(ctx, st);
        return;
      }
      const uint8_t type = st->buf[5];
      const uint8_t* payload = st->buf + 6;
      const uint32_t payload_len = pkt_len - 2 - padlen;
      ctx.Charge(kRequestNs + ctx.cost().per_byte_ns * pkt_len);
      HandlePacket(ctx, st, type, payload, payload_len);
      if (st->conn < 0) {
        return;
      }
      Consume(st, 4 + pkt_len);
    }
  }

  // Parses an SSH name-list: u32 length + comma-separated names.
  bool ParseNameList(GuestContext& ctx, const uint8_t* p, uint32_t len, uint32_t* off,
                     uint32_t site) {
    if (static_cast<uint64_t>(*off) + 4 > len) {
      return false;
    }
    const uint32_t nl = static_cast<uint32_t>(p[*off]) << 24 |
                        static_cast<uint32_t>(p[*off + 1]) << 16 |
                        static_cast<uint32_t>(p[*off + 2]) << 8 | p[*off + 3];
    *off += 4;
    // 64-bit arithmetic: a hostile 4 GiB name-list length must not wrap the
    // bounds check (CVE-2002-0639 says hello).
    if (ctx.CovBranch(static_cast<uint64_t>(*off) + nl > len, site)) {
      return false;
    }
    // Count names (commas + 1) for coverage flavour.
    uint32_t names = nl > 0 ? 1 : 0;
    for (uint32_t i = 0; i < nl; i++) {
      names += p[*off + i] == ',' ? 1 : 0;
    }
    if (ctx.CovBranch(names > 4, site + 1)) {
      ctx.Cov(site + 2);
    }
    *off += nl;
    return true;
  }

  void HandlePacket(GuestContext& ctx, State* st, uint8_t type, const uint8_t* payload,
                    uint32_t len) {
    switch (type) {
      case kMsgKexInit: {
        ctx.Cov(kSite + 30);
        // 16-byte cookie + 10 name-lists + flags.
        if (ctx.CovBranch(len < 17, kSite + 32)) {
          Disconnect(ctx, st);
          return;
        }
        uint32_t off = 16;
        for (int list = 0; list < 10; list++) {
          if (!ParseNameList(ctx, payload, len, &off, kSite + 34 + list * 4)) {
            Disconnect(ctx, st);
            return;
          }
        }
        st->kex_done = 1;
        SendPacket(ctx, st, kMsgKexInit, 64);
        return;
      }
      case kMsgKexDhInit:
        ctx.Cov(kSite + 80);
        if (ctx.CovBranch(!st->kex_done, kSite + 82)) {
          Disconnect(ctx, st);
          return;
        }
        SendPacket(ctx, st, 31, 96);  // KEXDH_REPLY
        return;
      case kMsgNewKeys:
        ctx.Cov(kSite + 84);
        if (ctx.CovBranch(st->kex_done, kSite + 86)) {
          st->keys_live = 1;
          SendPacket(ctx, st, kMsgNewKeys, 0);
        } else {
          Disconnect(ctx, st);
        }
        return;
      case kMsgServiceRequest: {
        ctx.Cov(kSite + 88);
        if (ctx.CovBranch(!st->keys_live, kSite + 90)) {
          Disconnect(ctx, st);
          return;
        }
        if (ctx.CovBranch(len >= 16 && memcmp(payload + 4, "ssh-userauth", 12) == 0,
                          kSite + 92)) {
          st->service_ok = 1;
          SendPacket(ctx, st, 6, 16);  // SERVICE_ACCEPT
        } else {
          Disconnect(ctx, st);
        }
        return;
      }
      case kMsgUserauthRequest: {
        ctx.Cov(kSite + 94);
        if (ctx.CovBranch(!st->service_ok, kSite + 96)) {
          Disconnect(ctx, st);
          return;
        }
        // user string, service string, method string.
        const bool is_none = len > 8 && memchr(payload, 'n', len) != nullptr &&
                             memcmp(payload + len - 4, "none", 4) == 0;
        const bool is_password =
            len > 12 && memcmp(payload + len - 8, "password", 8) == 0;
        const bool is_pubkey = len > 12 && memcmp(payload + len - 9, "publickey", 9) == 0;
        if (ctx.CovBranch(is_none, kSite + 98)) {
          SendPacket(ctx, st, 51, 24);  // USERAUTH_FAILURE with methods list
        } else if (ctx.CovBranch(is_password, kSite + 100)) {
          st->auth_failures++;
          if (ctx.CovBranch(st->auth_failures > 5, kSite + 102)) {
            Disconnect(ctx, st);
            return;
          }
          SendPacket(ctx, st, 51, 24);
        } else if (ctx.CovBranch(is_pubkey, kSite + 104)) {
          SendPacket(ctx, st, 60, 32);  // USERAUTH_PK_OK-ish
        } else {
          ctx.Cov(kSite + 106);
          SendPacket(ctx, st, 51, 24);
        }
        return;
      }
      case kMsgDisconnect:
        ctx.Cov(kSite + 108);
        Disconnect(ctx, st);
        return;
      case kMsgIgnore:
      case kMsgDebug:
        ctx.Cov(kSite + 110);
        return;  // silently ignored
      default:
        ctx.Cov(kSite + 112);
        SendPacket(ctx, st, 3, 4);  // UNIMPLEMENTED
        return;
    }
  }

  void SendPacket(GuestContext& ctx, State* st, uint8_t type, uint32_t body) {
    Bytes pkt;
    PutBe32(pkt, body + 2);
    pkt.push_back(0);  // padlen
    pkt.push_back(type);
    pkt.resize(pkt.size() + body, 0);
    ctx.net().Send(st->conn, pkt.data(), pkt.size());
  }

  void Disconnect(GuestContext& ctx, State* st) {
    ctx.net().Close(st->conn);
    st->conn = -1;
  }
};

}  // namespace

std::unique_ptr<Target> MakeOpenSsh() { return std::make_unique<OpenSsh>(); }

}  // namespace nyx
