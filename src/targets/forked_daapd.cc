// forked-daapd analogue: a DAAP (iTunes-style) media server over HTTP.
//
// The slowest target in ProFuzzBench by far (0.4 execs/s for AFLNet, 13/s
// for Nyx-Net-none): huge startup (library scan, database open) and heavy
// per-request work. It forks a worker per connection. No seeded bug.

#include <cstdio>
#include <cstring>

#include "src/targets/registry.h"
#include "src/targets/textproto.h"

namespace nyx {
namespace {

constexpr uint32_t kSite = 8000;
constexpr uint16_t kPort = 3689;
constexpr uint64_t kStartupNs = 830'000'000;
constexpr uint64_t kRequestNs = 25'000'000;
constexpr uint64_t kAflnetExtraNs = 1'600'000'000;

struct State {
  int listener;
  int conn;
  uint32_t session_id;
  uint8_t logged_in;
  LineBuffer rx;
  char request_line[256];
  uint8_t in_headers;
  uint32_t db_queries;
};

class ForkedDaapd final : public Target {
 public:
  TargetInfo info() const override {
    TargetInfo ti;
    ti.name = "forked-daapd";
    ti.port = kPort;
    ti.split = SplitStrategy::kCrlf;
    ti.desock_compatible = true;  // ProFuzzBench's AFL++ setup runs it
    ti.startup_ns = kStartupNs;
    ti.request_ns = kRequestNs;
    ti.aflnet_extra_ns = kAflnetExtraNs;
    ti.startup_dirty_pages = 48;
    ti.state_bytes = sizeof(State);
    return ti;
  }

  void Init(GuestContext& ctx) override {
    auto* st = ctx.State<State>();
    memset(st, 0, sizeof(*st));
    st->conn = -1;
    st->listener = ctx.net().Socket(SockKind::kStream);
    ctx.net().Bind(st->listener, kPort);
    ctx.net().Listen(st->listener, 4);
    // Media library scan: populates a large cache (many dirty pages).
    ctx.TouchScratch(48, 0xaa);
    ctx.disk().WriteBytes(0, "songs.db", 8);
    ctx.Charge(kStartupNs);
  }

  void Step(GuestContext& ctx) override {
    auto* st = ctx.State<State>();
    for (;;) {
      if (ctx.crash().crashed) {
        return;
      }
      if (st->conn < 0) {
        const int fd = ctx.net().Accept(st->listener);
        if (fd < 0) {
          return;
        }
        ctx.Cov(kSite + 0);
        const int worker = ctx.net().ForkFdTable();
        ctx.net().SetCurrentProcess(worker);
        st->conn = fd;
        st->rx.len = 0;
        st->request_line[0] = '\0';
        st->in_headers = 0;
      }
      uint8_t buf[300];
      const int n = ctx.net().Recv(st->conn, buf, sizeof(buf));
      if (n == kErrAgain) {
        return;
      }
      if (n <= 0) {
        ctx.Cov(kSite + 1);
        ctx.net().Close(st->conn);
        ctx.net().ExitProcess(ctx.net().current_process());
        ctx.net().SetCurrentProcess(0);
        st->conn = -1;
        continue;
      }
      st->rx.Push(buf, static_cast<uint32_t>(n));
      char line[300];
      while (st->rx.PopLine(line, sizeof(line))) {
        if (!st->in_headers) {
          CopyCString(st->request_line, line);
          st->in_headers = 1;
        } else if (line[0] == '\0') {
          HandleRequest(ctx, st);
          st->in_headers = 0;
          st->request_line[0] = '\0';
        } else {
          // Header line: User-Agent gates some DAAP quirks.
          if (ctx.CovBranch(StartsWithNoCase(line, "User-Agent:"), kSite + 2)) {
            if (ctx.CovBranch(strstr(line, "iTunes") != nullptr, kSite + 3)) {
              ctx.Cov(kSite + 4);
            }
          }
        }
        if (st->conn < 0 || ctx.crash().crashed) {
          break;
        }
      }
    }
  }

 private:
  void HandleRequest(GuestContext& ctx, State* st) {
    ctx.Charge(kRequestNs);
    const int fd = st->conn;
    char verb[8];
    const char* path = nullptr;
    SplitVerb(st->request_line, verb, sizeof(verb), &path);

    if (ctx.CovBranch(strcmp(verb, "GET") != 0, kSite + 10)) {
      Reply(ctx, fd, "HTTP/1.1 405 Method Not Allowed\r\n\r\n");
      return;
    }
    char url[128];
    size_t u = 0;
    while (path[u] != '\0' && path[u] != ' ' && u < sizeof(url) - 1) {
      url[u] = path[u];
      u++;
    }
    url[u] = '\0';

    if (ctx.CovBranch(strcmp(url, "/server-info") == 0, kSite + 12)) {
      Reply(ctx, fd,
            "HTTP/1.1 200 OK\r\nContent-Type: application/x-dmap-tagged\r\n\r\nmsrv");
      return;
    }
    if (ctx.CovBranch(strcmp(url, "/content-codes") == 0, kSite + 14)) {
      Reply(ctx, fd, "HTTP/1.1 200 OK\r\n\r\nmccr");
      return;
    }
    if (ctx.CovBranch(strcmp(url, "/login") == 0, kSite + 16)) {
      st->logged_in = 1;
      st->session_id = 0xdaa9;
      Reply(ctx, fd, "HTTP/1.1 200 OK\r\n\r\nmlog-sessionid-0xdaa9");
      return;
    }
    if (ctx.CovBranch(strncmp(url, "/logout", 7) == 0, kSite + 18)) {
      st->logged_in = 0;
      Reply(ctx, fd, "HTTP/1.1 204 No Content\r\n\r\n");
      return;
    }
    if (ctx.CovBranch(strncmp(url, "/update", 7) == 0, kSite + 20)) {
      Reply(ctx, fd, st->logged_in ? "HTTP/1.1 200 OK\r\n\r\nmupd"
                                   : "HTTP/1.1 403 Forbidden\r\n\r\n");
      return;
    }
    if (ctx.CovBranch(strncmp(url, "/databases", 10) == 0, kSite + 22)) {
      if (ctx.CovBranch(!st->logged_in, kSite + 24)) {
        Reply(ctx, fd, "HTTP/1.1 403 Forbidden\r\n\r\n");
        return;
      }
      st->db_queries++;
      // Sub-resource dispatch: /databases/1/items, /containers, /browse.
      const char* sub = url + 10;
      if (ctx.CovBranch(strncmp(sub, "/1/items", 8) == 0, kSite + 26)) {
        // DAAP query parameter parsing: ?query=('dmap.itemname:*x*').
        const char* q = strchr(sub, '?');
        if (ctx.CovBranch(q != nullptr && strncmp(q, "?query=", 7) == 0, kSite + 28)) {
          if (ctx.CovBranch(strchr(q, '(') != nullptr && strchr(q, ')') != nullptr,
                            kSite + 30)) {
            ctx.Cov(kSite + 32);
          } else {
            Reply(ctx, fd, "HTTP/1.1 400 Bad Query\r\n\r\n");
            return;
          }
        }
        Reply(ctx, fd, "HTTP/1.1 200 OK\r\n\r\nadbs-items");
        return;
      }
      if (ctx.CovBranch(strncmp(sub, "/1/containers", 13) == 0, kSite + 34)) {
        Reply(ctx, fd, "HTTP/1.1 200 OK\r\n\r\naply");
        return;
      }
      if (ctx.CovBranch(strncmp(sub, "/1/browse/", 10) == 0, kSite + 36)) {
        const char* what = sub + 10;
        if (ctx.CovBranch(strncmp(what, "artists", 7) == 0, kSite + 38)) {
          Reply(ctx, fd, "HTTP/1.1 200 OK\r\n\r\nabar");
        } else if (ctx.CovBranch(strncmp(what, "albums", 6) == 0, kSite + 40)) {
          Reply(ctx, fd, "HTTP/1.1 200 OK\r\n\r\nabal");
        } else {
          Reply(ctx, fd, "HTTP/1.1 404 Not Found\r\n\r\n");
        }
        return;
      }
      Reply(ctx, fd, "HTTP/1.1 200 OK\r\n\r\navdb");
      return;
    }
    ctx.Cov(kSite + 42);
    Reply(ctx, fd, "HTTP/1.1 404 Not Found\r\n\r\n");
  }
};

}  // namespace

std::unique_ptr<Target> MakeForkedDaapd() { return std::make_unique<ForkedDaapd>(); }

}  // namespace nyx
