// tinydtls analogue: a DTLS 1.2 record/handshake parser over UDP.
//
// Seeded bug (found by every fuzzer in Table 1): an out-of-bounds read when
// a handshake fragment's fragment_length exceeds the bytes actually present
// in the record — the reassembly path trusts the header field.

#include <cstring>

#include "src/targets/registry.h"
#include "src/targets/textproto.h"

namespace nyx {
namespace {

constexpr uint32_t kSite = 12000;
constexpr uint16_t kPort = 5684;
constexpr uint64_t kStartupNs = 30'000'000;
constexpr uint64_t kRequestNs = 300'000;
constexpr uint64_t kAflnetExtraNs = 420'000'000;

constexpr uint8_t kContentHandshake = 22;
constexpr uint8_t kContentAlert = 21;
constexpr uint8_t kContentCcs = 20;
constexpr uint8_t kContentAppData = 23;

constexpr uint8_t kHsClientHello = 1;
constexpr uint8_t kHsClientKeyExchange = 16;
constexpr uint8_t kHsFinished = 20;

struct State {
  int sock;
  uint8_t handshake_state;  // 0=start,1=hello-verified,2=keyed,3=finished
  uint8_t cookie[8];
  uint8_t have_cookie;
  uint32_t records;
};

class TinyDtls final : public Target {
 public:
  TargetInfo info() const override {
    TargetInfo ti;
    ti.name = "tinydtls";
    ti.port = kPort;
    ti.transport = SockKind::kDgram;
    ti.split = SplitStrategy::kSegment;
    ti.desock_compatible = false;  // UDP handshake needs datagram semantics
    ti.startup_ns = kStartupNs;
    ti.request_ns = kRequestNs;
    ti.aflnet_extra_ns = kAflnetExtraNs;
    ti.startup_dirty_pages = 4;
    ti.state_bytes = sizeof(State);
    return ti;
  }

  void Init(GuestContext& ctx) override {
    auto* st = ctx.State<State>();
    memset(st, 0, sizeof(*st));
    st->sock = ctx.net().Socket(SockKind::kDgram);
    ctx.net().Bind(st->sock, kPort);
    ctx.TouchScratch(4, 0x66);
    ctx.Charge(kStartupNs);
  }

  void Step(GuestContext& ctx) override {
    auto* st = ctx.State<State>();
    for (;;) {
      if (ctx.crash().crashed) {
        return;
      }
      uint8_t pkt[512];
      const int n = ctx.net().Recv(st->sock, pkt, sizeof(pkt));
      if (n <= 0) {
        return;
      }
      HandleDatagram(ctx, st, pkt, static_cast<size_t>(n));
    }
  }

 private:
  void HandleDatagram(GuestContext& ctx, State* st, const uint8_t* pkt, size_t len) {
    ctx.Charge(kRequestNs + ctx.cost().per_byte_ns * len);
    size_t off = 0;
    // A datagram can carry several records.
    while (off + 13 <= len) {
      st->records++;
      const uint8_t content_type = pkt[off];
      const uint16_t version = static_cast<uint16_t>(pkt[off + 1] << 8 | pkt[off + 2]);
      const uint16_t epoch = static_cast<uint16_t>(pkt[off + 3] << 8 | pkt[off + 4]);
      const uint16_t rec_len = static_cast<uint16_t>(pkt[off + 11] << 8 | pkt[off + 12]);
      const size_t body = off + 13;

      if (ctx.CovBranch(version != 0xfefd && version != 0xfeff, kSite + 10)) {
        SendAlert(ctx, st, 70);  // protocol_version
        return;
      }
      if (ctx.CovBranch(body + rec_len > len, kSite + 12)) {
        SendAlert(ctx, st, 50);  // decode_error
        return;
      }
      if (ctx.CovBranch(epoch > 1, kSite + 14)) {
        return;  // silently drop future epochs
      }

      switch (content_type) {
        case kContentHandshake:
          ctx.Cov(kSite + 16);
          HandleHandshake(ctx, st, pkt + body, rec_len);
          break;
        case kContentAlert:
          ctx.Cov(kSite + 18);
          if (ctx.CovBranch(rec_len >= 2 && pkt[body] == 2, kSite + 20)) {
            st->handshake_state = 0;  // fatal alert resets
          }
          break;
        case kContentCcs:
          ctx.Cov(kSite + 22);
          if (ctx.CovBranch(st->handshake_state >= 2, kSite + 24)) {
            ctx.Cov(kSite + 26);
          }
          break;
        case kContentAppData:
          ctx.Cov(kSite + 28);
          if (ctx.CovBranch(st->handshake_state == 3, kSite + 30)) {
            // Echo application data (CoAP-ish usage).
            ctx.net().Send(st->sock, pkt + body, rec_len);
          } else {
            SendAlert(ctx, st, 10);  // unexpected_message
          }
          break;
        default:
          ctx.Cov(kSite + 32);
          SendAlert(ctx, st, 10);
          return;
      }
      if (ctx.crash().crashed) {
        return;
      }
      off = body + rec_len;
    }
    if (ctx.CovBranch(off != len, kSite + 34)) {
      SendAlert(ctx, st, 50);  // trailing garbage
    }
  }

  void HandleHandshake(GuestContext& ctx, State* st, const uint8_t* msg, size_t len) {
    if (ctx.CovBranch(len < 12, kSite + 40)) {
      SendAlert(ctx, st, 50);
      return;
    }
    const uint8_t hs_type = msg[0];
    const uint32_t msg_len =
        static_cast<uint32_t>(msg[1]) << 16 | static_cast<uint32_t>(msg[2]) << 8 | msg[3];
    const uint32_t frag_off =
        static_cast<uint32_t>(msg[6]) << 16 | static_cast<uint32_t>(msg[7]) << 8 | msg[8];
    const uint32_t frag_len =
        static_cast<uint32_t>(msg[9]) << 16 | static_cast<uint32_t>(msg[10]) << 8 | msg[11];

    if (ctx.CovBranch(frag_off + frag_len > msg_len, kSite + 42)) {
      SendAlert(ctx, st, 47);  // illegal_parameter
      return;
    }
    // BUG: the reassembly path only validated the fragment against msg_len
    // (above) but not against the bytes actually present in this record.
    if (ctx.CovBranch(12 + static_cast<size_t>(frag_len) > len, kSite + 44)) {
      // memcpy(reassembly_buf + frag_off, msg + 12, frag_len) reads past the
      // record (Table 1: all fuzzers find this).
      ctx.Crash(kCrashTinyDtlsFragLen, "oob-read-handshake-fragment-length");
      return;
    }

    switch (hs_type) {
      case kHsClientHello: {
        ctx.Cov(kSite + 46);
        // ClientHello body: version(2) random(32) session_id cookie ...
        const uint8_t* body = msg + 12;
        const size_t body_len = frag_len;
        if (ctx.CovBranch(body_len < 35, kSite + 48)) {
          SendAlert(ctx, st, 50);
          return;
        }
        const uint8_t sid_len = body[34];
        size_t p = 35 + sid_len;
        if (ctx.CovBranch(p >= body_len, kSite + 50)) {
          SendAlert(ctx, st, 50);
          return;
        }
        const uint8_t cookie_len = body[p];
        p++;
        if (ctx.CovBranch(cookie_len == 0, kSite + 52)) {
          // First flight: respond with HelloVerifyRequest carrying a cookie.
          st->have_cookie = 1;
          for (int i = 0; i < 8; i++) {
            st->cookie[i] = static_cast<uint8_t>(0xc0 + i);
          }
          uint8_t hvr[25] = {kContentHandshake, 0xfe, 0xfd};
          hvr[12] = 11;  // rec_len
          hvr[13] = 3;   // HelloVerifyRequest
          ctx.net().Send(st->sock, hvr, sizeof(hvr));
          return;
        }
        if (ctx.CovBranch(p + cookie_len > body_len, kSite + 54)) {
          SendAlert(ctx, st, 50);
          return;
        }
        if (ctx.CovBranch(
                st->have_cookie && cookie_len == 8 && memcmp(body + p, st->cookie, 8) == 0,
                kSite + 56)) {
          st->handshake_state = 1;
          uint8_t sh[40] = {kContentHandshake, 0xfe, 0xfd};
          sh[12] = 26;
          sh[13] = 2;  // ServerHello
          ctx.net().Send(st->sock, sh, sizeof(sh));
        } else {
          SendAlert(ctx, st, 40);  // handshake_failure (bad cookie)
        }
        return;
      }
      case kHsClientKeyExchange:
        ctx.Cov(kSite + 58);
        if (ctx.CovBranch(st->handshake_state == 1, kSite + 60)) {
          st->handshake_state = 2;
        } else {
          SendAlert(ctx, st, 10);
        }
        return;
      case kHsFinished:
        ctx.Cov(kSite + 62);
        if (ctx.CovBranch(st->handshake_state == 2, kSite + 64)) {
          st->handshake_state = 3;
          uint8_t fin[26] = {kContentHandshake, 0xfe, 0xfd};
          fin[12] = 12;
          fin[13] = kHsFinished;
          ctx.net().Send(st->sock, fin, sizeof(fin));
        } else {
          SendAlert(ctx, st, 10);
        }
        return;
      default:
        ctx.Cov(kSite + 66);
        SendAlert(ctx, st, 10);
        return;
    }
  }

  void SendAlert(GuestContext& ctx, State* st, uint8_t desc) {
    uint8_t alert[15] = {kContentAlert, 0xfe, 0xfd};
    alert[12] = 2;  // rec_len
    alert[13] = 2;  // fatal
    alert[14] = desc;
    ctx.net().Send(st->sock, alert, sizeof(alert));
  }
};

}  // namespace

std::unique_ptr<Target> MakeTinyDtls() { return std::make_unique<TinyDtls>(); }

}  // namespace nyx
