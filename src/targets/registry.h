// Registry of fuzz targets: the 13 ProFuzzBench analogues plus the case
// studies (lighttpd, mysql-client, firefox-ipc). The harness and benches
// look targets up by name; each target also declares which spec and stream
// splitter suit it.

#ifndef SRC_TARGETS_REGISTRY_H_
#define SRC_TARGETS_REGISTRY_H_

#include <optional>
#include <string>
#include <vector>

#include "src/fuzz/guest.h"
#include "src/spec/program.h"
#include "src/spec/spec.h"

namespace nyx {

struct TargetRegistration {
  std::string name;
  TargetFactory factory = nullptr;
  // Spec used to fuzz this target (most use Spec::GenericNetwork()).
  Spec (*make_spec)() = nullptr;
  // Seed inputs, built with the Builder the way a user would convert a PCAP.
  std::vector<Program> (*make_seeds)(const Spec& spec) = nullptr;
  // Crash ids this target can produce (empty if none) — used by Table 1.
  std::vector<uint32_t> known_crashes;
  bool in_profuzzbench = true;
};

const std::vector<TargetRegistration>& AllTargets();
std::optional<TargetRegistration> FindTarget(const std::string& name);

// Per-target factory declarations (each lives in its own translation unit).
std::unique_ptr<Target> MakeLightFtp();
std::unique_ptr<Target> MakeBftpd();
std::unique_ptr<Target> MakeProFtpd();
std::unique_ptr<Target> MakePureFtpd();
std::unique_ptr<Target> MakeDnsmasq();
std::unique_ptr<Target> MakeExim();
std::unique_ptr<Target> MakeLive555();
std::unique_ptr<Target> MakeForkedDaapd();
std::unique_ptr<Target> MakeKamailio();
std::unique_ptr<Target> MakeOpenSsh();
std::unique_ptr<Target> MakeOpenSsl();
std::unique_ptr<Target> MakeTinyDtls();
std::unique_ptr<Target> MakeDcmtk();
std::unique_ptr<Target> MakeLighttpd();
std::unique_ptr<Target> MakeMysqlClient();
std::unique_ptr<Target> MakeFirefoxIpc();

// Well-known crash ids (Table 1 and the case studies).
inline constexpr uint32_t kCrashDcmtkOobWrite = 0xa5a50001;       // ASan-dependent
inline constexpr uint32_t kCrashDcmtkLateHeap = 0xc0de0001;       // layout-dependent
inline constexpr uint32_t kCrashDnsmasqOobRead = 0xd5a10001;
inline constexpr uint32_t kCrashEximHeaderOverflow = 0xe4130001;  // Nyx-Net only
inline constexpr uint32_t kCrashLive555RangeNull = 0x55550001;
inline constexpr uint32_t kCrashProftpdMkdNull = 0x9f7d0001;      // Nyx-Net only
inline constexpr uint32_t kCrashPureFtpdOom = 0x9e0f0001;         // no-reset fuzzers only
inline constexpr uint32_t kCrashTinyDtlsFragLen = 0x7d715001;
inline constexpr uint32_t kCrashLighttpdAllocUnderflow = 0x119d0001;
inline constexpr uint32_t kCrashMysqlClientOobRead = 0x30360001;
inline constexpr uint32_t kCrashFirefoxIpcNullDeref = 0xff0c0001;

}  // namespace nyx

#endif  // SRC_TARGETS_REGISTRY_H_
