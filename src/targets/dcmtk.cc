// dcmtk analogue: a DICOM upper-layer (storescp-style) server.
//
// Seeded bug with the Table 1 footnote behaviour: a P-DATA-TF data element
// whose declared length exceeds its 128-byte staging buffer is copied with
// GuestContext::HeapWrite. With ASan the overflow aborts immediately ("the
// crash is found within the first 10 seconds"). Without ASan the write
// silently corrupts the neighbouring allocation; the corruption only crashes
// later — when the association release path frees the buffer — and only if
// the overflow ran past the layout-dependent gap, which is randomized per
// campaign ("Nyx-Net is able to find the bug in some runs, but not others
// depending on the initial memory layout").

#include <cstring>

#include "src/targets/registry.h"
#include "src/targets/textproto.h"

namespace nyx {
namespace {

constexpr uint32_t kSite = 13000;
constexpr uint16_t kPort = 11112;
constexpr uint64_t kStartupNs = 15'000'000;
constexpr uint64_t kRequestNs = 120'000;
constexpr uint64_t kAflnetExtraNs = 14'000'000;

constexpr uint8_t kPduAssociateRq = 0x01;
constexpr uint8_t kPduAssociateAc = 0x02;
constexpr uint8_t kPduAssociateRj = 0x03;
constexpr uint8_t kPduDataTf = 0x04;
constexpr uint8_t kPduReleaseRq = 0x05;
constexpr uint8_t kPduReleaseRp = 0x06;
constexpr uint8_t kPduAbort = 0x07;

struct State {
  int listener;
  int conn;
  uint8_t associated;
  uint8_t presentation_contexts;
  uint64_t element_buf;  // 128-byte staging buffer on the guest heap
  uint64_t neighbor_buf; // allocation behind the layout gap
  uint32_t layout_gap;   // randomized per campaign at Init
  uint8_t buf[4096];
  uint32_t buf_len;
  uint32_t elements_parsed;
};

class Dcmtk final : public Target {
 public:
  TargetInfo info() const override {
    TargetInfo ti;
    ti.name = "dcmtk";
    ti.port = kPort;
    ti.split = SplitStrategy::kSegment;
    ti.desock_compatible = false;  // association state machine needs sockets
    ti.startup_ns = kStartupNs;
    ti.request_ns = kRequestNs;
    ti.aflnet_extra_ns = kAflnetExtraNs;
    ti.startup_dirty_pages = 10;
    ti.state_bytes = sizeof(State);
    return ti;
  }

  void Init(GuestContext& ctx) override {
    auto* st = ctx.State<State>();
    memset(st, 0, sizeof(*st));
    st->conn = -1;
    st->listener = ctx.net().Socket(SockKind::kStream);
    ctx.net().Bind(st->listener, kPort);
    ctx.net().Listen(st->listener, 4);
    st->element_buf = ctx.Malloc(128);
    // Layout-dependent slack between the staging buffer and the next
    // allocation. Randomized once per campaign, like a real process's heap
    // layout: small gaps make the latent corruption easy to hit, large gaps
    // may keep it latent for the whole campaign.
    st->layout_gap = static_cast<uint32_t>(ctx.rng().Below(96)) * 16;
    if (st->layout_gap > 0) {
      ctx.Malloc(st->layout_gap);
    }
    st->neighbor_buf = ctx.Malloc(64);
    ctx.TouchScratch(10, 0xdd);
    ctx.Charge(kStartupNs);
  }

  void Step(GuestContext& ctx) override {
    auto* st = ctx.State<State>();
    for (;;) {
      if (ctx.crash().crashed) {
        return;
      }
      if (st->conn < 0) {
        const int fd = ctx.net().Accept(st->listener);
        if (fd < 0) {
          return;
        }
        ctx.Cov(kSite + 0);
        st->conn = fd;
        st->associated = 0;
        st->buf_len = 0;
      }
      uint8_t chunk[512];
      const int n = ctx.net().Recv(st->conn, chunk, sizeof(chunk));
      if (n == kErrAgain) {
        return;
      }
      if (n <= 0) {
        ctx.Cov(kSite + 1);
        ctx.net().Close(st->conn);
        st->conn = -1;
        continue;
      }
      const uint32_t space = sizeof(st->buf) - st->buf_len;
      const uint32_t take = static_cast<uint32_t>(n) < space ? static_cast<uint32_t>(n) : space;
      memcpy(st->buf + st->buf_len, chunk, take);
      st->buf_len += take;
      Drain(ctx, st);
    }
  }

 private:
  void Drain(GuestContext& ctx, State* st) {
    while (st->conn >= 0 && !ctx.crash().crashed) {
      if (st->buf_len < 6) {
        return;
      }
      const uint8_t pdu_type = st->buf[0];
      const uint32_t pdu_len = static_cast<uint32_t>(st->buf[2]) << 24 |
                               static_cast<uint32_t>(st->buf[3]) << 16 |
                               static_cast<uint32_t>(st->buf[4]) << 8 | st->buf[5];
      if (ctx.CovBranch(pdu_len > sizeof(st->buf) - 6, kSite + 10)) {
        Abort(ctx, st);
        return;
      }
      if (6 + pdu_len > st->buf_len) {
        return;
      }
      ctx.Charge(kRequestNs + ctx.cost().per_byte_ns * pdu_len);
      HandlePdu(ctx, st, pdu_type, st->buf + 6, pdu_len);
      if (st->conn < 0) {
        return;
      }
      memmove(st->buf, st->buf + 6 + pdu_len, st->buf_len - 6 - pdu_len);
      st->buf_len -= 6 + pdu_len;
    }
  }

  void HandlePdu(GuestContext& ctx, State* st, uint8_t type, const uint8_t* body, uint32_t len) {
    switch (type) {
      case kPduAssociateRq: {
        ctx.Cov(kSite + 12);
        // protocol version (2) + reserved (2) + called AE (16) + calling AE (16).
        if (ctx.CovBranch(len < 68, kSite + 14)) {
          Reject(ctx, st, 1);
          return;
        }
        const uint16_t version = static_cast<uint16_t>(body[0] << 8 | body[1]);
        if (ctx.CovBranch((version & 1) == 0, kSite + 16)) {
          Reject(ctx, st, 2);
          return;
        }
        // Called AE title must be printable and non-blank.
        bool blank = true;
        for (int i = 0; i < 16; i++) {
          const uint8_t c = body[4 + i];
          if (ctx.CovBranch(c != ' ' && (c < 0x20 || c > 0x7e), kSite + 18)) {
            Reject(ctx, st, 3);
            return;
          }
          blank &= c == ' ';
        }
        if (ctx.CovBranch(blank, kSite + 20)) {
          Reject(ctx, st, 3);
          return;
        }
        // Variable items: presentation contexts (0x20), app context (0x10).
        uint32_t p = 68;
        st->presentation_contexts = 0;
        while (p + 4 <= len) {
          const uint8_t item = body[p];
          const uint16_t item_len = static_cast<uint16_t>(body[p + 2] << 8 | body[p + 3]);
          p += 4;
          if (ctx.CovBranch(p + item_len > len, kSite + 22)) {
            Reject(ctx, st, 1);
            return;
          }
          if (ctx.CovBranch(item == 0x10, kSite + 24)) {
            ctx.Cov(kSite + 26);  // application context
          } else if (ctx.CovBranch(item == 0x20, kSite + 28)) {
            st->presentation_contexts++;
            if (ctx.CovBranch(st->presentation_contexts > 8, kSite + 30)) {
              Reject(ctx, st, 1);
              return;
            }
          } else if (ctx.CovBranch(item == 0x50, kSite + 32)) {
            ctx.Cov(kSite + 34);  // user information
          } else {
            ctx.Cov(kSite + 36);
          }
          p += item_len;
        }
        if (ctx.CovBranch(st->presentation_contexts == 0, kSite + 38)) {
          Reject(ctx, st, 1);
          return;
        }
        st->associated = 1;
        SendPdu(ctx, st, kPduAssociateAc, 68);
        return;
      }
      case kPduDataTf: {
        ctx.Cov(kSite + 40);
        if (ctx.CovBranch(!st->associated, kSite + 42)) {
          Abort(ctx, st);
          return;
        }
        // PDV items: [len u32][context id u8][flags u8][DICOM data].
        uint32_t p = 0;
        while (p + 6 <= len) {
          const uint32_t pdv_len = static_cast<uint32_t>(body[p]) << 24 |
                                   static_cast<uint32_t>(body[p + 1]) << 16 |
                                   static_cast<uint32_t>(body[p + 2]) << 8 | body[p + 3];
          if (ctx.CovBranch(pdv_len < 2 ||
                                static_cast<uint64_t>(p) + 4 + pdv_len > len,
                            kSite + 44)) {
            Abort(ctx, st);
            return;
          }
          ParseDicomData(ctx, st, body + p + 6, pdv_len - 2);
          if (ctx.crash().crashed) {
            return;
          }
          p += 4 + pdv_len;
        }
        SendPdu(ctx, st, kPduDataTf, 12);  // C-STORE-RSP
        return;
      }
      case kPduReleaseRq:
        ctx.Cov(kSite + 46);
        if (ctx.CovBranch(st->associated, kSite + 48)) {
          // Releasing the association frees the per-association buffers —
          // this is where latent (non-ASan) corruption of the neighbouring
          // allocation's header finally crashes, glibc-style.
          ctx.Free(st->neighbor_buf);
          if (ctx.crash().crashed) {
            return;
          }
          ctx.Free(st->element_buf);
          st->element_buf = ctx.Malloc(128);
          st->neighbor_buf = ctx.Malloc(64);
          st->associated = 0;
          SendPdu(ctx, st, kPduReleaseRp, 4);
        } else {
          Abort(ctx, st);
        }
        return;
      case kPduAbort:
        ctx.Cov(kSite + 50);
        ctx.net().Close(st->conn);
        st->conn = -1;
        return;
      default:
        ctx.Cov(kSite + 52);
        Abort(ctx, st);
        return;
    }
  }

  // Parses DICOM elements: [group u16le][element u16le][len u16le][data].
  void ParseDicomData(GuestContext& ctx, State* st, const uint8_t* data, uint32_t len) {
    uint32_t p = 0;
    while (p + 6 <= len) {
      st->elements_parsed++;
      const uint16_t group = static_cast<uint16_t>(data[p] | data[p + 1] << 8);
      const uint16_t elem_len = static_cast<uint16_t>(data[p + 4] | data[p + 5] << 8);
      p += 6;
      if (ctx.CovBranch(group == 0x0008, kSite + 54)) {
        ctx.Cov(kSite + 56);  // identifying group
      } else if (ctx.CovBranch(group == 0x0010, kSite + 58)) {
        ctx.Cov(kSite + 60);  // patient group
      }
      const uint32_t avail = len - p;
      const uint32_t copy_len = elem_len < avail ? elem_len : avail;
      // BUG: the declared element length is trusted for the staging copy
      // even when it exceeds the 128-byte buffer. ASan traps the overflow
      // immediately; without it the bytes land in the layout gap — and in
      // the neighbour's allocation header if copy_len reaches far enough,
      // which only a later free notices.
      if (ctx.CovBranch(copy_len > 0, kSite + 62)) {
        ctx.HeapWrite(st->element_buf, 0, data + p, copy_len);
        if (ctx.crash().crashed) {
          return;
        }
      }
      p += copy_len;
    }
  }

  void SendPdu(GuestContext& ctx, State* st, uint8_t type, uint32_t body_len) {
    Bytes pdu;
    pdu.push_back(type);
    pdu.push_back(0);
    PutBe32(pdu, body_len);
    pdu.resize(pdu.size() + body_len, 0);
    ctx.net().Send(st->conn, pdu.data(), pdu.size());
  }

  void Reject(GuestContext& ctx, State* st, uint8_t reason) {
    uint8_t rj[10] = {kPduAssociateRj, 0, 0, 0, 0, 4, 0, 1, 1, reason};
    ctx.net().Send(st->conn, rj, sizeof(rj));
    ctx.net().Close(st->conn);
    st->conn = -1;
  }

  void Abort(GuestContext& ctx, State* st) {
    uint8_t ab[10] = {kPduAbort, 0, 0, 0, 0, 4, 0, 0, 0, 0};
    ctx.net().Send(st->conn, ab, sizeof(ab));
    ctx.net().Close(st->conn);
    st->conn = -1;
  }
};

}  // namespace

std::unique_ptr<Target> MakeDcmtk() { return std::make_unique<Dcmtk>(); }

}  // namespace nyx
