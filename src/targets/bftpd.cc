// bftpd analogue: a fuller-featured FTP server than lightftp.
//
// No seeded bug (no fuzzer crashes bftpd in the paper); its role in the
// evaluation is coverage/throughput. Calibration: AFLNet ~4.2 execs/s,
// Nyx-Net-none ~670/s (Table 3).

#include <cstring>

#include "src/targets/registry.h"
#include "src/targets/textproto.h"

namespace nyx {
namespace {

constexpr uint32_t kSite = 2000;
constexpr uint16_t kPort = 2021;
constexpr uint64_t kStartupNs = 120'000'000;
constexpr uint64_t kRequestNs = 350'000;
constexpr uint64_t kAflnetExtraNs = 115'000'000;

struct State {
  int listener;
  int conn;
  uint8_t logged_in;
  uint8_t got_user;
  uint8_t epsv_mode;
  uint8_t xfer_mode;  // 0 = stream, 1 = block
  uint8_t structure;  // 0 = file, 1 = record
  uint32_t rest_offset;
  char username[32];
  char cwd[64];
  LineBuffer rx;
  char last_cmd[8];
  uint32_t commands;
  uint32_t uploads;
};

class Bftpd final : public Target {
 public:
  TargetInfo info() const override {
    TargetInfo ti;
    ti.name = "bftpd";
    ti.port = kPort;
    ti.split = SplitStrategy::kCrlf;
    ti.desock_compatible = false;  // bftpd forks per connection
    ti.startup_ns = kStartupNs;
    ti.request_ns = kRequestNs;
    ti.aflnet_extra_ns = kAflnetExtraNs;
    ti.startup_dirty_pages = 10;
    ti.state_bytes = sizeof(State);
    return ti;
  }

  void Init(GuestContext& ctx) override {
    auto* st = ctx.State<State>();
    memset(st, 0, sizeof(*st));
    st->conn = -1;
    strcpy(st->cwd, "/");
    st->listener = ctx.net().Socket(SockKind::kStream);
    ctx.net().Bind(st->listener, kPort);
    ctx.net().Listen(st->listener, 8);
    ctx.TouchScratch(10, 0x22);
    ctx.Charge(kStartupNs);
  }

  void Step(GuestContext& ctx) override {
    auto* st = ctx.State<State>();
    for (;;) {
      if (ctx.crash().crashed) {
        return;
      }
      if (st->conn < 0) {
        const int fd = ctx.net().Accept(st->listener);
        if (fd < 0) {
          return;
        }
        ctx.Cov(kSite + 0);
        // bftpd forks a session child that inherits the connection.
        const int child = ctx.net().ForkFdTable();
        ctx.net().SetCurrentProcess(child);
        st->conn = fd;
        st->logged_in = 0;
        st->got_user = 0;
        st->rx.len = 0;
        Reply(ctx, fd, "220 bftpd 4.6 at your service\r\n");
      }
      uint8_t buf[200];
      const int n = ctx.net().Recv(st->conn, buf, sizeof(buf));
      if (n == kErrAgain) {
        return;
      }
      if (n <= 0) {
        ctx.Cov(kSite + 1);
        ctx.net().Close(st->conn);
        ctx.net().ExitProcess(ctx.net().current_process());
        ctx.net().SetCurrentProcess(0);
        st->conn = -1;
        continue;
      }
      st->rx.Push(buf, static_cast<uint32_t>(n));
      char line[200];
      while (st->rx.PopLine(line, sizeof(line))) {
        Handle(ctx, st, line);
        if (st->conn < 0 || ctx.crash().crashed) {
          break;
        }
      }
    }
  }

 private:
  void Handle(GuestContext& ctx, State* st, const char* line) {
    st->commands++;
    ctx.Charge(kRequestNs + ctx.cost().per_byte_ns * strlen(line));
    char verb[8];
    const char* arg = nullptr;
    SplitVerb(line, verb, sizeof(verb), &arg);
    CopyCString(st->last_cmd, verb);
    const int fd = st->conn;

    if (ctx.CovBranch(strcmp(verb, "USER") == 0, kSite + 10)) {
      CopyCString(st->username, arg);
      st->got_user = 1;
      Reply(ctx, fd, "331 Password please\r\n");
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "PASS") == 0, kSite + 12)) {
      if (ctx.CovBranch(st->got_user == 0, kSite + 14)) {
        Reply(ctx, fd, "503 USER first\r\n");
      } else if (ctx.CovBranch(strcmp(st->username, "root") == 0, kSite + 16)) {
        Reply(ctx, fd, "530 Root login not allowed\r\n");
      } else {
        st->logged_in = 1;
        Reply(ctx, fd, "230 User logged in\r\n");
      }
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "QUIT") == 0, kSite + 18)) {
      Reply(ctx, fd, "221 Bye\r\n");
      ctx.net().Close(st->conn);
      st->conn = -1;
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "HELP") == 0, kSite + 20)) {
      Reply(ctx, fd, "214-Commands:\r\n USER PASS QUIT HELP STAT\r\n214 End\r\n");
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "STAT") == 0, kSite + 22)) {
      char msg[96];
      snprintf(msg, sizeof(msg), "211-Status\r\n Commands: %u\r\n211 End\r\n", st->commands);
      Reply(ctx, fd, msg);
      return;
    }
    if (ctx.CovBranch(!st->logged_in, kSite + 24)) {
      Reply(ctx, fd, "530 Login first\r\n");
      return;
    }

    if (ctx.CovBranch(strcmp(verb, "CWD") == 0, kSite + 26)) {
      if (ctx.CovBranch(strlen(arg) >= sizeof(st->cwd) - 1, kSite + 28)) {
        Reply(ctx, fd, "550 Path too long\r\n");
      } else {
        CopyCString(st->cwd, arg);
        Reply(ctx, fd, "250 OK\r\n");
      }
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "CDUP") == 0, kSite + 30)) {
      char* slash = strrchr(st->cwd, '/');
      if (ctx.CovBranch(slash != nullptr && slash != st->cwd, kSite + 32)) {
        *slash = '\0';
      }
      Reply(ctx, fd, "250 OK\r\n");
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "PWD") == 0 || strcmp(verb, "XPWD") == 0, kSite + 34)) {
      char msg[96];
      snprintf(msg, sizeof(msg), "257 \"%s\" is cwd\r\n", st->cwd);
      Reply(ctx, fd, msg);
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "REST") == 0, kSite + 36)) {
      uint32_t off = 0;
      bool digits = arg[0] != '\0';
      for (const char* p = arg; *p != '\0'; p++) {
        if (*p < '0' || *p > '9') {
          digits = false;
          break;
        }
        off = off * 10 + static_cast<uint32_t>(*p - '0');
      }
      if (ctx.CovBranch(digits, kSite + 38)) {
        st->rest_offset = off;
        Reply(ctx, fd, "350 Restarting\r\n");
      } else {
        Reply(ctx, fd, "501 Bad offset\r\n");
      }
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "MODE") == 0, kSite + 40)) {
      if (ctx.CovBranch(arg[0] == 'S', kSite + 42)) {
        st->xfer_mode = 0;
        Reply(ctx, fd, "200 Stream mode\r\n");
      } else if (ctx.CovBranch(arg[0] == 'B', kSite + 44)) {
        st->xfer_mode = 1;
        Reply(ctx, fd, "200 Block mode\r\n");
      } else {
        Reply(ctx, fd, "504 Bad mode\r\n");
      }
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "STRU") == 0, kSite + 46)) {
      if (ctx.CovBranch(arg[0] == 'F', kSite + 48)) {
        st->structure = 0;
        Reply(ctx, fd, "200 File structure\r\n");
      } else if (ctx.CovBranch(arg[0] == 'R', kSite + 50)) {
        st->structure = 1;
        Reply(ctx, fd, "200 Record structure\r\n");
      } else {
        Reply(ctx, fd, "504 Bad structure\r\n");
      }
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "EPSV") == 0, kSite + 52)) {
      st->epsv_mode = 1;
      Reply(ctx, fd, "229 Entering Extended Passive Mode (|||2048|)\r\n");
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "EPRT") == 0, kSite + 54)) {
      // |1|ip|port|
      if (ctx.CovBranch(arg[0] == '|' && (arg[1] == '1' || arg[1] == '2'), kSite + 56)) {
        st->epsv_mode = 0;
        Reply(ctx, fd, "200 EPRT OK\r\n");
      } else {
        Reply(ctx, fd, "501 Bad EPRT\r\n");
      }
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "ALLO") == 0, kSite + 58)) {
      Reply(ctx, fd, "202 No storage allocation needed\r\n");
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "APPE") == 0 || strcmp(verb, "STOR") == 0, kSite + 60)) {
      if (ctx.CovBranch(arg[0] == '\0', kSite + 62)) {
        Reply(ctx, fd, "501 Need filename\r\n");
        return;
      }
      st->uploads++;
      const char blob[] = "bftpd-data";
      ctx.disk().WriteBytes(8192 + st->uploads * 512ull, blob, sizeof(blob) - 1);
      Reply(ctx, fd, verb[0] == 'A' ? "226 Appended\r\n" : "226 Stored\r\n");
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "ABOR") == 0, kSite + 64)) {
      Reply(ctx, fd, "226 Abort processed\r\n");
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "SITE") == 0, kSite + 66)) {
      if (ctx.CovBranch(StartsWithNoCase(arg, "CHMOD"), kSite + 68)) {
        Reply(ctx, fd, "200 CHMOD done\r\n");
      } else if (ctx.CovBranch(StartsWithNoCase(arg, "IDLE"), kSite + 70)) {
        Reply(ctx, fd, "200 IDLE set\r\n");
      } else {
        Reply(ctx, fd, "500 Unknown SITE\r\n");
      }
      return;
    }
    ctx.Cov(kSite + 72);
    Reply(ctx, fd, "500 Unknown command\r\n");
  }
};

}  // namespace

std::unique_ptr<Target> MakeBftpd() { return std::make_unique<Bftpd>(); }

}  // namespace nyx
