// MySQL client analogue (case study, paper section 5.4).
//
// This is a *client* target: the program under test connects out and parses
// server responses, so the fuzzer plays the server. Running the five-step
// workflow from the paper against it "yields an out-of-bound read on the
// current version of the client after a few minutes": the result-set parser
// trusts the column-count length-encoded integer and reads column
// definitions past the packet.

#include <cstring>

#include "src/targets/registry.h"
#include "src/targets/textproto.h"

namespace nyx {
namespace {

constexpr uint32_t kSite = 15000;
constexpr uint16_t kServerPort = 3306;
constexpr uint64_t kStartupNs = 10'000'000;
constexpr uint64_t kRequestNs = 150'000;
constexpr uint64_t kAflnetExtraNs = 30'000'000;

enum ClientPhase : uint8_t {
  kPhaseAwaitGreeting = 0,
  kPhaseAuthSent,
  kPhaseReady,
  kPhaseAwaitColumns,
  kPhaseAwaitRows,
};

struct State {
  int sock;
  uint8_t phase;
  uint8_t seq;
  uint32_t expected_columns;
  uint32_t columns_seen;
  uint8_t server_caps_cs;  // client-server protocol capability
  uint8_t buf[2048];
  uint32_t buf_len;
};

class MysqlClient final : public Target {
 public:
  TargetInfo info() const override {
    TargetInfo ti;
    ti.name = "mysql-client";
    ti.port = kServerPort;
    ti.split = SplitStrategy::kSegment;
    ti.is_client = true;
    ti.desock_compatible = false;
    ti.startup_ns = kStartupNs;
    ti.request_ns = kRequestNs;
    ti.aflnet_extra_ns = kAflnetExtraNs;
    ti.startup_dirty_pages = 6;
    ti.state_bytes = sizeof(State);
    return ti;
  }

  void Init(GuestContext& ctx) override {
    auto* st = ctx.State<State>();
    memset(st, 0, sizeof(*st));
    st->sock = ctx.net().Socket(SockKind::kStream);
    ctx.net().Connect(st->sock, kServerPort);
    st->phase = kPhaseAwaitGreeting;
    ctx.TouchScratch(6, 0xf1);
    ctx.Charge(kStartupNs);
  }

  void Step(GuestContext& ctx) override {
    auto* st = ctx.State<State>();
    for (;;) {
      if (ctx.crash().crashed) {
        return;
      }
      uint8_t chunk[512];
      const int n = ctx.net().Recv(st->sock, chunk, sizeof(chunk));
      if (n <= 0) {
        return;
      }
      const uint32_t space = sizeof(st->buf) - st->buf_len;
      const uint32_t take = static_cast<uint32_t>(n) < space ? static_cast<uint32_t>(n) : space;
      memcpy(st->buf + st->buf_len, chunk, take);
      st->buf_len += take;
      Drain(ctx, st);
    }
  }

 private:
  void Drain(GuestContext& ctx, State* st) {
    // MySQL wire packets: [len u24le][seq u8][payload].
    while (!ctx.crash().crashed) {
      if (st->buf_len < 4) {
        return;
      }
      const uint32_t len = static_cast<uint32_t>(st->buf[0]) |
                           static_cast<uint32_t>(st->buf[1]) << 8 |
                           static_cast<uint32_t>(st->buf[2]) << 16;
      if (ctx.CovBranch(len > sizeof(st->buf) - 4, kSite + 10)) {
        Disconnect(ctx, st);
        return;
      }
      if (4 + len > st->buf_len) {
        return;
      }
      st->seq = st->buf[3];
      ctx.Charge(kRequestNs + ctx.cost().per_byte_ns * len);
      HandlePacket(ctx, st, st->buf + 4, len);
      memmove(st->buf, st->buf + 4 + len, st->buf_len - 4 - len);
      st->buf_len -= 4 + len;
    }
  }

  // Length-encoded integer; returns bytes consumed (0 on error).
  uint32_t ReadLenEnc(GuestContext& ctx, const uint8_t* p, uint32_t len, uint64_t* out) {
    if (len == 0) {
      return 0;
    }
    const uint8_t first = p[0];
    if (ctx.CovBranch(first < 0xfb, kSite + 12)) {
      *out = first;
      return 1;
    }
    if (ctx.CovBranch(first == 0xfc, kSite + 14)) {
      if (len < 3) {
        return 0;
      }
      *out = static_cast<uint64_t>(p[1]) | static_cast<uint64_t>(p[2]) << 8;
      return 3;
    }
    if (ctx.CovBranch(first == 0xfd, kSite + 16)) {
      if (len < 4) {
        return 0;
      }
      *out = static_cast<uint64_t>(p[1]) | static_cast<uint64_t>(p[2]) << 8 |
             static_cast<uint64_t>(p[3]) << 16;
      return 4;
    }
    if (ctx.CovBranch(first == 0xfe, kSite + 18)) {
      if (len < 9) {
        return 0;
      }
      uint64_t v = 0;
      for (int i = 0; i < 8; i++) {
        v |= static_cast<uint64_t>(p[1 + i]) << (8 * i);
      }
      *out = v;
      return 9;
    }
    return 0;  // 0xfb (NULL) / 0xff invalid here
  }

  void HandlePacket(GuestContext& ctx, State* st, const uint8_t* pkt, uint32_t len) {
    switch (st->phase) {
      case kPhaseAwaitGreeting: {
        ctx.Cov(kSite + 20);
        // Greeting: [proto u8][version \0][thread id u32][salt 8]\0[caps u16]...
        if (ctx.CovBranch(len < 20, kSite + 22)) {
          Disconnect(ctx, st);
          return;
        }
        if (ctx.CovBranch(pkt[0] != 10, kSite + 24)) {
          if (ctx.CovBranch(pkt[0] == 0xff, kSite + 26)) {
            // ERR packet before handshake (server too busy).
            Disconnect(ctx, st);
            return;
          }
          Disconnect(ctx, st);
          return;
        }
        // Version string must be NUL-terminated within the packet.
        uint32_t v = 1;
        while (v < len && pkt[v] != 0) {
          v++;
        }
        if (ctx.CovBranch(v >= len || v - 1 > 32, kSite + 28)) {
          Disconnect(ctx, st);
          return;
        }
        if (ctx.CovBranch(v + 14 > len, kSite + 30)) {
          Disconnect(ctx, st);
          return;
        }
        st->server_caps_cs = 1;
        // Send auth response.
        uint8_t auth[36] = {32, 0, 0, 1};
        memcpy(auth + 4, "\x8d\xa6\x03\x00", 4);  // client flags
        ctx.net().Send(st->sock, auth, sizeof(auth));
        st->phase = kPhaseAuthSent;
        return;
      }
      case kPhaseAuthSent: {
        ctx.Cov(kSite + 32);
        if (ctx.CovBranch(len >= 1 && pkt[0] == 0x00, kSite + 34)) {
          st->phase = kPhaseReady;
          // Issue the query the user typed ("SHOW DATABASES").
          uint8_t query[20] = {15, 0, 0, 0, 0x03};
          memcpy(query + 5, "SHOW DATABASES", 14);
          ctx.net().Send(st->sock, query, sizeof(query));
          st->phase = kPhaseAwaitColumns;
          return;
        }
        if (ctx.CovBranch(len >= 3 && pkt[0] == 0xff, kSite + 36)) {
          // ERR: print message & exit. Message must be valid ASCII.
          for (uint32_t i = 3; i < len; i++) {
            if (ctx.CovBranch(pkt[i] >= 0x80, kSite + 38)) {
              break;
            }
          }
          Disconnect(ctx, st);
          return;
        }
        if (ctx.CovBranch(len >= 1 && pkt[0] == 0xfe, kSite + 40)) {
          ctx.Cov(kSite + 42);  // auth switch request
          Disconnect(ctx, st);
          return;
        }
        Disconnect(ctx, st);
        return;
      }
      case kPhaseAwaitColumns: {
        ctx.Cov(kSite + 44);
        uint64_t ncols = 0;
        const uint32_t used = ReadLenEnc(ctx, pkt, len, &ncols);
        if (ctx.CovBranch(used == 0, kSite + 46)) {
          Disconnect(ctx, st);
          return;
        }
        // BUG (section 5.4): the column count is trusted without an upper
        // bound; the client allocates a small fixed array of column
        // metadata and indexes it with the running column counter while
        // parsing definitions — reading out of bounds once the wire
        // carries more definitions than MAX_COLUMNS.
        st->expected_columns = static_cast<uint32_t>(ncols);
        st->columns_seen = 0;
        if (ctx.CovBranch(ncols == 0, kSite + 48)) {
          st->phase = kPhaseReady;  // OK-style empty result
          return;
        }
        st->phase = kPhaseAwaitRows;
        return;
      }
      case kPhaseAwaitRows: {
        ctx.Cov(kSite + 50);
        if (ctx.CovBranch(len >= 1 && pkt[0] == 0xfe, kSite + 52)) {
          // EOF: end of column definitions / rows.
          st->phase = kPhaseReady;
          return;
        }
        // A column-definition packet.
        st->columns_seen++;
        if (ctx.CovBranch(st->columns_seen > 16, kSite + 54)) {
          // columns_seen indexes a 16-entry metadata array: OOB read.
          ctx.Crash(kCrashMysqlClientOobRead, "oob-read-column-metadata");
          return;
        }
        if (ctx.CovBranch(st->columns_seen > st->expected_columns, kSite + 56)) {
          // More definitions than declared: the real client tolerates this,
          // feeding the counter further.
          ctx.Cov(kSite + 58);
        }
        return;
      }
      case kPhaseReady:
        ctx.Cov(kSite + 60);
        return;  // unsolicited packet after completion: ignored
    }
  }

  void Disconnect(GuestContext& ctx, State* st) {
    ctx.net().Close(st->sock);
    // The client would exit here; keep draining nothing.
    st->phase = kPhaseReady;
  }
};

}  // namespace

std::unique_ptr<Target> MakeMysqlClient() { return std::make_unique<MysqlClient>(); }

}  // namespace nyx
