// kamailio analogue: a SIP proxy/registrar over UDP.
//
// Kamailio is the largest parser in ProFuzzBench (7222 branches for AFLNet,
// +47% for Nyx-Net — the biggest coverage win in Table 2). Accordingly this
// target has the deepest parsing surface here: request-line and method
// dispatch, SIP URIs with parameters, Via/From/To/CSeq/Contact/Expires
// headers, and a registrar binding table. No seeded bug.

#include <cstdio>
#include <cstring>

#include "src/targets/registry.h"
#include "src/targets/textproto.h"

namespace nyx {
namespace {

constexpr uint32_t kSite = 9000;
constexpr uint16_t kPort = 5060;
constexpr uint64_t kStartupNs = 100'000'000;
constexpr uint64_t kRequestNs = 1'100'000;
constexpr uint64_t kAflnetExtraNs = 140'000'000;

struct Binding {
  char aor[48];
  char contact[48];
  uint32_t expires;
  uint8_t used;
};

struct State {
  int sock;
  uint32_t requests;
  Binding bindings[8];
  uint32_t dialogs;
};

struct SipUri {
  char user[32];
  char host[48];
  uint16_t port;
  uint8_t has_lr;
  uint8_t has_transport;
  uint8_t valid;
};

class Kamailio final : public Target {
 public:
  TargetInfo info() const override {
    TargetInfo ti;
    ti.name = "kamailio";
    ti.port = kPort;
    ti.transport = SockKind::kDgram;
    ti.split = SplitStrategy::kSegment;
    ti.desock_compatible = false;  // multi-socket UDP dispatcher
    ti.startup_ns = kStartupNs;
    ti.request_ns = kRequestNs;
    ti.aflnet_extra_ns = kAflnetExtraNs;
    ti.startup_dirty_pages = 32;
    ti.state_bytes = sizeof(State);
    return ti;
  }

  void Init(GuestContext& ctx) override {
    auto* st = ctx.State<State>();
    memset(st, 0, sizeof(*st));
    st->sock = ctx.net().Socket(SockKind::kDgram);
    ctx.net().Bind(st->sock, kPort);
    ctx.TouchScratch(32, 0x77);
    ctx.Charge(kStartupNs);
  }

  void Step(GuestContext& ctx) override {
    auto* st = ctx.State<State>();
    for (;;) {
      if (ctx.crash().crashed) {
        return;
      }
      uint8_t pkt[1024];
      const int n = ctx.net().Recv(st->sock, pkt, sizeof(pkt));
      if (n == kErrIntr) {
        // Interrupted syscall: retry, as kamailio's udp_rcv_loop does.
        ctx.Cov(kSite + 150);
        continue;
      }
      if (n == kErrTimedOut) {
        // Receive timeout: yield back to the scheduler.
        ctx.Cov(kSite + 152);
        return;
      }
      if (n == kErrConnReset) {
        // ICMP port-unreachable surfaces as ECONNRESET on connected UDP
        // sockets; the datagram is gone, keep serving.
        ctx.Cov(kSite + 154);
        continue;
      }
      if (n <= 0) {
        return;
      }
      HandleMessage(ctx, st, reinterpret_cast<const char*>(pkt), static_cast<size_t>(n));
    }
  }

 private:
  // Parses "sip:user@host:port;params". Heavy branching on purpose — this is
  // where kamailio's parser depth lives.
  SipUri ParseUri(GuestContext& ctx, const char* s, size_t len) {
    SipUri uri = {};
    size_t p = 0;
    if (ctx.CovBranch(len >= 4 && strncmp(s, "sip:", 4) == 0, kSite + 100)) {
      p = 4;
    } else if (ctx.CovBranch(len >= 5 && strncmp(s, "sips:", 5) == 0, kSite + 102)) {
      p = 5;
      ctx.Cov(kSite + 104);
    } else {
      return uri;  // invalid scheme
    }
    // user part (up to '@', optional)
    size_t at = len;
    for (size_t i = p; i < len; i++) {
      if (s[i] == '@') {
        at = i;
        break;
      }
      if (s[i] == ';' || s[i] == '>') {
        break;
      }
    }
    if (ctx.CovBranch(at < len, kSite + 106)) {
      size_t ul = at - p < sizeof(uri.user) - 1 ? at - p : sizeof(uri.user) - 1;
      memcpy(uri.user, s + p, ul);
      uri.user[ul] = '\0';
      p = at + 1;
      // Escaped characters in the user part.
      for (size_t i = 0; i < ul; i++) {
        if (ctx.CovBranch(uri.user[i] == '%', kSite + 108)) {
          break;
        }
      }
    }
    // host
    size_t h = 0;
    while (p < len && s[p] != ':' && s[p] != ';' && s[p] != '>' && s[p] != ' ' &&
           h < sizeof(uri.host) - 1) {
      uri.host[h++] = s[p++];
    }
    uri.host[h] = '\0';
    if (ctx.CovBranch(h == 0, kSite + 110)) {
      return uri;
    }
    if (ctx.CovBranch(uri.host[0] == '[', kSite + 112)) {
      ctx.Cov(kSite + 114);  // IPv6 reference
    }
    // port
    if (ctx.CovBranch(p < len && s[p] == ':', kSite + 116)) {
      p++;
      uint32_t port = 0;
      bool digits = false;
      while (p < len && s[p] >= '0' && s[p] <= '9') {
        port = port * 10 + static_cast<uint32_t>(s[p] - '0');
        digits = true;
        p++;
      }
      if (ctx.CovBranch(!digits || port > 65535, kSite + 118)) {
        return uri;
      }
      uri.port = static_cast<uint16_t>(port);
    }
    // parameters
    while (ctx.CovBranch(p < len && s[p] == ';', kSite + 120)) {
      p++;
      const size_t param_start = p;
      while (p < len && s[p] != ';' && s[p] != '>' && s[p] != ' ' && s[p] != '=') {
        p++;
      }
      const size_t plen = p - param_start;
      if (ctx.CovBranch(plen == 2 && strncmp(s + param_start, "lr", 2) == 0, kSite + 122)) {
        uri.has_lr = 1;
      } else if (ctx.CovBranch(plen == 9 && strncmp(s + param_start, "transport", 9) == 0,
                               kSite + 124)) {
        uri.has_transport = 1;
      } else if (ctx.CovBranch(plen == 4 && strncmp(s + param_start, "user", 4) == 0,
                               kSite + 126)) {
        ctx.Cov(kSite + 128);
      }
      // skip value
      if (p < len && s[p] == '=') {
        p++;
        while (p < len && s[p] != ';' && s[p] != '>' && s[p] != ' ') {
          p++;
        }
      }
    }
    uri.valid = 1;
    return uri;
  }

  // Finds a header (case-insensitive) and copies its value.
  bool GetHeader(GuestContext& ctx, const char* msg, size_t len, const char* name, char* out,
                 size_t out_cap, uint32_t site) {
    const size_t name_len = strlen(name);
    size_t line_start = 0;
    for (size_t i = 0; i + 1 < len; i++) {
      if (msg[i] == '\r' && msg[i + 1] == '\n') {
        const size_t line_len = i - line_start;
        if (line_len > name_len && msg[line_start + name_len] == ':' &&
            StartsWithNoCase(std::string_view(msg + line_start, name_len), name)) {
          ctx.Cov(site);
          size_t v = line_start + name_len + 1;
          while (v < i && msg[v] == ' ') {
            v++;
          }
          const size_t vlen = i - v < out_cap - 1 ? i - v : out_cap - 1;
          memcpy(out, msg + v, vlen);
          out[vlen] = '\0';
          return true;
        }
        line_start = i + 2;
        i++;
      }
    }
    return false;
  }

  void HandleMessage(GuestContext& ctx, State* st, const char* msg, size_t len) {
    st->requests++;
    ctx.Charge(kRequestNs + ctx.cost().per_byte_ns * len);
    if (ctx.CovBranch(len < 16, kSite + 10)) {
      return;
    }
    // Responses (status lines) are absorbed.
    if (ctx.CovBranch(strncmp(msg, "SIP/2.0 ", 8) == 0, kSite + 12)) {
      return;
    }

    // Request line: METHOD SP URI SP SIP/2.0
    char method[16];
    size_t m = 0;
    while (m < len && m < sizeof(method) - 1 && msg[m] != ' ') {
      method[m] = msg[m];
      m++;
    }
    method[m] = '\0';
    if (ctx.CovBranch(m == len || m == 0, kSite + 14)) {
      Respond(ctx, st, 400, "Bad Request-Line");
      return;
    }
    const size_t uri_start = m + 1;
    size_t uri_end = uri_start;
    while (uri_end < len && msg[uri_end] != ' ' && msg[uri_end] != '\r') {
      uri_end++;
    }
    if (ctx.CovBranch(uri_end + 9 > len || strncmp(msg + uri_end, " SIP/2.0", 8) != 0,
                      kSite + 16)) {
      Respond(ctx, st, 400, "Bad Version");
      return;
    }
    SipUri ruri = ParseUri(ctx, msg + uri_start, uri_end - uri_start);
    if (ctx.CovBranch(!ruri.valid, kSite + 18)) {
      Respond(ctx, st, 416, "Unsupported URI Scheme");
      return;
    }

    // Mandatory headers.
    char via[128];
    char from[128];
    char to[128];
    char cseq[64];
    char callid[64];
    const bool has_via = GetHeader(ctx, msg, len, "Via", via, sizeof(via), kSite + 20);
    const bool has_from = GetHeader(ctx, msg, len, "From", from, sizeof(from), kSite + 22);
    const bool has_to = GetHeader(ctx, msg, len, "To", to, sizeof(to), kSite + 24);
    const bool has_cseq = GetHeader(ctx, msg, len, "CSeq", cseq, sizeof(cseq), kSite + 26);
    const bool has_callid =
        GetHeader(ctx, msg, len, "Call-ID", callid, sizeof(callid), kSite + 28);
    if (ctx.CovBranch(!has_via || !has_from || !has_to || !has_cseq || !has_callid,
                      kSite + 30)) {
      Respond(ctx, st, 400, "Missing Required Header");
      return;
    }
    // Via must name SIP/2.0/UDP or TCP.
    if (ctx.CovBranch(!StartsWithNoCase(via, "SIP/2.0/"), kSite + 32)) {
      Respond(ctx, st, 400, "Bad Via");
      return;
    }
    if (ctx.CovBranch(StartsWithNoCase(via + 8, "UDP"), kSite + 34)) {
      ctx.Cov(kSite + 36);
    } else if (ctx.CovBranch(StartsWithNoCase(via + 8, "TCP"), kSite + 38)) {
      ctx.Cov(kSite + 40);
    }
    // CSeq: digits SP METHOD.
    uint32_t cseq_num = 0;
    size_t c = 0;
    while (cseq[c] >= '0' && cseq[c] <= '9') {
      cseq_num = cseq_num * 10 + static_cast<uint32_t>(cseq[c] - '0');
      c++;
    }
    if (ctx.CovBranch(c == 0 || cseq[c] != ' ', kSite + 42)) {
      Respond(ctx, st, 400, "Bad CSeq");
      return;
    }

    if (ctx.CovBranch(strcmp(method, "REGISTER") == 0, kSite + 50)) {
      char contact[96];
      char expires[16];
      const bool has_contact =
          GetHeader(ctx, msg, len, "Contact", contact, sizeof(contact), kSite + 52);
      uint32_t exp = 3600;
      if (GetHeader(ctx, msg, len, "Expires", expires, sizeof(expires), kSite + 54)) {
        exp = 0;
        for (char* p = expires; *p >= '0' && *p <= '9'; p++) {
          exp = exp * 10 + static_cast<uint32_t>(*p - '0');
        }
      }
      if (ctx.CovBranch(!has_contact, kSite + 56)) {
        Respond(ctx, st, 400, "Missing Contact");
        return;
      }
      if (ctx.CovBranch(exp == 0, kSite + 58)) {
        // De-registration.
        for (auto& b : st->bindings) {
          if (b.used && strncmp(b.aor, to, sizeof(b.aor)) == 0) {
            ctx.Cov(kSite + 60);
            b.used = 0;
          }
        }
        Respond(ctx, st, 200, "OK (unbound)");
        return;
      }
      for (auto& b : st->bindings) {
        if (!b.used) {
          b.used = 1;
          CopyCString(b.aor, to);
          CopyCString(b.contact, contact);
          b.expires = exp;
          Respond(ctx, st, 200, "OK (bound)");
          return;
        }
      }
      ctx.Cov(kSite + 62);
      Respond(ctx, st, 503, "Binding Table Full");
      return;
    }
    if (ctx.CovBranch(strcmp(method, "INVITE") == 0, kSite + 64)) {
      for (const auto& b : st->bindings) {
        if (b.used && strstr(to, b.aor) != nullptr) {
          ctx.Cov(kSite + 66);
          st->dialogs++;
          Respond(ctx, st, 180, "Ringing");
          Respond(ctx, st, 200, "OK");
          return;
        }
      }
      Respond(ctx, st, 404, "Not Found");
      return;
    }
    if (ctx.CovBranch(strcmp(method, "ACK") == 0, kSite + 68)) {
      return;  // ACKs are absorbed
    }
    if (ctx.CovBranch(strcmp(method, "BYE") == 0, kSite + 70)) {
      if (ctx.CovBranch(st->dialogs > 0, kSite + 72)) {
        st->dialogs--;
        Respond(ctx, st, 200, "OK");
      } else {
        Respond(ctx, st, 481, "Call/Transaction Does Not Exist");
      }
      return;
    }
    if (ctx.CovBranch(strcmp(method, "OPTIONS") == 0, kSite + 74)) {
      Respond(ctx, st, 200, "OK (capabilities)");
      return;
    }
    if (ctx.CovBranch(strcmp(method, "CANCEL") == 0, kSite + 76)) {
      Respond(ctx, st, 487, "Request Terminated");
      return;
    }
    if (ctx.CovBranch(strcmp(method, "SUBSCRIBE") == 0, kSite + 78)) {
      Respond(ctx, st, 489, "Bad Event");
      return;
    }
    if (ctx.CovBranch(strcmp(method, "MESSAGE") == 0, kSite + 80)) {
      Respond(ctx, st, 202, "Accepted");
      return;
    }
    ctx.Cov(kSite + 82);
    Respond(ctx, st, 501, "Method Not Implemented");
  }

  void Respond(GuestContext& ctx, State* st, int code, const char* reason) {
    char msg[128];
    snprintf(msg, sizeof(msg), "SIP/2.0 %d %s\r\n\r\n", code, reason);
    ctx.net().Send(st->sock, msg, strlen(msg));
  }
};

}  // namespace

std::unique_ptr<Target> MakeKamailio() { return std::make_unique<Kamailio>(); }

}  // namespace nyx
