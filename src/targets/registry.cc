#include "src/targets/registry.h"

#include "src/spec/builder.h"

namespace nyx {
namespace {

Spec MakeGeneric() { return Spec::GenericNetwork(); }
Spec MakeMulti() { return Spec::MultiConnection(); }

Program LinesSeed(const Spec& spec, std::initializer_list<const char*> lines) {
  Builder b(spec);
  ValueRef con = b.Connection();
  for (const char* l : lines) {
    b.Packet(con, std::string(l) + "\r\n");
  }
  return *b.Build();
}

Program RawSeed(const Spec& spec, std::initializer_list<Bytes> packets) {
  Builder b(spec);
  ValueRef con = b.Connection();
  for (const Bytes& p : packets) {
    b.Packet(con, p);
  }
  return *b.Build();
}

std::vector<Program> FtpSeeds(const Spec& spec) {
  return {
      LinesSeed(spec, {"USER anonymous", "PASS guest@example.com", "SYST", "PWD", "TYPE I",
                       "PASV", "LIST", "QUIT"}),
      LinesSeed(spec, {"USER admin", "PASS hunter2", "CWD upload", "MKD files", "CWD files",
                       "STOR data.bin", "SIZE data.bin", "RETR data.bin"}),
      LinesSeed(spec, {"USER anonymous", "PASS x", "MKD a", "CWD a", "RMD a", "LIST", "NOOP",
                       "QUIT"}),
  };
}

std::vector<Program> BftpdSeeds(const Spec& spec) {
  return {
      LinesSeed(spec, {"USER test", "PASS test", "STAT", "MODE S", "STRU F", "EPSV",
                       "STOR f.txt", "QUIT"}),
      LinesSeed(spec, {"USER test", "PASS test", "CWD /tmp", "CDUP", "PWD", "REST 100",
                       "APPE log.txt", "ABOR"}),
  };
}

std::vector<Program> PureFtpdSeeds(const Spec& spec) {
  return {
      LinesSeed(spec, {"USER ftp", "PASS ftp", "OPTS UTF8 ON", "MLSD", "PASV", "TYPE I",
                       "SIZE readme", "QUIT"}),
      LinesSeed(spec, {"AUTH TLS", "PBSZ 0", "PROT P", "USER secure", "PASS s3cret", "MDTM x",
                       "NOOP"}),
  };
}

Bytes DnsQuery(const char* name, uint8_t qtype) {
  Bytes q = {0x12, 0x34, 0x01, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00};
  const char* p = name;
  while (*p != '\0') {
    const char* dot = p;
    while (*dot != '\0' && *dot != '.') {
      dot++;
    }
    q.push_back(static_cast<uint8_t>(dot - p));
    q.insert(q.end(), p, dot);
    p = *dot == '.' ? dot + 1 : dot;
  }
  q.push_back(0);
  q.push_back(0);
  q.push_back(qtype);
  q.push_back(0);
  q.push_back(1);
  return q;
}

std::vector<Program> DnsmasqSeeds(const Spec& spec) {
  return {
      RawSeed(spec, {DnsQuery("www.example.com", 1), DnsQuery("example.com", 28)}),
      RawSeed(spec, {DnsQuery("mail.example.org", 15), DnsQuery("example.org", 16),
                     DnsQuery("1.0.0.127.in-addr.arpa", 12)}),
  };
}

std::vector<Program> EximSeeds(const Spec& spec) {
  return {
      LinesSeed(spec, {"EHLO client.example", "MAIL FROM:<alice@example.com>",
                       "RCPT TO:<bob@example.com>", "DATA", "Subject: hi",
                       "X-Mailer: test", "hello world", ".", "QUIT"}),
      LinesSeed(spec, {"EHLO relay", "MAIL FROM:<a@b> SIZE=1000", "RCPT TO:<c@d>",
                       "RCPT TO:<e@f>", "DATA", "X-Priority: 1", ".", "RSET", "NOOP"}),
      LinesSeed(spec, {"HELO old.client", "MAIL FROM:<x@y>", "VRFY postmaster", "QUIT"}),
  };
}

std::vector<Program> Live555Seeds(const Spec& spec) {
  return {
      RawSeed(spec,
              {ToBytes("OPTIONS rtsp://h/s RTSP/1.0\r\nCSeq: 1\r\n\r\n"),
               ToBytes("DESCRIBE rtsp://h/s RTSP/1.0\r\nCSeq: 2\r\nAccept: application/sdp\r\n\r\n"),
               ToBytes("SETUP rtsp://h/s/track1 RTSP/1.0\r\nCSeq: 3\r\nTransport: "
                       "RTP/AVP;unicast;client_port=5000-5001\r\n\r\n"),
               ToBytes("PLAY rtsp://h/s RTSP/1.0\r\nCSeq: 4\r\nRange: npt=0-\r\n\r\n"),
               ToBytes("TEARDOWN rtsp://h/s RTSP/1.0\r\nCSeq: 5\r\n\r\n")}),
      RawSeed(spec, {ToBytes("OPTIONS * RTSP/1.0\r\nCSeq: 10\r\n\r\n"),
                     ToBytes("PLAY rtsp://h/s RTSP/1.0\r\nCSeq: 11\r\nRange: npt=30-60\r\n\r\n"),
                     ToBytes("PAUSE rtsp://h/s RTSP/1.0\r\nCSeq: 12\r\n\r\n")}),
  };
}

std::vector<Program> DaapdSeeds(const Spec& spec) {
  return {
      RawSeed(spec, {ToBytes("GET /server-info HTTP/1.1\r\nHost: x\r\n\r\n"),
                     ToBytes("GET /login HTTP/1.1\r\nUser-Agent: iTunes/12\r\n\r\n"),
                     ToBytes("GET /databases HTTP/1.1\r\nHost: x\r\n\r\n")}),
      RawSeed(spec,
              {ToBytes("GET /login HTTP/1.1\r\n\r\n"),
               ToBytes("GET /databases/1/items?query=('dmap.itemname:*a*') HTTP/1.1\r\n\r\n"),
               ToBytes("GET /databases/1/browse/artists HTTP/1.1\r\n\r\n"),
               ToBytes("GET /update HTTP/1.1\r\n\r\n")}),
  };
}

std::vector<Program> KamailioSeeds(const Spec& spec) {
  return {
      RawSeed(spec, {ToBytes("REGISTER sip:example.com SIP/2.0\r\nVia: SIP/2.0/UDP "
                             "10.0.0.1:5060\r\nFrom: <sip:alice@example.com>\r\nTo: "
                             "<sip:alice@example.com>\r\nCall-ID: a1@10.0.0.1\r\nCSeq: 1 "
                             "REGISTER\r\nContact: <sip:alice@10.0.0.1>\r\nExpires: "
                             "3600\r\n\r\n"),
                     ToBytes("INVITE sip:alice@example.com SIP/2.0\r\nVia: SIP/2.0/UDP "
                             "10.0.0.2\r\nFrom: <sip:bob@example.com>\r\nTo: "
                             "<sip:alice@example.com>\r\nCall-ID: b2@10.0.0.2\r\nCSeq: 1 "
                             "INVITE\r\n\r\n"),
                     ToBytes("ACK sip:alice@example.com SIP/2.0\r\nVia: SIP/2.0/UDP "
                             "10.0.0.2\r\nFrom: <sip:bob@e>\r\nTo: <sip:alice@e>\r\nCall-ID: "
                             "b2@10.0.0.2\r\nCSeq: 1 ACK\r\n\r\n"),
                     ToBytes("BYE sip:alice@example.com SIP/2.0\r\nVia: SIP/2.0/UDP "
                             "10.0.0.2\r\nFrom: <sip:bob@e>\r\nTo: <sip:alice@e>\r\nCall-ID: "
                             "b2@10.0.0.2\r\nCSeq: 2 BYE\r\n\r\n")}),
      RawSeed(spec, {ToBytes("OPTIONS sip:example.com SIP/2.0\r\nVia: SIP/2.0/TCP "
                             "10.0.0.3;branch=z9hG4bK1\r\nFrom: <sip:x@e>;tag=1\r\nTo: "
                             "<sip:y@e>\r\nCall-ID: c3\r\nCSeq: 7 OPTIONS\r\n\r\n"),
                     ToBytes("MESSAGE sip:alice@example.com;transport=udp SIP/2.0\r\nVia: "
                             "SIP/2.0/UDP 10.0.0.4\r\nFrom: <sips:z@e:5061;lr>\r\nTo: "
                             "<sip:alice@e>\r\nCall-ID: d4\r\nCSeq: 1 MESSAGE\r\n\r\n")}),
  };
}

Bytes SshPacket(uint8_t type, const Bytes& payload) {
  Bytes pkt;
  PutBe32(pkt, static_cast<uint32_t>(payload.size()) + 2);
  pkt.push_back(0);  // padlen
  pkt.push_back(type);
  Append(pkt, payload);
  return pkt;
}

Bytes SshNameLists() {
  Bytes b(16, 0xab);  // cookie
  const char* lists[10] = {
      "curve25519-sha256,diffie-hellman-group14-sha256",
      "ssh-ed25519,rsa-sha2-512",
      "aes128-ctr,aes256-gcm@openssh.com",
      "aes128-ctr,aes256-gcm@openssh.com",
      "hmac-sha2-256,hmac-sha1",
      "hmac-sha2-256,hmac-sha1",
      "none,zlib@openssh.com",
      "none,zlib@openssh.com",
      "",
      "",
  };
  for (const char* l : lists) {
    PutBe32(b, static_cast<uint32_t>(strlen(l)));
    Append(b, l);
  }
  b.push_back(0);  // first_kex_packet_follows
  PutBe32(b, 0);   // reserved
  return b;
}

std::vector<Program> OpenSshSeeds(const Spec& spec) {
  Bytes service;
  PutBe32(service, 12);
  Append(service, "ssh-userauth");
  Bytes auth;
  PutBe32(auth, 4);
  Append(auth, "root");
  PutBe32(auth, 14);
  Append(auth, "ssh-connection");
  Append(auth, "password");
  return {
      RawSeed(spec, {ToBytes("SSH-2.0-OpenSSH_8.9 client\r\n"),
                     SshPacket(20, SshNameLists()), SshPacket(30, Bytes(64, 0x11)),
                     SshPacket(21, {}), SshPacket(5, service), SshPacket(50, auth)}),
  };
}

Bytes TlsClientHello() {
  Bytes hello;
  hello.push_back(3);
  hello.push_back(3);               // client version TLS1.2
  hello.resize(hello.size() + 32);  // random
  hello.push_back(0);               // session id len
  PutBe16(hello, 6);                // cipher suites bytes
  PutBe16(hello, 0xc02f);
  PutBe16(hello, 0x009e);
  PutBe16(hello, 0x00ff);
  hello.push_back(1);  // compression methods
  hello.push_back(0);
  // Extensions: SNI + ALPN(h2).
  Bytes ext;
  PutBe16(ext, 0);  // SNI
  PutBe16(ext, 12);
  PutBe16(ext, 10);
  ext.push_back(0);
  PutBe16(ext, 7);
  Append(ext, "example");
  PutBe16(ext, 16);  // ALPN
  PutBe16(ext, 5);
  PutBe16(ext, 3);
  ext.push_back(2);
  Append(ext, "h2");
  PutBe16(hello, static_cast<uint16_t>(ext.size()));
  Append(hello, ext);

  Bytes hs;
  hs.push_back(1);  // ClientHello
  hs.push_back(0);
  PutBe16(hs, static_cast<uint16_t>(hello.size()));
  Append(hs, hello);

  Bytes rec;
  rec.push_back(22);
  rec.push_back(3);
  rec.push_back(3);
  PutBe16(rec, static_cast<uint16_t>(hs.size()));
  Append(rec, hs);
  return rec;
}

Bytes TlsHandshakeRecord(uint8_t type, uint16_t body) {
  Bytes rec = {22, 3, 3};
  PutBe16(rec, static_cast<uint16_t>(4 + body));
  rec.push_back(type);
  rec.push_back(0);
  PutBe16(rec, body);
  rec.resize(rec.size() + body, 0);
  return rec;
}

std::vector<Program> OpenSslSeeds(const Spec& spec) {
  Bytes ccs = {20, 3, 3, 0, 1, 1};
  Bytes appdata = {23, 3, 3, 0, 3, 'G', 'E', 'T'};
  return {
      RawSeed(spec, {TlsClientHello(), TlsHandshakeRecord(16, 48), ccs,
                     TlsHandshakeRecord(20, 12), appdata}),
  };
}

Bytes DtlsRecord(uint8_t content, const Bytes& body) {
  Bytes rec = {content, 0xfe, 0xfd, 0, 0, 0, 0, 0, 0, 0, 0};
  PutBe16(rec, static_cast<uint16_t>(body.size()));
  Append(rec, body);
  return rec;
}

Bytes DtlsHandshake(uint8_t hs_type, const Bytes& body) {
  Bytes hs;
  hs.push_back(hs_type);
  hs.push_back(0);
  PutBe16(hs, static_cast<uint16_t>(body.size()));  // 24-bit length (hi byte 0)
  hs.push_back(0);
  hs.push_back(0);  // message_seq
  hs.push_back(0);
  hs.push_back(0);
  hs.push_back(0);  // frag offset (24)
  hs.push_back(0);
  PutBe16(hs, static_cast<uint16_t>(body.size()));  // frag length low bytes
  Append(hs, body);
  return hs;
}

std::vector<Program> TinyDtlsSeeds(const Spec& spec) {
  // ClientHello without cookie (the server replies with one), then with it.
  Bytes hello1(35, 0);
  hello1[0] = 0xfe;
  hello1[1] = 0xfd;
  hello1.push_back(0);  // cookie len 0
  Bytes hello2(35, 0);
  hello2[0] = 0xfe;
  hello2[1] = 0xfd;
  hello2.push_back(8);
  for (int i = 0; i < 8; i++) {
    hello2.push_back(static_cast<uint8_t>(0xc0 + i));
  }
  return {
      RawSeed(spec, {DtlsRecord(22, DtlsHandshake(1, hello1)),
                     DtlsRecord(22, DtlsHandshake(1, hello2)),
                     DtlsRecord(22, DtlsHandshake(16, Bytes(32, 0x5a))),
                     DtlsRecord(22, DtlsHandshake(20, Bytes(12, 0x0f))),
                     DtlsRecord(23, ToBytes("coap-ping"))}),
  };
}

Bytes DicomAssociateRq() {
  Bytes body;
  PutBe16(body, 1);  // protocol version
  PutBe16(body, 0);
  for (int i = 0; i < 16; i++) {
    body.push_back(i < 7 ? "STORAGE"[i] : ' ');  // called AE
  }
  for (int i = 0; i < 16; i++) {
    body.push_back(i < 6 ? "CLIENT"[i] : ' ');  // calling AE
  }
  body.resize(68, 0);
  // Application context item.
  body.push_back(0x10);
  body.push_back(0);
  PutBe16(body, 4);
  Append(body, "1.2.8");
  body.resize(body.size() - 1);  // 4 bytes of the UID
  // Presentation context item.
  body.push_back(0x20);
  body.push_back(0);
  PutBe16(body, 4);
  PutBe32(body, 0x01000000);

  Bytes pdu;
  pdu.push_back(0x01);
  pdu.push_back(0);
  PutBe32(pdu, static_cast<uint32_t>(body.size()));
  Append(pdu, body);
  return pdu;
}

Bytes DicomDataTf(uint16_t elem_len) {
  Bytes pdv;
  // DICOM element: group 0008, elem 0016, len.
  pdv.push_back(0x08);
  pdv.push_back(0x00);
  pdv.push_back(0x16);
  pdv.push_back(0x00);
  pdv.push_back(static_cast<uint8_t>(elem_len));
  pdv.push_back(static_cast<uint8_t>(elem_len >> 8));
  pdv.resize(pdv.size() + elem_len, 0x41);

  Bytes body;
  PutBe32(body, static_cast<uint32_t>(pdv.size()) + 2);
  body.push_back(1);  // context id
  body.push_back(2);  // flags: last fragment
  Append(body, pdv);

  Bytes pdu;
  pdu.push_back(0x04);
  pdu.push_back(0);
  PutBe32(pdu, static_cast<uint32_t>(body.size()));
  Append(pdu, body);
  return pdu;
}

std::vector<Program> DcmtkSeeds(const Spec& spec) {
  Bytes release = {0x05, 0, 0, 0, 0, 4, 0, 0, 0, 0};
  return {
      RawSeed(spec, {DicomAssociateRq(), DicomDataTf(32), DicomDataTf(64), release}),
  };
}

std::vector<Program> LighttpdSeeds(const Spec& spec) {
  return {
      RawSeed(spec, {ToBytes("GET / HTTP/1.1\r\nHost: localhost\r\n\r\n"),
                     ToBytes("POST /upload HTTP/1.1\r\nContent-Length: 5\r\n\r\n"),
                     ToBytes("hello")}),
      RawSeed(spec, {ToBytes("HEAD /index.html HTTP/1.0\r\n\r\n"),
                     ToBytes("OPTIONS * HTTP/1.1\r\nConnection: keep-alive\r\n\r\n")}),
  };
}

Bytes MysqlPacket(uint8_t seq, const Bytes& payload) {
  Bytes pkt;
  pkt.push_back(static_cast<uint8_t>(payload.size()));
  pkt.push_back(static_cast<uint8_t>(payload.size() >> 8));
  pkt.push_back(static_cast<uint8_t>(payload.size() >> 16));
  pkt.push_back(seq);
  Append(pkt, payload);
  return pkt;
}

std::vector<Program> MysqlClientSeeds(const Spec& spec) {
  Bytes greeting;
  greeting.push_back(10);  // protocol
  Append(greeting, "8.0.32-server");
  greeting.push_back(0);
  PutLe32(greeting, 1234);          // thread id
  greeting.resize(greeting.size() + 9, 0x5b);  // salt + nul
  PutLe16(greeting, 0xf7ff);        // caps

  Bytes ok = {0x00, 0x00, 0x00, 0x02, 0x00, 0x00};
  Bytes colcount = {0x02};
  Bytes coldef = ToBytes("def-db-tbl-col");
  Bytes eof = {0xfe, 0x00, 0x00, 0x02, 0x00};
  return {
      RawSeed(spec, {MysqlPacket(0, greeting), MysqlPacket(2, ok), MysqlPacket(1, colcount),
                     MysqlPacket(2, coldef), MysqlPacket(3, coldef), MysqlPacket(4, eof)}),
  };
}

std::vector<Program> FirefoxIpcSeeds(const Spec& spec) {
  auto msg = [](uint32_t actor, uint32_t type, const Bytes& payload) {
    Bytes m;
    PutLe32(m, actor);
    PutLe32(m, type);
    PutLe32(m, static_cast<uint32_t>(payload.size()));
    Append(m, payload);
    return m;
  };
  Builder b(spec);
  ValueRef c1 = b.Connection();
  ValueRef c2 = b.Connection();
  b.Packet(c1, msg(0, 1, {4}));                    // construct PWindow -> actor 1
  b.Packet(c1, msg(1, 4, ToBytes("nav:home")));    // window message
  b.Packet(c2, msg(0, 1, {5}));                    // construct PNecko -> actor 2
  b.Packet(c2, msg(2, 5, ToBytes("http GET /")));  // necko request
  b.Packet(c1, msg(1, 2, {}));                     // __delete__ actor 1
  b.Packet(c2, msg(0, 6, {}));                     // sync ping to root
  b.Close(c1);
  return {*b.Build()};
}

const std::vector<TargetRegistration>& Registry() {
  static const std::vector<TargetRegistration> kTargets = {
      {"bftpd", MakeBftpd, MakeGeneric, BftpdSeeds, {}, true},
      {"dcmtk", MakeDcmtk, MakeGeneric, DcmtkSeeds,
       {kCrashDcmtkOobWrite, kCrashDcmtkLateHeap}, true},
      {"dnsmasq", MakeDnsmasq, MakeGeneric, DnsmasqSeeds, {kCrashDnsmasqOobRead}, true},
      {"exim", MakeExim, MakeGeneric, EximSeeds, {kCrashEximHeaderOverflow}, true},
      {"forked-daapd", MakeForkedDaapd, MakeGeneric, DaapdSeeds, {}, true},
      {"kamailio", MakeKamailio, MakeGeneric, KamailioSeeds, {}, true},
      {"lightftp", MakeLightFtp, MakeGeneric, FtpSeeds, {}, true},
      {"live555", MakeLive555, MakeGeneric, Live555Seeds, {kCrashLive555RangeNull}, true},
      {"openssh", MakeOpenSsh, MakeGeneric, OpenSshSeeds, {}, true},
      {"openssl", MakeOpenSsl, MakeGeneric, OpenSslSeeds, {}, true},
      {"proftpd", MakeProFtpd, MakeGeneric, FtpSeeds, {kCrashProftpdMkdNull}, true},
      {"pure-ftpd", MakePureFtpd, MakeGeneric, PureFtpdSeeds, {kCrashPureFtpdOom}, true},
      {"tinydtls", MakeTinyDtls, MakeGeneric, TinyDtlsSeeds, {kCrashTinyDtlsFragLen}, true},
      {"lighttpd", MakeLighttpd, MakeGeneric, LighttpdSeeds,
       {kCrashLighttpdAllocUnderflow}, false},
      {"mysql-client", MakeMysqlClient, MakeGeneric, MysqlClientSeeds,
       {kCrashMysqlClientOobRead}, false},
      {"firefox-ipc", MakeFirefoxIpc, MakeMulti, FirefoxIpcSeeds,
       {kCrashFirefoxIpcNullDeref}, false},
  };
  return kTargets;
}

}  // namespace

const std::vector<TargetRegistration>& AllTargets() { return Registry(); }

std::optional<TargetRegistration> FindTarget(const std::string& name) {
  for (const auto& t : Registry()) {
    if (t.name == name) {
      return t;
    }
  }
  return std::nullopt;
}

}  // namespace nyx
