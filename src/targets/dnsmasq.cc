// dnsmasq analogue: a UDP DNS forwarder/parser.
//
// Seeded bug (found by every fuzzer in Table 1): an out-of-bounds read when
// resolving DNS name-compression pointers that point past the end of the
// datagram at nesting depth >= 2. The parser also exercises the usual DNS
// surface: header fields, QTYPE/QCLASS dispatch, EDNS0 OPT records.

#include <cstring>

#include "src/targets/registry.h"
#include "src/targets/textproto.h"

namespace nyx {
namespace {

constexpr uint32_t kSite = 5000;
constexpr uint16_t kPort = 5353;
constexpr uint64_t kStartupNs = 220'000'000;
constexpr uint64_t kRequestNs = 150'000;
constexpr uint64_t kAflnetExtraNs = 80'000'000;

struct State {
  int sock;
  uint32_t queries;
  uint32_t cache_entries;
  char cache_names[8][64];
};

class Dnsmasq final : public Target {
 public:
  TargetInfo info() const override {
    TargetInfo ti;
    ti.name = "dnsmasq";
    ti.port = kPort;
    ti.transport = SockKind::kDgram;
    ti.split = SplitStrategy::kSegment;
    ti.desock_compatible = true;  // ProFuzzBench's AFL++ setup runs dnsmasq
    ti.startup_ns = kStartupNs;
    ti.request_ns = kRequestNs;
    ti.aflnet_extra_ns = kAflnetExtraNs;
    ti.startup_dirty_pages = 24;
    ti.state_bytes = sizeof(State);
    return ti;
  }

  void Init(GuestContext& ctx) override {
    auto* st = ctx.State<State>();
    memset(st, 0, sizeof(*st));
    st->sock = ctx.net().Socket(SockKind::kDgram);
    ctx.net().Bind(st->sock, kPort);
    ctx.TouchScratch(24, 0x55);
    ctx.Charge(kStartupNs);
  }

  void Step(GuestContext& ctx) override {
    auto* st = ctx.State<State>();
    for (;;) {
      if (ctx.crash().crashed) {
        return;
      }
      uint8_t pkt[512];
      const int n = ctx.net().Recv(st->sock, pkt, sizeof(pkt));
      if (n <= 0) {
        return;
      }
      HandleQuery(ctx, st, pkt, static_cast<size_t>(n));
    }
  }

 private:
  // Resolves a (possibly compressed) DNS name starting at `off`. Writes the
  // dotted name into `out`. Returns the offset after the name, or 0 on
  // parse failure. `depth` counts compression-pointer indirections.
  size_t ParseName(GuestContext& ctx, const uint8_t* pkt, size_t len, size_t off, char* out,
                   size_t out_cap, int depth) {
    size_t out_len = 0;
    size_t end_after = 0;  // where parsing resumes after the first pointer
    int hops = 0;
    while (true) {
      if (ctx.CovBranch(off >= len, kSite + 10)) {
        return 0;
      }
      const uint8_t label_len = pkt[off];
      if (ctx.CovBranch(label_len == 0, kSite + 12)) {
        off++;
        break;
      }
      if (ctx.CovBranch((label_len & 0xc0) == 0xc0, kSite + 14)) {
        // Compression pointer.
        if (ctx.CovBranch(off + 1 >= len, kSite + 16)) {
          return 0;
        }
        const size_t ptr = (static_cast<size_t>(label_len & 0x3f) << 8) | pkt[off + 1];
        if (end_after == 0) {
          end_after = off + 2;
        }
        hops++;
        if (ctx.CovBranch(hops >= 2, kSite + 18)) {
          // The buggy fast path skips the bounds check on nested pointers:
          // the original code trusted that a pointer target inside the
          // message implies the labels there are in bounds.
          if (ctx.CovBranch(ptr >= len, kSite + 20)) {
            // Out-of-bounds read past the datagram (Table 1: every fuzzer
            // finds this one).
            ctx.Crash(kCrashDnsmasqOobRead, "oob-read-compression-pointer");
            return 0;
          }
        } else if (ctx.CovBranch(ptr >= len, kSite + 22)) {
          return 0;  // first hop is checked correctly
        }
        if (ctx.CovBranch(hops > 8, kSite + 24)) {
          return 0;  // pointer loop guard
        }
        off = ptr;
        continue;
      }
      if (ctx.CovBranch((label_len & 0xc0) != 0, kSite + 26)) {
        return 0;  // reserved label types
      }
      if (ctx.CovBranch(off + 1 + label_len > len, kSite + 28)) {
        return 0;
      }
      for (uint8_t i = 0; i < label_len && out_len + 2 < out_cap; i++) {
        out[out_len++] = static_cast<char>(pkt[off + 1 + i]);
      }
      if (out_len + 1 < out_cap) {
        out[out_len++] = '.';
      }
      off += 1ull + label_len;
    }
    out[out_len] = '\0';
    return end_after != 0 ? end_after : off;
  }

  void HandleQuery(GuestContext& ctx, State* st, const uint8_t* pkt, size_t len) {
    st->queries++;
    ctx.Charge(kRequestNs + ctx.cost().per_byte_ns * len);
    if (ctx.CovBranch(len < 12, kSite + 30)) {
      return;  // runt datagram
    }
    const uint16_t id = static_cast<uint16_t>(pkt[0] << 8 | pkt[1]);
    const uint8_t flags_hi = pkt[2];
    if (ctx.CovBranch((flags_hi & 0x80) != 0, kSite + 32)) {
      return;  // response bit set on a query: drop
    }
    const uint8_t opcode = (flags_hi >> 3) & 0x0f;
    if (ctx.CovBranch(opcode != 0, kSite + 34)) {
      ctx.Cov(kSite + 36 + (opcode & 3));
      SendRcode(ctx, st, id, 4);  // NOTIMP
      return;
    }
    const uint16_t qdcount = static_cast<uint16_t>(pkt[4] << 8 | pkt[5]);
    const uint16_t arcount = static_cast<uint16_t>(pkt[10] << 8 | pkt[11]);
    if (ctx.CovBranch(qdcount == 0, kSite + 40)) {
      SendRcode(ctx, st, id, 1);  // FORMERR
      return;
    }
    if (ctx.CovBranch(qdcount > 1, kSite + 42)) {
      SendRcode(ctx, st, id, 1);
      return;
    }

    char name[128];
    size_t off = ParseName(ctx, pkt, len, 12, name, sizeof(name), 0);
    if (ctx.CovBranch(off == 0, kSite + 44)) {
      SendRcode(ctx, st, id, 1);
      return;
    }
    if (ctx.CovBranch(off + 4 > len, kSite + 46)) {
      SendRcode(ctx, st, id, 1);
      return;
    }
    const uint16_t qtype = static_cast<uint16_t>(pkt[off] << 8 | pkt[off + 1]);
    const uint16_t qclass = static_cast<uint16_t>(pkt[off + 2] << 8 | pkt[off + 3]);
    off += 4;

    if (ctx.CovBranch(qclass != 1 && qclass != 255, kSite + 48)) {
      SendRcode(ctx, st, id, 5);  // REFUSED for non-IN
      return;
    }

    // EDNS0 OPT in the additional section.
    if (ctx.CovBranch(arcount > 0 && off < len, kSite + 50)) {
      if (ctx.CovBranch(pkt[off] == 0 && off + 11 <= len, kSite + 52)) {
        const uint16_t opt_type = static_cast<uint16_t>(pkt[off + 1] << 8 | pkt[off + 2]);
        if (ctx.CovBranch(opt_type == 41, kSite + 54)) {
          ctx.Cov(kSite + 56);  // EDNS0 accepted
        }
      }
    }

    switch (qtype) {
      case 1:  // A
        ctx.Cov(kSite + 60);
        CacheInsert(ctx, st, name);
        SendAnswer(ctx, st, id, 4);
        break;
      case 28:  // AAAA
        ctx.Cov(kSite + 62);
        CacheInsert(ctx, st, name);
        SendAnswer(ctx, st, id, 16);
        break;
      case 12:  // PTR
        ctx.Cov(kSite + 64);
        SendAnswer(ctx, st, id, 8);
        break;
      case 15:  // MX
        ctx.Cov(kSite + 66);
        SendAnswer(ctx, st, id, 10);
        break;
      case 16:  // TXT
        ctx.Cov(kSite + 68);
        SendAnswer(ctx, st, id, 32);
        break;
      case 255:  // ANY
        ctx.Cov(kSite + 70);
        SendRcode(ctx, st, id, 5);
        break;
      default:
        ctx.Cov(kSite + 72);
        SendRcode(ctx, st, id, 3);  // NXDOMAIN
        break;
    }
  }

  void CacheInsert(GuestContext& ctx, State* st, const char* name) {
    for (auto& slot : st->cache_names) {
      if (strncmp(slot, name, sizeof(slot)) == 0) {
        ctx.Cov(kSite + 74);  // cache hit
        return;
      }
    }
    CopyCString(st->cache_names[st->cache_entries % 8], name);
    st->cache_entries++;
  }

  void SendRcode(GuestContext& ctx, State* st, uint16_t id, uint8_t rcode) {
    uint8_t resp[12] = {};
    resp[0] = static_cast<uint8_t>(id >> 8);
    resp[1] = static_cast<uint8_t>(id);
    resp[2] = 0x80;
    resp[3] = rcode;
    ctx.net().Send(st->sock, resp, sizeof(resp));
  }

  void SendAnswer(GuestContext& ctx, State* st, uint16_t id, uint8_t rdlen) {
    uint8_t resp[32] = {};
    resp[0] = static_cast<uint8_t>(id >> 8);
    resp[1] = static_cast<uint8_t>(id);
    resp[2] = 0x80;
    resp[7] = 1;  // ANCOUNT
    resp[12] = rdlen;
    ctx.net().Send(st->sock, resp, sizeof(resp));
  }
};

}  // namespace

std::unique_ptr<Target> MakeDnsmasq() { return std::make_unique<Dnsmasq>(); }

}  // namespace nyx
