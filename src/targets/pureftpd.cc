// pure-ftpd analogue.
//
// Table 1 footnote (*): "On pure-ftpd, AFLNET-no-state managed to trigger an
// OOM that was due to an internal limit and not the ProFuzzBench limit." We
// reproduce the mechanism: the server leaks a little session bookkeeping on
// every command into a process-lifetime arena with a hard internal cap.
// Snapshot fuzzers reset the process every execution, so the arena never
// fills; a fuzzer that keeps the server process alive across executions
// (AFLNet-no-state) eventually trips the cap and aborts.

#include <cstring>

#include "src/targets/registry.h"
#include "src/targets/textproto.h"

namespace nyx {
namespace {

constexpr uint32_t kSite = 4000;
constexpr uint16_t kPort = 2123;
constexpr uint64_t kStartupNs = 60'000'000;
constexpr uint64_t kRequestNs = 280'000;
constexpr uint64_t kAflnetExtraNs = 95'000'000;
// Internal allocation cap: ~3000 leaked command records.
constexpr uint32_t kArenaCapBytes = 3000 * 96;

struct State {
  int listener;
  int conn;
  uint8_t logged_in;
  uint8_t got_user;
  uint8_t tls_pending;
  char username[32];
  LineBuffer rx;
  uint32_t arena_used;  // process-lifetime leak (the internal limit)
  uint32_t commands;
};

class PureFtpd final : public Target {
 public:
  TargetInfo info() const override {
    TargetInfo ti;
    ti.name = "pure-ftpd";
    ti.port = kPort;
    ti.split = SplitStrategy::kCrlf;
    ti.desock_compatible = false;  // privilege-separated processes
    ti.startup_ns = kStartupNs;
    ti.request_ns = kRequestNs;
    ti.aflnet_extra_ns = kAflnetExtraNs;
    ti.startup_dirty_pages = 8;
    ti.state_bytes = sizeof(State);
    return ti;
  }

  void Init(GuestContext& ctx) override {
    auto* st = ctx.State<State>();
    memset(st, 0, sizeof(*st));
    st->conn = -1;
    st->listener = ctx.net().Socket(SockKind::kStream);
    ctx.net().Bind(st->listener, kPort);
    ctx.net().Listen(st->listener, 8);
    ctx.TouchScratch(8, 0x44);
    ctx.Charge(kStartupNs);
  }

  void Step(GuestContext& ctx) override {
    auto* st = ctx.State<State>();
    for (;;) {
      if (ctx.crash().crashed) {
        return;
      }
      if (st->conn < 0) {
        const int fd = ctx.net().Accept(st->listener);
        if (fd < 0) {
          return;
        }
        ctx.Cov(kSite + 0);
        st->conn = fd;
        st->logged_in = 0;
        st->got_user = 0;
        st->rx.len = 0;
        Reply(ctx, fd, "220 Pure-FTPd ready\r\n");
      }
      uint8_t buf[200];
      const int n = ctx.net().Recv(st->conn, buf, sizeof(buf));
      if (n == kErrAgain) {
        return;
      }
      if (n <= 0) {
        ctx.Cov(kSite + 1);
        ctx.net().Close(st->conn);
        st->conn = -1;
        continue;
      }
      st->rx.Push(buf, static_cast<uint32_t>(n));
      char line[200];
      while (st->rx.PopLine(line, sizeof(line))) {
        Handle(ctx, st, line);
        if (st->conn < 0 || ctx.crash().crashed) {
          break;
        }
      }
    }
  }

 private:
  void Handle(GuestContext& ctx, State* st, const char* line) {
    st->commands++;
    ctx.Charge(kRequestNs + ctx.cost().per_byte_ns * strlen(line));
    // Each command leaks a log record into the process arena. A single
    // session can never fill the arena; thousands of sessions in one
    // process lifetime can.
    st->arena_used += 96;
    if (ctx.CovBranch(st->arena_used > kArenaCapBytes, kSite + 2)) {
      ctx.Crash(kCrashPureFtpdOom, "internal-allocation-limit-abort");
      return;
    }

    char verb[8];
    const char* arg = nullptr;
    SplitVerb(line, verb, sizeof(verb), &arg);
    const int fd = st->conn;

    if (ctx.CovBranch(strcmp(verb, "USER") == 0, kSite + 10)) {
      CopyCString(st->username, arg);
      st->got_user = 1;
      Reply(ctx, fd, "331 Any password will work\r\n");
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "PASS") == 0, kSite + 12)) {
      if (ctx.CovBranch(!st->got_user, kSite + 14)) {
        Reply(ctx, fd, "503 USER first\r\n");
      } else {
        st->logged_in = 1;
        Reply(ctx, fd, "230 Welcome\r\n");
      }
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "AUTH") == 0, kSite + 16)) {
      if (ctx.CovBranch(StartsWithNoCase(arg, "TLS"), kSite + 18)) {
        st->tls_pending = 1;
        Reply(ctx, fd, "234 AUTH TLS OK\r\n");
      } else {
        Reply(ctx, fd, "504 Unknown AUTH\r\n");
      }
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "PBSZ") == 0, kSite + 20)) {
      Reply(ctx, fd, st->tls_pending ? "200 PBSZ=0\r\n" : "503 AUTH first\r\n");
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "PROT") == 0, kSite + 22)) {
      if (ctx.CovBranch(arg[0] == 'P', kSite + 24)) {
        Reply(ctx, fd, "200 Protection level P\r\n");
      } else if (ctx.CovBranch(arg[0] == 'C', kSite + 26)) {
        Reply(ctx, fd, "200 Protection level C\r\n");
      } else {
        Reply(ctx, fd, "504 Bad protection level\r\n");
      }
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "QUIT") == 0, kSite + 28)) {
      Reply(ctx, fd, "221 Logout\r\n");
      ctx.net().Close(st->conn);
      st->conn = -1;
      return;
    }
    if (ctx.CovBranch(!st->logged_in, kSite + 30)) {
      Reply(ctx, fd, "530 You aren't logged in\r\n");
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "MLSD") == 0 || strcmp(verb, "MLST") == 0, kSite + 32)) {
      Reply(ctx, fd, "250-Listing\r\n type=dir; .\r\n250 End\r\n");
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "OPTS") == 0, kSite + 34)) {
      if (ctx.CovBranch(StartsWithNoCase(arg, "UTF8"), kSite + 36)) {
        Reply(ctx, fd, "200 UTF8 on\r\n");
      } else if (ctx.CovBranch(StartsWithNoCase(arg, "MLST"), kSite + 38)) {
        Reply(ctx, fd, "200 MLST OPTS\r\n");
      } else {
        Reply(ctx, fd, "501 Unknown option\r\n");
      }
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "SIZE") == 0, kSite + 40)) {
      Reply(ctx, fd, arg[0] != '\0' ? "213 0\r\n" : "501 Need filename\r\n");
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "MDTM") == 0, kSite + 42)) {
      Reply(ctx, fd, "213 20220101000000\r\n");
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "PASV") == 0, kSite + 44)) {
      Reply(ctx, fd, "227 Entering Passive Mode (127,0,0,1,12,0)\r\n");
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "TYPE") == 0, kSite + 46)) {
      Reply(ctx, fd, "200 TYPE OK\r\n");
      return;
    }
    if (ctx.CovBranch(strcmp(verb, "NOOP") == 0, kSite + 48)) {
      Reply(ctx, fd, "200 Zzz...\r\n");
      return;
    }
    ctx.Cov(kSite + 50);
    Reply(ctx, fd, "500 Unknown command\r\n");
  }
};

}  // namespace

std::unique_ptr<Target> MakePureFtpd() { return std::make_unique<PureFtpd>(); }

}  // namespace nyx
