// Shared helpers for line-oriented protocol targets. Everything here
// operates on POD state that lives in guest memory, keeping the
// snapshot-safety contract.

#ifndef SRC_TARGETS_TEXTPROTO_H_
#define SRC_TARGETS_TEXTPROTO_H_

#include <cstdint>
#include <cstring>
#include <string_view>

#include "src/fuzz/guest.h"

namespace nyx {

// Accumulates raw bytes and yields complete lines (LF- or CRLF-terminated).
// Fixed-size so it can live in guest state; overlong lines are truncated at
// the buffer boundary and flushed as one line, like most real servers do.
struct LineBuffer {
  char data[1024];
  uint32_t len;

  void Push(const uint8_t* in, uint32_t n) {
    const uint32_t space = static_cast<uint32_t>(sizeof(data)) - len;
    const uint32_t take = n < space ? n : space;
    memcpy(data + len, in, take);
    len += take;
  }

  // Extracts the first complete line (without its terminator) into `out`
  // (capacity `cap`, NUL-terminated). Returns false if no full line is
  // buffered. A full buffer with no newline is flushed as a line.
  bool PopLine(char* out, uint32_t cap) {
    uint32_t eol = UINT32_MAX;
    for (uint32_t i = 0; i < len; i++) {
      if (data[i] == '\n') {
        eol = i;
        break;
      }
    }
    uint32_t line_len;
    uint32_t consumed;
    if (eol == UINT32_MAX) {
      if (len < sizeof(data)) {
        return false;
      }
      line_len = len;
      consumed = len;
    } else {
      line_len = eol;
      if (line_len > 0 && data[line_len - 1] == '\r') {
        line_len--;
      }
      consumed = eol + 1;
    }
    const uint32_t copy = line_len < cap - 1 ? line_len : cap - 1;
    memcpy(out, data, copy);
    out[copy] = '\0';
    memmove(data, data + consumed, len - consumed);
    len -= consumed;
    return true;
  }
};

// Copies `src` into a fixed-size field, truncating to fit. Unlike strncpy
// the destination is always NUL-terminated, and no trailing zero-fill pass
// runs over the rest of the array.
template <size_t N>
inline void CopyCString(char (&dst)[N], const char* src) {
  static_assert(N > 0, "destination must hold at least the terminator");
  size_t i = 0;
  while (i + 1 < N && src[i] != '\0') {
    dst[i] = src[i];
    i++;
  }
  dst[i] = '\0';
}

// Sends a NUL-terminated reply on `fd`.
inline void Reply(GuestContext& ctx, int fd, const char* msg) {
  ctx.net().Send(fd, msg, strlen(msg));
}

// Splits "VERB rest" in place; returns the verb (upper-cased into `verb`).
inline std::string_view SplitVerb(const char* line, char* verb, uint32_t cap,
                                  const char** rest) {
  uint32_t i = 0;
  while (line[i] != '\0' && line[i] != ' ' && i < cap - 1) {
    char c = line[i];
    if (c >= 'a' && c <= 'z') {
      c = static_cast<char>(c - 'a' + 'A');
    }
    verb[i] = c;
    i++;
  }
  verb[i] = '\0';
  const char* r = line + i;
  while (*r == ' ') {
    r++;
  }
  *rest = r;
  return std::string_view(verb, i);
}

}  // namespace nyx

#endif  // SRC_TARGETS_TEXTPROTO_H_
