// Firefox IPC analogue (case study, paper section 5.6).
//
// Models the parent process's IPC endpoint: multiple concurrent connections
// (content processes), an actor registry, typed messages routed to actors,
// and actor construction/destruction over the wire. The seeded bug is the
// class Nyx-Net found: a message routed to an actor that was already
// destroyed dereferences the stale actor pointer (one of the "three bugs
// [that] were only null pointer dereferences (which are still regarded as
// high severity)").
//
// Fuzzing this target uses Spec::MultiConnection() — "we extended the agent
// to find the relevant sockets and to allow the agent to talk to multiple
// connections at the same time".

#include <cstring>

#include "src/targets/registry.h"
#include "src/targets/textproto.h"

namespace nyx {
namespace {

constexpr uint32_t kSite = 16000;
constexpr uint16_t kPort = 9222;
constexpr uint64_t kStartupNs = 400'000'000;  // a browser boot is heavy
constexpr uint64_t kRequestNs = 800'000;
constexpr uint64_t kAflnetExtraNs = 900'000'000;

constexpr uint32_t kMsgConstructor = 1;
constexpr uint32_t kMsgDeleteActor = 2;
constexpr uint32_t kMsgPContent = 3;
constexpr uint32_t kMsgPWindow = 4;
constexpr uint32_t kMsgPNecko = 5;
constexpr uint32_t kMsgSync = 6;

struct Actor {
  uint32_t id;
  uint32_t kind;
  uint8_t alive;
  uint8_t constructed_on_conn;
};

struct Channel {
  int fd;  // -1 = free slot
  uint8_t buf[1024];
  uint32_t buf_len;
};

struct State {
  int listener;
  Channel channels[4];
  Actor actors[16];
  uint32_t next_actor_id;
  uint32_t messages;
};

class FirefoxIpc final : public Target {
 public:
  TargetInfo info() const override {
    TargetInfo ti;
    ti.name = "firefox-ipc";
    ti.port = kPort;
    ti.split = SplitStrategy::kSegment;
    ti.desock_compatible = false;  // many sockets at once
    ti.startup_ns = kStartupNs;
    ti.request_ns = kRequestNs;
    ti.aflnet_extra_ns = kAflnetExtraNs;
    ti.startup_dirty_pages = 64;
    ti.state_bytes = sizeof(State);
    return ti;
  }

  void Init(GuestContext& ctx) override {
    auto* st = ctx.State<State>();
    memset(st, 0, sizeof(*st));
    st->listener = ctx.net().Socket(SockKind::kStream);
    ctx.net().Bind(st->listener, kPort);
    ctx.net().Listen(st->listener, 8);
    for (auto& ch : st->channels) {
      ch.fd = -1;
    }
    st->next_actor_id = 1;
    // Preallocated root actors (PContent is always alive).
    st->actors[0] = Actor{0, kMsgPContent, 1, 0};
    ctx.TouchScratch(64, 0xf2);
    ctx.Charge(kStartupNs);
  }

  void Step(GuestContext& ctx) override {
    auto* st = ctx.State<State>();
    bool progress = true;
    while (progress && !ctx.crash().crashed) {
      progress = false;
      // Accept new content-process channels.
      for (;;) {
        const int fd = ctx.net().Accept(st->listener);
        if (fd < 0) {
          break;
        }
        ctx.Cov(kSite + 0);
        bool placed = false;
        for (auto& ch : st->channels) {
          if (ch.fd < 0) {
            ch.fd = fd;
            ch.buf_len = 0;
            placed = true;
            break;
          }
        }
        if (ctx.CovBranch(!placed, kSite + 2)) {
          ctx.net().Close(fd);  // too many content processes
        }
        progress = true;
      }
      // Service every channel.
      for (auto& ch : st->channels) {
        if (ch.fd < 0) {
          continue;
        }
        uint8_t chunk[256];
        const int n = ctx.net().Recv(ch.fd, chunk, sizeof(chunk));
        if (n == kErrAgain) {
          continue;
        }
        if (n <= 0) {
          ctx.Cov(kSite + 4);
          ctx.net().Close(ch.fd);
          ch.fd = -1;
          progress = true;
          continue;
        }
        const uint32_t space = sizeof(ch.buf) - ch.buf_len;
        const uint32_t take =
            static_cast<uint32_t>(n) < space ? static_cast<uint32_t>(n) : space;
        memcpy(ch.buf + ch.buf_len, chunk, take);
        ch.buf_len += take;
        DrainChannel(ctx, st, ch);
        progress = true;
        if (ctx.crash().crashed) {
          return;
        }
      }
    }
  }

 private:
  Actor* FindActor(State* st, uint32_t id) {
    for (auto& a : st->actors) {
      if (a.id == id) {
        return &a;
      }
    }
    return nullptr;
  }

  void DrainChannel(GuestContext& ctx, State* st, Channel& ch) {
    // Messages: [actor u32le][type u32le][len u32le][payload].
    while (!ctx.crash().crashed) {
      if (ch.buf_len < 12) {
        return;
      }
      uint32_t actor_id;
      uint32_t type;
      uint32_t len;
      memcpy(&actor_id, ch.buf, 4);
      memcpy(&type, ch.buf + 4, 4);
      memcpy(&len, ch.buf + 8, 4);
      if (ctx.CovBranch(len > sizeof(ch.buf) - 12, kSite + 10)) {
        // Oversized message: kill the content process (it is misbehaving).
        ctx.net().Close(ch.fd);
        ch.fd = -1;
        return;
      }
      if (12 + len > ch.buf_len) {
        return;
      }
      ctx.Charge(kRequestNs + ctx.cost().per_byte_ns * len);
      HandleMessage(ctx, st, ch, actor_id, type, ch.buf + 12, len);
      if (ch.fd < 0) {
        return;
      }
      memmove(ch.buf, ch.buf + 12 + len, ch.buf_len - 12 - len);
      ch.buf_len -= 12 + len;
    }
  }

  void HandleMessage(GuestContext& ctx, State* st, Channel& ch, uint32_t actor_id,
                     uint32_t type, const uint8_t* payload, uint32_t len) {
    st->messages++;
    if (ctx.CovBranch(type == kMsgConstructor, kSite + 12)) {
      // Construct a sub-actor: payload[0] = kind.
      if (ctx.CovBranch(len < 1, kSite + 14)) {
        return;
      }
      const uint8_t kind = payload[0];
      if (ctx.CovBranch(kind != kMsgPWindow && kind != kMsgPNecko, kSite + 16)) {
        ctx.Cov(kSite + 18);
        return;  // unknown protocol: ignored
      }
      for (auto& a : st->actors) {
        if (!a.alive && a.id == 0 && &a != &st->actors[0]) {
          a.id = st->next_actor_id++;
          a.kind = kind;
          a.alive = 1;
          // Reply with the new actor id.
          uint8_t reply[16] = {};
          memcpy(reply, &a.id, 4);
          ctx.net().Send(ch.fd, reply, sizeof(reply));
          return;
        }
      }
      // Reuse dead slots.
      for (auto& a : st->actors) {
        if (!a.alive && &a != &st->actors[0]) {
          ctx.Cov(kSite + 20);
          a.id = st->next_actor_id++;
          a.kind = kind;
          a.alive = 1;
          uint8_t reply[16] = {};
          memcpy(reply, &a.id, 4);
          ctx.net().Send(ch.fd, reply, sizeof(reply));
          return;
        }
      }
      ctx.Cov(kSite + 22);  // actor table full
      return;
    }

    Actor* actor = FindActor(st, actor_id);
    if (ctx.CovBranch(actor == nullptr, kSite + 24)) {
      // Unknown routing id: the real router kills the sender.
      ctx.net().Close(ch.fd);
      ch.fd = -1;
      return;
    }

    if (ctx.CovBranch(type == kMsgDeleteActor, kSite + 26)) {
      if (ctx.CovBranch(actor_id == 0, kSite + 28)) {
        return;  // the root actor cannot be deleted
      }
      // BUG SETUP: __delete__ marks the actor dead but keeps the routing
      // entry until the (asynchronous) ack — the window the crash needs.
      actor->alive = 0;
      return;
    }

    // Message to an actor.
    if (ctx.CovBranch(!actor->alive, kSite + 30)) {
      // NULL-deref class bug: the handler fetches the actor's vtable
      // through the stale pointer (section 5.6/5.7: "our three bugs were
      // only null pointer dereferences").
      ctx.Crash(kCrashFirefoxIpcNullDeref, "null-deref-destroyed-actor");
      return;
    }

    switch (actor->kind) {
      case kMsgPContent:
        ctx.Cov(kSite + 32);
        if (ctx.CovBranch(type == kMsgSync, kSite + 34)) {
          uint8_t reply[8] = {0x51};
          ctx.net().Send(ch.fd, reply, sizeof(reply));
        } else if (ctx.CovBranch(type == kMsgPContent, kSite + 36)) {
          ctx.Cov(kSite + 38);
        }
        return;
      case kMsgPWindow:
        ctx.Cov(kSite + 40);
        if (ctx.CovBranch(len >= 4 && memcmp(payload, "nav:", 4) == 0, kSite + 42)) {
          ctx.Cov(kSite + 44);  // navigation message
        }
        return;
      case kMsgPNecko:
        ctx.Cov(kSite + 46);
        if (ctx.CovBranch(len >= 4 && memcmp(payload, "http", 4) == 0, kSite + 48)) {
          uint8_t reply[4] = {200};
          ctx.net().Send(ch.fd, reply, sizeof(reply));
        }
        return;
      default:
        ctx.Cov(kSite + 50);
        return;
    }
  }
};

}  // namespace

std::unique_ptr<Target> MakeFirefoxIpc() { return std::make_unique<FirefoxIpc>(); }

}  // namespace nyx
