// Centralized environment-variable access.
//
// Every knob the system reads from the environment goes through this file:
// raw getenv calls live only in env.cc, so the full set of tunables is
// auditable in one place and the nyx_lint `raw-env` rule can ban scattered
// call sites. Scattered getenv is how hidden per-host nondeterminism creeps
// into campaigns — a knob read deep inside a worker is invisible to the
// person diffing two "identical" runs.
//
// Knobs (all optional):
//   NYX_RUNS        repeat count for bench campaigns (positive integer)
//   NYX_VTIME       virtual-time budget per campaign in seconds (positive)
//   NYX_JOBS        worker-pool width for the parallel harness (positive)
//   NYX_WALL        wall-clock budget for table1/table4 (positive seconds)
//   NYX_LOCK_DEBUG  enable the lock-hierarchy analyzer (flag)
//   NYX_AUDIT       enable the snapshot divergence auditor (flag): every
//                   execution runs twice and end states are compared
//   NYX_BENCH_OUT   output path override for BENCH_*.json writers
//   NYX_FIG5_TARGETS / NYX_FIG6_VM_MB / NYX_MARIO_LEVELS  bench-local knobs
//   NYX_TELEMETRY   enable the phase profiler / metric registry (flag);
//                   implied by NYX_TRACE (src/common/telemetry.h)
//   NYX_TRACE       path to write a Chrome trace-event JSON timeline of
//                   every instrumented phase (src/common/trace.h)
//   NYX_TRACE_RING  per-thread trace ring capacity in events (default 65536)
//   NYX_PHASE_OUT   output path override for BENCH_phase_breakdown.json
//                   (table3 / fig6 phase-breakdown passes)
//   NYX_TRACKER     dirty-tracking backend for guest memory: "mprotect"
//                   (SIGSEGV write-protection faults, default), "uffd"
//                   (userfaultfd write-protect mode), "softdirty"
//                   (/proc/self/pagemap soft-dirty bits) or "software"
//                   (explicit accessors only). Unavailable backends fall
//                   back to mprotect with one warning (DESIGN.md §12)
//   NYX_DIRTY_RING  capacity of the simulated hardware dirty ring (positive
//                   pages per ring-full VM exit, default 512)
//   NYX_SNAPSHOT_DEPTH  maximum depth of the VM snapshot tree (positive,
//                   default 1 = the classic root+incremental pair); depths
//                   >1 let the engine push extra snapshots at packet
//                   boundaries so restores revert only a suffix of pages
//   NYX_ANALYZE_CHECK  differential soundness oracle for the bytecode
//                   analyzer (flag): every corpus admission re-executes the
//                   canonicalized program against the original with pinned
//                   RNG and aborts on any guest-observable divergence
//                   (src/spec/analyze.h, DESIGN.md §14)

#ifndef SRC_COMMON_ENV_H_
#define SRC_COMMON_ENV_H_

#include <cstddef>
#include <string>

namespace nyx {
namespace env {

// ---- Generic typed accessors ----

// True when `name` is set to a non-empty value other than "0".
bool Flag(const char* name);
// Like Flag, but `def` when unset or empty (for knobs that can override a
// build-type default in both directions, e.g. NYX_LOCK_DEBUG=0).
bool FlagOr(const char* name, bool def);
// Positive-integer knob; `def` when unset, empty or not a positive number.
size_t SizeOr(const char* name, size_t def);
// Positive-double knob; `def` when unset, empty or not positive.
double DoubleOr(const char* name, double def);
// String knob; `def` when unset or empty.
std::string StringOr(const char* name, const std::string& def);

// ---- Named accessors for the well-known knobs ----

size_t Runs(size_t def);       // NYX_RUNS
double Vtime(double def);      // NYX_VTIME
size_t Jobs(size_t def);       // NYX_JOBS
double Wall(double def);       // NYX_WALL
bool LockDebug(bool def);      // NYX_LOCK_DEBUG (overrides `def` both ways)
bool Audit();                  // NYX_AUDIT
std::string TracePath();       // NYX_TRACE ("" when unset)
std::string Tracker();         // NYX_TRACKER ("" when unset)
size_t DirtyRing(size_t def);  // NYX_DIRTY_RING
size_t SnapshotDepth(size_t def);  // NYX_SNAPSHOT_DEPTH
bool AnalyzeCheck();           // NYX_ANALYZE_CHECK

}  // namespace env
}  // namespace nyx

#endif  // SRC_COMMON_ENV_H_
