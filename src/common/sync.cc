#include "src/common/sync.h"

#include <cstdlib>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/check.h"
#include "src/common/env.h"

namespace nyx {
namespace {

// Process-wide acquisition tallies, one cache line each so two workers
// bumping different counters never ping-pong a line between cores.
struct alignas(kCacheLineSize) PaddedCounter {
  std::atomic<uint64_t> v{0};
};
PaddedCounter g_acquisitions;
PaddedCounter g_contended;

// -1 = not yet resolved from NDEBUG/env; 0/1 afterwards. Resolved lazily on
// the first Lock() so tests (and the NYX_LOCK_DEBUG knob) can decide before
// any mutex is touched.
NYX_RAW_METRIC_OK("cached config flag, not a counter");
std::atomic<int> g_lock_debug{-1};

// --- runtime lock-hierarchy analyzer -------------------------------------
//
// Per-thread stack of held locks plus a global acquired-after graph keyed by
// mutex *name* (stable across instances: every campaign's frontier mutex is
// one graph node). The analyzer's own lock is a raw std::mutex on purpose —
// it is internal, leaf by construction, and must not recurse into the
// instrumentation.

struct Held {
  const Mutex* mu;
  const char* name;
  LockRank rank;
};

thread_local std::vector<Held> t_held;

std::mutex g_graph_mu;
// adj[from][to] = human-readable context recorded when the edge first
// appeared (the acquiring thread's held stack at that moment).
std::unordered_map<std::string, std::unordered_map<std::string, std::string>>
    g_graph;

std::string DescribeStack(const std::vector<Held>& held) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < held.size(); i++) {
    os << (i ? " -> " : "") << held[i].name << "(rank "
       << static_cast<int>(held[i].rank) << ")";
  }
  os << "]";
  return os.str();
}

// Depth-first path search `from` -> ... -> `to`; fills `path` with the node
// sequence when found. Graph lock held by caller.
bool FindPath(const std::string& from, const std::string& to,
              std::vector<std::string>& path) {
  path.push_back(from);
  if (from == to) {
    return true;
  }
  auto it = g_graph.find(from);
  if (it != g_graph.end()) {
    for (const auto& [next, ctx] : it->second) {
      // The graph is tiny (one node per distinct mutex name in the code
      // base), so the O(paths) walk without a visited set cannot blow up:
      // edges are only ever inserted when they close no cycle.
      bool revisit = false;
      for (const std::string& seen : path) {
        revisit = revisit || seen == next;
      }
      if (!revisit && FindPath(next, to, path)) {
        return true;
      }
    }
  }
  path.pop_back();
  return false;
}

[[noreturn]] void FailHierarchy(const std::string& detail) {
  internal::ContractFailure(__FILE__, __LINE__, "NYX_CHECK", "lock-hierarchy")
      << detail;
  __builtin_unreachable();  // ~ContractFailure aborts
}

// Rank + graph checks, run *before* blocking on the mutex so a would-be
// deadlock is reported instead of hung on.
void PreAcquire(const Mutex* mu) {
  for (const Held& h : t_held) {
    if (h.mu == mu) {
      FailHierarchy("recursive acquisition of '" + std::string(mu->name()) +
                    "'; held stack " + DescribeStack(t_held));
    }
  }
  if (mu->rank() != LockRank::kAny) {
    for (const Held& h : t_held) {
      if (h.rank != LockRank::kAny && h.rank >= mu->rank()) {
        FailHierarchy("rank inversion: acquiring '" + std::string(mu->name()) +
                      "' (rank " + std::to_string(static_cast<int>(mu->rank())) +
                      ") while holding '" + h.name + "' (rank " +
                      std::to_string(static_cast<int>(h.rank)) +
                      "); held stack " + DescribeStack(t_held));
      }
    }
  }
  if (t_held.empty()) {
    return;
  }
  const std::string to = mu->name();
  const std::string acquirer_stack = DescribeStack(t_held);
  std::lock_guard<std::mutex> g(g_graph_mu);
  for (const Held& h : t_held) {
    const std::string from = h.name;
    if (from == to) {
      continue;  // distinct instances sharing a name: not orderable by name
    }
    auto& out_edges = g_graph[from];
    if (out_edges.count(to)) {
      continue;  // already recorded (and therefore already cycle-checked)
    }
    // Would from -> to close a cycle? Look for an existing reverse path.
    std::vector<std::string> path;
    if (FindPath(to, from, path)) {
      std::ostringstream os;
      os << "acquired-after cycle: acquiring '" << to << "' while holding '"
         << from << "', but the reverse order is already on record:";
      for (size_t i = 0; i + 1 < path.size(); i++) {
        os << "\n  " << path[i] << " -> " << path[i + 1] << "  (first seen with "
           << g_graph[path[i]][path[i + 1]] << ")";
      }
      os << "\nthis thread now holds " << acquirer_stack;
      FailHierarchy(os.str());
    }
    out_edges.emplace(to, acquirer_stack + " acquiring " + to);
  }
}

void PostAcquire(const Mutex* mu) {
  t_held.push_back(Held{mu, mu->name(), mu->rank()});
}

void PreRelease(const Mutex* mu) {
  for (size_t i = t_held.size(); i > 0; i--) {
    if (t_held[i - 1].mu == mu) {
      t_held.erase(t_held.begin() + (i - 1));
      return;
    }
  }
  FailHierarchy("releasing '" + std::string(mu->name()) +
                "' which this thread does not hold; held stack " +
                DescribeStack(t_held));
}

}  // namespace

bool LockDebugEnabled() {
  int v = g_lock_debug.load(std::memory_order_relaxed);
  if (v < 0) {
#ifdef NDEBUG
    const bool def = false;
#else
    const bool def = true;
#endif
    v = env::LockDebug(def) ? 1 : 0;
    g_lock_debug.store(v, std::memory_order_relaxed);
  }
  return v == 1;
}

namespace internal {
void SetLockDebugForTest(bool enabled) {
  g_lock_debug.store(enabled ? 1 : 0, std::memory_order_relaxed);
}
}  // namespace internal

SyncStats GetSyncStats() {
  SyncStats out;
  out.acquisitions = g_acquisitions.v.load(std::memory_order_relaxed);
  out.contended = g_contended.v.load(std::memory_order_relaxed);
  return out;
}

void ResetSyncStats() {
  g_acquisitions.v.store(0, std::memory_order_relaxed);
  g_contended.v.store(0, std::memory_order_relaxed);
}

void Mutex::Lock() {
  const bool debug = LockDebugEnabled();
  if (debug) {
    PreAcquire(this);
  }
  if (!mu_.try_lock()) {
    g_contended.v.fetch_add(1, std::memory_order_relaxed);
    mu_.lock();
  }
  g_acquisitions.v.fetch_add(1, std::memory_order_relaxed);
  if (debug) {
    PostAcquire(this);
  }
}

void Mutex::Unlock() {
  if (LockDebugEnabled()) {
    PreRelease(this);
  }
  mu_.unlock();
}

}  // namespace nyx
