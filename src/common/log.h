// Minimal leveled logger. Quiet by default so tests and benchmarks stay
// readable; campaigns raise the level when diagnosing.

#ifndef SRC_COMMON_LOG_H_
#define SRC_COMMON_LOG_H_

#include <sstream>
#include <string>

namespace nyx {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);
void LogMessage(LogLevel level, const std::string& msg);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    if (level_ >= GetLogLevel()) {
      stream_ << v;
    }
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace nyx

#define NYX_LOG_DEBUG ::nyx::LogLine(::nyx::LogLevel::kDebug)
#define NYX_LOG_INFO ::nyx::LogLine(::nyx::LogLevel::kInfo)
#define NYX_LOG_WARN ::nyx::LogLine(::nyx::LogLevel::kWarn)
#define NYX_LOG_ERROR ::nyx::LogLine(::nyx::LogLevel::kError)

#endif  // SRC_COMMON_LOG_H_
