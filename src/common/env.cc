#include "src/common/env.h"

#include <cstdlib>

namespace nyx {
namespace env {

namespace {

const char* Raw(const char* name) {
  // The only getenv call site in the tree (nyx_lint `raw-env`).
  return std::getenv(name);
}

}  // namespace

bool Flag(const char* name) {
  const char* v = Raw(name);
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

bool FlagOr(const char* name, bool def) {
  const char* v = Raw(name);
  if (v == nullptr || v[0] == '\0') {
    return def;
  }
  return v[0] != '0';
}

size_t SizeOr(const char* name, size_t def) {
  const char* v = Raw(name);
  if (v == nullptr || v[0] == '\0') {
    return def;
  }
  const long n = atol(v);
  return n > 0 ? static_cast<size_t>(n) : def;
}

double DoubleOr(const char* name, double def) {
  const char* v = Raw(name);
  if (v == nullptr || v[0] == '\0') {
    return def;
  }
  const double x = atof(v);
  return x > 0 ? x : def;
}

std::string StringOr(const char* name, const std::string& def) {
  const char* v = Raw(name);
  return (v == nullptr || v[0] == '\0') ? def : std::string(v);
}

size_t Runs(size_t def) { return SizeOr("NYX_RUNS", def); }
double Vtime(double def) { return DoubleOr("NYX_VTIME", def); }
size_t Jobs(size_t def) { return SizeOr("NYX_JOBS", def); }
double Wall(double def) { return DoubleOr("NYX_WALL", def); }
bool LockDebug(bool def) { return FlagOr("NYX_LOCK_DEBUG", def); }
bool Audit() { return Flag("NYX_AUDIT"); }
std::string TracePath() { return StringOr("NYX_TRACE", ""); }
std::string Tracker() { return StringOr("NYX_TRACKER", ""); }
size_t DirtyRing(size_t def) { return SizeOr("NYX_DIRTY_RING", def); }
size_t SnapshotDepth(size_t def) { return SizeOr("NYX_SNAPSHOT_DEPTH", def); }
bool AnalyzeCheck() { return Flag("NYX_ANALYZE_CHECK"); }

}  // namespace env
}  // namespace nyx
