#include "src/common/telemetry.h"

#include <time.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "src/common/check.h"
#include "src/common/env.h"
#include "src/common/trace.h"

namespace nyx {
namespace telemetry {

namespace {

// -1 = environment not consulted yet; 0/1 after InitFromEnv or an explicit
// SetTelemetryEnabled. The disabled hot path is one relaxed load of this.
std::atomic<int> g_enabled{-1};

std::atomic<size_t> g_next_shard{0};

// Open-phase stack frame. child_ns accumulates the *total* time of directly
// nested scopes so End() can record self-time only.
struct PhaseFrame {
  Phase phase;
  uint64_t start_ns;
  uint64_t child_ns;
};

struct PhaseStack {
  PhaseFrame frames[32];
  size_t depth = 0;
};

thread_local PhaseStack t_phase_stack;

}  // namespace

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kMutate:
      return "mutate";
    case Phase::kVerify:
      return "verify";
    case Phase::kSnapshotRestore:
      return "snapshot-restore";
    case Phase::kDirtyReset:
      return "dirty-reset";
    case Phase::kDirtySync:
      return "dirty-sync";
    case Phase::kNetemu:
      return "netemu";
    case Phase::kGuestRun:
      return "guest-run";
    case Phase::kCoverageMerge:
      return "coverage-merge";
    case Phase::kFrontierSync:
      return "frontier-sync";
    case Phase::kAudit:
      return "audit";
    case Phase::kPhaseCount:
      break;
  }
  return "?";
}

void InitFromEnv() {
  int expected = -1;
  const int from_env = (env::Flag("NYX_TELEMETRY") || !env::TracePath().empty()) ? 1 : 0;
  g_enabled.compare_exchange_strong(expected, from_env, std::memory_order_relaxed);
}

bool Enabled() {
  int v = g_enabled.load(std::memory_order_relaxed);
  if (v < 0) {
    InitFromEnv();
    v = g_enabled.load(std::memory_order_relaxed);
  }
  return v > 0;
}

void SetTelemetryEnabled(bool enabled) {
  g_enabled.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

uint64_t NowNs() {
  // Sanctioned wall-clock site (nyx_lint raw-time): phase profiling measures
  // host cost, never fuzzing-visible time.
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

size_t ThreadShard() {
  thread_local size_t shard =
      g_next_shard.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

// ---------------------------------------------------------------------------
// Counter

uint64_t Counter::Value() const {
  uint64_t sum = 0;
  for (const PaddedSlot& s : shards_) {
    sum += s.v.load(std::memory_order_relaxed);
  }
  return sum;
}

void Counter::Reset() {
  for (PaddedSlot& s : shards_) {
    s.v.store(0, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// Gauge

void Gauge::SetDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  __builtin_memcpy(&bits, &v, sizeof(bits));
  value_.store(bits, std::memory_order_relaxed);
  is_double_.store(true, std::memory_order_relaxed);
}

double Gauge::DoubleValue() const {
  const uint64_t bits = value_.load(std::memory_order_relaxed);
  if (!is_double_.load(std::memory_order_relaxed)) {
    return static_cast<double>(bits);
  }
  double v;
  __builtin_memcpy(&v, &bits, sizeof(v));
  return v;
}

// ---------------------------------------------------------------------------
// Histogram

size_t Histogram::BucketFor(uint64_t value) {
  // Clamp so values >= 2^63 share the top bucket instead of indexing past it.
  const size_t b = value == 0 ? 0 : static_cast<size_t>(std::bit_width(value));
  return b < kBuckets ? b : kBuckets - 1;
}

uint64_t Histogram::BucketLow(size_t bucket) {
  return bucket == 0 ? 0 : 1ull << (bucket - 1);
}

uint64_t Histogram::BucketHigh(size_t bucket) {
  return bucket == 0 ? 1 : (bucket >= kBuckets - 1 ? UINT64_MAX : 1ull << bucket);
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot out;
  for (const Row& row : row_) {
    for (size_t b = 0; b < kBuckets; b++) {
      const uint64_t c = row.bucket[b].load(std::memory_order_relaxed);
      out.counts[b] += c;
      out.total += c;
    }
  }
  return out;
}

void Histogram::Reset() {
  for (Row& row : row_) {
    for (size_t b = 0; b < kBuckets; b++) {
      row.bucket[b].store(0, std::memory_order_relaxed);
    }
  }
}

double Histogram::Snapshot::Percentile(double p) const {
  if (total == 0) {
    return 0.0;
  }
  const double rank = p / 100.0 * static_cast<double>(total);
  uint64_t seen = 0;
  for (size_t b = 0; b < kBuckets; b++) {
    if (counts[b] == 0) {
      continue;
    }
    seen += counts[b];
    if (static_cast<double>(seen) >= rank) {
      // Linear interpolation within the bucket's value range.
      const double lo = static_cast<double>(BucketLow(b));
      const double hi = static_cast<double>(BucketHigh(b));
      const double into = 1.0 - (static_cast<double>(seen) - rank) /
                                    static_cast<double>(counts[b]);
      return lo + (hi - lo) * std::clamp(into, 0.0, 1.0);
    }
  }
  return static_cast<double>(BucketHigh(kBuckets - 1));
}

// ---------------------------------------------------------------------------
// MetricRegistry

MetricRegistry& MetricRegistry::Global() {
  static MetricRegistry* registry = new MetricRegistry();  // never destroyed
  return *registry;
}

MetricRegistry::~MetricRegistry() {
  // void* storage erases the type, so dispatch on kind for the delete.
  for (const Named& m : metrics_) {
    switch (m.kind) {
      case 0:
        delete static_cast<Counter*>(m.metric);
        break;
      case 1:
        delete static_cast<Gauge*>(m.metric);
        break;
      default:
        delete static_cast<Histogram*>(m.metric);
        break;
    }
  }
}

void* MetricRegistry::Find(const std::string& name, uint8_t kind) {
  for (const Named& m : metrics_) {
    if (m.name == name) {
      NYX_CHECK(m.kind == kind) << "metric " << name << " re-registered as a different kind";
      return m.metric;
    }
  }
  return nullptr;
}

Counter* MetricRegistry::RegisterCounter(const std::string& name) {
  MutexLock lock(mu_);
  if (void* existing = Find(name, 0)) {
    return static_cast<Counter*>(existing);
  }
  auto* c = new Counter();  // owned by the registry, freed in ~MetricRegistry
  metrics_.push_back({name, 0, c});
  return c;
}

Gauge* MetricRegistry::RegisterGauge(const std::string& name) {
  MutexLock lock(mu_);
  if (void* existing = Find(name, 1)) {
    return static_cast<Gauge*>(existing);
  }
  auto* g = new Gauge();
  metrics_.push_back({name, 1, g});
  return g;
}

Histogram* MetricRegistry::RegisterHistogram(const std::string& name) {
  MutexLock lock(mu_);
  if (void* existing = Find(name, 2)) {
    return static_cast<Histogram*>(existing);
  }
  auto* h = new Histogram();
  metrics_.push_back({name, 2, h});
  return h;
}

std::vector<MetricRegistry::Entry> MetricRegistry::Entries() const {
  std::vector<Entry> out;
  {
    MutexLock lock(mu_);
    out.reserve(metrics_.size());
    for (const Named& m : metrics_) {
      Entry e;
      e.name = m.name;
      switch (m.kind) {
        case 0:
          e.counter = static_cast<const Counter*>(m.metric);
          break;
        case 1:
          e.gauge = static_cast<const Gauge*>(m.metric);
          break;
        default:
          e.histogram = static_cast<const Histogram*>(m.metric);
          break;
      }
      out.push_back(std::move(e));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Entry& a, const Entry& b) { return a.name < b.name; });
  return out;
}

void MetricRegistry::ResetValues() {
  MutexLock lock(mu_);
  for (const Named& m : metrics_) {
    if (m.kind == 0) {
      static_cast<Counter*>(m.metric)->Reset();
    } else if (m.kind == 2) {
      static_cast<Histogram*>(m.metric)->Reset();
    }
  }
}

Histogram* PhaseHistogram(Phase phase) {
  struct PhaseHistograms {
    Histogram* h[kPhaseCount];
    PhaseHistograms() {
      for (size_t i = 0; i < kPhaseCount; i++) {
        h[i] = MetricRegistry::Global().RegisterHistogram(
            std::string("phase.") + PhaseName(static_cast<Phase>(i)) + "_ns");
      }
    }
  };
  static PhaseHistograms histograms;
  return histograms.h[static_cast<size_t>(phase)];
}

// ---------------------------------------------------------------------------
// ScopedPhase

void ScopedPhase::Begin(Phase phase) {
  PhaseStack& st = t_phase_stack;
  if (st.depth >= std::size(st.frames)) {
    return;  // pathological nesting: drop rather than corrupt the stack
  }
  st.frames[st.depth++] = {phase, NowNs(), 0};
  armed_ = true;
}

void ScopedPhase::End() {
  PhaseStack& st = t_phase_stack;
  NYX_DCHECK(st.depth > 0);
  const PhaseFrame frame = st.frames[--st.depth];
  const uint64_t end_ns = NowNs();
  const uint64_t total = end_ns - frame.start_ns;
  const uint64_t self = total > frame.child_ns ? total - frame.child_ns : 0;
  PhaseHistogram(frame.phase)->Record(self);
  if (st.depth > 0) {
    st.frames[st.depth - 1].child_ns += total;
  }
  trace::RecordPhase(frame.phase, frame.start_ns, total);
}

size_t PhaseDepth() { return t_phase_stack.depth; }

// ---------------------------------------------------------------------------
// Dump writers

namespace {

std::string FmtDouble(double v) {
  char buf[64];
  snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

std::string DumpText(const MetricRegistry& registry) {
  std::ostringstream os;
  for (const MetricRegistry::Entry& e : registry.Entries()) {
    if (e.counter != nullptr) {
      os << e.name << " " << e.counter->Value() << "\n";
    } else if (e.gauge != nullptr) {
      if (e.gauge->is_double()) {
        os << e.name << " " << FmtDouble(e.gauge->DoubleValue()) << "\n";
      } else {
        os << e.name << " " << e.gauge->Value() << "\n";
      }
    } else {
      const Histogram::Snapshot s = e.histogram->Snap();
      os << e.name << " total=" << s.total << " p50=" << FmtDouble(s.Percentile(50))
         << " p90=" << FmtDouble(s.Percentile(90)) << " p99=" << FmtDouble(s.Percentile(99))
         << "\n";
    }
  }
  return os.str();
}

std::string DumpJson(const MetricRegistry& registry) {
  std::ostringstream counters, gauges, histograms;
  bool first_c = true, first_g = true, first_h = true;
  for (const MetricRegistry::Entry& e : registry.Entries()) {
    if (e.counter != nullptr) {
      counters << (first_c ? "" : ",") << "\n    \"" << e.name
               << "\": " << e.counter->Value();
      first_c = false;
    } else if (e.gauge != nullptr) {
      gauges << (first_g ? "" : ",") << "\n    \"" << e.name << "\": ";
      if (e.gauge->is_double()) {
        gauges << FmtDouble(e.gauge->DoubleValue());
      } else {
        gauges << e.gauge->Value();
      }
      first_g = false;
    } else {
      const Histogram::Snapshot s = e.histogram->Snap();
      histograms << (first_h ? "" : ",") << "\n    \"" << e.name << "\": {\"total\": "
                 << s.total << ", \"p50\": " << FmtDouble(s.Percentile(50))
                 << ", \"p90\": " << FmtDouble(s.Percentile(90))
                 << ", \"p99\": " << FmtDouble(s.Percentile(99)) << ", \"buckets\": [";
      bool first_b = true;
      for (size_t b = 0; b < Histogram::kBuckets; b++) {
        if (s.counts[b] == 0) {
          continue;
        }
        histograms << (first_b ? "" : ", ") << "[" << Histogram::BucketLow(b) << ", "
                   << s.counts[b] << "]";
        first_b = false;
      }
      histograms << "]}";
      first_h = false;
    }
  }
  std::ostringstream os;
  os << "{\n  \"counters\": {" << counters.str() << (first_c ? "" : "\n  ") << "},\n";
  os << "  \"gauges\": {" << gauges.str() << (first_g ? "" : "\n  ") << "},\n";
  os << "  \"histograms\": {" << histograms.str() << (first_h ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

}  // namespace telemetry
}  // namespace nyx
