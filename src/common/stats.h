// Statistics helpers for the evaluation harness: mean/stddev/median as used
// in Tables 2-4 of the paper, and a time-series recorder for the coverage
// plots (Figures 5 and 7).

#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace nyx {

double Mean(const std::vector<double>& xs);
double StdDev(const std::vector<double>& xs);
// Median with the usual even-count interpolation (the paper reports medians
// like 473.5 branches, which only arise from interpolated medians).
double Median(std::vector<double> xs);

// Two-sided Mann-Whitney U test p-value (normal approximation with tie
// correction), as recommended by Klees et al. and used for the bold entries
// in Table 2.
double MannWhitneyUPValue(const std::vector<double>& a, const std::vector<double>& b);

// Records (virtual time, value) pairs, e.g. branch coverage over time.
// Samples must arrive in non-decreasing time order (campaign recorders run
// on a monotone clock); lookups are O(log n) binary searches, so the long
// per-campaign plot_data series stay cheap to query.
class TimeSeries {
 public:
  void Record(double t_seconds, double value);
  // Value of the last sample at or before t; 0 before the first sample.
  double ValueAt(double t_seconds) const;
  // First time the series reached at least `value`; negative if never.
  // Correct for non-monotone values too (searches the running maximum).
  double TimeToReach(double value) const;
  bool empty() const { return points_.empty(); }
  const std::vector<std::pair<double, double>>& points() const { return points_; }

  // Pointwise median of several series sampled on a fixed grid, as
  // ProFuzzBench's plotting scripts compute for Figure 5/7.
  static TimeSeries PointwiseMedian(const std::vector<TimeSeries>& runs, double t_end,
                                    double step);

  std::string ToCsv(const std::string& label) const;

 private:
  std::vector<std::pair<double, double>> points_;
  // Running maximum of values, maintained by Record: cummax_[i] is the max
  // of values 0..i. Monotone by construction, so TimeToReach can binary
  // search it even when the raw values dip.
  std::vector<double> cummax_;
};

}  // namespace nyx

#endif  // SRC_COMMON_STATS_H_
