// Byte-buffer helpers shared by the bytecode codec, the network emulation
// layer and the protocol targets.

#ifndef SRC_COMMON_BYTES_H_
#define SRC_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace nyx {

using Bytes = std::vector<uint8_t>;

inline Bytes ToBytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

inline std::string ToString(const Bytes& b) {
  return std::string(b.begin(), b.end());
}

inline std::string_view AsStringView(const Bytes& b) {
  return std::string_view(reinterpret_cast<const char*>(b.data()), b.size());
}

// Little-endian scalar accessors; reads past the end return 0 so parsers can
// be written without pre-checking lengths everywhere.
inline uint16_t ReadLe16(const Bytes& b, size_t off) {
  if (off + 2 > b.size()) {
    return 0;
  }
  return static_cast<uint16_t>(b[off]) | static_cast<uint16_t>(b[off + 1]) << 8;
}

inline uint32_t ReadLe32(const Bytes& b, size_t off) {
  if (off + 4 > b.size()) {
    return 0;
  }
  uint32_t v = 0;
  std::memcpy(&v, b.data() + off, 4);
  return v;
}

inline uint16_t ReadBe16(const Bytes& b, size_t off) {
  if (off + 2 > b.size()) {
    return 0;
  }
  return static_cast<uint16_t>(b[off]) << 8 | static_cast<uint16_t>(b[off + 1]);
}

inline uint32_t ReadBe32(const Bytes& b, size_t off) {
  if (off + 4 > b.size()) {
    return 0;
  }
  return static_cast<uint32_t>(b[off]) << 24 | static_cast<uint32_t>(b[off + 1]) << 16 |
         static_cast<uint32_t>(b[off + 2]) << 8 | static_cast<uint32_t>(b[off + 3]);
}

inline void PutLe16(Bytes& b, uint16_t v) {
  b.push_back(static_cast<uint8_t>(v));
  b.push_back(static_cast<uint8_t>(v >> 8));
}

inline void PutLe32(Bytes& b, uint32_t v) {
  for (int i = 0; i < 4; i++) {
    b.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

inline void PutLe64(Bytes& b, uint64_t v) {
  for (int i = 0; i < 8; i++) {
    b.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

inline void PutBe16(Bytes& b, uint16_t v) {
  b.push_back(static_cast<uint8_t>(v >> 8));
  b.push_back(static_cast<uint8_t>(v));
}

inline void PutBe32(Bytes& b, uint32_t v) {
  for (int i = 3; i >= 0; i--) {
    b.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

inline void Append(Bytes& dst, const Bytes& src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

inline void Append(Bytes& dst, std::string_view src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

// Case-insensitive ASCII prefix check used by the text-protocol parsers.
inline bool StartsWithNoCase(std::string_view haystack, std::string_view prefix) {
  if (haystack.size() < prefix.size()) {
    return false;
  }
  for (size_t i = 0; i < prefix.size(); i++) {
    char a = haystack[i];
    char b = prefix[i];
    if (a >= 'a' && a <= 'z') {
      a = static_cast<char>(a - 'a' + 'A');
    }
    if (b >= 'a' && b <= 'z') {
      b = static_cast<char>(b - 'a' + 'A');
    }
    if (a != b) {
      return false;
    }
  }
  return true;
}

inline std::string HexDump(const Bytes& b, size_t max = 64) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  size_t n = b.size() < max ? b.size() : max;
  out.reserve(n * 3);
  for (size_t i = 0; i < n; i++) {
    out.push_back(kHex[b[i] >> 4]);
    out.push_back(kHex[b[i] & 0xf]);
    out.push_back(' ');
  }
  if (b.size() > max) {
    out += "...";
  }
  return out;
}

}  // namespace nyx

#endif  // SRC_COMMON_BYTES_H_
