#include "src/common/trace.h"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "src/common/env.h"
#include "src/common/log.h"
#include "src/common/sync.h"

namespace nyx {
namespace trace {

namespace {

struct Event {
  uint64_t start_ns;
  uint64_t dur_ns;
  telemetry::Phase phase;
};

// One per thread, owned by the global recorder so it survives thread exit.
struct Ring {
  explicit Ring(size_t capacity) : events(capacity) {}
  std::vector<Event> events;
  size_t head = 0;       // next write position
  uint64_t written = 0;  // total events ever recorded
  uint32_t track = 0;    // Chrome tid
  std::string name;      // thread_name metadata ("" = default)

  void Push(const Event& e) {
    events[head] = e;
    head = (head + 1) % events.size();
    written++;
  }
  size_t Size() const {
    return written < events.size() ? static_cast<size_t>(written) : events.size();
  }
};

struct Recorder {
  Mutex mu{"trace.recorder", LockRank::kAny};
  std::vector<std::unique_ptr<Ring>> rings NYX_GUARDED_BY(mu);
  std::string path NYX_GUARDED_BY(mu);         // "" = tracing off
  bool path_resolved NYX_GUARDED_BY(mu) = false;
  bool atexit_installed NYX_GUARDED_BY(mu) = false;
  uint64_t epoch_ns NYX_GUARDED_BY(mu) = 0;    // ts origin for the export
};

Recorder& Rec() {
  static Recorder* r = new Recorder();  // never destroyed: atexit flush reads it
  return *r;
}

// Fast-path flag mirroring "path is nonempty", so RecordPhase costs one
// relaxed load when tracing is off.
std::atomic<int> g_active{-1};

void ResolvePathLocked(Recorder& r) NYX_REQUIRES(r.mu) {
  if (r.path_resolved) {
    return;
  }
  r.path_resolved = true;
  r.path = env::TracePath();
  g_active.store(r.path.empty() ? 0 : 1, std::memory_order_relaxed);
  if (!r.path.empty() && !r.atexit_installed) {
    r.atexit_installed = true;
    std::atexit([] { WriteTraceIfRequested(); });
  }
}

thread_local Ring* t_ring = nullptr;

Ring* ThreadRing() {
  if (t_ring == nullptr) {
    Recorder& r = Rec();
    MutexLock lock(r.mu);
    auto ring = std::make_unique<Ring>(env::SizeOr("NYX_TRACE_RING", 65536));
    ring->track = static_cast<uint32_t>(r.rings.size());
    if (r.epoch_ns == 0) {
      r.epoch_ns = telemetry::NowNs();
    }
    t_ring = ring.get();
    r.rings.push_back(std::move(ring));
  }
  return t_ring;
}

}  // namespace

bool TracingActive() {
  int v = g_active.load(std::memory_order_relaxed);
  if (v < 0) {
    Recorder& r = Rec();
    MutexLock lock(r.mu);
    ResolvePathLocked(r);
    v = g_active.load(std::memory_order_relaxed);
  }
  return v > 0;
}

void RecordPhase(telemetry::Phase phase, uint64_t start_ns, uint64_t dur_ns) {
  if (!TracingActive()) {
    return;
  }
  ThreadRing()->Push({start_ns, dur_ns, phase});
}

void SetThreadTrackName(const std::string& name) {
  if (!TracingActive()) {
    return;
  }
  Ring* ring = ThreadRing();
  Recorder& r = Rec();
  MutexLock lock(r.mu);  // name is read under the lock by WriteTrace
  ring->name = name;
}

bool WriteTrace(const std::string& path) {
  Recorder& r = Rec();
  MutexLock lock(r.mu);
  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) {
    NYX_LOG_WARN << "trace: cannot write " << path;
    return false;
  }
  const uint64_t epoch = r.epoch_ns;
  fprintf(f, "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [");
  bool first = true;
  for (const auto& ring : r.rings) {
    fprintf(f, "%s\n  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": %u, "
               "\"args\": {\"name\": \"%s\"}}",
            first ? "" : ",", ring->track,
            ring->name.empty() ? ("thread-" + std::to_string(ring->track)).c_str()
                               : ring->name.c_str());
    first = false;
    // Oldest surviving event first so each track's events are time-ordered.
    const size_t n = ring->Size();
    const size_t cap = ring->events.size();
    const size_t oldest = ring->written > n ? ring->head : 0;
    for (size_t i = 0; i < n; i++) {
      const Event& e = ring->events[(oldest + i) % cap];
      const double ts_us =
          static_cast<double>(e.start_ns >= epoch ? e.start_ns - epoch : 0) / 1000.0;
      const double dur_us = static_cast<double>(e.dur_ns) / 1000.0;
      fprintf(f, ",\n  {\"name\": \"%s\", \"ph\": \"X\", \"pid\": 0, \"tid\": %u, "
                 "\"ts\": %.3f, \"dur\": %.3f}",
              telemetry::PhaseName(e.phase), ring->track, ts_us, dur_us);
    }
  }
  fprintf(f, "\n]}\n");
  const bool ok = fflush(f) == 0 && ferror(f) == 0;
  fclose(f);
  if (ok) {
    uint64_t events = 0, dropped = 0;
    for (const auto& ring : r.rings) {
      events += ring->Size();
      dropped += ring->written - ring->Size();
    }
    NYX_LOG_INFO << "trace: wrote " << events << " events (" << dropped
                 << " dropped to ring wraparound), " << r.rings.size() << " track(s) -> "
                 << path;
  }
  return ok;
}

void WriteTraceIfRequested() {
  std::string path;
  {
    Recorder& r = Rec();
    MutexLock lock(r.mu);
    ResolvePathLocked(r);
    if (r.path.empty() || r.rings.empty()) {
      return;
    }
    path = r.path;
  }
  WriteTrace(path);
}

void SetTracePathForTest(const std::string& path) {
  Recorder& r = Rec();
  MutexLock lock(r.mu);
  r.path_resolved = true;
  r.path = path;
  g_active.store(path.empty() ? 0 : 1, std::memory_order_relaxed);
  for (auto& ring : r.rings) {
    ring->head = 0;
    ring->written = 0;
  }
  r.epoch_ns = telemetry::NowNs();
}

RecorderStats GetRecorderStats() {
  Recorder& r = Rec();
  MutexLock lock(r.mu);
  RecorderStats out;
  out.tracks = r.rings.size();
  for (const auto& ring : r.rings) {
    out.recorded += ring->Size();
    out.dropped += ring->written - ring->Size();
  }
  return out;
}

}  // namespace trace
}  // namespace nyx
