#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/common/check.h"

namespace nyx {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) {
    return 0.0;
  }
  double s = 0.0;
  for (double x : xs) {
    s += x;
  }
  return s / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) {
    return 0.0;
  }
  double m = Mean(xs);
  double s = 0.0;
  for (double x : xs) {
    s += (x - m) * (x - m);
  }
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double Median(std::vector<double> xs) {
  if (xs.empty()) {
    return 0.0;
  }
  std::sort(xs.begin(), xs.end());
  size_t n = xs.size();
  if (n % 2 == 1) {
    return xs[n / 2];
  }
  return 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

double MannWhitneyUPValue(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.empty() || b.empty()) {
    return 1.0;
  }
  // Rank the pooled samples, averaging ranks over ties.
  struct Tagged {
    double v;
    int group;
  };
  std::vector<Tagged> pool;
  pool.reserve(a.size() + b.size());
  for (double v : a) {
    pool.push_back({v, 0});
  }
  for (double v : b) {
    pool.push_back({v, 1});
  }
  std::sort(pool.begin(), pool.end(), [](const Tagged& x, const Tagged& y) { return x.v < y.v; });

  const double n1 = static_cast<double>(a.size());
  const double n2 = static_cast<double>(b.size());
  const double n = n1 + n2;
  double rank_sum_a = 0.0;
  double tie_term = 0.0;
  size_t i = 0;
  while (i < pool.size()) {
    size_t j = i;
    while (j + 1 < pool.size() && pool[j + 1].v == pool[i].v) {
      j++;
    }
    const double avg_rank = 0.5 * (static_cast<double>(i + 1) + static_cast<double>(j + 1));
    const double t = static_cast<double>(j - i + 1);
    tie_term += t * t * t - t;
    for (size_t k = i; k <= j; k++) {
      if (pool[k].group == 0) {
        rank_sum_a += avg_rank;
      }
    }
    i = j + 1;
  }

  const double u1 = rank_sum_a - n1 * (n1 + 1) / 2.0;
  const double mu = n1 * n2 / 2.0;
  const double sigma2 = n1 * n2 / 12.0 * ((n + 1) - tie_term / (n * (n - 1)));
  if (sigma2 <= 0.0) {
    return 1.0;
  }
  // Continuity-corrected z statistic, two-sided.
  const double z = (std::abs(u1 - mu) - 0.5) / std::sqrt(sigma2);
  const double p = std::erfc(z / std::sqrt(2.0));
  return p;
}

void TimeSeries::Record(double t_seconds, double value) {
  // Lookups binary-search on time; out-of-order samples would silently
  // corrupt them, so reject at the source.
  NYX_DCHECK(points_.empty() || t_seconds >= points_.back().first)
      << "TimeSeries samples must arrive in time order";
  points_.emplace_back(t_seconds, value);
  cummax_.push_back(cummax_.empty() ? value : std::max(cummax_.back(), value));
}

double TimeSeries::ValueAt(double t_seconds) const {
  // First point strictly after t; the sample before it is the answer.
  const auto it = std::upper_bound(
      points_.begin(), points_.end(), t_seconds,
      [](double t, const std::pair<double, double>& p) { return t < p.first; });
  return it == points_.begin() ? 0.0 : std::prev(it)->second;
}

double TimeSeries::TimeToReach(double value) const {
  // The running maximum is monotone, so the first index where it reaches
  // `value` is exactly the first sample that did.
  const auto it = std::lower_bound(cummax_.begin(), cummax_.end(), value);
  if (it == cummax_.end()) {
    return -1.0;
  }
  return points_[static_cast<size_t>(it - cummax_.begin())].first;
}

TimeSeries TimeSeries::PointwiseMedian(const std::vector<TimeSeries>& runs, double t_end,
                                       double step) {
  TimeSeries out;
  for (double t = 0.0; t <= t_end; t += step) {
    std::vector<double> vals;
    vals.reserve(runs.size());
    for (const auto& r : runs) {
      vals.push_back(r.ValueAt(t));
    }
    out.Record(t, Median(std::move(vals)));
  }
  return out;
}

std::string TimeSeries::ToCsv(const std::string& label) const {
  std::ostringstream os;
  for (const auto& [t, v] : points_) {
    os << label << "," << t << "," << v << "\n";
  }
  return os.str();
}

}  // namespace nyx
