#include "src/common/log.h"

#include <cstdio>

namespace nyx {
namespace {

LogLevel g_level = LogLevel::kWarn;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return g_level; }

void SetLogLevel(LogLevel level) { g_level = level; }

void LogMessage(LogLevel level, const std::string& msg) {
  if (level < g_level || level == LogLevel::kOff) {
    return;
  }
  std::fprintf(stderr, "[nyx:%s] %s\n", LevelName(level), msg.c_str());
}

}  // namespace nyx
