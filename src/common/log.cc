#include "src/common/log.h"

#include <atomic>
#include <cstdio>

#include "src/common/sync.h"

namespace nyx {
namespace {

// Read from campaign worker threads; writes are rare (test/CLI setup).
std::atomic<LogLevel> g_level{LogLevel::kWarn};

// Serializes the stderr write so concurrent workers cannot interleave
// halves of two log lines. Rank kLog is the hierarchy leaf: logging happens
// under other locks (e.g. soft-contract reports inside a frontier sync),
// but nothing may acquire another lock while emitting a line. Function-local
// so the mutex is constructed on first use regardless of static init order.
Mutex& OutputMutex() {
  static Mutex mu("log.stderr", LockRank::kLog);
  return mu;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

void LogMessage(LogLevel level, const std::string& msg) {
  if (level < GetLogLevel() || level == LogLevel::kOff) {
    return;
  }
  MutexLock lock(OutputMutex());
  std::fprintf(stderr, "[nyx:%s] %s\n", LevelName(level), msg.c_str());
}

}  // namespace nyx
