// Capability-annotated synchronization layer. Every lock in the codebase
// goes through this header — raw std::mutex / std::condition_variable /
// std::lock_guard are banned outside it (enforced by nyx_lint, rule
// raw-sync) — so the threading model in DESIGN.md §8/§9 is machine-checked
// twice over:
//
//  1. Statically: the NYX_GUARDED_BY / NYX_REQUIRES / ... macros expand to
//     Clang `thread_safety` attributes (no-ops elsewhere). CI builds src/
//     with -Wthread-safety -Werror=thread-safety, so an unannotated access
//     to a guarded field or a call to a NYX_REQUIRES method without the
//     lock is a compile error.
//  2. Dynamically: in debug builds (or with NYX_LOCK_DEBUG=1) every Mutex
//     carries a rank and a name. Acquisitions maintain a per-thread
//     held-lock stack plus a global acquired-after graph; a rank inversion,
//     a cycle in the graph, or a recursive acquisition aborts via NYX_CHECK
//     with both acquisition stacks printed. The checks sit on lock
//     boundaries only (frontier syncs, log lines) — never on the per-exec
//     hot path, which is lock-free by design.
//
// Acquisition and contention totals are exposed via GetSyncStats() and land
// in every campaign's workdir stats.txt.

#ifndef SRC_COMMON_SYNC_H_
#define SRC_COMMON_SYNC_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <new>
#include <thread>

// ---------------------------------------------------------------------------
// Clang thread-safety annotation macros (https://clang.llvm.org/docs/
// ThreadSafetyAnalysis.html). GCC and MSVC compile them away.

#if defined(__clang__)
#define NYX_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define NYX_THREAD_ANNOTATION(x)
#endif

// On types: this class is a lockable capability.
#define NYX_CAPABILITY(x) NYX_THREAD_ANNOTATION(capability(x))
// On types: RAII object that acquires in its ctor, releases in its dtor.
#define NYX_SCOPED_CAPABILITY NYX_THREAD_ANNOTATION(scoped_lockable)
// On data members: reads/writes require holding the named capability.
#define NYX_GUARDED_BY(x) NYX_THREAD_ANNOTATION(guarded_by(x))
// On pointer members: the pointee (not the pointer) is guarded.
#define NYX_PT_GUARDED_BY(x) NYX_THREAD_ANNOTATION(pt_guarded_by(x))
// On functions: caller must hold the capability on entry (and keeps it).
#define NYX_REQUIRES(...) NYX_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
// On functions: acquires the capability; caller must not already hold it.
#define NYX_ACQUIRE(...) NYX_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
// On functions: releases the capability; caller must hold it on entry.
#define NYX_RELEASE(...) NYX_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
// On functions: caller must NOT hold the capability (deadlock guard for
// public entry points of classes with an internal lock).
#define NYX_EXCLUDES(...) NYX_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
// On functions: returns a reference to the given capability.
#define NYX_RETURN_CAPABILITY(x) NYX_THREAD_ANNOTATION(lock_returned(x))
// Escape hatch for code that is correct for reasons the analysis cannot
// see (e.g. "all worker threads have been joined"). Use sparingly and
// always with a comment explaining the out-of-band invariant.
#define NYX_NO_THREAD_SAFETY_ANALYSIS NYX_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace nyx {

// ---------------------------------------------------------------------------
// Cache-line geometry for padding shared atomics (false-sharing fixes).
// Wrapped so the GCC ABI-stability warning fires nowhere else.

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winterference-size"
#endif
#if defined(__cpp_lib_hardware_interference_size)
inline constexpr size_t kCacheLineSize = std::hardware_destructive_interference_size;
#else
inline constexpr size_t kCacheLineSize = 64;
#endif
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

// ---------------------------------------------------------------------------
// Lock ranks. Ascending rank = acquired later: a thread may acquire a ranked
// mutex only while every ranked mutex it already holds has a strictly lower
// rank (same-rank nesting is an inversion too). kAny opts out of the static
// order — such mutexes are still covered by the acquired-after graph, which
// catches A-then-B vs B-then-A cycles between any two named locks.
// The full hierarchy table lives in DESIGN.md §9.
enum class LockRank : int {
  kAny = 0,       // unranked: graph-checked only
  kFrontier = 10,  // CorpusFrontier::mu_ — sharded corpus exchange
  kLog = 100,      // log output serialization (leaf: nothing nests under it)
};

// Acquisition totals across every Mutex in the process (stats.txt rows
// lock_acquired / lock_contended). `contended` counts acquisitions that
// found the mutex already held and had to block.
struct SyncStats {
  uint64_t acquisitions = 0;
  uint64_t contended = 0;
};
SyncStats GetSyncStats();
void ResetSyncStats();

// True when the runtime lock-hierarchy analyzer is active: default on in
// debug builds, off under NDEBUG; the NYX_LOCK_DEBUG env knob (0/1)
// overrides either way (EXPERIMENTS.md).
bool LockDebugEnabled();

namespace internal {
// Test/CLI override for LockDebugEnabled(), bypassing the env knob.
void SetLockDebugForTest(bool enabled);
}  // namespace internal

// ---------------------------------------------------------------------------
// Annotated mutex. The name keys the acquired-after graph (stable across
// instances, e.g. every campaign's frontier mutex shares one graph node);
// the rank places it in the static hierarchy.
class NYX_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(const char* name, LockRank rank = LockRank::kAny)
      : name_(name), rank_(rank) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() NYX_ACQUIRE();
  void Unlock() NYX_RELEASE();

  // BasicLockable spelling so CondVar (std::condition_variable_any) can
  // release/reacquire through the instrumented path — the analyzer's
  // held-lock stack stays exact across a Wait().
  void lock() NYX_ACQUIRE() { Lock(); }
  void unlock() NYX_RELEASE() { Unlock(); }

  const char* name() const { return name_; }
  LockRank rank() const { return rank_; }

 private:
  std::mutex mu_;
  const char* const name_;
  const LockRank rank_;
};

// RAII scoped acquisition, the only idiomatic way to hold a Mutex.
class NYX_SCOPED_CAPABILITY MutexLock {
 public:
  // Acquires through the parameter (not the member alias) so the static
  // analysis can match the capability expression to the caller's mutex.
  explicit MutexLock(Mutex& mu) NYX_ACQUIRE(mu) : mu_(mu) { mu.Lock(); }
  ~MutexLock() NYX_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable bound to the annotated Mutex. Waits go through
// Mutex::lock()/unlock(), so hierarchy bookkeeping and contention counters
// survive the release/reacquire inside wait.
class CondVar {
 public:
  void Wait(Mutex& mu) NYX_REQUIRES(mu) { cv_.wait(mu); }
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

// ---------------------------------------------------------------------------
// Debug-build affinity check for worker-owned objects (Corpus, CoverageMap:
// DESIGN.md §8.1 says they run start-to-finish on one thread — this makes
// that a checked invariant instead of a comment). Attaches to the first
// thread that calls CalledOnValidThread(); copies/moves detach, because a
// copied object starts a fresh ownership claim.
class ThreadChecker {
 public:
  ThreadChecker() = default;
  ThreadChecker(const ThreadChecker&) {}
  ThreadChecker& operator=(const ThreadChecker&) { return *this; }

  // True when called on the attached thread (attaching if none yet).
  bool CalledOnValidThread() const {
    const std::thread::id self = std::this_thread::get_id();
    std::thread::id expected{};
    if (owner_.compare_exchange_strong(expected, self, std::memory_order_relaxed)) {
      return true;
    }
    return expected == self;
  }

  // Releases the claim so ownership can hand over to another thread.
  void Detach() { owner_.store(std::thread::id{}, std::memory_order_relaxed); }

 private:
  mutable std::atomic<std::thread::id> owner_{};
};

}  // namespace nyx

#endif  // SRC_COMMON_SYNC_H_
