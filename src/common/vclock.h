// Virtual clock and cost model.
//
// The paper reports wall-clock throughput measured on a 52-core Xeon testbed
// running real servers inside KVM. This reproduction runs compact protocol
// re-implementations on a userspace VM, so absolute wall-clock numbers would
// be meaningless. Instead, every emulated operation (syscall, connection
// setup, VM reset, AFLNet sleep, ...) charges a calibrated number of virtual
// nanoseconds to a deterministic clock, and the benchmarks report virtual
// executions per second. The relative costs below are taken from the paper's
// own measurements and from published numbers for Linux syscall/connect
// latencies, so the *shape* of the results (who wins, by what factor) is
// driven by the same mechanics as the original evaluation.

#ifndef SRC_COMMON_VCLOCK_H_
#define SRC_COMMON_VCLOCK_H_

#include <cstdint>

namespace nyx {

// Cost constants, in virtual nanoseconds.
struct CostModel {
  // Fast emulated "syscall": a hooked libc call that never enters the kernel.
  uint64_t emulated_call_ns = 80;
  // Real syscall through the kernel (baselines using real sockets).
  uint64_t real_syscall_ns = 1200;
  // Full TCP connect + accept on loopback, including the context switches the
  // paper calls out ("usually involving dozens of context switches").
  uint64_t tcp_connect_ns = 90'000;
  // Cost of processing one byte of payload in the target (parsing work is
  // charged separately by the targets themselves).
  uint64_t per_byte_ns = 4;
  // Restoring a VM snapshot: fixed hypercall/device cost plus per-dirty-page
  // copy cost. "Nyx is able to reset the VM about 12,000 times per second"
  // => ~83us fixed for a small target.
  uint64_t snapshot_restore_fixed_ns = 55'000;
  uint64_t snapshot_page_copy_ns = 180;      // copy + mprotect re-arm per page
  uint64_t incremental_create_page_ns = 200; // CoW write per page
  uint64_t device_reset_fast_ns = 4'000;
  uint64_t device_reset_slow_ns = 160'000;   // QEMU serialize/deserialize
  // Baseline (AFLNet-style) per-execution overheads.
  uint64_t process_spawn_ns = 350'000;       // fork+exec of the server
  uint64_t server_ready_poll_ns = 2'000'000; // polling until the port is open
  uint64_t aflnet_cleanup_script_ns = 1'500'000;
  uint64_t aflnet_inter_packet_gap_ns = 150'000; // recv-timeout wait per packet
  // AFL++ persistent-mode style reset used by the desock baseline.
  uint64_t forkserver_reset_ns = 450'000;
};

// Monotonic deterministic clock. One instance per campaign.
class VirtualClock {
 public:
  void Advance(uint64_t ns) { now_ns_ += ns; }
  uint64_t now_ns() const { return now_ns_; }
  void Reset() { now_ns_ = 0; }

  double now_seconds() const { return static_cast<double>(now_ns_) * 1e-9; }

 private:
  uint64_t now_ns_ = 0;
};

}  // namespace nyx

#endif  // SRC_COMMON_VCLOCK_H_
