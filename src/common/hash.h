// Small non-cryptographic hashes used for coverage-map indexing and
// crash/input deduplication.

#ifndef SRC_COMMON_HASH_H_
#define SRC_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>

#include "src/common/bytes.h"

namespace nyx {

inline uint64_t Fnv1a64(const void* data, size_t len, uint64_t seed = 0xcbf29ce484222325ull) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; i++) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

inline uint64_t Fnv1a64(const Bytes& b) { return Fnv1a64(b.data(), b.size()); }

// Finalizer from splitmix64; good avalanche for integer keys.
inline uint64_t Mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace nyx

#endif  // SRC_COMMON_HASH_H_
