#include "src/common/check.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "src/common/log.h"
#include "src/common/sync.h"

namespace nyx {

namespace {
// Campaigns fan out across worker threads (harness/parallel.h), so the
// process-wide tallies are atomics. Each thread additionally keeps its own
// tally: a campaign runs whole on one thread, so per-campaign deltas of the
// thread counter are exact and independent of sibling workers.
//
// Each counter gets its own cache line: NYX_EXPECT sits on defensive early
// returns all over the exec path, and two workers bumping adjacent atomics
// would ping-pong the line between cores (false sharing). Same for the
// thread-local block — TLS segments of different threads can land on
// adjacent lines of the same page.
NYX_RAW_METRIC_OK("telemetry depends on check.h; registering here would be circular");
alignas(kCacheLineSize) std::atomic<uint64_t> g_soft_failures{0};
alignas(kCacheLineSize) std::atomic<uint64_t> g_hard_failures{0};
alignas(kCacheLineSize) thread_local ContractCounters t_counters;
}  // namespace

ContractCounters GetContractCounters() {
  ContractCounters out;
  out.soft_failures = g_soft_failures.load(std::memory_order_relaxed);
  out.hard_failures = g_hard_failures.load(std::memory_order_relaxed);
  return out;
}

ContractCounters GetThreadContractCounters() { return t_counters; }

void ResetContractCounters() {
  g_soft_failures.store(0, std::memory_order_relaxed);
  g_hard_failures.store(0, std::memory_order_relaxed);
  t_counters = ContractCounters{};
}

namespace internal {

void NoteSoftFailure(const char* file, int line, const char* expr) {
  g_soft_failures.fetch_add(1, std::memory_order_relaxed);
  t_counters.soft_failures++;
  NYX_LOG_DEBUG << "soft contract failed at " << file << ":" << line << ": " << expr;
}

ContractFailure::ContractFailure(const char* file, int line, const char* kind,
                                 const char* expr) {
  stream_ << kind << " failed at " << file << ":" << line << ": " << expr << " ";
}

ContractFailure::ContractFailure(const char* file, int line, const char* kind,
                                 std::string* detail) {
  stream_ << kind << " failed at " << file << ":" << line << ": " << *detail << " ";
  delete detail;
}

ContractFailure::~ContractFailure() {
  g_hard_failures.fetch_add(1, std::memory_order_relaxed);
  t_counters.hard_failures++;
  // stderr directly (not the leveled logger): the process is dying and the
  // log level must not be able to swallow the reason.
  fprintf(stderr, "nyx: %s\n", stream_.str().c_str());
  abort();
}

}  // namespace internal
}  // namespace nyx
