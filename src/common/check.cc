#include "src/common/check.h"

#include <cstdio>
#include <cstdlib>

#include "src/common/log.h"

namespace nyx {

namespace {
// Fuzzing is single-threaded (see guest_memory.cc); plain counters suffice.
ContractCounters g_counters;
}  // namespace

ContractCounters GetContractCounters() { return g_counters; }

void ResetContractCounters() { g_counters = ContractCounters{}; }

namespace internal {

void NoteSoftFailure(const char* file, int line, const char* expr) {
  g_counters.soft_failures++;
  NYX_LOG_DEBUG << "soft contract failed at " << file << ":" << line << ": " << expr;
}

ContractFailure::ContractFailure(const char* file, int line, const char* kind,
                                 const char* expr) {
  stream_ << kind << " failed at " << file << ":" << line << ": " << expr << " ";
}

ContractFailure::ContractFailure(const char* file, int line, const char* kind,
                                 std::string* detail) {
  stream_ << kind << " failed at " << file << ":" << line << ": " << *detail << " ";
  delete detail;
}

ContractFailure::~ContractFailure() {
  g_counters.hard_failures++;
  // stderr directly (not the leveled logger): the process is dying and the
  // log level must not be able to swallow the reason.
  fprintf(stderr, "nyx: %s\n", stream_.str().c_str());
  abort();
}

}  // namespace internal
}  // namespace nyx
