// Telemetry layer: metric registry + per-exec phase profiler (DESIGN.md §11).
//
// Nyx-Net's headline result is throughput, and every optimization argument
// ("the dirty-ring tracker must beat mprotect", "the frontier cadence is too
// aggressive") needs to say *where each microsecond of an exec goes*. The
// flat counters in stats.txt cannot answer that. This layer provides:
//
//  * MetricRegistry — named counters, gauges and log2-bucketed latency
//    histograms. Counters and histograms are backed by cache-line-padded
//    per-thread shards (same false-sharing discipline as common/sync.h), so
//    concurrent campaign workers never contend on a metric; reads merge the
//    shards. Counter bumps are relaxed atomics and safe from signal context
//    (the SIGSEGV dirty-tracking handler bumps one).
//  * A fixed phase taxonomy (enum Phase) covering the per-exec pipeline:
//    mutate → verify → snapshot-restore → dirty-reset → netemu → guest-run →
//    coverage-merge → frontier-sync → audit. Every phase owns a histogram of
//    self-time (nested phases subtract their children, so the breakdown sums
//    to wall time without double counting).
//  * ScopedPhase — RAII timer attributing wall time to a Phase. When
//    telemetry is disabled (the default) construction is one relaxed atomic
//    load and nothing else: the hot path stays within noise of an
//    uninstrumented build. When enabled it also feeds the per-thread trace
//    ring (src/common/trace.h) so NYX_TRACE=<path> yields a Chrome
//    trace-event timeline.
//
// Enabling: NYX_TELEMETRY=1 turns on phase profiling; NYX_TRACE=<path>
// implies it and additionally records/flushes the timeline. Benches flip it
// programmatically via SetTelemetryEnabled (table3's phase-breakdown pass).
//
// Wall-clock note: phase timing deliberately reads the *real* monotonic
// clock — it measures host cost, unlike the deterministic virtual clock that
// drives fuzzing logic (src/common/vclock.h). All reads live behind NowNs()
// in telemetry.cc, which is a sanctioned wall-clock site of the nyx_lint
// `raw-time` rule; telemetry never feeds back into execution, so
// determinism is unaffected (the combined audit+trace test holds this).

#ifndef SRC_COMMON_TELEMETRY_H_
#define SRC_COMMON_TELEMETRY_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/sync.h"

namespace nyx {
namespace telemetry {

// ---------------------------------------------------------------------------
// Phase taxonomy. Order is display order in breakdowns; kPhaseCount ends it.

enum class Phase : uint8_t {
  kMutate = 0,      // mutator: deriving the next input
  kVerify,          // bytecode verifier at trust boundaries
  kSnapshotRestore, // root/incremental restore incl. devices + aux blob
  kDirtyReset,      // dirty-page copy loops + tracker re-arm (inside restore)
  kDirtySync,       // passive-backend dirty harvest (pagemap scan / uffd drain)
  kNetemu,          // emulated network: connection setup, packet delivery
  kGuestRun,        // target code running until it blocks on input
  kCoverageMerge,   // folding the exec trace into global coverage
  kFrontierSync,    // sharded corpus exchange barrier (incl. wait time)
  kAudit,           // divergence auditor replays + fingerprint comparison
  kPhaseCount,
};

inline constexpr size_t kPhaseCount = static_cast<size_t>(Phase::kPhaseCount);

// Stable lowercase-dash name ("snapshot-restore"), used in stats dumps,
// trace events and BENCH_phase_breakdown.json.
const char* PhaseName(Phase phase);

// ---------------------------------------------------------------------------
// Global enable switch. Disabled-path cost anywhere in the hot layers is one
// relaxed load of this flag.

bool Enabled();
// Programmatic override (benches, tests). Takes effect immediately.
void SetTelemetryEnabled(bool enabled);
// Applies the environment policy: enabled when NYX_TELEMETRY=1 or NYX_TRACE
// is set. Called lazily on first Enabled() read; idempotent.
void InitFromEnv();

// Monotonic wall-clock nanoseconds. The only wall-clock read telemetry ever
// performs; see the header comment for why this is not the virtual clock.
uint64_t NowNs();

// ---------------------------------------------------------------------------
// Sharded storage geometry. A metric's mutable state is kShards slots, each
// on its own cache line; a thread owns slot (thread_index % kShards).

inline constexpr size_t kShards = 16;

struct alignas(kCacheLineSize) PaddedSlot {
  std::atomic<uint64_t> v{0};
};

// Index of the calling thread's shard slot (stable per thread).
size_t ThreadShard();

// ---------------------------------------------------------------------------
// Metric kinds. All three are registered by name in a MetricRegistry and
// never destroyed while the process runs (handles are stable pointers).

// Monotone event count. Bumps are relaxed and async-signal-safe.
class Counter {
 public:
  void Add(uint64_t n) {
    shards_[ThreadShard()].v.fetch_add(n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }
  uint64_t Value() const;
  void Reset();

 private:
  PaddedSlot shards_[kShards];
};

// Last-write-wins instantaneous value (corpus size, shard count, ...).
// Gauges are set from one logical owner at a time, so a single slot is fine.
class Gauge {
 public:
  void Set(uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  void SetDouble(double v);
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  // Gauges optionally carry a double representation (vtime seconds, rates).
  double DoubleValue() const;
  bool is_double() const { return is_double_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
  std::atomic<bool> is_double_{false};
};

// Log2-bucketed latency histogram: values land in bucket floor(log2(v))+1,
// bucket 0 holds zeros. 64 buckets cover the full uint64 range. Each shard
// row owns its cache lines, so concurrent recording never contends.
class Histogram {
 public:
  static constexpr size_t kBuckets = 64;

  // Bucket index a value lands in (exposed for tests and percentile math).
  static size_t BucketFor(uint64_t value);
  // Inclusive lower / exclusive upper bound of a bucket's value range.
  static uint64_t BucketLow(size_t bucket);
  static uint64_t BucketHigh(size_t bucket);

  void Record(uint64_t value) {
    row_[ThreadShard() % kShards].bucket[BucketFor(value)].fetch_add(
        1, std::memory_order_relaxed);
  }

  // Cross-shard merged view.
  struct Snapshot {
    uint64_t counts[kBuckets] = {};
    uint64_t total = 0;
    // Percentile estimate: linear interpolation inside the covering bucket.
    double Percentile(double p) const;
  };
  Snapshot Snap() const;
  uint64_t Total() const { return Snap().total; }
  void Reset();

 private:
  // One shard row = 64 contiguous counters (8 cache lines), rows aligned so
  // two threads never split a line.
  struct alignas(kCacheLineSize) Row {
    std::atomic<uint64_t> bucket[kBuckets] = {};
  };
  Row row_[kShards];
};

// ---------------------------------------------------------------------------
// MetricRegistry: name → metric. Registration is idempotent (same name
// returns the same handle) and cheap-but-locked; handles are resolved once
// at setup time and bumped lock-free afterwards. A process-wide instance
// (Global()) backs the phase profiler and hot-layer counters; local
// instances back per-campaign dumps (src/fuzz/workdir.cc).

class MetricRegistry {
 public:
  static MetricRegistry& Global();

  Counter* RegisterCounter(const std::string& name) NYX_EXCLUDES(mu_);
  Gauge* RegisterGauge(const std::string& name) NYX_EXCLUDES(mu_);
  Histogram* RegisterHistogram(const std::string& name) NYX_EXCLUDES(mu_);

  // Sorted-by-name snapshot of every metric, for the dump writers.
  struct Entry {
    std::string name;
    const Counter* counter = nullptr;      // exactly one of the three set
    const Gauge* gauge = nullptr;
    const Histogram* histogram = nullptr;
  };
  std::vector<Entry> Entries() const NYX_EXCLUDES(mu_);

  // Zeroes every counter and histogram (gauges keep their last value).
  // Used by benches between phase-breakdown passes.
  void ResetValues() NYX_EXCLUDES(mu_);

  MetricRegistry() = default;
  // Frees owned metrics: every pointer handed out by Register* dies with
  // the registry. Global() is never destroyed, so its pointers are stable
  // for the process lifetime; local registries (tests) must outlive theirs.
  ~MetricRegistry();
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

 private:
  struct Named {
    std::string name;
    uint8_t kind;  // 0 counter, 1 gauge, 2 histogram
    void* metric;
  };
  void* Find(const std::string& name, uint8_t kind) NYX_REQUIRES(mu_);

  mutable Mutex mu_{"telemetry.registry", LockRank::kAny};
  std::vector<Named> metrics_ NYX_GUARDED_BY(mu_);
};

// Per-phase self-time histogram (nanoseconds) in the global registry,
// named "phase.<name>_ns". Resolved lazily, stable thereafter.
Histogram* PhaseHistogram(Phase phase);

// ---------------------------------------------------------------------------
// ScopedPhase: attributes the enclosed wall time to `phase`. Nesting is
// explicit: a nested scope's total time is subtracted from its parent, so
// each histogram records *self* time and the per-exec breakdown sums to the
// exec's wall time. Reentrancy (same phase nested in itself) is fine — each
// level accounts its own self-time.

class ScopedPhase {
 public:
  explicit ScopedPhase(Phase phase) {
    if (Enabled()) {
      Begin(phase);
    }
  }
  ~ScopedPhase() {
    if (armed_) {
      End();
    }
  }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  void Begin(Phase phase);
  void End();

  bool armed_ = false;
};

// Depth of the calling thread's open-phase stack. The engine registers
// "telemetry.phase_timers" as per-exec ephemeral with this ==0 as the idle
// invariant: no phase scope may straddle an execution boundary.
size_t PhaseDepth();

// ---------------------------------------------------------------------------
// Dump helpers shared by workdir stats writers and benches.

// "name value" lines, sorted by name; histograms dump total/p50/p90/p99.
std::string DumpText(const MetricRegistry& registry);
// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
// Histograms carry nonzero buckets ([bucket_low, count] pairs) plus
// total/p50/p90/p99 so downstream tooling needs no log2 knowledge.
std::string DumpJson(const MetricRegistry& registry);

}  // namespace telemetry
}  // namespace nyx

#endif  // SRC_COMMON_TELEMETRY_H_
