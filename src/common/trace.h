// Per-thread ring-buffer trace recorder with Chrome trace-event export
// (DESIGN.md §11). With NYX_TRACE=<path> set (src/common/env.h), every
// ScopedPhase records one complete event into its thread's ring; at process
// exit (or an explicit WriteTrace call) the rings are merged and written as
// Chrome trace-event JSON, loadable in chrome://tracing or Perfetto.
//
// Design constraints, in order:
//  * Recording must be allocation-free and lock-free after a thread's first
//    event: each thread owns a preallocated ring (capacity NYX_TRACE_RING,
//    default 65536 events) and wraps around, keeping the most recent events.
//    A wrapped ring reports how many events it dropped.
//  * One track per shard/worker: threads are separate Chrome "tid"s, and the
//    harness names them (SetThreadTrackName) so the timeline reads
//    "shard-3", "worker-0" instead of bare ids. Names are emitted as
//    thread_name metadata events.
//  * Rings outlive their threads: the global recorder owns them, so a
//    campaign worker that exits before the flush still contributes its
//    timeline.
//
// The JSON schema (validated by src/tools/trace_check.cc):
//   {"traceEvents": [
//     {"name":"thread_name","ph":"M","pid":0,"tid":3,
//      "args":{"name":"shard-3"}},
//     {"name":"guest-run","ph":"X","pid":0,"tid":3,"ts":12.3,"dur":4.5},
//     ...]}
// ts/dur are microseconds relative to the first recorded event.

#ifndef SRC_COMMON_TRACE_H_
#define SRC_COMMON_TRACE_H_

#include <cstdint>
#include <string>

#include "src/common/telemetry.h"

namespace nyx {
namespace trace {

// True when a trace destination is configured (NYX_TRACE set or
// SetTracePathForTest called) — recording is active only then.
bool TracingActive();

// Records one completed phase scope (called by ScopedPhase::End; start/dur
// in NowNs units). No-op unless tracing is active.
void RecordPhase(telemetry::Phase phase, uint64_t start_ns, uint64_t dur_ns);

// Names the calling thread's track in the exported timeline ("shard-3",
// "worker-0", "main"). Safe to call repeatedly; last name wins.
void SetThreadTrackName(const std::string& name);

// Writes the merged timeline as Chrome trace JSON. Returns false (with a
// log line) if the file cannot be written. Thread rings are kept; a second
// call re-exports the union.
bool WriteTrace(const std::string& path);

// Flushes to the NYX_TRACE path if one is configured (the atexit hook the
// recorder installs on first use does this automatically; benches call it
// explicitly so the file exists before their own post-processing).
void WriteTraceIfRequested();

// Test/bench override of the destination path ("" disables). Also resets
// the recorded rings so tests see only their own events.
void SetTracePathForTest(const std::string& path);

// Total events currently held across all rings, and events dropped to ring
// wraparound (tests, and the summary log line).
struct RecorderStats {
  uint64_t recorded = 0;  // events currently in rings
  uint64_t dropped = 0;   // overwritten by wraparound
  size_t tracks = 0;
};
RecorderStats GetRecorderStats();

}  // namespace trace
}  // namespace nyx

#endif  // SRC_COMMON_TRACE_H_
