// Deterministic pseudo-random number generator used throughout the fuzzer.
//
// The whole system is seeded explicitly so that campaigns, tests and
// benchmarks are reproducible run-to-run. We use xoshiro256** which is fast,
// has a 256-bit state and passes BigCrush; fuzzers spend a significant
// fraction of time in the RNG so std::mt19937_64 would be a poor fit.

#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace nyx {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { Seed(seed); }

  // Re-seeds the generator via splitmix64 so that nearby seeds produce
  // uncorrelated streams.
  void Seed(uint64_t seed) {
    for (auto& word : state_) {
      seed += 0x9e3779b97f4a7c15ull;
      uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform value in [0, bound). bound == 0 returns 0.
  uint64_t Below(uint64_t bound) {
    if (bound == 0) {
      return 0;
    }
    // Lemire's multiply-shift rejection method: unbiased and division-free in
    // the common case.
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
    uint64_t l = static_cast<uint64_t>(m);
    if (l < bound) {
      uint64_t t = -bound % bound;
      while (l < t) {
        x = Next();
        m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  // Uniform value in [lo, hi] inclusive.
  uint64_t Range(uint64_t lo, uint64_t hi) { return lo + Below(hi - lo + 1); }

  // True with probability num/den.
  bool Chance(uint64_t num, uint64_t den) { return Below(den) < num; }

  // True with probability p (0..1).
  bool Probability(double p) {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53 < p;
  }

  uint8_t NextByte() { return static_cast<uint8_t>(Next()); }

  // Order-sensitive digest of the generator state, for the snapshot
  // divergence auditor: two streams that consumed the same draws from the
  // same seed hash identically.
  uint64_t StateHash() const {
    uint64_t h = 0xcbf29ce484222325ull;
    for (uint64_t word : state_) {
      h = (h ^ word) * 0x100000001b3ull;
    }
    return h;
  }

  template <typename T>
  const T& Choice(const std::vector<T>& v) {
    return v[Below(v.size())];
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4] = {};
};

}  // namespace nyx

#endif  // SRC_COMMON_RNG_H_
