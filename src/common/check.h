// Contract-checking macros for invariants the code cannot express in types.
//
// Two severity levels:
//   NYX_CHECK / NYX_CHECK_EQ / ... / NYX_UNREACHABLE  — always compiled in;
//     a failure logs file:line plus the failed expression and aborts. Use for
//     invariants whose violation means memory corruption or snapshot-state
//     divergence (continuing would silently corrupt the campaign).
//   NYX_DCHECK / NYX_DCHECK_EQ / ...  — same, but compiled out under NDEBUG.
//     Use on hot paths (per-exec, per-page) where the release build cannot
//     afford the branch.
//   NYX_EXPECT(cond)  — soft contract: evaluates to the condition, and when
//     false bumps a global failure counter and emits a debug log instead of
//     aborting. Use to make defensive early-returns loud:
//       if (!NYX_EXPECT(ValidConn(conn))) return false;
//     The counters are surfaced in campaign stats (workdir stats.txt and the
//     CLI) so corrupted inputs show up in every run summary.
//
// Streaming extra context is supported on the fatal macros:
//   NYX_CHECK(off <= size) << "snapshot aux blob truncated at " << off;

#ifndef SRC_COMMON_CHECK_H_
#define SRC_COMMON_CHECK_H_

#include <cstdint>
#include <sstream>
#include <string>

// Marker for the nyx_lint `raw-metrics` rule: a static-duration integer
// atomic that deliberately bypasses the telemetry MetricRegistry
// (src/common/telemetry.h). Legitimate uses are bootstrap-ordering hazards
// (the registry itself, or code the registry depends on) and lazily-resolved
// configuration flags that are not counters. Everything else should be a
// registered Counter so it shows up in metrics.json.
#define NYX_RAW_METRIC_OK(reason)

namespace nyx {

// Tallies of contract failures. Hard failures abort, so the counter is only
// ever observable from the failure log line; soft failures accumulate across
// a campaign.
struct ContractCounters {
  uint64_t soft_failures = 0;
  uint64_t hard_failures = 0;
};
// Process-wide aggregate across all threads (workdir stats, CLI summaries).
ContractCounters GetContractCounters();
// Tally for the calling thread only. Campaigns run whole on one worker
// thread (harness/parallel.h), so the delta of this counter across a
// campaign is exact and deterministic no matter what other workers do.
ContractCounters GetThreadContractCounters();
void ResetContractCounters();

namespace internal {

// Counts a soft-contract failure and (at debug log level) reports it.
void NoteSoftFailure(const char* file, int line, const char* expr);

// Accumulates streamed context and aborts in its destructor, so the macro
// expansion can be used as a statement with trailing `<< ...`.
class ContractFailure {
 public:
  ContractFailure(const char* file, int line, const char* kind, const char* expr);
  // Takes ownership of a heap-allocated detail string (from the CHECK_OP
  // helpers); frees it after appending.
  ContractFailure(const char* file, int line, const char* kind, std::string* detail);
  [[noreturn]] ~ContractFailure();

  template <typename T>
  ContractFailure& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

// Returns nullptr when the predicate holds, else a heap-allocated message
// with both operand values. Operands are evaluated exactly once.
template <typename A, typename B, typename Pred>
std::string* CheckOpFailure(const A& a, const B& b, Pred pred, const char* expr) {
  if (pred(a, b)) {
    return nullptr;
  }
  std::ostringstream os;
  os << expr << " (with " << +a << " vs " << +b << ")";
  return new std::string(os.str());
}

}  // namespace internal
}  // namespace nyx

#define NYX_CHECK(cond)                                                          \
  switch (0)                                                                     \
  case 0:                                                                        \
  default:                                                                       \
    if (__builtin_expect(static_cast<bool>(cond), 1))                            \
      ;                                                                          \
    else                                                                         \
      ::nyx::internal::ContractFailure(__FILE__, __LINE__, "NYX_CHECK", #cond)

#define NYX_CHECK_OP_IMPL(kind, a, b, op)                                          \
  switch (0)                                                                       \
  case 0:                                                                          \
  default:                                                                         \
    if (std::string* nyx_check_detail = ::nyx::internal::CheckOpFailure(           \
            (a), (b), [](const auto& x, const auto& y) { return x op y; },         \
            #a " " #op " " #b);                                                    \
        nyx_check_detail == nullptr)                                               \
      ;                                                                            \
    else                                                                           \
      ::nyx::internal::ContractFailure(__FILE__, __LINE__, kind, nyx_check_detail)

#define NYX_CHECK_EQ(a, b) NYX_CHECK_OP_IMPL("NYX_CHECK_EQ", a, b, ==)
#define NYX_CHECK_NE(a, b) NYX_CHECK_OP_IMPL("NYX_CHECK_NE", a, b, !=)
#define NYX_CHECK_LT(a, b) NYX_CHECK_OP_IMPL("NYX_CHECK_LT", a, b, <)
#define NYX_CHECK_LE(a, b) NYX_CHECK_OP_IMPL("NYX_CHECK_LE", a, b, <=)
#define NYX_CHECK_GT(a, b) NYX_CHECK_OP_IMPL("NYX_CHECK_GT", a, b, >)
#define NYX_CHECK_GE(a, b) NYX_CHECK_OP_IMPL("NYX_CHECK_GE", a, b, >=)

#define NYX_UNREACHABLE() \
  ::nyx::internal::ContractFailure(__FILE__, __LINE__, "NYX_UNREACHABLE", "reached")

// Soft contract: an expression, usable inside conditions. False bumps the
// soft-failure counter (see GetContractCounters) but execution continues.
#define NYX_EXPECT(cond)                                 \
  (__builtin_expect(static_cast<bool>(cond), 1)          \
       ? true                                            \
       : (::nyx::internal::NoteSoftFailure(__FILE__, __LINE__, #cond), false))

#ifdef NDEBUG
// Compiled out, but the condition must still parse (and odr-used names stay
// referenced) so debug-only contracts cannot rot.
#define NYX_DCHECK(cond) NYX_CHECK(true || static_cast<bool>(cond))
#define NYX_DCHECK_EQ(a, b) NYX_DCHECK((a) == (b))
#define NYX_DCHECK_NE(a, b) NYX_DCHECK((a) != (b))
#define NYX_DCHECK_LT(a, b) NYX_DCHECK((a) < (b))
#define NYX_DCHECK_LE(a, b) NYX_DCHECK((a) <= (b))
#define NYX_DCHECK_GT(a, b) NYX_DCHECK((a) > (b))
#define NYX_DCHECK_GE(a, b) NYX_DCHECK((a) >= (b))
#else
#define NYX_DCHECK(cond) NYX_CHECK(cond)
#define NYX_DCHECK_EQ(a, b) NYX_CHECK_EQ(a, b)
#define NYX_DCHECK_NE(a, b) NYX_CHECK_NE(a, b)
#define NYX_DCHECK_LT(a, b) NYX_CHECK_LT(a, b)
#define NYX_DCHECK_LE(a, b) NYX_CHECK_LE(a, b)
#define NYX_DCHECK_GT(a, b) NYX_CHECK_GT(a, b)
#define NYX_DCHECK_GE(a, b) NYX_CHECK_GE(a, b)
#endif

#endif  // SRC_COMMON_CHECK_H_
