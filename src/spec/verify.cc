#include "src/spec/verify.h"

#include <sstream>

#include "src/spec/fault_plan.h"

namespace nyx {
namespace spec {

namespace {

// A malformed op can cascade (every later use of its would-be outputs is
// unbound); cap the report so a corrupt 4k-op program stays readable.
constexpr size_t kMaxDiags = 32;

// Serialize() layout: magic(4) version(1) op-count(2).
constexpr size_t kHeaderBytes = 7;

size_t OpWireSize(const Op& op) {
  if (op.is_snapshot()) {
    return 1;
  }
  return 1 + 1 + op.args.size() * 2 + 4 + op.data.size();
}

class DiagSink {
 public:
  explicit DiagSink(Result& out) : out_(out) {}

  void Add(Rule rule, size_t op_index, size_t byte_offset, std::string message) {
    if (out_.diags.size() < kMaxDiags) {
      out_.diags.push_back(Diag{rule, op_index, byte_offset, std::move(message)});
    }
  }

 private:
  Result& out_;
};

// Live-value state for the affine pass. Unlike program.cc's ValueTracker
// (which only answers "usable or not"), this distinguishes unbound ids,
// type mismatches and use-after-consume so each gets its own rule.
struct AffineTracker {
  struct Value {
    int edge_type;
    bool live;
  };
  std::vector<Value> values;

  enum class Use { kOk, kUnbound, kWrongType, kDead };

  Use Check(uint16_t id, int edge_type) const {
    if (id >= values.size()) {
      return Use::kUnbound;
    }
    if (values[id].edge_type != edge_type) {
      return Use::kWrongType;
    }
    return values[id].live ? Use::kOk : Use::kDead;
  }
};

void CheckArgs(const Op& op, const NodeTypeDef& node, AffineTracker& tracker, size_t op_index,
               size_t byte_offset, DiagSink& sink) {
  size_t arg = 0;
  auto check_use = [&](int edge, bool consume) {
    const uint16_t id = op.args[arg];
    switch (tracker.Check(id, edge)) {
      case AffineTracker::Use::kOk:
        if (consume) {
          tracker.values[id].live = false;
        }
        break;
      case AffineTracker::Use::kUnbound:
        sink.Add(Rule::kUnboundOperand, op_index, byte_offset,
                 "operand " + std::to_string(arg) + " references value " + std::to_string(id) +
                     " which no earlier op produced");
        break;
      case AffineTracker::Use::kWrongType:
        sink.Add(Rule::kTypeMismatch, op_index, byte_offset,
                 "operand " + std::to_string(arg) + " expects edge type " + std::to_string(edge) +
                     " but value " + std::to_string(id) + " has type " +
                     std::to_string(tracker.values[id].edge_type));
        break;
      case AffineTracker::Use::kDead:
        sink.Add(Rule::kUseAfterConsume, op_index, byte_offset,
                 std::string(consume ? "consumes" : "borrows") + " value " + std::to_string(id) +
                     " which an earlier op already consumed");
        break;
    }
    arg++;
  };
  for (int edge : node.borrows) {
    check_use(edge, false);
  }
  for (int edge : node.consumes) {
    check_use(edge, true);
  }
}

void CheckData(const Op& op, const NodeTypeDef& node, size_t op_index, size_t byte_offset,
               DiagSink& sink) {
  switch (node.data) {
    case DataKind::kNone:
      if (!op.data.empty()) {
        sink.Add(Rule::kDataOnDatalessNode, op_index, byte_offset,
                 "node carries no payload but op has " + std::to_string(op.data.size()) +
                     " data bytes");
      }
      return;
    case DataKind::kU8:
    case DataKind::kU16:
    case DataKind::kU32: {
      const size_t want = node.data == DataKind::kU8 ? 1 : node.data == DataKind::kU16 ? 2 : 4;
      if (op.data.size() != want) {
        sink.Add(Rule::kScalarDataWidth, op_index, byte_offset,
                 "scalar payload must be exactly " + std::to_string(want) + " bytes, got " +
                     std::to_string(op.data.size()));
      }
      return;
    }
    case DataKind::kBytes:
      if (op.data.size() > kMaxOpDataBytes) {
        sink.Add(Rule::kOversizeData, op_index, byte_offset,
                 "payload of " + std::to_string(op.data.size()) +
                     " bytes exceeds the wire limit of " + std::to_string(kMaxOpDataBytes));
      }
      return;
  }
}

// The structural pass shared by Verify and VerifyWire. `offsets` carries the
// wire offset of each op when verifying a decoded buffer; when null the
// offsets are computed as Serialize() would lay the ops out.
void VerifyOps(const Program& program, const Spec& spec, const std::vector<size_t>* offsets,
               Result& out) {
  DiagSink sink(out);
  if (program.ops.size() > kMaxProgramOps) {
    sink.Add(Rule::kTooManyOps, 0, 0,
             std::to_string(program.ops.size()) + " ops exceed the limit of " +
                 std::to_string(kMaxProgramOps));
  }

  AffineTracker tracker;
  bool snapshot_seen = false;
  size_t running_offset = kHeaderBytes;
  for (size_t i = 0; i < program.ops.size(); i++) {
    const Op& op = program.ops[i];
    const size_t off = offsets != nullptr ? (*offsets)[i] : running_offset;
    running_offset += OpWireSize(op);

    if (op.is_snapshot()) {
      if (snapshot_seen) {
        sink.Add(Rule::kDuplicateSnapshotMarker, i, off, "second snapshot marker");
      }
      snapshot_seen = true;
      const bool after_packet =
          i > 0 && !program.ops[i - 1].is_snapshot() &&
          program.ops[i - 1].node_type < spec.node_type_count() &&
          spec.node_type(program.ops[i - 1].node_type).semantic == NodeSemantic::kPacket;
      if (!after_packet) {
        sink.Add(Rule::kSnapshotPlacement, i, off,
                 "snapshot marker must directly follow a packet op");
      }
      continue;
    }

    if (op.node_type >= spec.node_type_count()) {
      sink.Add(Rule::kUnknownOpcode, i, off,
               "opcode " + std::to_string(op.node_type) + " not in spec (" +
                   std::to_string(spec.node_type_count()) + " node types)");
      continue;
    }
    const NodeTypeDef& node = spec.node_type(op.node_type);
    if (op.args.size() != node.borrows.size() + node.consumes.size()) {
      sink.Add(Rule::kArityMismatch, i, off,
               "'" + node.name + "' takes " +
                   std::to_string(node.borrows.size() + node.consumes.size()) +
                   " operands, got " + std::to_string(op.args.size()));
    } else {
      CheckArgs(op, node, tracker, i, off, sink);
    }
    CheckData(op, node, i, off, sink);
    // Fault plans get a semantic check on top of the width check: the kind
    // must exist and the burst count must be bounded, or NetEmu's replay
    // would have to guess (well-formedness is part of determinism here).
    if (node.semantic == NodeSemantic::kFault && op.data.size() == 4 &&
        !FaultPlan::Decode(op.data).has_value()) {
      sink.Add(Rule::kFaultPlan, i, off,
               "fault plan kind " + std::to_string(op.data[0]) + " / burst " +
                   std::to_string(op.data[1]) + " out of range (kinds < " +
                   std::to_string(kFaultKindCount) + ", burst 1.." +
                   std::to_string(kMaxFaultBurst) + ")");
    }
    // Produce outputs even after a diagnosed op so later value ids line up
    // with what the builder would have assigned.
    for (int edge : node.outputs) {
      tracker.values.push_back({edge, true});
    }
  }
}

}  // namespace

const char* RuleName(Rule rule) {
  switch (rule) {
    case Rule::kUnknownOpcode: return "unknown-opcode";
    case Rule::kArityMismatch: return "arity-mismatch";
    case Rule::kUnboundOperand: return "unbound-operand";
    case Rule::kTypeMismatch: return "type-mismatch";
    case Rule::kUseAfterConsume: return "use-after-consume";
    case Rule::kDataOnDatalessNode: return "data-on-dataless-node";
    case Rule::kScalarDataWidth: return "scalar-data-width";
    case Rule::kFaultPlan: return "fault-plan";
    case Rule::kOversizeData: return "oversize-data";
    case Rule::kTooManyOps: return "too-many-ops";
    case Rule::kDuplicateSnapshotMarker: return "duplicate-snapshot-marker";
    case Rule::kSnapshotPlacement: return "snapshot-placement";
    case Rule::kBadHeader: return "bad-header";
    case Rule::kTruncated: return "truncated";
    case Rule::kTrailingBytes: return "trailing-bytes";
  }
  return "unknown-rule";
}

bool Result::Has(Rule rule) const {
  for (const Diag& d : diags) {
    if (d.rule == rule) {
      return true;
    }
  }
  return false;
}

std::string Result::Summary() const {
  if (diags.empty()) {
    return "ok";
  }
  std::ostringstream os;
  for (size_t i = 0; i < diags.size(); i++) {
    if (i > 0) {
      os << "; ";
    }
    const Diag& d = diags[i];
    os << RuleName(d.rule) << " @ op " << d.op_index << " (byte " << d.byte_offset
       << "): " << d.message;
  }
  return os.str();
}

Result Verify(const Program& program, const Spec& spec) {
  Result out;
  VerifyOps(program, spec, nullptr, out);
  return out;
}

Result VerifyWire(const Bytes& wire, const Spec& spec) {
  Result out;
  DiagSink sink(out);
  if (wire.size() < kHeaderBytes) {
    sink.Add(Rule::kBadHeader, 0, 0,
             "buffer of " + std::to_string(wire.size()) + " bytes is smaller than the header");
    return out;
  }
  if (ReadLe32(wire, 0) != kWireMagic) {
    sink.Add(Rule::kBadHeader, 0, 0, "bad magic");
    return out;
  }
  if (wire[4] != kWireVersion) {
    sink.Add(Rule::kBadHeader, 0, 4, "unsupported version " + std::to_string(wire[4]));
    return out;
  }
  const uint16_t count = ReadLe16(wire, 5);

  // Lenient decode: each op's encoding must begin where the previous one
  // ended and fit in the buffer (boundary monotonicity); semantic rules are
  // left to the structural pass so they get their precise rule ids.
  Program decoded;
  std::vector<size_t> offsets;
  size_t off = kHeaderBytes;
  for (uint16_t i = 0; i < count; i++) {
    const size_t start = off;
    auto truncated = [&](const char* what) {
      sink.Add(Rule::kTruncated, i, start,
               std::string("op encoding runs past the end of the buffer (") + what + ")");
    };
    if (off >= wire.size()) {
      truncated("opcode");
      return out;
    }
    Op op;
    op.node_type = wire[off++];
    if (op.is_snapshot()) {
      decoded.ops.push_back(std::move(op));
      offsets.push_back(start);
      continue;
    }
    if (off >= wire.size()) {
      truncated("operand count");
      return out;
    }
    const uint8_t argc = wire[off++];
    if (off + 2 * static_cast<size_t>(argc) > wire.size()) {
      truncated("operands");
      return out;
    }
    for (uint8_t a = 0; a < argc; a++) {
      op.args.push_back(ReadLe16(wire, off));
      off += 2;
    }
    if (off + 4 > wire.size()) {
      truncated("data length");
      return out;
    }
    const uint32_t len = ReadLe32(wire, off);
    off += 4;
    if (len > kMaxOpDataBytes) {
      sink.Add(Rule::kOversizeData, i, start,
               "encoded data length " + std::to_string(len) + " exceeds the wire limit");
      return out;
    }
    if (off + len > wire.size()) {
      truncated("data bytes");
      return out;
    }
    op.data.assign(wire.begin() + static_cast<long>(off),
                   wire.begin() + static_cast<long>(off + len));
    off += len;
    decoded.ops.push_back(std::move(op));
    offsets.push_back(start);
  }
  if (off != wire.size()) {
    sink.Add(Rule::kTrailingBytes, count, off,
             std::to_string(wire.size() - off) + " bytes after the last op");
  }

  VerifyOps(decoded, spec, &offsets, out);
  return out;
}

}  // namespace spec
}  // namespace nyx
