// Static verifier for bytecode programs (the affine type system of paper
// section 3.5, made machine-checked).
//
// Program::Repair() makes mutation output executable; this layer is the
// opposite contract: it PROVES a program is well-formed and reports exactly
// why it is not. It runs at every trust boundary where bytecode enters the
// system — corpus files read from disk, PCAP seed conversion, builder output
// — and as a debug-build post-condition after every mutation, so a buggy
// mutator or hand-edited seed is rejected loudly instead of corrupting the
// campaign.
//
// Checked rules (each with a stable id, see Rule):
//   - opcode/operand well-formedness: known opcodes, exact arity, operand
//     ids bound to previously produced values of the right edge type;
//   - affine use: a consumed value is dead; borrowing or re-consuming it is
//     an error (kUseAfterConsume) — "every data node consumed at most once";
//   - data payload legality: no payload on DataKind::kNone nodes, exact
//     widths for scalar kinds, wire-format size limits;
//   - snapshot placement: at most one marker, positioned directly after a
//     packet-semantic op (the only position the placement policies emit);
//   - wire-format monotonicity (VerifyWire): op encodings must advance
//     monotonically through the buffer — truncated, overlapping or
//     trailing-garbage encodings are rejected with their byte offset.

#ifndef SRC_SPEC_VERIFY_H_
#define SRC_SPEC_VERIFY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/spec/program.h"
#include "src/spec/spec.h"

namespace nyx {
namespace spec {

enum class Rule : uint8_t {
  kUnknownOpcode,           // node_type not in the spec (and not the marker)
  kArityMismatch,           // operand count != borrows + consumes
  kUnboundOperand,          // operand id never produced by an earlier op
  kTypeMismatch,            // operand bound to a value of the wrong edge type
  kUseAfterConsume,         // affine violation: value already consumed
  kDataOnDatalessNode,      // payload bytes on a DataKind::kNone node
  kScalarDataWidth,         // kU8/kU16/kU32 payload with the wrong byte count
  kFaultPlan,               // kFault payload decodes to an ill-formed plan
  kOversizeData,            // payload exceeds the wire-format limit
  kTooManyOps,              // program exceeds kMaxProgramOps
  kDuplicateSnapshotMarker, // more than one snapshot marker
  kSnapshotPlacement,       // marker not directly after a packet-semantic op
  kBadHeader,               // wire: magic/version mismatch
  kTruncated,               // wire: op encoding runs past the end of buffer
  kTrailingBytes,           // wire: bytes left over after the last op
};

const char* RuleName(Rule rule);

struct Diag {
  Rule rule;
  size_t op_index = 0;     // op the diagnostic anchors to (0 for header issues)
  size_t byte_offset = 0;  // offset of that op in the serialized wire form
  std::string message;
};

struct Result {
  std::vector<Diag> diags;

  bool ok() const { return diags.empty(); }
  bool Has(Rule rule) const;
  // "rule-name @ op N (byte M): message; ..." for logs and check failures.
  std::string Summary() const;
};

// Verifies a structured program. Byte offsets in the diagnostics are the
// offsets the ops would have in Program::Serialize() output.
Result Verify(const Program& program, const Spec& spec);

// Verifies the wire form: header, per-op boundary monotonicity (truncation,
// trailing bytes), then all structural rules above on the decoded ops. This
// decodes more leniently than Program::Parse so that it can name the precise
// rule Parse would reject wholesale.
Result VerifyWire(const Bytes& wire, const Spec& spec);

}  // namespace spec
}  // namespace nyx

#endif  // SRC_SPEC_VERIFY_H_
