#include "src/spec/program.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/hash.h"
#include "src/spec/fault_plan.h"

namespace nyx {

namespace {
// Tracks live values and their edge types during validation/repair.
struct ValueTracker {
  struct Value {
    int edge_type;
    bool live;
  };
  std::vector<Value> values;

  void Produce(const NodeTypeDef& node) {
    for (int out : node.outputs) {
      values.push_back({out, true});
    }
  }

  // Most recently created live value of the given type, if any.
  std::optional<uint16_t> LatestLive(int edge_type) const {
    for (size_t i = values.size(); i-- > 0;) {
      if (values[i].live && values[i].edge_type == edge_type) {
        return static_cast<uint16_t>(i);
      }
    }
    return std::nullopt;
  }

  bool IsLive(uint16_t id, int edge_type) const {
    return id < values.size() && values[id].live && values[id].edge_type == edge_type;
  }

  void Kill(uint16_t id) {
    // Call sites check IsLive() first, so an out-of-range id is a logic bug.
    NYX_DCHECK_LT(static_cast<size_t>(id), values.size());
    if (id < values.size()) {
      values[id].live = false;
    }
  }
};

}  // namespace

uint64_t Program::OpsHash(size_t end_op) const {
  uint64_t h = 0xcbf29ce484222325ull;
  const size_t end = std::min(end_op, ops.size());
  for (size_t i = 0; i < end; i++) {
    const Op& op = ops[i];
    h = Fnv1a64(&op.node_type, 1, h);
    const uint32_t nargs = static_cast<uint32_t>(op.args.size());
    h = Fnv1a64(&nargs, 4, h);
    for (uint16_t a : op.args) {
      h = Fnv1a64(&a, 2, h);
    }
    const uint32_t ndata = static_cast<uint32_t>(op.data.size());
    h = Fnv1a64(&ndata, 4, h);
    h = Fnv1a64(op.data.data(), op.data.size(), h);
  }
  return h;
}

Bytes Program::Serialize() const {
  Bytes out;
  PutLe32(out, kWireMagic);
  out.push_back(kWireVersion);
  PutLe16(out, static_cast<uint16_t>(ops.size()));
  for (const Op& op : ops) {
    out.push_back(op.node_type);
    if (op.is_snapshot()) {
      continue;
    }
    out.push_back(static_cast<uint8_t>(op.args.size()));
    for (uint16_t a : op.args) {
      PutLe16(out, a);
    }
    PutLe32(out, static_cast<uint32_t>(op.data.size()));
    Append(out, op.data);
  }
  return out;
}

std::optional<Program> Program::Parse(const Bytes& wire, const Spec& spec) {
  size_t off = 0;
  if (ReadLe32(wire, off) != kWireMagic) {
    return std::nullopt;
  }
  off += 4;
  if (off >= wire.size() || wire[off] != kWireVersion) {
    return std::nullopt;
  }
  off++;
  const uint16_t count = ReadLe16(wire, off);
  off += 2;
  if (count > kMaxProgramOps) {
    return std::nullopt;
  }
  Program prog;
  prog.ops.reserve(count);
  for (uint16_t i = 0; i < count; i++) {
    if (off >= wire.size()) {
      return std::nullopt;
    }
    Op op;
    op.node_type = wire[off++];
    if (op.node_type == kSnapshotOpcode) {
      prog.ops.push_back(std::move(op));
      continue;
    }
    if (op.node_type >= spec.node_type_count()) {
      return std::nullopt;
    }
    if (off >= wire.size()) {
      return std::nullopt;
    }
    const uint8_t argc = wire[off++];
    const NodeTypeDef& node = spec.node_type(op.node_type);
    if (argc != node.borrows.size() + node.consumes.size()) {
      return std::nullopt;
    }
    for (uint8_t a = 0; a < argc; a++) {
      if (off + 2 > wire.size()) {
        return std::nullopt;
      }
      op.args.push_back(ReadLe16(wire, off));
      off += 2;
    }
    const uint32_t len = ReadLe32(wire, off);
    off += 4;
    if (len > kMaxOpDataBytes || off + len > wire.size()) {
      return std::nullopt;
    }
    if (node.data == DataKind::kNone && len != 0) {
      return std::nullopt;
    }
    op.data.assign(wire.begin() + static_cast<long>(off),
                   wire.begin() + static_cast<long>(off + len));
    off += len;
    prog.ops.push_back(std::move(op));
  }
  if (off != wire.size()) {
    return std::nullopt;
  }
  return prog;
}

bool Program::Validate(const Spec& spec, std::string* error) const {
  ValueTracker tracker;
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) {
      *error = msg;
    }
    return false;
  };
  size_t snapshots = 0;
  for (size_t i = 0; i < ops.size(); i++) {
    const Op& op = ops[i];
    if (op.is_snapshot()) {
      if (++snapshots > 1) {
        return fail("more than one snapshot marker");
      }
      continue;
    }
    if (op.node_type >= spec.node_type_count()) {
      return fail("unknown node type");
    }
    const NodeTypeDef& node = spec.node_type(op.node_type);
    if (op.args.size() != node.borrows.size() + node.consumes.size()) {
      return fail("arity mismatch in op " + std::to_string(i));
    }
    size_t arg = 0;
    for (int edge : node.borrows) {
      if (!tracker.IsLive(op.args[arg], edge)) {
        return fail("op " + std::to_string(i) + " borrows dead/ill-typed value");
      }
      arg++;
    }
    for (int edge : node.consumes) {
      if (!tracker.IsLive(op.args[arg], edge)) {
        return fail("op " + std::to_string(i) + " consumes dead/ill-typed value");
      }
      tracker.Kill(op.args[arg]);
      arg++;
    }
    tracker.Produce(node);
  }
  return true;
}

void Program::Repair(const Spec& spec) {
  ValueTracker tracker;
  std::vector<Op> repaired;
  repaired.reserve(ops.size());
  bool seen_snapshot = false;
  for (Op& op : ops) {
    if (op.is_snapshot()) {
      if (!seen_snapshot) {
        seen_snapshot = true;
        repaired.push_back(std::move(op));
      }
      continue;
    }
    if (op.node_type >= spec.node_type_count()) {
      continue;
    }
    const NodeTypeDef& node = spec.node_type(op.node_type);
    op.args.resize(node.borrows.size() + node.consumes.size(), 0);
    bool ok = true;
    size_t arg = 0;
    for (int edge : node.borrows) {
      if (!tracker.IsLive(op.args[arg], edge)) {
        auto candidate = tracker.LatestLive(edge);
        if (!candidate.has_value()) {
          ok = false;
          break;
        }
        op.args[arg] = *candidate;
      }
      arg++;
    }
    if (ok) {
      for (int edge : node.consumes) {
        if (!tracker.IsLive(op.args[arg], edge)) {
          auto candidate = tracker.LatestLive(edge);
          if (!candidate.has_value()) {
            ok = false;
            break;
          }
          op.args[arg] = *candidate;
        }
        arg++;
      }
    }
    if (!ok) {
      continue;  // no live value of the required type: drop the op
    }
    // Scalar payloads have an exact wire width; havoc mutations and
    // hand-edited seeds may leave the wrong byte count, so normalize here
    // (zero-extend / truncate) to keep the verifier's post-condition.
    switch (node.data) {
      case DataKind::kU8:
        op.data.resize(1, 0);
        break;
      case DataKind::kU16:
        op.data.resize(2, 0);
        break;
      case DataKind::kU32:
        op.data.resize(4, 0);
        break;
      case DataKind::kNone:
        op.data.clear();
        break;
      case DataKind::kBytes:
        break;
    }
    // Fault payloads additionally carry semantic range rules (valid kind,
    // bounded burst); clamp them to the nearest well-formed plan.
    if (node.semantic == NodeSemantic::kFault) {
      op.data = FaultPlan::Sanitize(op.data).Encode();
    }
    arg = node.borrows.size();
    for (size_t c = 0; c < node.consumes.size(); c++) {
      tracker.Kill(op.args[arg + c]);
    }
    tracker.Produce(node);
    repaired.push_back(std::move(op));
  }
  ops = std::move(repaired);
}

std::vector<size_t> Program::PacketOpIndices(const Spec& spec) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < ops.size(); i++) {
    if (!ops[i].is_snapshot() && ops[i].node_type < spec.node_type_count() &&
        spec.node_type(ops[i].node_type).semantic == NodeSemantic::kPacket) {
      out.push_back(i);
    }
  }
  return out;
}

void Program::StripSnapshotMarkers() {
  ops.erase(std::remove_if(ops.begin(), ops.end(), [](const Op& op) { return op.is_snapshot(); }),
            ops.end());
}

void Program::InsertSnapshotAfterPacket(const Spec& spec, size_t packet_index) {
  StripSnapshotMarkers();
  const std::vector<size_t> packets = PacketOpIndices(spec);
  if (packets.empty()) {
    return;
  }
  const size_t clamped = packet_index < packets.size() ? packet_index : packets.size() - 1;
  Op marker;
  marker.node_type = kSnapshotOpcode;
  ops.insert(ops.begin() + static_cast<long>(packets[clamped]) + 1, std::move(marker));
}

std::optional<size_t> Program::SnapshotMarkerPos() const {
  for (size_t i = 0; i < ops.size(); i++) {
    if (ops[i].is_snapshot()) {
      return i;
    }
  }
  return std::nullopt;
}

size_t Program::TotalDataBytes() const {
  size_t n = 0;
  for (const Op& op : ops) {
    n += op.data.size();
  }
  return n;
}

}  // namespace nyx
