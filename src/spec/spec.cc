#include "src/spec/spec.h"

namespace nyx {

int Spec::AddEdgeType(std::string name) {
  edges_.push_back(EdgeTypeDef{std::move(name)});
  return static_cast<int>(edges_.size() - 1);
}

int Spec::AddNodeType(NodeTypeDef def) {
  nodes_.push_back(std::move(def));
  return static_cast<int>(nodes_.size() - 1);
}

std::optional<int> Spec::FindNodeType(const std::string& name) const {
  for (size_t i = 0; i < nodes_.size(); i++) {
    if (nodes_[i].name == name) {
      return static_cast<int>(i);
    }
  }
  return std::nullopt;
}

std::vector<int> Spec::NodesWithSemantic(NodeSemantic semantic) const {
  std::vector<int> out;
  for (size_t i = 0; i < nodes_.size(); i++) {
    if (nodes_[i].semantic == semantic) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

Spec Spec::GenericNetwork() {
  Spec s;
  const int e_con = s.AddEdgeType("conn");
  s.AddNodeType(NodeTypeDef{"connection", NodeSemantic::kConnection, {e_con}, {}, {},
                            DataKind::kNone});
  s.AddNodeType(
      NodeTypeDef{"pkt", NodeSemantic::kPacket, {}, {e_con}, {}, DataKind::kBytes});
  s.AddNodeType(
      NodeTypeDef{"fault", NodeSemantic::kFault, {}, {e_con}, {}, DataKind::kU32});
  return s;
}

Spec Spec::MultiConnection() {
  Spec s;
  const int e_con = s.AddEdgeType("conn");
  s.AddNodeType(NodeTypeDef{"connection", NodeSemantic::kConnection, {e_con}, {}, {},
                            DataKind::kNone});
  s.AddNodeType(
      NodeTypeDef{"pkt", NodeSemantic::kPacket, {}, {e_con}, {}, DataKind::kBytes});
  s.AddNodeType(
      NodeTypeDef{"close", NodeSemantic::kClose, {}, {}, {e_con}, DataKind::kNone});
  s.AddNodeType(
      NodeTypeDef{"fault", NodeSemantic::kFault, {}, {e_con}, {}, DataKind::kU32});
  return s;
}

}  // namespace nyx
