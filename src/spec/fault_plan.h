// Typed fault plans for the NodeSemantic::kFault opcode ("No Peer, no Cry",
// PAPERS.md). A fault node borrows a connection edge and queues one plan on
// that connection's socket; NetEmu consults the queue inside the libc-shaped
// calls and replays the failure deterministically. Plans travel as the op's
// 4-byte kU32 payload, so they mutate, serialize and verify exactly like any
// other scalar data — no side channel, no host randomness.
//
// Wire layout (little-endian, 4 bytes):
//   [0] kind   FaultKind
//   [1] count  burst length, 1..kMaxFaultBurst (how many calls the fault
//              fires on before the queue entry retires)
//   [2:3] arg  kind-specific parameter: byte cap for short reads/writes,
//              expiry in virtual milliseconds for timeouts, ignored otherwise

#ifndef SRC_SPEC_FAULT_PLAN_H_
#define SRC_SPEC_FAULT_PLAN_H_

#include <cstdint>
#include <optional>

#include "src/common/bytes.h"

namespace nyx {

enum class FaultKind : uint8_t {
  kShortRead,   // Recv returns at most `arg` bytes (min 1)
  kShortWrite,  // Send accepts at most `arg` bytes (min 1)
  kEagain,      // Recv/Send fail with kErrAgain despite readiness
  kIntr,        // Recv/Send/Accept fail with kErrIntr
  kConnReset,   // connection dies: kErrConnReset once, then EOF / kErrPipe
  kPeerClose,   // peer FIN mid-message: queued data stays readable, then EOF
  kTimeout,     // Recv/Poll/EpollWait/Connect expire with kErrTimedOut
};

inline constexpr size_t kFaultKindCount = 7;
inline constexpr uint8_t kMaxFaultBurst = 8;

inline const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kShortRead:  return "short-read";
    case FaultKind::kShortWrite: return "short-write";
    case FaultKind::kEagain:     return "eagain";
    case FaultKind::kIntr:       return "eintr";
    case FaultKind::kConnReset:  return "conn-reset";
    case FaultKind::kPeerClose:  return "peer-close";
    case FaultKind::kTimeout:    return "timeout";
  }
  return "?";
}

struct FaultPlan {
  FaultKind kind = FaultKind::kShortRead;
  uint8_t count = 1;
  uint16_t arg = 0;

  bool Valid() const {
    return static_cast<uint8_t>(kind) < kFaultKindCount && count >= 1 &&
           count <= kMaxFaultBurst;
  }

  Bytes Encode() const {
    return {static_cast<uint8_t>(kind), count, static_cast<uint8_t>(arg & 0xff),
            static_cast<uint8_t>(arg >> 8)};
  }

  // Strict decode: exactly 4 bytes and a well-formed plan, else nullopt.
  static std::optional<FaultPlan> Decode(const Bytes& data) {
    if (data.size() != 4) return std::nullopt;
    FaultPlan plan;
    plan.kind = static_cast<FaultKind>(data[0]);
    plan.count = data[1];
    plan.arg = static_cast<uint16_t>(data[2] | (data[3] << 8));
    if (!plan.Valid()) return std::nullopt;
    return plan;
  }

  // Clamping decode for Program::Repair: any 4 bytes (short payloads are
  // zero-extended by the caller) become the nearest valid plan, so mutated
  // programs always re-verify.
  static FaultPlan Sanitize(const Bytes& data) {
    FaultPlan plan;
    if (!data.empty()) plan.kind = static_cast<FaultKind>(data[0] % kFaultKindCount);
    if (data.size() > 1) plan.count = data[1];
    if (plan.count < 1) plan.count = 1;
    if (plan.count > kMaxFaultBurst) plan.count = kMaxFaultBurst;
    if (data.size() > 3) plan.arg = static_cast<uint16_t>(data[2] | (data[3] << 8));
    return plan;
  }
};

}  // namespace nyx

#endif  // SRC_SPEC_FAULT_PLAN_H_
