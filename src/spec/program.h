// Bytecode programs: the fuzzer's input representation.
//
// A Program is a sequence of ops over a Spec. The flat wire format is what
// lives in the corpus on disk; the structured form is what mutators and the
// execution engine work on. The snapshot marker op (kSnapshotOpcode) may be
// injected anywhere by the snapshot placement policy; it has no arguments.

#ifndef SRC_SPEC_PROGRAM_H_
#define SRC_SPEC_PROGRAM_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/spec/spec.h"

namespace nyx {

// Wire-format constants shared by the codec (program.cc) and the static
// verifier (spec/verify.cc).
inline constexpr uint32_t kWireMagic = 0x4e595842;  // "NYXB"
inline constexpr uint8_t kWireVersion = 1;
inline constexpr size_t kMaxProgramOps = 4096;
inline constexpr size_t kMaxOpDataBytes = 1 << 20;

struct Op {
  uint8_t node_type = 0;  // index into the spec, or kSnapshotOpcode
  std::vector<uint16_t> args;  // value ids: borrows first, then consumes
  Bytes data;

  bool is_snapshot() const { return node_type == kSnapshotOpcode; }
};

struct Program {
  std::vector<Op> ops;

  // Wire format round trip. Parse is defensive: any malformed input yields
  // nullopt rather than UB (the corpus may be hand-edited or synced from
  // other fuzzers).
  Bytes Serialize() const;
  static std::optional<Program> Parse(const Bytes& wire, const Spec& spec);

  // Incremental FNV-1a over ops [0, end_op) — allocation-free, for the
  // per-exec RNG seeding and snapshot prefix matching hot paths (a full
  // Serialize() per exec was a measured hot spot). Two programs whose op
  // sequences differ hash differently (op/arg/data lengths are folded in).
  uint64_t OpsHash(size_t end_op) const;

  // Affine type checking: every borrowed/consumed arg must reference an
  // existing, live value of the right edge type; consumed values die.
  bool Validate(const Spec& spec, std::string* error = nullptr) const;

  // Rewrites invalid arg references to the nearest valid live value (or
  // drops ops with no candidate), so mutation output is always executable.
  // Also strips duplicate snapshot markers (only the first is honoured).
  void Repair(const Spec& spec);

  // Indices of ops that deliver payload (semantic kPacket). The "number of
  // packets" the snapshot policies reason about.
  std::vector<size_t> PacketOpIndices(const Spec& spec) const;

  // Removes any snapshot marker ops.
  void StripSnapshotMarkers();
  // Inserts a snapshot marker directly after the packet with the given index
  // (position within PacketOpIndices order).
  void InsertSnapshotAfterPacket(const Spec& spec, size_t packet_index);
  std::optional<size_t> SnapshotMarkerPos() const;

  size_t TotalDataBytes() const;
};

}  // namespace nyx

#endif  // SRC_SPEC_PROGRAM_H_
