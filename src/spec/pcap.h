// PCAP seed import (paper sections 4.4 and 5.4).
//
// "Dumping network traffic is easy. As such, loading seed inputs adds
// tremendous value to fuzzing campaigns." We implement the classic libpcap
// file format (reader and writer, Ethernet/IPv4/TCP+UDP), per-direction TCP
// stream reassembly, and the AFLNET-style packet-boundary dissectors used to
// fragment a byte stream into logical protocol packets — "one of the more
// common packet boundary dissectors uses the CRLF newline sequence".
//
// ProgramFromPcap() glues it together: capture -> client->server payloads ->
// splitter -> Builder -> bytecode seed.

#ifndef SRC_SPEC_PCAP_H_
#define SRC_SPEC_PCAP_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/bytes.h"
#include "src/spec/program.h"
#include "src/spec/spec.h"

namespace nyx {

struct PcapPacket {
  uint32_t ts_sec = 0;
  uint32_t ts_usec = 0;
  Bytes frame;  // link-layer frame (Ethernet)
};

class PcapFile {
 public:
  static std::optional<PcapFile> Parse(const Bytes& raw);
  static Bytes Write(const std::vector<PcapPacket>& packets);

  const std::vector<PcapPacket>& packets() const { return packets_; }

 private:
  std::vector<PcapPacket> packets_;
};

// Decoded transport payload of one frame.
struct Flow {
  bool is_tcp = false;
  uint32_t src_ip = 0;
  uint32_t dst_ip = 0;
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint32_t seq = 0;  // TCP only
  Bytes payload;
};

// Parses Ethernet/IPv4/{TCP,UDP}; nullopt for anything else or malformed.
std::optional<Flow> DecodeFrame(const Bytes& frame);

// Builds a well-formed Ethernet/IPv4 frame (for tests and synthetic seeds).
Bytes BuildTcpFrame(uint32_t src_ip, uint32_t dst_ip, uint16_t src_port, uint16_t dst_port,
                    uint32_t seq, const Bytes& payload);
Bytes BuildUdpFrame(uint32_t src_ip, uint32_t dst_ip, uint16_t src_port, uint16_t dst_port,
                    const Bytes& payload);

// Reassembles one direction of a TCP conversation by sequence number,
// tolerating duplicates and out-of-order segments.
class StreamReassembler {
 public:
  void AddSegment(uint32_t seq, const Bytes& payload);
  Bytes Assemble() const;

 private:
  std::vector<std::pair<uint32_t, Bytes>> segments_;
};

// AFLNET-style protocol dissectors for fragmenting a stream into logical
// packets.
enum class SplitStrategy {
  kCrlf,             // line-based protocols: FTP, SMTP, SIP, RTSP, HTTP
  kLengthPrefixBe16, // 2-byte big-endian length header (e.g. DICOM-ish, TLS-ish)
  kLengthPrefixBe32, // 4-byte big-endian length header
  kSegment,          // one logical packet per TCP segment / UDP datagram
};

std::vector<Bytes> SplitStream(const Bytes& stream, SplitStrategy strategy);

// End-to-end conversion: extracts client->server traffic for `server_port`,
// fragments it, and emits a bytecode seed over `spec` (one connection, one
// pkt per fragment). UDP datagrams keep their natural boundaries regardless
// of strategy.
std::optional<Program> ProgramFromPcap(const Spec& spec, const Bytes& pcap_bytes,
                                       uint16_t server_port, SplitStrategy strategy);

}  // namespace nyx

#endif  // SRC_SPEC_PCAP_H_
