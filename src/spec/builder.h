// Seed builder (paper section 4.4, Listing 2).
//
// Nyx-Net's Python library creates one function per spec node; calling the
// functions records a graph of invocations whose build() serializes to flat
// bytecode. This is the C++ analogue:
//
//   Builder b(spec);
//   auto con = b.Connection();
//   b.Packet(con, "HTTP/1.1 200 OK");
//   Program seed = b.Build();

#ifndef SRC_SPEC_BUILDER_H_
#define SRC_SPEC_BUILDER_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/spec/program.h"
#include "src/spec/spec.h"

namespace nyx {

// A tracked value: remembers which call produced it, so later calls can
// reference it ("calls that use those tracking objects as input can track
// where the values they use were created").
struct ValueRef {
  uint16_t id = 0;
  int edge_type = -1;
};

class Builder {
 public:
  explicit Builder(const Spec& spec) : spec_(spec) {}

  // Generic node invocation by name. Returns the first output value (if the
  // node produces one). Invalid usage is recorded and surfaced by Build().
  std::optional<ValueRef> Node(const std::string& name, const std::vector<ValueRef>& args = {},
                               Bytes data = {});

  // Conveniences for the standard network specs.
  ValueRef Connection();
  void Packet(ValueRef conn, std::string_view payload);
  void Packet(ValueRef conn, Bytes payload);
  void Close(ValueRef conn);

  // Serializes the recorded call graph into a flat bytecode program. Returns
  // nullopt if any recorded call was invalid (unknown node, type error) or
  // the result fails static verification (spec/verify.h); error() then
  // carries the diagnostics.
  std::optional<Program> Build() const;

  const std::string& error() const { return error_; }

 private:
  const Spec& spec_;
  Program program_;
  uint16_t next_value_ = 0;
  // Also set by Build() (a const summary step), hence mutable.
  mutable std::string error_;
};

}  // namespace nyx

#endif  // SRC_SPEC_BUILDER_H_
