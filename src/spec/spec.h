// Specification engine: affine-typed opcode graphs (paper sections 2.2, 3.5).
//
// Nyx expresses interactive protocols as a set of opcodes ("nodes"). A node
// may produce typed values ("outputs", e.g. a connection handle), borrow
// values produced earlier, consume them (affine semantics — a closed
// connection cannot be used again), and carry a data payload. Listing 1:
//
//   d_bytes = s.data_vec("bytes", s.data_u8("u8"))
//   n_con   = s.node_type("connection", outputs=[e_con])
//   n_pkt   = s.node_type("pkt", borrows=[e_con], d_bytes)
//
// The Spec below is the C++ analogue. The fuzzer auto-generates the bytecode
// format, a bytecode VM and mutators from it (src/spec/program.h,
// src/fuzz/mutator.h).

#ifndef SRC_SPEC_SPEC_H_
#define SRC_SPEC_SPEC_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace nyx {

// How the execution engine interprets a node. kCustom nodes are handled by
// the target's own opcode handler.
enum class NodeSemantic : uint8_t {
  kConnection,  // establish a new attack-surface connection
  kPacket,      // deliver one packet on a borrowed connection
  kClose,       // orderly close (consumes the connection)
  kCustom,      // target-defined
  kFault,       // queue a deterministic fault plan on a borrowed connection
};

enum class DataKind : uint8_t {
  kNone,
  kBytes,  // length-prefixed byte vector
  kU8,
  kU16,
  kU32,
};

struct EdgeTypeDef {
  std::string name;
};

struct NodeTypeDef {
  std::string name;
  NodeSemantic semantic = NodeSemantic::kCustom;
  std::vector<int> outputs;   // edge type ids produced by this node
  std::vector<int> borrows;   // edge type ids borrowed (still usable after)
  std::vector<int> consumes;  // edge type ids consumed (affine: dead after)
  DataKind data = DataKind::kNone;
};

// The opcode id reserved for the snapshot marker the fuzzer injects "at
// arbitrary positions in the input bytecode" (section 4.3). It is not part
// of any spec.
inline constexpr uint8_t kSnapshotOpcode = 0xff;

class Spec {
 public:
  int AddEdgeType(std::string name);
  int AddNodeType(NodeTypeDef def);

  size_t edge_type_count() const { return edges_.size(); }
  size_t node_type_count() const { return nodes_.size(); }
  const EdgeTypeDef& edge_type(int id) const { return edges_[id]; }
  const NodeTypeDef& node_type(int id) const { return nodes_[id]; }
  std::optional<int> FindNodeType(const std::string& name) const;

  // Node type ids with a given semantic (used by mutators and policies).
  std::vector<int> NodesWithSemantic(NodeSemantic semantic) const;

  // The default specification used for network targets: "we usually hook the
  // first connection established via a given port and address" and deliver
  // raw packets to it.
  static Spec GenericNetwork();

  // A multi-connection variant (Listing 1): connection/pkt/close over an
  // explicit connection handle, as needed by e.g. the Firefox IPC target.
  static Spec MultiConnection();

 private:
  std::vector<EdgeTypeDef> edges_;
  std::vector<NodeTypeDef> nodes_;
};

}  // namespace nyx

#endif  // SRC_SPEC_SPEC_H_
