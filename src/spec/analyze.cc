#include "src/spec/analyze.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/spec/fault_plan.h"

namespace nyx {
namespace spec {
namespace {

// Kinds whose `arg` field netemu never reads (src/netemu: only kTimeout's
// expiry and kShortRead/kShortWrite's byte caps are consulted). Zeroing the
// arg for the rest is a semantics-preserving normalization.
bool FaultArgIgnored(FaultKind kind) {
  switch (kind) {
    case FaultKind::kEagain:
    case FaultKind::kIntr:
    case FaultKind::kConnReset:
    case FaultKind::kPeerClose:
      return true;
    case FaultKind::kShortRead:
    case FaultKind::kShortWrite:
    case FaultKind::kTimeout:
      return false;
  }
  return false;
}

bool KnownOpcode(const Op& op, const Spec& spec) {
  return !op.is_snapshot() && op.node_type < spec.node_type_count();
}

// Output value count of an op (markers and unknown opcodes produce none).
size_t OutputCount(const Op& op, const Spec& spec) {
  return KnownOpcode(op, spec) ? spec.node_type(op.node_type).outputs.size() : 0;
}

}  // namespace

const char* ConnStateName(ConnState state) {
  switch (state) {
    case ConnState::kFresh:  return "fresh";
    case ConnState::kUsed:   return "used";
    case ConnState::kClosed: return "closed";
    case ConnState::kReset:  return "reset";
  }
  return "?";
}

std::vector<size_t> Analysis::ProvablyDeadOps() const {
  std::vector<size_t> dead;
  for (size_t i = 0; i < ops.size(); i++) {
    if (ops[i].provably_dead) dead.push_back(i);
  }
  return dead;
}

std::vector<uint16_t> Analysis::LiveBefore(size_t op_index, int edge_type) const {
  std::vector<uint16_t> live;
  for (size_t v = 0; v < values.size(); v++) {
    const ValueInfo& info = values[v];
    if (info.edge_type != edge_type) continue;
    if (info.def_op >= op_index) continue;
    if (info.consumed_by.has_value() && *info.consumed_by < op_index) continue;
    live.push_back(static_cast<uint16_t>(v));
  }
  return live;
}

Analysis Analyze(const Program& program, const Spec& spec) {
  Analysis a;
  a.ops.resize(program.ops.size());

  for (size_t i = 0; i < program.ops.size(); i++) {
    const Op& op = program.ops[i];
    OpFacts& facts = a.ops[i];
    if (op.is_snapshot()) {
      facts.is_marker = true;
      continue;
    }
    if (!KnownOpcode(op, spec)) {
      // Unknown opcode: claim nothing — conservatively treat it as stepping
      // the target so nothing around it is ever called dead.
      facts.steps_target = true;
      continue;
    }
    const NodeTypeDef& node = spec.node_type(op.node_type);
    facts.steps_target = node.semantic != NodeSemantic::kFault;

    const size_t arity = node.borrows.size() + node.consumes.size();
    if (op.args.size() == arity) {
      for (size_t p = 0; p < op.args.size(); p++) {
        const uint16_t arg = op.args[p];
        if (arg >= a.values.size()) continue;  // dangling: nothing to bind
        ValueInfo& val = a.values[arg];
        val.uses.push_back(i);
        const bool consumes = p >= node.borrows.size();
        if (consumes && !val.consumed_by.has_value()) {
          val.consumed_by = i;
          if (node.semantic == NodeSemantic::kClose) {
            val.state = ConnState::kClosed;
          }
        }
        // Lattice transitions on borrowed values. kClosed is final; kReset
        // is only refined by an explicit close (handled above).
        if (!consumes && val.state != ConnState::kClosed) {
          if (node.semantic == NodeSemantic::kFault) {
            const std::optional<FaultPlan> plan = FaultPlan::Decode(op.data);
            if (plan.has_value() && (plan->kind == FaultKind::kConnReset ||
                                     plan->kind == FaultKind::kPeerClose)) {
              val.state = ConnState::kReset;
            }
          } else if (val.state == ConnState::kFresh) {
            val.state = ConnState::kUsed;
          }
        }
      }
    }
    for (size_t out = 0; out < node.outputs.size(); out++) {
      ValueInfo val;
      val.edge_type = node.outputs[out];
      val.def_op = i;
      a.values.push_back(val);
    }
  }

  // Index of the last op that steps the target; ops after it can only arm
  // netemu state that is never consulted again.
  size_t last_step = program.ops.size();  // sentinel: none
  for (size_t i = program.ops.size(); i-- > 0;) {
    if (a.ops[i].steps_target) {
      last_step = i;
      break;
    }
  }

  // First value id produced by each op, to test "all outputs unused".
  std::vector<size_t> first_output(program.ops.size(), 0);
  {
    size_t next = 0;
    for (size_t i = 0; i < program.ops.size(); i++) {
      first_output[i] = next;
      next += OutputCount(program.ops[i], spec);
    }
  }
  auto outputs_unused = [&](size_t i) {
    const size_t n = OutputCount(program.ops[i], spec);
    for (size_t v = first_output[i]; v < first_output[i] + n; v++) {
      if (!a.values[v].unused()) return false;
    }
    return true;
  };

  for (size_t i = 0; i < program.ops.size(); i++) {
    const Op& op = program.ops[i];
    OpFacts& facts = a.ops[i];
    if (facts.is_marker || !KnownOpcode(op, spec)) continue;
    const NodeTypeDef& node = spec.node_type(op.node_type);
    switch (node.semantic) {
      case NodeSemantic::kFault: {
        if (!outputs_unused(i)) break;
        // Dead iff the engine skips the plan (undecodable payload) or no
        // later op ever steps the target (the armed plan is never consulted).
        const bool undecodable = !FaultPlan::Decode(op.data).has_value();
        const bool trailing = last_step == program.ops.size() || i > last_step;
        if (undecodable || trailing) {
          facts.provably_dead = true;
          a.provably_dead++;
        } else {
          facts.trim_candidate = true;
          a.trim_candidates++;
        }
        break;
      }
      case NodeSemantic::kConnection:
        // A connection nothing ever touches is very likely removable, but
        // establishing it still steps the target: dynamic-oracle territory.
        if (outputs_unused(i)) {
          facts.trim_candidate = true;
          a.trim_candidates++;
        }
        break;
      case NodeSemantic::kClose: {
        // Closing a connection that already has a reset/peer-close armed is
        // likely redundant — but whether the reset actually fired depends on
        // the target's syscall pattern, so again only a candidate.
        bool reset_armed = false;
        for (size_t p = node.borrows.size(); p < op.args.size(); p++) {
          if (op.args[p] < a.values.size() &&
              a.values[op.args[p]].state == ConnState::kReset) {
            reset_armed = true;
          }
        }
        if (reset_armed) {
          facts.trim_candidate = true;
          a.trim_candidates++;
        }
        break;
      }
      case NodeSemantic::kPacket:
      case NodeSemantic::kCustom:
        break;
    }
  }
  return a;
}

std::vector<size_t> RemovalCone(const Analysis& analysis, const Program& program,
                                const Spec& spec, size_t op) {
  NYX_DCHECK(op < program.ops.size()) << "RemovalCone: op out of range";
  // first value id produced by each op (mirrors Analyze's layout).
  std::vector<size_t> first_output(program.ops.size(), 0);
  size_t next = 0;
  for (size_t i = 0; i < program.ops.size(); i++) {
    first_output[i] = next;
    next += OutputCount(program.ops[i], spec);
  }

  std::vector<bool> in_cone(program.ops.size(), false);
  std::vector<size_t> worklist = {op};
  in_cone[op] = true;
  while (!worklist.empty()) {
    const size_t cur = worklist.back();
    worklist.pop_back();
    const size_t n = OutputCount(program.ops[cur], spec);
    for (size_t v = first_output[cur]; v < first_output[cur] + n; v++) {
      for (size_t user : analysis.values[v].uses) {
        if (!in_cone[user]) {
          in_cone[user] = true;
          worklist.push_back(user);
        }
      }
    }
  }
  std::vector<size_t> cone;
  for (size_t i = 0; i < program.ops.size(); i++) {
    if (in_cone[i]) cone.push_back(i);
  }
  return cone;
}

std::optional<Program> RemoveOps(const Program& program, const Spec& spec,
                                 const std::vector<size_t>& remove) {
  std::vector<bool> removed(program.ops.size(), false);
  for (size_t i : remove) {
    if (i < removed.size()) removed[i] = true;
  }

  // Old value id -> new value id (nullopt once its producer is elided).
  constexpr uint16_t kElided = 0xffff;
  std::vector<uint16_t> remap;
  Program out;
  uint16_t next_new = 0;
  for (size_t i = 0; i < program.ops.size(); i++) {
    const Op& op = program.ops[i];
    const size_t outputs = OutputCount(op, spec);
    if (removed[i]) {
      remap.insert(remap.end(), outputs, kElided);
      continue;
    }
    Op kept = op;
    for (uint16_t& arg : kept.args) {
      if (arg >= remap.size()) continue;  // dangling in the input: keep as-is
      if (remap[arg] == kElided) return std::nullopt;  // not a union of cones
      arg = remap[arg];
    }
    for (size_t out = 0; out < outputs; out++) {
      remap.push_back(next_new++);
    }
    out.ops.push_back(std::move(kept));
  }
  return out;
}

Program Canonicalize(const Program& program, const Spec& spec) {
  Program p = program;
  p.StripSnapshotMarkers();

  // Elide provably-dead ops to fixpoint. One pass suffices for well-formed
  // programs (removing a dead fault never makes another op dead), but the
  // loop costs nothing and keeps the normal form a true fixpoint even for
  // adversarial inputs.
  for (;;) {
    const Analysis a = Analyze(p, spec);
    const std::vector<size_t> dead = a.ProvablyDeadOps();
    if (dead.empty()) break;
    std::optional<Program> next = RemoveOps(p, spec, dead);
    if (!next.has_value()) break;  // dead op's output in use — cannot happen
    p = std::move(*next);
  }

  // Normalize fault payloads: zero the arg for kinds netemu never reads it
  // for, so e.g. eintr{count=2, arg=7} and eintr{count=2, arg=0} — which are
  // byte-identical to the guest — share one normal form.
  for (Op& op : p.ops) {
    if (!KnownOpcode(op, spec)) continue;
    if (spec.node_type(op.node_type).semantic != NodeSemantic::kFault) continue;
    const std::optional<FaultPlan> plan = FaultPlan::Decode(op.data);
    if (plan.has_value() && plan->arg != 0 && FaultArgIgnored(plan->kind)) {
      FaultPlan normalized = *plan;
      normalized.arg = 0;
      op.data = normalized.Encode();
    }
  }
  return p;
}

uint64_t NormalHash(const Program& program, const Spec& spec) {
  const Program canon = Canonicalize(program, spec);
  return canon.OpsHash(canon.ops.size());
}

std::vector<uint16_t> LiveValuesAt(const Program& program, const Spec& spec, size_t op_index,
                                   int edge_type) {
  const Analysis a = Analyze(program, spec);
  return a.LiveBefore(std::min(op_index, a.ops.size()), edge_type);
}

}  // namespace spec
}  // namespace nyx
