#include "src/spec/pcap.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/spec/builder.h"
#include "src/spec/verify.h"

namespace nyx {

namespace {
constexpr uint32_t kPcapMagic = 0xa1b2c3d4;
constexpr uint16_t kVersionMajor = 2;
constexpr uint16_t kVersionMinor = 4;
constexpr uint32_t kLinkTypeEthernet = 1;
constexpr size_t kEthHeader = 14;
constexpr uint16_t kEtherTypeIpv4 = 0x0800;
constexpr uint8_t kProtoTcp = 6;
constexpr uint8_t kProtoUdp = 17;
constexpr size_t kMaxPackets = 65536;
}  // namespace

std::optional<PcapFile> PcapFile::Parse(const Bytes& raw) {
  if (raw.size() < 24 || ReadLe32(raw, 0) != kPcapMagic) {
    return std::nullopt;
  }
  PcapFile file;
  size_t off = 24;
  while (off + 16 <= raw.size()) {
    PcapPacket pkt;
    pkt.ts_sec = ReadLe32(raw, off);
    pkt.ts_usec = ReadLe32(raw, off + 4);
    const uint32_t incl_len = ReadLe32(raw, off + 8);
    off += 16;
    if (incl_len > 1 << 20 || off + incl_len > raw.size() ||
        file.packets_.size() >= kMaxPackets) {
      return std::nullopt;
    }
    pkt.frame.assign(raw.begin() + static_cast<long>(off),
                     raw.begin() + static_cast<long>(off + incl_len));
    off += incl_len;
    file.packets_.push_back(std::move(pkt));
  }
  if (off != raw.size()) {
    return std::nullopt;
  }
  return file;
}

Bytes PcapFile::Write(const std::vector<PcapPacket>& packets) {
  Bytes out;
  PutLe32(out, kPcapMagic);
  PutLe16(out, kVersionMajor);
  PutLe16(out, kVersionMinor);
  PutLe32(out, 0);  // thiszone
  PutLe32(out, 0);  // sigfigs
  PutLe32(out, 65535);
  PutLe32(out, kLinkTypeEthernet);
  for (const PcapPacket& pkt : packets) {
    PutLe32(out, pkt.ts_sec);
    PutLe32(out, pkt.ts_usec);
    PutLe32(out, static_cast<uint32_t>(pkt.frame.size()));
    PutLe32(out, static_cast<uint32_t>(pkt.frame.size()));
    Append(out, pkt.frame);
  }
  return out;
}

std::optional<Flow> DecodeFrame(const Bytes& frame) {
  if (frame.size() < kEthHeader + 20) {
    return std::nullopt;
  }
  if (ReadBe16(frame, 12) != kEtherTypeIpv4) {
    return std::nullopt;
  }
  const size_t ip_off = kEthHeader;
  const uint8_t vihl = frame[ip_off];
  if ((vihl >> 4) != 4) {
    return std::nullopt;
  }
  const size_t ihl = static_cast<size_t>(vihl & 0x0f) * 4;
  if (ihl < 20 || ip_off + ihl > frame.size()) {
    return std::nullopt;
  }
  const uint16_t total_len = ReadBe16(frame, ip_off + 2);
  if (total_len < ihl || ip_off + total_len > frame.size()) {
    return std::nullopt;
  }
  const uint8_t proto = frame[ip_off + 9];
  Flow flow;
  flow.src_ip = ReadBe32(frame, ip_off + 12);
  flow.dst_ip = ReadBe32(frame, ip_off + 16);
  const size_t l4_off = ip_off + ihl;
  if (proto == kProtoTcp) {
    if (l4_off + 20 > frame.size()) {
      return std::nullopt;
    }
    flow.is_tcp = true;
    flow.src_port = ReadBe16(frame, l4_off);
    flow.dst_port = ReadBe16(frame, l4_off + 2);
    flow.seq = ReadBe32(frame, l4_off + 4);
    const size_t data_off = static_cast<size_t>(frame[l4_off + 12] >> 4) * 4;
    if (data_off < 20 || l4_off + data_off > ip_off + total_len) {
      return std::nullopt;
    }
    flow.payload.assign(frame.begin() + static_cast<long>(l4_off + data_off),
                        frame.begin() + static_cast<long>(ip_off + total_len));
    return flow;
  }
  if (proto == kProtoUdp) {
    if (l4_off + 8 > frame.size()) {
      return std::nullopt;
    }
    flow.is_tcp = false;
    flow.src_port = ReadBe16(frame, l4_off);
    flow.dst_port = ReadBe16(frame, l4_off + 2);
    const uint16_t udp_len = ReadBe16(frame, l4_off + 4);
    if (udp_len < 8 || l4_off + udp_len > ip_off + total_len) {
      return std::nullopt;
    }
    flow.payload.assign(frame.begin() + static_cast<long>(l4_off + 8),
                        frame.begin() + static_cast<long>(l4_off + udp_len));
    return flow;
  }
  return std::nullopt;
}

namespace {

Bytes BuildIpv4Frame(uint32_t src_ip, uint32_t dst_ip, uint8_t proto, const Bytes& l4) {
  Bytes frame;
  // Ethernet: zero MACs, IPv4 ethertype.
  frame.assign(12, 0);
  PutBe16(frame, kEtherTypeIpv4);
  // IPv4 header (no options, zero checksum — parsers here don't verify it).
  frame.push_back(0x45);
  frame.push_back(0);
  PutBe16(frame, static_cast<uint16_t>(20 + l4.size()));
  PutBe16(frame, 0);      // id
  PutBe16(frame, 0x4000); // DF
  frame.push_back(64);    // ttl
  frame.push_back(proto);
  PutBe16(frame, 0);  // checksum
  PutBe32(frame, src_ip);
  PutBe32(frame, dst_ip);
  Append(frame, l4);
  return frame;
}

}  // namespace

Bytes BuildTcpFrame(uint32_t src_ip, uint32_t dst_ip, uint16_t src_port, uint16_t dst_port,
                    uint32_t seq, const Bytes& payload) {
  Bytes tcp;
  PutBe16(tcp, src_port);
  PutBe16(tcp, dst_port);
  PutBe32(tcp, seq);
  PutBe32(tcp, 0);        // ack
  tcp.push_back(0x50);    // data offset = 5 words
  tcp.push_back(0x18);    // PSH|ACK
  PutBe16(tcp, 65535);    // window
  PutBe16(tcp, 0);        // checksum
  PutBe16(tcp, 0);        // urgent
  Append(tcp, payload);
  return BuildIpv4Frame(src_ip, dst_ip, kProtoTcp, tcp);
}

Bytes BuildUdpFrame(uint32_t src_ip, uint32_t dst_ip, uint16_t src_port, uint16_t dst_port,
                    const Bytes& payload) {
  Bytes udp;
  PutBe16(udp, src_port);
  PutBe16(udp, dst_port);
  PutBe16(udp, static_cast<uint16_t>(8 + payload.size()));
  PutBe16(udp, 0);  // checksum
  Append(udp, payload);
  return BuildIpv4Frame(src_ip, dst_ip, kProtoUdp, udp);
}

void StreamReassembler::AddSegment(uint32_t seq, const Bytes& payload) {
  if (payload.empty()) {
    return;
  }
  // Drop exact duplicates (retransmissions).
  for (const auto& [s, p] : segments_) {
    if (s == seq && p == payload) {
      return;
    }
  }
  segments_.emplace_back(seq, payload);
}

Bytes StreamReassembler::Assemble() const {
  std::vector<std::pair<uint32_t, Bytes>> sorted = segments_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  Bytes out;
  uint32_t next_seq = sorted.empty() ? 0 : sorted.front().first;
  for (const auto& [seq, payload] : sorted) {
    if (seq == next_seq) {
      Append(out, payload);
      next_seq = seq + static_cast<uint32_t>(payload.size());
    } else if (seq < next_seq) {
      // Partial overlap (retransmission with extra data).
      const uint32_t overlap = next_seq - seq;
      if (overlap < payload.size()) {
        out.insert(out.end(), payload.begin() + overlap, payload.end());
        next_seq = seq + static_cast<uint32_t>(payload.size());
      }
    } else {
      // Gap: concatenate anyway (seeds need not be perfect).
      Append(out, payload);
      next_seq = seq + static_cast<uint32_t>(payload.size());
    }
  }
  return out;
}

std::vector<Bytes> SplitStream(const Bytes& stream, SplitStrategy strategy) {
  std::vector<Bytes> out;
  switch (strategy) {
    case SplitStrategy::kCrlf: {
      size_t start = 0;
      for (size_t i = 0; i + 1 < stream.size(); i++) {
        if (stream[i] == '\r' && stream[i + 1] == '\n') {
          out.emplace_back(stream.begin() + static_cast<long>(start),
                           stream.begin() + static_cast<long>(i + 2));
          start = i + 2;
          i++;
        }
      }
      if (start < stream.size()) {
        out.emplace_back(stream.begin() + static_cast<long>(start), stream.end());
      }
      break;
    }
    case SplitStrategy::kLengthPrefixBe16: {
      size_t off = 0;
      while (off + 2 <= stream.size()) {
        const size_t len = ReadBe16(stream, off);
        const size_t end = off + 2 + len;
        if (len == 0 || end > stream.size()) {
          break;
        }
        out.emplace_back(stream.begin() + static_cast<long>(off),
                         stream.begin() + static_cast<long>(end));
        off = end;
      }
      if (off < stream.size()) {
        out.emplace_back(stream.begin() + static_cast<long>(off), stream.end());
      }
      break;
    }
    case SplitStrategy::kLengthPrefixBe32: {
      size_t off = 0;
      while (off + 4 <= stream.size()) {
        const size_t len = ReadBe32(stream, off);
        const size_t end = off + 4 + len;
        if (len == 0 || len > stream.size() || end > stream.size()) {
          break;
        }
        out.emplace_back(stream.begin() + static_cast<long>(off),
                         stream.begin() + static_cast<long>(end));
        off = end;
      }
      if (off < stream.size()) {
        out.emplace_back(stream.begin() + static_cast<long>(off), stream.end());
      }
      break;
    }
    case SplitStrategy::kSegment:
      if (!stream.empty()) {
        out.push_back(stream);
      }
      break;
  }
  return out;
}

std::optional<Program> ProgramFromPcap(const Spec& spec, const Bytes& pcap_bytes,
                                       uint16_t server_port, SplitStrategy strategy) {
  auto file = PcapFile::Parse(pcap_bytes);
  if (!file.has_value()) {
    return std::nullopt;
  }

  StreamReassembler tcp_stream;
  std::vector<Bytes> tcp_segments;  // in capture order, for kSegment
  std::vector<Bytes> datagrams;
  bool saw_tcp = false;
  for (const PcapPacket& pkt : file->packets()) {
    auto flow = DecodeFrame(pkt.frame);
    if (!flow.has_value() || flow->dst_port != server_port || flow->payload.empty()) {
      continue;
    }
    if (flow->is_tcp) {
      saw_tcp = true;
      tcp_stream.AddSegment(flow->seq, flow->payload);
      tcp_segments.push_back(flow->payload);
    } else {
      datagrams.push_back(flow->payload);
    }
  }

  std::vector<Bytes> packets;
  if (saw_tcp) {
    if (strategy == SplitStrategy::kSegment) {
      packets = std::move(tcp_segments);
    } else {
      packets = SplitStream(tcp_stream.Assemble(), strategy);
    }
  }
  for (Bytes& d : datagrams) {
    packets.push_back(std::move(d));
  }
  if (packets.empty()) {
    return std::nullopt;
  }

  Builder builder(spec);
  ValueRef conn = builder.Connection();
  for (Bytes& p : packets) {
    // A reassembled stream chunk can exceed the per-op wire limit even
    // though every captured frame was within it; split rather than emit a
    // program the verifier (and a serialize round trip) would reject.
    for (size_t off = 0; off < p.size(); off += kMaxOpDataBytes) {
      const size_t n = std::min(kMaxOpDataBytes, p.size() - off);
      builder.Packet(conn, Bytes(p.begin() + static_cast<long>(off),
                                 p.begin() + static_cast<long>(off + n)));
    }
  }
  auto program = builder.Build();
  // Build() verified already; a failure here means the importer itself is
  // emitting ill-formed bytecode.
  NYX_DCHECK(!program.has_value() || spec::Verify(*program, spec).ok());
  return program;
}

}  // namespace nyx
