#include "src/spec/builder.h"

#include "src/spec/verify.h"

namespace nyx {

std::optional<ValueRef> Builder::Node(const std::string& name, const std::vector<ValueRef>& args,
                                      Bytes data) {
  auto node_id = spec_.FindNodeType(name);
  if (!node_id.has_value()) {
    error_ = "unknown node type: " + name;
    return std::nullopt;
  }
  const NodeTypeDef& node = spec_.node_type(*node_id);
  if (args.size() != node.borrows.size() + node.consumes.size()) {
    error_ = "arity mismatch for node: " + name;
    return std::nullopt;
  }
  Op op;
  op.node_type = static_cast<uint8_t>(*node_id);
  for (const ValueRef& arg : args) {
    op.args.push_back(arg.id);
  }
  op.data = std::move(data);
  program_.ops.push_back(std::move(op));

  std::optional<ValueRef> first_output;
  for (int edge : node.outputs) {
    ValueRef ref{next_value_++, edge};
    if (!first_output.has_value()) {
      first_output = ref;
    }
  }
  return first_output.has_value() ? first_output : std::optional<ValueRef>(ValueRef{});
}

ValueRef Builder::Connection() {
  auto ref = Node("connection");
  return ref.value_or(ValueRef{});
}

void Builder::Packet(ValueRef conn, std::string_view payload) {
  Packet(conn, ToBytes(payload));
}

void Builder::Packet(ValueRef conn, Bytes payload) {
  Node("pkt", {conn}, std::move(payload));
}

void Builder::Close(ValueRef conn) { Node("close", {conn}); }

std::optional<Program> Builder::Build() const {
  if (!error_.empty()) {
    return std::nullopt;
  }
  std::string validation_error;
  if (!program_.Validate(spec_, &validation_error)) {
    error_ = validation_error;
    return std::nullopt;
  }
  // Static verification catches what the builder API cannot prevent, e.g.
  // oversize payloads fed through Packet() that would not survive a wire
  // round trip.
  const spec::Result verdict = spec::Verify(program_, spec_);
  if (!verdict.ok()) {
    error_ = verdict.Summary();
    return std::nullopt;
  }
  return program_;
}

}  // namespace nyx
