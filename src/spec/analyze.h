// Static dataflow analysis over bytecode programs (DESIGN.md §14).
//
// Program::Validate answers "can this run"; this layer answers "which parts
// of it matter". A forward pass over the op sequence builds def/use chains on
// the implicit value ids (values are produced densely in op order, so value
// id == index into the analysis table), per-value liveness intervals, and a
// per-connection state lattice {fresh, used, closed, reset} that folds in
// kClose consumption and queued kFault plan effects.
//
// On top of the dataflow facts sit three rewrites, all verified dynamically
// by the NYX_ANALYZE_CHECK differential oracle (src/fuzz/engine.h):
//
//  * dead-op detection — the *provable* set is deliberately narrow. In this
//    engine every kConnection/kPacket/kClose/kCustom op steps the target
//    (GuardedStep), which is always observable through coverage; only kFault
//    arms netemu state without stepping. A kFault op is provably dead when
//    its plan cannot decode (the engine skips it entirely) or when no later
//    op steps the target (the armed plan is never consulted — its only
//    residue is netemu fault-queue aux state, which no guest-visible read
//    can observe). Everything broader the ISSUE-level intuition suggests
//    (packets on never-again-used connections, plans shadowed by an armed
//    reset, unused connection outputs) is *speculative*: classified here as
//    trim candidates and validated per-removal by the trim oracle
//    (src/fuzz/trim.h) instead of being claimed statically.
//  * canonicalization — markers stripped, provably-dead ops elided, value
//    ids renumbered densely over the survivors, and fault-plan args zeroed
//    for the kinds whose arg netemu never reads (eagain/eintr/conn-reset/
//    peer-close, see spec/fault_plan.h). Canonicalize is idempotent and
//    preserves Validate-cleanliness.
//  * NormalHash — the ops hash of the canonical form: a *semantic* dedup
//    key used by Corpus::Add and the frontier import path alongside the
//    syntactic wire hash, so dead-op-padded or ignored-arg-twiddled
//    duplicates stop bloating stateful corpora (StateAFL's observation).
//
// LiveValuesAt is the mutator's arg-binding map: inserted ops pick a random
// *live* value of the required edge type at the insertion point, instead of
// inserting zeros and hoping Repair's latest-live rebinding lands somewhere
// interesting.

#ifndef SRC_SPEC_ANALYZE_H_
#define SRC_SPEC_ANALYZE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/spec/program.h"
#include "src/spec/spec.h"

namespace nyx {
namespace spec {

// Connection-state lattice, tracked per produced value. Transitions are
// monotone down the program except kUsed (borrows keep a connection usable):
//   kFresh --packet/custom borrow--> kUsed
//   any    --kClose consume-------> kClosed   (affine: no further uses)
//   any    --queued reset-kind fault--> kReset (a conn-reset/peer-close plan
//                                       is armed; whether and when it fires
//                                       depends on the target's syscalls)
enum class ConnState : uint8_t {
  kFresh,
  kUsed,
  kClosed,
  kReset,
};

const char* ConnStateName(ConnState state);

// Def/use record for one produced value. Value ids are implicit production
// indices, so `values[id]` is the record for value id `id`.
struct ValueInfo {
  int edge_type = -1;
  size_t def_op = 0;                     // op index that produced it
  std::vector<size_t> uses;              // ops that borrow or consume it
  std::optional<size_t> consumed_by;     // op that consumed it, if any
  ConnState state = ConnState::kFresh;   // lattice state at end of program

  bool unused() const { return uses.empty(); }
  // Liveness interval end: the last op that touches the value (def_op when
  // it is never used).
  size_t last_use() const { return uses.empty() ? def_op : uses.back(); }
};

// Per-op classification.
struct OpFacts {
  bool is_marker = false;
  // The engine runs the target for this op (GuardedStep): coverage and guest
  // state may change, so the op is never statically removable.
  bool steps_target = false;
  // Elidable with no guest-observable effect (see header comment). Only
  // kFault ops ever qualify.
  bool provably_dead = false;
  // Worth probing early during trimming: likely removable, but the claim
  // needs the dynamic oracle (fault ops, unused-connection cones, closes on
  // reset-armed connections).
  bool trim_candidate = false;
};

struct Analysis {
  std::vector<ValueInfo> values;  // indexed by value id
  std::vector<OpFacts> ops;       // indexed by op index
  size_t provably_dead = 0;
  size_t trim_candidates = 0;

  // Op indices flagged provably dead, in program order.
  std::vector<size_t> ProvablyDeadOps() const;

  // Value ids of `edge_type` live immediately before op `op_index`
  // (`op_index == ops.size()` means end of program).
  std::vector<uint16_t> LiveBefore(size_t op_index, int edge_type) const;
};

// Forward dataflow pass. Tolerates ill-formed programs (unknown opcodes,
// dangling args are skipped), matching the engine's defensiveness — the
// facts are only claimed for the ops the analysis could bind.
Analysis Analyze(const Program& program, const Spec& spec);

// The removal cone of `op`: the op itself plus every op transitively using
// one of its output values. Removing a whole cone keeps the program
// Validate-clean without Repair's semantics-changing rebinding. Returned in
// ascending op order.
std::vector<size_t> RemovalCone(const Analysis& analysis, const Program& program,
                                const Spec& spec, size_t op);

// Elides the ops in `remove` (any order, duplicates fine) and densely
// renumbers the survivors' args. Returns nullopt when a kept op references
// an elided op's output — the remove set was not a union of cones.
std::optional<Program> RemoveOps(const Program& program, const Spec& spec,
                                 const std::vector<size_t>& remove);

// Normal form: markers stripped, provably-dead ops elided, dense value ids,
// ignored fault-plan args zeroed. Idempotent: Canonicalize(Canonicalize(p))
// == Canonicalize(p), and a Validate-clean input stays Validate-clean.
Program Canonicalize(const Program& program, const Spec& spec);

// Semantic dedup key: OpsHash of the canonical form. Two programs with equal
// NormalHash are guest-equivalent modulo the per-exec RNG seeding (which is
// keyed on the syntactic hash; NYX_ANALYZE_CHECK pins it when verifying).
uint64_t NormalHash(const Program& program, const Spec& spec);

// Live values of `edge_type` immediately before position `op_index` — the
// mutator's insertion-point binding map. Convenience wrapper over Analyze
// for one-shot queries.
std::vector<uint16_t> LiveValuesAt(const Program& program, const Spec& spec, size_t op_index,
                                   int edge_type);

}  // namespace spec
}  // namespace nyx

#endif  // SRC_SPEC_ANALYZE_H_
