#include "src/mario/level.h"

namespace nyx {
namespace {

// Deterministic procedural layout per level, with hand-placed signature
// obstacles. Physics limits (see engine.cc): a running jump clears 4 tiles
// of gap and 3 tiles of wall; anything beyond needs stair-stepping walls or
// the wall-jump glitch.
std::vector<LevelDef> BuildLevels() {
  std::vector<LevelDef> levels;
  for (int world = 1; world <= 8; world++) {
    for (int stage = 1; stage <= 4; stage++) {
      LevelDef lv;
      lv.name = std::to_string(world) + "-" + std::to_string(stage);
      lv.length = static_cast<uint16_t>(120 + world * 25 + stage * 10);

      // Pits: count and width grow with the world number.
      const int pit_count = 1 + (world + stage) / 3;
      for (int i = 0; i < pit_count; i++) {
        Pit p;
        p.x = static_cast<uint16_t>(30 + i * (lv.length - 50) / pit_count +
                                    (world * 7 + stage * 3 + i * 11) % 13);
        p.width = static_cast<uint16_t>(2 + (world + i) % 3);
        lv.pits.push_back(p);
      }

      // Walls: short hurdles, taller in later worlds (max 3 = jumpable).
      const int wall_count = (world + 1) / 2 + stage / 2;
      for (int i = 0; i < wall_count; i++) {
        Wall w;
        w.x = static_cast<uint16_t>(45 + i * (lv.length - 70) / (wall_count + 1) +
                                    (world * 5 + i * 17) % 11);
        w.height = static_cast<uint16_t>(1 + (world + stage + i) % 3);
        lv.walls.push_back(w);
      }

      // Sanitize: perfect play must be able to solve every level (2-1 gets
      // its impossible pit below). Walls may not sit within 8 tiles of a
      // pit (a landing Mario needs runway to jump again), and obstacles
      // keep 10 tiles of spacing.
      auto near_pit = [&lv](uint16_t x) {
        for (const Pit& p : lv.pits) {
          if (x + 8 >= p.x && x <= p.x + p.width + 8) {
            return true;
          }
        }
        return false;
      };
      std::vector<Wall> kept;
      for (const Wall& w : lv.walls) {
        bool ok = !near_pit(w.x);
        for (const Wall& other : kept) {
          if (w.x < other.x + 10 && other.x < w.x + 10) {
            ok = false;
          }
        }
        if (ok) {
          kept.push_back(w);
        }
      }
      lv.walls = std::move(kept);
      levels.push_back(std::move(lv));
    }
  }

  // Signature obstacle of 2-1: a 7-tile pit (unjumpable) whose far edge is a
  // tall wall. The only way across is to jump into the pit, slide along the
  // far wall and wall-jump out — the glitch Nyx-Net triggers "somewhat
  // regularly" while IJON never found it.
  LevelDef& l21 = levels[4 * 1 + 0];  // world 2, stage 1
  l21.pits.clear();
  l21.walls.clear();
  Pit big;
  big.x = 80;
  big.width = 7;
  l21.pits.push_back(big);
  Wall far_wall;
  far_wall.x = 87;  // first ground column after the pit
  far_wall.height = 2;
  l21.walls.push_back(far_wall);

  // 6-2 and 8-1 are the marathon levels (the slowest rows of Table 4).
  levels[4 * 5 + 1].length = 560;  // 6-2
  levels[4 * 7 + 0].length = 640;  // 8-1
  return levels;
}

}  // namespace

const std::vector<LevelDef>& AllLevels() {
  static const std::vector<LevelDef> kLevels = BuildLevels();
  return kLevels;
}

const LevelDef* FindLevel(const std::string& name) {
  for (const LevelDef& lv : AllLevels()) {
    if (lv.name == name) {
      return &lv;
    }
  }
  return nullptr;
}

}  // namespace nyx
