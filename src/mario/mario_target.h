// Fuzz-target adapter for Super Mario (paper section 5.3).
//
// The game is fuzzed as a message-based target: each packet delivers a batch
// of button-frame bytes, consumed through the same emulated-socket path as
// the network servers. The IJON-style feedback (maximum x position reached)
// is exported through GuestContext::IjonMax slot 0; a campaign "solves" the
// level when the feedback reaches MarioEngine::goal_x(). Incremental
// snapshots between packets let the fuzzer replay only the frames after the
// hard jump (Figures 2 and 4).

#ifndef SRC_MARIO_MARIO_TARGET_H_
#define SRC_MARIO_MARIO_TARGET_H_

#include <memory>
#include <string>

#include "src/fuzz/guest.h"
#include "src/mario/engine.h"
#include "src/spec/program.h"

namespace nyx {

// Virtual cost per simulated frame. IJON's AFL harness runs the game binary
// under a fork server with pipe-fed input; Nyx-Net's emulated delivery makes
// each frame ~4x cheaper — the source of the Nyx-Net-none speedup in
// Table 4.
inline constexpr uint64_t kMarioFrameNsEmulated = 18'000;
inline constexpr uint64_t kMarioFrameNsForkServer = 72'000;

std::unique_ptr<Target> MakeMarioTarget(const std::string& level_name);

// A seed that walks/runs right with periodic jumps — the standard starting
// corpus for the experiment. `frames_per_packet` controls the input's packet
// granularity (and with it where snapshots can go).
Program MarioSeed(const Spec& spec, const LevelDef& level, size_t frames_per_packet);

// The optimal "speedrun" input: run right, jumping exactly at obstacle
// edges. Returns an empty program for levels that cannot be completed
// without the wall-jump glitch (2-1). Used by the faster-than-light
// comparison in the bench.
Program MarioSpeedrun(const Spec& spec, const LevelDef& level, size_t frames_per_packet,
                      uint32_t* out_frames);

}  // namespace nyx

#endif  // SRC_MARIO_MARIO_TARGET_H_
