// Super Mario platformer physics.
//
// A deliberately small but honest platformer: gravity, running jumps whose
// horizontal reach depends on held buttons, solid walls, pits that kill,
// and a one-frame wall-jump glitch. All simulation state is POD so it can
// live in guest memory and be snapshot-managed — which is exactly what lets
// Nyx-Net place incremental snapshots "right in front of the difficult
// jump" (Figure 2).

#ifndef SRC_MARIO_ENGINE_H_
#define SRC_MARIO_ENGINE_H_

#include <cstdint>

#include "src/mario/level.h"

namespace nyx {

// Button bitmask, one byte per frame.
inline constexpr uint8_t kBtnRight = 1 << 0;
inline constexpr uint8_t kBtnLeft = 1 << 1;
inline constexpr uint8_t kBtnJump = 1 << 2;
inline constexpr uint8_t kBtnRun = 1 << 3;

// Fixed-point: 16 subpixels per tile.
inline constexpr int32_t kSub = 16;

// POD simulation state (guest-memory resident).
struct MarioState {
  int32_t x = 2 * kSub;  // start two tiles in
  int32_t y = 0;         // 0 = ground level; positive = up
  int32_t vy = 0;
  uint8_t on_ground = 1;
  uint8_t touching_wall = 0;
  uint8_t jump_held = 0;  // edge detection for the jump button
  uint8_t dead = 0;
  uint8_t won = 0;
  uint32_t frame = 0;
  int32_t max_x = 2 * kSub;
  uint32_t wall_jumps = 0;
};

class MarioEngine {
 public:
  explicit MarioEngine(const LevelDef& level) : level_(level) {}

  // Advances one frame with the given button byte. No-op once dead or won.
  void Tick(MarioState& st, uint8_t buttons) const;

  const LevelDef& level() const { return level_; }
  int32_t goal_x() const { return static_cast<int32_t>(level_.length) * kSub; }

 private:
  bool SolidAt(int32_t tile_x, int32_t y_sub) const;

  const LevelDef& level_;
};

}  // namespace nyx

#endif  // SRC_MARIO_ENGINE_H_
