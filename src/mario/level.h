// Super Mario Bros. level geometry (paper section 5.3, Table 4).
//
// Levels are described by their length, pits (gaps in the ground) and walls
// (solid columns). The 32 levels 1-1 … 8-4 roughly scale in difficulty the
// way the originals do: later worlds have longer levels, wider pits and
// taller walls. Level 2-1 contains the signature wide pit whose far side
// can only be scaled with the wall-jump glitch — "the authors of IJON
// believed 2-1 might be impossible to solve".

#ifndef SRC_MARIO_LEVEL_H_
#define SRC_MARIO_LEVEL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace nyx {

struct Pit {
  uint16_t x = 0;      // first missing ground column
  uint16_t width = 0;  // number of missing columns
};

struct Wall {
  uint16_t x = 0;       // column
  uint16_t height = 0;  // solid from ground level upward, in tiles
};

struct LevelDef {
  std::string name;     // "1-1" … "8-4"
  uint16_t length = 0;  // goal column
  std::vector<Pit> pits;
  std::vector<Wall> walls;

  bool IsPit(uint16_t col) const {
    for (const Pit& p : pits) {
      if (col >= p.x && col < p.x + p.width) {
        return true;
      }
    }
    return false;
  }

  // Height of the solid wall at `col` (0 = no wall).
  uint16_t WallHeight(uint16_t col) const {
    for (const Wall& w : walls) {
      if (w.x == col) {
        return w.height;
      }
    }
    return 0;
  }
};

// All 32 levels, in Table 4 order.
const std::vector<LevelDef>& AllLevels();
const LevelDef* FindLevel(const std::string& name);

}  // namespace nyx

#endif  // SRC_MARIO_LEVEL_H_
