#include "src/mario/engine.h"

namespace nyx {
namespace {

// Physics constants (per frame, in subpixels). A running jump launches with
// vy = +10 under gravity 1, giving 20 airborne frames; at run speed 4 that
// covers ~5 tiles of distance and clears 3-tile walls (apex ~3.4 tiles).
constexpr int32_t kWalkSpeed = 2;
constexpr int32_t kRunSpeed = 4;
constexpr int32_t kJumpVelocity = 10;
constexpr int32_t kGravity = 1;
constexpr int32_t kTerminalVelocity = -12;
constexpr int32_t kKillPlane = -16 * kSub;

}  // namespace

bool MarioEngine::SolidAt(int32_t tile_x, int32_t y_sub) const {
  if (tile_x < 0) {
    return true;  // left edge of the world
  }
  const uint16_t col = static_cast<uint16_t>(tile_x);
  const uint16_t wall = level_.WallHeight(col);
  if (wall > 0 && y_sub < static_cast<int32_t>(wall) * kSub) {
    return true;
  }
  // The ground body itself: below surface level every non-pit column is
  // solid — pits have vertical side walls, which is what makes wall-jump
  // escapes from pits possible at all.
  if (y_sub < 0 && !level_.IsPit(col)) {
    return true;
  }
  return false;
}

void MarioEngine::Tick(MarioState& st, uint8_t buttons) const {
  if (st.dead || st.won) {
    return;
  }
  st.frame++;

  // Horizontal intent.
  int32_t vx = 0;
  if (buttons & kBtnRight) {
    vx = (buttons & kBtnRun) ? kRunSpeed : kWalkSpeed;
  } else if (buttons & kBtnLeft) {
    vx = (buttons & kBtnRun) ? -kRunSpeed : -kWalkSpeed;
  }

  // Jumping: on the ground, a fresh jump press launches. Falling next to a
  // wall, a fresh press on an even frame triggers the wall-jump glitch —
  // the one-frame window that makes it rare.
  const bool jump_pressed = (buttons & kBtnJump) != 0 && !st.jump_held;
  st.jump_held = (buttons & kBtnJump) != 0;
  if (jump_pressed) {
    if (st.on_ground) {
      st.vy = kJumpVelocity;
      st.on_ground = 0;
    } else if (st.touching_wall && st.vy < 0 && (st.frame & 1) == 0) {
      st.vy = kJumpVelocity;
      st.wall_jumps++;
    }
  }

  // Horizontal movement with wall collision.
  st.touching_wall = 0;
  if (vx != 0) {
    const int32_t new_x = st.x + vx;
    const int32_t lead_tile = (vx > 0 ? new_x + kSub - 1 : new_x) / kSub;
    if (SolidAt(lead_tile, st.y)) {
      // Blocked: snap flush against the wall.
      st.touching_wall = 1;
      if (vx > 0) {
        st.x = lead_tile * kSub - kSub;
      } else {
        st.x = (lead_tile + 1) * kSub;
      }
    } else {
      st.x = new_x;
    }
  }
  if (st.x < 0) {
    st.x = 0;
  }

  // Vertical movement.
  if (!st.on_ground) {
    st.y += st.vy;
    st.vy -= kGravity;
    if (st.vy < kTerminalVelocity) {
      st.vy = kTerminalVelocity;
    }
  }
  const uint16_t col = static_cast<uint16_t>(st.x / kSub);
  const bool over_pit = level_.IsPit(col);
  const int32_t floor_y =
      level_.WallHeight(col) > 0 ? static_cast<int32_t>(level_.WallHeight(col)) * kSub : 0;

  if (st.y <= floor_y && st.vy <= 0) {
    if (over_pit && floor_y == 0) {
      // No ground here: keep falling.
      st.on_ground = 0;
      if (st.y <= kKillPlane) {
        st.dead = 1;
        return;
      }
    } else {
      st.y = floor_y;
      st.vy = 0;
      st.on_ground = 1;
    }
  } else {
    st.on_ground = 0;
  }

  if (st.x > st.max_x) {
    st.max_x = st.x;
  }
  if (st.x >= goal_x()) {
    st.won = 1;
  }
}

}  // namespace nyx
