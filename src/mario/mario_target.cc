#include "src/mario/mario_target.h"

#include <cstring>

#include "src/spec/builder.h"

namespace nyx {
namespace {

constexpr uint32_t kSite = 20000;
constexpr uint16_t kPort = 1337;

struct State {
  int sock;
  MarioState mario;
  uint32_t packets;
};

class MarioTarget final : public Target {
 public:
  explicit MarioTarget(const LevelDef& level) : engine_(level) {}

  TargetInfo info() const override {
    TargetInfo ti;
    ti.name = "mario-" + engine_.level().name;
    ti.port = kPort;
    ti.transport = SockKind::kDgram;
    ti.split = SplitStrategy::kSegment;
    ti.desock_compatible = false;
    ti.startup_ns = 150'000'000;  // emulator boot + ROM load
    ti.request_ns = 0;            // charged per frame instead
    ti.aflnet_extra_ns = 0;
    ti.startup_dirty_pages = 20;
    ti.state_bytes = sizeof(State);
    return ti;
  }

  void Init(GuestContext& ctx) override {
    auto* st = ctx.State<State>();
    memset(st, 0, sizeof(*st));
    st->mario = MarioState{};
    st->sock = ctx.net().Socket(SockKind::kDgram);
    ctx.net().Bind(st->sock, kPort);
    ctx.TouchScratch(20, 0x99);
    ctx.Charge(info().startup_ns);
  }

  void Step(GuestContext& ctx) override {
    auto* st = ctx.State<State>();
    for (;;) {
      uint8_t frames[512];
      const int n = ctx.net().Recv(st->sock, frames, sizeof(frames));
      if (n <= 0) {
        return;
      }
      st->packets++;
      for (int i = 0; i < n; i++) {
        engine_.Tick(st->mario, frames[i]);
        ctx.Charge(kMarioFrameNsEmulated);
        // Coverage buckets on progress so the edge signal also guides the
        // fuzzer (IJON feedback does the fine-grained work).
        ctx.Cov(kSite + static_cast<uint32_t>(st->mario.x / (8 * kSub)));
        if (st->mario.dead) {
          ctx.Cov(kSite + 5000);
          break;
        }
        if (st->mario.won) {
          ctx.Cov(kSite + 5001);
          break;
        }
      }
      ctx.IjonMax(0, static_cast<uint64_t>(st->mario.max_x));
      if (st->mario.wall_jumps > 0) {
        ctx.Cov(kSite + 5002);  // the glitch fired
      }
    }
  }

 private:
  MarioEngine engine_;
};

}  // namespace

std::unique_ptr<Target> MakeMarioTarget(const std::string& level_name) {
  const LevelDef* level = FindLevel(level_name);
  return std::make_unique<MarioTarget>(*level);
}

Program MarioSeed(const Spec& spec, const LevelDef& level, size_t frames_per_packet) {
  Builder b(spec);
  ValueRef con = b.Connection();
  // Walk right, hopping occasionally — makes progress on flat ground but
  // cannot clear real pits (walking jumps are short); the fuzzer has to
  // discover running and jump timing.
  const size_t total_frames = static_cast<size_t>(level.length) * 10;
  Bytes packet;
  for (size_t f = 0; f < total_frames; f++) {
    uint8_t buttons = kBtnRight;
    if (f % 40 < 2) {
      buttons |= kBtnJump;
    }
    packet.push_back(buttons);
    if (packet.size() >= frames_per_packet) {
      b.Packet(con, std::move(packet));
      packet.clear();
    }
  }
  if (!packet.empty()) {
    b.Packet(con, std::move(packet));
  }
  return *b.Build();
}

Program MarioSpeedrun(const Spec& spec, const LevelDef& level, size_t frames_per_packet,
                      uint32_t* out_frames) {
  MarioEngine engine(level);
  MarioState st;
  Bytes frames;
  // Greedy perfect play: run right, jump exactly when an obstacle is one
  // tile ahead.
  const size_t frame_cap = static_cast<size_t>(level.length) * 30;
  while (!st.won && !st.dead && frames.size() < frame_cap) {
    uint8_t buttons = kBtnRight | kBtnRun;
    const uint16_t ahead = static_cast<uint16_t>(st.x / kSub + 1);
    const bool obstacle =
        level.IsPit(ahead) || (level.WallHeight(ahead) > 0 && st.on_ground);
    if (obstacle && st.on_ground && !st.jump_held) {
      buttons |= kBtnJump;
    }
    engine.Tick(st, buttons);
    frames.push_back(buttons);
  }
  if (!st.won) {
    if (out_frames != nullptr) {
      *out_frames = 0;
    }
    return Program{};
  }
  if (out_frames != nullptr) {
    *out_frames = static_cast<uint32_t>(frames.size());
  }
  Builder b(spec);
  ValueRef con = b.Connection();
  for (size_t off = 0; off < frames.size(); off += frames_per_packet) {
    const size_t end = off + frames_per_packet < frames.size() ? off + frames_per_packet
                                                               : frames.size();
    b.Packet(con, Bytes(frames.begin() + static_cast<long>(off),
                        frames.begin() + static_cast<long>(end)));
  }
  return *b.Build();
}

}  // namespace nyx
