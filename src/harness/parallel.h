// Parallel campaign engine (ROADMAP: "parallel" north star).
//
// Two shapes of parallelism, matching how the paper's evaluation ran:
//
//  1. Campaign fan-out: independent (seed × configuration) campaigns spread
//     over a worker pool — every campaign owns its Vm, RNG and virtual
//     clock, so results are bit-identical to a serial loop regardless of
//     NYX_JOBS. This is what RepeatCampaign and the bench drivers use.
//
//  2. In-process sharded fuzzing (paper section 6.2, AFL -M/-S style):
//     N NyxFuzzer workers attack the *same* target and periodically sync
//     corpus entries and merged coverage through a CorpusFrontier
//     (fuzz/frontier.h).
//
// Thread-count knob: NYX_JOBS (default: hardware concurrency). NYX_JOBS=1
// runs everything inline on the calling thread.

#ifndef SRC_HARNESS_PARALLEL_H_
#define SRC_HARNESS_PARALLEL_H_

#include <functional>
#include <vector>

#include "src/harness/campaign.h"

namespace nyx {

// Worker count from the NYX_JOBS environment knob (documented in
// EXPERIMENTS.md next to NYX_RUNS / NYX_VTIME). Defaults to hardware
// concurrency; never returns 0.
size_t EvalJobs();

// Runs body(0) .. body(n-1), each exactly once, on up to `jobs` threads.
// With jobs <= 1 or n <= 1 the bodies run inline on the calling thread in
// index order — no threads are spawned, so single-worker runs are
// bit-identical to a plain loop. Bodies must not throw.
void ParallelFor(size_t n, size_t jobs, const std::function<void(size_t)>& body);

// Flat fan-out: runs every fully-specified campaign (each spec carries its
// own seed) on an EvalJobs()-sized pool. outcomes[i] always corresponds to
// specs[i], regardless of scheduling order.
std::vector<CampaignOutcome> RunCampaigns(const std::vector<CampaignSpec>& specs);

// seeds × configurations grid on one shared pool: result[c] holds `runs`
// results for configs[c] with seeds 1..runs, or is empty if that
// configuration is unsupported (RepeatCampaign semantics).
std::vector<std::vector<CampaignResult>> RunCampaignGrid(
    const std::vector<CampaignSpec>& configs, size_t runs);

struct ShardedOutcome {
  bool supported = true;
  std::vector<CampaignResult> per_shard;
  // Aggregate view: summed execs/crashes, frontier-merged coverage,
  // vtime = max over shards (they fuzz concurrently).
  CampaignResult merged;
  uint64_t frontier_generations = 0;
  size_t frontier_published = 0;
};

// Sharded fuzzing of one target: `shards` NyxFuzzer workers (one Vm each,
// dedicated threads — the lock-step frontier barrier needs every shard
// running) with deterministic per-shard seeds derived from spec.seed.
// Only Nyx fuzzer kinds are supported. Deterministic across repeated runs
// as long as the limits are virtual-time or exec-count bounded.
ShardedOutcome RunShardedCampaign(const CampaignSpec& spec, size_t shards);

}  // namespace nyx

#endif  // SRC_HARNESS_PARALLEL_H_
