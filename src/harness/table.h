// Fixed-width table printing for the bench binaries, matching the layout of
// the paper's tables closely enough to compare side by side.

#ifndef SRC_HARNESS_TABLE_H_
#define SRC_HARNESS_TABLE_H_

#include <string>
#include <vector>

namespace nyx {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);
  // Renders with column auto-sizing and a header separator.
  std::string Render() const;
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Number formatting helpers.
std::string Fmt(double v, int precision = 1);
std::string FmtPercent(double fraction, int precision = 1);  // +4.3% style
std::string FmtDuration(double seconds);                     // HH:MM:SS

}  // namespace nyx

#endif  // SRC_HARNESS_TABLE_H_
