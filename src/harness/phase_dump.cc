#include "src/harness/phase_dump.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "src/common/telemetry.h"

namespace nyx {

namespace {

// The file keeps exactly one config per line between the "configs" markers,
// so the update below is a line-level splice, not a JSON rewrite.
constexpr const char* kHeader = "{\n  \"bench\": \"phase_breakdown\",\n  \"unit\": \"ns\",\n  \"configs\": {\n";
constexpr const char* kFooter = "  }\n}\n";

std::string ConfigLinePrefix(const std::string& config) {
  return "    \"" + config + "\": ";
}

}  // namespace

std::string PhaseBreakdownSection() {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (size_t i = 0; i < telemetry::kPhaseCount; i++) {
    const auto phase = static_cast<telemetry::Phase>(i);
    const telemetry::Histogram::Snapshot s = telemetry::PhaseHistogram(phase)->Snap();
    if (s.total == 0) {
      continue;
    }
    char buf[160];
    snprintf(buf, sizeof(buf),
             "\"%s\": {\"total\": %llu, \"p50_ns\": %.0f, \"p90_ns\": %.0f, \"p99_ns\": %.0f}",
             telemetry::PhaseName(phase), static_cast<unsigned long long>(s.total),
             s.Percentile(50), s.Percentile(90), s.Percentile(99));
    os << (first ? "" : ", ") << buf;
    first = false;
  }
  os << "}";
  return os.str();
}

bool UpdatePhaseBreakdown(const std::string& path, const std::string& config,
                          const std::string& section) {
  // Collect surviving config lines from an existing file (anything between
  // the header and footer that is not the section being replaced).
  std::vector<std::string> lines;
  {
    std::ifstream in(path);
    std::string line;
    bool in_configs = false;
    while (std::getline(in, line)) {
      if (line == "  \"configs\": {") {
        in_configs = true;
        continue;
      }
      if (!in_configs || line == "  }" || line == "}") {
        continue;
      }
      if (line.rfind(ConfigLinePrefix(config), 0) == 0) {
        continue;  // replaced below
      }
      if (line.rfind("    \"", 0) == 0) {
        if (!line.empty() && line.back() == ',') {
          line.pop_back();
        }
        lines.push_back(line);
      }
    }
  }
  lines.push_back(ConfigLinePrefix(config) + section);

  const std::string tmp = path + ".tmp";
  FILE* f = fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    fprintf(stderr, "[phase_dump] cannot write %s\n", tmp.c_str());
    return false;
  }
  fputs(kHeader, f);
  for (size_t i = 0; i < lines.size(); i++) {
    fprintf(f, "%s%s\n", lines[i].c_str(), i + 1 < lines.size() ? "," : "");
  }
  fputs(kFooter, f);
  const bool ok = fflush(f) == 0 && ferror(f) == 0;
  fclose(f);
  if (!ok || rename(tmp.c_str(), path.c_str()) != 0) {
    fprintf(stderr, "[phase_dump] cannot replace %s\n", path.c_str());
    remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace nyx
