// Evaluation harness: runs (fuzzer × target) campaigns with the paper's
// configurations and aggregates repeated runs the way the paper does
// (medians, mean ± stddev, Mann-Whitney U).

#ifndef SRC_HARNESS_CAMPAIGN_H_
#define SRC_HARNESS_CAMPAIGN_H_

#include <optional>
#include <string>
#include <vector>

#include "src/baselines/baseline.h"
#include "src/fuzz/fuzzer.h"

namespace nyx {

enum class FuzzerKind {
  kAflnet,
  kAflnetNoState,
  kAflnwe,
  kAflppDesock,
  kNyxNone,
  kNyxBalanced,
  kNyxAggressive,
  kIjon,
};

const char* FuzzerKindName(FuzzerKind kind);
bool IsNyxKind(FuzzerKind kind);

// Snapshot-placement policy a Nyx fuzzer kind maps to (kNone for baselines).
PolicyMode NyxPolicyFor(FuzzerKind kind);

struct CampaignSpec {
  std::string target;  // registry name, or "mario-<level>"
  FuzzerKind fuzzer = FuzzerKind::kNyxNone;
  CampaignLimits limits;
  uint64_t seed = 1;
  bool asan = false;
  size_t vm_pages = 1024;  // 4 MiB guest
  // Deterministic fault injection (FuzzerConfig::fault_injection). Nyx kinds
  // only; baselines model stock tools and ignore it.
  bool fault_injection = false;
};

struct CampaignOutcome {
  bool supported = true;
  CampaignResult result;
};

// Runs one campaign. Unsupported combinations (desock on incompatible
// targets) return supported = false.
CampaignOutcome RunCampaign(const CampaignSpec& spec);

// Mario campaign: target is a level name; the goal is solving the level.
CampaignOutcome RunMarioCampaign(const std::string& level, FuzzerKind fuzzer,
                                 double wall_seconds, uint64_t seed);

// Repeats a campaign across seeds 1..runs; returns per-run results (skipping
// unsupported configurations entirely: the vector is empty).
std::vector<CampaignResult> RepeatCampaign(CampaignSpec spec, size_t runs);

// Environment-tunable evaluation scale (documented in EXPERIMENTS.md):
//   NYX_RUNS   repetitions per configuration (default `def_runs`)
//   NYX_VTIME  virtual seconds per campaign  (default `def_vtime`)
size_t EvalRuns(size_t def_runs);
double EvalVtime(double def_vtime);

}  // namespace nyx

#endif  // SRC_HARNESS_CAMPAIGN_H_
