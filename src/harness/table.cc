#include "src/harness/table.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace nyx {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::Render() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); c++) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); c++) {
      if (row[c].size() > widths[c]) {
        widths[c] = row[c].size();
      }
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); c++) {
      os << "| " << row[c];
      for (size_t pad = row[c].size(); pad < widths[c]; pad++) {
        os << ' ';
      }
      os << ' ';
    }
    os << "|\n";
  };
  emit_row(header_);
  for (size_t c = 0; c < header_.size(); c++) {
    os << "|";
    for (size_t i = 0; i < widths[c] + 2; i++) {
      os << '-';
    }
  }
  os << "|\n";
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return os.str();
}

void TextTable::Print() const { std::fputs(Render().c_str(), stdout); }

std::string Fmt(double v, int precision) {
  char buf[64];
  snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string FmtPercent(double fraction, int precision) {
  char buf[64];
  snprintf(buf, sizeof(buf), "%+.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string FmtDuration(double seconds) {
  if (seconds < 0) {
    return "-";
  }
  const long total = static_cast<long>(std::llround(seconds));
  char buf[32];
  snprintf(buf, sizeof(buf), "%02ld:%02ld:%02ld", total / 3600, (total / 60) % 60, total % 60);
  return buf;
}

}  // namespace nyx
