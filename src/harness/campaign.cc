#include "src/harness/campaign.h"

#include <cstdlib>

#include "src/common/env.h"
#include "src/harness/parallel.h"
#include "src/mario/mario_target.h"
#include "src/targets/registry.h"

namespace nyx {

const char* FuzzerKindName(FuzzerKind kind) {
  switch (kind) {
    case FuzzerKind::kAflnet:
      return "AFLNet";
    case FuzzerKind::kAflnetNoState:
      return "AFLNet-no-state";
    case FuzzerKind::kAflnwe:
      return "AFLnwe";
    case FuzzerKind::kAflppDesock:
      return "AFL++";
    case FuzzerKind::kNyxNone:
      return "Nyx-Net-none";
    case FuzzerKind::kNyxBalanced:
      return "Nyx-Net-balanced";
    case FuzzerKind::kNyxAggressive:
      return "Nyx-Net-aggressive";
    case FuzzerKind::kIjon:
      return "Ijon";
  }
  return "?";
}

bool IsNyxKind(FuzzerKind kind) {
  return kind == FuzzerKind::kNyxNone || kind == FuzzerKind::kNyxBalanced ||
         kind == FuzzerKind::kNyxAggressive;
}

PolicyMode NyxPolicyFor(FuzzerKind kind) {
  switch (kind) {
    case FuzzerKind::kNyxBalanced:
      return PolicyMode::kBalanced;
    case FuzzerKind::kNyxAggressive:
      return PolicyMode::kAggressive;
    default:
      return PolicyMode::kNone;
  }
}

namespace {

BaselineKind ToBaselineKind(FuzzerKind kind) {
  switch (kind) {
    case FuzzerKind::kAflnetNoState:
      return BaselineKind::kAflnetNoState;
    case FuzzerKind::kAflnwe:
      return BaselineKind::kAflnwe;
    case FuzzerKind::kAflppDesock:
      return BaselineKind::kAflppDesock;
    case FuzzerKind::kIjon:
      return BaselineKind::kIjon;
    case FuzzerKind::kAflnet:
    default:
      return BaselineKind::kAflnet;
  }
}

CampaignOutcome RunWith(const Spec& spec, TargetFactory factory,
                        const std::vector<Program>& seeds, const CampaignSpec& cs,
                        uint64_t per_byte_extra_ns = 0) {
  EngineConfig engine_cfg;
  engine_cfg.vm.mem_pages = cs.vm_pages;
  engine_cfg.vm.disk_sectors = 512;
  engine_cfg.asan = cs.asan;
  engine_cfg.seed = cs.seed;

  CampaignOutcome outcome;
  if (IsNyxKind(cs.fuzzer)) {
    FuzzerConfig fcfg;
    fcfg.policy = NyxPolicyFor(cs.fuzzer);
    fcfg.seed = cs.seed;
    fcfg.fault_injection = cs.fault_injection;
    NyxFuzzer fuzzer(engine_cfg, factory, spec, fcfg);
    for (const Program& s : seeds) {
      fuzzer.AddSeed(s);
    }
    outcome.result = fuzzer.Run(cs.limits);
  } else {
    BaselineConfig bcfg;
    bcfg.kind = ToBaselineKind(cs.fuzzer);
    bcfg.seed = cs.seed;
    bcfg.per_byte_extra_ns = per_byte_extra_ns;
    BaselineFuzzer fuzzer(engine_cfg, factory, spec, bcfg);
    if (!fuzzer.supported()) {
      outcome.supported = false;
      return outcome;
    }
    for (const Program& s : seeds) {
      fuzzer.AddSeed(s);
    }
    outcome.result = fuzzer.Run(cs.limits);
  }
  return outcome;
}

}  // namespace

CampaignOutcome RunCampaign(const CampaignSpec& cs) {
  auto reg = FindTarget(cs.target);
  if (!reg.has_value()) {
    CampaignOutcome outcome;
    outcome.supported = false;
    return outcome;
  }
  const Spec spec = reg->make_spec();
  return RunWith(spec, reg->factory, reg->make_seeds(spec), cs);
}

CampaignOutcome RunMarioCampaign(const std::string& level, FuzzerKind fuzzer,
                                 double wall_seconds, uint64_t seed) {
  const Spec spec = Spec::GenericNetwork();
  const LevelDef* lv = FindLevel(level);
  CampaignSpec cs;
  cs.fuzzer = fuzzer;
  cs.seed = seed;
  cs.limits.vtime_seconds = 24.0 * 3600;  // a virtual day
  cs.limits.wall_seconds = wall_seconds;
  cs.limits.ijon_goal = static_cast<uint64_t>(lv->length) * kSub;
  TargetFactory factory = [level] { return MakeMarioTarget(level); };
  std::vector<Program> seeds = {MarioSeed(spec, *lv, 64)};
  const uint64_t extra =
      fuzzer == FuzzerKind::kIjon ? kMarioFrameNsForkServer - kMarioFrameNsEmulated : 0;
  return RunWith(spec, factory, seeds, cs, extra);
}

std::vector<CampaignResult> RepeatCampaign(CampaignSpec spec, size_t runs) {
  // Fans out across the NYX_JOBS pool; every run owns its Vm/RNG/clock and
  // carries its own seed, so results match the old serial loop exactly.
  std::vector<std::vector<CampaignResult>> grid = RunCampaignGrid({spec}, runs);
  return std::move(grid.front());
}

size_t EvalRuns(size_t def_runs) { return env::Runs(def_runs); }

double EvalVtime(double def_vtime) { return env::Vtime(def_vtime); }

}  // namespace nyx
