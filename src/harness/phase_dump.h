// Phase-breakdown dump shared by the benches (DESIGN.md §11).
//
// table3 (one section per Nyx fuzzer config) and fig6 (one section per VM
// size of the snapshot microbenchmark) both aggregate the global phase
// histograms into the same committed file, BENCH_phase_breakdown.json.
// Each bench owns only its sections: UpdatePhaseBreakdown reads the existing
// file, replaces the section with the same config name, and rewrites the
// rest untouched, so running one bench never discards the other's numbers.

#ifndef SRC_HARNESS_PHASE_DUMP_H_
#define SRC_HARNESS_PHASE_DUMP_H_

#include <string>

namespace nyx {

// One "config" line: {"<phase>": {"total": N, "p50_ns": ..., "p90_ns": ...,
// "p99_ns": ...}, ...} from the *current* global phase histograms (benches
// reset them between configs via MetricRegistry::Global().ResetValues()).
// Phases with zero samples are omitted.
std::string PhaseBreakdownSection();

// Inserts/replaces the `config` section of the phase-breakdown file at
// `path`. Returns false (with a log line) if the file cannot be written.
bool UpdatePhaseBreakdown(const std::string& path, const std::string& config,
                          const std::string& section);

}  // namespace nyx

#endif  // SRC_HARNESS_PHASE_DUMP_H_
