#include "src/harness/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>

#include "src/common/env.h"
#include "src/common/hash.h"
#include "src/common/sync.h"
#include "src/common/trace.h"
#include "src/fuzz/frontier.h"
#include "src/targets/registry.h"

namespace nyx {

size_t EvalJobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return env::Jobs(hw > 0 ? hw : 1);
}

void ParallelFor(size_t n, size_t jobs, const std::function<void(size_t)>& body) {
  if (n == 0) {
    return;
  }
  if (jobs <= 1 || n <= 1) {
    // Inline serial path: no threads, identical to a plain loop.
    for (size_t i = 0; i < n; i++) {
      body(i);
    }
    return;
  }
  // Own cache line: every worker fetch_adds this counter between bodies,
  // and the surrounding stack frame (captured by reference below) must not
  // share the line with it.
  alignas(kCacheLineSize) std::atomic<size_t> next{0};
  auto worker = [&](size_t w) {
    trace::SetThreadTrackName("worker-" + std::to_string(w));
    for (size_t i = next.fetch_add(1, std::memory_order_relaxed); i < n;
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      body(i);
    }
  };
  const size_t workers = std::min(jobs, n);
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (size_t w = 0; w < workers; w++) {
    threads.emplace_back(worker, w);
  }
  for (std::thread& t : threads) {
    t.join();
  }
}

std::vector<CampaignOutcome> RunCampaigns(const std::vector<CampaignSpec>& specs) {
  std::vector<CampaignOutcome> outcomes(specs.size());
  ParallelFor(specs.size(), EvalJobs(),
              [&](size_t i) { outcomes[i] = RunCampaign(specs[i]); });
  return outcomes;
}

std::vector<std::vector<CampaignResult>> RunCampaignGrid(
    const std::vector<CampaignSpec>& configs, size_t runs) {
  // One flat pool over every (configuration, seed) cell — a per-config pool
  // would leave workers idle whenever a config has fewer runs than jobs.
  std::vector<CampaignOutcome> cells(configs.size() * runs);
  ParallelFor(cells.size(), EvalJobs(), [&](size_t i) {
    CampaignSpec spec = configs[i / runs];
    spec.seed = i % runs + 1;
    cells[i] = RunCampaign(spec);
  });

  std::vector<std::vector<CampaignResult>> grid(configs.size());
  for (size_t c = 0; c < configs.size(); c++) {
    bool supported = true;
    for (size_t r = 0; r < runs; r++) {
      supported = supported && cells[c * runs + r].supported;
    }
    if (!supported) {
      continue;  // RepeatCampaign semantics: unsupported config -> empty
    }
    grid[c].reserve(runs);
    for (size_t r = 0; r < runs; r++) {
      grid[c].push_back(std::move(cells[c * runs + r].result));
    }
  }
  return grid;
}

namespace {

// Deterministic per-shard seed. Shard 0 keeps the campaign seed unchanged
// so a 1-shard run reproduces the plain (unsharded) campaign bit-for-bit.
uint64_t ShardSeed(uint64_t seed, size_t shard) {
  return shard == 0 ? seed : Mix64(seed ^ (0x9e3779b97f4a7c15ull * shard));
}

void MergeCrash(CampaignResult& merged, uint32_t id, const CrashRecord& rec) {
  CrashRecord& dst = merged.crashes[id];
  const bool first = dst.count == 0;
  dst.count += rec.count;
  if (first || rec.first_seen_vsec < dst.first_seen_vsec) {
    dst.kind = rec.kind;
    dst.first_seen_vsec = rec.first_seen_vsec;
    dst.reproducer = rec.reproducer;
  }
}

}  // namespace

ShardedOutcome RunShardedCampaign(const CampaignSpec& cs, size_t shards) {
  ShardedOutcome out;
  if (shards == 0 || !IsNyxKind(cs.fuzzer)) {
    out.supported = false;
    return out;
  }
  auto reg = FindTarget(cs.target);
  if (!reg.has_value()) {
    out.supported = false;
    return out;
  }
  const Spec spec = reg->make_spec();
  const std::vector<Program> seeds = reg->make_seeds(spec);

  CorpusFrontier frontier(shards, &spec);
  out.per_shard.resize(shards);

  // Dedicated threads, never a bounded pool: every shard must run
  // concurrently or the frontier's lock-step barrier deadlocks.
  std::vector<std::thread> threads;
  threads.reserve(shards);
  for (size_t s = 0; s < shards; s++) {
    threads.emplace_back([&, s] {
      trace::SetThreadTrackName("shard-" + std::to_string(s));
      EngineConfig ecfg;
      ecfg.vm.mem_pages = cs.vm_pages;
      ecfg.vm.disk_sectors = 512;
      ecfg.asan = cs.asan;
      ecfg.seed = ShardSeed(cs.seed, s);

      FuzzerConfig fcfg;
      fcfg.policy = NyxPolicyFor(cs.fuzzer);
      fcfg.seed = ShardSeed(cs.seed, s);
      fcfg.frontier = &frontier;
      fcfg.shard = s;

      NyxFuzzer fuzzer(ecfg, reg->factory, spec, fcfg);
      for (const Program& p : seeds) {
        fuzzer.AddSeed(p);
      }
      out.per_shard[s] = fuzzer.Run(cs.limits);
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }

  CampaignResult& m = out.merged;
  for (const CampaignResult& r : out.per_shard) {
    m.execs += r.execs;
    m.vtime_seconds = std::max(m.vtime_seconds, r.vtime_seconds);
    m.corpus_size += r.corpus_size;
    m.incremental_creates += r.incremental_creates;
    m.incremental_restores += r.incremental_restores;
    m.root_restores += r.root_restores;
    m.contract_soft_failures += r.contract_soft_failures;
    m.pages_audited += r.pages_audited;
    m.audit_divergences += r.audit_divergences;
    m.ijon_best = std::max(m.ijon_best, r.ijon_best);
    for (const auto& [id, rec] : r.crashes) {
      MergeCrash(m, id, rec);
    }
    if (r.first_crash_vsec >= 0 &&
        (m.first_crash_vsec < 0 || r.first_crash_vsec < m.first_crash_vsec)) {
      m.first_crash_vsec = r.first_crash_vsec;
    }
    if (r.ijon_goal_vsec >= 0 &&
        (m.ijon_goal_vsec < 0 || r.ijon_goal_vsec < m.ijon_goal_vsec)) {
      m.ijon_goal_vsec = r.ijon_goal_vsec;
    }
  }
  m.execs_per_vsecond =
      m.vtime_seconds > 0 ? static_cast<double>(m.execs) / m.vtime_seconds : 0;
  m.branch_coverage = frontier.merged_coverage().SiteCount();
  m.edge_coverage = frontier.merged_coverage().EdgeCount();
  out.frontier_generations = frontier.generations();
  out.frontier_published = frontier.published();
  return out;
}

}  // namespace nyx
