// Table 3: test throughput (executions per virtual second, mean ± stddev
// across repeated runs) for every fuzzer on every ProFuzzBench target.
//
// "It can be seen that aggressively using incremental snapshots drastically
// gives the highest test throughput in all cases. However, the biggest gains
// come from the root snapshot avoiding initialization all together."
//
// Throughput stabilizes quickly, so the default budget is shorter than
// Table 2's (NYX_VTIME=20 virtual seconds, NYX_RUNS=2). All campaigns fan
// out across NYX_JOBS workers. Besides the text table, a machine-readable
// summary is written to BENCH_throughput.json (override: NYX_BENCH_OUT) so
// CI can track throughput over time.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/common/env.h"
#include "src/common/stats.h"
#include "src/common/telemetry.h"
#include "src/harness/campaign.h"
#include "src/harness/parallel.h"
#include "src/harness/phase_dump.h"
#include "src/harness/table.h"
#include "src/targets/registry.h"

int main() {
  using namespace nyx;
  const size_t runs = EvalRuns(2);
  const double vtime = EvalVtime(20);
  printf("Table 3: executions per virtual second, mean +/- stddev (%zu runs x %.0f vsec)\n\n",
         runs, vtime);

  const std::vector<FuzzerKind> fuzzers = {
      FuzzerKind::kAflnet,      FuzzerKind::kAflnetNoState, FuzzerKind::kAflnwe,
      FuzzerKind::kAflppDesock, FuzzerKind::kNyxNone,       FuzzerKind::kNyxBalanced,
      FuzzerKind::kNyxAggressive,
  };
  std::vector<std::string> header = {"Target"};
  for (FuzzerKind f : fuzzers) {
    header.push_back(FuzzerKindName(f));
  }
  TextTable table(header);

  std::vector<std::string> row_targets;
  std::vector<CampaignSpec> configs;
  for (const auto& reg : AllTargets()) {
    if (!reg.in_profuzzbench) {
      continue;
    }
    row_targets.push_back(reg.name);
    for (FuzzerKind f : fuzzers) {
      CampaignSpec cs;
      cs.target = reg.name;
      cs.fuzzer = f;
      cs.limits.vtime_seconds = vtime;
      cs.limits.wall_seconds = 3.0;
      configs.push_back(cs);
    }
  }
  const size_t jobs = EvalJobs();
  fprintf(stderr, "[table3] %zu campaigns on %zu jobs...\n", configs.size() * runs, jobs);
  const auto wall_start = std::chrono::steady_clock::now();
  const std::vector<std::vector<CampaignResult>> grid = RunCampaignGrid(configs, runs);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();

  // Per-fuzzer aggregation across every supported (target, run) cell.
  std::vector<std::vector<double>> per_fuzzer_eps(fuzzers.size());
  uint64_t pages_audited = 0;
  uint64_t audit_divergences = 0;
  for (size_t t = 0; t < row_targets.size(); t++) {
    std::vector<std::string> row = {row_targets[t]};
    for (size_t i = 0; i < fuzzers.size(); i++) {
      const std::vector<CampaignResult>& results = grid[t * fuzzers.size() + i];
      if (results.empty()) {
        row.push_back("-");
        continue;
      }
      std::vector<double> eps;
      for (const auto& r : results) {
        eps.push_back(r.execs_per_vsecond);
        per_fuzzer_eps[i].push_back(r.execs_per_vsecond);
        pages_audited += r.pages_audited;
        audit_divergences += r.audit_divergences;
      }
      row.push_back(Fmt(Mean(eps), 1) + " +/- " + Fmt(StdDev(eps), 1));
    }
    table.AddRow(std::move(row));
  }
  table.Print();

  // Machine-readable summary for CI trend tracking.
  const std::string out_path = env::StringOr("NYX_BENCH_OUT", "BENCH_throughput.json");
  FILE* out = fopen(out_path.c_str(), "w");
  if (out != nullptr) {
    fprintf(out, "{\n");
    fprintf(out, "  \"bench\": \"table3_throughput\",\n");
    fprintf(out, "  \"runs\": %zu,\n", runs);
    fprintf(out, "  \"vtime_seconds\": %.1f,\n", vtime);
    fprintf(out, "  \"jobs\": %zu,\n", jobs);
    fprintf(out, "  \"wall_seconds\": %.3f,\n", wall_seconds);
    fprintf(out, "  \"execs_per_vsecond\": {\n");
    for (size_t i = 0; i < fuzzers.size(); i++) {
      fprintf(out, "    \"%s\": {\"mean\": %.1f, \"stddev\": %.1f, \"cells\": %zu}%s\n",
              FuzzerKindName(fuzzers[i]), Mean(per_fuzzer_eps[i]), StdDev(per_fuzzer_eps[i]),
              per_fuzzer_eps[i].size(), i + 1 < fuzzers.size() ? "," : "");
    }
    fprintf(out, "  }\n");
    fprintf(out, "}\n");
    fclose(out);
    fprintf(stderr, "[table3] wrote %s (%.1fs wall)\n", out_path.c_str(), wall_seconds);
  } else {
    fprintf(stderr, "[table3] could not write %s\n", out_path.c_str());
  }

  printf("\nPaper shape check: Nyx-Net-none is 10x-1000x above the AFL family;\n");
  printf("aggressive >= balanced >= none on most targets.\n");

  // ---- Phase breakdown (serial, telemetry on) ----
  // One short campaign per Nyx config with the profiler enabled, serial so
  // the histograms describe a single worker's per-exec pipeline. The main
  // grid above runs with telemetry off, so its throughput numbers measure
  // the uninstrumented (one-relaxed-load) hot path.
  {
    const std::string phase_out = env::StringOr("NYX_PHASE_OUT", "BENCH_phase_breakdown.json");
    const bool was_enabled = telemetry::Enabled();
    const struct {
      FuzzerKind kind;
      const char* name;
    } nyx_configs[] = {{FuzzerKind::kNyxNone, "nyx-none"},
                       {FuzzerKind::kNyxBalanced, "nyx-balanced"},
                       {FuzzerKind::kNyxAggressive, "nyx-aggressive"}};
    for (const auto& nc : nyx_configs) {
      telemetry::SetTelemetryEnabled(true);
      telemetry::MetricRegistry::Global().ResetValues();
      CampaignSpec cs;
      cs.target = "lightftp";
      cs.fuzzer = nc.kind;
      cs.limits.vtime_seconds = std::min(vtime, 5.0);
      cs.limits.wall_seconds = 3.0;
      fprintf(stderr, "[table3] phase breakdown: %s...\n", nc.name);
      RunCampaign(cs);
      if (!UpdatePhaseBreakdown(phase_out, nc.name, PhaseBreakdownSection())) {
        telemetry::SetTelemetryEnabled(was_enabled);
        return 1;
      }
    }
    telemetry::SetTelemetryEnabled(was_enabled);
    telemetry::MetricRegistry::Global().ResetValues();
    fprintf(stderr, "[table3] wrote phase breakdown -> %s\n", phase_out.c_str());
  }

  // When run with NYX_AUDIT=1 this bench doubles as a whole-matrix
  // determinism gate: any divergence fails the process so CI goes red.
  if (env::Audit()) {
    fprintf(stderr, "[table3] audit: %llu pages compared, %llu divergences\n",
            static_cast<unsigned long long>(pages_audited),
            static_cast<unsigned long long>(audit_divergences));
    if (pages_audited == 0 || audit_divergences > 0) {
      return 1;
    }
  }
  return 0;
}
