// Table 3: test throughput (executions per virtual second, mean ± stddev
// across repeated runs) for every fuzzer on every ProFuzzBench target.
//
// "It can be seen that aggressively using incremental snapshots drastically
// gives the highest test throughput in all cases. However, the biggest gains
// come from the root snapshot avoiding initialization all together."
//
// Throughput stabilizes quickly, so the default budget is shorter than
// Table 2's (NYX_VTIME=20 virtual seconds, NYX_RUNS=2).

#include <cstdio>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/harness/campaign.h"
#include "src/harness/table.h"
#include "src/targets/registry.h"

int main() {
  using namespace nyx;
  const size_t runs = EvalRuns(2);
  const double vtime = EvalVtime(20);
  printf("Table 3: executions per virtual second, mean +/- stddev (%zu runs x %.0f vsec)\n\n",
         runs, vtime);

  const std::vector<FuzzerKind> fuzzers = {
      FuzzerKind::kAflnet,      FuzzerKind::kAflnetNoState, FuzzerKind::kAflnwe,
      FuzzerKind::kAflppDesock, FuzzerKind::kNyxNone,       FuzzerKind::kNyxBalanced,
      FuzzerKind::kNyxAggressive,
  };
  std::vector<std::string> header = {"Target"};
  for (FuzzerKind f : fuzzers) {
    header.push_back(FuzzerKindName(f));
  }
  TextTable table(header);

  for (const auto& reg : AllTargets()) {
    if (!reg.in_profuzzbench) {
      continue;
    }
    fprintf(stderr, "[table3] %s...\n", reg.name.c_str());
    std::vector<std::string> row = {reg.name};
    for (FuzzerKind f : fuzzers) {
      CampaignSpec cs;
      cs.target = reg.name;
      cs.fuzzer = f;
      cs.limits.vtime_seconds = vtime;
      cs.limits.wall_seconds = 3.0;
      const std::vector<CampaignResult> results = RepeatCampaign(cs, runs);
      if (results.empty()) {
        row.push_back("-");
        continue;
      }
      std::vector<double> eps;
      for (const auto& r : results) {
        eps.push_back(r.execs_per_vsecond);
      }
      row.push_back(Fmt(Mean(eps), 1) + " +/- " + Fmt(StdDev(eps), 1));
      fflush(stdout);
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  printf("\nPaper shape check: Nyx-Net-none is 10x-1000x above the AFL family;\n");
  printf("aggressive >= balanced >= none on most targets.\n");
  return 0;
}
