// Table 2: median branch coverage found by each fuzzer across repeated runs,
// reported as the % change vs. AFLNet (the paper's presentation). Entries
// whose Mann-Whitney U p-value vs. AFLNet is < 0.05 are marked with '*'
// (the paper renders them bold).
//
// Scale: the paper ran 10 x 24h per configuration on a 52-core server. The
// default here is NYX_RUNS=3 repetitions of NYX_VTIME=120 virtual seconds,
// which preserves the shape (who finds more, roughly by how much) while
// finishing in minutes on one core. Export NYX_RUNS/NYX_VTIME to scale up.

#include <cstdio>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/harness/campaign.h"
#include "src/harness/parallel.h"
#include "src/harness/table.h"
#include "src/targets/registry.h"

namespace nyx {
namespace {

std::vector<double> Coverages(const std::vector<CampaignResult>& results) {
  std::vector<double> out;
  for (const auto& r : results) {
    out.push_back(static_cast<double>(r.branch_coverage));
  }
  return out;
}

}  // namespace
}  // namespace nyx

int main() {
  using namespace nyx;
  const size_t runs = EvalRuns(3);
  const double vtime = EvalVtime(120);
  printf("Table 2: median branch coverage vs AFLNet (%zu runs x %.0f virtual seconds;\n",
         runs, vtime);
  printf("'*' marks statistically significant differences, Mann-Whitney p < 0.05)\n\n");

  const std::vector<FuzzerKind> fuzzers = {
      FuzzerKind::kAflnetNoState, FuzzerKind::kAflnwe,      FuzzerKind::kAflppDesock,
      FuzzerKind::kNyxNone,       FuzzerKind::kNyxBalanced, FuzzerKind::kNyxAggressive,
  };
  std::vector<std::string> header = {"Target", "AFLNet (branches)"};
  for (FuzzerKind f : fuzzers) {
    header.push_back(FuzzerKindName(f));
  }
  TextTable table(header);

  // One pool over every (target, fuzzer, seed) campaign: per-row columns are
  // adjacent configs in a flat grid (AFLNet baseline first).
  std::vector<std::string> row_targets;
  std::vector<CampaignSpec> configs;
  for (const auto& reg : AllTargets()) {
    if (!reg.in_profuzzbench) {
      continue;
    }
    row_targets.push_back(reg.name);
    CampaignSpec cs;
    cs.target = reg.name;
    cs.limits.vtime_seconds = vtime;
    cs.limits.wall_seconds = 3.0;
    cs.fuzzer = FuzzerKind::kAflnet;
    configs.push_back(cs);
    for (FuzzerKind f : fuzzers) {
      cs.fuzzer = f;
      configs.push_back(cs);
    }
  }
  fprintf(stderr, "[table2] %zu campaigns on %zu jobs...\n", configs.size() * runs, EvalJobs());
  const std::vector<std::vector<CampaignResult>> grid = RunCampaignGrid(configs, runs);

  const size_t stride = fuzzers.size() + 1;
  for (size_t t = 0; t < row_targets.size(); t++) {
    const std::vector<double> aflnet_cov = Coverages(grid[t * stride]);
    const double aflnet_median = Median(aflnet_cov);

    std::vector<std::string> row = {row_targets[t], Fmt(aflnet_median, 1)};
    for (size_t i = 0; i < fuzzers.size(); i++) {
      const std::vector<CampaignResult>& results = grid[t * stride + 1 + i];
      if (results.empty()) {
        row.push_back("n/a");
        continue;
      }
      const std::vector<double> cov = Coverages(results);
      const double median = Median(cov);
      const double delta = aflnet_median > 0 ? (median - aflnet_median) / aflnet_median : 0.0;
      std::string cell = FmtPercent(delta);
      if (MannWhitneyUPValue(aflnet_cov, cov) < 0.05) {
        cell += "*";
      }
      row.push_back(std::move(cell));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  printf("\nPaper shape check: Nyx-Net variants find more coverage on nearly every\n");
  printf("target (paper: +0.8%% .. +70%%); AFLnwe and AFL++ often find less.\n");
  return 0;
}
