// Ablations of the design choices DESIGN.md calls out, as google-benchmark
// microbenchmarks:
//
//   1. dirty-page STACK reset vs full BITMAP WALK (Nyx's KVM extension vs
//      stock KVM/AGAMOTTO behaviour) at varying VM sizes;
//   2. fast flat-copy device reset vs QEMU-style serialize/deserialize;
//   3. incremental-snapshot re-mirror interval (CoW page accumulation);
//   4. snapshot reuse count: execs/s on lightftp as a function of how many
//      iterations each incremental snapshot is reused ("reusing the snapshot
//      as little as 50 times yields significant performance increases").
//
// Deliberately serial (no NYX_JOBS fan-out): google-benchmark wall-clock
// timings need an otherwise-idle machine to be comparable.

#include <benchmark/benchmark.h>

#include "src/fuzz/fuzzer.h"
#include "src/spec/builder.h"
#include "src/targets/registry.h"
#include "src/vm/vm.h"

namespace nyx {
namespace {

// --- 1. stack reset vs bitmap walk -------------------------------------

void BM_ResetViaDirtyStack(benchmark::State& state) {
  const size_t vm_pages = static_cast<size_t>(state.range(0));
  const size_t dirty = 64;
  VmConfig cfg;
  cfg.mem_pages = vm_pages;
  cfg.disk_sectors = 16;
  Vm vm(cfg);
  vm.TakeRootSnapshot();
  for (auto _ : state) {
    for (size_t i = 0; i < dirty; i++) {
      vm.mem().base()[(i * (vm_pages / dirty)) * kPageSize] = 1;
    }
    vm.RestoreRoot();
  }
  state.SetLabel("reset cost independent of VM size");
}
BENCHMARK(BM_ResetViaDirtyStack)->Arg(1 << 12)->Arg(1 << 14)->Arg(1 << 16);

void BM_ResetViaBitmapWalk(benchmark::State& state) {
  const size_t vm_pages = static_cast<size_t>(state.range(0));
  const size_t dirty = 64;
  GuestMemory mem(vm_pages);
  Bytes root(mem.size_bytes());
  memcpy(root.data(), mem.base(), root.size());
  mem.ArmTracking();
  for (auto _ : state) {
    for (size_t i = 0; i < dirty; i++) {
      mem.base()[(i * (vm_pages / dirty)) * kPageSize] = 1;
    }
    // Stock-KVM style: scan the whole one-byte-per-page bitmap.
    mem.tracker().ForEachDirtyByBitmapWalk([&](uint32_t p) {
      memcpy(mem.base() + static_cast<size_t>(p) * kPageSize,
             root.data() + static_cast<size_t>(p) * kPageSize, kPageSize);
    });
    mem.ReArmDirtyPages();
  }
  state.SetLabel("reset cost scales with VM size");
}
BENCHMARK(BM_ResetViaBitmapWalk)->Arg(1 << 12)->Arg(1 << 14)->Arg(1 << 16);

// --- 2. device reset paths ----------------------------------------------

void BM_DeviceResetFast(benchmark::State& state) {
  DeviceState live;
  live.AddDevice("nic", 2048);
  live.AddDevice("blk", 1024);
  DeviceState saved;
  saved.AddDevice("nic", 2048);
  saved.AddDevice("blk", 1024);
  for (auto _ : state) {
    live.regs(0)[0] ^= 1;
    live.CopyFrom(saved);
    benchmark::DoNotOptimize(live.regs(0)[0]);
  }
}
BENCHMARK(BM_DeviceResetFast);

void BM_DeviceResetQemuStyle(benchmark::State& state) {
  DeviceState live;
  live.AddDevice("nic", 2048);
  live.AddDevice("blk", 1024);
  for (auto _ : state) {
    live.regs(0)[0] ^= 1;
    Bytes blob = live.Serialize();
    benchmark::DoNotOptimize(live.Deserialize(blob));
  }
}
BENCHMARK(BM_DeviceResetQemuStyle);

// --- 3. re-mirror interval ----------------------------------------------

void BM_IncrementalCaptureChurn(benchmark::State& state) {
  // Captures with rotating dirty sets accumulate private CoW pages until the
  // re-mirror resets them; the benchmark reports pages held at steady state.
  VmConfig cfg;
  cfg.mem_pages = 4096;
  cfg.disk_sectors = 16;
  Vm vm(cfg);
  vm.TakeRootSnapshot();
  uint64_t rotate = 0;
  for (auto _ : state) {
    for (size_t i = 0; i < 16; i++) {
      vm.mem().base()[((rotate + i * 7) % 4096) * kPageSize] = static_cast<uint8_t>(rotate);
    }
    rotate += 3;
    vm.CreateIncremental();
  }
  if (vm.has_incremental()) {
    state.counters["private_pages"] =
        static_cast<double>(vm.incremental().private_pages());
    state.counters["remirrors"] = static_cast<double>(vm.incremental().remirrors());
  }
}
BENCHMARK(BM_IncrementalCaptureChurn)->Iterations(5000);

// --- 4. snapshot reuse count --------------------------------------------

void BM_SnapshotReuseCount(benchmark::State& state) {
  const uint64_t reuse = static_cast<uint64_t>(state.range(0));
  auto reg = FindTarget("lightftp");
  Spec spec = reg->make_spec();
  EngineConfig ecfg;
  ecfg.vm.mem_pages = 512;
  ecfg.vm.disk_sectors = 128;
  double total_eps = 0;
  int campaigns = 0;
  for (auto _ : state) {
    FuzzerConfig fcfg;
    fcfg.policy = PolicyMode::kAggressive;
    fcfg.iterations_per_schedule = reuse;
    fcfg.seed = 42;
    NyxFuzzer fuzzer(ecfg, reg->factory, spec, fcfg);
    for (auto& s : reg->make_seeds(spec)) {
      fuzzer.AddSeed(s);
    }
    CampaignLimits limits;
    limits.vtime_seconds = 5.0;
    limits.wall_seconds = 10.0;
    CampaignResult r = fuzzer.Run(limits);
    total_eps += r.execs_per_vsecond;
    campaigns++;
  }
  state.counters["virtual_execs_per_sec"] = total_eps / campaigns;
}
BENCHMARK(BM_SnapshotReuseCount)->Arg(1)->Arg(10)->Arg(50)->Arg(200)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace nyx

BENCHMARK_MAIN();
