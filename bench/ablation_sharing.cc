// Scalability ablation (paper section 5.3):
//
// "Naively parallelizing the fuzzer like AGAMOTTO or Nyx will consume
// prohibitive amounts of memory [...] We share the root snapshots between
// different instances. As a consequence, in our experiments, 80 instances of
// Nyx-Net only require about 2x the memory of a single instance."
//
// We measure process RSS growth while (a) creating N VMs that each hold a
// private copy of the root image (naive) and (b) creating N VMs that map one
// shared root memfd copy-on-write. Guest RAM itself is lazily allocated
// anonymous memory, so the dominant cost is the snapshot storage.
//
// Deliberately serial (no NYX_JOBS fan-out): it measures whole-process RSS,
// which concurrent VM construction would pollute.

#include <string.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <vector>

#include "src/harness/table.h"
#include "src/vm/snapshot.h"
#include "src/vm/vm.h"

namespace nyx {
namespace {

// Current RSS in MiB, from /proc/self/statm.
double RssMib() {
  FILE* f = fopen("/proc/self/statm", "r");
  if (f == nullptr) {
    return 0;
  }
  long size = 0;
  long resident = 0;
  if (fscanf(f, "%ld %ld", &size, &resident) != 2) {
    resident = 0;
  }
  fclose(f);
  return static_cast<double>(resident) * static_cast<double>(getpagesize()) / (1024.0 * 1024.0);
}

constexpr size_t kVmPages = 16384;  // 64 MiB guests
constexpr size_t kInstances = 8;

// Naive: every instance keeps its own full copy of the root image.
double NaiveGrowthMib() {
  const double before = RssMib();
  std::vector<std::unique_ptr<Vm>> vms;
  std::vector<Bytes> private_roots;
  for (size_t i = 0; i < kInstances; i++) {
    VmConfig cfg;
    cfg.mem_pages = kVmPages;
    cfg.disk_sectors = 16;
    auto vm = std::make_unique<Vm>(cfg);
    // Touch the image so the copy is materialized, as loading a VM image
    // from disk would.
    for (size_t p = 0; p < kVmPages; p += 8) {
      vm->mem().base()[p * kPageSize] = static_cast<uint8_t>(p);
    }
    private_roots.emplace_back(vm->mem().size_bytes());
    memcpy(private_roots.back().data(), vm->mem().base(), private_roots.back().size());
    vms.push_back(std::move(vm));
  }
  return RssMib() - before;
}

// Shared: one root snapshot memfd, every instance maps it copy-on-write and
// only pays for the pages it dirties.
double SharedGrowthMib() {
  const double before = RssMib();
  VmConfig cfg;
  cfg.mem_pages = kVmPages;
  cfg.disk_sectors = 16;
  Vm primary(cfg);
  for (size_t p = 0; p < kVmPages; p += 8) {
    primary.mem().base()[p * kPageSize] = static_cast<uint8_t>(p);
  }
  primary.TakeRootSnapshot();

  std::vector<uint8_t*> instance_views;
  for (size_t i = 0; i < kInstances; i++) {
    void* view = mmap(nullptr, primary.mem().size_bytes(), PROT_READ | PROT_WRITE, MAP_PRIVATE,
                      primary.root().memfd(), 0);
    auto* mem = static_cast<uint8_t*>(view);
    // Each instance dirties a small working set (what a fuzzing campaign
    // actually touches between resets).
    for (size_t p = 0; p < 64; p++) {
      mem[p * kPageSize] = static_cast<uint8_t>(i);
    }
    instance_views.push_back(mem);
  }
  const double growth = RssMib() - before;
  for (uint8_t* view : instance_views) {
    munmap(view, primary.mem().size_bytes());
  }
  return growth;
}

}  // namespace
}  // namespace nyx

int main() {
  using namespace nyx;
  printf("Scalability ablation: memory for %zu parallel instances of a %zu MiB VM\n\n",
         kInstances, kVmPages * kPageSize / (1024 * 1024));
  const double naive = NaiveGrowthMib();
  const double shared = SharedGrowthMib();
  TextTable table({"strategy", "RSS growth (MiB)", "per instance (MiB)"});
  table.AddRow({"naive (private root copies)", Fmt(naive), Fmt(naive / kInstances)});
  table.AddRow({"shared root snapshot (CoW)", Fmt(shared), Fmt(shared / kInstances)});
  table.Print();
  printf("\nPaper shape check: shared-root instances cost a small fraction of a\n");
  printf("private copy (paper: 80 instances ~= 2x the memory of one instance).\n");
  return naive > shared ? 0 : 1;
}
