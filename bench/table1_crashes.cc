// Table 1: crashes found by each fuzzer in ProFuzzBench (+ the case-study
// targets as a second section).
//
// Protocol: every (fuzzer, target) cell runs one campaign with a 24-virtual-
// hour budget (the paper's wall-clock budget), stopping early on the first
// crash. A real-time safety cap bounds each cell (NYX_WALL, default 50 s) —
// baselines always finish their full virtual day well inside it; Nyx-Net
// configurations execute hundreds of times more tests per virtual second and
// may be clipped by the cap on the crash-free cells.
//
// Expected shape (paper Table 1):
//   dcmtk      — AFL-based find it; Nyx-Net reliably only with ASan (✓)
//   dnsmasq    — everyone (including AFL++)
//   exim       — Nyx-Net only
//   live555    — everyone except AFL++ (n/a)
//   proftpd    — Nyx-Net only
//   pure-ftpd  — nobody (AFLNet-no-state trips an internal OOM limit, *)
//   tinydtls   — everyone except AFL++ (n/a)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/common/env.h"
#include "src/harness/campaign.h"
#include "src/harness/parallel.h"
#include "src/harness/table.h"
#include "src/targets/registry.h"

namespace nyx {
namespace {

double WallCap() { return env::Wall(15.0); }

CampaignSpec CellSpec(const std::string& target, FuzzerKind fuzzer, bool asan) {
  CampaignSpec cs;
  cs.target = target;
  cs.fuzzer = fuzzer;
  cs.asan = asan;
  cs.limits.vtime_seconds = 24.0 * 3600;
  cs.limits.wall_seconds = WallCap();
  cs.limits.stop_on_crash = true;
  cs.seed = 1;
  return cs;
}

std::string CellText(const CampaignOutcome& out) {
  if (!out.supported) {
    return "n/a";
  }
  if (out.result.crashes.empty()) {
    return "-";
  }
  char buf[64];
  snprintf(buf, sizeof(buf), "crash @%s", FmtDuration(out.result.first_crash_vsec).c_str());
  return buf;
}

}  // namespace
}  // namespace nyx

int main() {
  using namespace nyx;
  printf("Table 1: crashes found by each fuzzer (24 virtual hours per cell,\n");
  printf("wall cap %.0fs/cell; 'crash @H:M:S' = first crash at that virtual time)\n\n", WallCap());

  const std::vector<FuzzerKind> fuzzers = {
      FuzzerKind::kAflnet,  FuzzerKind::kAflnetNoState, FuzzerKind::kAflnwe,
      FuzzerKind::kAflppDesock, FuzzerKind::kNyxNone,   FuzzerKind::kNyxBalanced,
      FuzzerKind::kNyxAggressive,
  };
  std::vector<std::string> header = {"Target"};
  for (FuzzerKind f : fuzzers) {
    header.push_back(FuzzerKindName(f));
  }

  const std::vector<std::string> profuzz_rows = {"dcmtk",   "dnsmasq",   "exim",    "live555",
                                                 "proftpd", "pure-ftpd", "tinydtls"};

  // Every cell is an independent campaign — flatten the whole table (plus
  // the ASan footnote row and the case studies) into one NYX_JOBS fan-out.
  std::vector<CampaignSpec> specs;
  for (const std::string& target : profuzz_rows) {
    for (FuzzerKind f : fuzzers) {
      specs.push_back(CellSpec(target, f, /*asan=*/false));
    }
  }
  // The dcmtk footnote: with ASan, Nyx-Net reports the overflow immediately.
  for (FuzzerKind f : fuzzers) {
    if (IsNyxKind(f)) {
      specs.push_back(CellSpec("dcmtk", f, /*asan=*/true));
    }
  }
  const std::vector<std::string> case_targets = {"lighttpd", "mysql-client", "firefox-ipc"};
  for (const std::string& target : case_targets) {
    specs.push_back(CellSpec(target, FuzzerKind::kNyxBalanced, /*asan=*/false));
  }
  fprintf(stderr, "[table1] %zu cells on %zu jobs...\n", specs.size(), EvalJobs());
  const std::vector<CampaignOutcome> outcomes = RunCampaigns(specs);

  size_t cell = 0;
  TextTable table(header);
  for (const std::string& target : profuzz_rows) {
    std::vector<std::string> row = {target};
    for (size_t i = 0; i < fuzzers.size(); i++) {
      row.push_back(CellText(outcomes[cell++]));
    }
    table.AddRow(std::move(row));
  }
  {
    std::vector<std::string> row = {"dcmtk (ASan)"};
    for (FuzzerKind f : fuzzers) {
      row.push_back(IsNyxKind(f) ? CellText(outcomes[cell++]) : "");
    }
    table.AddRow(std::move(row));
  }
  table.Print();

  printf("\nCase studies (sections 5.4-5.6), Nyx-Net-balanced:\n");
  TextTable cases({"Target", "Result"});
  for (const std::string& target : case_targets) {
    cases.AddRow({target, CellText(outcomes[cell++])});
  }
  cases.Print();
  printf("\nNote: pure-ftpd's `-` row reproduces the paper: its internal OOM is only\n");
  printf("reachable by a fuzzer that never resets the process (AFLNet-no-state with\n");
  printf("restarts disabled; see tests/baseline_test.cc).\n");
  return 0;
}
