// Table 5 (appendix B): "Time to Equal Coverage" — when AFLNet reached its
// final coverage, and how much faster each Nyx-Net configuration reached
// that same coverage level.
//
// Derived from the same campaign time series as Figure 5. Default scale:
// NYX_RUNS=2 medians over NYX_VTIME=120 virtual seconds.

#include <cstdio>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/harness/campaign.h"
#include "src/harness/parallel.h"
#include "src/harness/table.h"
#include "src/targets/registry.h"

namespace nyx {
namespace {

TimeSeries MedianSeries(const std::vector<CampaignResult>& results, double t_end) {
  std::vector<TimeSeries> series;
  for (const auto& r : results) {
    series.push_back(r.coverage_over_time);
  }
  return TimeSeries::PointwiseMedian(series, t_end, t_end / 200.0);
}

}  // namespace
}  // namespace nyx

int main() {
  using namespace nyx;
  const size_t runs = EvalRuns(2);
  const double vtime = EvalVtime(120);
  printf("Table 5: time to reach AFLNet's final coverage (%zu runs x %.0f vsec).\n", runs,
         vtime);
  printf("Speedups are AFLNet's time-to-final / Nyx-Net's time-to-same-coverage.\n\n");

  TextTable table({"Target", "AFLNet time to final cov", "Nyx-Net", "Nyx-Net-balanced",
                   "Nyx-Net-aggressive"});
  const std::vector<FuzzerKind> kinds = {FuzzerKind::kAflnet, FuzzerKind::kNyxNone,
                                         FuzzerKind::kNyxBalanced, FuzzerKind::kNyxAggressive};
  std::vector<std::string> row_targets;
  std::vector<CampaignSpec> configs;
  for (const auto& reg : AllTargets()) {
    if (!reg.in_profuzzbench) {
      continue;
    }
    row_targets.push_back(reg.name);
    for (FuzzerKind f : kinds) {
      CampaignSpec cs;
      cs.target = reg.name;
      cs.fuzzer = f;
      cs.limits.vtime_seconds = vtime;
      cs.limits.wall_seconds = 3.0;
      configs.push_back(cs);
    }
  }
  fprintf(stderr, "[table5] %zu campaigns on %zu jobs...\n", configs.size() * runs, EvalJobs());
  const std::vector<std::vector<CampaignResult>> grid = RunCampaignGrid(configs, runs);

  for (size_t t = 0; t < row_targets.size(); t++) {
    const TimeSeries aflnet = MedianSeries(grid[t * kinds.size()], vtime);
    const double final_cov = aflnet.ValueAt(vtime);
    const double aflnet_time = aflnet.TimeToReach(final_cov);

    std::vector<std::string> row = {row_targets[t], FmtDuration(aflnet_time)};
    for (size_t i = 1; i < kinds.size(); i++) {
      const TimeSeries nyx = MedianSeries(grid[t * kinds.size() + i], vtime);
      const double tt = nyx.TimeToReach(final_cov);
      if (tt < 0) {
        row.push_back("-");  // never matched AFLNet (paper: exim, openssh)
      } else if (tt <= 0.0) {
        row.push_back(">" + Fmt(aflnet_time, 0) + "x");
      } else {
        row.push_back(Fmt(aflnet_time / tt, 0) + "x");
      }
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  printf("\nPaper shape check: speedups from 1x to >1000x; '-' where Nyx-Net never\n");
  printf("matched AFLNet's final coverage within the budget.\n");
  return 0;
}
