// Table 4: time to solve Super Mario levels — IJON vs Nyx-Net-none /
// -balanced / -aggressive — plus the "faster than light" comparison from
// section 5.3.
//
// Times are virtual (the simulation's cost model: IJON pays fork-server and
// pipe-fed frame costs, Nyx-Net pays snapshot resets and emulated delivery).
// The paper reports medians of 3 runs over all 32 levels on 52 cores; the
// single-core default here runs NYX_MARIO_LEVELS (default 4 representative
// levels) x NYX_RUNS (default 1) with a per-cell wall cap NYX_WALL (default
// 45 s). Export NYX_MARIO_LEVELS=all for the full Table 4.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/env.h"
#include "src/common/stats.h"
#include "src/harness/campaign.h"
#include "src/harness/parallel.h"
#include "src/harness/table.h"
#include "src/mario/mario_target.h"

namespace nyx {
namespace {

double WallCap() { return env::Wall(20.0); }

std::vector<std::string> LevelSelection() {
  const std::string sel = env::StringOr("NYX_MARIO_LEVELS", "");
  const char* env = sel.c_str();
  if (sel == "all") {
    std::vector<std::string> all;
    for (const LevelDef& lv : AllLevels()) {
      all.push_back(lv.name);
    }
    return all;
  }
  if (env != nullptr && env[0] != '\0') {
    std::vector<std::string> picked;
    std::string cur;
    for (const char* p = env;; p++) {
      if (*p == ',' || *p == '\0') {
        if (!cur.empty()) {
          picked.push_back(cur);
        }
        cur.clear();
        if (*p == '\0') {
          break;
        }
      } else {
        cur.push_back(*p);
      }
    }
    return picked;
  }
  return {"1-1", "1-4", "2-1", "5-4"};
}

// Median time-to-solve across per-run solve times; negative if any run
// failed to solve.
double MedianSolve(const std::vector<double>& solve_times) {
  std::vector<double> times;
  for (double t : solve_times) {
    if (t < 0) {
      return -1.0;
    }
    times.push_back(t);
  }
  return times.empty() ? -1.0 : Median(times);
}

}  // namespace
}  // namespace nyx

int main() {
  using namespace nyx;
  const size_t runs = EvalRuns(1);
  printf("Table 4: virtual time (HH:MM:SS) to solve Super Mario levels\n");
  printf("(median of %zu run(s); '-' = unsolved within the wall cap of %.0fs/cell)\n\n",
         runs, WallCap());

  TextTable table({"Level", "Ijon", "Nyx-Net-none", "Nyx-Net-balanced", "Nyx-Net-aggressive",
                   "best speedup vs Ijon"});
  const std::vector<std::string> levels = LevelSelection();
  const std::vector<FuzzerKind> kinds = {FuzzerKind::kIjon, FuzzerKind::kNyxNone,
                                         FuzzerKind::kNyxBalanced, FuzzerKind::kNyxAggressive};

  // Every (level, fuzzer, run) cell is an independent campaign: fan the
  // whole table out across the NYX_JOBS pool.
  const size_t cells = levels.size() * kinds.size() * runs;
  std::vector<double> solve(cells, -1.0);
  fprintf(stderr, "[table4] %zu cells on %zu jobs...\n", cells, EvalJobs());
  ParallelFor(cells, EvalJobs(), [&](size_t i) {
    const size_t level_i = i / (kinds.size() * runs);
    const size_t kind_i = i / runs % kinds.size();
    const size_t run_i = i % runs;
    CampaignOutcome out =
        RunMarioCampaign(levels[level_i], kinds[kind_i], WallCap(), run_i + 1);
    solve[i] = out.result.ijon_goal_vsec;
  });
  auto cell_times = [&](size_t level_i, size_t kind_i) {
    const size_t base = (level_i * kinds.size() + kind_i) * runs;
    return std::vector<double>(solve.begin() + base, solve.begin() + base + runs);
  };

  for (size_t li = 0; li < levels.size(); li++) {
    const std::string& level = levels[li];
    const double ijon = MedianSolve(cell_times(li, 0));
    const double none = MedianSolve(cell_times(li, 1));
    const double balanced = MedianSolve(cell_times(li, 2));
    const double aggressive = MedianSolve(cell_times(li, 3));
    double best = -1;
    for (double t : {none, balanced, aggressive}) {
      if (t >= 0 && (best < 0 || t < best)) {
        best = t;
      }
    }
    std::string speedup = "-";
    if (ijon > 0 && best > 0) {
      speedup = Fmt(ijon / best, 1) + "x";
    } else if (ijon < 0 && best > 0) {
      speedup = ">?x (Ijon unsolved)";
    }
    table.AddRow({level, FmtDuration(ijon), FmtDuration(none), FmtDuration(balanced),
                  FmtDuration(aggressive), speedup});
    fflush(stdout);
  }
  table.Print();

  // "Faster than light": wall-clock of a speedrun at the native 60 FPS vs
  // the fuzzer's solve time spread over the paper's 52 parallel cores.
  printf("\nFaster-than-light check (section 5.3), level 1-1:\n");
  {
    Spec spec = Spec::GenericNetwork();
    const LevelDef* lv = FindLevel("1-1");
    uint32_t frames = 0;
    MarioSpeedrun(spec, *lv, 64, &frames);
    const double speedrun_seconds = static_cast<double>(frames) / 60.0;
    CampaignOutcome out = RunMarioCampaign("1-1", FuzzerKind::kNyxAggressive, WallCap(), 1);
    if (out.result.ijon_goal_vsec >= 0) {
      const double parallel52 = out.result.ijon_goal_vsec / 52.0;
      printf("  perfect speedrun at 60 FPS: %.1f s\n", speedrun_seconds);
      printf("  Nyx-Net-aggressive solve:   %.1f virtual s (1 core), %.1f s on 52 cores\n",
             out.result.ijon_goal_vsec, parallel52);
      printf("  faster than light: %s\n", parallel52 < speedrun_seconds ? "YES" : "no");
    } else {
      printf("  (1-1 unsolved within the wall cap; raise NYX_WALL)\n");
    }
  }
  printf("\n2-1 note: solvable only via the wall-jump glitch; expect '-' for Ijon and\n");
  printf("occasional solves for Nyx-Net configurations (paper: 1-2 of 3 runs).\n");
  return 0;
}
