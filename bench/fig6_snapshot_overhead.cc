// Figure 6: throughput of creating/loading incremental snapshots with n
// dirty pages, Nyx-Net vs AGAMOTTO, on two VM sizes — plus two sweeps the
// paper's KVM setup could not ask: the same snapshot workload under every
// available dirty-tracking backend (mprotect vs uffd-WP vs soft-dirty,
// DESIGN.md §12), and the depth-k snapshot tree against the classic
// root+incremental pair on a staged message sequence.
//
// This is a genuine wall-clock microbenchmark of the two snapshot
// implementations (src/vm vs src/agamotto): real mmap/mprotect/memfd-CoW
// machinery, real dirty-page logging. The paper used 512 MB and 4 GB VMs on
// an i7-6700HQ; by default we use 256 MB and 1 GB to fit CI-class machines
// (override with NYX_FIG6_VM_MB="512 4096").
//
// Expected shape (paper section 5.3): Nyx-Net is ~an order of magnitude
// faster across the relevant range because AGAMOTTO walks the whole
// one-byte-per-page bitmap and maintains a checkpoint tree, while Nyx-Net
// resets from a dirty-page stack; for very large dirty counts the gap closes
// (the 4-byte-per-entry stack eventually outweighs the 1-byte-per-page
// bitmap).
//
// Deliberately serial (no NYX_JOBS fan-out): this measures wall-clock
// latency of mmap/memcpy paths, which concurrent workers would distort.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/agamotto/agamotto.h"
#include "src/common/env.h"
#include "src/common/telemetry.h"
#include "src/harness/phase_dump.h"
#include "src/harness/table.h"
#include "src/vm/vm.h"

namespace nyx {
namespace {

using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
}

// Dirties n pages spread across the guest (first write per page => one
// tracking fault each), outside the timed region.
void DirtyPages(GuestMemory& mem, size_t n, uint8_t value) {
  const size_t stride = mem.num_pages() / n;
  for (size_t i = 0; i < n; i++) {
    mem.base()[(i * (stride > 0 ? stride : 1) % mem.num_pages()) * kPageSize] = value;
  }
}

struct Sample {
  double create_us = 0;
  double restore_us = 0;
};

Sample BenchNyx(size_t vm_pages, size_t dirty, size_t reps,
                TrackingMode mode = TrackingMode::kMprotect) {
  VmConfig cfg;
  cfg.mem_pages = vm_pages;
  cfg.disk_sectors = 16;
  cfg.tracking = mode;
  Vm vm(cfg);
  vm.TakeRootSnapshot();
  Sample s;
  for (size_t r = 0; r < reps; r++) {
    DirtyPages(vm.mem(), dirty, static_cast<uint8_t>(r + 1));
    auto t0 = Clock::now();
    vm.CreateIncremental();
    s.create_us += MicrosSince(t0);

    DirtyPages(vm.mem(), dirty, static_cast<uint8_t>(r + 2));
    t0 = Clock::now();
    vm.RestoreIncremental();
    s.restore_us += MicrosSince(t0);

    vm.RestoreRoot();
  }
  s.create_us /= static_cast<double>(reps);
  s.restore_us /= static_cast<double>(reps);
  return s;
}

Sample BenchAgamotto(size_t vm_pages, size_t dirty, size_t reps) {
  GuestMemory mem(vm_pages);
  AgamottoCheckpointManager mgr(mem, {});
  Sample s;
  for (size_t r = 0; r < reps; r++) {
    DirtyPages(mem, dirty, static_cast<uint8_t>(r + 1));
    auto t0 = Clock::now();
    const int cp = mgr.CreateCheckpoint();
    s.create_us += MicrosSince(t0);

    DirtyPages(mem, dirty, static_cast<uint8_t>(r + 2));
    t0 = Clock::now();
    mgr.RestoreCheckpoint(cp);
    s.restore_us += MicrosSince(t0);

    mgr.RestoreCheckpoint(-1);
  }
  s.create_us /= static_cast<double>(reps);
  s.restore_us /= static_cast<double>(reps);
  return s;
}

// Depth-k tree vs classic pair on a staged message sequence: `stages`
// protocol stages each dirty `stage_pages` fresh pages; the tree snapshots
// the first `depth` stage boundaries (exactly what the engine's auto-push
// does at packet boundaries). Per iteration the bench returns to the
// deepest state: restore to the deepest snapshot, then re-apply the
// un-snapshotted stages by rewriting their pages — a *floor* on replay cost,
// since real re-execution also runs the target. Larger depth => fewer
// replayed stages and less dirt for the next restore to revert.
double BenchTree(size_t vm_pages, size_t stages, size_t depth, size_t stage_pages,
                 size_t tail, size_t reps) {
  VmConfig cfg;
  cfg.mem_pages = vm_pages;
  cfg.disk_sectors = 16;
  cfg.snapshot_depth = depth;
  Vm vm(cfg);
  vm.TakeRootSnapshot();

  auto write_stage = [&](size_t s, uint8_t value) {
    for (size_t i = 0; i < stage_pages; i++) {
      vm.mem().base()[((s * stage_pages + i) % vm_pages) * kPageSize] = value;
    }
  };
  for (size_t s = 0; s < stages; s++) {
    write_stage(s, static_cast<uint8_t>(s + 1));
    if (s < depth) {
      vm.PushSnapshot();
    }
  }

  double total = 0;
  for (size_t r = 0; r < reps; r++) {
    // Suffix dirt on top of the deepest state (the fuzzed tail packet).
    for (size_t i = 0; i < tail; i++) {
      vm.mem().base()[((stages * stage_pages + i) % vm_pages) * kPageSize] =
          static_cast<uint8_t>(r + 1);
    }
    const auto t0 = Clock::now();
    vm.RestoreTo(depth);
    for (size_t s = depth; s < stages; s++) {
      write_stage(s, static_cast<uint8_t>(s + 1));  // replay floor
    }
    total += MicrosSince(t0);
  }
  return total / static_cast<double>(reps);
}

// Page-granular write protection splits the guest mapping into up to two
// VMAs per dirtied page; large dirty counts exceed the kernel's default
// vm.max_map_count (65530) and mprotect starts failing. Hardware dirty
// logging (the paper's KVM) has no such limit. Try to raise it; report
// whether the large sweep points are runnable.
bool EnsureMapCount(size_t needed) {
  FILE* f = fopen("/proc/sys/vm/max_map_count", "r");
  long current = 0;
  if (f != nullptr) {
    if (fscanf(f, "%ld", &current) != 1) {
      current = 0;
    }
    fclose(f);
  }
  if (current >= static_cast<long>(needed)) {
    return true;
  }
  f = fopen("/proc/sys/vm/max_map_count", "w");
  if (f == nullptr) {
    return false;
  }
  const bool ok = fprintf(f, "%zu", needed) > 0;
  fclose(f);
  return ok;
}

}  // namespace
}  // namespace nyx

int main() {
  using namespace nyx;

  std::vector<size_t> vm_mbs = {256, 1024};
  const std::string vm_mb_env = env::StringOr("NYX_FIG6_VM_MB", "");
  if (!vm_mb_env.empty()) {
    vm_mbs.clear();
    for (const char* p = vm_mb_env.c_str(); *p != '\0';) {
      vm_mbs.push_back(strtoul(p, const_cast<char**>(&p), 10));
      while (*p == ' ' || *p == ',') {
        p++;
      }
    }
  }
  const size_t dirty_counts[] = {10, 100, 1000, 10000, 100000};

  printf("Figure 6: incremental snapshot create/load time vs dirtied pages\n");
  printf("(averaged wall-clock microseconds; lower is better)\n\n");

  // The Nyx snapshot paths are phase-instrumented (the vm-layer dirty-reset
  // phase, src/vm/vm.cc; the snapshot-restore wrapper belongs to the engine,
  // which this microbenchmark bypasses); with the profiler on, each VM
  // size's sweep doubles as a phase-latency sample that lands next to
  // table3's campaign breakdown in BENCH_phase_breakdown.json.
  const std::string phase_out = env::StringOr("NYX_PHASE_OUT", "BENCH_phase_breakdown.json");
  const bool was_enabled = telemetry::Enabled();
  telemetry::SetTelemetryEnabled(true);

  for (size_t mb : vm_mbs) {
    const size_t pages = mb * 1024 * 1024 / kPageSize;
    telemetry::MetricRegistry::Global().ResetValues();
    TextTable table({"dirty pages", "Nyx create us", "Agamotto create us", "create speedup",
                     "Nyx load us", "Agamotto load us", "load speedup"});
    for (size_t dirty : dirty_counts) {
      if (dirty > pages * 3 / 4) {
        // The paper's 500MB VM could not dirty 1e5 pages either.
        table.AddRow({std::to_string(dirty), "-", "-", "-", "-", "-", "-"});
        continue;
      }
      if (dirty * 2 + 1024 > 65000 && !EnsureMapCount(dirty * 3)) {
        table.AddRow({std::to_string(dirty), "(needs vm.max_map_count)", "", "", "", "", ""});
        continue;
      }
      // Repetitions scale down with work; the paper used 1000.
      const size_t reps = dirty <= 1000 ? 100 : (dirty <= 10000 ? 20 : 5);
      fprintf(stderr, "[fig6] vm=%zuMB dirty=%zu nyx...\n", mb, dirty);
      const Sample nyx = BenchNyx(pages, dirty, reps);
      fprintf(stderr, "[fig6] vm=%zuMB dirty=%zu agamotto...\n", mb, dirty);
      const Sample aga = BenchAgamotto(pages, dirty, reps);
      table.AddRow({std::to_string(dirty), Fmt(nyx.create_us), Fmt(aga.create_us),
                    Fmt(aga.create_us / nyx.create_us, 1) + "x", Fmt(nyx.restore_us),
                    Fmt(aga.restore_us), Fmt(aga.restore_us / nyx.restore_us, 1) + "x"});
    }
    printf("VM size: %zu MB (%zu pages)\n", mb, pages);
    table.Print();
    printf("\n");
    if (!UpdatePhaseBreakdown(phase_out, "fig6-" + std::to_string(mb) + "mb",
                              PhaseBreakdownSection())) {
      telemetry::SetTelemetryEnabled(was_enabled);
      return 1;
    }
  }
  // Backend head-to-head: the same create/restore sweep under every
  // available dirty-tracking backend. Unavailable backends are reported, not
  // silently dropped. One phase-breakdown section per VM size per backend.
  const TrackingMode all_modes[] = {TrackingMode::kMprotect, TrackingMode::kUffd,
                                    TrackingMode::kSoftDirty};
  printf("Backend head-to-head: Nyx create/load under each dirty-tracking backend\n");
  for (size_t mb : vm_mbs) {
    const size_t pages = mb * 1024 * 1024 / kPageSize;
    TextTable table({"dirty pages", "mprotect create us", "mprotect load us",
                     "uffd create us", "uffd load us", "softdirty create us",
                     "softdirty load us"});
    // sample[mode][dirty index]; run grouped by backend so each backend's
    // phase latencies land in their own section.
    std::vector<std::vector<Sample>> samples(3);
    for (size_t m = 0; m < 3; m++) {
      const TrackingMode mode = all_modes[m];
      if (!TrackingModeAvailable(mode)) {
        continue;
      }
      telemetry::MetricRegistry::Global().ResetValues();
      for (size_t dirty : dirty_counts) {
        Sample s;
        const bool runnable =
            dirty <= pages * 3 / 4 &&
            (mode != TrackingMode::kMprotect || dirty * 2 + 1024 <= 65000 ||
             EnsureMapCount(dirty * 3));
        if (runnable) {
          const size_t reps = dirty <= 1000 ? 100 : (dirty <= 10000 ? 20 : 5);
          fprintf(stderr, "[fig6] vm=%zuMB dirty=%zu backend=%s...\n", mb, dirty,
                  TrackingModeName(mode));
          s = BenchNyx(pages, dirty, reps, mode);
        } else {
          s.create_us = s.restore_us = -1;
        }
        samples[m].push_back(s);
      }
      if (!UpdatePhaseBreakdown(phase_out,
                                "fig6-" + std::to_string(mb) + "mb-" +
                                    TrackingModeName(mode),
                                PhaseBreakdownSection())) {
        telemetry::SetTelemetryEnabled(was_enabled);
        return 1;
      }
    }
    for (size_t d = 0; d < sizeof(dirty_counts) / sizeof(dirty_counts[0]); d++) {
      std::vector<std::string> row = {std::to_string(dirty_counts[d])};
      for (size_t m = 0; m < 3; m++) {
        if (samples[m].empty()) {
          row.push_back("(unavailable)");
          row.push_back("-");
        } else if (samples[m][d].create_us < 0) {
          row.push_back("-");
          row.push_back("-");
        } else {
          row.push_back(Fmt(samples[m][d].create_us));
          row.push_back(Fmt(samples[m][d].restore_us));
        }
      }
      table.AddRow(row);
    }
    printf("VM size: %zu MB (%zu pages)\n", mb, pages);
    table.Print();
    printf("\n");
  }

  // Depth-k tree vs the classic pair: 8 protocol stages x 512 pages, the
  // tree snapshotting the first k stage boundaries. depth=1 IS the classic
  // root+incremental pair; deeper trees replay fewer stages per iteration
  // and revert less dirt per restore.
  {
    const size_t tree_pages = 64 * 1024 * 1024 / kPageSize;  // 64 MB VM
    const size_t kStages = 8, kStagePages = 512, kTail = 64, kReps = 50;
    printf("Snapshot tree: time back to the deepest of %zu stages (%zu pages/stage)\n",
           kStages, kStagePages);
    TextTable table({"tree depth", "per-iteration us", "speedup vs depth 1"});
    double depth1_us = 0;
    for (size_t depth : {1, 2, 4, 8}) {
      telemetry::MetricRegistry::Global().ResetValues();
      fprintf(stderr, "[fig6] tree depth=%zu...\n", depth);
      const double us = BenchTree(tree_pages, kStages, depth, kStagePages, kTail, kReps);
      if (!UpdatePhaseBreakdown(phase_out, "fig6-tree-depth" + std::to_string(depth),
                                PhaseBreakdownSection())) {
        telemetry::SetTelemetryEnabled(was_enabled);
        return 1;
      }
      if (depth == 1) {
        depth1_us = us;
      }
      table.AddRow({std::to_string(depth), Fmt(us), Fmt(depth1_us / us, 1) + "x"});
    }
    table.Print();
    printf("\n");
  }

  telemetry::SetTelemetryEnabled(was_enabled);
  telemetry::MetricRegistry::Global().ResetValues();
  fprintf(stderr, "[fig6] phase breakdown -> %s\n", phase_out.c_str());

  printf("Paper shape check: Nyx-Net ~10x faster in the relevant range;\n");
  printf("gap narrows as the dirty count approaches the VM size.\n");
  return 0;
}
