// Corpus-analysis benchmark (ISSUE 10): measures what the bytecode dataflow
// analyzer actually buys on real campaigns.
//
// For each target (lightftp, kamailio) one Nyx-Net-balanced campaign with
// fault injection runs to completion, then the final corpus is dissected:
//
//  * semantic-dedup hit rate — coverage-novel programs Corpus::Add rejected
//    because a NormalHash-equal entry was already queued, relative to all
//    queue-add attempts that got that far;
//  * dead-op share — statically provably-dead ops across the corpus, and
//    the byte shrink from canonicalizing every entry;
//  * trimming cost — TrimProgram probe executions in analysis order vs the
//    naive afl-tmin-style reverse sweep over the same entries, plus the
//    op/byte deltas the (identical) trims achieve.
//
// Output: BENCH_corpus_analysis.json (override: NYX_BENCH_OUT). Scale knobs:
// NYX_VTIME (default 120 virtual seconds), NYX_TRIM_ENTRIES (default 12).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/env.h"
#include "src/fuzz/fuzzer.h"
#include "src/fuzz/trim.h"
#include "src/harness/campaign.h"
#include "src/spec/analyze.h"
#include "src/targets/registry.h"

namespace nyx {
namespace {

struct TargetReport {
  std::string name;
  uint64_t semantic_dupes = 0;
  size_t corpus_entries = 0;
  size_t corpus_ops = 0;
  size_t dead_ops = 0;
  size_t corpus_bytes = 0;
  size_t canonical_bytes = 0;
  size_t trim_entries = 0;
  size_t probe_execs_analysis = 0;
  size_t probe_execs_naive = 0;
  size_t trim_ops_before = 0;
  size_t trim_ops_after = 0;
  size_t trim_bytes_before = 0;
  size_t trim_bytes_after = 0;
};

TargetReport MeasureTarget(const std::string& name, double vtime) {
  auto reg = FindTarget(name);
  TargetReport rep;
  rep.name = name;

  const Spec spec = reg->make_spec();
  EngineConfig engine_cfg;
  engine_cfg.vm.mem_pages = 1024;
  engine_cfg.seed = 1;
  FuzzerConfig fcfg;
  fcfg.policy = PolicyMode::kBalanced;
  fcfg.fault_injection = true;
  fcfg.seed = 1;
  NyxFuzzer fuzzer(engine_cfg, reg->factory, spec, fcfg);
  for (Program& p : reg->make_seeds(spec)) {
    fuzzer.AddSeed(std::move(p));
  }
  CampaignLimits limits;
  limits.vtime_seconds = vtime;
  limits.wall_seconds = 600.0;
  const CampaignResult result = fuzzer.Run(limits);

  rep.semantic_dupes = result.semantic_dupes;
  rep.corpus_entries = fuzzer.corpus().size();

  // Static dissection of the final queue.
  for (size_t i = 0; i < fuzzer.corpus().size(); i++) {
    const Program& p = fuzzer.corpus().entry(i).program;
    const spec::Analysis a = spec::Analyze(p, spec);
    rep.corpus_ops += p.ops.size();
    rep.dead_ops += a.provably_dead;
    rep.corpus_bytes += p.Serialize().size();
    rep.canonical_bytes += spec::Canonicalize(p, spec).Serialize().size();
  }

  // Trim cost comparison over the N largest entries (trimming exists for
  // bloated entries; seeds are already near-minimal), both orders against
  // the same engine. Analysis order must reach a program no larger than
  // naive order does (both accept only fingerprint-preserving removals),
  // the question is how many probe executions each burns to get there.
  std::vector<size_t> by_size(fuzzer.corpus().size());
  for (size_t i = 0; i < by_size.size(); i++) {
    by_size[i] = i;
  }
  std::sort(by_size.begin(), by_size.end(), [&](size_t a, size_t b) {
    return fuzzer.corpus().entry(a).program.ops.size() >
           fuzzer.corpus().entry(b).program.ops.size();
  });
  rep.trim_entries = std::min<size_t>(env::SizeOr("NYX_TRIM_ENTRIES", 12),
                                      fuzzer.corpus().size());
  for (size_t i = 0; i < rep.trim_entries; i++) {
    const Program& p = fuzzer.corpus().entry(by_size[i]).program;
    TrimOptions analysis_opts;
    analysis_opts.analysis_order = true;
    TrimStats sa;
    const Program ta = TrimProgram(fuzzer.engine(), spec, p, analysis_opts, &sa);
    TrimOptions naive_opts;
    naive_opts.analysis_order = false;
    TrimStats sn;
    TrimProgram(fuzzer.engine(), spec, p, naive_opts, &sn);

    rep.probe_execs_analysis += sa.probe_execs;
    rep.probe_execs_naive += sn.probe_execs;
    rep.trim_ops_before += sa.ops_before;
    rep.trim_ops_after += sa.ops_after;
    rep.trim_bytes_before += sa.bytes_before;
    rep.trim_bytes_after += sa.bytes_after;
    (void)ta;
  }
  return rep;
}

}  // namespace
}  // namespace nyx

int main() {
  using namespace nyx;
  const double vtime = EvalVtime(120);
  const std::vector<std::string> targets = {"lightftp", "kamailio"};

  std::vector<TargetReport> reports;
  for (const std::string& t : targets) {
    fprintf(stderr, "[corpus_analysis] %s: %.0f virtual seconds...\n", t.c_str(), vtime);
    reports.push_back(MeasureTarget(t, vtime));
    const TargetReport& r = reports.back();
    fprintf(stderr,
            "[corpus_analysis] %s: %zu entries, %llu semantic dupes, %zu/%zu dead ops, "
            "trim probes %zu (analysis) vs %zu (naive)\n",
            t.c_str(), r.corpus_entries, static_cast<unsigned long long>(r.semantic_dupes),
            r.dead_ops, r.corpus_ops, r.probe_execs_analysis, r.probe_execs_naive);
  }

  const std::string out_path = env::StringOr("NYX_BENCH_OUT", "BENCH_corpus_analysis.json");
  FILE* out = fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    fprintf(stderr, "[corpus_analysis] could not write %s\n", out_path.c_str());
    return 1;
  }
  fprintf(out, "{\n");
  fprintf(out, "  \"bench\": \"corpus_analysis\",\n");
  fprintf(out, "  \"fuzzer\": \"Nyx-Net-balanced+faults\",\n");
  fprintf(out, "  \"vtime_seconds\": %.1f,\n", vtime);
  fprintf(out, "  \"targets\": {\n");
  for (size_t i = 0; i < reports.size(); i++) {
    const TargetReport& r = reports[i];
    const double adds = static_cast<double>(r.semantic_dupes + r.corpus_entries);
    const double hit_rate = adds > 0 ? static_cast<double>(r.semantic_dupes) / adds : 0.0;
    const double dead_pct =
        r.corpus_ops > 0 ? 100.0 * static_cast<double>(r.dead_ops) /
                               static_cast<double>(r.corpus_ops)
                         : 0.0;
    fprintf(out, "    \"%s\": {\n", r.name.c_str());
    fprintf(out, "      \"corpus_entries\": %zu,\n", r.corpus_entries);
    fprintf(out, "      \"semantic_dupes_rejected\": %llu,\n",
            static_cast<unsigned long long>(r.semantic_dupes));
    fprintf(out, "      \"semantic_dedup_hit_rate\": %.4f,\n", hit_rate);
    fprintf(out, "      \"corpus_ops\": %zu,\n", r.corpus_ops);
    fprintf(out, "      \"provably_dead_ops\": %zu,\n", r.dead_ops);
    fprintf(out, "      \"dead_op_pct\": %.2f,\n", dead_pct);
    fprintf(out, "      \"corpus_bytes\": %zu,\n", r.corpus_bytes);
    fprintf(out, "      \"canonical_bytes\": %zu,\n", r.canonical_bytes);
    fprintf(out, "      \"trim\": {\n");
    fprintf(out, "        \"entries\": %zu,\n", r.trim_entries);
    fprintf(out, "        \"probe_execs_analysis\": %zu,\n", r.probe_execs_analysis);
    fprintf(out, "        \"probe_execs_naive\": %zu,\n", r.probe_execs_naive);
    fprintf(out, "        \"ops_before\": %zu,\n", r.trim_ops_before);
    fprintf(out, "        \"ops_after\": %zu,\n", r.trim_ops_after);
    fprintf(out, "        \"bytes_before\": %zu,\n", r.trim_bytes_before);
    fprintf(out, "        \"bytes_after\": %zu\n", r.trim_bytes_after);
    fprintf(out, "      }\n");
    fprintf(out, "    }%s\n", i + 1 < reports.size() ? "," : "");
  }
  fprintf(out, "  }\n");
  fprintf(out, "}\n");
  fclose(out);
  fprintf(stderr, "[corpus_analysis] wrote %s\n", out_path.c_str());
  return 0;
}
