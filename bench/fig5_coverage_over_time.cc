// Figures 5 and 7: median branch coverage over time for every fuzzer on the
// ProFuzzBench targets, emitted as CSV series (fuzzer,target,t_seconds,
// branches) — feed to any plotting tool.
//
// Figure 5 in the paper excludes AFL++/AFLnwe/AFLNet-no-state for
// readability; Figure 7 includes everything. This binary always emits all
// fuzzers (i.e. the Figure 7 data; Figure 5 is a column subset).
//
// Like the ProFuzzBench plots, the first sample is taken shortly after
// start, and the series begins after seed coverage — so curves do not start
// at 0. Default scale: NYX_RUNS=2 medians, NYX_VTIME=120 virtual seconds,
// NYX_FIG5_TARGETS (default: a 2-target subset; "all" for every target).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/env.h"
#include "src/common/stats.h"
#include "src/harness/campaign.h"
#include "src/harness/parallel.h"
#include "src/targets/registry.h"

namespace nyx {
namespace {

std::vector<std::string> TargetSelection() {
  if (env::StringOr("NYX_FIG5_TARGETS", "") == "all") {
    std::vector<std::string> all;
    for (const auto& reg : AllTargets()) {
      if (reg.in_profuzzbench) {
        all.push_back(reg.name);
      }
    }
    return all;
  }
  return {"lightftp", "kamailio"};
}

}  // namespace
}  // namespace nyx

int main() {
  using namespace nyx;
  const size_t runs = EvalRuns(2);
  const double vtime = EvalVtime(120);
  fprintf(stderr, "Figures 5/7 data: %zu-run median coverage over %.0f virtual seconds\n",
          runs, vtime);
  printf("fuzzer,target,t_vseconds,branches\n");

  const std::vector<FuzzerKind> fuzzers = {
      FuzzerKind::kAflnet,      FuzzerKind::kAflnetNoState, FuzzerKind::kAflnwe,
      FuzzerKind::kAflppDesock, FuzzerKind::kNyxNone,       FuzzerKind::kNyxBalanced,
      FuzzerKind::kNyxAggressive,
  };
  std::vector<std::string> labels;
  std::vector<CampaignSpec> configs;
  for (const std::string& target : TargetSelection()) {
    for (FuzzerKind f : fuzzers) {
      CampaignSpec cs;
      cs.target = target;
      cs.fuzzer = f;
      cs.limits.vtime_seconds = vtime;
      cs.limits.wall_seconds = 3.0;
      configs.push_back(cs);
      labels.push_back(std::string(FuzzerKindName(f)) + "," + target);
    }
  }
  fprintf(stderr, "[fig5] %zu campaigns on %zu jobs...\n", configs.size() * runs, EvalJobs());
  const std::vector<std::vector<CampaignResult>> grid = RunCampaignGrid(configs, runs);

  for (size_t c = 0; c < configs.size(); c++) {
    if (grid[c].empty()) {
      continue;  // n/a configuration
    }
    std::vector<TimeSeries> series;
    for (const auto& r : grid[c]) {
      series.push_back(r.coverage_over_time);
    }
    const TimeSeries median = TimeSeries::PointwiseMedian(series, vtime, vtime / 60.0);
    fputs(median.ToCsv(labels[c]).c_str(), stdout);
  }
  return 0;
}
