// Figures 5 and 7: median branch coverage over time for every fuzzer on the
// ProFuzzBench targets, emitted as CSV series (fuzzer,target,t_seconds,
// branches) — feed to any plotting tool.
//
// Figure 5 in the paper excludes AFL++/AFLnwe/AFLNet-no-state for
// readability; Figure 7 includes everything. This binary always emits all
// fuzzers (i.e. the Figure 7 data; Figure 5 is a column subset).
//
// Like the ProFuzzBench plots, the first sample is taken shortly after
// start, and the series begins after seed coverage — so curves do not start
// at 0. Default scale: NYX_RUNS=2 medians, NYX_VTIME=120 virtual seconds,
// NYX_FIG5_TARGETS (default: a 2-target subset; "all" for every target).
//
// A second pass runs the fault-injection ablation ("No Peer, no Cry"):
// Nyx-Net-balanced with and without FuzzerConfig::fault_injection on the
// same targets, summarized to BENCH_fault_ablation.json (override:
// NYX_BENCH_OUT) — the with/without coverage delta is the headline number.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/env.h"
#include "src/common/stats.h"
#include "src/harness/campaign.h"
#include "src/harness/parallel.h"
#include "src/targets/registry.h"

namespace nyx {
namespace {

std::vector<std::string> TargetSelection() {
  if (env::StringOr("NYX_FIG5_TARGETS", "") == "all") {
    std::vector<std::string> all;
    for (const auto& reg : AllTargets()) {
      if (reg.in_profuzzbench) {
        all.push_back(reg.name);
      }
    }
    return all;
  }
  return {"lightftp", "kamailio"};
}

}  // namespace
}  // namespace nyx

int main() {
  using namespace nyx;
  const size_t runs = EvalRuns(2);
  const double vtime = EvalVtime(120);
  fprintf(stderr, "Figures 5/7 data: %zu-run median coverage over %.0f virtual seconds\n",
          runs, vtime);
  printf("fuzzer,target,t_vseconds,branches\n");

  const std::vector<FuzzerKind> fuzzers = {
      FuzzerKind::kAflnet,      FuzzerKind::kAflnetNoState, FuzzerKind::kAflnwe,
      FuzzerKind::kAflppDesock, FuzzerKind::kNyxNone,       FuzzerKind::kNyxBalanced,
      FuzzerKind::kNyxAggressive,
  };
  std::vector<std::string> labels;
  std::vector<CampaignSpec> configs;
  for (const std::string& target : TargetSelection()) {
    for (FuzzerKind f : fuzzers) {
      CampaignSpec cs;
      cs.target = target;
      cs.fuzzer = f;
      cs.limits.vtime_seconds = vtime;
      cs.limits.wall_seconds = 3.0;
      configs.push_back(cs);
      labels.push_back(std::string(FuzzerKindName(f)) + "," + target);
    }
  }
  fprintf(stderr, "[fig5] %zu campaigns on %zu jobs...\n", configs.size() * runs, EvalJobs());
  const std::vector<std::vector<CampaignResult>> grid = RunCampaignGrid(configs, runs);

  for (size_t c = 0; c < configs.size(); c++) {
    if (grid[c].empty()) {
      continue;  // n/a configuration
    }
    std::vector<TimeSeries> series;
    for (const auto& r : grid[c]) {
      series.push_back(r.coverage_over_time);
    }
    const TimeSeries median = TimeSeries::PointwiseMedian(series, vtime, vtime / 60.0);
    fputs(median.ToCsv(labels[c]).c_str(), stdout);
  }

  // ---- Fault-injection ablation ----
  // Same targets, Nyx-Net-balanced only, fault mutations off vs on. The
  // fault dimension exists to reach error-handling code plain traffic never
  // exercises, so the expectation is coverage(on) >= coverage(off).
  const std::vector<std::string> ablation_targets = TargetSelection();
  std::vector<CampaignSpec> fconfigs;
  for (const std::string& target : ablation_targets) {
    for (bool faults : {false, true}) {
      CampaignSpec cs;
      cs.target = target;
      cs.fuzzer = FuzzerKind::kNyxBalanced;
      cs.limits.vtime_seconds = vtime;
      cs.limits.wall_seconds = 3.0;
      cs.fault_injection = faults;
      fconfigs.push_back(cs);
    }
  }
  fprintf(stderr, "[fig5] fault ablation: %zu campaigns...\n", fconfigs.size() * runs);
  const std::vector<std::vector<CampaignResult>> fgrid = RunCampaignGrid(fconfigs, runs);

  auto median_branches = [](const std::vector<CampaignResult>& results) {
    std::vector<double> cov;
    for (const auto& r : results) {
      cov.push_back(static_cast<double>(r.branch_coverage));
    }
    return Median(cov);
  };

  const std::string out_path = env::StringOr("NYX_BENCH_OUT", "BENCH_fault_ablation.json");
  FILE* out = fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    fprintf(stderr, "[fig5] could not write %s\n", out_path.c_str());
    return 1;
  }
  fprintf(out, "{\n");
  fprintf(out, "  \"bench\": \"fig5_fault_ablation\",\n");
  fprintf(out, "  \"fuzzer\": \"Nyx-Net-balanced\",\n");
  fprintf(out, "  \"runs\": %zu,\n", runs);
  fprintf(out, "  \"vtime_seconds\": %.1f,\n", vtime);
  fprintf(out, "  \"targets\": {\n");
  for (size_t t = 0; t < ablation_targets.size(); t++) {
    const std::vector<CampaignResult>& off = fgrid[t * 2];
    const std::vector<CampaignResult>& on = fgrid[t * 2 + 1];
    const double cov_off = off.empty() ? 0.0 : median_branches(off);
    const double cov_on = on.empty() ? 0.0 : median_branches(on);
    uint64_t faults = 0;
    uint64_t faulted_bytes = 0;
    for (const auto& r : on) {
      faults += r.faults_injected;
      faulted_bytes += r.faulted_bytes;
    }
    fprintf(out,
            "    \"%s\": {\"branches_no_faults\": %.1f, \"branches_with_faults\": %.1f, "
            "\"delta\": %.1f, \"faults_injected\": %llu, \"faulted_bytes\": %llu}%s\n",
            ablation_targets[t].c_str(), cov_off, cov_on, cov_on - cov_off,
            static_cast<unsigned long long>(faults),
            static_cast<unsigned long long>(faulted_bytes),
            t + 1 < ablation_targets.size() ? "," : "");
    fprintf(stderr, "[fig5] %s: %.0f branches without faults, %.0f with (delta %+.0f)\n",
            ablation_targets[t].c_str(), cov_off, cov_on, cov_on - cov_off);
  }
  fprintf(out, "  }\n");
  fprintf(out, "}\n");
  fclose(out);
  fprintf(stderr, "[fig5] wrote %s\n", out_path.c_str());
  return 0;
}
