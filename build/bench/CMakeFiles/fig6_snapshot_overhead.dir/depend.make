# Empty dependencies file for fig6_snapshot_overhead.
# This may be replaced when dependencies are built.
