file(REMOVE_RECURSE
  "CMakeFiles/table4_mario.dir/table4_mario.cc.o"
  "CMakeFiles/table4_mario.dir/table4_mario.cc.o.d"
  "table4_mario"
  "table4_mario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_mario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
