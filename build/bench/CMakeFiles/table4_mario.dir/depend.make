# Empty dependencies file for table4_mario.
# This may be replaced when dependencies are built.
