# Empty dependencies file for fig5_coverage_over_time.
# This may be replaced when dependencies are built.
