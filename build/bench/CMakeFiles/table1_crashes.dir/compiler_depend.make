# Empty compiler generated dependencies file for table1_crashes.
# This may be replaced when dependencies are built.
