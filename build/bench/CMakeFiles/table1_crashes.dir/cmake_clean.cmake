file(REMOVE_RECURSE
  "CMakeFiles/table1_crashes.dir/table1_crashes.cc.o"
  "CMakeFiles/table1_crashes.dir/table1_crashes.cc.o.d"
  "table1_crashes"
  "table1_crashes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_crashes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
