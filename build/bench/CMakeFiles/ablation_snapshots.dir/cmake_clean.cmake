file(REMOVE_RECURSE
  "CMakeFiles/ablation_snapshots.dir/ablation_snapshots.cc.o"
  "CMakeFiles/ablation_snapshots.dir/ablation_snapshots.cc.o.d"
  "ablation_snapshots"
  "ablation_snapshots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_snapshots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
