# Empty dependencies file for ablation_snapshots.
# This may be replaced when dependencies are built.
