file(REMOVE_RECURSE
  "CMakeFiles/table5_time_to_cov.dir/table5_time_to_cov.cc.o"
  "CMakeFiles/table5_time_to_cov.dir/table5_time_to_cov.cc.o.d"
  "table5_time_to_cov"
  "table5_time_to_cov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_time_to_cov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
