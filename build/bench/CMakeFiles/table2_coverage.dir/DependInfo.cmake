
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table2_coverage.cc" "bench/CMakeFiles/table2_coverage.dir/table2_coverage.cc.o" "gcc" "bench/CMakeFiles/table2_coverage.dir/table2_coverage.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/nyx_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/nyx_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/targets/CMakeFiles/nyx_targets.dir/DependInfo.cmake"
  "/root/repo/build/src/mario/CMakeFiles/nyx_mario.dir/DependInfo.cmake"
  "/root/repo/build/src/fuzz/CMakeFiles/nyx_fuzz.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/nyx_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/netemu/CMakeFiles/nyx_netemu.dir/DependInfo.cmake"
  "/root/repo/build/src/spec/CMakeFiles/nyx_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nyx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
