# Empty dependencies file for workdir_test.
# This may be replaced when dependencies are built.
