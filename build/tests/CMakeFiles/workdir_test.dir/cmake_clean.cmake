file(REMOVE_RECURSE
  "CMakeFiles/workdir_test.dir/workdir_test.cc.o"
  "CMakeFiles/workdir_test.dir/workdir_test.cc.o.d"
  "workdir_test"
  "workdir_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workdir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
