file(REMOVE_RECURSE
  "CMakeFiles/targets_test.dir/targets_test.cc.o"
  "CMakeFiles/targets_test.dir/targets_test.cc.o.d"
  "targets_test"
  "targets_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/targets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
