file(REMOVE_RECURSE
  "CMakeFiles/agamotto_test.dir/agamotto_test.cc.o"
  "CMakeFiles/agamotto_test.dir/agamotto_test.cc.o.d"
  "agamotto_test"
  "agamotto_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agamotto_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
