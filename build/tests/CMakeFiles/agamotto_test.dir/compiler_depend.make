# Empty compiler generated dependencies file for agamotto_test.
# This may be replaced when dependencies are built.
