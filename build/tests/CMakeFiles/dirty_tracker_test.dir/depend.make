# Empty dependencies file for dirty_tracker_test.
# This may be replaced when dependencies are built.
