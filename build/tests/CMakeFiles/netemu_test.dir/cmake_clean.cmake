file(REMOVE_RECURSE
  "CMakeFiles/netemu_test.dir/netemu_test.cc.o"
  "CMakeFiles/netemu_test.dir/netemu_test.cc.o.d"
  "netemu_test"
  "netemu_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netemu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
