# Empty compiler generated dependencies file for mario_test.
# This may be replaced when dependencies are built.
