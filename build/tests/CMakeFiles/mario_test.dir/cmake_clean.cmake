file(REMOVE_RECURSE
  "CMakeFiles/mario_test.dir/mario_test.cc.o"
  "CMakeFiles/mario_test.dir/mario_test.cc.o.d"
  "mario_test"
  "mario_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mario_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
