# Empty compiler generated dependencies file for netemu_property_test.
# This may be replaced when dependencies are built.
