file(REMOVE_RECURSE
  "CMakeFiles/netemu_property_test.dir/netemu_property_test.cc.o"
  "CMakeFiles/netemu_property_test.dir/netemu_property_test.cc.o.d"
  "netemu_property_test"
  "netemu_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netemu_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
