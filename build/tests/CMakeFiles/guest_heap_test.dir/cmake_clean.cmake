file(REMOVE_RECURSE
  "CMakeFiles/guest_heap_test.dir/guest_heap_test.cc.o"
  "CMakeFiles/guest_heap_test.dir/guest_heap_test.cc.o.d"
  "guest_heap_test"
  "guest_heap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guest_heap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
