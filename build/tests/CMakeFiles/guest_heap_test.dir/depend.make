# Empty dependencies file for guest_heap_test.
# This may be replaced when dependencies are built.
