# Empty dependencies file for device_state_test.
# This may be replaced when dependencies are built.
