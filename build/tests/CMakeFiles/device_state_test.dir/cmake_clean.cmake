file(REMOVE_RECURSE
  "CMakeFiles/device_state_test.dir/device_state_test.cc.o"
  "CMakeFiles/device_state_test.dir/device_state_test.cc.o.d"
  "device_state_test"
  "device_state_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
