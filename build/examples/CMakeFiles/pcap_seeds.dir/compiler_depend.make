# Empty compiler generated dependencies file for pcap_seeds.
# This may be replaced when dependencies are built.
