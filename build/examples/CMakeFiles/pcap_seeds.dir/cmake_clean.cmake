file(REMOVE_RECURSE
  "CMakeFiles/pcap_seeds.dir/pcap_seeds.cpp.o"
  "CMakeFiles/pcap_seeds.dir/pcap_seeds.cpp.o.d"
  "pcap_seeds"
  "pcap_seeds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcap_seeds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
