file(REMOVE_RECURSE
  "CMakeFiles/mario_speedrun.dir/mario_speedrun.cpp.o"
  "CMakeFiles/mario_speedrun.dir/mario_speedrun.cpp.o.d"
  "mario_speedrun"
  "mario_speedrun.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mario_speedrun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
