# Empty dependencies file for mario_speedrun.
# This may be replaced when dependencies are built.
