# Empty dependencies file for firefox_ipc_fuzz.
# This may be replaced when dependencies are built.
