file(REMOVE_RECURSE
  "CMakeFiles/firefox_ipc_fuzz.dir/firefox_ipc_fuzz.cpp.o"
  "CMakeFiles/firefox_ipc_fuzz.dir/firefox_ipc_fuzz.cpp.o.d"
  "firefox_ipc_fuzz"
  "firefox_ipc_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firefox_ipc_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
