
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/block_device.cc" "src/vm/CMakeFiles/nyx_vm.dir/block_device.cc.o" "gcc" "src/vm/CMakeFiles/nyx_vm.dir/block_device.cc.o.d"
  "/root/repo/src/vm/device_state.cc" "src/vm/CMakeFiles/nyx_vm.dir/device_state.cc.o" "gcc" "src/vm/CMakeFiles/nyx_vm.dir/device_state.cc.o.d"
  "/root/repo/src/vm/dirty_tracker.cc" "src/vm/CMakeFiles/nyx_vm.dir/dirty_tracker.cc.o" "gcc" "src/vm/CMakeFiles/nyx_vm.dir/dirty_tracker.cc.o.d"
  "/root/repo/src/vm/guest_memory.cc" "src/vm/CMakeFiles/nyx_vm.dir/guest_memory.cc.o" "gcc" "src/vm/CMakeFiles/nyx_vm.dir/guest_memory.cc.o.d"
  "/root/repo/src/vm/snapshot.cc" "src/vm/CMakeFiles/nyx_vm.dir/snapshot.cc.o" "gcc" "src/vm/CMakeFiles/nyx_vm.dir/snapshot.cc.o.d"
  "/root/repo/src/vm/vm.cc" "src/vm/CMakeFiles/nyx_vm.dir/vm.cc.o" "gcc" "src/vm/CMakeFiles/nyx_vm.dir/vm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nyx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
