file(REMOVE_RECURSE
  "CMakeFiles/nyx_vm.dir/block_device.cc.o"
  "CMakeFiles/nyx_vm.dir/block_device.cc.o.d"
  "CMakeFiles/nyx_vm.dir/device_state.cc.o"
  "CMakeFiles/nyx_vm.dir/device_state.cc.o.d"
  "CMakeFiles/nyx_vm.dir/dirty_tracker.cc.o"
  "CMakeFiles/nyx_vm.dir/dirty_tracker.cc.o.d"
  "CMakeFiles/nyx_vm.dir/guest_memory.cc.o"
  "CMakeFiles/nyx_vm.dir/guest_memory.cc.o.d"
  "CMakeFiles/nyx_vm.dir/snapshot.cc.o"
  "CMakeFiles/nyx_vm.dir/snapshot.cc.o.d"
  "CMakeFiles/nyx_vm.dir/vm.cc.o"
  "CMakeFiles/nyx_vm.dir/vm.cc.o.d"
  "libnyx_vm.a"
  "libnyx_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nyx_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
