# Empty dependencies file for nyx_vm.
# This may be replaced when dependencies are built.
