file(REMOVE_RECURSE
  "libnyx_vm.a"
)
