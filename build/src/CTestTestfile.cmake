# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("vm")
subdirs("agamotto")
subdirs("netemu")
subdirs("spec")
subdirs("fuzz")
subdirs("targets")
subdirs("mario")
subdirs("baselines")
subdirs("harness")
subdirs("tools")
