file(REMOVE_RECURSE
  "libnyx_baselines.a"
)
