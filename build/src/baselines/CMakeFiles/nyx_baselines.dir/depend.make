# Empty dependencies file for nyx_baselines.
# This may be replaced when dependencies are built.
