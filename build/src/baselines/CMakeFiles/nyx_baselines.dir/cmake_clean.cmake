file(REMOVE_RECURSE
  "CMakeFiles/nyx_baselines.dir/baseline.cc.o"
  "CMakeFiles/nyx_baselines.dir/baseline.cc.o.d"
  "libnyx_baselines.a"
  "libnyx_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nyx_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
