file(REMOVE_RECURSE
  "CMakeFiles/nyx_agamotto.dir/agamotto.cc.o"
  "CMakeFiles/nyx_agamotto.dir/agamotto.cc.o.d"
  "libnyx_agamotto.a"
  "libnyx_agamotto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nyx_agamotto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
