# Empty dependencies file for nyx_agamotto.
# This may be replaced when dependencies are built.
