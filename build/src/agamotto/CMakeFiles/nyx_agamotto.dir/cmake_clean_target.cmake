file(REMOVE_RECURSE
  "libnyx_agamotto.a"
)
