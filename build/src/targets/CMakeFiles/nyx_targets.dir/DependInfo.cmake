
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/targets/bftpd.cc" "src/targets/CMakeFiles/nyx_targets.dir/bftpd.cc.o" "gcc" "src/targets/CMakeFiles/nyx_targets.dir/bftpd.cc.o.d"
  "/root/repo/src/targets/dcmtk.cc" "src/targets/CMakeFiles/nyx_targets.dir/dcmtk.cc.o" "gcc" "src/targets/CMakeFiles/nyx_targets.dir/dcmtk.cc.o.d"
  "/root/repo/src/targets/dnsmasq.cc" "src/targets/CMakeFiles/nyx_targets.dir/dnsmasq.cc.o" "gcc" "src/targets/CMakeFiles/nyx_targets.dir/dnsmasq.cc.o.d"
  "/root/repo/src/targets/exim.cc" "src/targets/CMakeFiles/nyx_targets.dir/exim.cc.o" "gcc" "src/targets/CMakeFiles/nyx_targets.dir/exim.cc.o.d"
  "/root/repo/src/targets/firefox_ipc.cc" "src/targets/CMakeFiles/nyx_targets.dir/firefox_ipc.cc.o" "gcc" "src/targets/CMakeFiles/nyx_targets.dir/firefox_ipc.cc.o.d"
  "/root/repo/src/targets/forked_daapd.cc" "src/targets/CMakeFiles/nyx_targets.dir/forked_daapd.cc.o" "gcc" "src/targets/CMakeFiles/nyx_targets.dir/forked_daapd.cc.o.d"
  "/root/repo/src/targets/kamailio.cc" "src/targets/CMakeFiles/nyx_targets.dir/kamailio.cc.o" "gcc" "src/targets/CMakeFiles/nyx_targets.dir/kamailio.cc.o.d"
  "/root/repo/src/targets/lightftp.cc" "src/targets/CMakeFiles/nyx_targets.dir/lightftp.cc.o" "gcc" "src/targets/CMakeFiles/nyx_targets.dir/lightftp.cc.o.d"
  "/root/repo/src/targets/lighttpd.cc" "src/targets/CMakeFiles/nyx_targets.dir/lighttpd.cc.o" "gcc" "src/targets/CMakeFiles/nyx_targets.dir/lighttpd.cc.o.d"
  "/root/repo/src/targets/live555.cc" "src/targets/CMakeFiles/nyx_targets.dir/live555.cc.o" "gcc" "src/targets/CMakeFiles/nyx_targets.dir/live555.cc.o.d"
  "/root/repo/src/targets/mysql_client.cc" "src/targets/CMakeFiles/nyx_targets.dir/mysql_client.cc.o" "gcc" "src/targets/CMakeFiles/nyx_targets.dir/mysql_client.cc.o.d"
  "/root/repo/src/targets/openssh.cc" "src/targets/CMakeFiles/nyx_targets.dir/openssh.cc.o" "gcc" "src/targets/CMakeFiles/nyx_targets.dir/openssh.cc.o.d"
  "/root/repo/src/targets/openssl.cc" "src/targets/CMakeFiles/nyx_targets.dir/openssl.cc.o" "gcc" "src/targets/CMakeFiles/nyx_targets.dir/openssl.cc.o.d"
  "/root/repo/src/targets/proftpd.cc" "src/targets/CMakeFiles/nyx_targets.dir/proftpd.cc.o" "gcc" "src/targets/CMakeFiles/nyx_targets.dir/proftpd.cc.o.d"
  "/root/repo/src/targets/pureftpd.cc" "src/targets/CMakeFiles/nyx_targets.dir/pureftpd.cc.o" "gcc" "src/targets/CMakeFiles/nyx_targets.dir/pureftpd.cc.o.d"
  "/root/repo/src/targets/registry.cc" "src/targets/CMakeFiles/nyx_targets.dir/registry.cc.o" "gcc" "src/targets/CMakeFiles/nyx_targets.dir/registry.cc.o.d"
  "/root/repo/src/targets/tinydtls.cc" "src/targets/CMakeFiles/nyx_targets.dir/tinydtls.cc.o" "gcc" "src/targets/CMakeFiles/nyx_targets.dir/tinydtls.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fuzz/CMakeFiles/nyx_fuzz.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/nyx_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/netemu/CMakeFiles/nyx_netemu.dir/DependInfo.cmake"
  "/root/repo/build/src/spec/CMakeFiles/nyx_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nyx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
