file(REMOVE_RECURSE
  "libnyx_targets.a"
)
