# Empty compiler generated dependencies file for nyx_targets.
# This may be replaced when dependencies are built.
