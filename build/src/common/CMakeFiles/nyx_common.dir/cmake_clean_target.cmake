file(REMOVE_RECURSE
  "libnyx_common.a"
)
