file(REMOVE_RECURSE
  "CMakeFiles/nyx_common.dir/log.cc.o"
  "CMakeFiles/nyx_common.dir/log.cc.o.d"
  "CMakeFiles/nyx_common.dir/stats.cc.o"
  "CMakeFiles/nyx_common.dir/stats.cc.o.d"
  "libnyx_common.a"
  "libnyx_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nyx_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
