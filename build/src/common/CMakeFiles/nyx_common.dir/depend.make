# Empty dependencies file for nyx_common.
# This may be replaced when dependencies are built.
