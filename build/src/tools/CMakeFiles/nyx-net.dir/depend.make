# Empty dependencies file for nyx-net.
# This may be replaced when dependencies are built.
