file(REMOVE_RECURSE
  "CMakeFiles/nyx-net.dir/nyx_net_cli.cc.o"
  "CMakeFiles/nyx-net.dir/nyx_net_cli.cc.o.d"
  "nyx-net"
  "nyx-net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nyx-net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
