file(REMOVE_RECURSE
  "CMakeFiles/nyx_spec.dir/builder.cc.o"
  "CMakeFiles/nyx_spec.dir/builder.cc.o.d"
  "CMakeFiles/nyx_spec.dir/pcap.cc.o"
  "CMakeFiles/nyx_spec.dir/pcap.cc.o.d"
  "CMakeFiles/nyx_spec.dir/program.cc.o"
  "CMakeFiles/nyx_spec.dir/program.cc.o.d"
  "CMakeFiles/nyx_spec.dir/spec.cc.o"
  "CMakeFiles/nyx_spec.dir/spec.cc.o.d"
  "libnyx_spec.a"
  "libnyx_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nyx_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
