file(REMOVE_RECURSE
  "libnyx_spec.a"
)
