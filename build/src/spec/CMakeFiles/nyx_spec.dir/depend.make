# Empty dependencies file for nyx_spec.
# This may be replaced when dependencies are built.
