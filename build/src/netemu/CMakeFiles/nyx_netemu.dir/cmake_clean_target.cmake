file(REMOVE_RECURSE
  "libnyx_netemu.a"
)
