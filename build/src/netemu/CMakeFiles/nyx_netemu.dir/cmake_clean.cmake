file(REMOVE_RECURSE
  "CMakeFiles/nyx_netemu.dir/netemu.cc.o"
  "CMakeFiles/nyx_netemu.dir/netemu.cc.o.d"
  "libnyx_netemu.a"
  "libnyx_netemu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nyx_netemu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
