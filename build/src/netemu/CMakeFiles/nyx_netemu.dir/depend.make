# Empty dependencies file for nyx_netemu.
# This may be replaced when dependencies are built.
