# Empty compiler generated dependencies file for nyx_harness.
# This may be replaced when dependencies are built.
