file(REMOVE_RECURSE
  "libnyx_harness.a"
)
