file(REMOVE_RECURSE
  "CMakeFiles/nyx_harness.dir/campaign.cc.o"
  "CMakeFiles/nyx_harness.dir/campaign.cc.o.d"
  "CMakeFiles/nyx_harness.dir/table.cc.o"
  "CMakeFiles/nyx_harness.dir/table.cc.o.d"
  "libnyx_harness.a"
  "libnyx_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nyx_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
