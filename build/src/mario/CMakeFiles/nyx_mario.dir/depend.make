# Empty dependencies file for nyx_mario.
# This may be replaced when dependencies are built.
