file(REMOVE_RECURSE
  "CMakeFiles/nyx_mario.dir/engine.cc.o"
  "CMakeFiles/nyx_mario.dir/engine.cc.o.d"
  "CMakeFiles/nyx_mario.dir/level.cc.o"
  "CMakeFiles/nyx_mario.dir/level.cc.o.d"
  "CMakeFiles/nyx_mario.dir/mario_target.cc.o"
  "CMakeFiles/nyx_mario.dir/mario_target.cc.o.d"
  "libnyx_mario.a"
  "libnyx_mario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nyx_mario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
