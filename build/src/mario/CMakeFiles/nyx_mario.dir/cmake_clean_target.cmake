file(REMOVE_RECURSE
  "libnyx_mario.a"
)
