file(REMOVE_RECURSE
  "CMakeFiles/nyx_fuzz.dir/corpus.cc.o"
  "CMakeFiles/nyx_fuzz.dir/corpus.cc.o.d"
  "CMakeFiles/nyx_fuzz.dir/coverage.cc.o"
  "CMakeFiles/nyx_fuzz.dir/coverage.cc.o.d"
  "CMakeFiles/nyx_fuzz.dir/engine.cc.o"
  "CMakeFiles/nyx_fuzz.dir/engine.cc.o.d"
  "CMakeFiles/nyx_fuzz.dir/fuzzer.cc.o"
  "CMakeFiles/nyx_fuzz.dir/fuzzer.cc.o.d"
  "CMakeFiles/nyx_fuzz.dir/guest.cc.o"
  "CMakeFiles/nyx_fuzz.dir/guest.cc.o.d"
  "CMakeFiles/nyx_fuzz.dir/mutator.cc.o"
  "CMakeFiles/nyx_fuzz.dir/mutator.cc.o.d"
  "CMakeFiles/nyx_fuzz.dir/policy.cc.o"
  "CMakeFiles/nyx_fuzz.dir/policy.cc.o.d"
  "CMakeFiles/nyx_fuzz.dir/workdir.cc.o"
  "CMakeFiles/nyx_fuzz.dir/workdir.cc.o.d"
  "libnyx_fuzz.a"
  "libnyx_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nyx_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
