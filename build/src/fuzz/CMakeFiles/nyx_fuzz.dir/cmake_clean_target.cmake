file(REMOVE_RECURSE
  "libnyx_fuzz.a"
)
