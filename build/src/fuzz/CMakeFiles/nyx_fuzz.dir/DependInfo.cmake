
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fuzz/corpus.cc" "src/fuzz/CMakeFiles/nyx_fuzz.dir/corpus.cc.o" "gcc" "src/fuzz/CMakeFiles/nyx_fuzz.dir/corpus.cc.o.d"
  "/root/repo/src/fuzz/coverage.cc" "src/fuzz/CMakeFiles/nyx_fuzz.dir/coverage.cc.o" "gcc" "src/fuzz/CMakeFiles/nyx_fuzz.dir/coverage.cc.o.d"
  "/root/repo/src/fuzz/engine.cc" "src/fuzz/CMakeFiles/nyx_fuzz.dir/engine.cc.o" "gcc" "src/fuzz/CMakeFiles/nyx_fuzz.dir/engine.cc.o.d"
  "/root/repo/src/fuzz/fuzzer.cc" "src/fuzz/CMakeFiles/nyx_fuzz.dir/fuzzer.cc.o" "gcc" "src/fuzz/CMakeFiles/nyx_fuzz.dir/fuzzer.cc.o.d"
  "/root/repo/src/fuzz/guest.cc" "src/fuzz/CMakeFiles/nyx_fuzz.dir/guest.cc.o" "gcc" "src/fuzz/CMakeFiles/nyx_fuzz.dir/guest.cc.o.d"
  "/root/repo/src/fuzz/mutator.cc" "src/fuzz/CMakeFiles/nyx_fuzz.dir/mutator.cc.o" "gcc" "src/fuzz/CMakeFiles/nyx_fuzz.dir/mutator.cc.o.d"
  "/root/repo/src/fuzz/policy.cc" "src/fuzz/CMakeFiles/nyx_fuzz.dir/policy.cc.o" "gcc" "src/fuzz/CMakeFiles/nyx_fuzz.dir/policy.cc.o.d"
  "/root/repo/src/fuzz/workdir.cc" "src/fuzz/CMakeFiles/nyx_fuzz.dir/workdir.cc.o" "gcc" "src/fuzz/CMakeFiles/nyx_fuzz.dir/workdir.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/nyx_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/netemu/CMakeFiles/nyx_netemu.dir/DependInfo.cmake"
  "/root/repo/build/src/spec/CMakeFiles/nyx_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nyx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
