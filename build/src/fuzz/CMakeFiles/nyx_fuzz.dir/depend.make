# Empty dependencies file for nyx_fuzz.
# This may be replaced when dependencies are built.
