// Unit tests for the snapshot-state inventory (src/vm/state_registry.h):
// capture/restore framing, attribution of guest offsets to named regions,
// ephemeral verification, and rejection of stale or corrupt aux blobs.

#include <gtest/gtest.h>

#include "src/vm/state_registry.h"

namespace nyx {
namespace {

SnapshotStateRegistry::HostState CounterState(const char* name, int* counter) {
  SnapshotStateRegistry::HostState st;
  st.name = name;
  st.owner = "tests";
  st.capture = [counter] {
    Bytes b;
    PutLe32(b, static_cast<uint32_t>(*counter));
    return b;
  };
  st.restore = [counter](const Bytes& b) {
    if (b.size() != 4) {
      return false;
    }
    size_t off = 0;
    *counter = static_cast<int>(ReadLe32(b, off));
    return true;
  };
  return st;
}

TEST(StateRegistryTest, CaptureRestoreRoundTrips) {
  SnapshotStateRegistry reg;
  int a = 7;
  int b = 42;
  reg.RegisterHostState(CounterState("test.a", &a));
  reg.RegisterHostState(CounterState("test.b", &b));

  const Bytes blob = reg.CaptureAll();
  a = 0;
  b = 0;
  ASSERT_TRUE(reg.RestoreAll(blob));
  EXPECT_EQ(a, 7);
  EXPECT_EQ(b, 42);
}

TEST(StateRegistryTest, EphemeralEntriesAreNotCaptured) {
  SnapshotStateRegistry reg;
  int a = 1;
  reg.RegisterHostState(CounterState("test.a", &a));
  reg.DeclareEphemeral("test.scratch", "tests");
  EXPECT_EQ(reg.snapshot_state_count(), 1u);
  EXPECT_EQ(SnapshotStateRegistry::EntryHashes(reg.CaptureAll()).size(), 1u);
}

TEST(StateRegistryTest, RestoreRejectsCorruptBlobs) {
  SnapshotStateRegistry reg;
  int a = 5;
  reg.RegisterHostState(CounterState("test.a", &a));
  Bytes blob = reg.CaptureAll();

  EXPECT_FALSE(reg.RestoreAll(Bytes{}));          // empty
  EXPECT_FALSE(reg.RestoreAll(Bytes{1, 2, 3}));   // garbage magic
  Bytes truncated(blob.begin(), blob.end() - 2);  // framing cut short
  EXPECT_FALSE(reg.RestoreAll(truncated));
  Bytes padded = blob;
  padded.push_back(0);  // trailing junk
  EXPECT_FALSE(reg.RestoreAll(padded));
  EXPECT_TRUE(reg.RestoreAll(blob));  // pristine blob still fine
  EXPECT_EQ(a, 5);
}

TEST(StateRegistryTest, RestoreRejectsBlobMissingAnEntry) {
  // A blob captured before a registration was added must not restore: the
  // unlisted entry would silently keep its current (wrong) value.
  SnapshotStateRegistry reg;
  int a = 1;
  reg.RegisterHostState(CounterState("test.a", &a));
  const Bytes old_blob = reg.CaptureAll();

  int b = 2;
  reg.RegisterHostState(CounterState("test.b", &b));
  EXPECT_FALSE(reg.RestoreAll(old_blob));
  EXPECT_TRUE(reg.RestoreAll(reg.CaptureAll()));
}

TEST(StateRegistryTest, RestoreRejectsUnknownEntryName) {
  SnapshotStateRegistry donor;
  int x = 9;
  donor.RegisterHostState(CounterState("donor.only", &x));
  const Bytes blob = donor.CaptureAll();

  SnapshotStateRegistry reg;
  int a = 1;
  reg.RegisterHostState(CounterState("test.a", &a));
  EXPECT_FALSE(reg.RestoreAll(blob));
}

TEST(StateRegistryTest, RestoreHookFailurePropagates) {
  SnapshotStateRegistry reg;
  SnapshotStateRegistry::HostState st;
  st.name = "test.picky";
  st.owner = "tests";
  st.capture = [] { return Bytes{1, 2, 3, 4, 5}; };  // 5 bytes...
  st.restore = [](const Bytes& b) { return b.size() == 4; };  // ...wants 4
  reg.RegisterHostState(std::move(st));
  EXPECT_FALSE(reg.RestoreAll(reg.CaptureAll()));
}

TEST(StateRegistryTest, GuestOwnerAttributesOffsets) {
  SnapshotStateRegistry reg;
  reg.RegisterGuestRegion("low", 0, 4096);
  reg.RegisterGuestRegion("high", 8192, 4096);
  EXPECT_EQ(reg.GuestOwner(0), "low");
  EXPECT_EQ(reg.GuestOwner(4095), "low");
  EXPECT_EQ(reg.GuestOwner(8192), "high");
  // The gap between regions and anything past the end are unregistered.
  EXPECT_EQ(reg.GuestOwner(4096), SnapshotStateRegistry::kUnregistered);
  EXPECT_EQ(reg.GuestOwner(1 << 20), SnapshotStateRegistry::kUnregistered);
}

TEST(StateRegistryTest, EntryHashesChangeWithContent) {
  SnapshotStateRegistry reg;
  int a = 1;
  reg.RegisterHostState(CounterState("test.a", &a));
  const auto h1 = SnapshotStateRegistry::EntryHashes(reg.CaptureAll());
  a = 2;
  const auto h2 = SnapshotStateRegistry::EntryHashes(reg.CaptureAll());
  ASSERT_EQ(h1.size(), 1u);
  ASSERT_EQ(h2.size(), 1u);
  EXPECT_EQ(h1[0].first, "test.a");
  EXPECT_NE(h1[0].second, h2[0].second);
}

TEST(StateRegistryTest, CheckEphemeralRunsVerifyHooks) {
  SnapshotStateRegistry reg;
  bool idle = true;
  reg.DeclareEphemeral("test.guard", "tests", [&idle] { return idle; });
  reg.DeclareEphemeral("test.unverified", "tests");  // no hook: never fails
  EXPECT_TRUE(reg.CheckEphemeral().empty());
  idle = false;
  const auto failed = reg.CheckEphemeral();
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_EQ(failed[0], "test.guard");
}

}  // namespace
}  // namespace nyx
