// Tests for the cross-restore determinism auditor (src/fuzz/audit.h).
//
// Positive direction: every registered target, under every snapshot policy,
// must replay divergence-free — the registry-built aux blob plus the VM
// restore really does bring back all state. Negative direction: a target
// that deliberately leaks mutable host-side state (the contract violation
// the auditor exists to catch) must be flagged, with the divergence
// attributed to UNREGISTERED (behavioural-only leak) or to the owning guest
// region (leak written into guest memory).

#include <gtest/gtest.h>

#include <cstdio>

#include "src/common/telemetry.h"
#include "src/common/trace.h"
#include "src/fuzz/fuzzer.h"
#include "src/mario/mario_target.h"
#include "src/spec/builder.h"
#include "src/targets/registry.h"

namespace nyx {
namespace {

EngineConfig AuditedConfig() {
  EngineConfig cfg;
  cfg.vm.mem_pages = 256;
  cfg.vm.disk_sectors = 256;
  cfg.audit = true;
  return cfg;
}

// Short audited campaign: enough executions to exercise root restores,
// incremental creation and reuse under the policy, at tripled per-exec cost.
CampaignLimits ShortLimits() {
  CampaignLimits limits;
  limits.vtime_seconds = 1.0;
  limits.max_execs = 25;
  limits.wall_seconds = 60.0;
  return limits;
}

TEST(SnapshotAuditTest, AllTargetsReplayDivergenceFree) {
  for (const TargetRegistration& reg : AllTargets()) {
    const Spec spec = reg.make_spec();
    for (PolicyMode policy :
         {PolicyMode::kNone, PolicyMode::kBalanced, PolicyMode::kAggressive}) {
      FuzzerConfig fcfg;
      fcfg.policy = policy;
      NyxFuzzer fuzzer(AuditedConfig(), reg.factory, spec, fcfg);
      for (const Program& s : reg.make_seeds(spec)) {
        fuzzer.AddSeed(s);
      }
      CampaignResult result = fuzzer.Run(ShortLimits());
      EXPECT_GT(result.pages_audited, 0u) << reg.name;
      EXPECT_EQ(result.audit_divergences, 0u)
          << reg.name << " policy " << static_cast<int>(policy) << ": "
          << (fuzzer.engine().auditor()->divergences().empty()
                  ? std::string("?")
                  : fuzzer.engine().auditor()->divergences()[0].source + "/" +
                        fuzzer.engine().auditor()->divergences()[0].owner);
    }
  }
}

TEST(SnapshotAuditTest, MarioReplaysDivergenceFree) {
  const Spec spec = Spec::GenericNetwork();
  const LevelDef& lv = AllLevels()[0];
  FuzzerConfig fcfg;
  fcfg.policy = PolicyMode::kBalanced;
  NyxFuzzer fuzzer(
      AuditedConfig(), [&lv] { return MakeMarioTarget(lv.name); }, spec, fcfg);
  fuzzer.AddSeed(MarioSeed(spec, lv, 32));
  CampaignResult result = fuzzer.Run(ShortLimits());
  EXPECT_GT(result.pages_audited, 0u);
  EXPECT_EQ(result.audit_divergences, 0u);
}

TEST(SnapshotAuditTest, CrossRestoreAuditRunsAndPasses) {
  // A program with a snapshot marker makes the audited engine run it three
  // times: normal, replay, and resume-through-the-incremental-snapshot.
  const Spec spec = Spec::GenericNetwork();
  NyxEngine engine(AuditedConfig(), MakeLightFtp, spec);
  engine.Boot();

  Builder b(spec);
  ValueRef con = b.Connection();
  for (const char* line : {"USER anonymous", "PASS x", "CWD /tmp", "PWD"}) {
    b.Packet(con, std::string(line) + "\r\n");
  }
  Program p = *b.Build();
  p.InsertSnapshotAfterPacket(spec, 2);

  CoverageMap cov;
  ExecResult r = engine.Run(p, cov);
  EXPECT_FALSE(r.crash.crashed);
  ASSERT_NE(engine.auditor(), nullptr);
  EXPECT_EQ(engine.auditor()->stats().programs_audited, 1u);
  EXPECT_EQ(engine.auditor()->stats().cross_audits, 1u);
  EXPECT_GT(engine.auditor()->stats().pages_audited, 0u);
  EXPECT_EQ(engine.auditor()->stats().divergences, 0u);

  // Audit replays must not inflate the engine's exec counter.
  EXPECT_EQ(engine.execs(), 1u);
}

TEST(SnapshotAuditTest, DeepSnapshotTreeReplaysDivergenceFree) {
  // With snapshot_depth > 1 the engine pushes further snapshots at packet
  // boundaries past the marker and later resumes from the deepest matching
  // link. Every stage of that machinery must stay audit-clean: the replay,
  // the cross-restore through the deepest snapshot, and a later run of the
  // same input resuming at depth >= 2.
  const Spec spec = Spec::GenericNetwork();
  EngineConfig cfg = AuditedConfig();
  cfg.vm.snapshot_depth = 3;
  NyxEngine engine(cfg, MakeLightFtp, spec);
  engine.Boot();

  Builder b(spec);
  ValueRef con = b.Connection();
  for (const char* line :
       {"USER anonymous", "PASS x", "CWD /tmp", "PWD", "LIST", "NOOP"}) {
    b.Packet(con, std::string(line) + "\r\n");
  }
  Program p = *b.Build();
  p.InsertSnapshotAfterPacket(spec, 1);

  CoverageMap cov;
  ExecResult r1 = engine.Run(p, cov);
  EXPECT_FALSE(r1.crash.crashed);
  EXPECT_TRUE(r1.created_incremental);
  EXPECT_EQ(engine.vm().max_valid_depth(), 3u);
  EXPECT_EQ(engine.auditor()->stats().divergences, 0u);
  EXPECT_GE(engine.auditor()->stats().cross_audits, 1u);

  // Same input again: the primary run must shortcut through the deepest
  // snapshot, and the audited replay must still match.
  cov.Reset();
  ExecResult r2 = engine.Run(p, cov);
  EXPECT_TRUE(r2.used_incremental);
  EXPECT_GT(engine.vm_stats().deep_restores, 0u);
  EXPECT_EQ(engine.auditor()->stats().divergences, 0u);
}

TEST(SnapshotAuditTest, PartialChainMatchThenRepushStaysDivergenceFree) {
  // Regression test for the case the campaign auditor caught: a mutated
  // input that shares only the marker prefix matches chain depth 1, then
  // auto-pushes *new* depth-2/3 snapshots mid-run. The audit replay must
  // be forced onto the pre-run chain — otherwise it matches the links the
  // primary run just recorded, resumes deeper than the primary did, and
  // coverage/result fingerprints diverge.
  const Spec spec = Spec::GenericNetwork();
  EngineConfig cfg = AuditedConfig();
  cfg.vm.snapshot_depth = 3;
  NyxEngine engine(cfg, MakeLightFtp, spec);
  engine.Boot();

  auto build = [&](std::initializer_list<const char*> tail) {
    Builder b(spec);
    ValueRef con = b.Connection();
    b.Packet(con, "USER anonymous\r\n");
    b.Packet(con, "PASS x\r\n");
    for (const char* line : tail) {
      b.Packet(con, std::string(line) + "\r\n");
    }
    Program p = *b.Build();
    p.InsertSnapshotAfterPacket(spec, 1);
    return p;
  };

  // First input builds a full depth-3 chain past the marker.
  Program first = build({"CWD /tmp", "PWD", "LIST"});
  CoverageMap cov;
  ExecResult r1 = engine.Run(first, cov);
  EXPECT_TRUE(r1.created_incremental);
  EXPECT_EQ(engine.vm().max_valid_depth(), 3u);
  EXPECT_EQ(engine.auditor()->stats().divergences, 0u);

  // Second input diverges right after the marker packet: its primary run
  // matches depth 1 only, then pushes fresh deeper snapshots.
  Program second = build({"NOOP", "PWD", "LIST"});
  cov.Reset();
  ExecResult r2 = engine.Run(second, cov);
  EXPECT_TRUE(r2.used_incremental);
  EXPECT_TRUE(r2.created_incremental);  // re-pushed depths 2..3 mid-run
  EXPECT_EQ(engine.auditor()->stats().divergences, 0u);

  // And the second input again: now a full-depth match.
  cov.Reset();
  ExecResult r3 = engine.Run(second, cov);
  EXPECT_TRUE(r3.used_incremental);
  EXPECT_EQ(engine.auditor()->stats().divergences, 0u);
}

// A target that violates the snapshot contract on purpose: `calls_` lives in
// the host-side C++ object, so no snapshot restore ever resets it, and the
// coverage it drives differs between a run and its replay. All *registered*
// state stays clean, so the auditor must attribute the divergence to
// UNREGISTERED — the signature of state the registry never heard of.
class LeakyCounterTarget final : public Target {
 public:
  TargetInfo info() const override {
    TargetInfo ti;
    ti.name = "leaky-counter";
    ti.transport = SockKind::kDgram;
    ti.port = 1;
    return ti;
  }
  void Init(GuestContext& ctx) override {
    int fd = ctx.net().Socket(SockKind::kDgram);
    ctx.net().Bind(fd, 1);
    *ctx.State<int>() = fd;
  }
  void Step(GuestContext& ctx) override {
    uint8_t buf[8];
    while (ctx.net().Recv(*ctx.State<int>(), buf, sizeof(buf)) > 0) {
      ctx.Cov(100 + (calls_++ & 0xff));
    }
  }

 private:
  uint32_t calls_ = 0;  // leaked: survives restores, diverges replays
};

TEST(SnapshotAuditTest, UnregisteredHostStateIsFlagged) {
  const Spec spec = Spec::GenericNetwork();
  NyxEngine engine(
      AuditedConfig(), [] { return std::unique_ptr<Target>(new LeakyCounterTarget()); },
      spec);
  engine.Boot();

  Builder b(spec);
  b.Packet(b.Connection(), "x");
  CoverageMap cov;
  engine.Run(*b.Build(), cov);

  ASSERT_NE(engine.auditor(), nullptr);
  ASSERT_GT(engine.auditor()->stats().divergences, 0u);
  bool saw_unregistered = false;
  for (const auto& d : engine.auditor()->divergences()) {
    saw_unregistered =
        saw_unregistered ||
        (d.source == "coverage" && d.owner == SnapshotStateRegistry::kUnregistered);
  }
  EXPECT_TRUE(saw_unregistered);
}

// Variant that writes the leaked counter into guest scratch memory: the
// divergence is now visible as a differing page, and the page-granular walk
// must attribute it to the named region that owns it.
class LeakyScratchTarget final : public Target {
 public:
  TargetInfo info() const override {
    TargetInfo ti;
    ti.name = "leaky-scratch";
    ti.transport = SockKind::kDgram;
    ti.port = 1;
    return ti;
  }
  void Init(GuestContext& ctx) override {
    int fd = ctx.net().Socket(SockKind::kDgram);
    ctx.net().Bind(fd, 1);
    *ctx.State<int>() = fd;
  }
  void Step(GuestContext& ctx) override {
    uint8_t buf[8];
    while (ctx.net().Recv(*ctx.State<int>(), buf, sizeof(buf)) > 0) {
      ctx.TouchScratch(1, static_cast<uint8_t>(++calls_));
      ctx.Cov(7);
    }
  }

 private:
  uint32_t calls_ = 0;
};

TEST(SnapshotAuditTest, GuestPageDivergenceIsAttributedToItsRegion) {
  const Spec spec = Spec::GenericNetwork();
  NyxEngine engine(
      AuditedConfig(), [] { return std::unique_ptr<Target>(new LeakyScratchTarget()); },
      spec);
  engine.Boot();

  Builder b(spec);
  b.Packet(b.Connection(), "x");
  CoverageMap cov;
  engine.Run(*b.Build(), cov);

  ASSERT_NE(engine.auditor(), nullptr);
  ASSERT_GT(engine.auditor()->stats().divergences, 0u);
  bool saw_scratch_page = false;
  for (const auto& d : engine.auditor()->divergences()) {
    saw_scratch_page =
        saw_scratch_page || (d.source == "guest-page" && d.owner == "guest.scratch");
  }
  EXPECT_TRUE(saw_scratch_page);
}

TEST(SnapshotAuditTest, AuditCountersReachCampaignResult) {
  auto reg = FindTarget("lightftp");
  ASSERT_TRUE(reg.has_value());
  const Spec spec = reg->make_spec();
  FuzzerConfig fcfg;
  fcfg.policy = PolicyMode::kBalanced;
  NyxFuzzer fuzzer(AuditedConfig(), reg->factory, spec, fcfg);
  for (const Program& s : reg->make_seeds(spec)) {
    fuzzer.AddSeed(s);
  }
  CampaignResult result = fuzzer.Run(ShortLimits());
  EXPECT_GT(result.pages_audited, 0u);
  EXPECT_EQ(result.audit_divergences, 0u);
  EXPECT_EQ(result.pages_audited, fuzzer.engine().auditor()->stats().pages_audited);
}

// Telemetry and tracing are observation-only: an audited campaign must stay
// divergence-free with the phase profiler and trace recorder running, and
// every exec must end with the phase stack empty — the invariant behind the
// "telemetry.phase_timers" ephemeral that CheckEphemeral verifies per exec.
TEST(SnapshotAuditTest, DivergenceFreeWithTracingEnabled) {
  const std::string trace_path = ::testing::TempDir() + "audit_trace.json";
  trace::SetTracePathForTest(trace_path);
  telemetry::SetTelemetryEnabled(true);

  auto reg = FindTarget("lightftp");
  ASSERT_TRUE(reg.has_value());
  const Spec spec = reg->make_spec();
  FuzzerConfig fcfg;
  fcfg.policy = PolicyMode::kBalanced;
  NyxFuzzer fuzzer(AuditedConfig(), reg->factory, spec, fcfg);
  for (const Program& s : reg->make_seeds(spec)) {
    fuzzer.AddSeed(s);
  }
  CampaignResult result = fuzzer.Run(ShortLimits());

  EXPECT_GT(result.pages_audited, 0u);
  EXPECT_EQ(result.audit_divergences, 0u);
  EXPECT_EQ(telemetry::PhaseDepth(), 0u);
  // The profiler actually observed the campaign, and the recorder kept the
  // events and can flush a timeline.
  EXPECT_GT(telemetry::PhaseHistogram(telemetry::Phase::kGuestRun)->Total(), 0u);
  EXPECT_GT(trace::GetRecorderStats().recorded, 0u);
  EXPECT_TRUE(trace::WriteTrace(trace_path));

  telemetry::SetTelemetryEnabled(false);
  trace::SetTracePathForTest("");
  remove(trace_path.c_str());
}

TEST(SnapshotAuditTest, AuditOffByDefault) {
  EngineConfig cfg;
  cfg.vm.mem_pages = 64;
  cfg.audit = false;
  const Spec spec = Spec::GenericNetwork();
  NyxEngine engine(cfg, MakeLightFtp, spec);
  EXPECT_EQ(engine.auditor(), nullptr);
}

}  // namespace
}  // namespace nyx
