// Tests for the dirty-page tracker: bitmap + stack consistency, idempotent
// marking, ring-exit accounting and the O(#dirty) clear.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/common/rng.h"
#include "src/vm/dirty_tracker.h"

namespace nyx {
namespace {

TEST(DirtyTrackerTest, StartsClean) {
  DirtyTracker t(64);
  EXPECT_EQ(t.stack_size(), 0u);
  for (uint32_t p = 0; p < 64; p++) {
    EXPECT_FALSE(t.IsDirty(p));
  }
}

TEST(DirtyTrackerTest, MarkSetsBitmapAndStack) {
  DirtyTracker t(64);
  t.MarkDirty(5);
  t.MarkDirty(17);
  EXPECT_TRUE(t.IsDirty(5));
  EXPECT_TRUE(t.IsDirty(17));
  EXPECT_FALSE(t.IsDirty(6));
  ASSERT_EQ(t.stack_size(), 2u);
  EXPECT_EQ(t.stack_data()[0], 5u);
  EXPECT_EQ(t.stack_data()[1], 17u);
}

TEST(DirtyTrackerTest, MarkIsIdempotent) {
  DirtyTracker t(64);
  for (int i = 0; i < 10; i++) {
    t.MarkDirty(3);
  }
  EXPECT_EQ(t.stack_size(), 1u);
  EXPECT_EQ(t.total_marks(), 1u);
}

TEST(DirtyTrackerTest, OutOfRangeIgnored) {
  DirtyTracker t(8);
  t.MarkDirty(8);
  t.MarkDirty(1000);
  EXPECT_EQ(t.stack_size(), 0u);
}

TEST(DirtyTrackerTest, ClearOnlyTouchesStackEntries) {
  DirtyTracker t(1024);
  t.MarkDirty(1);
  t.MarkDirty(1000);
  t.Clear();
  EXPECT_EQ(t.stack_size(), 0u);
  EXPECT_FALSE(t.IsDirty(1));
  EXPECT_FALSE(t.IsDirty(1000));
  // Marks still work after a clear.
  t.MarkDirty(1);
  EXPECT_TRUE(t.IsDirty(1));
  EXPECT_EQ(t.stack_size(), 1u);
}

TEST(DirtyTrackerTest, RingExitsEveryCapacityMarks) {
  DirtyTracker t(4 * kDirtyRingCapacity);
  for (uint32_t p = 0; p < kDirtyRingCapacity - 1; p++) {
    t.MarkDirty(p);
  }
  EXPECT_EQ(t.ring_exits(), 0u);
  t.MarkDirty(kDirtyRingCapacity - 1);
  EXPECT_EQ(t.ring_exits(), 1u);
  for (uint32_t p = 0; p < 2 * kDirtyRingCapacity; p++) {
    t.MarkDirty(kDirtyRingCapacity + p);
  }
  EXPECT_EQ(t.ring_exits(), 3u);
}

TEST(DirtyTrackerTest, BitmapWalkMatchesStack) {
  DirtyTracker t(4096);
  Rng rng(1234);
  std::set<uint32_t> expected;
  for (int i = 0; i < 500; i++) {
    uint32_t p = static_cast<uint32_t>(rng.Below(4096));
    t.MarkDirty(p);
    expected.insert(p);
  }
  std::set<uint32_t> via_walk;
  t.ForEachDirtyByBitmapWalk([&](uint32_t p) { via_walk.insert(p); });
  std::set<uint32_t> via_stack(t.stack_data(), t.stack_data() + t.stack_size());
  EXPECT_EQ(via_walk, expected);
  EXPECT_EQ(via_stack, expected);
}

TEST(DirtyTrackerTest, DirtySpanViewsStack) {
  DirtyTracker t(16);
  t.MarkDirty(4);
  t.MarkDirty(2);
  std::span<const uint32_t> pages = t.dirty();
  ASSERT_EQ(pages.size(), 2u);
  EXPECT_EQ(pages[0], 4u);
  EXPECT_EQ(pages[1], 2u);
  // Zero-copy: the span aliases the stack storage itself.
  EXPECT_EQ(pages.data(), t.stack_data());
  t.Clear();
  EXPECT_TRUE(t.dirty().empty());
}

TEST(DirtyTrackerTest, ConfigurableRingCapacity) {
  DirtyTracker t(256, 8);
  EXPECT_EQ(t.ring_capacity(), 8u);
  for (uint32_t p = 0; p < 7; p++) {
    t.MarkDirty(p);
  }
  EXPECT_EQ(t.ring_exits(), 0u);
  t.MarkDirty(7);
  EXPECT_EQ(t.ring_exits(), 1u);
  for (uint32_t p = 8; p < 24; p++) {
    t.MarkDirty(p);
  }
  EXPECT_EQ(t.ring_exits(), 3u);
}

// Property: after any interleaving of marks and clears, bitmap and stack
// agree exactly.
class DirtyTrackerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DirtyTrackerPropertyTest, BitmapAndStackAlwaysAgree) {
  Rng rng(GetParam());
  DirtyTracker t(512);
  std::set<uint32_t> model;
  for (int step = 0; step < 2000; step++) {
    if (rng.Chance(1, 50)) {
      t.Clear();
      model.clear();
    } else {
      uint32_t p = static_cast<uint32_t>(rng.Below(512));
      t.MarkDirty(p);
      model.insert(p);
    }
    ASSERT_EQ(t.stack_size(), model.size());
  }
  std::set<uint32_t> stack_set(t.stack_data(), t.stack_data() + t.stack_size());
  EXPECT_EQ(stack_set, model);
  for (uint32_t p = 0; p < 512; p++) {
    EXPECT_EQ(t.IsDirty(p), model.count(p) != 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DirtyTrackerPropertyTest,
                         ::testing::Values(1, 2, 3, 7, 1337, 42424242));

}  // namespace
}  // namespace nyx
