// Tests for in-process sharded fuzzing: the CorpusFrontier's lock-step
// exchange and RunShardedCampaign's determinism and aggregation.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/fuzz/frontier.h"
#include "src/harness/campaign.h"
#include "src/harness/parallel.h"

namespace nyx {
namespace {

CorpusFrontier::Entry MakeEntry(uint8_t tag) {
  CorpusFrontier::Entry e;
  Op op;
  op.node_type = tag;
  e.program.ops.push_back(op);
  e.vtime_ns = tag;
  e.packet_count = 1;
  return e;
}

TEST(FrontierTest, TwoShardsExchangeEntries) {
  CorpusFrontier frontier(2);
  std::vector<CorpusFrontier::Entry> got0, got1;
  std::thread t0([&] {
    std::vector<CorpusFrontier::Entry> fresh;
    fresh.push_back(MakeEntry(10));
    got0 = frontier.ExchangeSync(0, std::move(fresh));
  });
  std::thread t1([&] {
    std::vector<CorpusFrontier::Entry> fresh;
    fresh.push_back(MakeEntry(20));
    got1 = frontier.ExchangeSync(1, std::move(fresh));
  });
  t0.join();
  t1.join();
  // Each shard sees exactly the other's entry, never its own.
  ASSERT_EQ(got0.size(), 1u);
  EXPECT_EQ(got0[0].vtime_ns, 20u);
  EXPECT_EQ(got0[0].origin, 1u);
  ASSERT_EQ(got1.size(), 1u);
  EXPECT_EQ(got1[0].vtime_ns, 10u);
  EXPECT_EQ(got1[0].origin, 0u);
  EXPECT_EQ(frontier.generations(), 1u);
  EXPECT_EQ(frontier.published(), 2u);
}

TEST(FrontierTest, DuplicateProgramsDedupedInShardOrder) {
  CorpusFrontier frontier(2);
  std::vector<CorpusFrontier::Entry> got0, got1;
  std::thread t0([&] {
    std::vector<CorpusFrontier::Entry> fresh;
    fresh.push_back(MakeEntry(7));
    got0 = frontier.ExchangeSync(0, std::move(fresh));
  });
  std::thread t1([&] {
    std::vector<CorpusFrontier::Entry> fresh;
    fresh.push_back(MakeEntry(7));  // identical program to shard 0's
    got1 = frontier.ExchangeSync(1, std::move(fresh));
  });
  t0.join();
  t1.join();
  // One copy survives, attributed to the lowest shard regardless of arrival
  // order — so shard 0 imports nothing and shard 1 imports shard 0's copy.
  EXPECT_EQ(frontier.published(), 1u);
  EXPECT_TRUE(got0.empty());
  ASSERT_EQ(got1.size(), 1u);
  EXPECT_EQ(got1[0].origin, 0u);
}

TEST(FrontierTest, LeaveUnblocksRemainingShards) {
  CorpusFrontier frontier(2);
  GlobalCoverage cov;
  // Shard 1 leaves immediately with a final find; shard 0's next sync must
  // not deadlock and must import that find.
  frontier.Leave(1, {MakeEntry(42)}, cov);
  std::vector<CorpusFrontier::Entry> got = frontier.ExchangeSync(0, {});
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].vtime_ns, 42u);
}

void ExpectSameResult(const CampaignResult& a, const CampaignResult& b) {
  EXPECT_EQ(a.execs, b.execs);
  EXPECT_DOUBLE_EQ(a.vtime_seconds, b.vtime_seconds);
  EXPECT_EQ(a.branch_coverage, b.branch_coverage);
  EXPECT_EQ(a.edge_coverage, b.edge_coverage);
  EXPECT_EQ(a.corpus_size, b.corpus_size);
  EXPECT_EQ(a.incremental_creates, b.incremental_creates);
  EXPECT_EQ(a.incremental_restores, b.incremental_restores);
  EXPECT_EQ(a.root_restores, b.root_restores);
  EXPECT_EQ(a.ijon_best, b.ijon_best);
  EXPECT_EQ(a.crashes.size(), b.crashes.size());
  EXPECT_EQ(a.coverage_over_time.ToCsv("s"), b.coverage_over_time.ToCsv("s"));
}

CampaignSpec ShardableSpec() {
  CampaignSpec cs;
  cs.target = "lightftp";
  cs.fuzzer = FuzzerKind::kNyxBalanced;
  cs.limits.vtime_seconds = 2.0;  // vtime-bounded => deterministic
  cs.seed = 1;
  return cs;
}

TEST(ShardedCampaignTest, RepeatedRunsAreIdentical) {
  const CampaignSpec cs = ShardableSpec();
  const ShardedOutcome a = RunShardedCampaign(cs, 3);
  const ShardedOutcome b = RunShardedCampaign(cs, 3);
  ASSERT_TRUE(a.supported);
  ASSERT_TRUE(b.supported);
  ASSERT_EQ(a.per_shard.size(), 3u);
  for (size_t s = 0; s < 3; s++) {
    ExpectSameResult(a.per_shard[s], b.per_shard[s]);
  }
  ExpectSameResult(a.merged, b.merged);
  EXPECT_EQ(a.frontier_generations, b.frontier_generations);
  EXPECT_EQ(a.frontier_published, b.frontier_published);
}

TEST(ShardedCampaignTest, OneShardMatchesPlainCampaign) {
  const CampaignSpec cs = ShardableSpec();
  const CampaignOutcome plain = RunCampaign(cs);
  const ShardedOutcome sharded = RunShardedCampaign(cs, 1);
  ASSERT_TRUE(sharded.supported);
  ASSERT_EQ(sharded.per_shard.size(), 1u);
  // A 1-shard frontier never imports anything, so the worker's trajectory
  // is exactly the unsharded campaign's.
  ExpectSameResult(plain.result, sharded.per_shard[0]);
}

TEST(ShardedCampaignTest, MergedAggregatesShards) {
  const ShardedOutcome out = RunShardedCampaign(ShardableSpec(), 2);
  ASSERT_TRUE(out.supported);
  uint64_t execs = 0;
  size_t best_cov = 0;
  for (const CampaignResult& r : out.per_shard) {
    EXPECT_GT(r.execs, 0u);
    execs += r.execs;
    best_cov = std::max(best_cov, r.branch_coverage);
  }
  EXPECT_EQ(out.merged.execs, execs);
  // The frontier-merged map covers at least what the best shard saw.
  EXPECT_GE(out.merged.branch_coverage, best_cov);
  EXPECT_GT(out.merged.branch_coverage, 0u);
  EXPECT_GT(out.frontier_generations, 0u);
}

TEST(ShardedCampaignTest, RejectsBaselinesAndZeroShards) {
  CampaignSpec cs = ShardableSpec();
  EXPECT_FALSE(RunShardedCampaign(cs, 0).supported);
  cs.fuzzer = FuzzerKind::kAflnet;
  EXPECT_FALSE(RunShardedCampaign(cs, 2).supported);
  cs.fuzzer = FuzzerKind::kNyxNone;
  cs.target = "no-such-target";
  EXPECT_FALSE(RunShardedCampaign(cs, 2).supported);
}

}  // namespace
}  // namespace nyx
