// Tests for the emulated block device and its two snapshot layers.

#include <gtest/gtest.h>

#include <cstring>

#include "src/common/rng.h"
#include "src/vm/block_device.h"

namespace nyx {
namespace {

TEST(BlockDeviceTest, ReadWriteRoundTrip) {
  BlockDevice disk(16);
  disk.WriteBytes(100, "hello", 5);
  char buf[6] = {};
  disk.ReadBytes(100, buf, 5);
  EXPECT_STREQ(buf, "hello");
}

TEST(BlockDeviceTest, OutOfRangeWriteIgnoredReadZeroFilled) {
  BlockDevice disk(2);
  disk.WriteBytes(disk.size_bytes() - 2, "abcd", 4);  // would overflow
  char buf[4] = {1, 2, 3, 4};
  disk.ReadBytes(disk.size_bytes() - 2, buf, 4);
  EXPECT_EQ(buf[0], 0);
  EXPECT_EQ(buf[3], 0);
}

TEST(BlockDeviceTest, DirtySectorTracking) {
  BlockDevice disk(16);
  disk.WriteBytes(0, "x", 1);
  disk.WriteBytes(BlockDevice::kSectorSize - 1, "yy", 2);  // straddles 0-1
  disk.WriteBytes(5 * BlockDevice::kSectorSize, "z", 1);
  ASSERT_EQ(disk.dirty_sectors().size(), 3u);
  EXPECT_EQ(disk.dirty_sectors()[0], 0u);
  EXPECT_EQ(disk.dirty_sectors()[1], 1u);
  EXPECT_EQ(disk.dirty_sectors()[2], 5u);
}

TEST(BlockDeviceTest, RootRestoreRevertsDirtySectors) {
  BlockDevice disk(8);
  disk.WriteBytes(10, "before", 6);
  auto root = disk.CaptureRoot();
  disk.ClearDirty();
  disk.WriteBytes(10, "after!", 6);
  disk.RestoreFromRoot(root);
  char buf[7] = {};
  disk.ReadBytes(10, buf, 6);
  EXPECT_STREQ(buf, "before");
  EXPECT_TRUE(disk.dirty_sectors().empty());
}

TEST(BlockDeviceTest, IncrementalLayerLookupWithRootFallback) {
  BlockDevice disk(8);
  auto root = disk.CaptureRoot();
  disk.ClearDirty();

  // Prefix writes sector 0, then capture the incremental layer.
  disk.WriteBytes(0, "prefix", 6);
  auto inc = disk.CaptureIncremental();

  // Suffix writes sector 0 (in layer) and sector 3 (fallback to root).
  disk.WriteBytes(0, "zzzzzz", 6);
  disk.WriteBytes(3 * BlockDevice::kSectorSize, "junk", 4);

  disk.RestoreFromIncremental(inc, root);
  char buf[7] = {};
  disk.ReadBytes(0, buf, 6);
  EXPECT_STREQ(buf, "prefix");
  char buf2[5] = {};
  disk.ReadBytes(3 * BlockDevice::kSectorSize, buf2, 4);
  EXPECT_EQ(0, memcmp(buf2, "\0\0\0\0", 4));
  // Sector 0 is still dirty relative to root.
  ASSERT_EQ(disk.dirty_sectors().size(), 1u);
  EXPECT_EQ(disk.dirty_sectors()[0], 0u);
}

TEST(BlockDeviceTest, RootRestoreAfterIncrementalRestore) {
  BlockDevice disk(8);
  auto root = disk.CaptureRoot();
  disk.ClearDirty();
  disk.WriteBytes(0, "prefix", 6);
  auto inc = disk.CaptureIncremental();
  disk.WriteBytes(512, "suffix", 6);
  disk.RestoreFromIncremental(inc, root);
  // Now go back to root: the prefix write must revert too.
  disk.RestoreFromRoot(root);
  char buf[7] = {};
  disk.ReadBytes(0, buf, 6);
  EXPECT_EQ(0, memcmp(buf, "\0\0\0\0\0\0", 6));
}

// Property: restore-from-incremental returns the disk to its exact state at
// capture time under random workloads.
class BlockDevicePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BlockDevicePropertyTest, IncrementalRestoreIdentity) {
  Rng rng(GetParam());
  BlockDevice disk(32);
  auto root = disk.CaptureRoot();
  disk.ClearDirty();

  for (int i = 0; i < 20; i++) {
    uint8_t v = rng.NextByte();
    disk.WriteBytes(rng.Below(disk.size_bytes() - 1), &v, 1);
  }
  auto inc = disk.CaptureIncremental();
  Bytes at_capture(disk.size_bytes());
  disk.ReadBytes(0, at_capture.data(), at_capture.size());

  for (int i = 0; i < 30; i++) {
    uint8_t v = rng.NextByte();
    disk.WriteBytes(rng.Below(disk.size_bytes() - 1), &v, 1);
  }
  disk.RestoreFromIncremental(inc, root);
  Bytes after(disk.size_bytes());
  disk.ReadBytes(0, after.data(), after.size());
  EXPECT_EQ(after, at_capture);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlockDevicePropertyTest, ::testing::Values(5, 6, 7, 8, 9));

}  // namespace
}  // namespace nyx
