// Unit tests for the bytecode dataflow analyzer (src/spec/analyze.h):
// def/use chains, the connection-state lattice, provably-dead fault
// detection, removal cones, canonicalization, NormalHash semantic identity,
// and the corpus/frontier semantic-dedup integration.

#include <gtest/gtest.h>

#include "src/fuzz/corpus.h"
#include "src/fuzz/frontier.h"
#include "src/spec/analyze.h"
#include "src/spec/builder.h"
#include "src/spec/fault_plan.h"
#include "src/spec/program.h"
#include "src/spec/spec.h"

namespace nyx {
namespace {

Bytes Plan(FaultKind kind, uint8_t count = 1, uint16_t arg = 0) {
  FaultPlan plan;
  plan.kind = kind;
  plan.count = count;
  plan.arg = arg;
  return plan.Encode();
}

// conn; pkt; fault(kind); [pkt]
Program FaultProgram(const Spec& spec, FaultKind kind, uint16_t arg, bool trailing) {
  Builder b(spec);
  ValueRef con = b.Connection();
  b.Packet(con, "hello");
  EXPECT_TRUE(b.Node("fault", {con}, Plan(kind, 1, arg)).has_value());
  if (!trailing) {
    b.Packet(con, "world");
  }
  auto prog = b.Build();
  EXPECT_TRUE(prog.has_value());
  return *prog;
}

TEST(AnalyzeTest, DefUseChains) {
  Spec spec = Spec::MultiConnection();
  Builder b(spec);
  ValueRef c1 = b.Connection();
  ValueRef c2 = b.Connection();
  b.Packet(c1, "a");
  b.Packet(c1, "b");
  b.Close(c2);
  Program p = *b.Build();

  const spec::Analysis a = spec::Analyze(p, spec);
  ASSERT_EQ(a.values.size(), 2u);
  EXPECT_EQ(a.values[0].def_op, 0u);
  EXPECT_EQ(a.values[0].uses, (std::vector<size_t>{2, 3}));
  EXPECT_FALSE(a.values[0].consumed_by.has_value());
  EXPECT_EQ(a.values[0].last_use(), 3u);
  EXPECT_EQ(a.values[1].def_op, 1u);
  ASSERT_TRUE(a.values[1].consumed_by.has_value());
  EXPECT_EQ(*a.values[1].consumed_by, 4u);
  // An unused value's liveness interval collapses to its def.
  Builder b2(spec);
  b2.Connection();
  const spec::Analysis a2 = spec::Analyze(*b2.Build(), spec);
  EXPECT_TRUE(a2.values[0].unused());
  EXPECT_EQ(a2.values[0].last_use(), 0u);
}

TEST(AnalyzeTest, ConnectionStateLattice) {
  Spec spec = Spec::MultiConnection();
  Builder b(spec);
  ValueRef fresh = b.Connection();
  ValueRef used = b.Connection();
  ValueRef closed = b.Connection();
  ValueRef reset = b.Connection();
  b.Packet(used, "x");
  b.Close(closed);
  b.Node("fault", {reset}, Plan(FaultKind::kConnReset));
  b.Packet(reset, "after-reset-armed");
  (void)fresh;
  Program p = *b.Build();

  const spec::Analysis a = spec::Analyze(p, spec);
  EXPECT_EQ(a.values[0].state, spec::ConnState::kFresh);
  EXPECT_EQ(a.values[1].state, spec::ConnState::kUsed);
  EXPECT_EQ(a.values[2].state, spec::ConnState::kClosed);
  // Reset-kind plans dominate later borrows: once armed, the lattice stays
  // at kReset (the fault may fire on any later syscall).
  EXPECT_EQ(a.values[3].state, spec::ConnState::kReset);
  EXPECT_STREQ(spec::ConnStateName(spec::ConnState::kReset), "reset");
}

TEST(AnalyzeTest, TrailingFaultIsProvablyDead) {
  Spec spec = Spec::GenericNetwork();
  Program trailing = FaultProgram(spec, FaultKind::kShortRead, 8, /*trailing=*/true);
  const spec::Analysis a = spec::Analyze(trailing, spec);
  EXPECT_EQ(a.provably_dead, 1u);
  EXPECT_TRUE(a.ops[2].provably_dead);
  EXPECT_EQ(a.ProvablyDeadOps(), (std::vector<size_t>{2}));

  // The same fault with a packet after it is NOT provably dead — the armed
  // plan fires on the later packet's syscalls. It is only a trim candidate.
  Program mid = FaultProgram(spec, FaultKind::kShortRead, 8, /*trailing=*/false);
  const spec::Analysis a2 = spec::Analyze(mid, spec);
  EXPECT_EQ(a2.provably_dead, 0u);
  EXPECT_FALSE(a2.ops[2].provably_dead);
  EXPECT_TRUE(a2.ops[2].trim_candidate);
}

TEST(AnalyzeTest, UndecodablePlanIsProvablyDead) {
  Spec spec = Spec::GenericNetwork();
  const uint8_t fault = static_cast<uint8_t>(*spec.FindNodeType("fault"));
  Program p = FaultProgram(spec, FaultKind::kShortRead, 8, /*trailing=*/false);
  // Corrupt the plan kind past kFaultKindCount: Decode fails, the engine
  // skips the op entirely, so it is dead even with live packets after it.
  ASSERT_EQ(p.ops[2].node_type, fault);
  p.ops[2].data[0] = 200;
  const spec::Analysis a = spec::Analyze(p, spec);
  EXPECT_TRUE(a.ops[2].provably_dead);
}

TEST(AnalyzeTest, StepsTargetNeverDead) {
  Spec spec = Spec::MultiConnection();
  Builder b(spec);
  ValueRef con = b.Connection();
  b.Packet(con, "x");
  b.Close(con);
  Program p = *b.Build();
  const spec::Analysis a = spec::Analyze(p, spec);
  // Every op here steps the target, so nothing is provably dead — even the
  // close, whose removal the trim oracle must vet dynamically.
  EXPECT_EQ(a.provably_dead, 0u);
  for (const spec::OpFacts& f : a.ops) {
    EXPECT_TRUE(f.steps_target);
  }
}

TEST(AnalyzeTest, RemovalConeCoversTransitiveUses) {
  Spec spec = Spec::MultiConnection();
  Builder b(spec);
  ValueRef c1 = b.Connection();  // op 0
  ValueRef c2 = b.Connection();  // op 1
  b.Packet(c1, "a");             // op 2
  b.Packet(c2, "b");             // op 3
  b.Close(c1);                   // op 4
  Program p = *b.Build();

  const spec::Analysis a = spec::Analyze(p, spec);
  EXPECT_EQ(spec::RemovalCone(a, p, spec, 0), (std::vector<size_t>{0, 2, 4}));
  EXPECT_EQ(spec::RemovalCone(a, p, spec, 1), (std::vector<size_t>{1, 3}));
  EXPECT_EQ(spec::RemovalCone(a, p, spec, 3), (std::vector<size_t>{3}));

  // Removing a full cone keeps the program Validate-clean with ids renumbered.
  auto removed = spec::RemoveOps(p, spec, spec::RemovalCone(a, p, spec, 0));
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(removed->ops.size(), 2u);
  EXPECT_TRUE(removed->Validate(spec));
  EXPECT_EQ(removed->ops[1].args[0], 0u);  // c2 renumbered 1 -> 0

  // Removing a def but keeping its use is rejected, not silently repaired.
  EXPECT_FALSE(spec::RemoveOps(p, spec, {0}).has_value());
}

TEST(AnalyzeTest, CanonicalizeElidesDeadAndStripsMarkers) {
  Spec spec = Spec::GenericNetwork();
  Program p = FaultProgram(spec, FaultKind::kConnReset, 0, /*trailing=*/true);
  p.InsertSnapshotAfterPacket(spec, 0);
  ASSERT_EQ(p.ops.size(), 4u);  // conn, pkt, marker, fault

  const Program canon = spec::Canonicalize(p, spec);
  EXPECT_EQ(canon.ops.size(), 2u);  // conn, pkt
  EXPECT_FALSE(canon.SnapshotMarkerPos().has_value());
  EXPECT_TRUE(canon.Validate(spec));

  // Idempotence: canonicalizing the canonical form is the identity.
  const Program canon2 = spec::Canonicalize(canon, spec);
  EXPECT_EQ(canon2.OpsHash(canon2.ops.size()), canon.OpsHash(canon.ops.size()));
}

TEST(AnalyzeTest, CanonicalizeReachesFixpoint) {
  // Eliding a trailing fault can expose another trailing fault; the elision
  // loop must run to fixpoint, not stop after one round.
  Spec spec = Spec::GenericNetwork();
  Builder b(spec);
  ValueRef con = b.Connection();
  b.Packet(con, "x");
  b.Node("fault", {con}, Plan(FaultKind::kShortRead, 1, 4));
  b.Node("fault", {con}, Plan(FaultKind::kEagain));
  Program p = *b.Build();

  const Program canon = spec::Canonicalize(p, spec);
  EXPECT_EQ(canon.ops.size(), 2u);
}

TEST(AnalyzeTest, NormalHashIgnoresDeadOpsAndIgnoredArgs) {
  Spec spec = Spec::GenericNetwork();
  Builder base(spec);
  ValueRef con = base.Connection();
  base.Packet(con, "hello");
  const Program plain = *base.Build();

  // Dead-op padding does not change semantic identity.
  Program padded = FaultProgram(spec, FaultKind::kConnReset, 0, /*trailing=*/true);
  padded.ops.pop_back();  // drop the fault: now identical to `plain`
  EXPECT_EQ(spec::NormalHash(plain, spec), spec::NormalHash(padded, spec));
  Program dead = FaultProgram(spec, FaultKind::kConnReset, 0, /*trailing=*/true);
  EXPECT_EQ(spec::NormalHash(plain, spec), spec::NormalHash(dead, spec));

  // netemu never reads the arg for eintr-class kinds: twiddling it does not
  // change identity...
  Program a = FaultProgram(spec, FaultKind::kIntr, 0, /*trailing=*/false);
  Program b = FaultProgram(spec, FaultKind::kIntr, 0x1234, /*trailing=*/false);
  EXPECT_EQ(spec::NormalHash(a, spec), spec::NormalHash(b, spec));
  // ...but for kinds whose arg is read (short-read byte cap), it does.
  Program c = FaultProgram(spec, FaultKind::kShortRead, 1, /*trailing=*/false);
  Program d = FaultProgram(spec, FaultKind::kShortRead, 2, /*trailing=*/false);
  EXPECT_NE(spec::NormalHash(c, spec), spec::NormalHash(d, spec));
  // Distinct kinds stay distinct even with args zeroed.
  Program e = FaultProgram(spec, FaultKind::kEagain, 0, /*trailing=*/false);
  EXPECT_NE(spec::NormalHash(a, spec), spec::NormalHash(e, spec));
}

TEST(AnalyzeTest, LiveValuesRespectCloseAndPosition) {
  Spec spec = Spec::MultiConnection();
  Builder b(spec);
  ValueRef c1 = b.Connection();  // op 0 -> value 0
  b.Packet(c1, "a");             // op 1
  ValueRef c2 = b.Connection();  // op 2 -> value 1
  b.Close(c1);                   // op 3
  b.Packet(c2, "b");             // op 4
  Program p = *b.Build();

  const int conn_edge = 0;
  // Before op 2 only c1 exists; before op 4 (post-close) only c2 is live.
  EXPECT_EQ(spec::LiveValuesAt(p, spec, 2, conn_edge), (std::vector<uint16_t>{0}));
  EXPECT_EQ(spec::LiveValuesAt(p, spec, 3, conn_edge), (std::vector<uint16_t>{0, 1}));
  EXPECT_EQ(spec::LiveValuesAt(p, spec, 4, conn_edge), (std::vector<uint16_t>{1}));
  // End-of-program query and an unknown edge type.
  EXPECT_EQ(spec::LiveValuesAt(p, spec, p.ops.size(), conn_edge),
            (std::vector<uint16_t>{1}));
  EXPECT_TRUE(spec::LiveValuesAt(p, spec, 4, 99).empty());
}

TEST(AnalyzeTest, CorpusRejectsSemanticDuplicates) {
  Spec spec = Spec::GenericNetwork();
  Corpus corpus(&spec);

  Program a = FaultProgram(spec, FaultKind::kIntr, 0, /*trailing=*/false);
  Program b = FaultProgram(spec, FaultKind::kIntr, 0x1234, /*trailing=*/false);
  ASSERT_NE(a.OpsHash(a.ops.size()), b.OpsHash(b.ops.size()));  // syntactically new
  EXPECT_TRUE(corpus.Add(std::move(a), 1000, 1, 0.0));
  EXPECT_FALSE(corpus.Add(std::move(b), 1000, 1, 0.0));  // semantically dup
  EXPECT_EQ(corpus.size(), 1u);
  EXPECT_EQ(corpus.semantic_dupes(), 1u);

  // A genuinely different program still gets in.
  Program c = FaultProgram(spec, FaultKind::kShortRead, 3, /*trailing=*/false);
  EXPECT_TRUE(corpus.Add(std::move(c), 1000, 1, 0.0));
  EXPECT_EQ(corpus.size(), 2u);
}

TEST(AnalyzeTest, FrontierDropsSemanticDuplicates) {
  Spec spec = Spec::GenericNetwork();
  // Single shard: every ExchangeSync completes the barrier and flips, so the
  // publish/dedup path runs without spinning up worker threads.
  CorpusFrontier frontier(1, &spec);

  CorpusFrontier::Entry e0;
  e0.program = FaultProgram(spec, FaultKind::kIntr, 0, /*trailing=*/false);
  CorpusFrontier::Entry e1;
  e1.program = FaultProgram(spec, FaultKind::kIntr, 0x1234, /*trailing=*/false);

  std::vector<CorpusFrontier::Entry> batch;
  batch.push_back(std::move(e0));
  frontier.ExchangeSync(0, std::move(batch));
  EXPECT_EQ(frontier.published(), 1u);

  // The ignored-arg twiddle is syntactically fresh but semantically
  // identical: it never publishes.
  batch.clear();
  batch.push_back(std::move(e1));
  frontier.ExchangeSync(0, std::move(batch));
  EXPECT_EQ(frontier.published(), 1u);
}

}  // namespace
}  // namespace nyx
