// Tests for the AGAMOTTO-style checkpoint baseline: tree semantics, chain
// resolution, LRU eviction with delta merge-down.

#include <gtest/gtest.h>

#include <cstring>

#include "src/agamotto/agamotto.h"
#include "src/common/rng.h"

namespace nyx {
namespace {

TEST(AgamottoTest, CreateAndRestoreSingleCheckpoint) {
  GuestMemory mem(16);
  AgamottoCheckpointManager mgr(mem, {});
  mem.base()[0] = 42;
  int cp = mgr.CreateCheckpoint();
  ASSERT_GE(cp, 0);
  mem.base()[0] = 99;
  mem.base()[kPageSize] = 1;
  EXPECT_TRUE(mgr.RestoreCheckpoint(cp));
  EXPECT_EQ(mem.base()[0], 42);
  EXPECT_EQ(mem.base()[kPageSize], 0);
}

TEST(AgamottoTest, RestoreBaseImage) {
  GuestMemory mem(16);
  mem.base()[5] = 5;
  AgamottoCheckpointManager mgr(mem, {});
  mem.base()[5] = 50;
  int cp = mgr.CreateCheckpoint();
  (void)cp;
  EXPECT_TRUE(mgr.RestoreCheckpoint(-1));
  EXPECT_EQ(mem.base()[5], 5);
}

TEST(AgamottoTest, ChainResolutionAcrossTree) {
  GuestMemory mem(16);
  AgamottoCheckpointManager mgr(mem, {});
  mem.base()[0] = 1;
  int a = mgr.CreateCheckpoint();
  mem.base()[kPageSize] = 2;
  int b = mgr.CreateCheckpoint();  // child of a
  mem.base()[2 * kPageSize] = 3;

  // Restore the parent: page from b's delta and the fresh write both revert.
  EXPECT_TRUE(mgr.RestoreCheckpoint(a));
  EXPECT_EQ(mem.base()[0], 1);
  EXPECT_EQ(mem.base()[kPageSize], 0);
  EXPECT_EQ(mem.base()[2 * kPageSize], 0);

  // Forward again to b.
  EXPECT_TRUE(mgr.RestoreCheckpoint(b));
  EXPECT_EQ(mem.base()[0], 1);
  EXPECT_EQ(mem.base()[kPageSize], 2);
}

TEST(AgamottoTest, RestoreUnknownIdFails) {
  GuestMemory mem(4);
  AgamottoCheckpointManager mgr(mem, {});
  EXPECT_FALSE(mgr.RestoreCheckpoint(12345));
}

TEST(AgamottoTest, LruEvictionRespectsBudget) {
  GuestMemory mem(64);
  AgamottoCheckpointManager::Config cfg;
  cfg.memory_budget_bytes = 8 * kPageSize;
  AgamottoCheckpointManager mgr(mem, cfg);
  // Each checkpoint stores 4 pages; the budget holds two of them.
  for (int i = 0; i < 5; i++) {
    for (int p = 0; p < 4; p++) {
      mem.base()[static_cast<size_t>(i * 4 + p) * kPageSize] = static_cast<uint8_t>(i + 1);
    }
    mgr.CreateCheckpoint();
  }
  EXPECT_GT(mgr.evictions(), 0u);
  EXPECT_LE(mgr.stored_bytes(), 5 * 4 * kPageSize);
  EXPECT_LT(mgr.live_checkpoints(), 5u);
}

TEST(AgamottoTest, EvictionPreservesRestorability) {
  GuestMemory mem(64);
  AgamottoCheckpointManager::Config cfg;
  cfg.memory_budget_bytes = 6 * kPageSize;
  AgamottoCheckpointManager mgr(mem, cfg);

  mem.base()[0] = 10;
  int a = mgr.CreateCheckpoint();
  (void)a;
  mem.base()[kPageSize] = 20;
  int b = mgr.CreateCheckpoint();
  mem.base()[2 * kPageSize] = 30;
  mem.base()[3 * kPageSize] = 31;
  mem.base()[4 * kPageSize] = 32;
  mem.base()[5 * kPageSize] = 33;
  mem.base()[6 * kPageSize] = 34;
  int c = mgr.CreateCheckpoint();
  (void)c;
  // a may have been evicted and merged into b; b must still restore exactly.
  if (mgr.IsLive(b)) {
    EXPECT_TRUE(mgr.RestoreCheckpoint(b));
    EXPECT_EQ(mem.base()[0], 10);
    EXPECT_EQ(mem.base()[kPageSize], 20);
    EXPECT_EQ(mem.base()[2 * kPageSize], 0);
  }
}

// Property: random checkpoint/restore interleavings agree with a model that
// stores full images.
class AgamottoPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AgamottoPropertyTest, MatchesFullImageModel) {
  Rng rng(GetParam());
  GuestMemory mem(32);
  AgamottoCheckpointManager mgr(mem, {});
  std::vector<std::pair<int, Bytes>> model;  // (checkpoint id, full image)

  Bytes base(mem.size_bytes());
  memcpy(base.data(), mem.base(), base.size());
  model.push_back({-1, base});

  for (int step = 0; step < 40; step++) {
    for (int i = 0; i < 8; i++) {
      mem.base()[rng.Below(mem.size_bytes())] = rng.NextByte();
    }
    if (rng.Chance(1, 2) && model.size() < 10) {
      int id = mgr.CreateCheckpoint();
      Bytes image(mem.size_bytes());
      memcpy(image.data(), mem.base(), image.size());
      model.push_back({id, std::move(image)});
    } else {
      const auto& [id, image] = model[rng.Below(model.size())];
      if (!mgr.IsLive(id) && id != -1) {
        continue;
      }
      ASSERT_TRUE(mgr.RestoreCheckpoint(id));
      ASSERT_EQ(0, memcmp(mem.base(), image.data(), image.size())) << "step " << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AgamottoPropertyTest, ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace nyx
