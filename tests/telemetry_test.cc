// Tests for the metric registry and per-exec phase profiler
// (src/common/telemetry.h): histogram bucket geometry, cross-thread shard
// merging, ScopedPhase nesting/self-time semantics, and the dump writers.

#include "src/common/telemetry.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

namespace nyx {
namespace telemetry {
namespace {

TEST(HistogramTest, BucketBoundaries) {
  // Bucket 0 holds zeros only; bucket b>0 covers [2^(b-1), 2^b).
  EXPECT_EQ(Histogram::BucketFor(0), 0u);
  EXPECT_EQ(Histogram::BucketFor(1), 1u);
  EXPECT_EQ(Histogram::BucketFor(2), 2u);
  EXPECT_EQ(Histogram::BucketFor(3), 2u);
  EXPECT_EQ(Histogram::BucketFor(4), 3u);
  // Values >= 2^63 clamp into the top bucket instead of indexing past it.
  EXPECT_EQ(Histogram::BucketFor(UINT64_MAX), Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::BucketFor(1ull << 63), Histogram::kBuckets - 1);
  for (size_t b = 1; b < Histogram::kBuckets - 1; b++) {
    const uint64_t low = Histogram::BucketLow(b);
    const uint64_t high = Histogram::BucketHigh(b);
    EXPECT_EQ(Histogram::BucketFor(low), b) << b;
    EXPECT_EQ(Histogram::BucketFor(high - 1), b) << b;
    EXPECT_EQ(Histogram::BucketFor(high), b + 1) << b;
    EXPECT_LT(low, high);
  }
  // Every representable value lands in a valid bucket.
  EXPECT_LT(Histogram::BucketFor(UINT64_MAX), Histogram::kBuckets);
}

TEST(HistogramTest, RecordAndSnapshot) {
  Histogram h;
  h.Record(0);
  h.Record(1);
  h.Record(5);   // bucket 3: [4, 8)
  h.Record(7);   // bucket 3
  h.Record(100);
  const Histogram::Snapshot s = h.Snap();
  EXPECT_EQ(s.total, 5u);
  EXPECT_EQ(s.counts[0], 1u);
  EXPECT_EQ(s.counts[1], 1u);
  EXPECT_EQ(s.counts[3], 2u);
  EXPECT_EQ(s.counts[Histogram::BucketFor(100)], 1u);
}

TEST(HistogramTest, PercentileInterpolation) {
  Histogram h;
  // 100 samples in bucket [64, 128): percentiles stay inside the bucket and
  // grow with p.
  for (int i = 0; i < 100; i++) {
    h.Record(64 + i % 64);
  }
  const Histogram::Snapshot s = h.Snap();
  const double p50 = s.Percentile(50);
  const double p99 = s.Percentile(99);
  EXPECT_GE(p50, 64.0);
  EXPECT_LE(p99, 128.0);
  EXPECT_LT(p50, p99);
  // Empty histogram: all percentiles are zero.
  Histogram empty;
  EXPECT_EQ(empty.Snap().Percentile(99), 0.0);
}

TEST(CounterTest, CrossThreadShardMerge) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; i++) {
        c.Add(1);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(HistogramTest, CrossThreadShardMerge) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&h, t] {
      for (uint64_t i = 0; i < kPerThread; i++) {
        h.Record(static_cast<uint64_t>(t) * 1000 + 1);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(h.Snap().total, kThreads * kPerThread);
}

TEST(GaugeTest, IntegerAndDouble) {
  Gauge g;
  g.Set(42);
  EXPECT_EQ(g.Value(), 42u);
  EXPECT_FALSE(g.is_double());
  g.SetDouble(3.25);
  EXPECT_TRUE(g.is_double());
  EXPECT_DOUBLE_EQ(g.DoubleValue(), 3.25);
}

TEST(RegistryTest, IdempotentRegistration) {
  MetricRegistry reg;
  Counter* a = reg.RegisterCounter("execs");
  Counter* b = reg.RegisterCounter("execs");
  EXPECT_EQ(a, b);
  Gauge* g = reg.RegisterGauge("coverage");
  EXPECT_EQ(g, reg.RegisterGauge("coverage"));
  Histogram* h = reg.RegisterHistogram("lat");
  EXPECT_EQ(h, reg.RegisterHistogram("lat"));
  EXPECT_EQ(reg.Entries().size(), 3u);
}

TEST(RegistryTest, EntriesSortedAndReset) {
  MetricRegistry reg;
  reg.RegisterCounter("zzz")->Add(7);
  reg.RegisterCounter("aaa")->Add(3);
  reg.RegisterHistogram("mid")->Record(12);
  const auto entries = reg.Entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].name, "aaa");
  EXPECT_EQ(entries[1].name, "mid");
  EXPECT_EQ(entries[2].name, "zzz");
  reg.ResetValues();
  EXPECT_EQ(reg.Entries()[0].counter->Value(), 0u);
  EXPECT_EQ(reg.Entries()[1].histogram->Snap().total, 0u);
}

TEST(RegistryTest, DumpTextAndJson) {
  MetricRegistry reg;
  reg.RegisterCounter("execs")->Add(1234);
  reg.RegisterGauge("rate")->SetDouble(56.5);
  reg.RegisterHistogram("lat")->Record(100);
  const std::string text = DumpText(reg);
  EXPECT_NE(text.find("execs 1234"), std::string::npos);
  EXPECT_NE(text.find("rate 56.500"), std::string::npos);
  EXPECT_NE(text.find("lat total=1"), std::string::npos);
  const std::string json = DumpJson(reg);
  EXPECT_NE(json.find("\"execs\": 1234"), std::string::npos);
  EXPECT_NE(json.find("\"rate\": 56.500"), std::string::npos);
  EXPECT_NE(json.find("\"lat\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
}

// Fixture that turns the profiler on and guarantees it is off again after.
class ScopedPhaseTest : public ::testing::Test {
 protected:
  void SetUp() override { SetTelemetryEnabled(true); }
  void TearDown() override {
    SetTelemetryEnabled(false);
    ASSERT_EQ(PhaseDepth(), 0u);
  }
};

TEST_F(ScopedPhaseTest, RecordsIntoPhaseHistogram) {
  const uint64_t before = PhaseHistogram(Phase::kMutate)->Snap().total;
  {
    ScopedPhase phase(Phase::kMutate);
    EXPECT_EQ(PhaseDepth(), 1u);
  }
  EXPECT_EQ(PhaseDepth(), 0u);
  EXPECT_EQ(PhaseHistogram(Phase::kMutate)->Snap().total, before + 1);
}

TEST_F(ScopedPhaseTest, NestingRecordsSelfTime) {
  const uint64_t outer_before = PhaseHistogram(Phase::kGuestRun)->Snap().total;
  const uint64_t inner_before = PhaseHistogram(Phase::kDirtyReset)->Snap().total;
  {
    ScopedPhase outer(Phase::kGuestRun);
    {
      ScopedPhase inner(Phase::kDirtyReset);
      EXPECT_EQ(PhaseDepth(), 2u);
    }
    EXPECT_EQ(PhaseDepth(), 1u);
  }
  EXPECT_EQ(PhaseHistogram(Phase::kGuestRun)->Snap().total, outer_before + 1);
  EXPECT_EQ(PhaseHistogram(Phase::kDirtyReset)->Snap().total, inner_before + 1);
}

TEST_F(ScopedPhaseTest, ReentrantSamePhase) {
  const uint64_t before = PhaseHistogram(Phase::kNetemu)->Snap().total;
  {
    ScopedPhase a(Phase::kNetemu);
    ScopedPhase b(Phase::kNetemu);
    ScopedPhase c(Phase::kNetemu);
    EXPECT_EQ(PhaseDepth(), 3u);
  }
  EXPECT_EQ(PhaseHistogram(Phase::kNetemu)->Snap().total, before + 3);
}

TEST_F(ScopedPhaseTest, DeepNestingIsDroppedNotCorrupted) {
  // 40 levels exceeds the 32-frame stack; the excess scopes drop their
  // samples but the stack must unwind back to zero.
  std::vector<std::unique_ptr<ScopedPhase>> scopes;
  for (int i = 0; i < 40; i++) {
    scopes.push_back(std::make_unique<ScopedPhase>(Phase::kVerify));
  }
  EXPECT_EQ(PhaseDepth(), 32u);
  scopes.clear();
  EXPECT_EQ(PhaseDepth(), 0u);
}

TEST(DisabledTest, ScopedPhaseIsInertWhenDisabled) {
  SetTelemetryEnabled(false);
  const uint64_t before = PhaseHistogram(Phase::kAudit)->Snap().total;
  {
    ScopedPhase phase(Phase::kAudit);
    EXPECT_EQ(PhaseDepth(), 0u);
  }
  EXPECT_EQ(PhaseHistogram(Phase::kAudit)->Snap().total, before);
}

TEST(PhaseNameTest, AllPhasesNamed) {
  for (size_t i = 0; i < kPhaseCount; i++) {
    const char* name = PhaseName(static_cast<Phase>(i));
    EXPECT_STRNE(name, "?") << i;
    EXPECT_GT(strlen(name), 0u);
  }
}

}  // namespace
}  // namespace telemetry
}  // namespace nyx
