// Tests for the ring-buffer trace recorder and Chrome trace-event export
// (src/common/trace.h): recording gates, ring wraparound accounting, track
// naming, and a golden-shape check that the emitted JSON is well-formed and
// round-trips the recorded events.

#include "src/common/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "src/common/telemetry.h"

namespace nyx {
namespace trace {
namespace {

std::string TmpPath(const char* name) {
  return ::testing::TempDir() + name;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Minimal structural validation: balanced braces/brackets outside strings.
// (The full schema check lives in src/tools/trace_check.cc, which CI runs
// against a traced table3 smoke.)
bool BalancedJson(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < s.size(); i++) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') {
        i++;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      depth++;
    } else if (c == '}' || c == ']') {
      if (--depth < 0) {
        return false;
      }
    }
  }
  return depth == 0 && !in_string;
}

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TmpPath("nyx_trace_test.json");
    SetTracePathForTest(path_);  // also resets the rings
    telemetry::SetTelemetryEnabled(true);
  }
  void TearDown() override {
    telemetry::SetTelemetryEnabled(false);
    SetTracePathForTest("");
    remove(path_.c_str());
  }
  std::string path_;
};

TEST_F(TraceTest, RecordsAndExportsPhases) {
  SetThreadTrackName("main");
  {
    telemetry::ScopedPhase a(telemetry::Phase::kGuestRun);
    telemetry::ScopedPhase b(telemetry::Phase::kDirtyReset);
  }
  { telemetry::ScopedPhase c(telemetry::Phase::kCoverageMerge); }

  const RecorderStats stats = GetRecorderStats();
  EXPECT_GE(stats.recorded, 3u);
  EXPECT_GE(stats.tracks, 1u);

  ASSERT_TRUE(WriteTrace(path_));
  const std::string json = ReadAll(path_);
  EXPECT_TRUE(BalancedJson(json));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"main\""), std::string::npos);
  EXPECT_NE(json.find("\"guest-run\""), std::string::npos);
  EXPECT_NE(json.find("\"dirty-reset\""), std::string::npos);
  EXPECT_NE(json.find("\"coverage-merge\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
}

TEST_F(TraceTest, RoundTripEventCount) {
  constexpr int kEvents = 17;
  const uint64_t recorded_before = GetRecorderStats().recorded;
  for (int i = 0; i < kEvents; i++) {
    telemetry::ScopedPhase phase(telemetry::Phase::kMutate);
  }
  EXPECT_EQ(GetRecorderStats().recorded, recorded_before + kEvents);
  ASSERT_TRUE(WriteTrace(path_));
  const std::string json = ReadAll(path_);
  // Exactly one X event per recorded scope survives the export.
  size_t hits = 0;
  for (size_t pos = json.find("\"mutate\""); pos != std::string::npos;
       pos = json.find("\"mutate\"", pos + 1)) {
    hits++;
  }
  EXPECT_EQ(hits, recorded_before + kEvents);
}

TEST_F(TraceTest, RingWraparoundKeepsMostRecent) {
  // A fresh thread gets its own ring sized by NYX_TRACE_RING; force a tiny
  // one so wraparound happens in a handful of events.
  setenv("NYX_TRACE_RING", "8", 1);
  std::thread recorder([] {
    SetThreadTrackName("wrap");
    for (int i = 0; i < 20; i++) {
      telemetry::ScopedPhase phase(telemetry::Phase::kNetemu);
    }
  });
  recorder.join();
  unsetenv("NYX_TRACE_RING");

  const RecorderStats stats = GetRecorderStats();
  EXPECT_EQ(stats.dropped, 20u - 8u);  // ring keeps the most recent 8

  ASSERT_TRUE(WriteTrace(path_));
  const std::string json = ReadAll(path_);
  EXPECT_TRUE(BalancedJson(json));
  EXPECT_NE(json.find("\"wrap\""), std::string::npos);
  // Exported ts values are non-decreasing within the wrapped track — the
  // writer must start from the oldest surviving event, not slot zero.
  size_t netemu = 0;
  double last_ts = -1.0;
  for (size_t pos = json.find("\"netemu\""); pos != std::string::npos;
       pos = json.find("\"netemu\"", pos + 1)) {
    const size_t ts_at = json.find("\"ts\": ", pos);
    ASSERT_NE(ts_at, std::string::npos);
    const double ts = atof(json.c_str() + ts_at + 6);
    EXPECT_GE(ts, last_ts);
    last_ts = ts;
    netemu++;
  }
  EXPECT_EQ(netemu, 8u);
}

TEST_F(TraceTest, InactiveWithoutPath) {
  SetTracePathForTest("");
  EXPECT_FALSE(TracingActive());
  const uint64_t before = GetRecorderStats().recorded;
  { telemetry::ScopedPhase phase(telemetry::Phase::kVerify); }
  EXPECT_EQ(GetRecorderStats().recorded, before);  // nothing recorded
}

}  // namespace
}  // namespace trace
}  // namespace nyx
