// Tests for the selective network emulation layer: socket lifecycle, packet
// boundary semantics, readiness emulation, fd aliasing across dup/fork, and
// snapshot serialization.

#include <gtest/gtest.h>

#include <cstring>

#include "src/netemu/netemu.h"

namespace nyx {
namespace {

// Builds a server-side listener and one queued connection; returns
// {listener_fd, conn_handle, accepted_fd}.
struct ServerSetup {
  NetEmu net;
  int listener_fd;
  int conn;
  int conn_fd;

  ServerSetup() : net() {
    listener_fd = net.Socket(SockKind::kStream);
    EXPECT_EQ(net.Bind(listener_fd, 8080), 0);
    EXPECT_EQ(net.Listen(listener_fd, 16), 0);
    conn = net.QueueConnection(8080);
    EXPECT_GE(conn, 0);
    conn_fd = net.Accept(listener_fd);
    EXPECT_GE(conn_fd, 0);
  }
};

TEST(NetEmuTest, AcceptBlocksWithoutPendingConnection) {
  NetEmu net;
  int fd = net.Socket(SockKind::kStream);
  net.Bind(fd, 21);
  net.Listen(fd, 1);
  EXPECT_EQ(net.Accept(fd), kErrAgain);
  EXPECT_TRUE(net.blocked_on_input());
}

TEST(NetEmuTest, QueueConnectionNeedsListener) {
  NetEmu net;
  EXPECT_EQ(net.QueueConnection(80), -1);
  int fd = net.Socket(SockKind::kStream);
  net.Bind(fd, 80);
  EXPECT_EQ(net.QueueConnection(80), -1);  // bound but not listening
  net.Listen(fd, 1);
  EXPECT_GE(net.QueueConnection(80), 0);
  EXPECT_EQ(net.QueueConnection(9999), -1);  // wrong port
}

TEST(NetEmuTest, RecvPreservesPacketBoundaries) {
  ServerSetup s;
  s.net.DeliverPacket(s.conn, ToBytes("AAAA"));
  s.net.DeliverPacket(s.conn, ToBytes("BB"));
  char buf[16];
  // A large read returns only the first packet: "a single call to recv()
  // will never return data from more than one packet".
  int n = s.net.Recv(s.conn_fd, buf, sizeof(buf));
  ASSERT_EQ(n, 4);
  EXPECT_EQ(0, memcmp(buf, "AAAA", 4));
  n = s.net.Recv(s.conn_fd, buf, sizeof(buf));
  ASSERT_EQ(n, 2);
  EXPECT_EQ(0, memcmp(buf, "BB", 2));
  EXPECT_EQ(s.net.Recv(s.conn_fd, buf, sizeof(buf)), kErrAgain);
  EXPECT_TRUE(s.net.consumed_input());
}

TEST(NetEmuTest, ShortReadsResumeWithinPacket) {
  ServerSetup s;
  s.net.DeliverPacket(s.conn, ToBytes("HELLO"));
  char buf[3];
  EXPECT_EQ(s.net.Recv(s.conn_fd, buf, 2), 2);
  EXPECT_EQ(0, memcmp(buf, "HE", 2));
  EXPECT_EQ(s.net.Recv(s.conn_fd, buf, 2), 2);
  EXPECT_EQ(0, memcmp(buf, "LL", 2));
  EXPECT_EQ(s.net.Recv(s.conn_fd, buf, 2), 1);
  EXPECT_EQ(buf[0], 'O');
}

TEST(NetEmuTest, CoalescingModeDrainsAcrossPackets) {
  NetEmu::Config cfg;
  cfg.preserve_packet_boundaries = false;
  NetEmu net(cfg);
  int lfd = net.Socket(SockKind::kStream);
  net.Bind(lfd, 80);
  net.Listen(lfd, 1);
  int conn = net.QueueConnection(80);
  int cfd = net.Accept(lfd);
  net.DeliverPacket(conn, ToBytes("AB"));
  net.DeliverPacket(conn, ToBytes("CD"));
  char buf[8];
  EXPECT_EQ(net.Recv(cfd, buf, 3), 3);
  EXPECT_EQ(0, memcmp(buf, "ABC", 3));
}

TEST(NetEmuTest, DatagramTruncationAndBoundaries) {
  NetEmu net;
  int fd = net.Socket(SockKind::kDgram);
  net.Bind(fd, 53);
  // For UDP the bound socket is itself the attack surface.
  net.DeliverPacket(0, ToBytes("LONGDATAGRAM"));
  net.DeliverPacket(0, ToBytes("x"));
  char buf[4];
  EXPECT_EQ(net.Recv(fd, buf, 4), 4);  // truncated, rest discarded
  EXPECT_EQ(net.Recv(fd, buf, 4), 1);
  EXPECT_EQ(buf[0], 'x');
}

TEST(NetEmuTest, PeerCloseYieldsEof) {
  ServerSetup s;
  s.net.DeliverPacket(s.conn, ToBytes("A"));
  s.net.PeerClose(s.conn);
  char buf[4];
  EXPECT_EQ(s.net.Recv(s.conn_fd, buf, 4), 1);  // data before EOF
  EXPECT_EQ(s.net.Recv(s.conn_fd, buf, 4), 0);  // then orderly EOF
}

TEST(NetEmuTest, SendRecordsResponses) {
  ServerSetup s;
  s.net.Send(s.conn_fd, "220 ready\r\n", 11);
  s.net.Send(s.conn_fd, "500 no\r\n", 8);
  const auto& sent = s.net.Sent(s.conn);
  ASSERT_EQ(sent.size(), 2u);
  EXPECT_EQ(ToString(sent[0]), "220 ready\r\n");
  EXPECT_EQ(ToString(sent[1]), "500 no\r\n");
}

TEST(NetEmuTest, BadFdErrors) {
  NetEmu net;
  char buf[1];
  EXPECT_EQ(net.Recv(99, buf, 1), kErrBadf);
  EXPECT_EQ(net.Send(99, "x", 1), kErrBadf);
  EXPECT_EQ(net.Close(99), kErrBadf);
  EXPECT_EQ(net.Dup(99), kErrBadf);
  EXPECT_EQ(net.Accept(99), kErrBadf);
  EXPECT_EQ(net.Listen(99, 1), kErrBadf);
}

TEST(NetEmuTest, RecvOnListenerIsInvalid) {
  ServerSetup s;
  char buf[1];
  EXPECT_EQ(s.net.Recv(s.listener_fd, buf, 1), kErrInval);
}

TEST(NetEmuTest, DupAliasesShareConsumption) {
  ServerSetup s;
  int alias = s.net.Dup(s.conn_fd);
  ASSERT_GE(alias, 0);
  s.net.DeliverPacket(s.conn, ToBytes("XY"));
  char buf[4];
  EXPECT_EQ(s.net.Recv(alias, buf, 4), 2);
  EXPECT_EQ(s.net.Recv(s.conn_fd, buf, 4), kErrAgain);
  // Socket stays alive until the last alias closes.
  EXPECT_EQ(s.net.Close(s.conn_fd), 0);
  s.net.DeliverPacket(s.conn, ToBytes("Z"));
  EXPECT_EQ(s.net.Recv(alias, buf, 4), 1);
  EXPECT_EQ(s.net.Close(alias), 0);
  EXPECT_FALSE(s.net.ValidConn(s.conn));
}

TEST(NetEmuTest, Dup2ReplacesTarget) {
  ServerSetup s;
  int other = s.net.Socket(SockKind::kStream);
  int r = s.net.Dup2(s.conn_fd, other);
  EXPECT_EQ(r, other);
  s.net.DeliverPacket(s.conn, ToBytes("Q"));
  char buf[2];
  EXPECT_EQ(s.net.Recv(other, buf, 2), 1);
  EXPECT_EQ(buf[0], 'Q');
  EXPECT_EQ(s.net.Dup2(s.conn_fd, s.conn_fd), s.conn_fd);
}

TEST(NetEmuTest, ForkSharesStreamPosition) {
  ServerSetup s;
  s.net.DeliverPacket(s.conn, ToBytes("ONE"));
  s.net.DeliverPacket(s.conn, ToBytes("TWO"));
  const int child = s.net.ForkFdTable();
  char buf[8];
  // Parent reads the first packet.
  EXPECT_EQ(s.net.Recv(s.conn_fd, buf, 8), 3);
  EXPECT_EQ(0, memcmp(buf, "ONE", 3));
  // Child's view of the shared socket continues where the parent left off:
  // "This library also ensures that packets are consumed correctly across
  // multiple processes."
  s.net.SetCurrentProcess(child);
  EXPECT_EQ(s.net.Recv(s.conn_fd, buf, 8), 3);
  EXPECT_EQ(0, memcmp(buf, "TWO", 3));
  // Parent exit must not kill the socket while the child holds a reference.
  s.net.ExitProcess(0);
  EXPECT_TRUE(s.net.ValidConn(s.conn));
  s.net.ExitProcess(child);
  EXPECT_FALSE(s.net.ValidConn(s.conn));
}

TEST(NetEmuTest, PollReportsReadiness) {
  ServerSetup s;
  std::vector<PollRequest> reqs(1);
  reqs[0].fd = s.conn_fd;
  reqs[0].want_read = true;
  reqs[0].want_write = true;
  EXPECT_EQ(s.net.Poll(reqs), 1);  // writable only
  EXPECT_FALSE(reqs[0].readable);
  EXPECT_TRUE(reqs[0].writable);

  s.net.DeliverPacket(s.conn, ToBytes("A"));
  EXPECT_EQ(s.net.Poll(reqs), 1);
  EXPECT_TRUE(reqs[0].readable);

  // Read-only poll with nothing queued signals the blocked-on-input point.
  char buf[2];
  s.net.Recv(s.conn_fd, buf, 2);
  reqs[0].want_write = false;
  EXPECT_EQ(s.net.Poll(reqs), 0);
  EXPECT_TRUE(s.net.blocked_on_input());
}

TEST(NetEmuTest, PollListenerReadableWithPendingConn) {
  NetEmu net;
  int lfd = net.Socket(SockKind::kStream);
  net.Bind(lfd, 80);
  net.Listen(lfd, 4);
  std::vector<PollRequest> reqs(1);
  reqs[0].fd = lfd;
  reqs[0].want_read = true;
  EXPECT_EQ(net.Poll(reqs), 0);
  net.QueueConnection(80);
  EXPECT_EQ(net.Poll(reqs), 1);
  EXPECT_TRUE(reqs[0].readable);
}

TEST(NetEmuTest, EpollLifecycle) {
  ServerSetup s;
  int ep = s.net.EpollCreate();
  ASSERT_GE(ep, 0);
  EXPECT_EQ(s.net.EpollCtlAdd(ep, s.conn_fd, true), 0);
  EXPECT_EQ(s.net.EpollCtlAdd(ep, s.conn_fd, true), kErrInval);  // duplicate
  std::vector<int> ready;
  EXPECT_EQ(s.net.EpollWait(ep, ready), 0);
  EXPECT_TRUE(s.net.blocked_on_input());
  s.net.DeliverPacket(s.conn, ToBytes("A"));
  EXPECT_EQ(s.net.EpollWait(ep, ready), 1);
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0], s.conn_fd);
  EXPECT_EQ(s.net.EpollCtlDel(ep, s.conn_fd), 0);
  EXPECT_EQ(s.net.EpollWait(ep, ready), 0);
  EXPECT_EQ(s.net.EpollCtlDel(ep, s.conn_fd), kErrBadf);
}

TEST(NetEmuTest, ClientConnectBecomesAttackSurface) {
  NetEmu net;
  int fd = net.Socket(SockKind::kStream);
  EXPECT_EQ(net.Connect(fd, 3306), 0);
  ASSERT_EQ(net.ClientConnections().size(), 1u);
  const int conn = net.ClientConnections()[0];
  net.DeliverPacket(conn, ToBytes("server-greeting"));
  char buf[32];
  EXPECT_EQ(net.Recv(fd, buf, 32), 15);
  EXPECT_TRUE(net.consumed_input());
}

TEST(NetEmuTest, ShutdownStopsSendGivesEof) {
  ServerSetup s;
  EXPECT_EQ(s.net.Shutdown(s.conn_fd), 0);
  // Writing after our own shutdown is EPIPE, matching a real kernel (it was
  // ENOTCONN before the error-path audit).
  EXPECT_EQ(s.net.Send(s.conn_fd, "x", 1), kErrPipe);
  char buf[1];
  EXPECT_EQ(s.net.Recv(s.conn_fd, buf, 1), 0);
}

TEST(NetEmuTest, SendAfterPeerFinStillSucceeds) {
  // Error-path consistency: a peer FIN half-closes the stream. The target
  // can still send (TCP delivers post-FIN data to the peer's socket until
  // it resets); only shutdown/reset make Send fail.
  ServerSetup s;
  s.net.PeerClose(s.conn);
  EXPECT_EQ(s.net.Send(s.conn_fd, "late", 4), 4);
  char buf[4];
  EXPECT_EQ(s.net.Recv(s.conn_fd, buf, 4), 0);  // EOF after FIN, rx empty
}

TEST(NetEmuTest, FdExhaustion) {
  NetEmu::Config cfg;
  cfg.max_fds = 4;
  cfg.max_sockets = 8;
  NetEmu net(cfg);
  int a = net.Socket(SockKind::kStream);
  int b = net.Socket(SockKind::kStream);
  int c = net.Socket(SockKind::kStream);
  int d = net.Socket(SockKind::kStream);
  EXPECT_GE(d, 0);
  EXPECT_EQ(net.Socket(SockKind::kStream), kErrMfile);
  net.Close(b);
  EXPECT_GE(net.Socket(SockKind::kStream), 0);  // slot reused
  (void)a;
  (void)c;
}

TEST(NetEmuTest, UndeliveredBytesCountsQueuedInput) {
  ServerSetup s;
  s.net.DeliverPacket(s.conn, ToBytes("AAAA"));
  s.net.DeliverPacket(s.conn, ToBytes("BB"));
  EXPECT_EQ(s.net.UndeliveredBytes(), 6u);
  char buf[8];
  s.net.Recv(s.conn_fd, buf, 8);
  EXPECT_EQ(s.net.UndeliveredBytes(), 2u);
}

TEST(NetEmuTest, SerializeDeserializeRoundTrip) {
  ServerSetup s;
  s.net.DeliverPacket(s.conn, ToBytes("PENDING"));
  s.net.Send(s.conn_fd, "SENT", 4);
  int ep = s.net.EpollCreate();
  s.net.EpollCtlAdd(ep, s.conn_fd, true);
  char tmp[3];
  s.net.Recv(s.conn_fd, tmp, 3);  // partial consume: offset must survive

  Bytes blob = s.net.Serialize();
  NetEmu restored;
  ASSERT_TRUE(restored.Deserialize(blob));

  // The restored instance continues mid-packet.
  char buf[8];
  EXPECT_EQ(restored.Recv(s.conn_fd, buf, 8), 4);
  EXPECT_EQ(0, memcmp(buf, "DING", 4));
  EXPECT_EQ(ToString(restored.Sent(s.conn)[0]), "SENT");
  EXPECT_TRUE(restored.consumed_input());
}

TEST(NetEmuTest, ForkFdTableSurvivesSnapshotRestore) {
  // A forked server is mid-handoff when the fuzzer snapshots: the child's
  // duplicated fd table, the shared socket refcounts, and the
  // current-process selector must all come back from the blob, or a resumed
  // run double-frees sockets the pre-snapshot run still held.
  ServerSetup s;
  s.net.DeliverPacket(s.conn, ToBytes("ONE"));
  s.net.DeliverPacket(s.conn, ToBytes("TWO"));
  const int child = s.net.ForkFdTable();
  ASSERT_GT(child, 0);
  char buf[8];
  EXPECT_EQ(s.net.Recv(s.conn_fd, buf, 8), 3);  // parent consumes "ONE"
  s.net.SetCurrentProcess(child);

  const Bytes blob = s.net.Serialize();
  NetEmu restored;
  ASSERT_TRUE(restored.Deserialize(blob));

  // The restore lands in the child process with the stream position intact.
  EXPECT_EQ(restored.current_process(), child);
  EXPECT_EQ(restored.Recv(s.conn_fd, buf, 8), 3);
  EXPECT_EQ(0, memcmp(buf, "TWO", 3));

  // Refcounts were restored too: the parent's exit must not tear down the
  // connection while the child's duplicated fd still references it.
  restored.ExitProcess(0);
  EXPECT_TRUE(restored.ValidConn(s.conn));
  restored.ExitProcess(child);
  EXPECT_FALSE(restored.ValidConn(s.conn));

  // The pre-restore instance is untouched by the restored copy's teardown.
  EXPECT_TRUE(s.net.ValidConn(s.conn));

  // A fork in the restored world must mint a process id the snapshot never
  // used — next_process_ survives the round trip.
  NetEmu again;
  ASSERT_TRUE(again.Deserialize(blob));
  EXPECT_GT(again.ForkFdTable(), child);
}

TEST(NetEmuTest, DeserializeRejectsGarbage) {
  NetEmu net;
  EXPECT_FALSE(net.Deserialize(ToBytes("not a snapshot")));
  EXPECT_FALSE(net.Deserialize({}));
}

TEST(NetEmuTest, ClockCharges) {
  NetEmu net;
  VirtualClock clock;
  CostModel cost;
  net.AttachClock(&clock, &cost);
  int fd = net.Socket(SockKind::kStream);
  net.Bind(fd, 1);
  EXPECT_EQ(clock.now_ns(), 2 * cost.emulated_call_ns);
  EXPECT_EQ(net.calls(), 2u);
}

// ---- deterministic fault injection ---------------------------------------

TEST(NetEmuFaultTest, ErrNameCoversTheTable) {
  EXPECT_STREQ(ErrName(kErrAgain), "EAGAIN");
  EXPECT_STREQ(ErrName(kErrConnReset), "ECONNRESET");
  EXPECT_STREQ(ErrName(kErrPipe), "EPIPE");
  EXPECT_STREQ(ErrName(kErrIntr), "EINTR");
  EXPECT_STREQ(ErrName(kErrTimedOut), "ETIMEDOUT");
  EXPECT_STREQ(ErrName(0), "OK");
  EXPECT_STREQ(ErrName(-12345), "E?");
}

TEST(NetEmuFaultTest, ShortReadCapsBurstThenNormal) {
  ServerSetup s;
  s.net.DeliverPacket(s.conn, ToBytes("ABCDEFGH"));
  ASSERT_TRUE(s.net.QueueFault(s.conn, FaultPlan{FaultKind::kShortRead, 2, 3}));
  char buf[8];
  // Two faulted calls serve at most 3 bytes each, then the cap is gone.
  EXPECT_EQ(s.net.Recv(s.conn_fd, buf, 8), 3);
  EXPECT_EQ(0, memcmp(buf, "ABC", 3));
  EXPECT_EQ(s.net.Recv(s.conn_fd, buf, 8), 3);
  EXPECT_EQ(0, memcmp(buf, "DEF", 3));
  EXPECT_EQ(s.net.Recv(s.conn_fd, buf, 8), 2);
  EXPECT_EQ(0, memcmp(buf, "GH", 2));
  EXPECT_EQ(s.net.faults_injected(), 2u);
}

TEST(NetEmuFaultTest, EagainAndIntrBurstsPassThenClear) {
  ServerSetup s;
  s.net.DeliverPacket(s.conn, ToBytes("DATA"));
  ASSERT_TRUE(s.net.QueueFault(s.conn, FaultPlan{FaultKind::kEagain, 2, 0}));
  ASSERT_TRUE(s.net.QueueFault(s.conn, FaultPlan{FaultKind::kIntr, 1, 0}));
  char buf[4];
  EXPECT_EQ(s.net.Recv(s.conn_fd, buf, 4), kErrAgain);
  EXPECT_EQ(s.net.Recv(s.conn_fd, buf, 4), kErrAgain);
  EXPECT_EQ(s.net.Recv(s.conn_fd, buf, 4), kErrIntr);
  EXPECT_EQ(s.net.Recv(s.conn_fd, buf, 4), 4);
  EXPECT_EQ(s.net.faults_injected(), 3u);
}

TEST(NetEmuFaultTest, ConnResetDropsRxThenSendIsPipe) {
  ServerSetup s;
  s.net.DeliverPacket(s.conn, ToBytes("NEVER-READ"));
  ASSERT_TRUE(s.net.QueueFault(s.conn, FaultPlan{FaultKind::kConnReset, 1, 0}));
  char buf[8];
  EXPECT_EQ(s.net.Recv(s.conn_fd, buf, 8), kErrConnReset);
  // The reset is reported exactly once; afterwards reads are EOF and writes
  // are EPIPE, and the queued bytes moved to faulted_bytes.
  EXPECT_EQ(s.net.Recv(s.conn_fd, buf, 8), 0);
  EXPECT_EQ(s.net.Send(s.conn_fd, "x", 1), kErrPipe);
  EXPECT_EQ(s.net.faulted_bytes(), 10u);
  EXPECT_EQ(s.net.UndeliveredBytes(), 0u);
}

TEST(NetEmuFaultTest, DeliverToResetConnIsCountedFaulted) {
  ServerSetup s;
  ASSERT_TRUE(s.net.QueueFault(s.conn, FaultPlan{FaultKind::kConnReset, 1, 0}));
  char buf[1];
  EXPECT_EQ(s.net.Recv(s.conn_fd, buf, 1), kErrConnReset);
  EXPECT_TRUE(s.net.DeliverPacket(s.conn, ToBytes("DROPPED")));
  EXPECT_EQ(s.net.faulted_bytes(), 7u);
  EXPECT_EQ(s.net.UndeliveredBytes(), 0u);
  EXPECT_EQ(s.net.Recv(s.conn_fd, buf, 1), 0);  // still EOF, nothing queued
}

TEST(NetEmuFaultTest, PeerCloseMidMessageKeepsDataReadable) {
  ServerSetup s;
  s.net.DeliverPacket(s.conn, ToBytes("TAIL"));
  ASSERT_TRUE(s.net.QueueFault(s.conn, FaultPlan{FaultKind::kPeerClose, 1, 0}));
  char buf[4];
  // The FIN arrives, but queued data drains first — then EOF.
  EXPECT_EQ(s.net.Recv(s.conn_fd, buf, 4), 4);
  EXPECT_EQ(0, memcmp(buf, "TAIL", 4));
  EXPECT_EQ(s.net.Recv(s.conn_fd, buf, 4), 0);
  EXPECT_EQ(s.net.faulted_bytes(), 0u);  // nothing dropped
}

TEST(NetEmuFaultTest, ShortWriteCapsSend) {
  ServerSetup s;
  ASSERT_TRUE(s.net.QueueFault(s.conn, FaultPlan{FaultKind::kShortWrite, 1, 2}));
  EXPECT_EQ(s.net.Send(s.conn_fd, "LONG-REPLY", 10), 2);
  ASSERT_EQ(s.net.Sent(s.conn).size(), 1u);
  EXPECT_EQ(s.net.Sent(s.conn)[0].size(), 2u);  // only the accepted prefix
  EXPECT_EQ(s.net.Send(s.conn_fd, "OK", 2), 2);
}

TEST(NetEmuFaultTest, TimeoutAdvancesClockAndExpiresPoll) {
  ServerSetup s;
  VirtualClock clock;
  CostModel cost;
  s.net.AttachClock(&clock, &cost);
  s.net.DeliverPacket(s.conn, ToBytes("READY"));
  ASSERT_TRUE(s.net.QueueFault(s.conn, FaultPlan{FaultKind::kTimeout, 1, 250}));
  std::vector<PollRequest> reqs(1);
  reqs[0].fd = s.conn_fd;
  reqs[0].want_read = true;
  const uint64_t before = clock.now_ns();
  // Data is queued, but the timeout fault expires the poll anyway.
  EXPECT_EQ(s.net.Poll(reqs), 0);
  EXPECT_FALSE(reqs[0].readable);
  EXPECT_GE(clock.now_ns() - before, 250ull * 1000000ull);
  EXPECT_FALSE(s.net.blocked_on_input());
  // The fault is spent: the next poll sees the data.
  EXPECT_EQ(s.net.Poll(reqs), 1);
  EXPECT_TRUE(reqs[0].readable);
}

TEST(NetEmuFaultTest, TimeoutExpiresEpollWait) {
  ServerSetup s;
  s.net.DeliverPacket(s.conn, ToBytes("READY"));
  int ep = s.net.EpollCreate();
  ASSERT_EQ(s.net.EpollCtlAdd(ep, s.conn_fd, true), 0);
  ASSERT_TRUE(s.net.QueueFault(s.conn, FaultPlan{FaultKind::kTimeout, 1, 1}));
  std::vector<int> ready;
  EXPECT_EQ(s.net.EpollWait(ep, ready), 0);
  EXPECT_EQ(s.net.EpollWait(ep, ready), 1);
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0], s.conn_fd);
}

TEST(NetEmuFaultTest, AcceptSeesBacklogConnAbort) {
  NetEmu net;
  int listener = net.Socket(SockKind::kStream);
  net.Bind(listener, 8080);
  net.Listen(listener, 16);
  const int conn = net.QueueConnection(8080);
  ASSERT_GE(conn, 0);
  net.DeliverPacket(conn, ToBytes("EARLY"));
  ASSERT_TRUE(net.QueueFault(conn, FaultPlan{FaultKind::kConnReset, 1, 0}));
  // The queued connection aborts while sitting in the backlog; its early
  // data is accounted as faulted and the slot is gone.
  EXPECT_EQ(net.Accept(listener), kErrConnReset);
  EXPECT_EQ(net.faulted_bytes(), 5u);
  EXPECT_FALSE(net.ValidConn(conn));
  EXPECT_EQ(net.Accept(listener), kErrAgain);  // backlog is empty again
}

TEST(NetEmuFaultTest, ConnectTimeoutFault) {
  NetEmu net;
  int fd = net.Socket(SockKind::kStream);
  // Queue the fault directly on the socket before the connect attempt. The
  // fd maps straight onto its socket index here (first allocation).
  ASSERT_TRUE(net.QueueFault(0, FaultPlan{FaultKind::kTimeout, 1, 30000}));
  EXPECT_EQ(net.Connect(fd, 443), kErrTimedOut);
  EXPECT_TRUE(net.ClientConnections().empty());
  EXPECT_EQ(net.Connect(fd, 443), 0);  // retry succeeds
  EXPECT_EQ(net.ClientConnections().size(), 1u);
}

TEST(NetEmuFaultTest, QueueFaultRejectsInvalidPlanAndConn) {
  ServerSetup s;
  FaultPlan bad_kind{static_cast<FaultKind>(99), 1, 0};
  EXPECT_FALSE(s.net.QueueFault(s.conn, bad_kind));
  FaultPlan bad_burst{FaultKind::kEagain, 0, 0};
  EXPECT_FALSE(s.net.QueueFault(s.conn, bad_burst));
  FaultPlan over_burst{FaultKind::kEagain, static_cast<uint8_t>(kMaxFaultBurst + 1), 0};
  EXPECT_FALSE(s.net.QueueFault(s.conn, over_burst));
  EXPECT_FALSE(s.net.QueueFault(-1, FaultPlan{FaultKind::kEagain, 1, 0}));
  EXPECT_EQ(s.net.faults_injected(), 0u);
}

TEST(NetEmuFaultTest, FaultQueueIsStrictFifo) {
  // A front short-write waits for a Send; it does not leak into Recv.
  ServerSetup s;
  s.net.DeliverPacket(s.conn, ToBytes("ABCDEFGH"));
  ASSERT_TRUE(s.net.QueueFault(s.conn, FaultPlan{FaultKind::kShortWrite, 1, 1}));
  ASSERT_TRUE(s.net.QueueFault(s.conn, FaultPlan{FaultKind::kShortRead, 1, 2}));
  char buf[8];
  // Recv ignores the queued short-write (front of queue) — full read.
  EXPECT_EQ(s.net.Recv(s.conn_fd, buf, 8), 8);
  // Send consumes the short-write; the short-read now fronts the queue.
  EXPECT_EQ(s.net.Send(s.conn_fd, "XY", 2), 1);
  s.net.DeliverPacket(s.conn, ToBytes("WXYZ"));
  EXPECT_EQ(s.net.Recv(s.conn_fd, buf, 8), 2);
}

TEST(NetEmuFaultTest, FaultQueueSurvivesSerializeMidBurst) {
  ServerSetup s;
  s.net.DeliverPacket(s.conn, ToBytes("ABCDEF"));
  ASSERT_TRUE(s.net.QueueFault(s.conn, FaultPlan{FaultKind::kEagain, 3, 0}));
  char buf[8];
  EXPECT_EQ(s.net.Recv(s.conn_fd, buf, 8), kErrAgain);  // burn 1 of 3

  Bytes blob = s.net.Serialize();
  NetEmu restored;
  ASSERT_TRUE(restored.Deserialize(blob));
  // Both instances replay the remaining two applications identically.
  for (NetEmu* net : {&s.net, &restored}) {
    EXPECT_EQ(net->Recv(s.conn_fd, buf, 8), kErrAgain);
    EXPECT_EQ(net->Recv(s.conn_fd, buf, 8), kErrAgain);
    EXPECT_EQ(net->Recv(s.conn_fd, buf, 8), 6);
  }
}

TEST(NetEmuFaultTest, ResetFlagSurvivesSerialize) {
  ServerSetup s;
  ASSERT_TRUE(s.net.QueueFault(s.conn, FaultPlan{FaultKind::kConnReset, 1, 0}));
  char buf[1];
  EXPECT_EQ(s.net.Recv(s.conn_fd, buf, 1), kErrConnReset);
  Bytes blob = s.net.Serialize();
  NetEmu restored;
  ASSERT_TRUE(restored.Deserialize(blob));
  EXPECT_EQ(restored.Send(s.conn_fd, "x", 1), kErrPipe);
  EXPECT_EQ(restored.Recv(s.conn_fd, buf, 1), 0);
}

}  // namespace
}  // namespace nyx
