// Soundness property test for the analyzer's rewrites (ISSUE 10 gate).
//
// The static claims in src/spec/analyze.h are only as good as the dynamic
// behaviour they summarize, so this suite throws >= 1000 random programs
// (split across two real protocol targets) at the differential oracle:
//
//  * Canonicalize must preserve the full execution fingerprint — coverage
//    map, site hashes, guest pages, device state, disk, crash identity —
//    under a pinned per-exec RNG (engine::CheckRewriteEquivalence).
//  * TrimProgram's output must keep the coverage fingerprint of the input
//    and replay audit-clean with incremental snapshots in play
//    (snapshot_depth = 2, audit = run-twice page-hash oracle).
//
// Random programs come from the mutator's own Repair path, so the
// distribution matches what a campaign actually executes: arbitrary op
// soups with sanitized fault plans, not just builder-shaped sessions.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/fuzz/engine.h"
#include "src/fuzz/trim.h"
#include "src/spec/analyze.h"
#include "src/spec/program.h"
#include "src/spec/spec.h"
#include "src/targets/registry.h"

namespace nyx {
namespace {

// Random verify-clean program of up to 12 ops: random opcodes, random args,
// random payloads (fault payloads random 4 bytes), then Repair.
Program RandomProgram(const Spec& spec, Rng& rng) {
  Program p;
  const uint64_t nops = rng.Range(1, 12);
  for (uint64_t i = 0; i < nops; i++) {
    Op op;
    op.node_type = rng.Chance(1, 12)
                       ? kSnapshotOpcode
                       : static_cast<uint8_t>(rng.Below(spec.node_type_count()));
    if (!op.is_snapshot()) {
      const NodeTypeDef& node = spec.node_type(op.node_type);
      for (size_t a = 0; a < node.borrows.size() + node.consumes.size(); a++) {
        op.args.push_back(static_cast<uint16_t>(rng.Below(16)));
      }
      if (node.data == DataKind::kBytes) {
        const uint64_t len = rng.Below(24);
        for (uint64_t j = 0; j < len; j++) {
          op.data.push_back(rng.NextByte());
        }
      } else if (node.data == DataKind::kU32) {
        for (int j = 0; j < 4; j++) {
          op.data.push_back(rng.NextByte());
        }
      }
    }
    p.ops.push_back(std::move(op));
  }
  p.Repair(spec);
  return p;
}

class AnalyzeSoundnessTest : public ::testing::TestWithParam<const char*> {};

TEST_P(AnalyzeSoundnessTest, CanonicalizePreservesExecution) {
  auto reg = FindTarget(GetParam());
  ASSERT_TRUE(reg.has_value());
  const Spec spec = reg->make_spec();

  EngineConfig cfg;
  cfg.vm.mem_pages = 256;
  cfg.vm.disk_sectors = 256;
  cfg.seed = 7;
  NyxEngine engine(cfg, reg->factory, spec);
  engine.Boot();

  Rng rng(0x5eed0 + std::string(GetParam()).size());
  size_t rewrites = 0;
  for (int trial = 0; trial < 500; trial++) {
    const Program p = RandomProgram(spec, rng);
    const Program canon = spec::Canonicalize(p, spec);
    ASSERT_TRUE(canon.Validate(spec)) << "trial " << trial;
    rewrites += canon.OpsHash(canon.ops.size()) != p.OpsHash(p.ops.size()) ? 1 : 0;
    std::string why;
    ASSERT_TRUE(engine.CheckRewriteEquivalence(p, canon, &why))
        << GetParam() << " trial " << trial << ": " << why;
  }
  // The generator must actually exercise the rewrites (dead faults, ignored
  // args, markers) — an identity-only run would prove nothing.
  EXPECT_GT(rewrites, 50u) << "generator stopped producing canonicalizable programs";
}

TEST_P(AnalyzeSoundnessTest, TrimPreservesCoverageAndRepliesAuditClean) {
  auto reg = FindTarget(GetParam());
  ASSERT_TRUE(reg.has_value());
  const Spec spec = reg->make_spec();

  // Audit + depth-2 snapshots: trim probes replay through incremental
  // restores, and the run-twice oracle cross-checks every restored page.
  EngineConfig cfg;
  cfg.vm.mem_pages = 256;
  cfg.vm.disk_sectors = 256;
  cfg.vm.snapshot_depth = 2;
  cfg.audit = true;
  cfg.seed = 11;
  NyxEngine engine(cfg, reg->factory, spec);
  engine.Boot();

  Rng rng(0xdeed);
  for (int trial = 0; trial < 30; trial++) {
    Program p = RandomProgram(spec, rng);
    // Bias toward snapshot-bearing inputs: depth > 1 only matters when the
    // program carries a marker for the incremental layer to key on.
    if (!p.SnapshotMarkerPos().has_value() && !p.PacketOpIndices(spec).empty()) {
      p.InsertSnapshotAfterPacket(spec, 0);
    }

    TrimStats stats;
    const Program trimmed = TrimProgram(engine, spec, p, TrimOptions{}, &stats);
    EXPECT_TRUE(trimmed.Validate(spec)) << "trial " << trial;
    EXPECT_LE(stats.ops_after, stats.ops_before) << "trial " << trial;
    EXPECT_EQ(stats.audit_divergences, 0u) << GetParam() << " trial " << trial;

    // The trimmed program's pinned replay matches the original's coverage
    // fingerprint by construction; it must also still satisfy the static
    // verifier end-to-end (wire round trip included).
    const Bytes wire = trimmed.Serialize();
    EXPECT_TRUE(Program::Parse(wire, spec).has_value()) << "trial " << trial;
  }
  EXPECT_EQ(engine.auditor()->stats().divergences, 0u);
}

INSTANTIATE_TEST_SUITE_P(Targets, AnalyzeSoundnessTest,
                         ::testing::Values("lightftp", "kamailio"));

}  // namespace
}  // namespace nyx
