// Tests for the guest-heap allocator and its ASan-style semantics — the
// machinery behind the dcmtk footnote of Table 1.

#include <gtest/gtest.h>

#include "src/fuzz/guest.h"

namespace nyx {
namespace {

class GuestHeapTest : public ::testing::Test {
 protected:
  GuestHeapTest() : vm_(MakeConfig()), ctx_(vm_, net_, cov_, clock_, cost_) {}

  static VmConfig MakeConfig() {
    VmConfig cfg;
    cfg.mem_pages = 256;
    cfg.disk_sectors = 16;
    return cfg;
  }

  Vm vm_;
  NetEmu net_;
  CoverageMap cov_;
  VirtualClock clock_;
  CostModel cost_;
  GuestContext ctx_;
};

TEST_F(GuestHeapTest, MallocWriteReadRoundTrip) {
  const uint64_t a = ctx_.Malloc(64);
  ASSERT_NE(a, 0u);
  const char msg[] = "hello heap";
  ctx_.HeapWrite(a, 0, msg, sizeof(msg));
  char out[16] = {};
  ctx_.HeapRead(a, 0, out, sizeof(msg));
  EXPECT_STREQ(out, "hello heap");
  EXPECT_EQ(ctx_.HeapSizeOf(a), 64u);
  EXPECT_FALSE(ctx_.crash().crashed);
}

TEST_F(GuestHeapTest, AllocationsAreDisjoint) {
  const uint64_t a = ctx_.Malloc(32);
  const uint64_t b = ctx_.Malloc(32);
  ASSERT_NE(a, b);
  ctx_.HeapWrite(a, 0, "AAAA", 4);
  ctx_.HeapWrite(b, 0, "BBBB", 4);
  char out[5] = {};
  ctx_.HeapRead(a, 0, out, 4);
  EXPECT_EQ(0, memcmp(out, "AAAA", 4));
}

TEST_F(GuestHeapTest, AsanCatchesOverflowImmediately) {
  ctx_.set_asan(true);
  const uint64_t a = ctx_.Malloc(16);
  uint8_t big[32] = {};
  ctx_.HeapWrite(a, 0, big, sizeof(big));
  ASSERT_TRUE(ctx_.crash().crashed);
  EXPECT_EQ(ctx_.crash().kind, "asan-heap-buffer-overflow-write");
}

TEST_F(GuestHeapTest, AsanCatchesOobRead) {
  ctx_.set_asan(true);
  const uint64_t a = ctx_.Malloc(16);
  uint8_t out[32];
  ctx_.HeapRead(a, 8, out, 16);  // 8 + 16 > 16
  ASSERT_TRUE(ctx_.crash().crashed);
  EXPECT_EQ(ctx_.crash().kind, "asan-heap-buffer-overflow-read");
}

TEST_F(GuestHeapTest, WithoutAsanOverflowIsLatentUntilFree) {
  ctx_.set_asan(false);
  const uint64_t a = ctx_.Malloc(16);
  const uint64_t b = ctx_.Malloc(16);
  // Overflow a far enough to smash b's header (16 data + 8 redzone + header).
  uint8_t big[64];
  memset(big, 0xee, sizeof(big));
  ctx_.HeapWrite(a, 0, big, sizeof(big));
  EXPECT_FALSE(ctx_.crash().crashed);  // silent corruption
  ctx_.Free(b);                        // glibc-style abort on smashed header
  ASSERT_TRUE(ctx_.crash().crashed);
  EXPECT_EQ(ctx_.crash().kind, "heap-corruption-on-free");
}

TEST_F(GuestHeapTest, SmallOverflowStaysInRedzone) {
  ctx_.set_asan(false);
  const uint64_t a = ctx_.Malloc(16);
  const uint64_t b = ctx_.Malloc(16);
  uint8_t bit[20] = {};
  ctx_.HeapWrite(a, 0, bit, sizeof(bit));  // 4 bytes into the redzone
  ctx_.Free(b);
  ctx_.Free(a);
  EXPECT_FALSE(ctx_.crash().crashed);  // never detected (like real life)
}

TEST_F(GuestHeapTest, InvalidFreeCrashes) {
  ctx_.Free(12345);
  ASSERT_TRUE(ctx_.crash().crashed);
}

TEST_F(GuestHeapTest, DoubleFreeDetected) {
  const uint64_t a = ctx_.Malloc(8);
  ctx_.Free(a);
  ctx_.Free(a);
  ASSERT_TRUE(ctx_.crash().crashed);
  EXPECT_EQ(ctx_.crash().kind, "heap-corruption-on-free");
}

TEST_F(GuestHeapTest, ExhaustionReturnsZero)  {
  uint64_t last = 1;
  int allocations = 0;
  while (last != 0 && allocations < 100000) {
    last = ctx_.Malloc(4096);
    allocations++;
  }
  EXPECT_EQ(last, 0u);
  EXPECT_FALSE(ctx_.crash().crashed);  // graceful exhaustion
}

TEST_F(GuestHeapTest, HeapStateSurvivesSnapshotRoundTrip) {
  const uint64_t a = ctx_.Malloc(32);
  ctx_.HeapWrite(a, 0, "persist", 7);
  vm_.TakeRootSnapshot();
  ctx_.HeapWrite(a, 0, "clobber", 7);
  vm_.RestoreRoot();
  char out[8] = {};
  ctx_.HeapRead(a, 0, out, 7);
  EXPECT_EQ(0, memcmp(out, "persist", 7));
}

TEST_F(GuestHeapTest, CrashFirstWins) {
  ctx_.Crash(1, "first");
  ctx_.Crash(2, "second");
  EXPECT_EQ(ctx_.crash().crash_id, 1u);
  EXPECT_EQ(ctx_.crash().kind, "first");
  ctx_.ClearCrash();
  EXPECT_FALSE(ctx_.crash().crashed);
}

TEST_F(GuestHeapTest, IjonSlots) {
  ctx_.IjonMax(0, 10);
  ctx_.IjonMax(0, 5);
  EXPECT_EQ(ctx_.IjonValue(0), 10u);
  ctx_.IjonMax(7, 3);
  EXPECT_EQ(ctx_.IjonValue(7), 3u);
  ctx_.IjonMax(99, 1);  // out of range: ignored
  EXPECT_EQ(ctx_.IjonValue(99), 0u);
  ctx_.ResetIjon();
  EXPECT_EQ(ctx_.IjonValue(0), 0u);
}

}  // namespace
}  // namespace nyx
