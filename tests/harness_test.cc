// Tests for the evaluation harness: campaign runner plumbing for every
// fuzzer kind, repetition/median helpers and the table/format utilities.

#include <gtest/gtest.h>

#include <cstdlib>

#include "src/harness/campaign.h"
#include "src/harness/table.h"

namespace nyx {
namespace {

TEST(TableTest, RendersAlignedColumns) {
  TextTable t({"a", "long-header"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer-cell", "2"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("| a           | long-header |"), std::string::npos);
  EXPECT_NE(out.find("| longer-cell | 2           |"), std::string::npos);
  // Separator row present.
  EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(TableTest, ShortRowsArePadded) {
  TextTable t({"a", "b", "c"});
  t.AddRow({"only-one"});
  EXPECT_NE(t.Render().find("only-one"), std::string::npos);
}

TEST(FormatTest, Numbers) {
  EXPECT_EQ(Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(FmtPercent(0.043), "+4.3%");
  EXPECT_EQ(FmtPercent(-0.105), "-10.5%");
  EXPECT_EQ(FmtDuration(3725), "01:02:05");
  EXPECT_EQ(FmtDuration(-1), "-");
}

TEST(CampaignTest, FuzzerKindNames) {
  EXPECT_STREQ(FuzzerKindName(FuzzerKind::kAflnet), "AFLNet");
  EXPECT_STREQ(FuzzerKindName(FuzzerKind::kNyxAggressive), "Nyx-Net-aggressive");
  EXPECT_TRUE(IsNyxKind(FuzzerKind::kNyxNone));
  EXPECT_FALSE(IsNyxKind(FuzzerKind::kIjon));
}

TEST(CampaignTest, UnknownTargetUnsupported) {
  CampaignSpec cs;
  cs.target = "no-such-target";
  EXPECT_FALSE(RunCampaign(cs).supported);
}

TEST(CampaignTest, EveryFuzzerKindRunsLightFtp) {
  for (FuzzerKind f :
       {FuzzerKind::kAflnet, FuzzerKind::kAflnetNoState, FuzzerKind::kAflnwe,
        FuzzerKind::kAflppDesock, FuzzerKind::kNyxNone, FuzzerKind::kNyxBalanced,
        FuzzerKind::kNyxAggressive}) {
    CampaignSpec cs;
    cs.target = "lightftp";
    cs.fuzzer = f;
    cs.limits.vtime_seconds = 5.0;
    cs.limits.wall_seconds = 20.0;
    CampaignOutcome out = RunCampaign(cs);
    ASSERT_TRUE(out.supported) << FuzzerKindName(f);
    EXPECT_GT(out.result.execs, 0u) << FuzzerKindName(f);
    EXPECT_GT(out.result.branch_coverage, 0u) << FuzzerKindName(f);
  }
}

TEST(CampaignTest, DesockUnsupportedPropagates) {
  CampaignSpec cs;
  cs.target = "kamailio";
  cs.fuzzer = FuzzerKind::kAflppDesock;
  EXPECT_FALSE(RunCampaign(cs).supported);
  EXPECT_TRUE(RepeatCampaign(cs, 2).empty());
}

TEST(CampaignTest, RepeatVariesSeeds) {
  CampaignSpec cs;
  cs.target = "lightftp";
  cs.fuzzer = FuzzerKind::kNyxBalanced;
  cs.limits.vtime_seconds = 2.0;
  cs.limits.wall_seconds = 20.0;
  auto results = RepeatCampaign(cs, 3);
  ASSERT_EQ(results.size(), 3u);
  // Different seeds should give (usually) different exec counts.
  EXPECT_TRUE(results[0].execs != results[1].execs || results[1].execs != results[2].execs);
}

TEST(CampaignTest, MarioCampaignSolves) {
  CampaignOutcome out = RunMarioCampaign("1-1", FuzzerKind::kNyxAggressive, 60.0, 3);
  ASSERT_TRUE(out.supported);
  EXPECT_GE(out.result.ijon_goal_vsec, 0.0) << "1-1 should solve quickly";
}

TEST(CampaignTest, EnvKnobs) {
  unsetenv("NYX_RUNS");
  unsetenv("NYX_VTIME");
  EXPECT_EQ(EvalRuns(3), 3u);
  EXPECT_DOUBLE_EQ(EvalVtime(7.5), 7.5);
  setenv("NYX_RUNS", "9", 1);
  setenv("NYX_VTIME", "42.5", 1);
  EXPECT_EQ(EvalRuns(3), 9u);
  EXPECT_DOUBLE_EQ(EvalVtime(7.5), 42.5);
  unsetenv("NYX_RUNS");
  unsetenv("NYX_VTIME");
}

}  // namespace
}  // namespace nyx
