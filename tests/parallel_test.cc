// Tests for the parallel campaign engine (src/harness/parallel.h): worker
// pool mechanics, the NYX_JOBS knob, and — the property the whole PR hangs
// on — that fanning campaigns across workers changes nothing about any
// individual campaign's result.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "src/common/check.h"
#include "src/fuzz/corpus.h"
#include "src/harness/campaign.h"
#include "src/harness/parallel.h"

namespace nyx {
namespace {

// Strict equality on every deterministic CampaignResult field.
void ExpectSameResult(const CampaignResult& a, const CampaignResult& b) {
  EXPECT_EQ(a.execs, b.execs);
  EXPECT_DOUBLE_EQ(a.vtime_seconds, b.vtime_seconds);
  EXPECT_EQ(a.branch_coverage, b.branch_coverage);
  EXPECT_EQ(a.edge_coverage, b.edge_coverage);
  EXPECT_EQ(a.corpus_size, b.corpus_size);
  EXPECT_EQ(a.incremental_creates, b.incremental_creates);
  EXPECT_EQ(a.incremental_restores, b.incremental_restores);
  EXPECT_EQ(a.root_restores, b.root_restores);
  EXPECT_EQ(a.contract_soft_failures, b.contract_soft_failures);
  EXPECT_EQ(a.ijon_best, b.ijon_best);
  EXPECT_EQ(a.crashes.size(), b.crashes.size());
  EXPECT_EQ(a.coverage_over_time.ToCsv("s"), b.coverage_over_time.ToCsv("s"));
}

TEST(ParallelForTest, RunsEveryIndexExactlyOnce) {
  constexpr size_t kN = 257;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) {
    h = 0;
  }
  ParallelFor(kN, 4, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; i++) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ParallelForTest, SingleJobRunsInlineInOrder) {
  // jobs=1 must not spawn threads: bodies run on the calling thread, in
  // index order — the bit-identical serial path.
  const std::thread::id self = std::this_thread::get_id();
  std::vector<size_t> order;
  ParallelFor(5, 1, [&](size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), self);
    order.push_back(i);
  });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, ZeroAndOneElement) {
  int calls = 0;
  ParallelFor(0, 8, [&](size_t) { calls++; });
  EXPECT_EQ(calls, 0);
  ParallelFor(1, 8, [&](size_t) { calls++; });
  EXPECT_EQ(calls, 1);
}

TEST(EvalJobsTest, EnvOverridesAndDefaultsNonZero) {
  setenv("NYX_JOBS", "3", 1);
  EXPECT_EQ(EvalJobs(), 3u);
  unsetenv("NYX_JOBS");
  EXPECT_GE(EvalJobs(), 1u);
}

TEST(ContractCountersTest, ThreadCountersSumToGlobal) {
  ResetContractCounters();
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 1000;
  std::vector<uint64_t> deltas(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      const uint64_t before = GetThreadContractCounters().soft_failures;
      for (uint64_t i = 0; i < kPerThread; i++) {
        NYX_EXPECT(i == kPerThread);  // always fails
      }
      deltas[t] = GetThreadContractCounters().soft_failures - before;
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  uint64_t sum = 0;
  for (uint64_t d : deltas) {
    EXPECT_EQ(d, kPerThread);
    sum += d;
  }
  EXPECT_EQ(GetContractCounters().soft_failures, sum);
  ResetContractCounters();
}

TEST(CorpusWeightTest, CachedWeightsStayConsistent) {
  Corpus corpus;
  Rng rng(7);
  for (int i = 0; i < 8; i++) {
    Program p;
    Op op;
    op.node_type = static_cast<uint8_t>(i);
    p.ops.push_back(op);
    ASSERT_TRUE(corpus.Add(std::move(p), static_cast<uint64_t>(i) * 1000000, 1, 0.0));
  }
  for (int i = 0; i < 100; i++) {
    corpus.Pick(rng);
  }
  corpus.SetVtime(3, 42000000);
  double sum = 0.0;
  for (size_t i = 0; i < corpus.size(); i++) {
    const CorpusEntry& e = corpus.entry(i);
    const double expect =
        static_cast<double>(e.picks) + static_cast<double>(e.vtime_ns) * 1e-7;
    EXPECT_DOUBLE_EQ(e.weight, expect) << i;
    sum += e.weight;
  }
  EXPECT_NEAR(corpus.WeightSum(), sum, 1e-9);
}

// The determinism contract: the same (config, seed) campaign produces an
// identical result whether run serially, through the pool with NYX_JOBS=1,
// or through the pool with NYX_JOBS=4.
TEST(ParallelCampaignTest, PooledRunsMatchSerialPerSeed) {
  CampaignSpec cs;
  cs.target = "lightftp";
  cs.fuzzer = FuzzerKind::kNyxBalanced;
  cs.limits.vtime_seconds = 2.0;
  constexpr size_t kRuns = 3;

  std::vector<CampaignResult> serial;
  for (size_t r = 0; r < kRuns; r++) {
    cs.seed = r + 1;
    serial.push_back(RunCampaign(cs).result);
  }

  setenv("NYX_JOBS", "1", 1);
  const std::vector<CampaignResult> pooled1 = RepeatCampaign(cs, kRuns);
  setenv("NYX_JOBS", "4", 1);
  const std::vector<CampaignResult> pooled4 = RepeatCampaign(cs, kRuns);
  unsetenv("NYX_JOBS");

  ASSERT_EQ(pooled1.size(), kRuns);
  ASSERT_EQ(pooled4.size(), kRuns);
  for (size_t r = 0; r < kRuns; r++) {
    ExpectSameResult(serial[r], pooled1[r]);
    ExpectSameResult(serial[r], pooled4[r]);
  }
}

TEST(ParallelCampaignTest, RunCampaignsPreservesIndexMapping) {
  CampaignSpec nyx;
  nyx.target = "lightftp";
  nyx.fuzzer = FuzzerKind::kNyxNone;
  nyx.limits.vtime_seconds = 1.0;
  CampaignSpec bogus;
  bogus.target = "no-such-target";

  setenv("NYX_JOBS", "2", 1);
  const std::vector<CampaignOutcome> out = RunCampaigns({bogus, nyx});
  unsetenv("NYX_JOBS");
  ASSERT_EQ(out.size(), 2u);
  EXPECT_FALSE(out[0].supported);
  ASSERT_TRUE(out[1].supported);
  EXPECT_GT(out[1].result.execs, 0u);
}

TEST(ParallelCampaignTest, GridSkipsUnsupportedConfigs) {
  CampaignSpec nyx;
  nyx.target = "lightftp";
  nyx.fuzzer = FuzzerKind::kNyxNone;
  nyx.limits.vtime_seconds = 1.0;
  CampaignSpec desock = nyx;
  desock.target = "live555";  // AFL++ desock is n/a on live555 (Table 1)
  desock.fuzzer = FuzzerKind::kAflppDesock;

  setenv("NYX_JOBS", "2", 1);
  const auto grid = RunCampaignGrid({nyx, desock}, 2);
  unsetenv("NYX_JOBS");
  ASSERT_EQ(grid.size(), 2u);
  EXPECT_EQ(grid[0].size(), 2u);
  EXPECT_TRUE(grid[1].empty());
}

}  // namespace
}  // namespace nyx
