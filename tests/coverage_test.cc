// Tests for the AFL-style coverage machinery: edge hashing, hit-count
// classification, virgin-map novelty, site counting and noise edges.

#include <gtest/gtest.h>

#include "src/fuzz/coverage.h"

namespace nyx {
namespace {

TEST(CoverageMapTest, SitesAndEdgesRecorded) {
  CoverageMap cov;
  cov.OnSite(100);
  cov.OnSite(200);
  size_t nonzero = 0;
  for (uint8_t b : cov.map()) {
    nonzero += b != 0 ? 1 : 0;
  }
  EXPECT_EQ(nonzero, 2u);  // two edges
  EXPECT_TRUE(cov.sites_hit()[100 >> 3] & (1 << (100 & 7)));
  EXPECT_TRUE(cov.sites_hit()[200 >> 3] & (1 << (200 & 7)));
}

TEST(CoverageMapTest, EdgeDependsOnPredecessor) {
  // A->B and C->B are distinct edges even though B is the same site.
  CoverageMap ab;
  ab.OnSite(1);
  ab.OnSite(5);
  CoverageMap cb;
  cb.OnSite(3);
  cb.OnSite(5);
  EXPECT_NE(ab.map(), cb.map());
}

TEST(CoverageMapTest, ResetClears) {
  CoverageMap cov;
  cov.OnSite(7);
  cov.Reset();
  for (uint8_t b : cov.map()) {
    ASSERT_EQ(b, 0);
  }
  for (uint8_t b : cov.sites_hit()) {
    ASSERT_EQ(b, 0);
  }
}

TEST(GlobalCoverageTest, NewBitsDetected) {
  GlobalCoverage global;
  CoverageMap a;
  a.OnSite(10);
  EXPECT_TRUE(global.MergeAndCheckNew(a));
  EXPECT_FALSE(global.MergeAndCheckNew(a));  // same trace: nothing new
  CoverageMap b;
  b.OnSite(11);
  EXPECT_TRUE(global.MergeAndCheckNew(b));
  EXPECT_EQ(global.SiteCount(), 2u);
  EXPECT_GE(global.EdgeCount(), 2u);
}

TEST(GlobalCoverageTest, HitCountBucketsAreNovel) {
  GlobalCoverage global;
  CoverageMap once;
  once.OnSite(42);
  EXPECT_TRUE(global.MergeAndCheckNew(once));

  // Same edge, much higher hit count: a new bucket, hence novel.
  CoverageMap many;
  for (int i = 0; i < 40; i++) {
    many.Reset();
    // re-trigger edge repeatedly within one trace
    for (int j = 0; j <= i; j++) {
      many.OnSite(42);
      many.OnSite(42);
    }
  }
  EXPECT_TRUE(global.MergeAndCheckNew(many));
  // Site count does not double-count.
  EXPECT_EQ(global.SiteCount(), 1u);
}

TEST(GlobalCoverageTest, NoiseEdgesDoNotCountAsSites) {
  GlobalCoverage global;
  CoverageMap trace;
  trace.OnNoiseEdge(61234);
  EXPECT_TRUE(global.MergeAndCheckNew(trace));  // pollutes the queue...
  EXPECT_EQ(global.SiteCount(), 0u);            // ...but not branch coverage
}

}  // namespace
}  // namespace nyx
