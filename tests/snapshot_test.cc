// Tests for root and incremental snapshots: restore-is-identity properties,
// CoW mirror behaviour, revert of stale captures and re-mirroring.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/common/rng.h"
#include "src/vm/snapshot.h"

namespace nyx {
namespace {

Bytes Checksum(const GuestMemory& mem) {
  Bytes copy(mem.size_bytes());
  memcpy(copy.data(), mem.base(), mem.size_bytes());
  return copy;
}

class SnapshotTest : public ::testing::Test {
 protected:
  SnapshotTest() : mem_(64), disk_(64) {
    devices_.AddDevice("dev0", 128);
    // Deterministic initial contents.
    Rng rng(555);
    for (size_t i = 0; i < mem_.size_bytes(); i += 7) {
      mem_.base()[i] = rng.NextByte();
    }
  }

  GuestMemory mem_;
  DeviceState devices_;
  BlockDevice disk_;
};

TEST_F(SnapshotTest, RootSnapshotPreservesContents) {
  const Bytes before = Checksum(mem_);
  RootSnapshot root(mem_, devices_, disk_);
  for (uint32_t p = 0; p < mem_.num_pages(); p++) {
    EXPECT_EQ(0, memcmp(root.PagePtr(p), before.data() + static_cast<size_t>(p) * kPageSize,
                        kPageSize))
        << "page " << p;
  }
}

TEST_F(SnapshotTest, RootRestoreAfterWrites) {
  RootSnapshot root(mem_, devices_, disk_);
  const Bytes pristine = Checksum(mem_);
  mem_.ArmTracking();
  mem_.base()[5 * kPageSize + 3] = 0xff;
  mem_.base()[9 * kPageSize] = 0xee;
  // Manual restore path (what Vm::RestoreRoot does for the stack pages).
  const uint32_t* stack = mem_.tracker().stack_data();
  for (size_t i = 0; i < mem_.tracker().stack_size(); i++) {
    uint32_t p = stack[i];
    memcpy(mem_.base() + static_cast<size_t>(p) * kPageSize, root.PagePtr(p), kPageSize);
  }
  mem_.ReArmDirtyPages();
  EXPECT_EQ(Checksum(mem_), pristine);
}

TEST_F(SnapshotTest, IncrementalMirrorIsCompleteImage) {
  RootSnapshot root(mem_, devices_, disk_);
  mem_.ArmTracking();
  mem_.base()[2 * kPageSize] = 0xaa;
  IncrementalSnapshot inc(root);
  inc.Capture(mem_, devices_, disk_);
  // Captured page holds the new value; untouched pages show root content
  // through the CoW mapping.
  EXPECT_EQ(inc.PagePtr(2)[0], 0xaa);
  EXPECT_EQ(0, memcmp(inc.PagePtr(7), root.PagePtr(7), kPageSize));
  EXPECT_EQ(inc.base_pages().size(), 1u);
  EXPECT_EQ(inc.base_pages()[0], 2u);
}

TEST_F(SnapshotTest, RecaptureRevertsStalePages) {
  RootSnapshot root(mem_, devices_, disk_);
  mem_.ArmTracking();
  mem_.base()[2 * kPageSize] = 0xaa;
  IncrementalSnapshot inc(root);
  inc.Capture(mem_, devices_, disk_);
  mem_.ReArmDirtyPages();

  // Second capture with a different page: page 2 must revert to root content
  // in the mirror.
  mem_.base()[4 * kPageSize] = 0xbb;
  inc.Capture(mem_, devices_, disk_);
  EXPECT_EQ(0, memcmp(inc.PagePtr(2), root.PagePtr(2), kPageSize));
  EXPECT_EQ(inc.PagePtr(4)[0], 0xbb);
  EXPECT_EQ(inc.base_pages().size(), 1u);
  EXPECT_EQ(inc.base_pages()[0], 4u);
}

TEST_F(SnapshotTest, PrivatePageAccountingAndReuse) {
  RootSnapshot root(mem_, devices_, disk_);
  mem_.ArmTracking();
  IncrementalSnapshot inc(root);
  mem_.base()[0] = 1;
  inc.Capture(mem_, devices_, disk_);
  EXPECT_EQ(inc.private_pages(), 1u);
  mem_.ReArmDirtyPages();
  // Same page captured again: the private copy is reused, not duplicated.
  mem_.base()[0] = 2;
  inc.Capture(mem_, devices_, disk_);
  EXPECT_EQ(inc.private_pages(), 1u);
  EXPECT_EQ(inc.PagePtr(0)[0], 2);
}

TEST_F(SnapshotTest, ReMirrorResetsPrivatePages) {
  RootSnapshot root(mem_, devices_, disk_);
  mem_.ArmTracking();
  IncrementalSnapshot inc(root);
  // Drive enough captures to cross the re-mirror interval.
  for (uint64_t i = 0; i < kReMirrorInterval + 1; i++) {
    mem_.base()[(i % 8) * kPageSize] = static_cast<uint8_t>(i);
    inc.Capture(mem_, devices_, disk_);
    mem_.ReArmDirtyPages();
  }
  EXPECT_EQ(inc.remirrors(), 1u);
  EXPECT_LE(inc.private_pages(), 8u);
  // The mirror must still be a valid image after the re-mirror.
  const uint8_t expect = static_cast<uint8_t>(kReMirrorInterval);
  EXPECT_EQ(inc.PagePtr((kReMirrorInterval % 8))[0], expect);
}

TEST_F(SnapshotTest, DeviceAndDiskStateCaptured) {
  disk_.WriteBytes(0, "orig", 4);
  disk_.ClearDirty();
  RootSnapshot root(mem_, devices_, disk_);
  mem_.ArmTracking();

  devices_.regs(0)[0] = 0x42;
  disk_.WriteBytes(0, "newx", 4);
  IncrementalSnapshot inc(root);
  inc.Capture(mem_, devices_, disk_);
  EXPECT_EQ(inc.devices().regs(0)[0], 0x42);
  ASSERT_EQ(inc.disk().sectors.count(0), 1u);
  EXPECT_EQ(0, memcmp(inc.disk().sectors.at(0).data(), "newx", 4));
  EXPECT_EQ(0, memcmp(root.disk().data.data(), "orig", 4));
}

// Property: capture + restore of random write sets is the identity.
class IncrementalPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IncrementalPropertyTest, CaptureRestoreIdentity) {
  Rng rng(GetParam());
  GuestMemory mem(32);
  DeviceState devices;
  devices.AddDevice("d", 16);
  BlockDevice disk(16);
  for (size_t i = 0; i < mem.size_bytes(); i += 11) {
    mem.base()[i] = rng.NextByte();
  }
  RootSnapshot root(mem, devices, disk);
  mem.ArmTracking();

  // Random prefix writes, then capture.
  for (int i = 0; i < 40; i++) {
    mem.base()[rng.Below(mem.size_bytes())] = rng.NextByte();
  }
  IncrementalSnapshot inc(root);
  inc.Capture(mem, devices, disk);
  mem.ReArmDirtyPages();
  Bytes at_capture(mem.size_bytes());
  memcpy(at_capture.data(), mem.base(), mem.size_bytes());

  // Random suffix writes, then restore from the mirror.
  for (int i = 0; i < 60; i++) {
    mem.base()[rng.Below(mem.size_bytes())] = rng.NextByte();
  }
  const uint32_t* stack = mem.tracker().stack_data();
  for (size_t i = 0; i < mem.tracker().stack_size(); i++) {
    uint32_t p = stack[i];
    memcpy(mem.base() + static_cast<size_t>(p) * kPageSize, inc.PagePtr(p), kPageSize);
  }
  mem.ReArmDirtyPages();

  Bytes after_restore(mem.size_bytes());
  memcpy(after_restore.data(), mem.base(), mem.size_bytes());
  EXPECT_EQ(after_restore, at_capture);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalPropertyTest,
                         ::testing::Values(10, 20, 30, 40, 50, 60, 70, 80));

}  // namespace
}  // namespace nyx
