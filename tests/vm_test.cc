// Integration tests for the Vm façade: whole-VM snapshot semantics across
// memory, devices, disk and the auxiliary blob, plus cost accounting.

#include <gtest/gtest.h>

#include <cstring>

#include "src/common/rng.h"
#include "src/vm/vm.h"

namespace nyx {
namespace {

VmConfig SmallConfig() {
  VmConfig c;
  c.mem_pages = 64;
  c.disk_sectors = 64;
  return c;
}

TEST(VmTest, RootRestoreIsIdentity) {
  Vm vm(SmallConfig());
  vm.mem().base()[100] = 7;
  vm.TakeRootSnapshot();
  vm.mem().base()[100] = 99;
  vm.mem().base()[5 * kPageSize] = 1;
  vm.devices().regs(0)[0] = 0xab;
  vm.disk().WriteBytes(0, "dirty", 5);
  vm.RestoreRoot();
  EXPECT_EQ(vm.mem().base()[100], 7);
  EXPECT_EQ(vm.mem().base()[5 * kPageSize], 0);
  EXPECT_EQ(vm.devices().regs(0)[0], 0);
  char buf[6] = {};
  vm.disk().ReadBytes(0, buf, 5);
  EXPECT_EQ(0, memcmp(buf, "\0\0\0\0\0", 5));
  EXPECT_EQ(vm.stats().root_restores, 1u);
}

TEST(VmTest, RepeatedRestoresStayClean) {
  Vm vm(SmallConfig());
  vm.TakeRootSnapshot();
  for (int i = 0; i < 20; i++) {
    vm.mem().base()[static_cast<size_t>(i) * kPageSize] = static_cast<uint8_t>(i + 1);
    vm.RestoreRoot();
  }
  for (int i = 0; i < 20; i++) {
    EXPECT_EQ(vm.mem().base()[static_cast<size_t>(i) * kPageSize], 0);
  }
}

TEST(VmTest, IncrementalRestoreKeepsPrefixState) {
  Vm vm(SmallConfig());
  vm.TakeRootSnapshot();
  // Prefix execution.
  vm.mem().base()[0] = 11;
  vm.disk().WriteBytes(0, "pfx", 3);
  vm.devices().regs(0)[1] = 0x55;
  vm.CreateIncremental();
  // Fuzzing iterations on top of the prefix.
  for (int i = 0; i < 5; i++) {
    vm.mem().base()[0] = 200;
    vm.mem().base()[kPageSize] = 201;
    vm.disk().WriteBytes(100, "junk", 4);
    vm.devices().regs(0)[1] = 0x99;
    vm.RestoreIncremental();
    EXPECT_EQ(vm.mem().base()[0], 11);
    EXPECT_EQ(vm.mem().base()[kPageSize], 0);
    EXPECT_EQ(vm.devices().regs(0)[1], 0x55);
    char buf[4] = {};
    vm.disk().ReadBytes(0, buf, 3);
    EXPECT_EQ(0, memcmp(buf, "pfx", 3));
    char junk[5] = {};
    vm.disk().ReadBytes(100, junk, 4);
    EXPECT_EQ(0, memcmp(junk, "\0\0\0\0", 4));
  }
  EXPECT_EQ(vm.stats().incremental_restores, 5u);
}

TEST(VmTest, RootRestoreAfterIncrementalRevertsPrefix) {
  Vm vm(SmallConfig());
  vm.TakeRootSnapshot();
  vm.mem().base()[3 * kPageSize] = 42;
  vm.disk().WriteBytes(0, "pfx", 3);
  vm.CreateIncremental();
  vm.mem().base()[4 * kPageSize] = 43;
  vm.RestoreIncremental();
  // Schedule a different input: back to root. Prefix effects must vanish,
  // including pages/sectors only dirtied before the incremental snapshot.
  vm.RestoreRoot();
  EXPECT_EQ(vm.mem().base()[3 * kPageSize], 0);
  EXPECT_EQ(vm.mem().base()[4 * kPageSize], 0);
  char buf[4] = {};
  vm.disk().ReadBytes(0, buf, 3);
  EXPECT_EQ(0, memcmp(buf, "\0\0\0", 3));
  EXPECT_FALSE(vm.has_incremental());
}

TEST(VmTest, RootRestoreDirectlyAfterIncrementalCreate) {
  Vm vm(SmallConfig());
  vm.TakeRootSnapshot();
  vm.mem().base()[7 * kPageSize] = 1;
  vm.CreateIncremental();
  // No incremental restore in between.
  vm.RestoreRoot();
  EXPECT_EQ(vm.mem().base()[7 * kPageSize], 0);
}

TEST(VmTest, RootRestoreAfterDropIncrementalRevertsCapturedPages) {
  // Regression test for a restore-completeness bug the divergence auditor
  // found: CreateIncremental re-arms the tracker, so the captured pages are
  // no longer in the dirty stack. DropIncremental invalidates the snapshot
  // but leaves those pages in memory — the next root restore must still
  // revert them even though has_incremental() is false by then.
  Vm vm(SmallConfig());
  vm.TakeRootSnapshot();
  vm.mem().base()[3 * kPageSize] = 42;  // prefix writes
  vm.CreateIncremental();               // page 3 leaves the dirty tracker
  vm.DropIncremental();                 // fuzzer schedules a different input
  ASSERT_FALSE(vm.has_incremental());
  vm.RestoreRoot();
  EXPECT_EQ(vm.mem().base()[3 * kPageSize], 0);
}

TEST(VmTest, RootRestoreAfterIncrementalRestoreThenDrop) {
  // Same bug, longer path: resume through the incremental a few times first,
  // so the captured pages hold prefix state with a clean tracker, then drop.
  Vm vm(SmallConfig());
  vm.TakeRootSnapshot();
  vm.mem().base()[3 * kPageSize] = 42;
  vm.CreateIncremental();
  for (int i = 0; i < 3; i++) {
    vm.mem().base()[9 * kPageSize] = static_cast<uint8_t>(i + 1);  // suffix writes
    vm.RestoreIncremental();
  }
  EXPECT_EQ(vm.mem().base()[3 * kPageSize], 42);  // prefix state intact
  vm.DropIncremental();
  vm.RestoreRoot();
  EXPECT_EQ(vm.mem().base()[3 * kPageSize], 0);
  EXPECT_EQ(vm.mem().base()[9 * kPageSize], 0);
}

TEST(VmTest, AuxBlobFollowsSnapshots) {
  Vm vm(SmallConfig());
  vm.TakeRootSnapshot(ToBytes("root-aux"));
  EXPECT_EQ(ToString(vm.current_aux()), "root-aux");
  vm.mem().base()[0] = 1;
  vm.CreateIncremental(ToBytes("inc-aux"));
  EXPECT_EQ(ToString(vm.current_aux()), "inc-aux");
  vm.mem().base()[0] = 2;
  vm.RestoreIncremental();
  EXPECT_EQ(ToString(vm.current_aux()), "inc-aux");
  vm.RestoreRoot();
  EXPECT_EQ(ToString(vm.current_aux()), "root-aux");
}

TEST(VmTest, RecreateIncrementalForNewPrefix) {
  Vm vm(SmallConfig());
  vm.TakeRootSnapshot();
  vm.mem().base()[1 * kPageSize] = 10;
  vm.CreateIncremental();
  vm.RestoreRoot();

  vm.mem().base()[2 * kPageSize] = 20;
  vm.CreateIncremental();
  vm.mem().base()[3 * kPageSize] = 30;
  vm.RestoreIncremental();
  EXPECT_EQ(vm.mem().base()[1 * kPageSize], 0);   // old prefix gone
  EXPECT_EQ(vm.mem().base()[2 * kPageSize], 20);  // new prefix present
  EXPECT_EQ(vm.mem().base()[3 * kPageSize], 0);   // suffix reverted
}

TEST(VmTest, ClockChargedForRestores) {
  Vm vm(SmallConfig());
  VirtualClock clock;
  CostModel cost;
  vm.AttachClock(&clock, &cost);
  vm.TakeRootSnapshot();
  vm.mem().base()[0] = 1;
  const uint64_t before = clock.now_ns();
  vm.RestoreRoot();
  const uint64_t charged = clock.now_ns() - before;
  EXPECT_GE(charged, cost.snapshot_restore_fixed_ns + cost.snapshot_page_copy_ns);
}

TEST(VmTest, SlowDeviceResetChargesMore) {
  VmConfig cfg = SmallConfig();
  cfg.fast_device_reset = false;
  Vm slow(cfg);
  Vm fast(SmallConfig());
  VirtualClock clock_slow;
  VirtualClock clock_fast;
  CostModel cost;
  slow.AttachClock(&clock_slow, &cost);
  fast.AttachClock(&clock_fast, &cost);
  slow.TakeRootSnapshot();
  fast.TakeRootSnapshot();
  slow.RestoreRoot();
  fast.RestoreRoot();
  EXPECT_GT(clock_slow.now_ns(), clock_fast.now_ns());
}

TEST(VmTest, StatsCountPagesRestored) {
  Vm vm(SmallConfig());
  vm.TakeRootSnapshot();
  vm.mem().base()[0] = 1;
  vm.mem().base()[kPageSize] = 1;
  vm.RestoreRoot();
  EXPECT_EQ(vm.stats().pages_restored, 2u);
}

// Property test: arbitrary interleavings of writes, incremental captures and
// restores never corrupt state.
class VmPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VmPropertyTest, SnapshotProtocolNeverCorrupts) {
  Rng rng(GetParam());
  Vm vm(SmallConfig());
  vm.TakeRootSnapshot();
  Bytes root_image(vm.mem().size_bytes());
  memcpy(root_image.data(), vm.mem().base(), root_image.size());

  for (int round = 0; round < 30; round++) {
    // Prefix writes.
    for (int i = 0; i < 10; i++) {
      vm.mem().base()[rng.Below(vm.mem().size_bytes())] = rng.NextByte();
    }
    const bool use_incremental = rng.Chance(1, 2);
    Bytes prefix_image(vm.mem().size_bytes());
    if (use_incremental) {
      vm.CreateIncremental();
      memcpy(prefix_image.data(), vm.mem().base(), prefix_image.size());
      const uint64_t iterations = rng.Range(1, 4);
      for (uint64_t it = 0; it < iterations; it++) {
        for (int i = 0; i < 10; i++) {
          vm.mem().base()[rng.Below(vm.mem().size_bytes())] = rng.NextByte();
        }
        vm.RestoreIncremental();
        ASSERT_EQ(0, memcmp(vm.mem().base(), prefix_image.data(), prefix_image.size()))
            << "round " << round << " iter " << it;
      }
    }
    vm.RestoreRoot();
    ASSERT_EQ(0, memcmp(vm.mem().base(), root_image.data(), root_image.size()))
        << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VmPropertyTest,
                         ::testing::Values(100, 200, 300, 400, 500, 600));

}  // namespace
}  // namespace nyx
